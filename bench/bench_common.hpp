// Shared helpers for the experiment benches. Each bench binary regenerates
// one experiment from DESIGN.md's index and doubles as a performance
// benchmark of the code paths involved. The ->Report rows (via counters)
// are the "tables"; EXPERIMENTS.md records the reference output.
//
// Every bench uses SCUP_BENCH_MAIN("E<k>") instead of BENCHMARK_MAIN():
// alongside the normal console output it writes a canonical machine-
// readable summary, BENCH_E<k>.json, with one entry per benchmark row
// (name, iterations, real/cpu time, every user counter). CI uploads these
// files as artifacts so perf history survives log rotation. The output
// directory defaults to the working directory and can be redirected with
// SCUP_BENCH_OUT_DIR.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "fbqs/quorum.hpp"
#include "graph/generators.hpp"
#include "graph/kosr.hpp"
#include "graph/scc.hpp"
#include "sinkdetector/slice_builder.hpp"

namespace scup::bench {

/// Builds the FBQS of Algorithm 2 for a given sink (used by the analytic
/// experiments E1-E4/E9).
inline fbqs::FbqsSystem algorithm2_system(std::size_t n, const NodeSet& sink,
                                          std::size_t f) {
  fbqs::FbqsSystem sys(n);
  for (ProcessId i = 0; i < n; ++i) {
    sinkdetector::GetSinkResult r;
    r.is_sink_member = sink.contains(i);
    r.sink = sink;
    sys.set_slices(i, sinkdetector::build_slices(r, f));
  }
  return sys;
}

/// Builds the Theorem-2 "local" FBQS from PDs alone.
inline fbqs::FbqsSystem local_system(const graph::Digraph& g, std::size_t f) {
  fbqs::FbqsSystem sys(g.node_count());
  for (ProcessId i = 0; i < g.node_count(); ++i) {
    const NodeSet pd = g.pd_of(i);
    if (pd.count() > f) {
      sys.set_slices(i, sinkdetector::local_slices(pd, f));
    }
  }
  return sys;
}

/// Standard scenario configuration for the simulation experiments (E5-E7).
inline core::ScenarioConfig sim_scenario(graph::Digraph g, std::size_t f,
                                         NodeSet faulty, std::uint64_t seed,
                                         core::ProtocolKind protocol) {
  core::ScenarioConfig cfg;
  cfg.graph = std::move(g);
  cfg.f = f;
  cfg.faulty = std::move(faulty);
  cfg.protocol = protocol;
  cfg.net.seed = seed;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = 10;
  cfg.deadline = 5'000'000;
  return cfg;
}

/// Console reporter that additionally collects every finished row for the
/// BENCH_E<k>.json summary (errors and aggregate rows are kept too, tagged
/// by type, so the artifact is a faithful transcript of the run).
class SummaryReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    bool error = false;
    bool aggregate = false;
    std::int64_t iterations = 0;
    double real_time = 0;  // per iteration, in time_unit
    double cpu_time = 0;
    std::string time_unit;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      Row row;
      row.name = run.benchmark_name();
      row.error = run.error_occurred;
      row.aggregate = run.run_type == Run::RT_Aggregate;
      row.iterations = static_cast<std::int64_t>(run.iterations);
      row.real_time = run.GetAdjustedRealTime();
      row.cpu_time = run.GetAdjustedCPUTime();
      row.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      for (const auto& [name, counter] : run.counters) {
        row.counters.emplace_back(name, counter.value);
      }
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<Row> rows;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes BENCH_<id>.json into SCUP_BENCH_OUT_DIR (or the working
/// directory). Returns false — with a note on stderr — if the file cannot
/// be opened; the bench's exit status is unaffected, so a read-only CWD
/// never fails a perf run.
inline bool write_bench_summary(const std::string& id,
                                const std::vector<SummaryReporter::Row>& rows,
                                int argc, char** argv) {
  std::string dir;
  if (const char* env = std::getenv("SCUP_BENCH_OUT_DIR")) dir = env;
  if (!dir.empty() && dir.back() != '/') dir += '/';
  const std::string path = dir + "BENCH_" + id + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench summary: cannot open %s\n", path.c_str());
    return false;
  }
  std::string argline;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) argline += ' ';
    argline += argv[i];
  }
  std::fprintf(out, "{\n  \"experiment\": \"%s\",\n", json_escape(id).c_str());
  std::fprintf(out, "  \"args\": \"%s\",\n", json_escape(argline).c_str());
  // Host provenance: perf numbers are only comparable across runs on the
  // same substrate, so every artifact records what it ran on.
  const char* threads_env = std::getenv("SCUP_BENCH_THREADS");
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::fprintf(out,
               "  \"host\": {\"cores\": %u, \"bench_threads\": \"%s\", "
               "\"build_type\": \"%s\"},\n",
               std::thread::hardware_concurrency(),
               json_escape(threads_env != nullptr ? threads_env : "").c_str(),
               build_type);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"error\": %s, \"aggregate\": %s, "
                 "\"iterations\": %lld, \"real_time\": %.9g, "
                 "\"cpu_time\": %.9g, \"time_unit\": \"%s\", \"counters\": {",
                 json_escape(row.name).c_str(), row.error ? "true" : "false",
                 row.aggregate ? "true" : "false",
                 static_cast<long long>(row.iterations), row.real_time,
                 row.cpu_time, json_escape(row.time_unit).c_str());
    for (std::size_t c = 0; c < row.counters.size(); ++c) {
      std::fprintf(out, "%s\"%s\": %.9g", c > 0 ? ", " : "",
                   json_escape(row.counters[c].first).c_str(),
                   row.counters[c].second);
    }
    std::fprintf(out, "}}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

}  // namespace scup::bench

/// Drop-in replacement for BENCHMARK_MAIN(): runs the registered benchmarks
/// through a SummaryReporter and writes the canonical BENCH_<id>.json
/// artifact next to the console output.
#define SCUP_BENCH_MAIN(experiment_id)                                     \
  int main(int argc, char** argv) {                                        \
    benchmark::Initialize(&argc, argv);                                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    scup::bench::SummaryReporter reporter;                                 \
    benchmark::RunSpecifiedBenchmarks(&reporter);                          \
    benchmark::Shutdown();                                                 \
    scup::bench::write_bench_summary(experiment_id, reporter.rows, argc,   \
                                     argv);                                \
    return 0;                                                              \
  }                                                                        \
  int main(int, char**)
