#!/usr/bin/env python3
"""Perf regression gate over canonical BENCH_E<k>.json artifacts.

Compares a candidate bench summary (written by SCUP_BENCH_MAIN, see
bench/bench_common.hpp) against a committed reference and fails (exit 1)
on regressions. Three checks, in decreasing order of trust:

 1. Ratio floors. Counters that encode an experiment's headline promise
    (e.g. E16's allocation ratio) have an absolute floor; a candidate
    above the floor passes regardless of the reference value, because
    such ratios are legitimately jittery far above the floor (a pooled
    run doing 1 vs 2 stray heap allocations halves the ratio without
    meaning anything).

 2. Counter tolerance. All other shared counters must stay within
    --counter-tolerance (default 25%) of the reference. Deterministic
    counters (messages_sent, wire_encodes, identity_checks, ...) do not
    move at all unless behaviour changed; the tolerance exists for the
    measured-allocation counters, which carry harness noise.

 3. Normalized wall time. Raw wall comparisons across machines are
    meaningless, so each row's real_time is normalized by a baseline row
    *within the same file* (--wall-baseline); the normalized ratio must
    not regress more than --wall-tolerance (default 25%). Skipped when
    either file lacks the baseline row.

Usage:
  bench_compare.py --reference tools/bench_reference_e16.json \
                   --candidate build/BENCH_E16.json
"""

from __future__ import annotations

import argparse
import json
import sys

# Counters whose larger-is-better value is gated by an absolute floor
# instead of the reference (see module docstring, check 1).
RATIO_FLOORS = {
    "alloc_ratio": 5.0,  # E16's promised legacy/pooled allocation ratio
    "sends_per_encode": 2.0,  # wire-once must amortize over broadcasts
}

# Counters that are measurements of the harness or the host rather than the
# benched code; never gated. Any counter ending in "_ms" (the barrier-replay
# wall-clock breakdown, including the per-shard drain_s<k>_ms series) is
# host-dependent by construction and skipped too.
SKIP_COUNTERS = {
    "legacy_allocs",
    "pooled_allocs",
    "heap_allocs",
    "items_per_second",  # redundant with the normalized wall gate
}


def skipped_counter(name):
    return name in SKIP_COUNTERS or name.endswith("_ms")


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        if row.get("error") or row.get("aggregate"):
            continue
        rows[row["name"]] = row
    return doc, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reference", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--counter-tolerance", type=float, default=0.25)
    parser.add_argument("--wall-tolerance", type=float, default=0.25)
    parser.add_argument(
        "--wall-baseline",
        default="BM_MessageChurn/pooled:0",
        help="row whose real_time normalizes wall comparisons per file",
    )
    args = parser.parse_args()

    ref_doc, ref_rows = load_rows(args.reference)
    cand_doc, cand_rows = load_rows(args.candidate)
    if ref_doc.get("experiment") != cand_doc.get("experiment"):
        print(
            f"bench_compare: experiment mismatch "
            f"({ref_doc.get('experiment')} vs {cand_doc.get('experiment')})"
        )
        return 1

    shared = sorted(set(ref_rows) & set(cand_rows))
    missing = sorted(set(ref_rows) - set(cand_rows))
    failures = []
    if not shared:
        failures.append("no shared benchmark rows between the two files")
    for name in missing:
        failures.append(f"row disappeared from the candidate run: {name}")

    for name in shared:
        ref = dict(ref_rows[name].get("counters", {}))
        cand = dict(cand_rows[name].get("counters", {}))
        for counter in sorted(set(ref) & set(cand)):
            if skipped_counter(counter):
                continue
            r, c = ref[counter], cand[counter]
            if counter in RATIO_FLOORS:
                floor = RATIO_FLOORS[counter]
                if c < floor and c < r * (1 - args.counter_tolerance):
                    failures.append(
                        f"{name}: {counter} = {c:g} fell below both the "
                        f"floor {floor:g} and the reference {r:g}"
                    )
                continue
            scale = max(abs(r), 1e-9)
            if abs(c - r) > args.counter_tolerance * scale:
                failures.append(
                    f"{name}: {counter} = {c:g} deviates more than "
                    f"{args.counter_tolerance:.0%} from the reference {r:g}"
                )

    ref_base = ref_rows.get(args.wall_baseline)
    cand_base = cand_rows.get(args.wall_baseline)
    if ref_base and cand_base and ref_base["real_time"] > 0 \
            and cand_base["real_time"] > 0:
        for name in shared:
            if name == args.wall_baseline:
                continue
            ref_norm = ref_rows[name]["real_time"] / ref_base["real_time"]
            cand_norm = cand_rows[name]["real_time"] / cand_base["real_time"]
            if cand_norm > ref_norm * (1 + args.wall_tolerance):
                failures.append(
                    f"{name}: normalized wall time {cand_norm:.3g}x baseline "
                    f"regressed more than {args.wall_tolerance:.0%} vs the "
                    f"reference {ref_norm:.3g}x"
                )
    else:
        print(
            f"bench_compare: wall gate skipped "
            f"(baseline row {args.wall_baseline!r} absent or zero)"
        )

    if failures:
        print(f"bench_compare: {len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"bench_compare: OK — {len(shared)} rows within tolerance "
        f"(counters {args.counter_tolerance:.0%}, wall {args.wall_tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
