// Multi-slot ledger tests: chains of SCP instances (LedgerMultiplexer /
// LedgerNode) must agree slot by slot — the blockchain deployment of
// Corollary 2.
#include "core/ledger_node.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/adversaries.hpp"
#include "graph/generators.hpp"
#include "graph/kosr.hpp"
#include "graph/scc.hpp"
#include "sim/simulation.hpp"

namespace scup::core {
namespace {

struct LedgerHarness {
  LedgerHarness(const graph::Digraph& g, std::size_t f, const NodeSet& faulty,
                std::size_t slots, std::uint64_t seed = 1) {
    sim::NetworkConfig net;
    net.seed = seed;
    net.min_delay = 1;
    net.max_delay = 10;
    sim = std::make_unique<sim::Simulation>(g.node_count(), net);
    nodes.assign(g.node_count(), nullptr);
    for (ProcessId i = 0; i < g.node_count(); ++i) {
      if (faulty.contains(i)) {
        sim->emplace_process<SilentNode>(i);
        continue;
      }
      nodes[i] =
          &sim->emplace_process<LedgerNode>(i, g.pd_of(i), f, slots);
    }
    correct = faulty.complement();
    target = slots;
  }

  bool run(SimTime deadline = 3'000'000) {
    sim->start();
    return sim->run_until(
        [&] {
          for (ProcessId i : correct) {
            if (nodes[i]->decided_slots() < target) return false;
          }
          return true;
        },
        deadline);
  }

  std::unique_ptr<sim::Simulation> sim;
  std::vector<LedgerNode*> nodes;
  NodeSet correct;
  std::uint64_t target = 0;
};

TEST(LedgerTest, FiveSlotsOnFig1AllChainsIdentical) {
  LedgerHarness h(graph::fig1_graph(), 1, graph::fig1_faulty(), 5);
  ASSERT_TRUE(h.run());
  const ProcessId first = h.correct.min_member();
  const std::uint64_t digest = h.nodes[first]->chain_digest();
  EXPECT_NE(digest, 0u);
  for (ProcessId i : h.correct) {
    EXPECT_EQ(h.nodes[i]->decided_slots(), 5u) << "i=" << i;
    EXPECT_EQ(h.nodes[i]->chain_digest(), digest) << "i=" << i;
    for (std::uint64_t slot = 1; slot <= 5; ++slot) {
      EXPECT_EQ(h.nodes[i]->slot_decision(slot),
                h.nodes[first]->slot_decision(slot))
          << "i=" << i << " slot=" << slot;
    }
  }
}

TEST(LedgerTest, SlotsDecideDistinctProposals) {
  // Default value provider makes proposals slot-dependent; consecutive
  // slots should (overwhelmingly) decide different values — i.e. the
  // multiplexer really runs separate instances.
  LedgerHarness h(graph::fig2_graph(), 1, NodeSet(7, {6}), 4, /*seed=*/9);
  ASSERT_TRUE(h.run());
  const ProcessId first = h.correct.min_member();
  std::set<Value> decided;
  for (std::uint64_t slot = 1; slot <= 4; ++slot) {
    decided.insert(h.nodes[first]->slot_decision(slot));
  }
  EXPECT_GE(decided.size(), 3u);
}

TEST(LedgerTest, CustomValueProviderIsUsed) {
  const auto g = graph::fig2_graph();
  LedgerHarness h(g, 1, NodeSet(7), 3, /*seed=*/4);
  for (ProcessId i = 0; i < 7; ++i) {
    h.nodes[i]->set_value_provider(
        [](std::uint64_t slot) { return 7'000 + slot; });
  }
  ASSERT_TRUE(h.run());
  for (std::uint64_t slot = 1; slot <= 3; ++slot) {
    EXPECT_EQ(h.nodes[0]->slot_decision(slot), 7'000 + slot);
  }
}

TEST(LedgerTest, WithSinkByzantine) {
  // A silent Byzantine *sink* member on Fig. 2 must not block the chain.
  LedgerHarness h(graph::fig2_graph(), 1, NodeSet(7, {2}), 4, /*seed=*/12);
  ASSERT_TRUE(h.run());
  const ProcessId first = h.correct.min_member();
  for (ProcessId i : h.correct) {
    EXPECT_EQ(h.nodes[i]->chain_digest(), h.nodes[first]->chain_digest());
  }
}

TEST(LedgerTest, ChainDigestPrefixConsistency) {
  // The chain digest covers exactly slots 1..decided_slots() — two nodes at
  // the same height have the same digest even mid-run.
  LedgerHarness h(graph::fig1_graph(), 1, NodeSet(8), 3, /*seed=*/21);
  h.sim->start();
  h.sim->run_until(
      [&] {
        for (ProcessId i : h.correct) {
          if (h.nodes[i]->decided_slots() < 1) return false;
        }
        return true;
      },
      2'000'000);
  std::map<std::uint64_t, std::uint64_t> digest_at_height;
  for (ProcessId i : h.correct) {
    const auto height = h.nodes[i]->decided_slots();
    if (height == 0) continue;
    // Recompute prefix digest at height via slot decisions.
    std::uint64_t d = 0;
    for (std::uint64_t s = 1; s <= height; ++s) {
      d = hash_mix(d, s, h.nodes[i]->slot_decision(s));
    }
    auto [it, inserted] = digest_at_height.emplace(height, d);
    EXPECT_EQ(it->second, d) << "fork at height " << height;
  }
}

/// Host fake for driving a LedgerMultiplexer without a simulation.
class LedgerFakeHost : public sim::ProtocolHost {
 public:
  LedgerFakeHost(ProcessId self, std::size_t n) : self_(self), n_(n) {}
  ProcessId self() const override { return self_; }
  std::size_t universe() const override { return n_; }
  std::size_t fault_threshold() const override { return 1; }
  void host_send(ProcessId, sim::MessagePtr) override { ++sends; }
  void host_set_timer(int timer_id, SimTime) override {
    last_timer_id = timer_id;
  }
  SimTime host_now() const override { return 0; }
  std::uint64_t host_sign(std::uint64_t) const override { return 0; }
  bool host_verify(ProcessId, std::uint64_t, std::uint64_t) const override {
    return true;
  }

  std::size_t sends = 0;
  int last_timer_id = -1;

 private:
  ProcessId self_;
  std::size_t n_;
};

scp::Envelope nominate_envelope(ProcessId sender, std::uint64_t seq,
                                Value v) {
  const fbqs::QSet q =
      fbqs::QSet::threshold_of(2, std::vector<ProcessId>{0, 1, 2});
  scp::NominateStmt nom;
  nom.voted.insert(v);
  return scp::Envelope(sender, seq, q, scp::Statement{nom});
}

TEST(LedgerMultiplexerTest, FarFutureSlotEnvelopesAllocateNothing) {
  // A Byzantine peer naming slot 10^18 — and a flood of distinct far-future
  // slots — must not allocate any per-slot state, under both the bounded
  // and the unbounded (target_slots == 0) configurations.
  for (const std::size_t target : {std::size_t{0}, std::size_t{5}}) {
    LedgerFakeHost host(0, 3);
    scp::LedgerMultiplexer mux(host, 3,
                               fbqs::QSet::threshold_of(
                                   2, std::vector<ProcessId>{0, 1, 2}),
                               target);
    mux.value_provider = [](std::uint64_t slot) { return 1000 + slot; };
    mux.add_peer(1);
    mux.add_peer(2);
    mux.start();
    const std::size_t before = mux.allocated_slots();

    const std::uint64_t huge = 1'000'000'000'000'000'000ull;  // 10^18
    EXPECT_TRUE(mux.handle(
        1, scp::SlotEnvelope(huge, nominate_envelope(1, 1, 7))));
    EXPECT_EQ(mux.slot_node(huge), nullptr);

    // Flood: 10k distinct far-future slots from the same Byzantine peer.
    for (std::uint64_t i = 0; i < 10'000; ++i) {
      mux.handle(1, scp::SlotEnvelope(scp::kDefaultSlotWindow + 2 + i,
                                      nominate_envelope(1, 2 + i, 7)));
    }
    EXPECT_EQ(mux.allocated_slots(), before)
        << "target=" << target << ": flood must allocate nothing";
    if (target == 0) {
      // Unbounded config: only the window bound stood between the flood
      // and 10k ScpNode allocations.
      EXPECT_GE(mux.envelopes_dropped(), 10'001u);
    }

    // Near-future slots inside the window still buffer (fast peers must
    // not be cut off): the last admissible slot is next_to_start_+W-1.
    EXPECT_TRUE(mux.handle(
        1, scp::SlotEnvelope(scp::kDefaultSlotWindow + 1,
                             nominate_envelope(1, 50'000, 7))));
    if (target == 0) {
      EXPECT_NE(mux.slot_node(scp::kDefaultSlotWindow + 1), nullptr);
      EXPECT_EQ(mux.allocated_slots(), before + 1);
    } else {
      // Bounded config: slots past target_slots stay out of range.
      EXPECT_EQ(mux.slot_node(scp::kDefaultSlotWindow + 1), nullptr);
    }
  }
}

TEST(LedgerMultiplexerTest, OnTimerClaimsOnlyExistingSlots) {
  LedgerFakeHost host(0, 3);
  scp::LedgerMultiplexer mux(
      host, 3, fbqs::QSet::threshold_of(2, std::vector<ProcessId>{0, 1, 2}),
      3);
  mux.value_provider = [](std::uint64_t slot) { return 1000 + slot; };
  mux.start();

  // Below the ledger range: never claimed.
  EXPECT_FALSE(mux.on_timer(scp::kScpBallotTimerId));
  // In range and matching the started slot: claimed.
  EXPECT_TRUE(mux.on_timer(scp::ledger_timer_id(1)));
  // In range but no such slot exists: NOT swallowed (the historical bug),
  // so a composed protocol using high timer ids keeps working.
  EXPECT_FALSE(mux.on_timer(scp::ledger_timer_id(999)));
  EXPECT_FALSE(mux.on_timer(scp::kLedgerTimerBase + 500'000));
}

TEST(LedgerMultiplexerTest, TimerIdOverflowGuard) {
  EXPECT_EQ(scp::ledger_timer_id(0), scp::kLedgerTimerBase);
  EXPECT_EQ(scp::ledger_timer_id(7), scp::kLedgerTimerBase + 7);
  // The historical static_cast<int>(slot) wrapped silently; now it throws.
  EXPECT_THROW(scp::ledger_timer_id(1'000'000'000'000ull),
               std::overflow_error);
  EXPECT_THROW(
      scp::ledger_timer_id(static_cast<std::uint64_t>(
          std::numeric_limits<int>::max())),
      std::overflow_error);
  EXPECT_NO_THROW(scp::ledger_timer_id(
      static_cast<std::uint64_t>(std::numeric_limits<int>::max()) -
      scp::kLedgerTimerBase));
}

TEST(LedgerTest, IncrementalDigestMatchesFromScratchRecompute) {
  // The O(1) decided_slots / chain_digest must equal the historical O(k)
  // recompute at every height, and stay equal across replicas.
  LedgerHarness h(graph::fig1_graph(), 1, NodeSet(8), 4, /*seed=*/33);
  ASSERT_TRUE(h.run());
  for (ProcessId i : h.correct) {
    const auto height = h.nodes[i]->decided_slots();
    ASSERT_EQ(height, 4u);
    std::uint64_t from_scratch = 0;
    for (std::uint64_t s = 1; s <= height; ++s) {
      from_scratch = hash_mix(from_scratch, s, h.nodes[i]->slot_decision(s));
    }
    EXPECT_EQ(h.nodes[i]->chain_digest(), from_scratch) << "i=" << i;
    EXPECT_EQ(h.nodes[i]->chain_digest(), h.nodes[0]->chain_digest());
  }
}

TEST(LedgerTest, SharedEngineAggregatesAcrossSlotsAndReportsMetrics) {
  // All slots of a replica share one QuorumEngine: qsets are interned a
  // bounded number of times (not per slot), the closure cache pays off, and
  // the counters land in SimMetrics via the multiplexer's flush.
  LedgerHarness h(graph::fig1_graph(), 1, graph::fig1_faulty(), 5);
  ASSERT_TRUE(h.run());
  const ProcessId first = h.correct.min_member();
  const auto& stats = h.nodes[first]->quorum_stats();
  EXPECT_GT(stats.closure_runs, 0u);
  EXPECT_GT(stats.closure_cache_hits, 0u);
  EXPECT_GT(stats.qset_evals_baseline, stats.qset_evals)
      << "memoized path must beat the rescan baseline";
  EXPECT_GT(stats.intern_hits, 0u);
  // Distinct qsets per replica is tiny (placeholder + per-sender slices),
  // even though 5 slots × 8 senders exchanged envelopes.
  EXPECT_LE(h.nodes[first]->ledger().engine().interned_count(), 16u);

  using sim::ProtoCounter;
  const auto& m = h.sim->metrics();
  EXPECT_EQ(m.protocol_counter(ProtoCounter::kQuorumClosureRuns) > 0, true);
  EXPECT_GT(m.protocol_counter(ProtoCounter::kQsetEvalsBaseline),
            m.protocol_counter(ProtoCounter::kQsetEvals));
  EXPECT_GT(m.protocol_counter(ProtoCounter::kSupportUpdates), 0u);
  // Report-time naming view covers every counter.
  EXPECT_EQ(m.protocol_counters_by_name().size(), sim::kProtoCounterCount);
}

TEST(LedgerMultiplexerTest, RequiresValueProvider) {
  // Direct unit check of the precondition.
  sim::Simulation sim(2, {});
  class Bare : public sim::ComposedNode {
   public:
    Bare() : ComposedNode(0), mux_(*this, 2, fbqs::QSet(), 1) {}
    void start() override { mux_.start(); }
    void on_message(ProcessId, const sim::MessagePtr&) override {}
    scp::LedgerMultiplexer mux_;
  };
  sim.emplace_process<Bare>(0);
  sim.emplace_process<SilentNode>(1);
  EXPECT_THROW(sim.start(), std::logic_error);
}

TEST(LedgerMultiplexerTest, SlotEnvelopeNaming) {
  const fbqs::QSet q = fbqs::QSet::threshold_of(1, std::vector<ProcessId>{0});
  const scp::SlotEnvelope e(
      3, scp::Envelope(0, 1, q, scp::Statement{scp::NominateStmt{}}));
  EXPECT_EQ(e.type_name(), "scp.slot.nominate");
  EXPECT_GT(e.byte_size(), 8u);
}

// Property sweep: random k-OSR graphs, 3-slot chains, random safe faults.
class LedgerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerPropertyTest, ChainsAgreeOnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 3 + 1);
  const std::size_t f = 1;
  graph::KosrGenParams params;
  params.sink_size = 5;
  params.non_sink_size = 2 + seed % 3;
  params.k = 2 * f + 1;
  params.seed = seed;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet sink = graph::unique_sink_component(g);
  const NodeSet faulty =
      graph::pick_safe_faulty_set(g, sink, f, /*allow_in_sink=*/true, rng);

  LedgerHarness h(g, f, faulty, 3, seed);
  ASSERT_TRUE(h.run()) << "seed=" << seed;
  const ProcessId first = h.correct.min_member();
  for (ProcessId i : h.correct) {
    EXPECT_EQ(h.nodes[i]->chain_digest(), h.nodes[first]->chain_digest())
        << "seed=" << seed << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace scup::core
