// NetworkModel — the pluggable link layer of the simulator.
//
// The paper's system model (Section III-A) is partial synchrony over
// reliable authenticated channels: messages sent before GST suffer
// arbitrary (configuration-bounded) delays; messages sent after GST arrive
// within [min_delay, max_delay]. A NetworkModel decides, per send, when (or
// whether) a message is delivered, which lets experiments express the
// adversary-space the plain uniform-delay simulator could not:
//
//  - per-link / per-direction delay overrides (asymmetric links, a slow
//    WAN edge inside a fast cluster);
//  - partition schedules: a node-set bipartition is cut for a time window
//    and heals afterwards (heal at GST to stay inside the reliable-channel
//    model — messages crossing the cut are *deferred* to the heal, never
//    lost);
//  - pre-GST message loss and duplication (channels only need to be
//    reliable from GST on for the paper's liveness arguments; protocols
//    that want liveness through a lossy pre-GST phase must retransmit, see
//    cup::DiscoveryConfig::requery_interval).
//
// The default UniformModel with a default-constructed feature set draws
// exactly one uniform delay per send from the simulation's network RNG —
// the same stream the pre-NetworkModel simulator drew — so existing
// seeds reproduce byte-identical runs.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace scup::sim {

/// Directional delay override: messages from `from` to `to` use
/// [min_delay, max_delay] instead of the global bounds (both pre- and
/// post-GST; an override models a link's physical latency, which partial
/// synchrony does not change). Add two entries for a symmetric link.
struct LinkOverride {
  ProcessId from = kInvalidProcess;
  ProcessId to = kInvalidProcess;
  SimTime min_delay = 1;
  SimTime max_delay = 10;
};

/// Bipartition cut active during [start, heal): messages crossing between
/// `side` and its complement while the window is active are deferred to
/// `heal` plus a freshly-sampled delay (reliable channels: deferred, not
/// dropped). Messages already in flight when the window opens are
/// unaffected (the cut applies at send time). Keep `heal <= gst` to stay
/// inside the paper's model; the simulator itself allows any window.
struct PartitionWindow {
  NodeSet side;
  SimTime start = 0;
  SimTime heal = 0;
};

struct NetworkConfig {
  /// Global stabilization time. 0 means the system is synchronous from the
  /// start.
  SimTime gst = 0;
  /// Post-GST delivery delay bounds [min_delay, max_delay].
  SimTime min_delay = 1;
  SimTime max_delay = 10;
  /// Pre-GST delays are uniform in [min_delay, pre_gst_max_delay]; messages
  /// in flight at GST still use their sampled delay (they are all
  /// eventually delivered, as required by reliable channels).
  SimTime pre_gst_max_delay = 200;
  std::uint64_t seed = 1;

  // ---- UniformModel feature set (all off by default; when off, the RNG
  // ---- stream is exactly the historical one-draw-per-send stream). ----

  /// Probability that a message sent before GST is lost. Post-GST sends
  /// are never dropped (reliable from GST on).
  double pre_gst_drop = 0.0;
  /// Probability that a message sent before GST is delivered twice (the
  /// duplicate gets its own sampled delay).
  double pre_gst_duplicate = 0.0;
  /// Per-direction delay overrides (first matching entry wins).
  std::vector<LinkOverride> link_overrides;
  /// Partition schedule (all active crossing windows apply; the latest
  /// heal wins).
  std::vector<PartitionWindow> partitions;

  // ---- sharded-engine lookahead knobs (ignored by the legacy loop) ----

  /// Spacing of the run_until predicate-checkpoint grid. Windows are
  /// clamped to multiples of this quantum and the predicate is evaluated
  /// only at those grid points, which is what keeps the stop point (and
  /// with it the final metrics) identical for every shard count even
  /// though window widths depend on the shard partition. 0 = auto: the
  /// model's base_min_latency(), floored at one tick.
  SimTime lookahead_quantum = 0;
  /// Derive window widths from the global min_latency() floor instead of
  /// the per-pair cross-shard latency matrix. This is the pre-lookahead
  /// behaviour, kept selectable so the E15 bench can A/B the window
  /// schedules; results are bit-identical either way, only the window
  /// count changes.
  bool lookahead_global_min = false;

  // ---- broadcast-plane knobs ----

  /// Draw message storage from the per-Simulation slab pool
  /// (sim/message_pool.hpp) inside run loops. Purely an allocation
  /// strategy — results are bit-identical either way; kept selectable so
  /// the E16 bench can A/B legacy make_shared against the pooled plane.
  bool message_pool = true;

  /// Collect the barrier-replay timing breakdown (ShardStats::*_ns) with
  /// steady_clock timers. Off by default: wall-clock reads cost more than
  /// a narrow window body, and timing lives outside the identity contract
  /// (ShardStats is never part of SimMetrics).
  bool shard_timing = false;
};

/// Link-layer policy: one verdict per send. Implementations draw all
/// randomness from the `rng` handed in (the sending process's dedicated
/// per-sender network stream), so a (model, seed) pair fully determines
/// every delivery.
///
/// Draw-plan contract: on_send must consume exactly draws_per_send(now)
/// draws from `rng`, independent of the link, the sampled values, or the
/// verdict. The simulation enforces this per send (a violation throws).
/// The contract is what lets shards evaluate verdicts in parallel at send
/// time — each sender's stream position is the prefix sum of its own draw
/// plan, so StreamRng::discard can jump any replay to the exact draw a
/// live run used (pinned by the draw-plan differential test).
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  struct Verdict {
    /// Absolute delivery time (ignored when dropped).
    SimTime deliver_at = 0;
    /// True: the message is lost (only meaningful pre-GST).
    bool dropped = false;
    /// True: deliver a second copy at `duplicate_at`.
    bool duplicated = false;
    SimTime duplicate_at = 0;
  };

  /// Called once per send, at simulated time `now`.
  virtual Verdict on_send(ProcessId from, ProcessId to, SimTime now,
                          StreamRng& rng) = 0;

  /// Exact number of draws on_send consumes for a send at time `now` (the
  /// draw plan). Must not depend on the (from, to) pair — the plan has to
  /// be computable without knowing which link a past send used. Default 0:
  /// correct for deterministic models that never touch the stream.
  virtual std::uint64_t draws_per_send(SimTime now) const {
    (void)now;
    return 0;
  }

  /// Conservative lower bound on link latency: on_send must never schedule
  /// a delivery (either copy) earlier than `now + min_latency()`, on any
  /// link, at any time. A model must not over-promise — the sharded
  /// engine's soundness rests on these bounds. The default (0) is always
  /// safe but disables sharded execution across > 1 shard.
  virtual SimTime min_latency() const { return 0; }

  /// Per-pair refinement of min_latency(): on_send(from, to, now, ...)
  /// must never schedule a delivery earlier than
  /// now + min_latency(from, to). The sharded engine derives its window
  /// width from the minimum over *cross-shard* pairs only, so a topology
  /// with fast intra-shard links and slow cross-shard links gets windows
  /// as wide as the slow links allow. Default: the global bound.
  virtual SimTime min_latency(ProcessId from, ProcessId to) const {
    (void)from;
    (void)to;
    return min_latency();
  }

  /// One directed pair whose latency floor differs from
  /// base_min_latency().
  struct LatencyOverride {
    ProcessId from = kInvalidProcess;
    ProcessId to = kInvalidProcess;
    SimTime min_delay = 0;
  };

  /// The latency floor of every pair NOT listed by latency_overrides().
  /// Together the two describe the whole min_latency(from, to) matrix in
  /// O(#overrides) space, which is how the engine computes per-shard
  /// window widths without n^2 virtual calls. Default: the global bound.
  virtual SimTime base_min_latency() const { return min_latency(); }

  /// Sparse exceptions to base_min_latency(), at most one entry per
  /// directed (from, to) pair. Default: none.
  virtual std::vector<LatencyOverride> latency_overrides() const {
    return {};
  }
};

/// The default model: uniform delays with the NetworkConfig feature set
/// (overrides, partitions, pre-GST loss/duplication). Sampling order per
/// send is fixed — base delay, then drop chance, then duplicate chance,
/// then the duplicate's delay — and per the draw-plan contract the number
/// of draws depends only on which features are *enabled* (and on now vs
/// GST), never on the sampled outcomes: one draw for the base delay, plus
/// one pre-GST when dropping is enabled, plus two pre-GST when
/// duplication is enabled (the coin and the duplicate's delay, drawn even
/// when the coin says no).
class UniformModel : public NetworkModel {
 public:
  explicit UniformModel(const NetworkConfig& config);

  Verdict on_send(ProcessId from, ProcessId to, SimTime now,
                  StreamRng& rng) override;

  std::uint64_t draws_per_send(SimTime now) const override;

  /// min over the global min_delay and every link override's min_delay
  /// (partitions only defer deliveries, so they never lower the bound).
  SimTime min_latency() const override { return min_latency_; }

  /// Per-pair floors: an overridden link reports its own min_delay; every
  /// other pair reports the global min_delay — NOT min_latency(), whose
  /// global min would let one fast override link drag the floor down for
  /// all traffic (the pre-lookahead window pessimization).
  SimTime min_latency(ProcessId from, ProcessId to) const override;

  SimTime base_min_latency() const override { return config_.min_delay; }

  std::vector<LatencyOverride> latency_overrides() const override;

 private:
  /// Delay bounds for one directed link at time `now`.
  std::pair<SimTime, SimTime> bounds(ProcessId from, ProcessId to,
                                     SimTime now) const;
  /// Heal time of the latest partition window cutting (from, to) at `now`,
  /// or -1 when the link is uncut.
  SimTime crossing_heal(ProcessId from, ProcessId to, SimTime now) const;

  NetworkConfig config_;
  std::map<std::pair<ProcessId, ProcessId>, std::pair<SimTime, SimTime>>
      overrides_;
  SimTime min_latency_ = 0;
};

}  // namespace scup::sim
