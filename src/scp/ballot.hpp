// SCP ballots: a ballot is a pair (n, x) of counter and value, totally
// ordered lexicographically; two ballots are compatible when they carry the
// same value.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace scup::scp {

struct Ballot {
  std::uint32_t n = 0;  // counter; 0 means "no ballot"
  Value x = kNoValue;

  bool valid() const { return n > 0; }

  friend bool operator==(const Ballot&, const Ballot&) = default;
  friend std::strong_ordering operator<=>(const Ballot& a, const Ballot& b) {
    if (auto c = a.n <=> b.n; c != 0) return c;
    return a.x <=> b.x;
  }

  std::string to_string() const {
    if (!valid()) return "<0>";
    return "<" + std::to_string(n) + "," + std::to_string(x) + ">";
  }
};

inline bool compatible(const Ballot& a, const Ballot& b) { return a.x == b.x; }

/// b "covers" β for prepared purposes: β ≤ b with the same value.
inline bool le_compatible(const Ballot& beta, const Ballot& b) {
  return b.valid() && beta.valid() && beta.x == b.x && beta.n <= b.n;
}

}  // namespace scup::scp
