// Fixture suite for scup-lint: every rule must fire on its known-bad
// snippet, stay quiet on the annotated variant, honour suppressions, flag
// stale suppressions/annotations, and the CLI must keep its exit-code
// contract (0 clean / 1 findings / 2 usage).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace scup::lint;

namespace {

std::string read_fixture(const std::string& name) {
  const fs::path path = fs::path(SCUP_LINT_FIXTURES) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lints a fixture as if it lived at `rel_path`, with the unordered-ident
/// list collected from the fixture itself (mirroring the CLI's pass 1).
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& rel_path) {
  const std::string content = read_fixture(name);
  LintOptions opts;
  opts.unordered_idents = collect_unordered_idents(content);
  return lint_file(rel_path, content, opts);
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

bool has_finding(const std::vector<Finding>& findings, std::string_view rule,
                 std::size_t line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------- scanner

TEST(Scanner, StripsCommentsAndBlanksStrings) {
  const auto lines = scan_source(
      "int a = 1;  // std::thread in a comment\n"
      "const char* s = \"std::rand inside a string\";\n"
      "/* block\n"
      "   std::random_device\n"
      "*/ int b = 2;\n");
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0].code.find("thread"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("std::thread"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[1].code.find("\"\""), std::string::npos);
  EXPECT_EQ(lines[3].code.find("random_device"), std::string::npos);
  EXPECT_NE(lines[4].code.find("int b = 2;"), std::string::npos);
}

TEST(Scanner, CollectsUnorderedIdentifiers) {
  const auto idents = collect_unordered_idents(
      "std::unordered_map<std::size_t, std::vector<int>> by_hash_;\n"
      "mutable std::unordered_map<Key, NodeSet, KeyHash> support_;\n"
      "std::unordered_set<NodeSet> seen;\n"
      "std::map<int, int> ordered_;\n"
      "std::unordered_map<int, int> make_map();\n");
  EXPECT_EQ(idents.size(), 3u);
  EXPECT_NE(std::find(idents.begin(), idents.end(), "by_hash_"),
            idents.end());
  EXPECT_NE(std::find(idents.begin(), idents.end(), "support_"),
            idents.end());
  EXPECT_NE(std::find(idents.begin(), idents.end(), "seen"), idents.end());
  // Function declarations returning unordered maps are not identifiers.
  EXPECT_EQ(std::find(idents.begin(), idents.end(), "make_map"),
            idents.end());
}

// ---------------------------------------------------------------- rules

TEST(RuleUnorderedIter, FiresOnBareLoop) {
  const auto findings =
      lint_fixture("det_unordered_iter_bad.cpp", "src/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleUnorderedIter), 1u);
  EXPECT_TRUE(has_finding(findings, kRuleUnorderedIter, 9));
}

TEST(RuleUnorderedIter, QuietWhenAnnotated) {
  const auto findings =
      lint_fixture("det_unordered_iter_ok.cpp", "src/fix.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(RuleUnorderedIter, ScopedToSrc) {
  const auto findings =
      lint_fixture("det_unordered_iter_bad.cpp", "tests/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleUnorderedIter), 0u);
}

TEST(RuleRawRandom, FiresOnEverySource) {
  const auto findings = lint_fixture("det_raw_random_bad.cpp", "src/fix.cpp");
  // random_device, mt19937 seed, srand/time, std::rand.
  EXPECT_GE(count_rule(findings, kRuleRawRandom), 4u);
}

TEST(RuleRawRandom, ExemptInsideCommonRng) {
  const auto findings =
      lint_fixture("det_raw_random_bad.cpp", "src/common/rng.cpp");
  EXPECT_EQ(count_rule(findings, kRuleRawRandom), 0u);
}

TEST(RuleRawThread, FiresOnSpawnDetachAsync) {
  const auto findings = lint_fixture("conc_raw_thread_bad.cpp", "src/fix.cpp");
  EXPECT_GE(count_rule(findings, kRuleRawThread), 3u);
}

TEST(RuleRawThread, ExemptInsideScenarioMatrix) {
  const auto findings = lint_fixture("conc_raw_thread_bad.cpp",
                                     "src/core/scenario_matrix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleRawThread), 0u);
}

TEST(RuleShardEscape, FiresOnThreadsAndGlobalsInShardFiles) {
  const auto findings =
      lint_fixture("det_shard_escape_bad.cpp", "src/sim/sharded_engine.cpp");
  // std::thread spawn, .detach, next_seq_, metrics_.
  EXPECT_EQ(count_rule(findings, kRuleShardEscape), 4u);
  EXPECT_TRUE(has_finding(findings, kRuleShardEscape, 7));
  EXPECT_TRUE(has_finding(findings, kRuleShardEscape, 12));
  // conc-raw-thread stays out of src/sim/: disjoint scopes mean one
  // finding, with the sharding-specific message, per violation.
  EXPECT_EQ(count_rule(findings, kRuleRawThread), 0u);
}

TEST(RuleShardEscape, GlobalsCheckedOnlyInShardEngineFiles) {
  // simulation.cpp is src/sim/ but not a shard* file: mutating the global
  // engine state is the serial loop's job, only the thread ban applies.
  const auto findings =
      lint_fixture("det_shard_escape_bad.cpp", "src/sim/simulation.cpp");
  EXPECT_EQ(count_rule(findings, kRuleShardEscape), 2u);
  EXPECT_TRUE(has_finding(findings, kRuleShardEscape, 7));
  EXPECT_TRUE(has_finding(findings, kRuleShardEscape, 8));
}

TEST(RuleShardEscape, ThreadsExemptInsideShardPool) {
  // The pool is the sanctioned thread owner, but it is still a shard file:
  // the engine-global checks keep applying there.
  const auto findings =
      lint_fixture("det_shard_escape_bad.cpp", "src/sim/shard_pool.cpp");
  EXPECT_EQ(count_rule(findings, kRuleShardEscape), 2u);
  EXPECT_TRUE(has_finding(findings, kRuleShardEscape, 12));
  EXPECT_TRUE(has_finding(findings, kRuleShardEscape, 13));
}

TEST(RuleShardEscape, ScopedToSim) {
  const auto findings =
      lint_fixture("det_shard_escape_bad.cpp", "src/core/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleShardEscape), 0u);
  EXPECT_EQ(count_rule(findings, kRuleRawThread), 2u);
}

TEST(RuleShardEscape, QuietInsideBarrierRegion) {
  const auto findings =
      lint_fixture("det_shard_escape_ok.cpp", "src/sim/sharded_engine.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(RuleDrawplanEscape, FiresOutsideDrawplanRegions) {
  // Two mentions of net_streams_ (the direct draw and the reference
  // alias); the alias's later use is invisible to the token rule, which
  // is exactly why taking the alias is itself a finding.
  const auto findings =
      lint_fixture("det_drawplan_escape_bad.cpp", "src/sim/simulation.cpp");
  EXPECT_EQ(count_rule(findings, kRuleDrawplanEscape), 2u);
  EXPECT_TRUE(has_finding(findings, kRuleDrawplanEscape, 6));
  EXPECT_TRUE(has_finding(findings, kRuleDrawplanEscape, 7));
}

TEST(RuleDrawplanEscape, QuietInsideDrawplanRegion) {
  const auto findings =
      lint_fixture("det_drawplan_escape_ok.cpp", "src/sim/simulation.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(RuleDrawplanEscape, ScopedToSim) {
  // The streams are a simulator-internal invariant; core/ and tests/
  // never see them.
  const auto findings =
      lint_fixture("det_drawplan_escape_bad.cpp", "src/core/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleDrawplanEscape), 0u);
}

TEST(RuleUnguardedStatic, FiresOnMutableStaticOnly) {
  const auto findings =
      lint_fixture("conc_unguarded_static_bad.cpp", "src/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleUnguardedStatic), 1u);
  EXPECT_TRUE(has_finding(findings, kRuleUnguardedStatic, 6));
}

TEST(RuleUnguardedStatic, QuietWhenAnnotated) {
  const auto findings =
      lint_fixture("conc_unguarded_static_ok.cpp", "src/fix.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(RuleNarrowingCast, FiresOnIdLikeArguments) {
  const auto findings =
      lint_fixture("byz_narrowing_cast_bad.cpp", "src/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleNarrowingCast), 3u);
  EXPECT_TRUE(has_finding(findings, kRuleNarrowingCast, 6));
  EXPECT_TRUE(has_finding(findings, kRuleNarrowingCast, 10));
}

TEST(RuleNarrowingCast, QuietWhenBoundedAnnotated) {
  const auto findings =
      lint_fixture("byz_narrowing_cast_ok.cpp", "src/fix.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(RuleUnboundedMap, FiresInsideHandlePathsOnly) {
  const auto findings =
      lint_fixture("byz_unbounded_map_bad.cpp", "src/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleUnboundedMap), 1u);
  EXPECT_TRUE(has_finding(findings, kRuleUnboundedMap, 16));
}

TEST(RuleUnboundedMap, QuietWhenBoundedAnnotated) {
  const auto findings =
      lint_fixture("byz_unbounded_map_ok.cpp", "src/fix.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(RulePerfHotAlloc, FiresInsideEveryHandlerShape) {
  const auto findings =
      lint_fixture("perf_hot_alloc_bad.cpp", "src/fix.cpp");
  // make_shared + new in on_message, make_shared in on_messages, new in
  // handle; the cold make_cold() allocation stays unflagged.
  EXPECT_EQ(count_rule(findings, kRulePerfHotAlloc), 4u);
  EXPECT_TRUE(has_finding(findings, kRulePerfHotAlloc, 21));
  EXPECT_TRUE(has_finding(findings, kRulePerfHotAlloc, 22));
  EXPECT_TRUE(has_finding(findings, kRulePerfHotAlloc, 29));
  EXPECT_TRUE(has_finding(findings, kRulePerfHotAlloc, 34));
}

TEST(RulePerfHotAlloc, QuietWhenAnnotated) {
  const auto findings =
      lint_fixture("perf_hot_alloc_ok.cpp", "src/fix.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(RulePerfHotAlloc, ScopedToSrc) {
  // bench/ and tests/ build throwaway messages by hand; the hot-path rule
  // is a production-tree discipline.
  const auto findings =
      lint_fixture("perf_hot_alloc_bad.cpp", "bench/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRulePerfHotAlloc), 0u);
}

TEST(MetaRules, AnnotationsBindToTheWholeStatement) {
  // One `bounded` before a wrapped statement covers flagged casts on every
  // continuation line of that statement, and is consumed, not stale.
  const auto findings =
      lint_fixture("annotation_wrapped_stmt_ok.cpp", "src/fix.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(MetaRules, AnnotationRangeStopsAtTheStatementEnd) {
  // The statement range ends at the first terminator: a flagged construct
  // on the *next* statement is not excused by the previous annotation.
  const auto findings = lint_file(
      "src/fix.cpp",
      "void f(std::uint64_t view) {\n"
      "  // scup-lint: bounded(view < 4 checked above)\n"
      "  const auto a = static_cast<std::uint32_t>(view);\n"
      "  const auto b = static_cast<std::uint32_t>(view);\n"
      "  (void)a;\n"
      "  (void)b;\n"
      "}\n",
      LintOptions{});
  EXPECT_EQ(count_rule(findings, kRuleNarrowingCast), 1u);
  EXPECT_TRUE(has_finding(findings, kRuleNarrowingCast, 4));
  EXPECT_EQ(count_rule(findings, kRuleStaleAnnotation), 0u);
}

TEST(MetaRules, StaleAndUnknownAnnotations) {
  const auto findings =
      lint_fixture("stale_annotation_bad.cpp", "src/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleStaleAnnotation), 1u);
  EXPECT_EQ(count_rule(findings, kRuleUnknownAnnotation), 1u);
}

TEST(MetaRules, CleanFixtureIsClean) {
  const auto findings = lint_fixture("clean.cpp", "src/fix.cpp");
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

// ---------------------------------------------------------- suppressions

TEST(Suppressions, SilenceMatchingFindings) {
  std::vector<Finding> errors;
  auto supps = parse_suppressions("src/a.cpp det-raw-random\n", "supp.txt",
                                  errors);
  ASSERT_EQ(supps.size(), 1u);
  EXPECT_TRUE(errors.empty());
  std::vector<Finding> findings{
      {"src/a.cpp", 3, std::string(kRuleRawRandom), "x"},
      {"src/b.cpp", 7, std::string(kRuleRawRandom), "y"},
  };
  const auto kept =
      apply_suppressions(std::move(findings), supps, "supp.txt");
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].file, "src/b.cpp");
}

TEST(Suppressions, UnknownRuleIsAnError) {
  std::vector<Finding> errors;
  auto supps = parse_suppressions(
      "# comment\n"
      "src/a.cpp no-such-rule\n"
      "src/a.cpp lint-stale-suppression\n"  // meta rules not suppressible
      "src/a.cpp det-raw-random extra-field\n",
      "supp.txt", errors);
  EXPECT_TRUE(supps.empty());
  EXPECT_EQ(count_rule(errors, kRuleBadSuppression), 3u);
}

TEST(Suppressions, StaleEntryIsAFinding) {
  std::vector<Finding> errors;
  auto supps = parse_suppressions("src/gone.cpp det-raw-random\n", "supp.txt",
                                  errors);
  const auto kept = apply_suppressions({}, supps, "supp.txt");
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].rule, kRuleStaleSuppression);
  EXPECT_EQ(kept[0].file, "supp.txt");
  EXPECT_EQ(kept[0].line, 1u);
}

// ------------------------------------------------------ exit-code contract

#if defined(__unix__) || defined(__APPLE__)

namespace {

int run_binary(const std::string& args) {
  const std::string cmd =
      std::string(SCUP_LINT_BINARY) + " " + args + " > /dev/null 2>&1";
  const int raw = std::system(cmd.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

void write_file(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << content;
}

}  // namespace

TEST(ExitCode, CleanTreeReturnsZero) {
  const fs::path root =
      fs::temp_directory_path() / "scup_lint_exit0";
  fs::remove_all(root);
  write_file(root / "src" / "ok.cpp", "int main() { return 0; }\n");
  EXPECT_EQ(run_binary(root.string()), 0);
  fs::remove_all(root);
}

TEST(ExitCode, FindingsReturnOne) {
  const fs::path root =
      fs::temp_directory_path() / "scup_lint_exit1";
  fs::remove_all(root);
  write_file(root / "src" / "bad.cpp",
             "#include <random>\nstd::random_device rd;\n");
  EXPECT_EQ(run_binary(root.string()), 1);
  fs::remove_all(root);
}

TEST(ExitCode, SuppressionsFlipFindingsToClean) {
  const fs::path root =
      fs::temp_directory_path() / "scup_lint_exit_supp";
  fs::remove_all(root);
  write_file(root / "src" / "bad.cpp",
             "#include <random>\nstd::random_device rd;\n");
  write_file(root / "supp.txt", "src/bad.cpp det-raw-random\n");
  EXPECT_EQ(run_binary(root.string() + " --suppressions " +
                       (root / "supp.txt").string()),
            0);
  // A stale suppression on a now-clean tree is itself a finding.
  write_file(root / "src" / "bad.cpp", "int main() { return 0; }\n");
  EXPECT_EQ(run_binary(root.string() + " --suppressions " +
                       (root / "supp.txt").string()),
            1);
  fs::remove_all(root);
}

TEST(ExitCode, UsageErrorsReturnTwo) {
  EXPECT_EQ(run_binary(""), 2);                       // no root
  EXPECT_EQ(run_binary("/nonexistent-scup-root"), 2);  // bad root
}

#endif  // unix
