// Immediate dominators (Cooper-Harvey-Kennedy iterative algorithm).
//
// Dominators are the single-source structural complement to the SCC /
// condensation machinery: vertex v dominates j (w.r.t. a root r) iff every
// r→j path passes through v. By Menger, a non-adjacent j has >= 2
// internally-vertex-disjoint paths from r exactly when it has no proper
// dominator other than r — i.e. idom(j) == r. One O(V+E)-ish pass therefore
// answers 2-vertex-connectivity from r to EVERY node at once, which is what
// lets f = 1 sink discovery admit whole batches without per-node max-flow
// runs (and hands each rejected node a one-vertex separator certificate:
// its dominator).
#pragma once

#include <vector>

#include "common/node_set.hpp"
#include "graph/digraph.hpp"

namespace scup::graph {

/// Immediate dominator of every node w.r.t. `root`, over g restricted to
/// `active`. idom[root] == root; nodes unreachable from root (or outside
/// `active`) get kInvalidProcess. Iterative RPO dataflow (CHK); worst-case
/// O(V·E) but converges in 2-3 passes on real graphs.
std::vector<ProcessId> immediate_dominators(const Digraph& g, ProcessId root,
                                            const NodeSet& active);

/// Set of nodes dominated by `v` (v's subtree in the dominator tree,
/// including v itself), given the idom array from immediate_dominators.
NodeSet dominated_by(const std::vector<ProcessId>& idom, ProcessId root,
                     ProcessId v, std::size_t universe);

}  // namespace scup::graph
