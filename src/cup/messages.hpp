// Wire messages of the knowledge-discovery layer (Section VI).
#pragma once

#include <map>

#include "common/node_set.hpp"
#include "sim/message.hpp"

namespace scup::cup {

/// A participant-detector certificate: process `owner` asserts that its PD
/// equals `pd`. In the real system this would be signed by `owner`; here the
/// convention is that only `owner` (or an adversarial `owner`) creates
/// certificates for itself, and everyone may forward them. A Byzantine owner
/// may issue conflicting certificates; receivers merge them by union (see
/// DESIGN.md §4.1).
struct PdCertificate {
  ProcessId owner = kInvalidProcess;
  NodeSet pd;
};

/// DISCOVER: "send me what you know". Carries the sender's own certificate
/// so that knowledge also flows forward along the query.
struct DiscoverMsg final : sim::Message {
  explicit DiscoverMsg(PdCertificate c) : cert(std::move(c)) {}
  PdCertificate cert;
  std::string type_name() const override { return "cup.discover"; }
  std::size_t byte_size() const override {
    return 16 + cert.pd.count() * 4;
  }
};

/// Reply to DISCOVER (and general gossip): all certificates the sender
/// holds, merged per owner.
struct CertGossipMsg final : sim::Message {
  explicit CertGossipMsg(std::map<ProcessId, NodeSet> c) : certs(std::move(c)) {
    // Messages are immutable once constructed, so the wire size is fixed
    // here. Computing it lazily in byte_size() would walk the whole map
    // once per destination — the metrics accounting in enqueue_send calls
    // it on every send, and gossip replies are shared across many sends.
    byte_size_ = 16;
    for (const auto& [owner, pd] : certs) {
      (void)owner;
      byte_size_ += 8 + pd.count() * 4;
    }
  }
  std::map<ProcessId, NodeSet> certs;
  std::string type_name() const override { return "cup.certs"; }
  std::size_t byte_size() const override { return byte_size_; }

 private:
  std::size_t byte_size_ = 0;
};

/// Step 2/3 of the SINK algorithm: the sender believes the set of processes
/// it can discover is `known`.
struct KnownMsg final : sim::Message {
  explicit KnownMsg(NodeSet k) : known(std::move(k)) {}
  NodeSet known;
  std::string type_name() const override { return "cup.known"; }
  std::size_t byte_size() const override { return 16 + known.count() * 4; }
};

/// Reachable-reliable broadcast payload: `origin` asks the sink members to
/// send it the sink (tag GET_SINK in Algorithm 3). Flooded along knowledge
/// edges with per-origin deduplication.
struct GetSinkMsg final : sim::Message {
  explicit GetSinkMsg(ProcessId o) : origin(o) {}
  ProcessId origin;
  std::string type_name() const override { return "cup.get_sink"; }
  std::size_t byte_size() const override { return 20; }
};

/// ⟨SINK, V⟩ in Algorithm 3: the sender claims the sink component is `sink`.
struct SinkValueMsg final : sim::Message {
  explicit SinkValueMsg(NodeSet s) : sink(std::move(s)) {}
  NodeSet sink;
  std::string type_name() const override { return "cup.sink_value"; }
  std::size_t byte_size() const override { return 16 + sink.count() * 4; }
};

}  // namespace scup::cup
