#include "core/adversaries.hpp"

#include "cup/messages.hpp"
#include "sinkdetector/slice_builder.hpp"

namespace scup::core {

// ------------------------------------------------------------ DiscoveryLiar

DiscoveryLiarNode::DiscoveryLiarNode(NodeSet real_pd, NodeSet fake_pd,
                                     std::size_t f,
                                     std::optional<NodeSet> second_fake_pd)
    : ComposedNode(f),
      real_pd_(std::move(real_pd)),
      fake_pd_(std::move(fake_pd)),
      second_fake_pd_(std::move(second_fake_pd)) {}

void DiscoveryLiarNode::start() {
  // Push the fabricated certificate(s) to everyone we really know, plus the
  // fabricated targets themselves — maximal spread of the lie.
  NodeSet audience = real_pd_ | fake_pd_;
  if (second_fake_pd_) audience |= *second_fake_pd_;
  for (ProcessId j : audience) {
    if (j == id()) continue;
    const NodeSet& claimed =
        (second_fake_pd_ && j % 2 == 1) ? *second_fake_pd_ : fake_pd_;
    send(j, sim::make_message<cup::DiscoverMsg>(
                cup::PdCertificate{id(), claimed}));
  }
}

void DiscoveryLiarNode::on_message(ProcessId from,
                                   const sim::MessagePtr& msg) {
  // Answer discovery queries with the lie (parity-dependent when
  // equivocating); ignore everything else (silent in consensus).
  if (dynamic_cast<const cup::DiscoverMsg*>(msg.get()) != nullptr) {
    const NodeSet& claimed =
        (second_fake_pd_ && from % 2 == 1) ? *second_fake_pd_ : fake_pd_;
    std::map<ProcessId, NodeSet> certs;
    // scup-sanitize: local one-entry reply map; this node IS the adversary
    certs.emplace(id(), claimed);
    send(from, sim::make_message<cup::CertGossipMsg>(std::move(certs)));
  }
}

// ---------------------------------------------------------- ScpEquivocator

ScpEquivocatorNode::ScpEquivocatorNode(NodeSet pd, std::size_t f,
                                       Value value_a, Value value_b)
    : ComposedNode(f),
      pd_(std::move(pd)),
      value_a_(value_a),
      value_b_(value_b),
      detector_(*this, pd_) {
  detector_.on_result = [this](const sinkdetector::GetSinkResult& r) {
    on_sink(r);
  };
}

void ScpEquivocatorNode::start() { detector_.start(); }

void ScpEquivocatorNode::on_sink(const sinkdetector::GetSinkResult& result) {
  // Build a legitimate-looking qset (Algorithm 2) so receivers treat the
  // envelopes as well-formed, then nominate value_a to even peers and
  // value_b to odd peers — a split-brain attempt.
  sinkdetector::GetSinkResult as_if = result;
  const fbqs::QSet qset =
      sinkdetector::build_slices(as_if, fault_threshold()).to_qset();
  NodeSet audience = pd_ | result.sink;
  for (ProcessId peer : audience) {
    if (peer == id()) continue;
    scp::NominateStmt stmt;
    stmt.voted.insert(peer % 2 == 0 ? value_a_ : value_b_);
    send(peer, sim::make_message<scp::Envelope>(id(), /*seq=*/1, qset,
                                                scp::Statement{stmt}));
  }
}

void ScpEquivocatorNode::on_message(ProcessId from,
                                    const sim::MessagePtr& msg) {
  // Participate honestly in discovery (it needs the sink to craft its
  // attack); drop everything else.
  detector_.handle(from, *msg);
}

}  // namespace scup::core
