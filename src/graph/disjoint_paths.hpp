// Vertex-disjoint path counting via max-flow (Menger's theorem).
//
// k-OSR (Definition 6) and f-reachability (Definition 9) are both stated in
// terms of node-disjoint paths. We count internally-vertex-disjoint paths
// from u to v with the standard vertex-splitting reduction (each vertex w
// becomes w_in -> w_out with capacity 1, except the endpoints) and Dinic's
// algorithm on unit-capacity networks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/node_set.hpp"
#include "graph/digraph.hpp"

namespace scup::graph {

/// Batch interface for many disjoint-path queries against one (graph,
/// active-set) pair. prepare() builds the vertex-split flow network once;
/// each query then only restores the pristine capacities (one vector copy)
/// instead of re-walking the graph and re-allocating adjacency storage. All
/// scratch buffers (level/iterator/queue arrays) are reused across queries
/// and across prepare() calls, so a long-lived engine performs no
/// steady-state allocation.
///
/// SinkDiscovery keeps one engine per process and re-prepares it only when
/// its certified graph gains edges; the free functions below build a
/// throwaway engine for one-off queries.
class DisjointPathEngine {
 public:
  /// (Re)builds the flow network for g restricted to `active`. Must be
  /// called before queries and after any change to g or `active`.
  void prepare(const Digraph& g, const NodeSet& active);

  /// Maximum number of internally-vertex-disjoint paths u -> v on the
  /// prepared network, early-exiting once `limit` augmenting paths are
  /// found. Returns 0 when u or v is outside the prepared active set.
  /// Requires u != v (throws std::invalid_argument otherwise).
  std::size_t max_disjoint_paths(ProcessId u, ProcessId v, std::size_t limit);

  /// True iff there are at least k internally-vertex-disjoint paths u -> v.
  bool has_k_paths(ProcessId u, ProcessId v, std::size_t k);

  /// Number of max-flow computations run since construction (monotone;
  /// exposed so benches can report disjoint-path-evaluation counts).
  std::uint64_t query_count() const { return query_count_; }

  /// A Menger certificate for a *failed* has_k_paths query: every u → v
  /// path either leaves `source_side` over an edge into `cut` (at most
  /// flow-many vertices) or is the direct edge u → v. The verdict "fewer
  /// than k disjoint paths" therefore stays valid in any supergraph until
  /// an edge appears from `source_side` to a node outside
  /// `source_side` ∪ `cut` — the cheap invalidation test incremental
  /// callers run per new edge instead of re-running the max-flow.
  struct VertexCut {
    NodeSet source_side;  // residual-reachable side, includes u
    NodeSet cut;          // covering separator vertices, |cut| <= flow
  };

  /// Extracts the certificate for the immediately preceding
  /// max_disjoint_paths/has_k_paths call on (u, v). Only meaningful when
  /// that call found fewer paths than its limit (the Dinic run ended with
  /// no augmenting path); calling it after a limit-hit query yields a
  /// frontier that proves nothing.
  VertexCut extract_cut(ProcessId u, ProcessId v);

 private:
  struct Arc {
    int to;
    int next;
  };

  bool bfs(int s, int t);
  int dfs(int u, int t, int pushed);

  // Static network topology, rebuilt by prepare().
  std::vector<Arc> arcs_;
  std::vector<int> base_cap_;   // pristine capacities (endpoint caps are 1)
  std::vector<int> head_;       // per flow-node adjacency heads
  std::vector<int> split_arc_;  // graph node w -> arc index of w_in -> w_out
  // Per-query scratch.
  std::vector<int> cap_;
  std::vector<int> level_;
  std::vector<int> iter_;
  std::vector<int> queue_;

  NodeSet active_;
  std::size_t n_ = 0;
  int big_ = 0;
  bool prepared_ = false;
  std::uint64_t query_count_ = 0;
};

/// Maximum number of internally-vertex-disjoint directed paths from u to v
/// in g restricted to `active` nodes. Returns 0 if u or v is inactive;
/// throws if u == v. If edge u->v exists it counts as one path.
std::size_t max_vertex_disjoint_paths(const Digraph& g, ProcessId u,
                                      ProcessId v, const NodeSet& active);
std::size_t max_vertex_disjoint_paths(const Digraph& g, ProcessId u,
                                      ProcessId v);

/// True iff there are at least k internally-vertex-disjoint paths from u to
/// v. Early-exits once k augmenting paths are found, so it is cheaper than
/// computing the exact maximum when only the threshold matters.
bool has_k_vertex_disjoint_paths(const Digraph& g, ProcessId u, ProcessId v,
                                 std::size_t k, const NodeSet& active);

/// True iff g restricted to `active` is k-strongly connected: every ordered
/// pair of distinct active nodes is joined by >= k vertex-disjoint paths
/// (footnote 1 of the paper).
bool is_k_strongly_connected(const Digraph& g, std::size_t k,
                             const NodeSet& active);
bool is_k_strongly_connected(const Digraph& g, std::size_t k);

/// f-reachability (Definition 9): j is f-reachable from i if there are at
/// least f+1 vertex-disjoint paths from i to j consisting only of correct
/// processes (i.e. in the subgraph induced by `correct`).
bool is_f_reachable(const Digraph& g, ProcessId i, ProcessId j, std::size_t f,
                    const NodeSet& correct);

}  // namespace scup::graph
