// Project linking + analysis driver: joins the per-TU models into name
// indices, runs the three rule families, then the meta pass (stale
// annotations), and renders the --dump report.
#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze_internal.hpp"

namespace scup::analyze {

std::vector<FnRef> ProjectIndex::resolve(const FunctionSym& caller,
                                         const CallSite& c) const {
  std::vector<FnRef> out;
  auto [lo, hi] = by_name.equal_range(c.name);
  if (!c.qual_class.empty()) {
    if (c.qual_class == "std") return out;
    for (auto it = lo; it != hi; ++it) {
      if (fn(it->second).cls == c.qual_class) out.push_back(it->second);
    }
    return out;
  }
  if (!c.receiver.empty()) {
    for (auto it = lo; it != hi; ++it) {
      if (!fn(it->second).cls.empty()) out.push_back(it->second);
    }
    return out;
  }
  // Plain name: same-class methods win; otherwise every definition.
  if (!caller.cls.empty()) {
    for (auto it = lo; it != hi; ++it) {
      if (fn(it->second).cls == caller.cls) out.push_back(it->second);
    }
    if (!out.empty()) return out;
  }
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

ProjectIndex build_index(std::vector<TU>& tus) {
  ProjectIndex ix;
  ix.tus = &tus;
  for (std::size_t ti = 0; ti < tus.size(); ++ti) {
    TU& tu = tus[ti];
    for (std::size_t fi = 0; fi < tu.functions.size(); ++fi) {
      FunctionSym& f = tu.functions[fi];
      ix.by_name.emplace(f.name, FnRef{ti, fi});
      if (!f.requires_locks.empty()) {
        ix.requires_lock_fns.push_back(FnRef{ti, fi});
      }
    }
    for (std::size_t di = 0; di < tu.fields.size(); ++di) {
      FieldSym& d = tu.fields[di];
      if (d.func.empty()) ix.field_names.insert(d.name);
      if (d.owner != Owner::kNone) {
        // The discipline requires distinctive names; first declaration
        // wins and duplicates surface as a finding in ownership.cpp.
        ix.owner_fields.emplace(d.name, FieldRef{ti, di});
      }
      if (!d.guarded_by.empty()) ix.guarded_fields.push_back(FieldRef{ti, di});
    }
  }
  return ix;
}

namespace {

/// Meta pass: every annotation must have been consumed by the rule that
/// reads it, or it is dead weight the next reader will trust wrongly.
void run_stale(std::vector<TU>& tus, std::vector<Finding>& out) {
  static const char* kKindName[] = {
      "scup-owner",   "scup-guarded-by",      "scup-sanitize",
      "shard-entry",  "barrier-entry",        "owner-ok",
      "requires-lock"};
  for (TU& tu : tus) {
    for (const Annotation& a : tu.annotations) {
      if (a.consumed) continue;
      out.push_back(Finding{
          tu.path, a.comment_line, std::string(kRuleStaleAnnotation),
          std::string(kKindName[static_cast<int>(a.kind)]) +
              " annotation not consumed by any rule — the code it "
              "describes no longer needs it; remove or rebind it"});
    }
  }
}

}  // namespace

std::vector<Finding> analyze(std::vector<TU>& tus) {
  std::vector<Finding> out;
  for (const TU& tu : tus) {
    out.insert(out.end(), tu.parse_findings.begin(), tu.parse_findings.end());
  }
  ProjectIndex ix = build_index(tus);
  run_taint(ix, out);
  run_ownership(ix, out);
  run_locks(ix, out);
  run_stale(tus, out);
  scup::lint::sort_findings(out);
  return out;
}

std::string dump(const std::vector<TU>& tus) {
  std::ostringstream os;
  for (const TU& tu : tus) {
    os << "== " << tu.path << "\n";
    for (const FieldSym& d : tu.fields) {
      if (d.owner == Owner::kNone && d.guarded_by.empty()) continue;
      os << "  field " << (d.cls.empty() ? d.func : d.cls) << "::" << d.name;
      switch (d.owner) {
        case Owner::kShard:
          os << " owner=shard";
          break;
        case Owner::kBarrier:
          os << " owner=barrier";
          break;
        case Owner::kEngine:
          os << " owner=engine";
          break;
        case Owner::kNone:
          break;
      }
      if (!d.guarded_by.empty()) os << " guarded-by=" << d.guarded_by;
      os << "\n";
    }
    for (const FunctionSym& f : tu.functions) {
      os << "  fn " << (f.cls.empty() ? "" : f.cls + "::") << f.name << " ("
         << f.params.size() << " params, " << f.stmts.size() << " stmts) @"
         << f.line;
      if (f.shard_entry) os << " shard-entry";
      if (f.barrier_entry) os << " barrier-entry";
      if (f.in_shard) os << " [SHARD]";
      if (f.in_barrier) os << " [BARRIER]";
      if (f.owner_ok) os << " owner-ok";
      for (const std::string& m : f.requires_locks) {
        os << " requires-lock(" << m << ")";
      }
      if (f.sink_params != 0) {
        os << " sink-params{";
        bool first = true;
        for (std::size_t i = 0; i < f.params.size() && i < 32; ++i) {
          if ((f.sink_params >> i) & 1u) {
            os << (first ? "" : ",") << f.params[i];
            first = false;
          }
        }
        os << "}";
      }
      os << "\n";
      // Deduplicated callee names, so reviewers can walk the call graph.
      std::set<std::string> callees;
      for (const CallSite& c : f.calls) {
        std::string label = c.name;
        if (!c.qual_class.empty()) label = c.qual_class + "::" + label;
        if (!c.receiver.empty()) label = c.receiver + "." + label;
        callees.insert(std::move(label));
      }
      if (!callees.empty()) {
        os << "    calls:";
        for (const std::string& cs : callees) os << " " << cs;
        os << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace scup::analyze
