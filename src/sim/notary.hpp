// Signature simulation.
//
// The paper's model assumes authenticated channels and (implicitly, via the
// BFT-CUP substrate) the ability to present unforgeable evidence of what
// other processes said (e.g. PBFT view-change certificates). Instead of real
// cryptography we keep a per-process secret inside the simulator: a token is
// a keyed hash of (secret, statement). Correct processes sign only their own
// statements through Process-level helpers; Byzantine implementations can
// replay tokens they have observed but cannot mint tokens for other
// processes (they never see the secrets).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace scup::sim {

class Notary {
 public:
  using Token = std::uint64_t;

  Notary(std::size_t n, std::uint64_t seed);

  /// Token binding `signer` to `statement`. Every call is appended to
  /// log(), so the signing trace doubles as a protocol-behaviour
  /// fingerprint for determinism checks.
  Token sign(ProcessId signer, std::uint64_t statement) const;

  /// Signature check; does not log (verification is a read).
  bool verify(ProcessId signer, std::uint64_t statement, Token token) const;

  /// Every (signer, statement) pair signed so far, in order. Two runs of
  /// the same seeded simulation must produce identical logs.
  const std::vector<std::pair<ProcessId, std::uint64_t>>& log() const {
    return log_;
  }

 private:
  Token token_for(ProcessId signer, std::uint64_t statement) const;

  std::vector<std::uint64_t> secrets_;
  /// The log is observational state, not signature semantics; sign() stays
  /// const for callers holding the simulation's const notary reference.
  mutable std::vector<std::pair<ProcessId, std::uint64_t>> log_;
};

}  // namespace scup::sim
