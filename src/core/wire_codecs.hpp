// Decode-side registration for the wire codec (DESIGN.md §4.9).
//
// Encoding never needs a registry (wire_encode is a virtual on the
// message), but turning bytes back into messages does, and the decoders
// live above sim/ in the layer graph — so the table is populated here in
// core/, the one module that sees every protocol family. Explicit
// registration also sidesteps the static-initializer-dropping hazard of
// self-registering translation units in a static library.
#pragma once

namespace scup::core {

/// Registers the decoder for every protocol message family (cup discovery
/// and gossip — which the sink detector reuses — SCP envelopes, ledger
/// SlotEnvelopes, PBFT, and BFT-CUP dissemination) with
/// sim::WireCodecRegistry. Idempotent and thread-safe; call before
/// sim::decode_frame.
void register_wire_codecs();

}  // namespace scup::core
