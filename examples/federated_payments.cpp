// A Stellar-style federated payments ledger on CUP knowledge — with
// participants that join while the system is already running.
//
// The scenario the paper's introduction motivates: participants that only
// know a few peers (their PD output) maintain a consistent payments ledger
// with no global membership authority. Sixteen replicas — an 8-member
// "anchor" sink group plus 8 edge participants — run ONE continuous
// simulation: each replica discovers the sink once (Algorithm 3), builds
// its slices once (Algorithm 2), then closes six ledger slots with
// back-to-back SCP instances (core::LedgerNode). A Byzantine anchor stays
// silent throughout.
//
// Four of the edge replicas are LATE JOINERS (Simulation::activate): the
// anchors bootstrap the federation alone, close the first slots among
// themselves, and each late replica — on waking up — discovers the sink
// from a knowledge graph that grew without it, then catches up and closes
// the same chain. This is the unknown-participants setting made literal:
// nobody is told the membership, and the membership is not even stable.
//
// Each slot's proposal is the digest of the transaction batch the replica
// observed (replicas see slightly different mempools); consensus picks one
// batch per slot, and every correct replica applies the same chain — the
// final chain digests and account tables must match everywhere.
//
// Build & run:  cmake --build build && ./build/examples/federated_payments
#include <cstdio>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/adversaries.hpp"
#include "core/ledger_node.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace scup;

struct Payment {
  std::uint32_t from;
  std::uint32_t to;
  std::uint64_t amount;
};

/// The transaction batch submitted during slot `slot`, as observed by
/// `replica`: a shared deterministic base batch, with odd replicas missing
/// the final payment (mempools differ slightly).
std::vector<Payment> observed_batch(std::uint64_t slot, ProcessId replica) {
  Rng rng(hash_mix(0xBA7C4, slot));
  std::vector<Payment> batch;
  const std::size_t count = 4 + rng.uniform(5);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back({static_cast<std::uint32_t>(rng.uniform(100)),
                     static_cast<std::uint32_t>(rng.uniform(100)),
                     1 + rng.uniform(1000)});
  }
  if (replica % 2 == 1 && batch.size() > 1) batch.pop_back();
  return batch;
}

std::uint64_t batch_digest(const std::vector<Payment>& batch) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const Payment& p : batch) {
    h = hash_mix(h, (static_cast<std::uint64_t>(p.from) << 32) | p.to,
                 p.amount);
  }
  return h | 1;  // proposals must be non-zero
}

/// Recovers the batch whose digest was decided (one of the two variants).
std::vector<Payment> decided_batch(std::uint64_t slot, Value digest) {
  for (ProcessId variant : {0u, 1u}) {
    auto batch = observed_batch(slot, variant);
    if (batch_digest(batch) == digest) return batch;
  }
  return {};  // unreachable under validity
}

}  // namespace

int main() {
  using namespace scup;

  constexpr std::size_t kSlots = 6;
  constexpr std::size_t kF = 1;

  graph::KosrGenParams params;
  params.sink_size = 8;
  params.non_sink_size = 8;
  params.k = 2 * kF + 1;
  params.seed = 77;
  const auto g = graph::random_kosr_graph(params);
  const std::size_t n = g.node_count();
  const NodeSet faulty(n, {2});  // a silent Byzantine anchor
  const NodeSet anchors = graph::unique_sink_component(g);

  // Late joiners: the last four edge (non-anchor) replicas wake up one
  // after another while the anchors are already closing slots.
  std::vector<std::pair<ProcessId, SimTime>> arrivals;
  for (ProcessId i = 0; i < n && arrivals.size() < 4; ++i) {
    const ProcessId candidate = static_cast<ProcessId>(n - 1 - i);
    if (anchors.contains(candidate) || faulty.contains(candidate)) continue;
    arrivals.emplace_back(candidate,
                          static_cast<SimTime>(40 + 25 * arrivals.size()));
  }

  std::printf("Federation: %zu replicas, anchors (sink) = %s, f = %zu,\n"
              "Byzantine anchor: p2 (silent). Closing %zu ledger slots...\n",
              n, anchors.to_string().c_str(), kF, kSlots);
  std::printf("Late joiners:");
  for (const auto& [who, when] : arrivals) {
    std::printf(" p%u@t=%lld", who, static_cast<long long>(when));
  }
  std::printf(" (everyone else starts at t=0)\n\n");

  sim::NetworkConfig net;
  net.seed = 20230701;
  sim::Simulation sim(n, net);
  std::vector<core::LedgerNode*> replicas(n, nullptr);
  for (ProcessId i = 0; i < n; ++i) {
    if (faulty.contains(i)) {
      sim.emplace_process<core::SilentNode>(i);
      continue;
    }
    auto& node = sim.emplace_process<core::LedgerNode>(i, g.pd_of(i), kF,
                                                       kSlots);
    node.set_value_provider([i](std::uint64_t slot) {
      return batch_digest(observed_batch(slot, i));
    });
    replicas[i] = &node;
  }
  for (const auto& [who, when] : arrivals) sim.activate(who, when);
  const NodeSet correct = faulty.complement();

  sim.start();
  const bool done = sim.run_until(
      [&] {
        for (ProcessId i : correct) {
          if (replicas[i]->decided_slots() < kSlots) return false;
        }
        return true;
      },
      5'000'000);

  // Verify chain equality across replicas and apply payments.
  const ProcessId ref = correct.min_member();
  bool chains_match = done;
  for (ProcessId i : correct) {
    chains_match = chains_match &&
                   replicas[i]->chain_digest() == replicas[ref]->chain_digest();
  }

  std::map<std::uint32_t, std::int64_t> balances;
  for (std::uint32_t acc = 0; acc < 100; ++acc) balances[acc] = 10'000;
  for (std::uint64_t slot = 1; done && slot <= kSlots; ++slot) {
    const Value digest = replicas[ref]->slot_decision(slot);
    const auto batch = decided_batch(slot, digest);
    for (const Payment& p : batch) {
      balances[p.from] -= static_cast<std::int64_t>(p.amount);
      balances[p.to] += static_cast<std::int64_t>(p.amount);
    }
    std::printf("slot %llu: %zu payments applied (digest %016llx)\n",
                static_cast<unsigned long long>(slot), batch.size(),
                static_cast<unsigned long long>(digest));
  }

  std::int64_t supply = 0;
  for (const auto& [acc, bal] : balances) supply += bal;

  std::printf("\nLate joiners caught up:\n");
  for (const auto& [who, when] : arrivals) {
    std::printf(
        "  p%-2u joined t=%-4lld discovered the anchors %s and closed "
        "%llu/%zu slots by t=%lld\n",
        who, static_cast<long long>(when),
        replicas[who]->sink_detected() ? "ok" : "NOT",
        static_cast<unsigned long long>(replicas[who]->decided_slots()),
        kSlots, static_cast<long long>(replicas[who]->last_close_time()));
  }

  std::printf("\nAll %zu slots closed by t=%lld; %zu messages total.\n",
              kSlots, static_cast<long long>(sim.now()),
              sim.metrics().messages_sent);
  std::printf("Chain digest (all correct replicas): %016llx — %s\n",
              static_cast<unsigned long long>(replicas[ref]->chain_digest()),
              chains_match ? "IDENTICAL" : "FORKED!");
  std::printf("Total supply conserved: %s (%lld)\n",
              supply == 1'000'000 ? "yes" : "NO",
              static_cast<long long>(supply));

  const bool ok = done && chains_match && supply == 1'000'000;
  std::printf("\n%s\n", ok ? "SUCCESS: consistent federated ledger on CUP "
                             "knowledge."
                           : "FAILURE: ledger inconsistency!");
  return ok ? 0 : 1;
}
