// NetworkModel — the pluggable link layer of the simulator.
//
// The paper's system model (Section III-A) is partial synchrony over
// reliable authenticated channels: messages sent before GST suffer
// arbitrary (configuration-bounded) delays; messages sent after GST arrive
// within [min_delay, max_delay]. A NetworkModel decides, per send, when (or
// whether) a message is delivered, which lets experiments express the
// adversary-space the plain uniform-delay simulator could not:
//
//  - per-link / per-direction delay overrides (asymmetric links, a slow
//    WAN edge inside a fast cluster);
//  - partition schedules: a node-set bipartition is cut for a time window
//    and heals afterwards (heal at GST to stay inside the reliable-channel
//    model — messages crossing the cut are *deferred* to the heal, never
//    lost);
//  - pre-GST message loss and duplication (channels only need to be
//    reliable from GST on for the paper's liveness arguments; protocols
//    that want liveness through a lossy pre-GST phase must retransmit, see
//    cup::DiscoveryConfig::requery_interval).
//
// The default UniformModel with a default-constructed feature set draws
// exactly one uniform delay per send from the simulation's network RNG —
// the same stream the pre-NetworkModel simulator drew — so existing
// seeds reproduce byte-identical runs.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace scup::sim {

/// Directional delay override: messages from `from` to `to` use
/// [min_delay, max_delay] instead of the global bounds (both pre- and
/// post-GST; an override models a link's physical latency, which partial
/// synchrony does not change). Add two entries for a symmetric link.
struct LinkOverride {
  ProcessId from = kInvalidProcess;
  ProcessId to = kInvalidProcess;
  SimTime min_delay = 1;
  SimTime max_delay = 10;
};

/// Bipartition cut active during [start, heal): messages crossing between
/// `side` and its complement while the window is active are deferred to
/// `heal` plus a freshly-sampled delay (reliable channels: deferred, not
/// dropped). Messages already in flight when the window opens are
/// unaffected (the cut applies at send time). Keep `heal <= gst` to stay
/// inside the paper's model; the simulator itself allows any window.
struct PartitionWindow {
  NodeSet side;
  SimTime start = 0;
  SimTime heal = 0;
};

struct NetworkConfig {
  /// Global stabilization time. 0 means the system is synchronous from the
  /// start.
  SimTime gst = 0;
  /// Post-GST delivery delay bounds [min_delay, max_delay].
  SimTime min_delay = 1;
  SimTime max_delay = 10;
  /// Pre-GST delays are uniform in [min_delay, pre_gst_max_delay]; messages
  /// in flight at GST still use their sampled delay (they are all
  /// eventually delivered, as required by reliable channels).
  SimTime pre_gst_max_delay = 200;
  std::uint64_t seed = 1;

  // ---- UniformModel feature set (all off by default; when off, the RNG
  // ---- stream is exactly the historical one-draw-per-send stream). ----

  /// Probability that a message sent before GST is lost. Post-GST sends
  /// are never dropped (reliable from GST on).
  double pre_gst_drop = 0.0;
  /// Probability that a message sent before GST is delivered twice (the
  /// duplicate gets its own sampled delay).
  double pre_gst_duplicate = 0.0;
  /// Per-direction delay overrides (first matching entry wins).
  std::vector<LinkOverride> link_overrides;
  /// Partition schedule (all active crossing windows apply; the latest
  /// heal wins).
  std::vector<PartitionWindow> partitions;
};

/// Link-layer policy: one verdict per send. Implementations draw all
/// randomness from the `rng` handed in (the simulation's dedicated network
/// stream), so a (model, seed) pair fully determines every delivery.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  struct Verdict {
    /// Absolute delivery time (ignored when dropped).
    SimTime deliver_at = 0;
    /// True: the message is lost (only meaningful pre-GST).
    bool dropped = false;
    /// True: deliver a second copy at `duplicate_at`.
    bool duplicated = false;
    SimTime duplicate_at = 0;
  };

  /// Called once per send, at simulated time `now`.
  virtual Verdict on_send(ProcessId from, ProcessId to, SimTime now,
                          Rng& rng) = 0;

  /// Conservative lower bound on link latency: on_send must never schedule
  /// a delivery (either copy) earlier than `now + min_latency()`, on any
  /// link, at any time. The sharded engine's conservative window width is
  /// exactly this bound, so a model must not over-promise. The default (0)
  /// is always safe but disables sharded execution
  /// (Simulation::set_shards requires >= 1).
  virtual SimTime min_latency() const { return 0; }
};

/// The default model: uniform delays with the NetworkConfig feature set
/// (overrides, partitions, pre-GST loss/duplication). Sampling order per
/// send is fixed — base delay, then drop chance, then duplicate chance,
/// then the duplicate's delay — and draws for disabled features are
/// skipped entirely, so a default config reproduces the historical
/// one-draw-per-send stream.
class UniformModel : public NetworkModel {
 public:
  explicit UniformModel(const NetworkConfig& config);

  Verdict on_send(ProcessId from, ProcessId to, SimTime now,
                  Rng& rng) override;

  /// min over the global min_delay and every link override's min_delay
  /// (partitions only defer deliveries, so they never lower the bound).
  SimTime min_latency() const override { return min_latency_; }

 private:
  /// Delay bounds for one directed link at time `now`.
  std::pair<SimTime, SimTime> bounds(ProcessId from, ProcessId to,
                                     SimTime now) const;
  /// Heal time of the latest partition window cutting (from, to) at `now`,
  /// or -1 when the link is uncut.
  SimTime crossing_heal(ProcessId from, ProcessId to, SimTime now) const;

  NetworkConfig config_;
  std::map<std::pair<ProcessId, ProcessId>, std::pair<SimTime, SimTime>>
      overrides_;
  SimTime min_latency_ = 0;
};

}  // namespace scup::sim
