// E16: the zero-allocation broadcast plane. Four questions, answered on one
// binary (DESIGN.md §4.9, EXPERIMENTS.md E16):
//
//  1. MessageChurn / AllocRatio — does the slab pool actually remove the
//     per-message allocator round-trips? The binary replaces global
//     operator new/delete with counting shims, so the rows report *measured*
//     heap allocations, and AllocRatio self-checks the headline claim: the
//     legacy make_shared plane performs >= 5x the heap allocations of the
//     pooled plane on the same workload (SkipWithError otherwise).
//
//  2. EncodeOnce — what does the wire-once frame cache save on a broadcast?
//     cached:1 encodes one message object and serves fan_out sends from the
//     cache; cached:0 is the per-send-encode world (a fresh encode per
//     destination).
//
//  3. ScenarioAB — the macro A/B: full E12 churn/partition scenarios with
//     the pool on vs. off, reporting wall time, measured heap allocations
//     and the encode-once counters. Each row self-checks the accounting
//     invariant: every protocol family has a codec now, so
//     wire_encodes + wire_cached_sends == messages_sent, and broadcast
//     amortization means cached sends dominate encodes.
//
//  4. PoolIdentity/shape:k — the contract row: on every E12 shape, for
//     shards in {0, 1, 2, 3, 8}, the pooled run is bit-identical to the
//     pre-pool path (Notary fingerprint, full SimMetrics, decision times,
//     end time), and fingerprints/decisions agree across all shard counts.
//
//  5. BarrierProfile — the barrier-replay profile: where a sharded window's
//     wall-clock goes (parallel drain vs. the serialized merge/replay/reset
//     barrier phases), per shard, via NetworkConfig::shard_timing.
#include "bench_common.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "common/rng.hpp"
#include "cup/messages.hpp"
#include "scp/envelope.hpp"
#include "sim/message_pool.hpp"
#include "sim/simulation.hpp"

// ---- global allocation meter -----------------------------------------------
// Counting shims for the whole binary. Replacing operator new in one TU
// rebinds every heap allocation in the executable, so the counters see the
// benchmark harness too — rows therefore always compare *deltas* between
// two phases of the same code path, where the harness contribution cancels.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace scup {
namespace {

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// ---- 1. micro: pooled vs. make_shared message churn ------------------------

/// One churn round: `total` short-lived codec-bearing messages with a
/// bounded live window — the steady-state shape of a broadcast plane.
/// Returns the number of heap allocations the round performed.
std::uint64_t churn_messages(sim::MessagePool* pool, std::size_t total,
                             std::size_t window) {
  const sim::MessagePool::Scope scope(pool);
  std::vector<sim::MessagePtr> live;
  live.reserve(window + 1);
  std::size_t next = 0;
  const std::uint64_t before = heap_allocs();
  for (std::size_t i = 0; i < total; ++i) {
    live.push_back(sim::make_message<cup::GetSinkMsg>(
        static_cast<ProcessId>(i)));
    if (live.size() > window) {
      live[next % window] = std::move(live.back());
      live.pop_back();
      ++next;
    }
  }
  live.clear();
  return heap_allocs() - before;
}

void BM_MessageChurn(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  const std::size_t total = 100'000;
  std::uint64_t allocs = 0;
  sim::MessagePool pool;  // warm pool reused across iterations
  for (auto _ : state) {
    allocs = churn_messages(pooled ? &pool : nullptr, total, 64);
    benchmark::DoNotOptimize(allocs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
  state.counters["heap_allocs_per_msg"] =
      static_cast<double>(allocs) / static_cast<double>(total);
  if (pooled) {
    state.counters["pool_slabs"] = static_cast<double>(pool.stats().slabs_created);
    state.counters["pool_fallbacks"] =
        static_cast<double>(pool.stats().fallback_allocs);
  }
}
BENCHMARK(BM_MessageChurn)
    ->ArgName("pooled")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_AllocRatio(benchmark::State& state) {
  // The headline self-check: same churn, pool off vs. on (warm), measured
  // allocation ratio must be >= 5x. A warm pooled round allocates only
  // when the live watermark grows, so the steady-state ratio is in the
  // thousands; 5x is the floor the experiment promises.
  const std::size_t total = 100'000;
  double ratio = 0;
  std::uint64_t legacy_allocs = 0;
  std::uint64_t pooled_allocs = 0;
  sim::MessagePool pool;
  churn_messages(&pool, total, 64);  // warm-up: reach the slab watermark
  for (auto _ : state) {
    legacy_allocs = churn_messages(nullptr, total, 64);
    pooled_allocs = churn_messages(&pool, total, 64);
    ratio = static_cast<double>(legacy_allocs) /
            static_cast<double>(pooled_allocs == 0 ? 1 : pooled_allocs);
    if (ratio < 5.0) {
      state.SkipWithError("allocation ratio below the promised 5x");
      return;
    }
  }
  state.counters["legacy_allocs"] = static_cast<double>(legacy_allocs);
  state.counters["pooled_allocs"] = static_cast<double>(pooled_allocs);
  state.counters["alloc_ratio"] = ratio;
}
BENCHMARK(BM_AllocRatio)->Unit(benchmark::kMillisecond);

// ---- 2. micro: wire-once frame cache on a broadcast ------------------------

scp::Envelope broadcast_envelope() {
  scp::NominateStmt nom;
  for (Value v = 1000; v < 1016; ++v) nom.voted.insert(v);
  const fbqs::QSet qset = fbqs::QSet::threshold_of(
      5, std::vector<ProcessId>{0, 1, 2, 3, 4, 5, 6});
  return scp::Envelope(1, 7, qset, scp::Statement{nom});
}

void BM_EncodeOnce(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const std::size_t fan_out = 64;
  const scp::Envelope proto = broadcast_envelope();
  std::size_t bytes = 0;
  for (auto _ : state) {
    if (cached) {
      // The broadcast plane: one message object, fan_out sends, the frame
      // encoded exactly once and the size served from the cache after.
      const auto msg = sim::make_message<scp::Envelope>(proto);
      for (std::size_t i = 0; i < fan_out; ++i) {
        bytes += msg->send_size().bytes;
      }
    } else {
      // The per-send-encode world: every destination pays a full encode
      // (modeled as a fresh message object per send).
      for (std::size_t i = 0; i < fan_out; ++i) {
        const auto msg = sim::make_message<scp::Envelope>(proto);
        bytes += msg->send_size().bytes;
      }
    }
  }
  benchmark::DoNotOptimize(bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fan_out));
  state.counters["frame_bytes"] = static_cast<double>(
      bytes / (state.iterations() * fan_out));
}
BENCHMARK(BM_EncodeOnce)
    ->ArgName("cached")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// ---- 3. macro: E12 scenarios, pool on vs. off ------------------------------

core::ScenarioConfig e12_shape(int shape, core::ProtocolKind protocol,
                               std::uint64_t seed) {
  core::ChurnPartitionParams p;
  p.protocol = protocol;
  p.seed = seed;
  p.with_partition = shape >= 1;
  if (shape == 2) p.pre_gst_drop = 0.2;
  p.with_crash = shape == 3;
  return core::churn_partition_scenario(p);
}

void BM_ScenarioAB(benchmark::State& state) {
  const auto protocol = state.range(0) == 0 ? core::ProtocolKind::kStellarSd
                                            : core::ProtocolKind::kBftCup;
  const bool pooled = state.range(1) != 0;
  core::ScenarioReport report;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    core::ScenarioConfig cfg = e12_shape(1, protocol, 5);
    cfg.net.message_pool = pooled;
    const std::uint64_t before = heap_allocs();
    report = core::run_scenario(cfg);
    allocs = heap_allocs() - before;
    if (!report.all_decided) {
      state.SkipWithError("scenario failed to decide");
      return;
    }
    // Every protocol family carries a codec, so traffic accounting is
    // exact-frame for every send: encodes + cached sends must tile the
    // send count, and broadcast fan-out means the cache dominates.
    const std::uint64_t encodes =
        report.metrics.protocol_counter(sim::ProtoCounter::kWireEncodes);
    const std::uint64_t cached = report.metrics.protocol_counter(
        sim::ProtoCounter::kWireCachedSends);
    if (encodes + cached != report.metrics.messages_sent || cached < encodes) {
      state.SkipWithError("wire-once accounting violated");
      return;
    }
  }
  const double encodes = static_cast<double>(
      report.metrics.protocol_counter(sim::ProtoCounter::kWireEncodes));
  state.counters["heap_allocs"] = static_cast<double>(allocs);
  state.counters["messages_sent"] =
      static_cast<double>(report.metrics.messages_sent);
  state.counters["wire_encodes"] = encodes;
  state.counters["wire_cached_sends"] = static_cast<double>(
      report.metrics.protocol_counter(sim::ProtoCounter::kWireCachedSends));
  state.counters["sends_per_encode"] =
      static_cast<double>(report.metrics.messages_sent) / encodes;
}
BENCHMARK(BM_ScenarioAB)
    ->ArgNames({"proto", "pooled"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// ---- 4. the contract row: pooled == pre-pool, every shape x shard count ----

void BM_PoolIdentity(benchmark::State& state) {
  const int shape = static_cast<int>(state.range(0));
  std::size_t checks = 0;
  for (auto _ : state) {
    for (core::ProtocolKind protocol :
         {core::ProtocolKind::kStellarSd, core::ProtocolKind::kBftCup}) {
      core::ScenarioReport first_legacy;
      bool have_first = false;
      core::ScenarioReport windowed_base;
      bool have_windowed = false;
      for (std::size_t shards : {0u, 1u, 2u, 3u, 8u}) {
        core::ScenarioConfig cfg = e12_shape(shape, protocol, 3);
        cfg.shards = shards;
        cfg.net.message_pool = false;
        const core::ScenarioReport legacy = core::run_scenario(cfg);
        cfg.net.message_pool = true;
        const core::ScenarioReport pooled = core::run_scenario(cfg);
        // Pool on vs. off at the same shard count: bit-identical report.
        if (!legacy.all_decided ||
            pooled.notary_fingerprint != legacy.notary_fingerprint ||
            !(pooled.metrics == legacy.metrics) ||
            pooled.decision_times != legacy.decision_times ||
            pooled.end_time != legacy.end_time) {
          state.SkipWithError("pool on/off identity violated");
          return;
        }
        // Across shard counts: fingerprints and decisions always agree;
        // full metrics agree across the windowed engine's counts (the
        // legacy loop's ShardStats-adjacent counters are compared by the
        // E12/E14 suites).
        if (!have_first) {
          first_legacy = legacy;
          have_first = true;
        } else if (legacy.notary_fingerprint !=
                       first_legacy.notary_fingerprint ||
                   legacy.decision_times != first_legacy.decision_times ||
                   legacy.end_time != first_legacy.end_time) {
          state.SkipWithError("shard-count identity violated");
          return;
        }
        if (shards >= 1) {
          if (!have_windowed) {
            windowed_base = legacy;
            have_windowed = true;
          } else if (!(legacy.metrics == windowed_base.metrics)) {
            state.SkipWithError("windowed metrics identity violated");
            return;
          }
        }
        checks += 2;
      }
    }
  }
  state.counters["identity_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_PoolIdentity)
    ->ArgName("shape")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

// ---- 5. barrier-replay profile: where the window wall-clock goes -----------

struct ProfileMsg final : sim::Message {
  explicit ProfileMsg(std::uint64_t p) : payload(p) {}
  std::uint64_t payload;
  std::string type_name() const override { return "bench.profile"; }
  std::size_t byte_size() const override { return 40; }
};

/// A sustained gossip plane (the E14 workload shape, smaller): every
/// delivery forwards one pooled message after a slice of hash work.
class ProfileNode : public sim::Process {
 public:
  ProfileNode(std::size_t n, bool seeds) : n_(n), seeds_(seeds) {}

  void start() override {
    if (seeds_) send((id() + 1) % n_, sim::make_message<ProfileMsg>(id()));
  }

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    const auto& m = dynamic_cast<const ProfileMsg&>(*msg);
    std::uint64_t h = m.payload;
    for (int round = 0; round < 32; ++round) h = hash_mix(h, from, id());
    digest_ ^= h;
    send((id() + 1 + h % 5) % n_, sim::make_message<ProfileMsg>(h));
  }

  std::uint64_t digest_ = 0;

 private:
  std::size_t n_;
  bool seeds_;
};

void BM_BarrierProfile(benchmark::State& state) {
  const std::size_t n = 256;
  const std::size_t shards = 4;
  sim::ShardStats stats;
  std::uint64_t digest = 0;
  for (auto _ : state) {
    sim::NetworkConfig net;
    net.min_delay = 2;
    net.max_delay = 12;
    net.seed = 21;
    net.shard_timing = true;  // readings land in ShardStats, not SimMetrics
    sim::Simulation sim(n, net);
    std::vector<ProfileNode*> nodes;
    nodes.reserve(n);
    for (ProcessId i = 0; i < n; ++i) {
      nodes.push_back(&sim.emplace_process<ProfileNode>(i, n, i % 4 == 0));
    }
    sim.set_shards(shards);
    sim.start();
    sim.run_for(1'000);
    for (const auto* node : nodes) digest ^= node->digest_;
    stats = sim.shard_stats();
  }
  benchmark::DoNotOptimize(digest);
  if (!stats.timing_enabled) {
    state.SkipWithError("shard_timing produced no readings");
    return;
  }
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  state.counters["windows"] = static_cast<double>(stats.windows);
  state.counters["window_ms"] = ms(stats.window_ns);
  state.counters["merge_ms"] = ms(stats.merge_ns);
  state.counters["replay_ms"] = ms(stats.replay_ns);
  state.counters["reset_ms"] = ms(stats.reset_ns);
  state.counters["drain_ms"] = ms(stats.drain_ns);
  for (std::size_t s = 0; s < stats.shard_drain_ns.size(); ++s) {
    state.counters["drain_s" + std::to_string(s) + "_ms"] =
        ms(stats.shard_drain_ns[s]);
  }
}
BENCHMARK(BM_BarrierProfile)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E16");
