// A well-behaved file: every handler input is bounded before use, no
// annotations needed.
#include <map>

class Ledger {
 public:
  bool handle(unsigned from, unsigned slot);

 private:
  std::map<unsigned, unsigned> decisions_;
  unsigned window_ = 8;
};

bool Ledger::handle(unsigned from, unsigned slot) {
  if (slot >= window_ || from >= 64) {
    return false;
  }
  decisions_[slot] = from;
  return true;
}
