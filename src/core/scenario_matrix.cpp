#include "core/scenario_matrix.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace scup::core {

void parallel_cells(std::size_t count, std::size_t threads,
                    const std::function<void(std::size_t)>& fn) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  // scup-guarded-by: error_mutex
  std::exception_ptr first_error;
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

ScenarioMatrix& ScenarioMatrix::add_variant(std::string label,
                                            CellFactory factory) {
  if (!factory) {
    throw std::invalid_argument("ScenarioMatrix::add_variant: null factory");
  }
  variants_.emplace_back(std::move(label), std::move(factory));
  return *this;
}

ScenarioMatrix& ScenarioMatrix::seeds(std::vector<std::uint64_t> seeds) {
  seeds_ = std::move(seeds);
  return *this;
}

std::vector<CellResult> ScenarioMatrix::run(std::size_t threads) const {
  const std::size_t cells = cell_count();
  std::vector<CellResult> results(cells);
  // Cell i = (variant i / |seeds|, seed i % |seeds|); each worker writes
  // only results[i], which is what makes the parallel run bit-identical to
  // the serial one.
  parallel_cells(cells, threads, [&](std::size_t i) {
    const auto& [label, factory] = variants_[i / seeds_.size()];
    const std::uint64_t seed = seeds_[i % seeds_.size()];
    results[i].variant = label;
    results[i].seed = seed;
    results[i].report = run_scenario(factory(seed));
  });
  return results;
}

MatrixSummary ScenarioMatrix::summarize(
    const std::vector<CellResult>& results) {
  MatrixSummary s;
  s.cells = results.size();
  std::vector<SimTime> decision_times;
  for (const CellResult& cell : results) {
    const ScenarioReport& r = cell.report;
    if (r.all_decided) ++s.decided_cells;
    if (r.agreement) ++s.agreement_cells;
    if (r.validity) ++s.validity_cells;
    if (r.sd_sink_exact) ++s.sd_exact_cells;
    s.messages += r.metrics.messages_sent;
    s.bytes += r.metrics.bytes_sent;
    for (SimTime t : r.decision_times) {
      if (t != kTimeInfinity) decision_times.push_back(t);
    }
  }
  s.decision_rate =
      s.cells == 0 ? 0.0
                   : static_cast<double>(s.decided_cells) /
                         static_cast<double>(s.cells);
  if (!decision_times.empty()) {
    std::sort(decision_times.begin(), decision_times.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(decision_times.size() - 1));
      return decision_times[idx];
    };
    s.p50_decision = at(0.50);
    s.p99_decision = at(0.99);
    s.max_decision = decision_times.back();
  }
  return s;
}

std::string MatrixSummary::summary() const {
  std::ostringstream os;
  os << "cells=" << cells << " decided=" << decided_cells
     << " agreement=" << agreement_cells << " validity=" << validity_cells
     << " sd_exact=" << sd_exact_cells << " decision_rate=" << decision_rate
     << " p50=" << p50_decision << " p99=" << p99_decision
     << " max=" << max_decision << " msgs=" << messages << " bytes=" << bytes;
  return os.str();
}

}  // namespace scup::core
