#include "graph/digraph.hpp"

#include <sstream>
#include <stdexcept>

namespace scup::graph {

Digraph::Digraph(std::size_t n)
    : n_(n), succ_(n), pred_(n), succ_set_(n, NodeSet(n)) {}

void Digraph::check_node(ProcessId u) const {
  if (u >= n_) {
    throw std::out_of_range("Digraph: node " + std::to_string(u) +
                            " outside graph of size " + std::to_string(n_));
  }
}

void Digraph::add_edge(ProcessId u, ProcessId v) {
  check_node(u);
  check_node(v);
  if (u == v) return;
  if (succ_set_[u].contains(v)) return;
  succ_set_[u].add(v);
  succ_[u].push_back(v);
  pred_[v].push_back(u);
  ++edge_count_;
}

bool Digraph::has_edge(ProcessId u, ProcessId v) const {
  check_node(u);
  check_node(v);
  return succ_set_[u].contains(v);
}

const std::vector<ProcessId>& Digraph::successors(ProcessId u) const {
  check_node(u);
  return succ_[u];
}

const std::vector<ProcessId>& Digraph::predecessors(ProcessId u) const {
  check_node(u);
  return pred_[u];
}

NodeSet Digraph::successor_set(ProcessId u) const {
  check_node(u);
  return succ_set_[u];
}

NodeSet Digraph::predecessor_set(ProcessId u) const {
  check_node(u);
  NodeSet s(n_);
  for (ProcessId p : pred_[u]) s.add(p);
  return s;
}

Digraph Digraph::reversed() const {
  Digraph r(n_);
  for (ProcessId u = 0; u < n_; ++u) {
    for (ProcessId v : succ_[u]) r.add_edge(v, u);
  }
  return r;
}

Digraph Digraph::undirected_closure() const {
  Digraph g(n_);
  for (ProcessId u = 0; u < n_; ++u) {
    for (ProcessId v : succ_[u]) {
      g.add_edge(u, v);
      g.add_edge(v, u);
    }
  }
  return g;
}

Digraph Digraph::induced_subgraph(const NodeSet& keep) const {
  if (keep.universe_size() != n_) {
    throw std::invalid_argument("induced_subgraph: universe mismatch");
  }
  Digraph g(n_);
  for (ProcessId u : keep) {
    for (ProcessId v : succ_[u]) {
      if (keep.contains(v)) g.add_edge(u, v);
    }
  }
  return g;
}

NodeSet Digraph::reachable_from(ProcessId start, const NodeSet& active) const {
  check_node(start);
  NodeSet visited(n_);
  if (!active.contains(start)) return visited;
  std::vector<ProcessId> stack{start};
  visited.add(start);
  while (!stack.empty()) {
    const ProcessId u = stack.back();
    stack.pop_back();
    for (ProcessId v : succ_[u]) {
      if (active.contains(v) && !visited.contains(v)) {
        visited.add(v);
        stack.push_back(v);
      }
    }
  }
  return visited;
}

NodeSet Digraph::reachable_from(ProcessId start) const {
  return reachable_from(start, NodeSet::full(n_));
}

NodeSet Digraph::reachable_from_any(const NodeSet& starts,
                                    const NodeSet& active) const {
  if (starts.universe_size() != n_) {
    throw std::invalid_argument("reachable_from_any: universe mismatch");
  }
  NodeSet visited(n_);
  std::vector<ProcessId> stack;
  for (ProcessId s : starts) {
    if (active.contains(s)) {
      visited.add(s);
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const ProcessId u = stack.back();
    stack.pop_back();
    for (ProcessId v : succ_[u]) {
      if (active.contains(v) && !visited.contains(v)) {
        visited.add(v);
        stack.push_back(v);
      }
    }
  }
  return visited;
}

std::string Digraph::to_string() const {
  std::ostringstream os;
  os << "Digraph(n=" << n_ << ", m=" << edge_count_ << ")";
  for (ProcessId u = 0; u < n_; ++u) {
    if (succ_[u].empty()) continue;
    os << "\n  " << u << " ->";
    for (ProcessId v : succ_[u]) os << ' ' << v;
  }
  return os.str();
}

}  // namespace scup::graph
