#include "sim/wire.hpp"

#include <map>
#include <mutex>
#include <utility>

namespace scup::sim {

namespace {

struct CodecEntry {
  const char* name = nullptr;
  WireCodecRegistry::DecodeFn decode = nullptr;
};

// The registry is process-wide shared state: tests and the ScenarioMatrix
// runner can register/decode from several threads at once. Function-local
// statics avoid static-initialization-order issues for codecs registered
// during other globals' construction.
std::mutex& codec_mutex() {
  // scup-lint: thread-safe(a mutex is its own synchronization)
  static std::mutex mutex;
  return mutex;
}
// scup-analyze: requires-lock(codec_mutex)
std::map<std::uint16_t, CodecEntry>& codec_table() {
  // scup-lint: guarded-by(codec_mutex)
  // scup-guarded-by: codec_mutex
  static std::map<std::uint16_t, CodecEntry> table;
  return table;
}

}  // namespace

void WireCodecRegistry::register_type(std::uint16_t type, const char* name,
                                      DecodeFn fn) {
  const std::lock_guard<std::mutex> lock(codec_mutex());
  // Idempotent: re-registration of the same type keeps the first entry, so
  // ensure_registered() can be called from every test without bookkeeping.
  codec_table().emplace(type, CodecEntry{name, fn});
}

WireCodecRegistry::DecodeFn WireCodecRegistry::find(std::uint16_t type) {
  const std::lock_guard<std::mutex> lock(codec_mutex());
  const auto& table = codec_table();
  const auto it = table.find(type);
  return it == table.end() ? nullptr : it->second.decode;
}

const char* WireCodecRegistry::name_of(std::uint16_t type) {
  const std::lock_guard<std::mutex> lock(codec_mutex());
  const auto& table = codec_table();
  const auto it = table.find(type);
  return it == table.end() ? nullptr : it->second.name;
}

std::vector<std::uint16_t> WireCodecRegistry::registered_types() {
  const std::lock_guard<std::mutex> lock(codec_mutex());
  std::vector<std::uint16_t> types;
  for (const auto& [type, entry] : codec_table()) {
    (void)entry;
    types.push_back(type);
  }
  return types;
}

MessagePtr decode_frame(const std::uint8_t* data, std::size_t size) {
  WireReader reader(data, size);
  const std::uint16_t type = reader.u16();
  if (!reader.ok()) return nullptr;
  const WireCodecRegistry::DecodeFn decode = WireCodecRegistry::find(type);
  if (decode == nullptr) return nullptr;
  MessagePtr msg = decode(reader);
  // A frame must be consumed exactly: trailing bytes mean a forged or
  // corrupted length field somewhere upstream, so the whole frame is
  // rejected rather than silently ignored.
  if (!reader.ok() || reader.remaining() != 0) return nullptr;
  return msg;
}

MessagePtr decode_frame(const std::vector<std::uint8_t>& frame) {
  return decode_frame(frame.data(), frame.size());
}

}  // namespace scup::sim
