#include "sim/notary.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace scup::sim {

Notary::Notary(std::size_t n, std::uint64_t seed) {
  Rng rng(seed ^ 0x517e7a11ULL);
  secrets_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) secrets_.push_back(rng.next_u64());
}

Notary::Token Notary::token_for(ProcessId signer,
                                std::uint64_t statement) const {
  if (signer >= secrets_.size()) throw std::out_of_range("Notary::sign");
  return hash_mix(secrets_[signer], statement, 0x5197ULL);
}

Notary::Token Notary::sign(ProcessId signer, std::uint64_t statement) const {
  const Token token = token_for(signer, statement);
  log_.emplace_back(signer, statement);
  return token;
}

std::uint64_t Notary::fingerprint() const {
  std::uint64_t h = 0x10742a15ULL;
  for (const auto& [signer, statement] : log_) {
    h = hash_mix(h, signer, statement);
  }
  return h;
}

bool Notary::verify(ProcessId signer, std::uint64_t statement,
                    Token token) const {
  if (signer >= secrets_.size()) return false;
  return token_for(signer, statement) == token;
}

}  // namespace scup::sim
