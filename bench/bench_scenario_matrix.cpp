// E12 — the scenario matrix: churn + partition + loss sweeps over both
// protocols, executed on the parallel ScenarioMatrix runner.
//
// Each matrix is shapes × seeds cells of the churn_partition_scenario
// family (late-arriving participants; half the sink partitioned until GST;
// optional pre-GST message loss with discovery retransmission; optional
// crash fault). Counters report aggregated consensus properties —
// decision_rate / agreement_cells / validity_cells are theorems: any cell
// failing them is a correctness regression — plus p50/p99 decision time
// and traffic.
//
// The Sweep rows run the same matrix at 1 vs 8 threads: the wall-time
// ratio between the rows is the runner's speedup (cells are
// embarrassingly parallel; expect ~min(8, cores)× on big-enough matrices).
// The SpeedupProof row measures both in one place and also asserts the
// parallel run is cell-by-cell identical to the serial one
// (identical_reports=1).
#include "bench_common.hpp"

#include <chrono>

#include "core/scenario_matrix.hpp"

namespace scup {
namespace {

core::ChurnPartitionParams shape_params(core::ProtocolKind protocol,
                                        std::size_t n, int shape,
                                        std::uint64_t seed) {
  core::ChurnPartitionParams p;
  p.n = n;
  p.f = 1;
  p.protocol = protocol;
  p.seed = seed;
  p.gst = 2'000;
  switch (shape) {
    case 0:  // churn only
      p.late_fraction = 0.5;
      p.with_partition = false;
      break;
    case 1:  // churn + sink partition until GST
      p.late_fraction = 0.5;
      p.with_partition = true;
      break;
    case 2:  // churn + partition + 20% pre-GST loss (requery enabled)
      p.late_fraction = 0.5;
      p.with_partition = true;
      p.pre_gst_drop = 0.2;
      break;
    case 3:  // churn + partition + crash fault instead of Byzantine
      p.late_fraction = 0.5;
      p.with_partition = true;
      p.with_crash = true;
      break;
    default:
      break;
  }
  return p;
}

const char* shape_name(int shape) {
  switch (shape) {
    case 0: return "churn";
    case 1: return "churn+partition";
    case 2: return "churn+partition+loss";
    case 3: return "churn+partition+crash";
    default: return "?";
  }
}

core::ScenarioMatrix e12_matrix(core::ProtocolKind protocol, std::size_t n,
                                std::size_t seeds) {
  core::ScenarioMatrix matrix;
  for (int shape = 0; shape < 4; ++shape) {
    matrix.add_variant(shape_name(shape),
                       [protocol, n, shape](std::uint64_t seed) {
                         return core::churn_partition_scenario(
                             shape_params(protocol, n, shape, seed));
                       });
  }
  std::vector<std::uint64_t> seed_list(seeds);
  for (std::size_t i = 0; i < seeds; ++i) seed_list[i] = i + 1;
  matrix.seeds(seed_list);
  return matrix;
}

void report_summary(benchmark::State& state, const core::MatrixSummary& s) {
  state.counters["cells"] = static_cast<double>(s.cells);
  state.counters["decision_rate"] = s.decision_rate;
  state.counters["agreement_cells"] = static_cast<double>(s.agreement_cells);
  state.counters["validity_cells"] = static_cast<double>(s.validity_cells);
  state.counters["p50_decide"] = static_cast<double>(s.p50_decision);
  state.counters["p99_decide"] = static_cast<double>(s.p99_decision);
  state.counters["messages"] = static_cast<double>(s.messages);
  state.counters["kilobytes"] = static_cast<double>(s.bytes) / 1024.0;
}

void BM_E12_Sweep(benchmark::State& state) {
  const auto protocol = state.range(0) == 0 ? core::ProtocolKind::kStellarSd
                                            : core::ProtocolKind::kBftCup;
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const core::ScenarioMatrix matrix = e12_matrix(protocol, n, 4);
  std::vector<core::CellResult> results;
  for (auto _ : state) {
    results = matrix.run(threads);
    benchmark::DoNotOptimize(results);
  }
  report_summary(state, core::ScenarioMatrix::summarize(results));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_E12_Sweep)
    ->ArgNames({"proto", "n", "threads"})
    // protocol 0 = Stellar+SD, 1 = BFT-CUP; same matrix serial vs 8 threads.
    ->Args({0, 20, 1})
    ->Args({0, 20, 8})
    ->Args({1, 20, 1})
    ->Args({1, 20, 8})
    ->Args({0, 32, 8})
    ->Args({1, 32, 8})
    ->Unit(benchmark::kMillisecond);

void BM_E12_SpeedupProof(benchmark::State& state) {
  // Both protocols in one matrix, serial and 8-thread back to back, with a
  // cell-by-cell identity check. The speedup counter is what the E12
  // acceptance bar reads (>= 4x at 8 threads on >= 8 cores; bounded by the
  // physical core count — a 1-core CI box reports ~1x by construction).
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ScenarioMatrix matrix;
  for (const auto protocol :
       {core::ProtocolKind::kStellarSd, core::ProtocolKind::kBftCup}) {
    const char* proto_name =
        protocol == core::ProtocolKind::kStellarSd ? "stellar" : "bftcup";
    for (int shape : {1, 2}) {
      matrix.add_variant(
          std::string(proto_name) + "/" + shape_name(shape),
          [protocol, n, shape](std::uint64_t seed) {
            return core::churn_partition_scenario(
                shape_params(protocol, n, shape, seed));
          });
    }
  }
  matrix.seeds({1, 2, 3, 4});

  double serial_ms = 0.0, parallel_ms = 0.0;
  bool identical = true;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = matrix.run(1);
    const auto t1 = std::chrono::steady_clock::now();
    const auto parallel = matrix.run(8);
    const auto t2 = std::chrono::steady_clock::now();
    serial_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    parallel_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
    identical = identical && serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
      identical = serial[i].report.metrics == parallel[i].report.metrics &&
                  serial[i].report.decision_times ==
                      parallel[i].report.decision_times &&
                  serial[i].report.decided_value ==
                      parallel[i].report.decided_value;
    }
    benchmark::DoNotOptimize(parallel);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["serial_ms"] = serial_ms / iters;
  state.counters["parallel8_ms"] = parallel_ms / iters;
  state.counters["speedup_8t"] =
      parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  state.counters["identical_reports"] = identical ? 1 : 0;
}
BENCHMARK(BM_E12_SpeedupProof)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E12");
