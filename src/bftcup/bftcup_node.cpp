#include "bftcup/bftcup_node.hpp"

#include <stdexcept>

namespace scup::bftcup {

BftCupNode::BftCupNode(NodeSet pd, std::size_t f, Value value,
                       PbftConfig pbft, cup::DiscoveryConfig discovery)
    : ComposedNode(f),
      pd_(std::move(pd)),
      value_(value),
      pbft_config_(pbft),
      detector_(*this, pd_, discovery),
      requesters_(pd_.universe_size()),
      request_forwarded_(pd_.universe_size()) {
  detector_.on_result = [this](const sinkdetector::GetSinkResult& r) {
    on_sink(r);
  };
}

void BftCupNode::start() {
  // Flood the decision request immediately (like GET_SINK); only non-sink
  // members will end up needing the answers, but flooding is idempotent and
  // membership is unknown at this point.
  request_forwarded_.add(id());
  const auto req = sim::make_message<DecisionRequestMsg>(id());
  for (ProcessId j : pd_) send(j, req);
  detector_.start();
}

void BftCupNode::on_sink(const sinkdetector::GetSinkResult& result) {
  if (!result.is_sink_member) {
    pending_pbft_.clear();  // we will never run PBFT
    return;                 // wait for DecisionMsg votes
  }
  pbft_ = std::make_unique<PbftConsensus>(*this, result.sink, pbft_config_);
  pbft_->on_decide = [this](Value v) { decide(v); };
  pbft_->start(value_);
  for (const auto& [from, msg] : pending_pbft_) pbft_->handle(from, *msg);
  pending_pbft_.clear();
}

void BftCupNode::decide(Value v) {
  if (decided_) return;
  decided_ = v;
  decision_time_ = now();
  // Decided: nothing left to retransmit for (incoming requests are still
  // answered from on_message).
  detector_.stop_requery();
  answer_requests();
}

void BftCupNode::answer_requests() {
  // Only sink members' vouchers count at receivers, but a node cannot know
  // the receiver's view; sending is harmless either way. We answer once per
  // requester.
  if (!decided_) return;
  const auto msg = sim::make_message<DecisionMsg>(*decided_);
  for (ProcessId j : requesters_) {
    send(j, msg);
    requesters_.remove(j);
  }
}

void BftCupNode::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (detector_.handle(from, *msg)) return;
  if (pbft_) {
    if (pbft_->handle(from, *msg)) return;
  } else if (!detector_.has_result() &&
             (dynamic_cast<const PrePrepareMsg*>(msg.get()) != nullptr ||
              dynamic_cast<const PrepareMsg*>(msg.get()) != nullptr ||
              dynamic_cast<const CommitMsg*>(msg.get()) != nullptr ||
              dynamic_cast<const ViewChangeMsg*>(msg.get()) != nullptr ||
              dynamic_cast<const NewViewMsg*>(msg.get()) != nullptr)) {
    pending_pbft_.emplace_back(from, msg);
    return;
  }

  if (const auto* req = dynamic_cast<const DecisionRequestMsg*>(msg.get())) {
    if (req->origin >= universe()) return;
    if (req->origin != id()) requesters_.add(req->origin);
    if (!request_forwarded_.contains(req->origin)) {
      request_forwarded_.add(req->origin);
      const auto fwd = sim::make_message<DecisionRequestMsg>(req->origin);
      for (ProcessId j : pd_) {
        if (j != from) send(j, fwd);
      }
    }
    answer_requests();
    return;
  }

  if (const auto* dec = dynamic_cast<const DecisionMsg*>(msg.get())) {
    // Accept a value vouched for by more than f distinct senders that are,
    // to the best of our knowledge, sink members. Before the sink detector
    // returns we cannot filter by membership; counting distinct senders is
    // still safe because at most f are faulty and correct sink members all
    // vouch for the same (agreed) value.
    auto [it, _] = decision_votes_.emplace(dec->value, NodeSet(universe()));
    it->second.add(from);
    if (!decided_ && it->second.count() > fault_threshold()) {
      decide(dec->value);
    }
    return;
  }
}

void BftCupNode::on_timer(int timer_id) {
  if (detector_.on_timer(timer_id)) {
    // Requery tick: our DecisionRequest flood (or its answers) may have
    // been lost pre-GST; re-flood until a decision arrives. Receivers
    // re-add us to `requesters_` and re-answer once decided.
    if (!decided_) {
      const auto req = sim::make_message<DecisionRequestMsg>(id());
      for (ProcessId j : pd_) send(j, req);
    }
    return;
  }
  if (timer_id == kPbftTimerId && pbft_) pbft_->on_view_timer();
}

Value BftCupNode::decision() const {
  if (!decided_) throw std::logic_error("BftCupNode::decision: not decided");
  return *decided_;
}

}  // namespace scup::bftcup
