// scup-analyze: interprocedural static analysis for the scup tree.
//
// scup-lint (tools/scup-lint) is deliberately line-level: every rule is a
// pattern over comment-stripped lines. That runs out of road exactly where
// the paper's protocols live: Byzantine-controlled message fields flow
// through helper functions into allocations and indices far from any
// handle() body, and the sharded engine's determinism contract (DESIGN
// §4.6-4.7) was enforced only by lexical begin/end comment regions.
//
// scup-analyze adds a lightweight semantic layer on top of the same
// comment/string-aware scanner: a per-TU parser recovers namespaces,
// classes, fields, function bodies and call sites into a project-wide
// symbol table and call graph over src/, and three interprocedural rule
// families run on top.
//
// Rule families (ids are stable; annotations refer to them):
//
//   byzantine-input
//     byz-taint             a value derived from a message handler's
//                           parameters (handle(), on_message(s), handle_*)
//                           reaches a growth or index sink — operator[] on
//                           a member container, insert/emplace/push_back/
//                           resize/reserve on a member, a narrowing
//                           static_cast, a loop bound, or an argument to a
//                           function whose own summary says that parameter
//                           reaches such a sink — without passing a
//                           structural guard (comparison or validating
//                           call in a branch condition; std::min/max/clamp
//                           on assignment) or a `// scup-sanitize:` note.
//
//   shard-ownership (replaces the lexical det-shard-escape region hack
//   with a checked model; the lexical regions are verified consistent)
//     own-engine-access     a field annotated `// scup-owner: engine` is
//                           touched by a function reachable from a
//                           shard-entry point (code that runs on shard
//                           threads inside a window).
//     own-shard-access      a field annotated `// scup-owner: shard` is
//                           touched outside both the shard region and the
//                           barrier region.
//     own-barrier-access    a field annotated `// scup-owner: barrier` is
//                           touched outside the barrier region.
//     own-lexical-mismatch  a `// shard-barrier` / `// drawplan` lexical
//                           region (scup-lint's det-shard-escape /
//                           det-drawplan-escape contract) overlaps a
//                           function the call-graph model does not place
//                           in the matching region.
//
//   lock-discipline
//     lock-unguarded        a symbol annotated `// scup-guarded-by: M` is
//                           touched by an in-scope function that neither
//                           locks M nor declares `requires-lock(M)`.
//     lock-caller-unguarded a function annotated
//                           `// scup-analyze: requires-lock(M)` is called
//                           from a function that neither locks M nor
//                           requires it in turn.
//
//   meta (the gate keeps itself honest)
//     ana-unknown-annotation  a scup-analyze annotation naming no known
//                             form, or with a malformed argument.
//     ana-stale-annotation    an annotation no rule consumed — the code it
//                             describes no longer exists or no longer
//                             needs it, so it must go.
//
// Annotation grammar (same line as the code, or a preceding comment-only
// line; like scup-lint annotations, a preceding-line annotation covers the
// whole next *statement*, not just the next line):
//
//   // scup-owner: shard|barrier|engine      on a field declaration
//   // scup-guarded-by: <mutex>              on a field / static / local
//   // scup-sanitize: <reason>               on a statement (taint check)
//   // scup-analyze: shard-entry(<why>)      on a function definition
//   // scup-analyze: barrier-entry(<why>)    on a function definition
//   // scup-analyze: owner-ok(<why>)         on a function definition
//   // scup-analyze: requires-lock(<mutex>)  on a function definition
//
// Known unsoundness/incompleteness (documented, deliberate — DESIGN §4.8):
// call resolution is name-based (virtual dispatch and same-named functions
// over-approximate), taint is per-identifier (a guard on one field of an
// object sanitizes the whole object), data stored into containers/fields
// is not tracked across statements, and lock coverage is function-granular
// (a lock anywhere in the body covers the whole body). The audit protocol
// in EXPERIMENTS.md pairs the automated findings with a review of the
// dumped sink summaries (`scup-analyze --dump`) for exactly this reason.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"  // scup::lint::Finding, scan_source

namespace scup::analyze {

using scup::lint::Finding;

// ---- rule ids ----
inline constexpr std::string_view kRuleByzTaint = "byz-taint";
inline constexpr std::string_view kRuleOwnEngine = "own-engine-access";
inline constexpr std::string_view kRuleOwnShard = "own-shard-access";
inline constexpr std::string_view kRuleOwnBarrier = "own-barrier-access";
inline constexpr std::string_view kRuleOwnLexical = "own-lexical-mismatch";
inline constexpr std::string_view kRuleLockUnguarded = "lock-unguarded";
inline constexpr std::string_view kRuleLockCaller = "lock-caller-unguarded";
inline constexpr std::string_view kRuleUnknownAnnotation =
    "ana-unknown-annotation";
inline constexpr std::string_view kRuleStaleAnnotation =
    "ana-stale-annotation";

// ---- recovered model ----

/// One token of comment-stripped code. Multi-char operators are merged
/// (::, ->, ==, ...) except << and >> so template angle brackets stay
/// countable.
struct Tok {
  std::string text;
  std::size_t line = 0;  ///< 1-based source line
  bool ident = false;    ///< [A-Za-z_][A-Za-z0-9_]*
};

enum class AnnKind {
  kOwner,         ///< scup-owner: shard|barrier|engine
  kGuardedBy,     ///< scup-guarded-by: <mutex>
  kSanitize,      ///< scup-sanitize: <reason>
  kShardEntry,    ///< scup-analyze: shard-entry(<why>)
  kBarrierEntry,  ///< scup-analyze: barrier-entry(<why>)
  kOwnerOk,       ///< scup-analyze: owner-ok(<why>)
  kRequiresLock,  ///< scup-analyze: requires-lock(<mutex>)
};

struct Annotation {
  AnnKind kind;
  std::string value;  ///< owner kind, mutex name, or reason text
  std::size_t comment_line = 0;
  /// The code-line range the annotation can bind to: its own line when
  /// that line has code, else the next statement (first code line through
  /// the first line containing one of ; { }).
  std::size_t applies_begin = 0;
  std::size_t applies_end = 0;
  bool consumed = false;
};

/// One statement of a function body. Branch/loop headers (if/while/for/
/// switch parenthesized heads) are statements of their own.
struct Stmt {
  std::vector<Tok> toks;
  std::size_t first_line = 0;
  std::size_t last_line = 0;
  bool is_condition = false;  ///< if/while/for/switch header
  bool is_loop = false;       ///< while/for header
  bool is_range_for = false;
  int sanitize_ann = -1;  ///< index into TU::annotations, or -1
};

/// A call site recovered from a statement: `f(...)`, `x.f(...)`,
/// `x->f(...)` or `Cls::f(...)`.
struct CallSite {
  std::string name;
  std::string qual_class;  ///< for Cls::f, else empty
  std::string receiver;    ///< x in x.f / x->f, else empty
  std::size_t line = 0;
  std::size_t stmt = 0;  ///< index into the owner's stmts
  /// Identifiers per top-level argument position.
  std::vector<std::vector<std::string>> args;
};

enum class Owner { kNone, kShard, kBarrier, kEngine };

/// A data declaration the analyses care about: a class field, a
/// namespace-scope variable, or an annotated function-local (static or
/// plain — parallel_cells guards a plain local with a mutex).
struct FieldSym {
  std::string cls;   ///< enclosing class, empty for namespace/function scope
  std::string func;  ///< declaring function for function-locals, else empty
  std::string name;
  std::string file;
  std::size_t line = 0;
  Owner owner = Owner::kNone;
  std::string guarded_by;  ///< mutex name, empty if none
  int owner_ann = -1;      ///< index into the declaring TU's annotations
  int guarded_ann = -1;
};

struct FunctionSym {
  std::string cls;  ///< enclosing or qualifying class, empty for free
  std::string name;
  std::string file;
  std::size_t line = 0;  ///< first line of the signature
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<std::string> params;  ///< declared parameter names, in order
  std::vector<Stmt> stmts;
  std::vector<CallSite> calls;
  // Bound annotations.
  bool shard_entry = false;
  bool barrier_entry = false;
  bool owner_ok = false;
  int owner_ok_ann = -1;  ///< index into the declaring TU's annotations
  std::vector<std::string> requires_locks;
  std::vector<int> requires_lock_anns;  ///< parallel to requires_locks
  /// Mutex-name candidates: identifiers appearing in a statement that also
  /// constructs a lock_guard/unique_lock/scoped_lock/shared_lock.
  std::vector<std::string> locked_tokens;
  // Computed by analyze().
  bool in_shard = false;
  bool in_barrier = false;
  std::uint32_t sink_params = 0;  ///< bit i: param i reaches a sink
};

/// A lexical begin/end comment region (scup-lint's shard-barrier /
/// drawplan contract), kept so the ownership model can be checked
/// consistent with it. Lines are 1-based, inclusive.
struct Region {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Everything recovered from one translation unit.
struct TU {
  std::string path;  ///< repo-relative, forward slashes
  std::vector<Annotation> annotations;
  std::vector<FunctionSym> functions;
  std::vector<FieldSym> fields;
  std::vector<Region> shard_barrier_regions;
  std::vector<Region> drawplan_regions;
  std::vector<Finding> parse_findings;  ///< ana-unknown-annotation etc.
};

/// Tokenize + parse one file. Pure (no project context); safe to run in
/// parallel across files.
TU parse_tu(const std::string& rel_path, const std::string& content);

/// Run every rule family over the parsed project and return all findings,
/// sorted (file, line, rule). Mutates the TUs (annotation consumption,
/// computed function facts) so a subsequent dump() reflects the analysis.
std::vector<Finding> analyze(std::vector<TU>& tus);

/// Human-readable symbol-table / call-graph / taint-summary report for
/// `scup-analyze --dump`; the audit protocol reviews this alongside the
/// findings (see EXPERIMENTS.md).
std::string dump(const std::vector<TU>& tus);

}  // namespace scup::analyze
