// byz-taint: interprocedural Byzantine-input taint.
//
// Seeds: every parameter of a message handler (handle, handle_*,
// on_message, on_messages) is attacker-influenced. Propagation: identifier-
// granular through assignments (strong update), range-for bindings, and
// call arguments via per-function summaries. Sinks: operator[] on a
// member-shaped container, growth calls (insert/emplace/push_back/...) on a
// member, narrowing static_cast, non-range loop bounds, and arguments to
// functions whose summary says that parameter reaches a sink. Sanitizers:
// a branch condition that *checks* the value (comparison operand or
// argument of a validating call — cast-like calls are stripped first so
// `dynamic_cast<...>(&msg)` never launders msg), std::min/max/clamp on
// assignment, or an explicit `// scup-sanitize: <reason>`.
//
// Summaries (FunctionSym::sink_params, bit i = parameter i reaches a sink)
// are computed to fixpoint over the call graph, so a handler passing a
// message field two helpers deep into a map subscript is still caught —
// the class of bug scup-lint's lexical byz-unbounded-map could not see.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze_internal.hpp"

namespace scup::analyze {

namespace {

using TaintMap = std::unordered_map<std::string, std::uint32_t>;

const std::unordered_set<std::string>& grow_calls() {
  static const std::unordered_set<std::string> kGrow = {
      "insert",       "emplace",     "try_emplace", "emplace_back",
      "push_back",    "resize",      "reserve",     "insert_or_assign",
  };
  return kGrow;
}

bool cast_like(const std::string& name) {
  return name == "static_cast" || name == "dynamic_cast" ||
         name == "const_cast" || name == "reinterpret_cast" ||
         name == "get_if";
}

bool comparison_op(const std::string& t) {
  return t == "==" || t == "!=" || t == "<" || t == ">" || t == "<=" ||
         t == ">=";
}

bool narrow_type_tok(const std::string& t) {
  static const std::unordered_set<std::string> kNarrow = {
      "int8_t",  "int16_t",  "int32_t", "uint8_t", "uint16_t",
      "uint32_t", "short",   "int",     "char",    "unsigned",
  };
  return kNarrow.count(t) != 0;
}

bool wide_type_tok(const std::string& t) {
  return t == "int64_t" || t == "uint64_t" || t == "size_t" || t == "long" ||
         t == "intmax_t" || t == "uintmax_t" || t == "ptrdiff_t";
}

bool member_shaped(const ProjectIndex& ix, const std::string& name) {
  if (ix.field_names.count(name) != 0) return true;
  return name.size() > 1 && name.back() == '_';
}

/// Remove cast-like subexpressions wholesale: `X_cast < ... > ( ... )`
/// including the argument, so neither the target type nor the casted
/// pointee participates in condition-sanitizing.
std::vector<Tok> strip_casts(const std::vector<Tok>& toks) {
  std::vector<Tok> out;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].ident && cast_like(toks[i].text) && i + 1 < toks.size() &&
        toks[i + 1].text == "<") {
      std::size_t j = i + 1;
      int angle = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++angle;
        if (toks[j].text == ">" && --angle == 0) break;
      }
      if (j + 1 < toks.size() && toks[j + 1].text == "(") {
        int depth = 0;
        std::size_t k = j + 1;
        for (; k < toks.size(); ++k) {
          if (toks[k].text == "(") ++depth;
          if (toks[k].text == ")" && --depth == 0) break;
        }
        i = k;  // skip the whole cast expression
        continue;
      }
      i = j;
      continue;
    }
    out.push_back(toks[i]);
  }
  return out;
}

struct SinkHit {
  std::uint32_t bits = 0;
  std::string ident;  ///< a tainted identifier involved (for the message)
  std::string what;   ///< sink description
};

struct TaintEngine {
  ProjectIndex& ix;
  std::size_t cur_tu = 0;
  bool reporting = false;
  std::vector<Finding>* out = nullptr;

  std::uint32_t bits_of(const TaintMap& t, const std::string& id) const {
    const auto it = t.find(id);
    return it == t.end() ? 0u : it->second;
  }

  std::uint32_t range_bits(const TaintMap& t, const std::vector<Tok>& toks,
                           std::size_t b, std::size_t e,
                           std::string* which = nullptr) const {
    std::uint32_t bits = 0;
    for (std::size_t i = b; i < e && i < toks.size(); ++i) {
      if (!is_analyzable_ident_token(toks[i])) continue;
      const std::uint32_t x = bits_of(t, toks[i].text);
      if (x != 0 && which != nullptr && which->empty()) *which = toks[i].text;
      bits |= x;
    }
    return bits;
  }

  // ---- sinks ----

  SinkHit check_sinks(const FunctionSym& f, const Stmt& s, std::size_t si,
                      const TaintMap& taint) {
    SinkHit hit;
    const std::vector<Tok>& t = s.toks;
    // Member subscript with a tainted index.
    for (std::size_t i = 0; i + 1 < t.size() && hit.bits == 0; ++i) {
      if (!is_analyzable_ident_token(t[i]) || t[i + 1].text != "[") continue;
      if (!member_shaped(ix, t[i].text)) continue;
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (t[j].text == "[") ++depth;
        if (t[j].text == "]" && --depth == 0) break;
      }
      // `a[x % n]` is structurally bounded — modulo is a guard, like
      // std::min/max/clamp on assignment.
      bool bounded = false;
      for (std::size_t k = i + 2; k < j; ++k) {
        if (t[k].text == "%") bounded = true;
      }
      if (bounded) continue;
      std::string which;
      const std::uint32_t bits = range_bits(taint, t, i + 2, j, &which);
      if (bits != 0) {
        hit = SinkHit{bits, which,
                      "index into member '" + t[i].text + "'"};
      }
    }
    // Growth call on a member with a tainted argument.
    for (std::size_t i = 0; i + 3 < t.size() && hit.bits == 0; ++i) {
      if (!is_analyzable_ident_token(t[i])) continue;
      if (t[i + 1].text != "." && t[i + 1].text != "->") continue;
      if (grow_calls().count(t[i + 2].text) == 0 || t[i + 3].text != "(") {
        continue;
      }
      if (!member_shaped(ix, t[i].text)) continue;
      int depth = 0;
      std::size_t j = i + 3;
      for (; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) break;
      }
      std::string which;
      const std::uint32_t bits = range_bits(taint, t, i + 4, j, &which);
      if (bits != 0) {
        hit = SinkHit{bits, which,
                      "growth call " + t[i].text + "." + t[i + 2].text +
                          "(...)"};
      }
    }
    // Narrowing static_cast of a tainted value.
    for (std::size_t i = 0; i + 1 < t.size() && hit.bits == 0; ++i) {
      if (t[i].text != "static_cast" || t[i + 1].text != "<") continue;
      int angle = 0;
      std::size_t j = i + 1;
      bool narrow = false;
      bool wide = false;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++angle;
        if (t[j].text == ">" && --angle == 0) break;
        if (narrow_type_tok(t[j].text)) narrow = true;
        if (wide_type_tok(t[j].text)) wide = true;
      }
      if (!narrow || wide || j + 1 >= t.size() || t[j + 1].text != "(") {
        continue;
      }
      int depth = 0;
      std::size_t k = j + 1;
      for (; k < t.size(); ++k) {
        if (t[k].text == "(") ++depth;
        if (t[k].text == ")" && --depth == 0) break;
      }
      std::string which;
      const std::uint32_t bits = range_bits(taint, t, j + 2, k, &which);
      if (bits != 0) hit = SinkHit{bits, which, "narrowing static_cast"};
    }
    // Loop bounded by tainted data (range-for is bounded by real payload
    // size; counted loops by an attacker-chosen number are not).
    if (hit.bits == 0 && s.is_loop && !s.is_range_for) {
      std::string which;
      const std::uint32_t bits = range_bits(taint, t, 0, t.size(), &which);
      if (bits != 0) hit = SinkHit{bits, which, "loop bound"};
    }
    // Tainted argument into a callee whose summary reaches a sink.
    if (hit.bits == 0) {
      for (const CallSite& c : f.calls) {
        if (c.stmt != si || hit.bits != 0) continue;
        for (const FnRef& r : ix.resolve(f, c)) {
          const FunctionSym& callee = ix.fn(r);
          if (callee.sink_params == 0) continue;
          for (std::size_t j = 0;
               j < c.args.size() && j < callee.params.size() && j < 32; ++j) {
            if (((callee.sink_params >> j) & 1u) == 0) continue;
            std::uint32_t bits = 0;
            std::string which;
            for (const std::string& id : c.args[j]) {
              const std::uint32_t x = bits_of(taint, id);
              if (x != 0 && which.empty()) which = id;
              bits |= x;
            }
            if (bits != 0) {
              hit = SinkHit{
                  bits, which,
                  "argument '" + callee.params[j] + "' of " +
                      (callee.cls.empty() ? "" : callee.cls + "::") +
                      callee.name + " (whose summary reaches a sink)"};
              break;
            }
          }
          if (hit.bits != 0) break;
        }
        if (hit.bits != 0) break;
      }
    }
    return hit;
  }

  // ---- sanitizing + propagation ----

  void condition_sanitize(const Stmt& s, TaintMap& taint) {
    const std::vector<Tok> toks = strip_casts(s.toks);
    std::size_t atom_begin = 0;
    auto flush_atom = [&](std::size_t e) {
      bool checks = false;
      for (std::size_t i = atom_begin; i < e; ++i) {
        if (comparison_op(toks[i].text)) checks = true;
        if (i + 1 < e && is_analyzable_ident_token(toks[i]) &&
            toks[i + 1].text == "(") {
          checks = true;  // a validating call inspects its arguments
        }
      }
      if (checks) {
        for (std::size_t i = atom_begin; i < e; ++i) {
          if (is_analyzable_ident_token(toks[i])) taint.erase(toks[i].text);
        }
      }
      atom_begin = e + 1;
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "&&" || toks[i].text == "||") flush_atom(i);
    }
    flush_atom(toks.size());
  }

  void assignment_update(const Stmt& s, TaintMap& taint) {
    // Condition headers keep their `if (...)` wrapper; unwrap it so an
    // if-init assignment (`if (auto* p = ...)`) sits at paren depth 0.
    std::vector<Tok> unwrapped;
    if (s.is_condition && s.toks.size() >= 3 && s.toks[1].text == "(" &&
        s.toks.back().text == ")") {
      unwrapped.assign(s.toks.begin() + 2, s.toks.end() - 1);
    }
    const std::vector<Tok>& t = unwrapped.empty() ? s.toks : unwrapped;
    if (s.is_range_for) {
      // `for (decl : expr)` — the bound names take the container's taint.
      std::size_t colon = t.size();
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].text == ":") {
          colon = i;
          break;
        }
      }
      if (colon == t.size()) return;
      const std::uint32_t bits = range_bits(taint, t, colon + 1, t.size());
      for (std::size_t i = 0; i < colon; ++i) {
        if (!is_analyzable_ident_token(t[i])) continue;
        if (bits == 0) {
          taint.erase(t[i].text);
        } else {
          taint[t[i].text] = bits;
        }
      }
      return;
    }
    // Top-level '=' (or compound assignment).
    int depth = 0;
    std::size_t eq = t.size();
    bool compound = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const std::string& x = t[i].text;
      if (x == "(" || x == "[") ++depth;
      if (x == ")" || x == "]") --depth;
      if (depth != 0) continue;
      if (x == "=") {
        eq = i;
        break;
      }
      if (x == "+=" || x == "-=" || x == "*=" || x == "/=" || x == "%=" ||
          x == "&=" || x == "|=" || x == "^=") {
        eq = i;
        compound = true;
        break;
      }
    }
    if (eq == t.size()) return;
    std::uint32_t bits = range_bits(taint, t, eq + 1, t.size());
    // A clamped value is bounded: std::min/max/clamp on the rhs cleans it.
    for (std::size_t i = eq + 1; i < t.size(); ++i) {
      if (t[i].text == "min" || t[i].text == "max" || t[i].text == "clamp") {
        bits = 0;
        break;
      }
    }
    // Lhs: a structured binding (`auto [a, b] = ...`) taints every bound
    // name; a subscript store (`m[i] = v`) updates the container m, not
    // the index i; otherwise the last bracket-depth-0 identifier.
    std::vector<std::string> lhs;
    if (eq >= 1 && t[eq - 1].text == "]") {
      int bd = 0;
      std::size_t open = eq - 1;
      for (std::size_t i = eq; i-- > 0;) {
        if (t[i].text == "]") ++bd;
        if (t[i].text == "[" && --bd == 0) {
          open = i;
          break;
        }
      }
      const bool structured =
          open == 0 || t[open - 1].text == "auto" ||
          t[open - 1].text == "&" || t[open - 1].text == "&&";
      if (structured) {
        for (std::size_t i = open + 1; i < eq; ++i) {
          if (is_analyzable_ident_token(t[i])) lhs.push_back(t[i].text);
        }
      } else if (open >= 1 && is_analyzable_ident_token(t[open - 1])) {
        lhs.push_back(t[open - 1].text);
      }
    } else {
      int d = 0;
      for (std::size_t i = eq; i-- > 0;) {
        if (t[i].text == "]" || t[i].text == ")") ++d;
        if (t[i].text == "[" || t[i].text == "(") --d;
        if (d == 0 && is_analyzable_ident_token(t[i])) {
          lhs.push_back(t[i].text);
          break;
        }
      }
    }
    for (const std::string& l : lhs) {
      if (compound) {
        if (bits != 0) taint[l] |= bits;
      } else if (bits == 0) {
        taint.erase(l);
      } else {
        taint[l] = bits;
      }
    }
  }

  /// Run one function body under `taint`; returns the union of taint bits
  /// that reached any sink. Emits findings when reporting.
  std::uint32_t run_function(FunctionSym& f, TaintMap taint) {
    std::uint32_t hits = 0;
    for (std::size_t si = 0; si < f.stmts.size(); ++si) {
      Stmt& s = f.stmts[si];
      std::string any_tainted;
      const std::uint32_t present =
          range_bits(taint, s.toks, 0, s.toks.size(), &any_tainted);
      if (s.sanitize_ann >= 0 && present != 0) {
        ix.ann(cur_tu, s.sanitize_ann).consumed = true;
        for (const Tok& tk : s.toks) {
          if (is_analyzable_ident_token(tk)) taint.erase(tk.text);
        }
        continue;
      }
      if (present != 0) {
        const SinkHit hit = check_sinks(f, s, si, taint);
        if (hit.bits != 0) {
          hits |= hit.bits;
          if (reporting) {
            out->push_back(Finding{
                f.file, s.first_line, std::string(kRuleByzTaint),
                "handler-tainted '" + hit.ident + "' reaches " + hit.what +
                    " — bound/validate it in a branch, or annotate the "
                    "statement with `// scup-sanitize: <why>`"});
          }
        }
      }
      assignment_update(s, taint);
      if (s.is_condition) condition_sanitize(s, taint);
    }
    return hits;
  }
};

bool handler_name(const std::string& n) {
  return n == "handle" || n == "on_message" || n == "on_messages" ||
         n.rfind("handle_", 0) == 0 || n.rfind("on_message_", 0) == 0;
}

}  // namespace

void run_taint(ProjectIndex& ix, std::vector<Finding>& out) {
  std::vector<TU>& tus = *ix.tus;
  TaintEngine eng{ix};
  // Phase 1: param->sink summaries to fixpoint (monotone bit growth, so
  // the cap is a safety net, not a correctness bound).
  for (int pass = 0; pass < 20; ++pass) {
    bool changed = false;
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      eng.cur_tu = ti;
      for (FunctionSym& f : tus[ti].functions) {
        if (f.params.empty()) continue;
        TaintMap seed;
        for (std::size_t i = 0; i < f.params.size() && i < 32; ++i) {
          seed[f.params[i]] |= 1u << i;
        }
        const std::uint32_t hits = eng.run_function(f, std::move(seed));
        if ((hits & ~f.sink_params) != 0) {
          f.sink_params |= hits;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  // Phase 2: report from handler seeds.
  eng.reporting = true;
  eng.out = &out;
  for (std::size_t ti = 0; ti < tus.size(); ++ti) {
    eng.cur_tu = ti;
    for (FunctionSym& f : tus[ti].functions) {
      if (!handler_name(f.name) || f.params.empty()) continue;
      TaintMap seed;
      for (const std::string& p : f.params) seed[p] |= 1u;
      eng.run_function(f, std::move(seed));
    }
  }
}

}  // namespace scup::analyze
