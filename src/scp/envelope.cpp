#include "scp/envelope.hpp"

namespace scup::scp {

namespace {
template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;
}  // namespace

bool votes_prepare(const Statement& s, const Ballot& beta) {
  if (!beta.valid()) return false;
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return false; },
          [&](const PrepareStmt& p) {
            // Votes prepare(b); that covers lower compatible ballots.
            return le_compatible(beta, p.b);
          },
          [&](const ConfirmStmt& c) {
            // Past preparing: votes prepare((∞, b.x)).
            return compatible(beta, c.b);
          },
          [&](const ExternalizeStmt& e) { return compatible(beta, e.commit); },
      },
      s);
}

bool accepts_prepared(const Statement& s, const Ballot& beta) {
  if (!beta.valid()) return false;
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return false; },
          [&](const PrepareStmt& p) {
            return le_compatible(beta, p.p) || le_compatible(beta, p.p_prime);
          },
          [&](const ConfirmStmt& c) {
            // Accepted prepared up to (max(p_n, h_n), b.x).
            const std::uint32_t top = c.p_n > c.h_n ? c.p_n : c.h_n;
            return compatible(beta, c.b) && beta.n <= top;
          },
          [&](const ExternalizeStmt& e) {
            // Confirmed commit implies prepared((∞, x)).
            return compatible(beta, e.commit);
          },
      },
      s);
}

bool votes_commit(const Statement& s, std::uint32_t n, Value x) {
  if (n == 0) return false;
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return false; },
          [&](const PrepareStmt& p) {
            return p.b.x == x && p.c_n != 0 && p.c_n <= n && n <= p.h_n;
          },
          [&](const ConfirmStmt& c) {
            // Votes commit(n, x) for every n >= c_n.
            return c.b.x == x && c.c_n != 0 && c.c_n <= n;
          },
          [&](const ExternalizeStmt& e) {
            return e.commit.x == x && e.commit.n <= n;
          },
      },
      s);
}

bool accepts_commit(const Statement& s, std::uint32_t n, Value x) {
  if (n == 0) return false;
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return false; },
          [](const PrepareStmt&) { return false; },
          [&](const ConfirmStmt& c) {
            return c.b.x == x && c.c_n != 0 && c.c_n <= n && n <= c.h_n;
          },
          [&](const ExternalizeStmt& e) {
            return e.commit.x == x && e.commit.n <= n;
          },
      },
      s);
}

bool votes_nominate(const Statement& s, Value v) {
  if (const auto* nom = std::get_if<NominateStmt>(&s)) {
    return nom->voted.count(v) > 0 || nom->accepted.count(v) > 0;
  }
  return false;
}

bool accepts_nominate(const Statement& s, Value v) {
  if (const auto* nom = std::get_if<NominateStmt>(&s)) {
    return nom->accepted.count(v) > 0;
  }
  return false;
}

bool is_ballot_statement(const Statement& s) {
  return !std::holds_alternative<NominateStmt>(s);
}

Ballot working_ballot(const Statement& s) {
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return Ballot{}; },
          [](const PrepareStmt& p) { return p.b; },
          [](const ConfirmStmt& c) { return c.b; },
          [](const ExternalizeStmt& e) { return e.commit; },
      },
      s);
}

}  // namespace scup::scp
