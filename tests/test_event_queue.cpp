// CalendarQueue cross-tier ordering: the two-tier queue (per-tick bucket
// ring + priority-queue overflow) must pop in exactly global (time, seq)
// order no matter how events straddle the ring horizon. The delicate spots
// all live at the wrap boundary — events landing at cursor + kRingSize - 1
// vs cursor + kRingSize, overflow events migrating into buckets that direct
// pushes then append to, and the cursor jumping a huge gap when the ring
// drains — so the tests here concentrate pushes around that boundary and
// differential-check against a reference ordered structure.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace scup::sim {
namespace {

Event make_event(SimTime time, std::uint64_t seq) {
  Event e;
  e.time = time;
  e.seq = seq;
  e.kind = EventKind::kTimer;
  e.target = 0;
  e.timer_id = static_cast<int>(seq & 0x7fffffff);
  return e;
}

TEST(CalendarQueueTest, PopsAcrossTheHorizonInTimeSeqOrder) {
  // One event one tick inside the horizon, one exactly on it (overflow),
  // one far beyond: the seam between tiers must be invisible.
  CalendarQueue q;
  const SimTime horizon = static_cast<SimTime>(CalendarQueue::kRingSize);
  q.push(make_event(horizon, 1));      // overflow tier
  q.push(make_event(horizon - 1, 2));  // last ring bucket
  q.push(make_event(3 * horizon, 3));  // deep overflow
  q.push(make_event(horizon, 4));      // overflow, same tick as seq 1

  EXPECT_EQ(q.next_time(), horizon - 1);
  EXPECT_EQ(q.pop().seq, 2u);
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.pop().seq, 4u);
  EXPECT_EQ(q.pop().seq, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, MigratedAndDirectPushesShareABucketInSeqOrder) {
  // An overflow event migrates into a bucket as the cursor advances; a
  // later direct push at the same timestamp must append after it (the
  // direct push always carries a larger seq). Exercises the documented
  // buckets-stay-seq-sorted invariant.
  CalendarQueue q;
  const SimTime horizon = static_cast<SimTime>(CalendarQueue::kRingSize);
  const SimTime target = horizon + 10;
  q.push(make_event(target, 1));  // beyond horizon: overflow tier
  q.push(make_event(20, 2));
  EXPECT_EQ(q.pop().seq, 2u);  // cursor -> 20; target now in horizon,
                               // so the overflow event migrated
  q.push(make_event(target, 3));  // direct push into the same bucket
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.pop().seq, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, CursorJumpOverAnEmptyGap) {
  // With the ring drained, pop() jumps the cursor to the overflow top
  // instead of scanning the gap; ordering must survive the jump even when
  // the gap is many full ring revolutions long.
  CalendarQueue q;
  const SimTime horizon = static_cast<SimTime>(CalendarQueue::kRingSize);
  q.push(make_event(5, 1));
  q.push(make_event(1'000 * horizon + 7, 2));
  q.push(make_event(1'000 * horizon + 7, 3));
  q.push(make_event(1'000 * horizon + 8, 4));
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.next_time(), 1'000 * horizon + 7);
  EXPECT_EQ(q.pop().seq, 2u);
  // Pushes after the jump land relative to the advanced cursor.
  q.push(make_event(1'000 * horizon + 8, 5));
  EXPECT_EQ(q.pop().seq, 3u);
  EXPECT_EQ(q.pop().seq, 4u);
  EXPECT_EQ(q.pop().seq, 5u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, RandomizedCrossTierDifferential) {
  // Differential fuzz against a std::set ordered by (time, seq). Push
  // times cluster around the wrap boundary (cursor + kRingSize +- a few
  // ticks) so a large fraction of events starts in the overflow tier and
  // migrates across the seam mid-run; interleaved peeks must agree with
  // the reference at every step.
  const SimTime horizon = static_cast<SimTime>(CalendarQueue::kRingSize);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(0xCA1E'0000 + seed);
    CalendarQueue q;
    std::set<std::pair<SimTime, std::uint64_t>> reference;
    std::uint64_t next_seq = 0;
    SimTime cursor = 0;  // mirrors the queue's floor: last popped time
    for (int op = 0; op < 20'000; ++op) {
      const bool do_push = reference.empty() || rng.chance(0.55);
      if (do_push) {
        // Mostly boundary-hugging offsets, occasionally deep overflow or
        // same-tick (delay 0).
        SimTime offset;
        switch (rng.uniform(10)) {
          case 0:
            offset = 0;
            break;
          case 1:
            offset = horizon * static_cast<SimTime>(2 + rng.uniform(5));
            break;
          default:
            offset = horizon - 4 + static_cast<SimTime>(rng.uniform(8));
            break;
        }
        const SimTime t = cursor + offset;
        const std::uint64_t seq = next_seq++;
        q.push(make_event(t, seq));
        reference.emplace(t, seq);
      } else {
        ASSERT_EQ(q.next_time(), reference.begin()->first) << "op " << op;
        ASSERT_EQ(q.peek()->seq, reference.begin()->second) << "op " << op;
        const Event e = q.pop();
        ASSERT_EQ(e.time, reference.begin()->first) << "op " << op;
        ASSERT_EQ(e.seq, reference.begin()->second) << "op " << op;
        cursor = e.time;
        reference.erase(reference.begin());
      }
      ASSERT_EQ(q.size(), reference.size());
      ASSERT_EQ(q.empty(), reference.empty());
    }
    // Drain: the tail must come out in exact (time, seq) order too.
    while (!reference.empty()) {
      const Event e = q.pop();
      EXPECT_EQ(e.time, reference.begin()->first);
      EXPECT_EQ(e.seq, reference.begin()->second);
      reference.erase(reference.begin());
    }
    EXPECT_TRUE(q.empty());
  }
}

}  // namespace
}  // namespace scup::sim
