// Fixture: det-unordered-iter stays quiet when the loop carries an
// order-insensitive annotation (same line and preceding line forms).
#include <unordered_map>

struct Accumulator {
  std::unordered_map<int, int> support_;
  int total() const {
    int sum = 0;
    // scup-lint: order-insensitive(integer addition commutes)
    for (const auto& [k, v] : support_) {
      sum += v;
    }
    int cnt = 0;
    for (const auto& [k, v] : support_) {  // scup-lint: order-insensitive(count is order-free)
      cnt += 1;
    }
    return sum + cnt;
  }
};
