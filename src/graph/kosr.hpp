// k-One Sink Reducibility (Definition 6) and the safe Byzantine failure
// pattern (Definition 7).
#pragma once

#include <cstddef>
#include <string>

#include "common/node_set.hpp"
#include "graph/digraph.hpp"

namespace scup::graph {

/// Detailed verdict of a k-OSR check, one flag per clause of Definition 6.
struct KosrReport {
  bool weakly_connected = false;       // (1) undirected graph is connected
  bool single_sink = false;            // (2) condensation has exactly one sink
  bool sink_k_connected = false;       // (3) sink is k-strongly connected
  bool paths_to_sink = false;          // (4) k disjoint paths non-sink -> sink
  NodeSet sink;                        // sink members (valid if single_sink)

  bool ok() const {
    return weakly_connected && single_sink && sink_k_connected && paths_to_sink;
  }
  std::string to_string() const;
};

/// Checks whether g restricted to `active` satisfies k-OSR.
KosrReport check_kosr(const Digraph& g, std::size_t k, const NodeSet& active);
KosrReport check_kosr(const Digraph& g, std::size_t k);

/// Definition 7: the safe Byzantine failure pattern holds for (g, F, f) iff
/// F ⊂ g's nodes, |F| <= f, and g \ F is (f+1)-OSR.
bool is_byzantine_safe(const Digraph& g, const NodeSet& faulty, std::size_t f);

/// Precondition of Theorem 1 (and of Theorem 5): g is Byzantine-safe for F
/// and the sink component of g (the full graph, faulty included) contains at
/// least 2f+1 correct processes.
bool satisfies_bft_cup_preconditions(const Digraph& g, const NodeSet& faulty,
                                     std::size_t f);

}  // namespace scup::graph
