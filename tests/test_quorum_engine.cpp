// QuorumEngine unit suite: hash-consed interning, flattened-vs-recursive
// evaluation equivalence on randomized nested qsets, closure memoization
// (hits, invalidation), and — at the ScpNode level — from-scratch
// equivalence of the incrementally maintained support views against the
// historical gather path, plus the PREPARE commit-range statement
// invariant (c_n != 0 ⇒ c_n ≤ h_n).
#include "fbqs/quorum_engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "scp/scp_node.hpp"
#include "sim/host.hpp"

namespace scup::fbqs {
namespace {

QSet random_qset(Rng& rng, std::size_t universe, int depth) {
  std::vector<ProcessId> validators;
  const std::size_t n_validators = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < n_validators; ++i) {
    validators.push_back(static_cast<ProcessId>(rng.uniform(universe)));
  }
  std::vector<QSet> inner;
  if (depth > 0) {
    const std::size_t n_inner = rng.uniform(3);  // 0..2
    for (std::size_t i = 0; i < n_inner; ++i) {
      inner.push_back(random_qset(rng, universe, depth - 1));
    }
  }
  const std::size_t elements = validators.size() + inner.size();
  const std::size_t threshold = 1 + rng.uniform(elements);
  return QSet(threshold, std::move(validators), std::move(inner));
}

NodeSet random_set(Rng& rng, std::size_t universe) {
  NodeSet s(universe);
  for (ProcessId i = 0; i < universe; ++i) {
    if (rng.uniform(2) == 0) s.add(i);
  }
  return s;
}

TEST(QuorumEngineTest, InterningIdentity) {
  QuorumEngine engine;
  const QSet a = QSet::threshold_of(2, std::vector<ProcessId>{0, 1, 2});
  const QSet b = QSet::threshold_of(2, std::vector<ProcessId>{0, 1, 2});
  const QSet c = QSet::threshold_of(3, std::vector<ProcessId>{0, 1, 2});
  const QSet nested(1, {}, {a, c});

  const QSetId ia = engine.intern(a);
  const QSetId ib = engine.intern(b);
  const QSetId ic = engine.intern(c);
  const QSetId in = engine.intern(nested);
  EXPECT_EQ(ia, ib) << "structurally equal qsets must share an id";
  EXPECT_NE(ia, ic);
  EXPECT_NE(in, ia);
  EXPECT_EQ(engine.interned_count(), 3u);
  EXPECT_EQ(engine.stats().intern_hits, 1u);
  EXPECT_TRUE(engine.qset(ia) == a);
  EXPECT_TRUE(engine.qset(in) == nested);

  // Re-interning the nested set is a hit, not a new entry.
  EXPECT_EQ(engine.intern(nested), in);
  EXPECT_EQ(engine.interned_count(), 3u);
}

TEST(QuorumEngineTest, FlattenedMatchesRecursiveOnRandomNestedQSets) {
  constexpr std::size_t kUniverse = 12;
  Rng rng(20260802);
  QuorumEngine engine;
  for (int trial = 0; trial < 200; ++trial) {
    const QSet q = random_qset(rng, kUniverse, /*depth=*/3);
    const QSetId id = engine.intern(q);
    for (int probe = 0; probe < 10; ++probe) {
      const NodeSet nodes = random_set(rng, kUniverse);
      EXPECT_EQ(engine.satisfied_by(id, nodes), q.satisfied_by(nodes))
          << "trial=" << trial << " qset=" << q.to_string()
          << " nodes=" << nodes.to_string();
      EXPECT_EQ(engine.blocked_by(id, nodes), q.blocked_by(nodes))
          << "trial=" << trial << " qset=" << q.to_string()
          << " nodes=" << nodes.to_string();
    }
  }
}

TEST(QuorumEngineTest, EmptyQSetSemantics) {
  QuorumEngine engine;
  const QSetId id = engine.intern(QSet());
  const NodeSet none(4);
  EXPECT_TRUE(engine.satisfied_by(id, none));   // vacuous slice
  EXPECT_FALSE(engine.blocked_by(id, NodeSet::full(4)));
}

/// Reference closure: the historical ScpNode loop verbatim, on recursive
/// QSet evaluation.
bool reference_quorum_contains(const NodeSet& support, ProcessId member,
                               const std::vector<const QSet*>& qsets) {
  NodeSet live = support;
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProcessId id : live) {
      if (qsets[id] == nullptr || !qsets[id]->satisfied_by(live)) {
        live.remove(id);
        changed = true;
      }
    }
  }
  return live.contains(member);
}

TEST(QuorumEngineTest, ClosureMatchesReferenceOnRandomConfigurations) {
  constexpr std::size_t kUniverse = 10;
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    QuorumEngine engine;
    std::vector<QSetId> ids(kUniverse, kNoQSetId);
    std::vector<const QSet*> ref(kUniverse, nullptr);
    std::vector<QSet> storage;
    storage.reserve(kUniverse);
    for (ProcessId i = 0; i < kUniverse; ++i) {
      if (rng.uniform(8) == 0) continue;  // some processes never spoke
      storage.push_back(random_qset(rng, kUniverse, 2));
      ids[i] = engine.intern(storage.back());
    }
    // Pointers resolved after storage stops reallocating.
    std::size_t next = 0;
    for (ProcessId i = 0; i < kUniverse; ++i) {
      if (ids[i] != kNoQSetId) ref[i] = &storage[next++];
    }
    for (int probe = 0; probe < 20; ++probe) {
      const NodeSet support = random_set(rng, kUniverse);
      const auto member = static_cast<ProcessId>(rng.uniform(kUniverse));
      EXPECT_EQ(engine.quorum_contains(support, member, ids),
                reference_quorum_contains(support, member, ref))
          << "trial=" << trial << " support=" << support.to_string()
          << " member=" << member;
    }
  }
}

TEST(QuorumEngineTest, ClosureMemoizationHitsAndSelfValidation) {
  QuorumEngine engine;
  constexpr std::size_t kN = 4;
  const QSet q = QSet::threshold_of(3, std::vector<ProcessId>{0, 1, 2, 3});
  std::vector<QSetId> ids(kN, engine.intern(q));
  const NodeSet support = NodeSet::full(kN);

  EXPECT_TRUE(engine.quorum_contains(support, 0, ids));
  const auto runs = engine.stats().closure_runs;
  EXPECT_EQ(runs, 1u);
  EXPECT_EQ(engine.stats().closure_cache_hits, 0u);

  // Same support + same assignment: served from cache — and the baseline
  // is charged what the original run cost, so savings are measurable.
  const auto baseline_before = engine.stats().qset_evals_baseline;
  const auto evals_before = engine.stats().qset_evals;
  EXPECT_TRUE(engine.quorum_contains(support, 0, ids));
  EXPECT_EQ(engine.stats().closure_runs, runs);
  EXPECT_GE(engine.stats().closure_cache_hits, 1u);
  EXPECT_EQ(engine.stats().qset_evals, evals_before) << "hit must be free";
  EXPECT_GT(engine.stats().qset_evals_baseline, baseline_before)
      << "the rescan baseline would have paid for the closure again";

  // A member re-announces a different qset: cached entries re-validate
  // against the current assignment and stop matching — the verdict is
  // recomputed, and it honours the new (stricter) qset.
  const QSet strict = QSet::threshold_of(4, std::vector<ProcessId>{0, 1, 2, 3});
  ids[1] = engine.intern(strict);
  const auto hits_before = engine.stats().closure_cache_hits;
  NodeSet three(kN, {0, 1, 2});
  // {0,1,2} satisfies 3-of-4 for members 0 and 2 but not 1's new 4-of-4:
  // the closure drops 1, then 0 and 2 lack their threshold — FALSE.
  EXPECT_FALSE(engine.quorum_contains(three, 0, ids));
  EXPECT_GT(engine.stats().closure_runs, runs);
  EXPECT_EQ(engine.stats().closure_cache_hits, hits_before)
      << "stale entries must not match the changed assignment";
}

}  // namespace
}  // namespace scup::fbqs

// ---------------------------------------------------------------------------
// ScpNode-level: incremental support views vs the from-scratch gather path,
// closure-cache invalidation on envelope (qset) change, and the PREPARE
// statement invariant.
// ---------------------------------------------------------------------------
namespace scup::scp {
namespace {

class FakeHost : public sim::ProtocolHost {
 public:
  FakeHost(ProcessId self, std::size_t n) : self_(self), n_(n) {}
  ProcessId self() const override { return self_; }
  std::size_t universe() const override { return n_; }
  std::size_t fault_threshold() const override { return 1; }
  void host_send(ProcessId to, sim::MessagePtr msg) override {
    sent.emplace_back(to, std::move(msg));
  }
  void host_set_timer(int, SimTime) override {}
  SimTime host_now() const override { return 0; }
  std::uint64_t host_sign(std::uint64_t) const override { return 0; }
  bool host_verify(ProcessId, std::uint64_t, std::uint64_t) const override {
    return true;
  }
  void host_counter_add(sim::ProtoCounter counter,
                        std::uint64_t delta) override {
    counters[static_cast<std::size_t>(counter)] += delta;
  }

  std::vector<std::pair<ProcessId, sim::MessagePtr>> sent;
  std::array<std::uint64_t, sim::kProtoCounterCount> counters{};

 private:
  ProcessId self_;
  std::size_t n_;
};

/// Every PREPARE this host ever saw emitted must satisfy the commit-range
/// invariant: a commit vote range [c_n, h_n] is only published under a
/// confirmed-prepared bound (c_n != 0 ⇒ c_n ≤ h_n).
void expect_prepare_invariant(const FakeHost& host) {
  for (const auto& [to, msg] : host.sent) {
    const auto* env = dynamic_cast<const Envelope*>(msg.get());
    if (env == nullptr) continue;
    if (const auto* p = std::get_if<PrepareStmt>(&env->statement)) {
      EXPECT_TRUE(p->c_n == 0 || p->c_n <= p->h_n)
          << "malformed commit range [" << p->c_n << ", " << p->h_n << "]";
    }
  }
}

fbqs::QSet majority4() {
  return fbqs::QSet::threshold_of(3, std::vector<ProcessId>{0, 1, 2, 3});
}

TEST(ScpNodeEngineTest, IncrementalSupportMatchesFromScratchThroughDecision) {
  constexpr std::size_t kN = 4;
  FakeHost host(0, kN);
  ScpNode node(host, kN, majority4(), /*own_value=*/42);
  for (ProcessId p = 1; p < kN; ++p) node.add_peer(p);
  node.start();
  EXPECT_TRUE(node.support_views_consistent());

  // Peers nominate 42: node accepts, ratifies, moves to PREPARE.
  for (ProcessId p = 1; p < kN; ++p) {
    NominateStmt nom;
    nom.voted.insert(42);
    nom.accepted.insert(42);
    node.handle(p, Envelope(p, 1, majority4(), Statement{nom}));
    EXPECT_TRUE(node.support_views_consistent()) << "after nominate from " << p;
  }
  EXPECT_EQ(node.phase(), ScpNode::Phase::kPrepare);

  // Peers prepare (1, 42); then publish the commit range; then confirm.
  for (ProcessId p = 1; p < kN; ++p) {
    PrepareStmt prep;
    prep.b = Ballot{1, 42};
    prep.p = Ballot{1, 42};
    node.handle(p, Envelope(p, 2, majority4(), Statement{prep}));
    EXPECT_TRUE(node.support_views_consistent()) << "after prepare from " << p;
  }
  for (ProcessId p = 1; p < kN; ++p) {
    PrepareStmt prep;
    prep.b = Ballot{1, 42};
    prep.p = Ballot{1, 42};
    prep.c_n = 1;
    prep.h_n = 1;
    node.handle(p, Envelope(p, 3, majority4(), Statement{prep}));
    EXPECT_TRUE(node.support_views_consistent());
  }
  for (ProcessId p = 1; p < kN; ++p) {
    ConfirmStmt conf;
    conf.b = Ballot{1, 42};
    conf.p_n = 1;
    conf.c_n = 1;
    conf.h_n = 1;
    node.handle(p, Envelope(p, 4, majority4(), Statement{conf}));
    EXPECT_TRUE(node.support_views_consistent());
  }
  ASSERT_TRUE(node.decided());
  EXPECT_EQ(node.decision(), 42u);
  expect_prepare_invariant(host);

  // The memoizing path must have done real work and found real reuse.
  const auto& s = node.engine().stats();
  EXPECT_GT(s.closure_runs, 0u);
  EXPECT_GT(s.closure_cache_hits, 0u);
  EXPECT_GT(s.qset_evals_baseline, s.qset_evals)
      << "rescan baseline should cost more than the memoized path";
  // An owned-engine node flushes its counters to the host's SimMetrics.
  EXPECT_EQ(host.counters[static_cast<std::size_t>(
                sim::ProtoCounter::kQuorumClosureRuns)],
            s.closure_runs);
  EXPECT_EQ(host.counters[static_cast<std::size_t>(
                sim::ProtoCounter::kQsetEvals)],
            s.qset_evals);
}

TEST(ScpNodeEngineTest, QsetChangeInvalidatesClosureCache) {
  constexpr std::size_t kN = 4;
  FakeHost host(0, kN);
  ScpNode node(host, kN, majority4(), 42);
  for (ProcessId p = 1; p < kN; ++p) node.add_peer(p);
  node.start();

  NominateStmt nom;
  nom.voted.insert(42);
  nom.accepted.insert(42);
  for (ProcessId p = 1; p < kN; ++p) {
    node.handle(p, Envelope(p, 1, majority4(), Statement{nom}));
  }
  const auto runs_before = node.engine().stats().closure_runs;

  // Sender 1 re-announces with a DIFFERENT qset: every cached closure
  // verdict embeds the old assignment, so the next check must re-run even
  // though the support sets are unchanged.
  const fbqs::QSet other =
      fbqs::QSet::threshold_of(2, std::vector<ProcessId>{0, 1, 2, 3});
  NominateStmt nom2 = nom;
  nom2.voted.insert(43);  // grow the statement so the envelope is fresh
  node.handle(1, Envelope(1, 5, other, Statement{nom2}));
  EXPECT_TRUE(node.support_views_consistent());
  EXPECT_GT(node.engine().stats().closure_runs, runs_before)
      << "qset change must invalidate the closure cache";
}

TEST(ScpNodeEngineTest, RandomizedEnvelopeFuzzKeepsViewsConsistent) {
  constexpr std::size_t kN = 6;
  const fbqs::QSet qa =
      fbqs::QSet::threshold_of(4, std::vector<ProcessId>{0, 1, 2, 3, 4, 5});
  const fbqs::QSet qb =
      fbqs::QSet::threshold_of(3, std::vector<ProcessId>{0, 1, 2, 3, 4, 5});

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    FakeHost host(0, kN);
    ScpNode node(host, kN, qa, 100 + seed);
    for (ProcessId p = 1; p < kN; ++p) node.add_peer(p);
    node.start();

    std::vector<std::uint64_t> seq(kN, 0);
    for (int step = 0; step < 120; ++step) {
      const auto p = static_cast<ProcessId>(1 + rng.uniform(kN - 1));
      const fbqs::QSet& q = rng.uniform(4) == 0 ? qb : qa;
      Statement stmt;
      switch (rng.uniform(4)) {
        case 0: {
          NominateStmt s;
          const std::size_t k = 1 + rng.uniform(3);
          for (std::size_t i = 0; i < k; ++i) {
            const Value v = 100 + rng.uniform(4);
            if (rng.uniform(2) == 0) s.voted.insert(v); else s.accepted.insert(v);
          }
          stmt = s;
          break;
        }
        case 1: {
          PrepareStmt s;
          s.b = Ballot{1 + static_cast<std::uint32_t>(rng.uniform(3)),
                       100 + rng.uniform(4)};
          if (rng.uniform(2) == 0) s.p = s.b;
          if (rng.uniform(3) == 0) {
            s.c_n = 1;
            s.h_n = s.b.n;
          }
          stmt = s;
          break;
        }
        case 2: {
          ConfirmStmt s;
          s.b = Ballot{1 + static_cast<std::uint32_t>(rng.uniform(3)),
                       100 + rng.uniform(4)};
          s.p_n = s.b.n;
          s.c_n = 1;
          s.h_n = s.b.n;
          stmt = s;
          break;
        }
        default: {
          ExternalizeStmt s;
          s.commit = Ballot{1, 100 + rng.uniform(4)};
          s.h_n = 1 + static_cast<std::uint32_t>(rng.uniform(2));
          stmt = s;
          break;
        }
      }
      node.handle(p, Envelope(p, ++seq[p], q, std::move(stmt)));
      ASSERT_TRUE(node.support_views_consistent())
          << "seed=" << seed << " step=" << step;
    }
    expect_prepare_invariant(host);
  }
}

}  // namespace
}  // namespace scup::scp
