#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace scup::graph {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.successors(0).empty());
}

TEST(DigraphTest, AddEdgeBasics) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(2), 2u);
}

TEST(DigraphTest, SelfLoopsAndDuplicatesIgnored) {
  Digraph g(3);
  g.add_edge(1, 1);
  EXPECT_EQ(g.edge_count(), 0u);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(DigraphTest, OutOfRangeThrows) {
  Digraph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(g.add_edge(3, 0), std::out_of_range);
  EXPECT_THROW((void)g.has_edge(0, 5), std::out_of_range);
  EXPECT_THROW((void)g.successors(9), std::out_of_range);
}

TEST(DigraphTest, SuccessorPredecessorSets) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(g.successor_set(0), NodeSet(5, {1, 3}));
  EXPECT_EQ(g.predecessor_set(3), NodeSet(5, {0, 2}));
  EXPECT_EQ(g.pd_of(0), NodeSet(5, {1, 3}));
}

TEST(DigraphTest, Reversed) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_FALSE(r.has_edge(0, 1));
  EXPECT_EQ(r.edge_count(), 2u);
}

TEST(DigraphTest, UndirectedClosure) {
  Digraph g(3);
  g.add_edge(0, 1);
  const Digraph u = g.undirected_closure();
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(1, 0));
  EXPECT_EQ(u.edge_count(), 2u);
}

TEST(DigraphTest, InducedSubgraph) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const Digraph sub = g.induced_subgraph(NodeSet(4, {0, 1, 3}));
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_FALSE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(2, 3));
  EXPECT_EQ(sub.edge_count(), 1u);
}

TEST(DigraphTest, Reachability) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_EQ(g.reachable_from(0), NodeSet(6, {0, 1, 2}));
  EXPECT_EQ(g.reachable_from(3), NodeSet(6, {3, 4}));
  EXPECT_EQ(g.reachable_from(5), NodeSet(6, {5}));
  // Restricted to active set: node 1 removed cuts the path.
  EXPECT_EQ(g.reachable_from(0, NodeSet(6, {0, 2, 3, 4, 5})), NodeSet(6, {0}));
}

TEST(DigraphTest, Fig1Structure) {
  const Digraph g = fig1_graph();
  EXPECT_EQ(g.node_count(), 8u);
  // Paper: PD1 = {2, 5}  ->  our process 0 knows {1, 4}.
  EXPECT_EQ(g.pd_of(0), NodeSet(8, {1, 4}));
  EXPECT_EQ(g.pd_of(1), NodeSet(8, {3}));
  EXPECT_EQ(g.pd_of(3), NodeSet(8, {4, 5, 7}));
  EXPECT_EQ(g.pd_of(7), NodeSet(8, {5, 6}));
  // Every process reaches the sink.
  for (ProcessId i = 0; i < 8; ++i) {
    EXPECT_TRUE(fig1_sink().subset_of(g.reachable_from(i))) << "i=" << i;
  }
}

TEST(DigraphTest, Fig2Structure) {
  const Digraph g = fig2_graph();
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.pd_of(0), NodeSet(7, {1, 2, 3}));
  EXPECT_EQ(g.pd_of(4), NodeSet(7, {0, 5, 6}));
  // Sink members {0,1,2,3} only know each other.
  for (ProcessId i : fig2_sink()) {
    EXPECT_TRUE(g.pd_of(i).subset_of(fig2_sink()));
  }
}

}  // namespace
}  // namespace scup::graph
