// Fixture: perf-hot-alloc must fire on make_shared and `new` inside the
// per-delivery handler bodies (on_message / on_messages / handle), and
// stay quiet on allocations outside them.
#include <cstdint>
#include <memory>

using ProcessId = std::uint32_t;

struct Message {
  std::uint64_t payload = 0;
};
using MessagePtr = std::shared_ptr<const Message>;

struct Delivery {
  ProcessId from = 0;
  MessagePtr msg;
};

struct Node {
  void on_message(ProcessId from, const MessagePtr& msg) {
    auto echo = std::make_shared<const Message>(*msg);
    auto* scratch = new std::uint64_t[4];
    scratch[0] = from + echo->payload;
    delete[] scratch;
  }

  void on_messages(Delivery* batch, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      batch[i].msg = std::make_shared<const Message>();
    }
  }

  bool handle(ProcessId from, const Message& msg) {
    last_ = new Message{msg.payload + from};
    return true;
  }

  Message* last_ = nullptr;
};

// Allocations outside handler bodies are not this rule's business: cold
// setup paths may heap-allocate freely.
inline MessagePtr make_cold() { return std::make_shared<const Message>(); }
