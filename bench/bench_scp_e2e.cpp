// E6 — Theorem 5 / Corollary 2: end-to-end Stellar with the sink detector.
//
// PD_i + f -> get_sink -> Algorithm-2 slices -> SCP externalization.
// Sweeps n and f with silent Byzantine faults placed safely (possibly in
// the sink), plus an SCP-equivocator row and a pre-GST asynchrony row.
// Reports decision latency (simulated ticks), message/byte totals, and the
// consensus properties (all must hold — they are theorems).
#include "bench_common.hpp"

namespace scup {
namespace {

core::ScenarioReport run_once(std::size_t n, std::size_t f,
                              std::uint64_t seed,
                              core::AdversaryKind adversary,
                              SimTime gst = 0) {
  graph::KosrGenParams params;
  params.sink_size = n / 2;
  params.non_sink_size = n - n / 2;
  params.k = 2 * f + 1;
  params.seed = seed;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet sink = graph::unique_sink_component(g);
  Rng rng(seed + 5);
  const NodeSet faulty = graph::pick_safe_faulty_set(g, sink, f, true, rng);
  auto cfg = bench::sim_scenario(g, f, faulty, seed,
                                 core::ProtocolKind::kStellarSd);
  cfg.adversary = adversary;
  cfg.net.gst = gst;
  cfg.net.pre_gst_max_delay = 500;
  return core::run_scenario(cfg);
}

void report(benchmark::State& state, const core::ScenarioReport& r) {
  state.counters["t_first_decide"] = static_cast<double>(r.first_decision);
  state.counters["t_last_decide"] = static_cast<double>(r.last_decision);
  state.counters["t_sd_return"] = static_cast<double>(r.sd_last_return);
  state.counters["messages"] = static_cast<double>(r.metrics.messages_sent);
  state.counters["kilobytes"] =
      static_cast<double>(r.metrics.bytes_sent) / 1024.0;
  state.counters["termination"] = r.all_decided ? 1 : 0;
  state.counters["agreement"] = r.agreement ? 1 : 0;
  state.counters["validity"] = r.validity ? 1 : 0;
}

void BM_StellarSd_Sweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = static_cast<std::size_t>(state.range(1));
  core::ScenarioReport r;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    r = run_once(n, f, seed++, core::AdversaryKind::kSilent);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["f"] = static_cast<double>(f);
  report(state, r);
}
BENCHMARK(BM_StellarSd_Sweep)
    ->ArgsProduct({{8, 12, 16, 24, 32}, {1}})
    ->Args({16, 2})
    ->Args({24, 2})
    ->Unit(benchmark::kMillisecond);

void BM_StellarSd_ScpEquivocator(benchmark::State& state) {
  core::ScenarioReport r;
  std::uint64_t seed = 3;
  for (auto _ : state) {
    r = run_once(12, 1, seed++, core::AdversaryKind::kScpEquivocator);
    benchmark::DoNotOptimize(r);
  }
  report(state, r);
}
BENCHMARK(BM_StellarSd_ScpEquivocator)->Unit(benchmark::kMillisecond);

void BM_StellarSd_PreGstAsynchrony(benchmark::State& state) {
  core::ScenarioReport r;
  std::uint64_t seed = 11;
  for (auto _ : state) {
    r = run_once(12, 1, seed++, core::AdversaryKind::kSilent, /*gst=*/5'000);
    benchmark::DoNotOptimize(r);
  }
  report(state, r);
}
BENCHMARK(BM_StellarSd_PreGstAsynchrony)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E6");
