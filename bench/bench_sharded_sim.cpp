// E14: the sharded simulator. Serial-vs-sharded throughput of the windowed
// engine on a sustained gossip plane with per-delivery protocol work, at
// n in {512, 4096, 10000}:
//  - Plane/n:*/shards:0 is the legacy serial loop (the baseline);
//  - shards:1 is the windowed engine run on the calling thread (its pure
//    bookkeeping overhead: pedigree keys, staged outboxes, barrier merge);
//  - shards:8 adds real parallelism across the shard pool.
// Rows report events/sec (items_per_second) plus the zero-copy event-plane
// counters: staged ops, arena grow vs. wholesale-reuse counts (allocation
// behaviour of the per-shard bump arenas), and batch upcall amortization.
// Identity rows re-prove the engine's contract under bench conditions:
// every shard count must produce bit-identical metrics and Notary
// fingerprints, across the plane workload and the full E12 scenario-matrix
// shapes; a mismatch fails the bench run.
#include "bench_common.hpp"

#include "sim/simulation.hpp"

namespace scup {
namespace {

struct PlaneMsg final : sim::Message {
  explicit PlaneMsg(std::uint64_t p) : payload(p) {}
  std::uint64_t payload;
  std::string type_name() const override { return "bench.plane"; }
  std::size_t byte_size() const override { return 40; }
};

/// Sustains a fixed in-flight message population (each delivery forwards
/// exactly one message) and burns a slice of hash work per delivery — the
/// stand-in for protocol computation that gives shards something to run in
/// parallel.
class PlaneNode : public sim::Process {
 public:
  PlaneNode(std::size_t n, bool seeds) : n_(n), seeds_(seeds) {}

  void start() override {
    if (seeds_) send((id() + 1) % n_, sim::make_message<PlaneMsg>(id()));
  }

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    const auto& m = dynamic_cast<const PlaneMsg&>(*msg);
    std::uint64_t h = m.payload;
    for (int round = 0; round < 64; ++round) h = hash_mix(h, from, id());
    digest_ ^= h;
    send((id() + 1 + h % 7) % n_, sim::make_message<PlaneMsg>(h));
  }

  std::uint64_t digest_ = 0;

 private:
  std::size_t n_;
  bool seeds_;
};

struct PlaneResult {
  sim::SimMetrics metrics;
  std::uint64_t digest = 0;  // xor over nodes: order-insensitive checksum
  sim::ShardStats stats;
};

PlaneResult run_plane(std::size_t n, std::size_t shards, SimTime horizon,
                      std::uint64_t seed) {
  sim::NetworkConfig net;
  net.min_delay = 2;
  net.max_delay = 12;
  net.seed = seed;
  // Barrier-replay profile (E16): where window wall-clock goes — parallel
  // drain vs. the serialized barrier phases. Timing lives in ShardStats,
  // outside the identity contract, so the identity rows are unaffected.
  net.shard_timing = true;
  sim::Simulation sim(n, net);
  std::vector<PlaneNode*> nodes;
  nodes.reserve(n);
  for (ProcessId i = 0; i < n; ++i) {
    nodes.push_back(&sim.emplace_process<PlaneNode>(i, n, i % 4 == 0));
  }
  sim.set_shards(shards);
  sim.start();
  sim.run_for(horizon);
  PlaneResult out;
  out.metrics = sim.metrics();
  for (const auto* node : nodes) out.digest ^= node->digest_;
  out.stats = sim.shard_stats();
  return out;
}

void BM_Plane(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const SimTime horizon = 1'500;
  std::size_t events = 0;
  sim::ShardStats stats;
  for (auto _ : state) {
    const PlaneResult r = run_plane(n, shards, horizon, 99);
    benchmark::DoNotOptimize(r.digest);
    events += r.metrics.events_processed;
    stats = r.stats;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_run"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
  state.counters["windows"] = static_cast<double>(stats.windows);
  state.counters["staged_ops"] = static_cast<double>(stats.staged_ops);
  state.counters["arena_grown"] = static_cast<double>(stats.arena_grown);
  state.counters["arena_reused"] = static_cast<double>(stats.arena_reused);
  state.counters["batch_upcalls"] = static_cast<double>(stats.batch_upcalls);
  state.counters["batched_messages"] =
      static_cast<double>(stats.batched_messages);
  if (stats.timing_enabled) {
    // Barrier-replay breakdown (last run): parallel window execution vs.
    // the three serialized barrier phases, in milliseconds.
    state.counters["window_ms"] = static_cast<double>(stats.window_ns) / 1e6;
    state.counters["merge_ms"] = static_cast<double>(stats.merge_ns) / 1e6;
    state.counters["replay_ms"] = static_cast<double>(stats.replay_ns) / 1e6;
    state.counters["reset_ms"] = static_cast<double>(stats.reset_ns) / 1e6;
    state.counters["drain_ms"] = static_cast<double>(stats.drain_ns) / 1e6;
    for (std::size_t s = 0; s < stats.shard_drain_ns.size(); ++s) {
      state.counters["drain_s" + std::to_string(s) + "_ms"] =
          static_cast<double>(stats.shard_drain_ns[s]) / 1e6;
    }
  }
}
BENCHMARK(BM_Plane)
    ->ArgNames({"n", "shards"})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({512, 8})
    ->Args({4'096, 0})
    ->Args({4'096, 1})
    ->Args({4'096, 8})
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Args({10'000, 8})
    // Wall-clock rates: with pool threads doing the work, a CPU-time rate
    // would only meter the coordinating thread and overstate throughput.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_PlaneIdentity(benchmark::State& state) {
  // The determinism contract under bench conditions: metrics and node
  // digests bit-identical for every shard count (legacy included —
  // run_for drains the same event set in both modes).
  const std::size_t n = 512;
  const SimTime horizon = 600;
  std::size_t checks = 0;
  for (auto _ : state) {
    const PlaneResult base = run_plane(n, 1, horizon, 7);
    for (std::size_t shards : {0u, 2u, 3u, 8u}) {
      const PlaneResult r = run_plane(n, shards, horizon, 7);
      if (!(r.metrics == base.metrics) || r.digest != base.digest) {
        state.SkipWithError("shard-count identity violated");
        return;
      }
      ++checks;
    }
  }
  state.counters["identity_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_PlaneIdentity)->Unit(benchmark::kMillisecond);

void BM_MatrixIdentity(benchmark::State& state) {
  // Every E12 scenario-matrix shape (churn / +partition / +loss / +crash)
  // x both protocols: the shards=2 report must equal the shards=1 windowed
  // baseline bit for bit, Notary fingerprint included.
  std::size_t cells = 0;
  for (auto _ : state) {
    for (int shape = 0; shape < 4; ++shape) {
      for (core::ProtocolKind protocol :
           {core::ProtocolKind::kStellarSd, core::ProtocolKind::kBftCup}) {
        core::ChurnPartitionParams p;
        p.protocol = protocol;
        p.seed = 3;
        p.with_partition = shape >= 1;
        if (shape == 2) p.pre_gst_drop = 0.2;
        p.with_crash = shape == 3;
        core::ScenarioConfig cfg = core::churn_partition_scenario(p);
        cfg.shards = 1;
        const core::ScenarioReport base = core::run_scenario(cfg);
        cfg.shards = 2;
        const core::ScenarioReport sharded = core::run_scenario(cfg);
        if (!base.all_decided ||
            sharded.notary_fingerprint != base.notary_fingerprint ||
            !(sharded.metrics == base.metrics) ||
            sharded.decision_times != base.decision_times ||
            sharded.end_time != base.end_time) {
          state.SkipWithError("matrix shard identity violated");
          return;
        }
        ++cells;
      }
    }
  }
  state.counters["cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_MatrixIdentity)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E14");
