// Fixture: idiomatic scup code that must produce zero findings — ordered
// containers, seeded Rng, bounded handlers, no raw threads.
#include <cstdint>
#include <map>
#include <set>
#include <vector>

using ProcessId = std::uint32_t;

struct Tally {
  std::map<ProcessId, std::uint64_t> latest_;
  std::set<std::uint64_t> values_;
  std::uint64_t fold() const {
    std::uint64_t h = 0;
    for (const auto& [id, v] : latest_) h = h * 31 + id + v;
    for (std::uint64_t v : values_) h ^= v;
    return h;
  }
};

// Mentioning a banned name in a comment (std::thread, rand()) is fine; and
// so is one in a string literal:
inline const char* kDoc = "do not use std::rand or std::thread here";
