// Fixture: an annotation whose code no longer triggers any rule must be
// reported as lint-stale-annotation, and an unknown annotation name as
// lint-unknown-annotation.
#include <map>

struct Holder {
  std::map<int, int> ordered_;
  int sum() const {
    int total = 0;
    // scup-lint: order-insensitive(std::map is already ordered — stale)
    for (const auto& [k, v] : ordered_) {
      total += v;
    }
    return total;
  }
};

// scup-lint: no-such-annotation(this name does not exist)
int unrelated() { return 0; }
