// ProtocolHost: the narrow interface protocol components (discovery, sink
// detector, SCP, PBFT) use to interact with the world. A composed node
// (e.g. core::StellarCupNode) subclasses sim::Process AND implements this
// interface, so several protocol layers can share one simulated process.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/counters.hpp"
#include "sim/message.hpp"

namespace scup::sim {

class ProtocolHost {
 public:
  virtual ~ProtocolHost() = default;

  virtual ProcessId self() const = 0;
  virtual std::size_t universe() const = 0;

  /// The system-wide fault threshold f (known to every process, Section
  /// III-A).
  virtual std::size_t fault_threshold() const = 0;

  virtual void host_send(ProcessId to, MessagePtr msg) = 0;
  virtual void host_set_timer(int timer_id, SimTime delay) = 0;
  virtual SimTime host_now() const = 0;

  /// Signature simulation (see Notary). host_sign signs as `self()`.
  virtual std::uint64_t host_sign(std::uint64_t statement) const = 0;
  virtual bool host_verify(ProcessId signer, std::uint64_t statement,
                           std::uint64_t token) const = 0;

  /// Reports protocol work into the simulation's SimMetrics (see
  /// sim/counters.hpp). Default no-op so host fakes and shims that do not
  /// track metrics need no changes.
  virtual void host_counter_add(ProtoCounter counter, std::uint64_t delta) {
    (void)counter;
    (void)delta;
  }
};

}  // namespace scup::sim
