#include "fbqs/quorum.hpp"

#include <gtest/gtest.h>

#include "fbqs/fig_examples.hpp"
#include "graph/generators.hpp"

namespace scup::fbqs {
namespace {

/// Builds a NodeSet from paper (1-based) ids.
NodeSet paper_set(std::size_t universe, std::initializer_list<ProcessId> ids) {
  NodeSet s(universe);
  for (ProcessId id : ids) s.add(id - 1);
  return s;
}

TEST(FbqsSystemTest, IsQuorumAlgorithm1) {
  FbqsSystem sys(4);
  sys.set_slices(0, SliceSet::explicit_slices({NodeSet(4, {1})}));
  sys.set_slices(1, SliceSet::explicit_slices({NodeSet(4, {0})}));
  sys.set_slices(2, SliceSet::explicit_slices({NodeSet(4, {3})}));
  sys.set_slices(3, SliceSet::explicit_slices({NodeSet(4, {0, 1})}));
  EXPECT_TRUE(sys.is_quorum(NodeSet(4, {0, 1})));
  EXPECT_FALSE(sys.is_quorum(NodeSet(4, {0})));       // 0 needs 1
  EXPECT_FALSE(sys.is_quorum(NodeSet(4, {2, 3})));    // 3 needs {0,1}
  EXPECT_TRUE(sys.is_quorum(NodeSet(4, {0, 1, 3})));
  EXPECT_TRUE(sys.is_quorum(NodeSet(4, {0, 1, 2, 3})));
  // Empty set is vacuously a quorum.
  EXPECT_TRUE(sys.is_quorum(NodeSet(4)));
}

TEST(FbqsSystemTest, MissingSlicesMeansNotAQuorumMember) {
  FbqsSystem sys(3);
  sys.set_slices(0, SliceSet::explicit_slices({NodeSet(3, {1})}));
  sys.set_slices(1, SliceSet::explicit_slices({NodeSet(3, {0})}));
  // Process 2 has no slices: any set containing it fails Algorithm 1.
  EXPECT_TRUE(sys.is_quorum(NodeSet(3, {0, 1})));
  EXPECT_FALSE(sys.is_quorum(NodeSet(3, {0, 1, 2})));
  EXPECT_FALSE(sys.has_slices(2));
  EXPECT_THROW((void)sys.slices_of(2), std::logic_error);
}

TEST(FbqsSystemTest, IsQuorumFor) {
  FbqsSystem sys(3);
  sys.set_slices(0, SliceSet::explicit_slices({NodeSet(3, {1})}));
  sys.set_slices(1, SliceSet::explicit_slices({NodeSet(3, {0})}));
  sys.set_slices(2, SliceSet::explicit_slices({NodeSet(3, {0, 1})}));
  EXPECT_TRUE(sys.is_quorum_for(0, NodeSet(3, {0, 1})));
  EXPECT_FALSE(sys.is_quorum_for(2, NodeSet(3, {0, 1})));  // 2 not inside
  EXPECT_TRUE(sys.is_quorum_for(2, NodeSet(3, {0, 1, 2})));
}

TEST(FbqsSystemTest, QuorumClosure) {
  FbqsSystem sys(4);
  sys.set_slices(0, SliceSet::explicit_slices({NodeSet(4, {1})}));
  sys.set_slices(1, SliceSet::explicit_slices({NodeSet(4, {0})}));
  sys.set_slices(2, SliceSet::explicit_slices({NodeSet(4, {3})}));
  sys.set_slices(3, SliceSet::explicit_slices({NodeSet(4, {2})}));
  // {0,1,2} -> 2 depends on 3 which is absent -> closure {0,1}.
  EXPECT_EQ(sys.quorum_closure(NodeSet(4, {0, 1, 2})), NodeSet(4, {0, 1}));
  EXPECT_EQ(sys.quorum_closure(NodeSet::full(4)), NodeSet::full(4));
  EXPECT_EQ(sys.quorum_closure(NodeSet(4, {2})), NodeSet(4));
}

TEST(FbqsSystemTest, FindQuorumFor) {
  FbqsSystem sys(4);
  sys.set_slices(0, SliceSet::explicit_slices({NodeSet(4, {1})}));
  sys.set_slices(1, SliceSet::explicit_slices({NodeSet(4, {0})}));
  sys.set_slices(2, SliceSet::explicit_slices({NodeSet(4, {3})}));
  sys.set_slices(3, SliceSet::explicit_slices({NodeSet(4, {2})}));
  auto q0 = sys.find_quorum_for(0, NodeSet::full(4));
  ASSERT_TRUE(q0.has_value());
  EXPECT_TRUE(sys.is_quorum_for(0, *q0));
  // Within {0, 2, 3}: 0's slice {1} unavailable -> no quorum for 0.
  EXPECT_FALSE(sys.find_quorum_for(0, NodeSet(4, {0, 2, 3})).has_value());
}

TEST(FbqsSystemTest, AllQuorumsGuard) {
  FbqsSystem sys(21);
  EXPECT_THROW((void)sys.all_quorums(20), std::invalid_argument);
}

TEST(Fig1ExampleTest, PaperQuorums) {
  const FbqsSystem sys = fig1_system();
  constexpr std::size_t n = 8;
  // The paper: Q5 = Q6 = Q7 = {5,6,7} is a quorum (our {4,5,6}).
  const NodeSet q567 = paper_set(n, {5, 6, 7});
  EXPECT_TRUE(sys.is_quorum(q567));
  for (ProcessId member : q567) {
    EXPECT_TRUE(sys.is_quorum_for(member, q567));
  }
  // 1's quorum includes its slice {2,5} and closure: {1,2,4,5,6,7} paper =
  // {0,1,3,4,5,6} ours.
  auto q1 = sys.find_quorum_for(0, NodeSet::full(n));
  ASSERT_TRUE(q1.has_value());
  // A quorum of process 3 (paper) exists containing {3,5,6,7}.
  auto q3 = sys.find_quorum_for(2, NodeSet::full(n));
  ASSERT_TRUE(q3.has_value());
  EXPECT_TRUE(q3->superset_of(paper_set(n, {5, 6, 7})));
}

TEST(Fig1ExampleTest, MinimalQuorumsOfSinkTrio) {
  const FbqsSystem sys = fig1_system();
  // {5,6,7} (paper) is a minimal quorum for 5, 6 and 7. For 6 and 7 the
  // faulty process 8's (arbitrarily chosen) slices make {6,7,8} a second
  // minimal quorum; for 5 the quorum is unique.
  const NodeSet q567 = paper_set(8, {5, 6, 7});
  for (ProcessId paper_id : {5u, 6u, 7u}) {
    const auto minimal = sys.minimal_quorums_for(paper_id - 1);
    bool found = false;
    for (const NodeSet& q : minimal) found = found || q == q567;
    EXPECT_TRUE(found) << "paper process " << paper_id;
  }
  const auto minimal5 = sys.minimal_quorums_for(4);
  ASSERT_EQ(minimal5.size(), 1u);
  EXPECT_EQ(minimal5[0], q567);
}

TEST(Fig1ExampleTest, CorrectProcessesIntertwined) {
  const FbqsSystem sys = fig1_system();
  // W = {1..7} paper = {0..6}; f = 1... The paper uses the *correct
  // process* form of intertwined (intersection contains a correct process);
  // with the threshold form and f=1 the {5,6,7} quorums intersect in 3 > 1
  // members. Pairwise check over all correct processes:
  NodeSet w = paper_set(8, {1, 2, 3, 4, 5, 6, 7});
  const auto report = sys.check_intertwined(w, 1);
  EXPECT_TRUE(report.ok);
  EXPECT_GT(report.min_intersection, 1u);
}

TEST(Fig1ExampleTest, ConsensusClusters) {
  const FbqsSystem sys = fig1_system();
  const NodeSet w = paper_set(8, {1, 2, 3, 4, 5, 6, 7});
  // C1 = {5,6,7} paper is a consensus cluster.
  EXPECT_TRUE(sys.is_consensus_cluster(paper_set(8, {5, 6, 7}), w, 1));
  // C2 = {1,...,7} paper is the maximal consensus cluster.
  EXPECT_TRUE(sys.is_consensus_cluster(w, w, 1));
  const auto maximal = sys.maximal_consensus_cluster(w, 1);
  ASSERT_TRUE(maximal.has_value());
  EXPECT_EQ(*maximal, w);
  // Subsets that are not clusters: {1,2} paper has no quorum inside.
  EXPECT_FALSE(sys.is_consensus_cluster(paper_set(8, {1, 2}), w, 1));
  // Sets containing the faulty process are not clusters (I must be ⊆ W).
  EXPECT_FALSE(sys.is_consensus_cluster(paper_set(8, {5, 6, 7, 8}), w, 1));
}

TEST(Fig2CounterexampleTest, Theorem2ViolationReproduced) {
  // The heart of the paper's negative result: local slices on the Fig. 2
  // graph yield the disjoint quorums {5,6,7} and {1,2,3,4} (paper ids).
  const FbqsSystem sys = fig2_local_system();
  const NodeSet q1 = paper_set(7, {5, 6, 7});
  const NodeSet q2 = paper_set(7, {1, 2, 3, 4});
  EXPECT_TRUE(sys.is_quorum(q1));
  EXPECT_TRUE(sys.is_quorum(q2));
  EXPECT_EQ(q1.intersection_count(q2), 0u);
  // Hence quorum intersection (threshold form, f = 1) is violated for any
  // member pair across the two quorums.
  EXPECT_FALSE(sys.intertwined(4, 0, 1));  // paper processes 5 and 1
  // And no single maximal consensus cluster containing all correct
  // processes can exist even with zero failures placed: take W = all.
  const auto report = sys.check_intertwined(NodeSet::full(7), 1);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.min_intersection, 0u);
}

TEST(Fig2CounterexampleTest, LocalSlicesSatisfyLemmas1And2) {
  // The counterexample is constructed to satisfy the two necessary
  // conditions (slices within PD_i; a slice avoiding any f = 1 faults), so
  // the violation cannot be blamed on malformed slices.
  const FbqsSystem sys = fig2_local_system();
  const auto g = graph::fig2_graph();
  for (ProcessId i = 0; i < 7; ++i) {
    const SliceSet& s = sys.slices_of(i);
    EXPECT_TRUE(s.union_of_members(7).subset_of(g.pd_of(i)));  // Lemma 1
    for (ProcessId b = 0; b < 7; ++b) {
      EXPECT_TRUE(s.has_slice_avoiding(NodeSet(7, {b})))       // Lemma 2
          << "i=" << i << " b=" << b;
    }
  }
}

// ---- quorum_closure: removals while iterating (regression) ----

TEST(QuorumClosureTest, RemovalCascadeAcrossWordBoundary) {
  // A dependency chain crossing the 64-bit word boundary: node i's only
  // slice is {i+1}, so unsatisfiability cascades backward from the top,
  // with removals landing on both sides of bit 63/64 — the pattern that a
  // mutate-while-iterating closure walks while the set changes under it.
  // The surviving quorum is a 5-clique straddling the same boundary.
  const std::size_t n = 192;
  FbqsSystem sys(n);
  const NodeSet clique(n, {62, 63, 64, 65, 66});
  for (ProcessId i : clique) {
    sys.set_slices(i, SliceSet::threshold(3, clique));
  }
  for (ProcessId i = 100; i < 140; ++i) {
    sys.set_slices(
        i, SliceSet::explicit_slices({NodeSet(n, {static_cast<ProcessId>(
               i + 1)})}));
  }
  // 140's slice needs a process that is never in the candidate, so the
  // cascade starts there and crosses the 127/128 boundary on its way down.
  sys.set_slices(140, SliceSet::explicit_slices({NodeSet(n, {150})}));

  NodeSet candidate = clique;
  for (ProcessId i = 100; i <= 140; ++i) candidate.add(i);
  const NodeSet closure = sys.quorum_closure(candidate);
  EXPECT_EQ(closure, clique);
  EXPECT_TRUE(sys.is_quorum(closure));

  // Same-pass removals on both sides of the boundary (63 and 64 are both
  // unsatisfied at pass start; 65 only falls after they are gone).
  FbqsSystem boundary(n);
  boundary.set_slices(63, SliceSet::explicit_slices({NodeSet(n, {10})}));
  boundary.set_slices(64, SliceSet::explicit_slices({NodeSet(n, {11})}));
  boundary.set_slices(65, SliceSet::explicit_slices({NodeSet(n, {63})}));
  EXPECT_TRUE(
      boundary.quorum_closure(NodeSet(n, {63, 64, 65})).empty());
}

TEST(QuorumClosureTest, MismatchedUniverseThrows) {
  // The seed silently walked a candidate from a foreign universe —
  // members beyond n_ indexed has_slices_ out of bounds. Now it refuses.
  FbqsSystem sys(8);
  EXPECT_THROW((void)sys.quorum_closure(NodeSet(16)), std::invalid_argument);
  EXPECT_THROW((void)sys.quorum_closure(NodeSet(16, {9})),
               std::invalid_argument);
}

// ---- check_intertwined: degenerate groups get a well-defined report ----

TEST(CheckIntertwinedTest, EmptyGroupIsVacuouslyOkWithZeroIntersection) {
  FbqsSystem sys = [&] {
    FbqsSystem s(8);
    for (ProcessId i = 0; i < 8; ++i) {
      s.set_slices(i, SliceSet::threshold(1, NodeSet(8, {i})));
    }
    return s;
  }();
  const auto report = sys.check_intertwined(NodeSet(8), /*f=*/1);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.pairs_examined, 0u);
  // Never the old n+1 sentinel: min_intersection is 0 when nothing was
  // compared.
  EXPECT_EQ(report.min_intersection, 0u);
  EXPECT_EQ(report.worst_i, kInvalidProcess);
  EXPECT_EQ(report.worst_j, kInvalidProcess);
}

TEST(CheckIntertwinedTest, SingletonGroupExaminesItsSelfPairs) {
  FbqsSystem sys(4);
  // Process 0 has one quorum {0,1}: the self-pair intersects in 2 > f.
  sys.set_slices(0, SliceSet::explicit_slices({NodeSet(4, {0, 1})}));
  sys.set_slices(1, SliceSet::explicit_slices({NodeSet(4, {1})}));
  const auto report = sys.check_intertwined(NodeSet(4, {0}), /*f=*/1);
  EXPECT_TRUE(report.ok);
  EXPECT_GE(report.pairs_examined, 1u);
  EXPECT_LE(report.min_intersection, sys.size());
  EXPECT_EQ(report.worst_i, 0u);
  EXPECT_EQ(report.worst_j, 0u);
}

TEST(CheckIntertwinedTest, MemberWithoutQuorumReportsItself) {
  FbqsSystem sys(4);
  // Process 2's slice can never be satisfied together with 3 missing
  // slices: it has no quorum at all.
  sys.set_slices(2, SliceSet::explicit_slices({NodeSet(4, {3})}));
  const auto report = sys.check_intertwined(NodeSet(4, {2}), /*f=*/0);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.min_intersection, 0u);
  EXPECT_EQ(report.worst_i, 2u);
  EXPECT_EQ(report.worst_j, 2u);
}

}  // namespace
}  // namespace scup::fbqs
