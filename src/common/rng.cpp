#include "common/rng.hpp"

#include <bit>
#include <stdexcept>

namespace scup {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_range: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t StreamRng::next_u64() {
  ++position_;
  return splitmix64(state_);
}

void StreamRng::discard(std::uint64_t k) {
  // splitmix64 advances its state by a fixed odd increment per draw; k
  // draws therefore advance it by k increments, one multiply-add.
  state_ += 0x9E3779B97F4A7C15ULL * k;
  position_ += k;
}

std::uint64_t StreamRng::uniform(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("StreamRng::uniform: bound must be > 0");
  }
  return next_u64() % bound;
}

std::int64_t StreamRng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("StreamRng::uniform_range: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 encodes the full 2^64 range.
  const std::uint64_t r = next_u64();
  return lo + static_cast<std::int64_t>(span == 0 ? r : r % span);
}

double StreamRng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool StreamRng::chance(double p) {
  // The draw happens unconditionally — see the header contract.
  const double u = uniform_double();
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return u < p;
}

std::vector<ProcessId> Rng::sample_ids(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_ids: k > n");
  std::vector<ProcessId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<ProcessId>(i);
  shuffle(all);
  all.resize(k);
  return all;
}

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t state = a * 0x9E3779B97F4A7C15ULL + b;
  std::uint64_t h = splitmix64(state);
  state = h + c;
  return splitmix64(state);
}

}  // namespace scup
