// E1 — Fig. 1 of the paper: the worked quorum example.
//
// Regenerates the facts the figure walks through: Q5=Q6=Q7={5,6,7} (paper
// ids) is the minimal sink quorum, every correct pair is intertwined, and
// C2={1..7} is the unique maximal consensus cluster (C1={5,6,7} being a
// smaller one). Counters report the structural numbers; timed sections
// benchmark the analysis code paths on the example.
#include "bench_common.hpp"

#include "fbqs/fig_examples.hpp"

namespace scup {
namespace {

void BM_Fig1_IsQuorum(benchmark::State& state) {
  const fbqs::FbqsSystem sys = fbqs::fig1_system();
  const NodeSet q567(8, {4, 5, 6});  // paper {5,6,7}
  bool result = false;
  for (auto _ : state) {
    result = sys.is_quorum(q567);
    benchmark::DoNotOptimize(result);
  }
  state.counters["is_quorum"] = result ? 1 : 0;
}
BENCHMARK(BM_Fig1_IsQuorum);

void BM_Fig1_AllQuorums(benchmark::State& state) {
  const fbqs::FbqsSystem sys = fbqs::fig1_system();
  std::size_t count = 0;
  for (auto _ : state) {
    count = sys.all_quorums().size();
    benchmark::DoNotOptimize(count);
  }
  state.counters["quorum_count"] = static_cast<double>(count);
}
BENCHMARK(BM_Fig1_AllQuorums);

void BM_Fig1_Intertwined(benchmark::State& state) {
  const fbqs::FbqsSystem sys = fbqs::fig1_system();
  const NodeSet w = graph::fig1_faulty().complement();
  fbqs::FbqsSystem::IntertwinedReport report;
  for (auto _ : state) {
    report = sys.check_intertwined(w, 1);
    benchmark::DoNotOptimize(report);
  }
  state.counters["intertwined"] = report.ok ? 1 : 0;
  state.counters["min_intersection"] =
      static_cast<double>(report.min_intersection);
}
BENCHMARK(BM_Fig1_Intertwined);

void BM_Fig1_MaximalCluster(benchmark::State& state) {
  const fbqs::FbqsSystem sys = fbqs::fig1_system();
  const NodeSet w = graph::fig1_faulty().complement();
  std::size_t cluster_size = 0;
  bool c1_is_cluster = false;
  for (auto _ : state) {
    const auto maximal = sys.maximal_consensus_cluster(w, 1);
    cluster_size = maximal ? maximal->count() : 0;
    c1_is_cluster = sys.is_consensus_cluster(NodeSet(8, {4, 5, 6}), w, 1);
    benchmark::DoNotOptimize(cluster_size);
  }
  state.counters["maximal_cluster_size"] = static_cast<double>(cluster_size);
  state.counters["c1_567_is_cluster"] = c1_is_cluster ? 1 : 0;
}
BENCHMARK(BM_Fig1_MaximalCluster);

void BM_Fig1_SinkComputation(benchmark::State& state) {
  const auto g = graph::fig1_graph();
  NodeSet sink;
  for (auto _ : state) {
    sink = graph::unique_sink_component(g);
    benchmark::DoNotOptimize(sink);
  }
  state.counters["sink_size"] = static_cast<double>(sink.count());
  state.counters["sink_matches_paper"] = sink == graph::fig1_sink() ? 1 : 0;
}
BENCHMARK(BM_Fig1_SinkComputation);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E1");
