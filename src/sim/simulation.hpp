// Discrete-event simulation of a partially synchronous message-passing
// system (Dwork-Lynch-Stockmeyer style, Section III-A of the paper):
// messages sent before GST suffer arbitrary (bounded only by the
// configuration) delays; messages sent after GST are delivered within
// [min_delay, max_delay]. Channels are reliable and authenticated;
// processing is instantaneous (computation bounds are absorbed into message
// delays, which is standard for protocol simulation).
//
// The link layer is pluggable (sim::NetworkModel): per-link overrides,
// partition schedules and pre-GST loss/duplication live there. The runtime
// adds staged participation — activate(id, t) defers a process's start()
// to simulated time t, with earlier deliveries buffered in its mailbox —
// and a crash(id) fault primitive that silences a process in both
// directions (no sends, no deliveries, no timer fires after the crash).
//
// Execution comes in two flavours. The default is the legacy serial loop:
// one global calendar queue drained one event at a time. set_shards(S)
// switches a simulation (before start) to the windowed ShardEngine
// (sim/sharded_engine.hpp): processes are partitioned across S shards that
// drain conservative time windows in parallel, with results bit-identical
// across every shard count — shards == 1 is the windowed determinism
// baseline, run on the calling thread with no pool threads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/counters.hpp"
#include "sim/event_queue.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/network_model.hpp"
#include "sim/notary.hpp"
#include "sim/process.hpp"
#include "sim/sharded_engine.hpp"

namespace scup::sim {

class Simulation {
 public:
  /// Runs the default UniformModel over `config` (including its override /
  /// partition / loss feature set).
  Simulation(std::size_t n, NetworkConfig config);
  /// Runs a custom link-layer model. `config` still provides the seed for
  /// the network RNG stream and the notary.
  Simulation(std::size_t n, NetworkConfig config,
             std::unique_ptr<NetworkModel> model);
  ~Simulation();

  std::size_t size() const { return n_; }

  /// Installs the process implementation for slot `id`. Must be called for
  /// every id before start(). Returns a reference for configuration.
  template <typename T, typename... Args>
  T& emplace_process(ProcessId id, Args&&... args) {
    auto proc = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *proc;
    install(id, std::move(proc));
    return ref;
  }
  void install(ProcessId id, std::unique_ptr<Process> process);

  Process& process(ProcessId id);
  const Process& process(ProcessId id) const;

  /// Defers process `id`'s start() to simulated time `t` (staged
  /// participant arrival). Deliveries before the activation wait in the
  /// process's mailbox and are handed over, in arrival order, right after
  /// its deferred start() runs. Must be called before start(); t = 0 means
  /// the process starts with everyone else.
  void activate(ProcessId id, SimTime t);
  bool active(ProcessId id) const { return active_[id] != 0; }

  /// Switches this simulation to the windowed sharded engine with `shards`
  /// shards (0 = legacy serial loop, the default). Must be called before
  /// start(). Requires every *cross-shard* pair under the p % shards
  /// partition to promise a latency floor of at least one tick
  /// (NetworkModel::min_latency(from, to)) — those floors are the
  /// conservative lookahead; intra-shard links may be arbitrarily fast,
  /// and shards == 1 (no cross-shard pairs) accepts any model. Throws
  /// std::invalid_argument naming the offending link otherwise. Results
  /// are bit-identical (Notary log, metrics, protocol state) for every
  /// shards >= 1 value.
  void set_shards(std::size_t shards);
  /// The shard count this simulation runs with (0 = legacy serial loop).
  std::size_t shards() const {
    return engine_ ? engine_->shards() : shards_requested_;
  }
  /// Sharded-engine instrumentation (zeroed in legacy mode). Kept out of
  /// SimMetrics so the metrics identity across shard counts stays exact.
  ShardStats shard_stats() const {
    return engine_ ? engine_->stats() : ShardStats{};
  }

  /// Message-pool instrumentation (all-zero when the pool is disabled via
  /// NetworkConfig::message_pool). Like ShardStats, kept out of SimMetrics:
  /// allocation strategy is invisible to the identity contract.
  MessagePool::Stats pool_stats() const {
    return pool_ ? pool_->stats() : MessagePool::Stats{};
  }

  /// Calls start() on every process not scheduled by activate() (in id
  /// order). Must be called once.
  void start();

  /// Current simulated time. Inside a sharded window this is the timestamp
  /// of the event the calling shard is dispatching; between runs (and in
  /// the legacy loop) it is the time of the last processed event.
  // scup-analyze: owner-ok(in-window callers take the ShardContext branch; now_ is read only on the serial path)
  SimTime now() const {
    if (engine_ != nullptr) {
      if (const ShardContext* ctx = ShardEngine::current()) return ctx->now;
    }
    return now_;
  }

  /// Processes events until `predicate` holds, the event queue empties, or
  /// simulated time would exceed `deadline`. Returns true iff the predicate
  /// held. The predicate is checked after every `stride`-th event (default:
  /// every event); a larger stride trades up to stride-1 extra processed
  /// events for not paying an expensive predicate per event. Sharded runs
  /// check the predicate on a fixed checkpoint grid instead: windows are
  /// clamped to multiples of the lookahead quantum
  /// (NetworkConfig::lookahead_quantum) and the predicate runs at grid
  /// points, where every shard count has processed the identical event
  /// set — so the stop point, and with it the final metrics, is identical
  /// for every shards >= 1 count, though not necessarily to the legacy
  /// loop's per-event stop point.
  template <typename Pred>
  bool run_until(Pred&& predicate, SimTime deadline, std::size_t stride = 1) {
    if (!started_) throw std::logic_error("run_until before start");
    // Bind this simulation's message pool for upcalls running on the
    // calling thread (legacy loop, and the shards==1 in-thread window
    // path); shard threads bind it themselves in ShardEngine::drain.
    const MessagePool::Scope pool_scope(pool_.get());
    if (predicate()) return true;
    if (engine_) {
      deadline = std::min(deadline, kTimeInfinity - 1);
      const SimTime q = engine_->quantum();
      for (;;) {
        const SimTime t = engine_->next_event_time();
        if (t > deadline) return predicate();
        // The next grid point strictly past t; events inside [t, check)
        // run before the predicate does. Grid advancement depends only on
        // the global event horizon, never on the shard partition.
        const SimTime check = (t / q + 1) * q;
        const SimTime cap = std::min(check, deadline + 1);
        while (engine_->run_window(deadline, cap)) {
        }
        if (predicate()) return true;
      }
    }
    if (stride == 0) stride = 1;
    std::size_t since_check = 0;
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      step();
      if (++since_check >= stride) {
        since_check = 0;
        if (predicate()) return true;
      }
    }
    return predicate();
  }

  /// Processes all events with time <= deadline (or until the queue runs
  /// dry). Returns the number of events processed. Drains the same event
  /// set in every execution mode, so legacy and sharded runs agree here.
  std::size_t run_for(SimTime deadline);

  const SimMetrics& metrics() const { return metrics_; }

  // scup-analyze: owner-ok(const view for verification; in-window signing goes through sign_as, which stages the log append)
  const Notary& notary() const { return notary_; }

  /// Cuts all future message deliveries *to* `id` (a partition-style fault:
  /// the process keeps running and sending). Messages already in flight are
  /// still counted but dropped at delivery. See crash() for a full stop.
  void isolate(ProcessId id);

  /// Seed of process `sender`'s private network-RNG substream under run
  /// seed `seed`. Exposed so the draw-plan differential test can replay a
  /// sender's verdict stream from scratch with StreamRng::discard.
  static std::uint64_t net_stream_seed(std::uint64_t seed, ProcessId sender) {
    return hash_mix(seed, 0x6e657473ULL /* "nets" */, sender);
  }

  /// Crash-stops `id` now: no sends, no deliveries, no timer fires from
  /// this point on. Crashed processes count against the fault threshold
  /// like any other failure.
  void crash(ProcessId id);
  /// Schedules crash(id) at simulated time `t` (>= now). Usable before or
  /// after start().
  void crash_at(ProcessId id, SimTime t);
  bool crashed(ProcessId id) const { return crashed_[id] != 0; }

 private:
  friend class Process;
  friend class ShardEngine;

  void enqueue_send(ProcessId from, ProcessId to, MessagePtr msg);
  /// Routes one delivery copy whose verdict is already drawn: serial mode
  /// pushes to the global queue; in-window it becomes a provisional
  /// intra-shard event (deliver inside the window) or a staged op.
  void route_delivery(ShardContext* ctx, ProcessId from, ProcessId to,
                      SimTime at, MessagePtr msg);
  void enqueue_timer(ProcessId target, int timer_id, SimTime delay);
  void cancel_timer(ProcessId target, int timer_id);
  std::uint64_t& timer_generation(ProcessId target, int timer_id);
  const std::uint64_t* find_timer_generation(ProcessId target,
                                             int timer_id) const;
  /// Signs as `signer`: direct Notary sign outside a window; inside a
  /// window the token is computed immediately and the log append is staged
  /// on the caller's shard for the barrier replay.
  Notary::Token sign_as(ProcessId signer, std::uint64_t statement);
  /// Shard-mode pedigree hook behind Process::begin_delivery.
  void note_delivery(const Delivery& d);
  void counter_add(ProtoCounter counter, std::uint64_t delta);
  bool deliverable(ProcessId id) const {
    return active_[id] != 0 && isolated_[id] == 0 && crashed_[id] == 0;
  }
  /// Dispatches one event, attributing metrics to `metrics` (the global
  /// struct in the legacy loop, a shard's window delta under the engine).
  void dispatch(Event& event, SimMetrics& metrics);
  /// Adds `delta` into metrics_ field-by-field, then zeroes `delta` in
  /// place (keeping its vector capacity). Barrier-side shard merge.
  void absorb_metrics(SimMetrics& delta);
  bool step();  // legacy loop: processes one event; false if queue empty

  std::size_t n_;
  NetworkConfig config_;
  std::unique_ptr<NetworkModel> model_;
  // scup-owner: engine
  SimTime now_ = 0;
  // scup-owner: engine
  std::uint64_t next_seq_ = 0;
  // drawplan begin(owner declaration: one private StreamRng substream per
  // sender, seeded from net_stream_seed; all draws go through the audited
  // verdict site in enqueue_send)
  // scup-owner: shard
  std::vector<StreamRng> net_streams_;
  // drawplan end
  // scup-owner: engine
  Notary notary_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> process_rngs_;
  // Byte-sized flags, not std::vector<bool>: shards read neighbouring
  // entries concurrently, and vector<bool>'s bit packing would make those
  // reads race on shared words.
  std::vector<std::uint8_t> isolated_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint8_t> active_;
  std::vector<SimTime> activation_time_;  // 0 = start with everyone else
  std::vector<std::pair<ProcessId, SimTime>> pending_crashes_;
  /// Pre-activation deliveries, in arrival order.
  std::vector<std::vector<std::pair<ProcessId, MessagePtr>>> mailboxes_;
  /// Generation counters for timer cancellation/re-arming. A process uses
  /// a handful of distinct timer ids, so a flat (id, generation) vector
  /// with linear scan beats the old per-process std::map.
  std::vector<std::vector<std::pair<int, std::uint64_t>>> timer_generations_;
  // scup-owner: engine
  CalendarQueue queue_;
  // scup-owner: engine
  SimMetrics metrics_;
  std::size_t shards_requested_ = 0;
  std::unique_ptr<ShardEngine> engine_;
  /// Slab arena behind make_message (null when disabled). Declared after
  /// the queues/processes it outlives within this object is irrelevant:
  /// blocks survive the pool handle via the allocator's State keep-alive,
  /// so member destruction order cannot dangle.
  std::unique_ptr<MessagePool> pool_;
  bool started_ = false;
};

}  // namespace scup::sim
