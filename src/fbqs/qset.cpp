#include "fbqs/qset.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace scup::fbqs {

QSet QSet::threshold_of(std::size_t threshold,
                        std::vector<ProcessId> validators) {
  return QSet(threshold, std::move(validators), {});
}

QSet QSet::threshold_of(std::size_t threshold, const NodeSet& validators) {
  return QSet(threshold, validators.to_vector(), {});
}

QSet::QSet(std::size_t threshold, std::vector<ProcessId> validators,
           std::vector<QSet> inner)
    : threshold_(threshold),
      validators_(std::move(validators)),
      inner_(std::move(inner)) {
  if (threshold_ > validators_.size() + inner_.size()) {
    throw std::invalid_argument(
        "QSet: threshold exceeds number of elements (" +
        std::to_string(threshold_) + " > " +
        std::to_string(validators_.size() + inner_.size()) + ")");
  }
}

bool QSet::satisfied_by(const NodeSet& nodes) const {
  if (threshold_ == 0) return true;
  std::size_t satisfied = 0;
  for (ProcessId v : validators_) {
    if (nodes.contains(v) && ++satisfied >= threshold_) return true;
  }
  for (const QSet& q : inner_) {
    if (q.satisfied_by(nodes) && ++satisfied >= threshold_) return true;
  }
  return false;
}

bool QSet::blocked_by(const NodeSet& nodes) const {
  if (threshold_ == 0) return false;  // empty qset cannot be blocked
  // Count elements that could still appear in a slice avoiding `nodes`.
  std::size_t alive = 0;
  for (ProcessId v : validators_) {
    if (!nodes.contains(v)) ++alive;
  }
  for (const QSet& q : inner_) {
    if (!q.blocked_by(nodes)) ++alive;
  }
  return alive < threshold_;
}

NodeSet QSet::all_members(std::size_t universe) const {
  NodeSet s(universe);
  for (ProcessId v : validators_) s.add(v);
  for (const QSet& q : inner_) s |= q.all_members(universe);
  return s;
}

bool QSet::operator==(const QSet& other) const {
  return threshold_ == other.threshold_ && validators_ == other.validators_ &&
         inner_ == other.inner_;
}

std::string QSet::to_string() const {
  std::ostringstream os;
  os << threshold_ << "-of-[";
  bool first = true;
  for (ProcessId v : validators_) {
    if (!first) os << ", ";
    first = false;
    os << v;
  }
  for (const QSet& q : inner_) {
    if (!first) os << ", ";
    first = false;
    os << q.to_string();
  }
  os << ']';
  return os.str();
}

}  // namespace scup::fbqs
