#include "core/stellar_cup_node.hpp"

#include "sinkdetector/slice_builder.hpp"

namespace scup::core {

StellarCupNode::StellarCupNode(NodeSet pd, std::size_t f, Value value,
                               StellarCupConfig config)
    : ComposedNode(f),
      pd_(std::move(pd)),
      value_(value),
      detector_(*this, pd_, config.discovery),
      scp_(*this, pd_.universe_size(), fbqs::QSet(), value, config.scp) {
  detector_.on_result = [this](const sinkdetector::GetSinkResult& r) {
    on_sink(r);
  };
}

void StellarCupNode::start() {
  for (ProcessId p : pd_) learn_peer(p);
  detector_.start();
}

void StellarCupNode::on_sink(const sinkdetector::GetSinkResult& result) {
  sd_time_ = now();
  // Algorithm 2: slices from ⟨flag, V⟩ and f, represented as a threshold
  // QSet for SCP's quorum logic.
  const fbqs::SliceSet slices =
      sinkdetector::build_slices(result, fault_threshold());
  scp_.set_qset(slices.to_qset());
  for (ProcessId p : result.sink) learn_peer(p);
  scp_.start();
  if (scp_.decided()) note_decided();  // buffered envelopes sufficed
  scp_.on_decide = [this](Value) { note_decided(); };
}

void StellarCupNode::note_decided() {
  if (decision_time_ == kTimeInfinity) decision_time_ = now();
  detector_.stop_requery();
}

void StellarCupNode::learn_peer(ProcessId p) {
  if (p == id()) return;
  scp_.add_peer(p);
}

void StellarCupNode::on_message(ProcessId from, const sim::MessagePtr& msg) {
  // "Upon receipt of a message, j may add i to Π_j": any sender becomes a
  // peer for SCP broadcasts. This is how sink members learn about non-sink
  // members that need their envelopes.
  learn_peer(from);
  if (const auto* get_sink = dynamic_cast<const cup::GetSinkMsg*>(msg.get())) {
    // The flood origin also becomes a peer (we may never hear from it
    // directly, but it needs our SCP envelopes if it is a non-sink member).
    if (get_sink->origin < universe()) learn_peer(get_sink->origin);
  }
  if (detector_.handle(from, *msg)) return;
  if (scp_.handle(from, *msg)) {
    if (scp_.decided()) note_decided();
    return;
  }
}

void StellarCupNode::on_timer(int timer_id) {
  if (detector_.on_timer(timer_id)) return;
  if (timer_id == scp::kScpBallotTimerId) {
    scp_.on_ballot_timer();
    if (scp_.decided()) note_decided();
  }
}

}  // namespace scup::core
