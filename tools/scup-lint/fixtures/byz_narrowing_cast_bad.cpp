// Fixture: byz-narrowing-cast must fire on a narrowing cast of an id-like
// value (the ledger_timer_id overflow class).
#include <cstdint>

int timer_id_for(std::uint64_t slot) {
  return 10000 + static_cast<int>(slot);
}

int compact(std::uint64_t view, std::uint64_t node_id) {
  return static_cast<int>(view) ^ static_cast<int>(node_id);
}

unsigned safe_count(std::uint64_t total) {
  return static_cast<unsigned>(total);  // not id-like: no finding
}
