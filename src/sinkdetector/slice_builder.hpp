// Slice construction.
//
//  - build_slices: Algorithm 2 of the paper — slices from the sink
//    detector's output. Sink members take all ⌈(|V|+f+1)/2⌉-subsets of V;
//    non-sink members take all (f+1)-subsets of V. Theorems 3-5 prove these
//    make all correct processes one maximal consensus cluster.
//  - local_slices: the Theorem 2 construction — slices defined locally from
//    PD_i and f alone (all (|PD_i|-f)-subsets of PD_i), satisfying Lemmas 1
//    and 2 but admitting disjoint quorums (the paper's negative result).
#pragma once

#include <cstddef>

#include "common/node_set.hpp"
#include "fbqs/slices.hpp"
#include "sinkdetector/sink_detector.hpp"

namespace scup::sinkdetector {

/// Algorithm 2: build slices from a get_sink result ⟨flag, V⟩.
/// Requires |V| >= f+1 (non-sink) / |V| >= ⌈(|V|+f+1)/2⌉ feasible (sink),
/// which holds whenever the Theorem 1 preconditions do.
fbqs::SliceSet build_slices(const GetSinkResult& sink_result, std::size_t f);

/// Sink-member quorum slice size ⌈(|V|+f+1)/2⌉ (used by analyses/tests).
std::size_t sink_slice_size(std::size_t sink_size, std::size_t f);

/// Theorem 2's local construction from PD_i and f alone. Requires
/// |PD_i| > f (otherwise Lemma 2 cannot be satisfied and the function
/// throws — such a process provably cannot define usable slices).
fbqs::SliceSet local_slices(const NodeSet& pd, std::size_t f);

}  // namespace scup::sinkdetector
