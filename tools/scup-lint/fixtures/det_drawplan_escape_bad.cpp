// Fixture: det-drawplan-escape must fire on any touch of the per-sender
// network verdict streams in src/sim/ outside a drawplan region — a stray
// draw desyncs the sender's stream position from its draw-plan prefix sum.

void escape_draw(Sim& sim_) {
  sim_.net_streams_[0].next_u64();
  auto& streams = sim_.net_streams_;
  streams[1].discard(2);
}
