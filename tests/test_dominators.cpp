// graph/dominators: immediate dominators and their Menger reading (for a
// non-adjacent target j, idom(j) == root ⟺ two internally-vertex-disjoint
// root→j paths), cross-checked against the max-flow oracle.
#include "graph/dominators.hpp"

#include <gtest/gtest.h>

#include "graph/disjoint_paths.hpp"
#include "graph/generators.hpp"

namespace scup::graph {
namespace {

TEST(DominatorsTest, DiamondAndChain) {
  //     0 -> 1 -> 3 -> 4
  //     0 -> 2 -> 3
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto idom = immediate_dominators(g, 0, NodeSet::full(5));
  EXPECT_EQ(idom[0], 0u);
  EXPECT_EQ(idom[1], 0u);
  EXPECT_EQ(idom[2], 0u);
  EXPECT_EQ(idom[3], 0u);  // two disjoint paths join here
  EXPECT_EQ(idom[4], 3u);  // everything to 4 goes through 3
}

TEST(DominatorsTest, UnreachableAndInactiveNodesHaveNoDominator) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto idom = immediate_dominators(g, 0, NodeSet(4, {0, 1, 2}));
  EXPECT_EQ(idom[1], 0u);
  EXPECT_EQ(idom[2], kInvalidProcess);  // reachable? no — 2 has no in-path
  EXPECT_EQ(idom[3], kInvalidProcess);  // inactive
}

TEST(DominatorsTest, DominatedBySubtrees) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const auto idom = immediate_dominators(g, 0, NodeSet::full(6));
  // 1 dominates everything below it.
  EXPECT_EQ(dominated_by(idom, 0, 1, 6), NodeSet(6, {1, 2, 3, 4, 5}));
  // 4 dominates only itself and 5.
  EXPECT_EQ(dominated_by(idom, 0, 4, 6), NodeSet(6, {4, 5}));
  EXPECT_EQ(dominated_by(idom, 0, 0, 6), NodeSet(6, {0, 1, 2, 3, 4, 5}));
}

TEST(DominatorsTest, MengerAgreementOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto g = random_digraph(14, 0.18, seed);
    const NodeSet active = NodeSet::full(14);
    const ProcessId root = 0;
    const auto idom = immediate_dominators(g, root, active);
    const NodeSet reachable = g.reachable_from(root, active);
    for (ProcessId j = 1; j < 14; ++j) {
      if (!reachable.contains(j) || g.has_edge(root, j)) continue;
      const bool two_paths =
          has_k_vertex_disjoint_paths(g, root, j, 2, active);
      EXPECT_EQ(idom[j] == root, two_paths)
          << "seed=" << seed << " j=" << j << " idom=" << idom[j];
    }
  }
}

TEST(DominatorsTest, AgreementRestrictedToActiveSubset) {
  for (std::uint64_t seed = 40; seed <= 50; ++seed) {
    const auto g = random_digraph(12, 0.25, seed);
    NodeSet active = NodeSet::full(12);
    active.remove(static_cast<ProcessId>(seed % 11 + 1));  // drop one node
    const ProcessId root = 0;
    const auto idom = immediate_dominators(g, root, active);
    const NodeSet reachable = g.reachable_from(root, active);
    for (ProcessId j = 1; j < 12; ++j) {
      if (!reachable.contains(j) || g.has_edge(root, j)) continue;
      EXPECT_EQ(idom[j] == root,
                has_k_vertex_disjoint_paths(g, root, j, 2, active))
          << "seed=" << seed << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace scup::graph
