#include "fbqs/quorum.hpp"

#include <algorithm>
#include <stdexcept>

namespace scup::fbqs {

FbqsSystem::FbqsSystem(std::size_t n)
    : n_(n), slices_(n), has_slices_(n, false) {}

void FbqsSystem::set_slices(ProcessId i, SliceSet slices) {
  if (i >= n_) throw std::out_of_range("FbqsSystem::set_slices: bad id");
  slices_[i] = std::move(slices);
  has_slices_[i] = true;
}

const SliceSet& FbqsSystem::slices_of(ProcessId i) const {
  if (i >= n_) throw std::out_of_range("FbqsSystem::slices_of: bad id");
  if (!has_slices_[i]) {
    throw std::logic_error("FbqsSystem::slices_of: no slices for process " +
                           std::to_string(i));
  }
  return slices_[i];
}

bool FbqsSystem::has_slices(ProcessId i) const {
  return i < n_ && has_slices_[i];
}

bool FbqsSystem::is_quorum(const NodeSet& q) const {
  for (ProcessId i : q) {
    if (!has_slices_[i] || !slices_[i].satisfied_within(q)) return false;
  }
  return true;
}

bool FbqsSystem::is_quorum_for(ProcessId i, const NodeSet& q) const {
  return q.contains(i) && is_quorum(q);
}

NodeSet FbqsSystem::quorum_closure(NodeSet candidate) const {
  if (candidate.universe_size() != n_) {
    throw std::invalid_argument(
        "FbqsSystem::quorum_closure: candidate universe " +
        std::to_string(candidate.universe_size()) + " does not match n=" +
        std::to_string(n_));
  }
  // Collect a pass's removals first, then apply them: every member is
  // judged against the same start-of-pass set, and the iteration never
  // walks a set that is mutating under it.
  bool changed = true;
  while (changed) {
    changed = false;
    NodeSet removals(n_);
    for (ProcessId i : candidate) {
      if (!has_slices_[i] || !slices_[i].satisfied_within(candidate)) {
        removals.add(i);
      }
    }
    if (!removals.empty()) {
      candidate -= removals;
      changed = true;
    }
  }
  return candidate;
}

std::optional<NodeSet> FbqsSystem::find_quorum_for(
    ProcessId i, const NodeSet& within) const {
  const NodeSet closure = quorum_closure(within);
  if (closure.contains(i)) return closure;
  return std::nullopt;
}

std::vector<NodeSet> FbqsSystem::all_quorums(std::size_t max_universe) const {
  if (n_ > max_universe) {
    throw std::invalid_argument(
        "FbqsSystem::all_quorums: universe too large for exhaustive "
        "enumeration (n=" +
        std::to_string(n_) + ")");
  }
  std::vector<NodeSet> quorums;
  const std::uint64_t limit = 1ULL << n_;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    NodeSet q(n_);
    for (std::size_t b = 0; b < n_; ++b) {
      if ((mask >> b) & 1ULL) q.add(static_cast<ProcessId>(b));
    }
    if (is_quorum(q)) quorums.push_back(std::move(q));
  }
  return quorums;
}

std::vector<NodeSet> FbqsSystem::minimal_quorums_for(
    ProcessId i, std::size_t max_universe) const {
  std::vector<NodeSet> with_i;
  for (NodeSet& q : all_quorums(max_universe)) {
    if (q.contains(i)) with_i.push_back(std::move(q));
  }
  // Keep inclusion-minimal elements.
  std::vector<NodeSet> minimal;
  for (const NodeSet& q : with_i) {
    bool is_minimal = true;
    for (const NodeSet& other : with_i) {
      if (&other != &q && other.subset_of(q) && !(other == q)) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(q);
  }
  return minimal;
}

bool FbqsSystem::intertwined(ProcessId i, ProcessId j, std::size_t f,
                             std::size_t max_universe) const {
  const auto qi = minimal_quorums_for(i, max_universe);
  const auto qj = minimal_quorums_for(j, max_universe);
  if (qi.empty() || qj.empty()) return false;  // no quorum at all
  for (const NodeSet& a : qi) {
    for (const NodeSet& b : qj) {
      if (a.intersection_count(b) <= f) return false;
    }
  }
  return true;
}

FbqsSystem::IntertwinedReport FbqsSystem::check_intertwined(
    const NodeSet& group, std::size_t f, std::size_t max_universe) const {
  IntertwinedReport report;
  report.ok = true;

  // Precompute minimal quorums once per member.
  std::vector<std::pair<ProcessId, std::vector<NodeSet>>> quorums;
  for (ProcessId i : group) {
    quorums.emplace_back(i, minimal_quorums_for(i, max_universe));
    if (quorums.back().second.empty()) {
      report.ok = false;
      report.worst_i = report.worst_j = i;
      report.min_intersection = 0;
      return report;
    }
  }
  std::size_t min_intersection = n_ + 1;  // strictly above any real value
  for (const auto& [i, qi] : quorums) {
    for (const auto& [j, qj] : quorums) {
      if (j < i) continue;
      for (const NodeSet& a : qi) {
        for (const NodeSet& b : qj) {
          const std::size_t inter = a.intersection_count(b);
          ++report.pairs_examined;
          if (inter < min_intersection) {
            min_intersection = inter;
            report.worst_i = i;
            report.worst_j = j;
          }
          if (inter <= f) report.ok = false;
        }
      }
    }
  }
  // A group with no quorum pairs (empty group) is vacuously intertwined;
  // report 0 rather than leaking the n+1 search sentinel.
  report.min_intersection = report.pairs_examined == 0 ? 0 : min_intersection;
  return report;
}

bool FbqsSystem::is_consensus_cluster(const NodeSet& I, const NodeSet& W,
                                      std::size_t f) const {
  if (I.empty() || !I.subset_of(W)) return false;
  // Quorum availability: every member has a quorum inside I.
  for (ProcessId i : I) {
    if (!find_quorum_for(i, I)) return false;
  }
  // Quorum intersection (threshold form).
  return check_intertwined(I, f).ok;
}

std::optional<NodeSet> FbqsSystem::maximal_consensus_cluster(
    const NodeSet& W, std::size_t f) const {
  // The success condition of the paper is C = W; test it first.
  if (is_consensus_cluster(W, W, f)) return W;

  // Otherwise search exhaustively among subsets (small universes only —
  // reuse the all_quorums guard indirectly by checking n_).
  if (n_ > 20) {
    throw std::invalid_argument(
        "maximal_consensus_cluster: exhaustive search needs n <= 20");
  }
  std::optional<NodeSet> best;
  const auto members = W.to_vector();
  const std::uint64_t limit = 1ULL << members.size();
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    NodeSet candidate(n_);
    for (std::size_t b = 0; b < members.size(); ++b) {
      if ((mask >> b) & 1ULL) candidate.add(members[b]);
    }
    if (best && candidate.count() <= best->count()) continue;
    if (is_consensus_cluster(candidate, W, f)) best = candidate;
  }
  return best;
}

}  // namespace scup::fbqs
