// Shared helpers for the experiment benches. Each bench binary regenerates
// one experiment from DESIGN.md's index (E1..E9) and doubles as a
// performance benchmark of the code paths involved. The ->Report rows (via
// counters) are the "tables"; EXPERIMENTS.md records the reference output.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/experiment.hpp"
#include "fbqs/quorum.hpp"
#include "graph/generators.hpp"
#include "graph/kosr.hpp"
#include "graph/scc.hpp"
#include "sinkdetector/slice_builder.hpp"

namespace scup::bench {

/// Builds the FBQS of Algorithm 2 for a given sink (used by the analytic
/// experiments E1-E4/E9).
inline fbqs::FbqsSystem algorithm2_system(std::size_t n, const NodeSet& sink,
                                          std::size_t f) {
  fbqs::FbqsSystem sys(n);
  for (ProcessId i = 0; i < n; ++i) {
    sinkdetector::GetSinkResult r;
    r.is_sink_member = sink.contains(i);
    r.sink = sink;
    sys.set_slices(i, sinkdetector::build_slices(r, f));
  }
  return sys;
}

/// Builds the Theorem-2 "local" FBQS from PDs alone.
inline fbqs::FbqsSystem local_system(const graph::Digraph& g, std::size_t f) {
  fbqs::FbqsSystem sys(g.node_count());
  for (ProcessId i = 0; i < g.node_count(); ++i) {
    const NodeSet pd = g.pd_of(i);
    if (pd.count() > f) {
      sys.set_slices(i, sinkdetector::local_slices(pd, f));
    }
  }
  return sys;
}

/// Standard scenario configuration for the simulation experiments (E5-E7).
inline core::ScenarioConfig sim_scenario(graph::Digraph g, std::size_t f,
                                         NodeSet faulty, std::uint64_t seed,
                                         core::ProtocolKind protocol) {
  core::ScenarioConfig cfg;
  cfg.graph = std::move(g);
  cfg.f = f;
  cfg.faulty = std::move(faulty);
  cfg.protocol = protocol;
  cfg.net.seed = seed;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = 10;
  cfg.deadline = 5'000'000;
  return cfg;
}

}  // namespace scup::bench
