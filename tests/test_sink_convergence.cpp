// The documented relaxation (DESIGN.md §2, "Sink Convergence"): under
// certificate-fabricating adversaries the sink detector must either return
// the exact sink (the f-reachability filter rejects the fabrication — the
// common case) or, at worst, the *same* enlarged estimate S ⊇ V_sink with
// >= 2f+1 correct members at every correct process. Either way consensus
// must still hold end to end. These tests pin that contract, plus harness-
// level behaviours not covered elsewhere.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/kosr.hpp"
#include "graph/scc.hpp"
#include "sim/simulation.hpp"

namespace scup::core {
namespace {

ScenarioConfig liar_config(std::uint64_t seed, AdversaryKind kind,
                           ProcessId liar) {
  graph::KosrGenParams params;
  params.sink_size = 5;
  params.non_sink_size = 4;
  params.k = 3;
  params.seed = seed;
  ScenarioConfig cfg;
  cfg.graph = graph::random_kosr_graph(params);
  cfg.f = 1;
  cfg.faulty = NodeSet(cfg.graph.node_count(), {liar});
  cfg.adversary = kind;
  cfg.net.seed = seed * 17 + 1;
  return cfg;
}

class SinkConvergenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SinkConvergenceTest, LiarNeverBreaksConsensusOrConvergence) {
  const std::uint64_t seed = GetParam();
  // Liar inside the sink (id 1) — the strongest position for fabrications.
  auto cfg = liar_config(seed, AdversaryKind::kDiscoveryLiar, /*liar=*/1);
  if (!graph::satisfies_bft_cup_preconditions(cfg.graph, cfg.faulty, cfg.f)) {
    GTEST_SKIP() << "unsafe placement for this seed";
  }
  const auto report = run_scenario(cfg);
  EXPECT_TRUE(report.all_decided) << "seed=" << seed;
  EXPECT_TRUE(report.agreement) << "seed=" << seed;
  EXPECT_TRUE(report.sd_all_returned) << "seed=" << seed;
  // With the f-reachability filter, a single liar can never certify a
  // fabricated admission (it would need f+1 = 2 disjoint certified paths).
  EXPECT_TRUE(report.sd_sink_exact) << "seed=" << seed;
  EXPECT_TRUE(report.sd_flags_correct) << "seed=" << seed;
}

TEST_P(SinkConvergenceTest, EquivocatingLiarConverges) {
  const std::uint64_t seed = GetParam();
  auto cfg =
      liar_config(seed, AdversaryKind::kDiscoveryEquivocator, /*liar=*/2);
  if (!graph::satisfies_bft_cup_preconditions(cfg.graph, cfg.faulty, cfg.f)) {
    GTEST_SKIP() << "unsafe placement for this seed";
  }
  const auto report = run_scenario(cfg);
  EXPECT_TRUE(report.all_decided) << "seed=" << seed;
  EXPECT_TRUE(report.agreement) << "seed=" << seed;
  EXPECT_TRUE(report.sd_sink_exact) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinkConvergenceTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ScenarioHarnessTest, ValuesVectorRespected) {
  ScenarioConfig cfg;
  cfg.graph = graph::fig2_graph();
  cfg.f = 1;
  cfg.faulty = NodeSet(7);
  cfg.values.assign(7, 42);  // unanimous proposals
  const auto report = run_scenario(cfg);
  ASSERT_TRUE(report.all_decided);
  // With unanimous proposals the decision is forced (validity).
  EXPECT_EQ(report.decided_value, 42u);
  EXPECT_TRUE(report.validity);
}

TEST(ScenarioHarnessTest, DefaultValuesAreDistinctAndNonZero) {
  for (ProcessId i = 0; i < 100; ++i) {
    EXPECT_NE(default_value(i), kNoValue);
    if (i > 0) {
      EXPECT_NE(default_value(i), default_value(i - 1));
    }
  }
}

TEST(ScenarioHarnessTest, DeadlineExpiryReportsNonTermination) {
  ScenarioConfig cfg;
  cfg.graph = graph::fig2_graph();
  cfg.f = 1;
  cfg.faulty = NodeSet(7, {0});
  cfg.deadline = 1;  // absurdly tight: nothing can decide
  const auto report = run_scenario(cfg);
  EXPECT_FALSE(report.all_decided);
  // Agreement is vacuous (nobody decided), validity unset.
  EXPECT_FALSE(report.validity);
  EXPECT_EQ(report.first_decision, kTimeInfinity);
}

TEST(ScenarioHarnessTest, SummaryMentionsKeyFields) {
  ScenarioConfig cfg;
  cfg.graph = graph::fig1_graph();
  cfg.f = 1;
  cfg.faulty = graph::fig1_faulty();
  const auto report = run_scenario(cfg);
  const std::string s = report.summary();
  EXPECT_NE(s.find("decided=all"), std::string::npos) << s;
  EXPECT_NE(s.find("agreement=yes"), std::string::npos) << s;
  EXPECT_NE(s.find("msgs="), std::string::npos) << s;
}

TEST(ScenarioHarnessTest, MetricsBrokenDownByType) {
  ScenarioConfig cfg;
  cfg.graph = graph::fig1_graph();
  cfg.f = 1;
  cfg.faulty = graph::fig1_faulty();
  const auto report = run_scenario(cfg);
  // Both protocol layers must have produced traffic.
  EXPECT_GT(report.metrics.messages_by_type().count("cup.discover"), 0u);
  EXPECT_GT(report.metrics.messages_by_type().count("scp.nominate"), 0u);
  EXPECT_GT(report.metrics.messages_by_type().count("scp.prepare"), 0u);
  std::size_t sum = 0;
  for (const auto& [type, count] : report.metrics.messages_by_type()) {
    sum += count;
  }
  EXPECT_EQ(sum, report.metrics.messages_sent);
}

}  // namespace
}  // namespace scup::core
