// Polymorphic message base for the simulator.
//
// Each protocol layer (certificate gossip, SINK discovery, sink detector,
// SCP, PBFT) defines its own Message subclasses and dispatches on them in
// Process::on_message. Messages are immutable once sent and shared between
// the sender's log and all recipients.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace scup::sim {

/// Process-wide interner mapping stable message type names to dense small
/// integer ids. Metrics accounting on the per-send hot path is then a
/// vector index instead of a std::string construction plus two map
/// lookups; names are materialized again only at report time. Ids are
/// assigned on first use and stable for the process lifetime (they are
/// shared across Simulation instances).
class MessageTypeRegistry {
 public:
  static std::uint32_t intern(const std::string& name);
  static const std::string& name_of(std::uint32_t id);
  /// Number of ids handed out so far.
  static std::size_t count();
};

class Message {
 public:
  Message() = default;
  // std::atomic is not copyable; copy the cached value so copied messages
  // keep the interned id (ids are process-wide, so the value transfers).
  Message(const Message& other)
      : metrics_type_id_(
            other.metrics_type_id_.load(std::memory_order_relaxed)) {}
  Message& operator=(const Message& other) {
    metrics_type_id_.store(
        other.metrics_type_id_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }
  virtual ~Message() = default;

  /// Stable name used for metrics aggregation (e.g. "scp.prepare").
  virtual std::string type_name() const = 0;

  /// Approximate wire size in bytes, for traffic accounting. Subclasses
  /// should override with a size reflecting their payload.
  virtual std::size_t byte_size() const { return 64; }

  /// Interned id of type_name(), computed lazily once per message object —
  /// a broadcast fanning one message out to n destinations interns once
  /// and reads the cached id n-1 times.
  std::uint32_t metrics_type_id() const {
    std::uint32_t id = metrics_type_id_.load(std::memory_order_relaxed);
    if (id == kUninternedTypeId) {
      id = MessageTypeRegistry::intern(type_name());
      metrics_type_id_.store(id, std::memory_order_relaxed);
    }
    return id;
  }

 private:
  static constexpr std::uint32_t kUninternedTypeId = 0xffffffffu;
  // The cache is per-object state invisible to message semantics. A
  // broadcast message is shared across shard threads in the sharded
  // engine, so the lazy fill is a relaxed atomic: racing fills intern the
  // same name and store the same id (the registry is idempotent).
  mutable std::atomic<std::uint32_t> metrics_type_id_{kUninternedTypeId};
};

using MessagePtr = std::shared_ptr<const Message>;

template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace scup::sim
