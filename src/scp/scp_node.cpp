#include "scp/scp_node.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace scup::scp {

namespace {
/// Tracked-predicate cap: past this many materialized views the table is
/// dropped and rebuilt on demand (bounds memory against ballot churn; never
/// hit in healthy runs).
constexpr std::size_t kMaxTrackedPredicates = 4096;
}  // namespace

void flush_quorum_counters(sim::ProtocolHost& host,
                           const fbqs::QuorumEngineStats& now,
                           fbqs::QuorumEngineStats& last) {
  using sim::ProtoCounter;
  const auto add = [&host](ProtoCounter c, std::uint64_t cur,
                           std::uint64_t prev) {
    if (cur != prev) host.host_counter_add(c, cur - prev);
  };
  add(ProtoCounter::kQuorumClosureRuns, now.closure_runs, last.closure_runs);
  add(ProtoCounter::kQuorumClosureCacheHits, now.closure_cache_hits,
      last.closure_cache_hits);
  add(ProtoCounter::kQsetEvals, now.qset_evals, last.qset_evals);
  add(ProtoCounter::kQsetEvalsBaseline, now.qset_evals_baseline,
      last.qset_evals_baseline);
  add(ProtoCounter::kSupportUpdates, now.support_updates,
      last.support_updates);
  add(ProtoCounter::kSupportRebuilds, now.support_rebuilds,
      last.support_rebuilds);
  last = now;
}

ScpNode::ScpNode(sim::ProtocolHost& host, std::size_t universe,
                 fbqs::QSet qset, Value own_value, ScpConfig config,
                 fbqs::QuorumEngine* engine)
    : host_(host),
      qset_(std::move(qset)),
      own_value_(own_value),
      config_(config),
      peers_(universe),
      owned_engine_(engine == nullptr
                        ? std::make_unique<fbqs::QuorumEngine>()
                        : nullptr),
      engine_(engine == nullptr ? owned_engine_.get() : engine),
      sender_qset_id_(universe, fbqs::kNoQSetId),
      qset_rebinds_(universe, 0) {
  // NOTE: host_.self() is not valid yet (composed hosts learn their id at
  // install time), so self's sender_qset_id_ entry is bound lazily by the
  // first emit; quorum checks cannot run before that.
  own_qset_id_ = engine_->intern(qset_);
}

void ScpNode::set_qset(fbqs::QSet qset) {
  if (started_) throw std::logic_error("ScpNode::set_qset after start");
  qset_ = std::move(qset);
  own_qset_id_ = engine_->intern(qset_);
}

void ScpNode::set_proposal(Value value) {
  if (started_) throw std::logic_error("ScpNode::set_proposal after start");
  if (value == kNoValue) {
    throw std::invalid_argument("ScpNode::set_proposal: zero value");
  }
  own_value_ = value;
}

void ScpNode::add_peer(ProcessId peer) {
  if (peer == host_.self() || peer >= peers_.universe_size() ||
      peers_.contains(peer)) {
    return;
  }
  peers_.add(peer);
  if (!started_) return;
  // Late joiners need our current state (both streams).
  for (const auto* map : {&latest_nom_, &latest_ballot_}) {
    const auto it = map->find(host_.self());
    if (it != map->end()) {
      host_.host_send(peer, sim::make_message<Envelope>(it->second));
    }
  }
}

void ScpNode::start() {
  if (started_) return;
  if (qset_.empty()) {
    // An empty qset makes every quorum check degenerate to {self}; starting
    // in that state silently destroys agreement, so refuse loudly.
    throw std::logic_error("ScpNode::start: quorum set not configured");
  }
  started_ = true;
  nom_voted_.insert(own_value_);
  emit_nomination();
  advance();
  flush_counters();
}

bool ScpNode::handle(ProcessId from, const sim::Message& msg) {
  const auto* env = dynamic_cast<const Envelope*>(&msg);
  if (env == nullptr) return false;
  if (env->sender != from) return true;  // forged sender field: drop

  auto& stream = is_ballot_statement(env->statement) ? latest_ballot_
                                                     : latest_nom_;
  const auto it = stream.find(from);
  if (it != stream.end() && it->second.seq >= env->seq) return true;  // stale
  stream.insert_or_assign(from, *env);
  note_statement_update(from);

  if (!started_) return true;  // buffered; acted on at start

  // Echo-all nomination: vote for every value we see nominated (until we
  // have decided — echoes are pointless afterwards).
  if (const auto* nom = std::get_if<NominateStmt>(&env->statement)) {
    if (!decided_) {
      bool grew = false;
      for (Value v : nom->voted) grew |= nom_voted_.insert(v).second;
      for (Value v : nom->accepted) grew |= nom_voted_.insert(v).second;
      if (grew) emit_nomination();
    }
  }
  advance();
  flush_counters();
  return true;
}

// ---------------------------------------------------------------- federated

std::size_t ScpNode::PredKeyHash::operator()(const PredKey& k) const {
  return static_cast<std::size_t>(
      hash_mix(static_cast<std::uint64_t>(k.cls), k.n, k.x));
}

bool ScpNode::pred_holds(const PredKey& key, const Statement& s) {
  switch (key.cls) {
    case PredClass::kNomVote:
      return votes_nominate(s, key.x);
    case PredClass::kNomAccept:
      return accepts_nominate(s, key.x);
    case PredClass::kPrepareVote: {
      const Ballot beta{key.n, key.x};
      return votes_prepare(s, beta) || accepts_prepared(s, beta);
    }
    case PredClass::kPrepareAccept:
      return accepts_prepared(s, Ballot{key.n, key.x});
    case PredClass::kCommitVote:
      return votes_commit(s, key.n, key.x) || accepts_commit(s, key.n, key.x);
    case PredClass::kCommitAccept:
      return accepts_commit(s, key.n, key.x);
    case PredClass::kBallotStream:
      return is_ballot_statement(s);
  }
  return false;
}

const NodeSet& ScpNode::support_view(const PredKey& key) const {
  const auto it = support_.find(key);
  if (it != support_.end()) return it->second;
  // First query of this predicate: one scan over both streams (a sender
  // supports it if any of its current statements implies it), then the view
  // stays fresh via note_statement_update().
  NodeSet s(peers_.universe_size());
  for (const auto& [id, env] : latest_nom_) {
    if (pred_holds(key, env.statement)) s.add(id);
  }
  for (const auto& [id, env] : latest_ballot_) {
    if (pred_holds(key, env.statement)) s.add(id);
  }
  engine_->count_support_rebuild();
  return support_.emplace(key, std::move(s)).first->second;
}

void ScpNode::note_statement_update(ProcessId id) {
  const auto nom_it = latest_nom_.find(id);
  const auto bal_it = latest_ballot_.find(id);
  const Statement* nom =
      nom_it == latest_nom_.end() ? nullptr : &nom_it->second.statement;
  const Statement* bal =
      bal_it == latest_ballot_.end() ? nullptr : &bal_it->second.statement;
  if (support_.size() > kMaxTrackedPredicates) {
    support_.clear();  // rebuilt lazily; counted per-view as rebuilds
  }
  // scup-lint: order-insensitive(each entry is updated independently from this sender's statements; no cross-entry reads or emissions)
  for (auto& [key, view] : support_) {
    const bool in = (nom != nullptr && pred_holds(key, *nom)) ||
                    (bal != nullptr && pred_holds(key, *bal));
    if (in) {
      view.add(id);
    } else {
      view.remove(id);
    }
  }
  engine_->count_support_update();
  // Effective qset: the ballot-stream envelope wins when both exist (they
  // are the same for correct senders anyway).
  if (bal_it != latest_ballot_.end()) {
    bind_qset(id, bal_it->second.qset);
  } else if (nom_it != latest_nom_.end()) {
    bind_qset(id, nom_it->second.qset);
  }
}

void ScpNode::bind_qset(ProcessId id, const fbqs::QSet& q) {
  const fbqs::QSetId cur = sender_qset_id_[id];
  // Cheap change test first: structural equality against the currently
  // bound qset avoids re-hashing the common unchanged case. No cache to
  // invalidate on change: the engine's closure memo entries carry a
  // fingerprint of their members' qset assignment and re-validate on
  // lookup, so a rebound sender just stops matching old entries.
  if (cur != fbqs::kNoQSetId && engine_->qset(cur) == q) return;
  // Rebind budget: each intern() of an unseen qset is permanent engine
  // memory, and the sender chooses the qset — so a rotating-qset adversary
  // gets kMaxQsetRebinds fresh interns, then keeps its current binding.
  // (Quorum checks keep using the last accepted qset, which is sound: past
  // the budget the sender is provably faulty and its qset arbitrary.)
  if (cur != fbqs::kNoQSetId) {
    if (qset_rebinds_[id] >= kMaxQsetRebinds) return;
    ++qset_rebinds_[id];
  }
  sender_qset_id_[id] = engine_->intern(q);
}

bool ScpNode::support_views_consistent() const {
  // scup-lint: order-insensitive(pure all-of check; result is a conjunction over entries)
  for (const auto& [key, view] : support_) {
    NodeSet fresh(peers_.universe_size());
    for (const auto& [id, env] : latest_nom_) {
      if (pred_holds(key, env.statement)) fresh.add(id);
    }
    for (const auto& [id, env] : latest_ballot_) {
      if (pred_holds(key, env.statement)) fresh.add(id);
    }
    if (!(fresh == view)) return false;
  }
  return true;
}

bool ScpNode::is_quorum_satisfying(const PredKey& pred) const {
  // Supporters across both streams: a node supports the predicate if any of
  // its current statements implies it. The Algorithm-1 closure (drop
  // members whose quorum set is not satisfied by the remaining support)
  // runs in the engine, memoized on the support fingerprint.
  const NodeSet& support = support_view(pred);
  if (!support.contains(host_.self())) return false;
  return engine_->quorum_contains(support, host_.self(), sender_qset_id_);
}

bool ScpNode::is_vblocking(const PredKey& pred) const {
  NodeSet blockers = support_view(pred);
  blockers.remove(host_.self());
  return engine_->blocked_for(own_qset_id_, blockers);
}

bool ScpNode::federated_accept(const PredKey& votes_or_accepts,
                               const PredKey& accepts) const {
  return is_vblocking(accepts) || is_quorum_satisfying(votes_or_accepts);
}

bool ScpNode::federated_ratify(const PredKey& accepts) const {
  return is_quorum_satisfying(accepts);
}

void ScpNode::flush_counters() {
  // Shared-engine nodes (ledger slots) don't flush: the multiplexer owns
  // the engine and reports the aggregate.
  if (owned_engine_ == nullptr) return;
  flush_quorum_counters(host_, engine_->stats(), flushed_);
}

// ------------------------------------------------------------------ driving

void ScpNode::advance() {
  if (!started_) return;
  bool changed = true;
  while (changed) {
    changed = false;
    if (!decided_) {
      // Nomination keeps running during the ballot phases: candidate sets
      // at different nodes converge over time, which is what lets ballot
      // values agree after bumps.
      changed |= step_nomination();
    }
    if (phase_ == Phase::kNominate) {
      changed |= maybe_start_ballot();
    }
    if (phase_ == Phase::kPrepare || phase_ == Phase::kConfirm) {
      changed |= step_ballot();
    }
  }
}

bool ScpNode::step_nomination() {
  bool changed = false;
  // Candidate values: everything anyone has mentioned.
  std::set<Value> seen = nom_voted_;
  for (const auto& [id, env] : latest_nom_) {
    if (const auto* nom = std::get_if<NominateStmt>(&env.statement)) {
      seen.insert(nom->voted.begin(), nom->voted.end());
      seen.insert(nom->accepted.begin(), nom->accepted.end());
    }
  }
  for (Value v : seen) {
    if (nom_accepted_.count(v) == 0) {
      const bool accepted =
          federated_accept(PredKey{PredClass::kNomVote, 0, v},
                           PredKey{PredClass::kNomAccept, 0, v});
      if (accepted) {
        nom_accepted_.insert(v);
        nom_voted_.insert(v);
        changed = true;
      }
    }
    if (nom_accepted_.count(v) > 0 && candidates_.count(v) == 0) {
      if (federated_ratify(PredKey{PredClass::kNomAccept, 0, v})) {
        candidates_.insert(v);
        changed = true;
      }
    }
  }
  if (changed) emit_nomination();
  return changed;
}

Value ScpNode::composite_candidate() const {
  // Deterministic combine: maximum of the confirmed candidates.
  return candidates_.empty() ? own_value_ : *candidates_.rbegin();
}

bool ScpNode::maybe_start_ballot() {
  if (phase_ != Phase::kNominate) return false;

  Value value = kNoValue;
  if (!candidates_.empty()) {
    value = composite_candidate();
  } else {
    // Catch-up: if a v-blocking set has moved to the ballot protocol, adopt
    // the value of the highest working ballot among them.
    if (!is_vblocking(PredKey{PredClass::kBallotStream, 0, 0})) {
      return false;
    }
    Ballot best;
    for (const auto& [id, env] : latest_ballot_) {
      if (id == host_.self()) continue;
      const Ballot wb = working_ballot(env.statement);
      if (wb.valid() && best < wb) best = wb;
    }
    if (!best.valid()) return false;
    value = best.x;
  }

  phase_ = Phase::kPrepare;
  b_ = Ballot{1, value};
  arm_ballot_timer();
  emit_ballot();
  return true;
}

bool ScpNode::step_ballot() {
  bool changed = false;
  changed |= attempt_accept_prepared();
  changed |= attempt_confirm_prepared();
  changed |= attempt_accept_commit();
  changed |= attempt_confirm_commit();
  return changed;
}

std::vector<Ballot> ScpNode::candidate_ballots() const {
  std::vector<Ballot> out;
  auto push = [&out](const Ballot& b) {
    if (b.valid()) out.push_back(b);
  };
  push(b_);
  for (const auto& [id, env] : latest_ballot_) {
    if (const auto* p = std::get_if<PrepareStmt>(&env.statement)) {
      push(p->b);
      push(p->p);
      push(p->p_prime);
    } else if (const auto* c = std::get_if<ConfirmStmt>(&env.statement)) {
      push(c->b);
      push(Ballot{c->p_n, c->b.x});
      push(Ballot{c->h_n, c->b.x});
    } else if (const auto* e = std::get_if<ExternalizeStmt>(&env.statement)) {
      push(e->commit);
      push(Ballot{e->h_n, e->commit.x});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  std::reverse(out.begin(), out.end());  // highest first
  return out;
}

bool ScpNode::attempt_accept_prepared() {
  bool changed = false;
  for (const Ballot& beta : candidate_ballots()) {
    // Skip if already covered by p_ or p_prime_.
    if (le_compatible(beta, p_) || le_compatible(beta, p_prime_)) continue;
    const bool accepted =
        federated_accept(PredKey{PredClass::kPrepareVote, beta.n, beta.x},
                         PredKey{PredClass::kPrepareAccept, beta.n, beta.x});
    if (!accepted) continue;
    // Update (p, p') = two highest accepted-prepared, mutually incompatible.
    if (!p_.valid() || p_ < beta) {
      if (p_.valid() && !compatible(p_, beta)) p_prime_ = p_;
      p_ = beta;
    } else if (!compatible(beta, p_) && (!p_prime_.valid() || p_prime_ < beta)) {
      p_prime_ = beta;
    }
    changed = true;
  }
  if (changed) {
    // Accepting prepared(p) aborts commit votes for incompatible smaller
    // ballots: if c is incompatible with p (or p'), clear it.
    if (c_.valid() &&
        ((p_.valid() && !compatible(c_, p_) && c_ < p_) ||
         (p_prime_.valid() && !compatible(c_, p_prime_) && c_ < p_prime_))) {
      c_ = Ballot{};
    }
    emit_ballot();
  }
  return changed;
}

bool ScpNode::attempt_confirm_prepared() {
  bool changed = false;
  for (const Ballot& beta : candidate_ballots()) {
    // Can only confirm what we have accepted.
    if (!le_compatible(beta, p_) && !le_compatible(beta, p_prime_)) continue;
    if (le_compatible(beta, h_)) continue;  // already confirmed higher
    if (federated_ratify(
            PredKey{PredClass::kPrepareAccept, beta.n, beta.x})) {
      if (!h_.valid() || h_ < beta) {
        h_ = beta;
        changed = true;
      }
    }
  }
  if (!changed) return false;

  // Adopt the confirmed value and start voting commit: b tracks h, and c is
  // the lowest ballot of the commit vote range.
  if (!compatible(b_, h_) || b_.n < h_.n) {
    b_ = Ballot{std::max(b_.n, h_.n), h_.x};
  }
  if (!c_.valid() && compatible(b_, h_) && b_.n <= h_.n) {
    // Vote commit for [b, h] unless something incompatible above h was
    // accepted prepared (which would abort those commit votes).
    const bool aborted =
        (p_.valid() && !compatible(p_, h_) && h_ < p_) ||
        (p_prime_.valid() && !compatible(p_prime_, h_) && h_ < p_prime_);
    if (!aborted) c_ = b_;
  }
  emit_ballot();
  return true;
}

std::vector<std::uint32_t> ScpNode::commit_boundaries(Value x) const {
  std::vector<std::uint32_t> ns;
  auto push = [&ns](std::uint32_t n) {
    if (n > 0) ns.push_back(n);
  };
  if (c_.valid() && c_.x == x) {
    push(c_.n);
    push(h_.n);
  }
  for (const auto& [id, env] : latest_ballot_) {
    if (const auto* p = std::get_if<PrepareStmt>(&env.statement)) {
      if (p->b.x == x) {
        push(p->c_n);
        push(p->h_n);
      }
    } else if (const auto* c = std::get_if<ConfirmStmt>(&env.statement)) {
      if (c->b.x == x) {
        push(c->c_n);
        push(c->h_n);
      }
    } else if (const auto* e = std::get_if<ExternalizeStmt>(&env.statement)) {
      if (e->commit.x == x) {
        push(e->commit.n);
        push(e->h_n);
      }
    }
  }
  std::sort(ns.begin(), ns.end());
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
  return ns;
}

bool ScpNode::attempt_accept_commit() {
  if (!b_.valid()) return false;
  const Value x = b_.x;
  bool changed = false;
  for (std::uint32_t n : commit_boundaries(x)) {
    if (commit_c_n_ != 0 && commit_c_n_ <= n && n <= commit_h_n_) continue;
    const bool accepted =
        federated_accept(PredKey{PredClass::kCommitVote, n, x},
                         PredKey{PredClass::kCommitAccept, n, x});
    if (!accepted) continue;
    if (commit_c_n_ == 0) {
      commit_c_n_ = commit_h_n_ = n;
    } else {
      commit_c_n_ = std::min(commit_c_n_, n);
      commit_h_n_ = std::max(commit_h_n_, n);
    }
    changed = true;
  }
  if (!changed) return false;

  if (phase_ == Phase::kPrepare) phase_ = Phase::kConfirm;
  // b tracks the highest accepted commit counter.
  if (b_.n < commit_h_n_) b_ = Ballot{commit_h_n_, x};
  if (h_.n < commit_h_n_ || !compatible(h_, b_)) h_ = Ballot{commit_h_n_, x};
  emit_ballot();
  return true;
}

bool ScpNode::attempt_confirm_commit() {
  if (phase_ != Phase::kConfirm || commit_c_n_ == 0) return false;
  const Value x = b_.x;
  bool changed = false;
  for (std::uint32_t n : commit_boundaries(x)) {
    if (ext_c_n_ != 0 && ext_c_n_ <= n && n <= ext_h_n_) continue;
    if (!federated_ratify(PredKey{PredClass::kCommitAccept, n, x})) {
      continue;
    }
    if (ext_c_n_ == 0) {
      ext_c_n_ = ext_h_n_ = n;
    } else {
      ext_c_n_ = std::min(ext_c_n_, n);
      ext_h_n_ = std::max(ext_h_n_, n);
    }
    changed = true;
  }
  if (!changed) return false;

  phase_ = Phase::kExternalize;
  decided_ = x;
  emit_ballot();
  // No federated check runs after externalization (nomination and ballot
  // steps are both gated on !decided_ / phase); drop the support views.
  support_.clear();
  if (on_decide) on_decide(x);
  return true;
}

// ---------------------------------------------------------------- emission

Statement ScpNode::ballot_statement() const {
  switch (phase_) {
    case Phase::kPrepare: {
      PrepareStmt s;
      s.b = b_;
      s.p = p_;
      s.p_prime = p_prime_;
      s.h_n = h_.valid() && compatible(h_, b_) ? h_.n : 0;
      // A commit-vote range is only meaningful under its confirmed-prepared
      // upper bound: when h is suppressed (incompatible with b), suppress c
      // too instead of publishing the malformed range [c_n, 0]. Invariant:
      // c_n != 0 ⇒ c_n <= h_n.
      s.c_n = c_.valid() && c_.n <= s.h_n ? c_.n : 0;
      return s;
    }
    case Phase::kConfirm: {
      ConfirmStmt s;
      s.b = b_;
      s.p_n = p_.valid() && compatible(p_, b_) ? p_.n : 0;
      s.c_n = commit_c_n_;
      s.h_n = commit_h_n_;
      return s;
    }
    case Phase::kExternalize: {
      ExternalizeStmt s;
      s.commit = Ballot{ext_c_n_, *decided_};
      s.h_n = ext_h_n_;
      return s;
    }
    case Phase::kNominate:
      break;
  }
  throw std::logic_error("ballot_statement called in nomination phase");
}

void ScpNode::emit_nomination() {
  ++seq_;
  Envelope env(host_.self(), seq_, qset_,
               Statement{NominateStmt{nom_voted_, nom_accepted_}});
  latest_nom_.insert_or_assign(host_.self(), env);
  note_statement_update(host_.self());
  const auto msg = sim::make_message<Envelope>(std::move(env));
  for (ProcessId peer : peers_) host_.host_send(peer, msg);
}

void ScpNode::emit_ballot() {
  ++seq_;
  Envelope env(host_.self(), seq_, qset_, ballot_statement());
  latest_ballot_.insert_or_assign(host_.self(), env);
  note_statement_update(host_.self());
  const auto msg = sim::make_message<Envelope>(std::move(env));
  for (ProcessId peer : peers_) host_.host_send(peer, msg);
}

void ScpNode::arm_ballot_timer() {
  const std::uint32_t round = std::min(b_.n, config_.timeout_growth_cap);
  host_.host_set_timer(kScpBallotTimerId,
                       config_.ballot_timeout_base * (round + 1));
}

void ScpNode::on_ballot_timer() {
  if (!started_ || decided_) return;
  if (phase_ == Phase::kNominate) {
    arm_ballot_timer();
    return;
  }
  // Bump the ballot counter; keep the confirmed-prepared value if any (so
  // commit votes are never contradicted), else refresh the composite from
  // the (still running) nomination.
  const Value value = h_.valid() ? h_.x : composite_candidate();
  b_ = Ballot{b_.n + 1, value};
  arm_ballot_timer();
  emit_ballot();
  advance();
  flush_counters();
}

Value ScpNode::decision() const {
  if (!decided_) throw std::logic_error("ScpNode::decision: not decided");
  return *decided_;
}

}  // namespace scup::scp
