// Fixture: conc-unguarded-static stays quiet when the static is annotated.
#include <mutex>
#include <vector>

std::mutex& reg_mutex() {
  // scup-lint: thread-safe(mutex; magic-static construction is synchronized)
  static std::mutex mutex;
  return mutex;
}

int count() {
  // scup-lint: guarded-by(reg_mutex)
  static std::vector<int> entries;
  const std::lock_guard<std::mutex> lock(reg_mutex());
  entries.push_back(1);
  return static_cast<int>(entries.size());
}
