#include "sim/message_pool.hpp"

#include <array>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

namespace scup::sim {

namespace {

// Block strides per size class, header included. Strides are multiples of
// 16 so payloads stay aligned for std::max_align_t after the 16-byte
// header. The largest class comfortably covers an allocate_shared node for
// every in-tree message type; bigger requests (huge gossip maps) fall back
// to the system allocator and are counted.
constexpr std::array<std::uint32_t, 7> kClassStrides = {64,   128,  256, 512,
                                                        1024, 2048, 4096};
constexpr std::size_t kNumClasses = kClassStrides.size();
constexpr std::size_t kBlockHeader = 16;
constexpr std::size_t kSlabBytes = 64 * 1024;

/// Set for the duration of a MessagePool::Scope on each thread; how
/// make_message finds the owning Simulation's pool.
thread_local MessagePool* tls_pool = nullptr;

}  // namespace

struct MessagePool::State {
  struct Slab {
    std::uint32_t class_index = 0;
    std::uint32_t capacity = 0;
    std::uint32_t live = 0;
    void* free_head = nullptr;
    // Intrusive doubly-linked membership in the class partial list.
    Slab* prev = nullptr;
    Slab* next = nullptr;
    bool in_partial = false;
    std::unique_ptr<std::uint8_t[]> storage;
  };

  // One mutex for the whole pool: allocation happens on whichever thread
  // runs the owning Simulation's loop (one at a time), release can happen
  // on any shard thread, and the critical sections are a handful of
  // pointer writes — contention is not a concern at window granularity.
  mutable std::mutex mutex;
  // Everything below is guarded by `mutex`.
  std::array<Slab*, kNumClasses> partial{};
  std::vector<std::unique_ptr<Slab>> slabs;
  std::vector<Slab*> empty;
  Stats stats;

  static void write_owner(std::uint8_t* block, Slab* slab) {
    std::memcpy(block, &slab, sizeof(slab));
  }
  static Slab* read_owner(std::uint8_t* block) {
    Slab* slab = nullptr;
    std::memcpy(&slab, block, sizeof(slab));
    return slab;
  }
  static void write_next_free(std::uint8_t* block, void* next) {
    std::memcpy(block + kBlockHeader, &next, sizeof(next));
  }
  static void* read_next_free(std::uint8_t* block) {
    void* next = nullptr;
    std::memcpy(&next, block + kBlockHeader, sizeof(next));
    return next;
  }

  // Lays out `slab` for size class `cls`: stamps every block's owner
  // pointer and threads a fresh freelist through the payload words. Called
  // on creation and when an empty slab is reformatted for a new class.
  static void format(Slab* slab, std::size_t cls) {
    const std::uint32_t stride = kClassStrides[cls];
    slab->class_index = static_cast<std::uint32_t>(cls);
    slab->capacity = static_cast<std::uint32_t>(kSlabBytes / stride);
    slab->live = 0;
    slab->free_head = nullptr;
    for (std::uint32_t i = slab->capacity; i-- > 0;) {
      std::uint8_t* block = slab->storage.get() + i * stride;
      write_owner(block, slab);
      write_next_free(block, slab->free_head);
      slab->free_head = block;
    }
  }

  void push_partial(std::size_t cls, Slab* slab) {
    slab->prev = nullptr;
    slab->next = partial[cls];
    if (partial[cls] != nullptr) partial[cls]->prev = slab;
    partial[cls] = slab;
    slab->in_partial = true;
  }

  void remove_partial(std::size_t cls, Slab* slab) {
    if (slab->prev != nullptr) slab->prev->next = slab->next;
    if (slab->next != nullptr) slab->next->prev = slab->prev;
    if (partial[cls] == slab) partial[cls] = slab->next;
    slab->prev = slab->next = nullptr;
    slab->in_partial = false;
  }
};

MessagePool::MessagePool() : state_(std::make_shared<State>()) {}
MessagePool::~MessagePool() = default;

MessagePool::Stats MessagePool::stats() const {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->stats;
}

MessagePool* MessagePool::current() { return tls_pool; }

MessagePool::Scope::Scope(MessagePool* pool) : prev_(tls_pool) {
  tls_pool = pool;
}
MessagePool::Scope::~Scope() { tls_pool = prev_; }

void* pool_allocate(const std::shared_ptr<MessagePool::State>& state,
                    std::size_t bytes) {
  using State = MessagePool::State;
  const std::size_t needed = bytes + kBlockHeader;
  std::size_t cls = 0;
  while (cls < kNumClasses && kClassStrides[cls] < needed) ++cls;
  if (cls == kNumClasses) {
    // Oversized: one-off system allocation with a null owner header so
    // deallocation can tell it apart from a slab block.
    auto* block = static_cast<std::uint8_t*>(::operator new(needed));
    State::write_owner(block, nullptr);
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      state->stats.fallback_allocs += 1;
    }
    return block + kBlockHeader;
  }

  const std::lock_guard<std::mutex> lock(state->mutex);
  State::Slab* slab = state->partial[cls];
  if (slab == nullptr) {
    if (!state->empty.empty()) {
      slab = state->empty.back();
      state->empty.pop_back();
      State::format(slab, cls);
      state->stats.slabs_recycled += 1;
    } else {
      auto owned = std::make_unique<State::Slab>();
      owned->storage = std::make_unique<std::uint8_t[]>(kSlabBytes);
      slab = owned.get();
      state->slabs.push_back(std::move(owned));
      State::format(slab, cls);
      state->stats.slabs_created += 1;
      state->stats.bytes_reserved += kSlabBytes;
    }
    state->push_partial(cls, slab);
  }
  auto* block = static_cast<std::uint8_t*>(slab->free_head);
  slab->free_head = State::read_next_free(block);
  slab->live += 1;
  if (slab->free_head == nullptr) state->remove_partial(cls, slab);
  state->stats.pool_allocs += 1;
  return block + kBlockHeader;
}

void pool_deallocate(const std::shared_ptr<MessagePool::State>& state,
                     void* ptr, std::size_t /*bytes*/) {
  using State = MessagePool::State;
  auto* block = static_cast<std::uint8_t*>(ptr) - kBlockHeader;
  State::Slab* slab = State::read_owner(block);
  if (slab == nullptr) {
    ::operator delete(block);
    return;
  }
  const std::lock_guard<std::mutex> lock(state->mutex);
  const std::size_t cls = slab->class_index;
  State::write_next_free(block, slab->free_head);
  slab->free_head = block;
  slab->live -= 1;
  if (!slab->in_partial) state->push_partial(cls, slab);
  if (slab->live == 0) {
    // Wholesale reclamation: drop the whole freelist in O(1) and park the
    // slab for reuse by any class (it is re-threaded on reformat).
    state->remove_partial(cls, slab);
    slab->free_head = nullptr;
    state->empty.push_back(slab);
  }
  state->stats.pool_frees += 1;
}

}  // namespace scup::sim
