// Meta rules: an annotation no rule consumed is dead weight the next
// reader will trust wrongly, and malformed forms must be flagged.
#include <map>

class Quiet {
 public:
  bool handle(unsigned from, unsigned slot);

 private:
  std::map<unsigned, unsigned> table_;
};

bool Quiet::handle(unsigned from, unsigned slot) {
  if (from == 0 || slot > 8) {
    return false;
  }
  // scup-sanitize: nothing is tainted here any more, so this is stale
  table_[from] = slot;
  return true;
}

// scup-owner: garbage
// scup-analyze: shard-entry
int no_reason_forms_ = 0;
