// BftCupNode — the BFT-CUP baseline (Theorem 1): the same initial knowledge
// (PD_i and f), but consensus is reached by
//   1. discovering the sink (same SINK algorithm / sink detector),
//   2. running PBFT among the sink members,
//   3. disseminating the decision to non-sink members, who accept a value
//      vouched for by more than f distinct sink members.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "bftcup/pbft.hpp"
#include "common/node_set.hpp"
#include "sim/composed.hpp"
#include "sinkdetector/sink_detector.hpp"

namespace scup::bftcup {

/// Frame ids 48/49 (see the allocation table in sim/wire.hpp callers).
inline constexpr std::uint16_t kWireTypeDecisionRequest = 48;
inline constexpr std::uint16_t kWireTypeDecision = 49;

/// Flooded request: `origin` wants the decided value.
struct DecisionRequestMsg final : sim::Message {
  explicit DecisionRequestMsg(ProcessId o) : origin(o) {}
  ProcessId origin;
  std::string type_name() const override { return "bftcup.decision_req"; }
  std::size_t byte_size() const override { return 20; }
  std::uint16_t wire_type() const override { return kWireTypeDecisionRequest; }
  void wire_encode(sim::WireWriter& w) const override { w.u32(origin); }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const ProcessId origin = r.u32();
    if (!r.ok()) return nullptr;
    return sim::make_message<DecisionRequestMsg>(origin);
  }
};

/// A (claimed) decided value; non-sink members require > f matching senders.
struct DecisionMsg final : sim::Message {
  explicit DecisionMsg(Value v) : value(v) {}
  Value value;
  std::string type_name() const override { return "bftcup.decision"; }
  std::size_t byte_size() const override { return 24; }
  std::uint16_t wire_type() const override { return kWireTypeDecision; }
  void wire_encode(sim::WireWriter& w) const override { w.u64(value); }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const Value value = r.u64();
    if (!r.ok()) return nullptr;
    return sim::make_message<DecisionMsg>(value);
  }
};

class BftCupNode : public sim::ComposedNode {
 public:
  BftCupNode(NodeSet pd, std::size_t f, Value value, PbftConfig pbft = {},
             cup::DiscoveryConfig discovery = {});

  void start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;
  void on_timer(int timer_id) override;

  bool sink_detected() const { return detector_.has_result(); }
  const sinkdetector::GetSinkResult& sink_result() const {
    return detector_.result();
  }

  bool decided() const { return decided_.has_value(); }
  Value decision() const;
  SimTime decision_time() const { return decision_time_; }

 private:
  void on_sink(const sinkdetector::GetSinkResult& result);
  void decide(Value v);
  void answer_requests();

  NodeSet pd_;
  Value value_;
  PbftConfig pbft_config_;
  sinkdetector::SinkDetector detector_;
  std::unique_ptr<PbftConsensus> pbft_;

  /// PBFT traffic arriving before our own sink detection completes is
  /// buffered and replayed once the consensus instance exists — otherwise a
  /// slow sink member could miss prepares forever and stall the quorum.
  std::vector<std::pair<ProcessId, sim::MessagePtr>> pending_pbft_;

  NodeSet requesters_;
  NodeSet request_forwarded_;
  std::map<Value, NodeSet> decision_votes_;  // value -> distinct senders
  std::optional<Value> decided_;
  SimTime decision_time_ = kTimeInfinity;
};

}  // namespace scup::bftcup
