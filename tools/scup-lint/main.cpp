// scup-lint CLI: walks src/, tests/ and bench/ under the given repo root,
// applies the project rule families (see lint.hpp), and prints
// `file:line: [rule-id] message` diagnostics.
//
// Exit codes (the contract CI and CTest rely on):
//   0  clean — zero unsuppressed findings, zero stale suppressions
//   1  findings reported
//   2  usage or I/O error (bad root, unreadable suppression file)
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kUsage =
    "usage: scup-lint <repo-root> [--suppressions <file>]\n"
    "       lints src/, tests/ and bench/ under <repo-root>\n";

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string root_arg;
  std::string supp_arg;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--suppressions") {
      if (i + 1 >= args.size()) {
        std::cerr << kUsage;
        return 2;
      }
      supp_arg = args[++i];
    } else if (root_arg.empty()) {
      root_arg = args[i];
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  const fs::path root(root_arg);
  if (!fs::is_directory(root)) {
    std::cerr << "scup-lint: not a directory: " << root_arg << "\n";
    return 2;
  }

  // Deterministic file order: collect, then sort by relative path.
  std::vector<std::pair<std::string, fs::path>> files;  // rel -> abs
  for (const char* top : {"src", "tests", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      files.emplace_back(
          fs::relative(entry.path(), root).generic_string(), entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: project-wide unordered-container identifiers (src/ only — the
  // det-unordered-iter rule is scoped to src/ and collecting test-local
  // names like `set` would poison the ident list).
  scup::lint::LintOptions opts;
  for (const auto& [rel, abs] : files) {
    if (rel.rfind("src/", 0) != 0) continue;
    std::string content;
    if (!read_file(abs, content)) {
      std::cerr << "scup-lint: cannot read " << rel << "\n";
      return 2;
    }
    for (std::string& ident : scup::lint::collect_unordered_idents(content)) {
      if (std::find(opts.unordered_idents.begin(), opts.unordered_idents.end(),
                    ident) == opts.unordered_idents.end()) {
        opts.unordered_idents.push_back(std::move(ident));
      }
    }
  }

  // Pass 2: rules.
  std::vector<scup::lint::Finding> findings;
  for (const auto& [rel, abs] : files) {
    std::string content;
    if (!read_file(abs, content)) {
      std::cerr << "scup-lint: cannot read " << rel << "\n";
      return 2;
    }
    for (scup::lint::Finding& f : scup::lint::lint_file(rel, content, opts)) {
      findings.push_back(std::move(f));
    }
  }

  // Suppressions: an explicitly named file must exist; the default location
  // is used only when present.
  fs::path supp_path;
  if (!supp_arg.empty()) {
    supp_path = supp_arg;
    if (!fs::is_regular_file(supp_path)) {
      std::cerr << "scup-lint: suppression file not found: " << supp_arg
                << "\n";
      return 2;
    }
  } else {
    const fs::path candidate = root / "tools" / "scup-lint" /
                               "suppressions.txt";
    if (fs::is_regular_file(candidate)) supp_path = candidate;
  }
  if (!supp_path.empty()) {
    std::string content;
    if (!read_file(supp_path, content)) {
      std::cerr << "scup-lint: cannot read " << supp_path << "\n";
      return 2;
    }
    std::error_code ec;
    const fs::path rel = fs::relative(supp_path, root, ec);
    const std::string supp_rel =
        ec || rel.empty() ? supp_path.generic_string() : rel.generic_string();
    std::vector<scup::lint::Finding> supp_errors;
    auto supps =
        scup::lint::parse_suppressions(content, supp_rel, supp_errors);
    findings = scup::lint::apply_suppressions(std::move(findings), supps,
                                              supp_rel);
    for (scup::lint::Finding& f : supp_errors) {
      findings.push_back(std::move(f));
    }
  }

  scup::lint::sort_findings(findings);
  for (const scup::lint::Finding& f : findings) {
    std::cout << scup::lint::format_finding(f) << "\n";
  }
  if (findings.empty()) {
    std::cout << "scup-lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cout << "scup-lint: " << findings.size() << " finding(s)\n";
  return 1;
}
