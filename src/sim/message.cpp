#include "sim/message.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/wire.hpp"

namespace scup::sim {

namespace {
// The registry is process-wide shared state; the ScenarioMatrix runner
// interns from several simulation threads at once, so it is guarded by a
// mutex. Names live in a deque because name_of hands out references that
// must survive later interning (deque growth never moves elements).
// Function-local statics avoid static-initialization-order issues for
// messages interned during other globals' construction.
std::mutex& registry_mutex() {
  // scup-lint: thread-safe(a mutex is its own synchronization)
  static std::mutex mutex;
  return mutex;
}
// scup-analyze: requires-lock(registry_mutex)
std::deque<std::string>& names_by_id() {
  // scup-lint: guarded-by(registry_mutex)
  // scup-guarded-by: registry_mutex
  static std::deque<std::string> names;
  return names;
}
// scup-analyze: requires-lock(registry_mutex)
std::map<std::string, std::uint32_t>& ids_by_name() {
  // scup-lint: guarded-by(registry_mutex)
  // scup-guarded-by: registry_mutex
  static std::map<std::string, std::uint32_t> ids;
  return ids;
}
}  // namespace

std::uint32_t MessageTypeRegistry::intern(const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  auto& ids = ids_by_name();
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  auto& names = names_by_id();
  const auto id = static_cast<std::uint32_t>(names.size());
  names.push_back(name);
  ids.emplace(name, id);
  return id;
}

const std::string& MessageTypeRegistry::name_of(std::uint32_t id) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto& names = names_by_id();
  if (id >= names.size()) {
    throw std::out_of_range("MessageTypeRegistry::name_of: unknown id " +
                            std::to_string(id));
  }
  return names[id];
}

std::size_t MessageTypeRegistry::count() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  return names_by_id().size();
}

namespace {
// Reused encode scratch: wire_encode appends here, then the frame is copied
// into the message's inline buffer (or one overflow buffer for frames past
// the inline capacity). Capacity persists across encodes, so steady-state
// encoding of typical messages performs zero allocations.
thread_local std::vector<std::uint8_t> wire_scratch;
}  // namespace

bool Message::encode_frame_once() const {
  if (wire_state_.load(std::memory_order_acquire) == kWireReady) return false;
  std::uint32_t expected = kWireEmpty;
  if (wire_state_.compare_exchange_strong(expected, kWireBuilding,
                                          std::memory_order_acquire)) {
    wire_scratch.clear();
    WireWriter writer(wire_scratch);
    writer.u16(wire_type());
    wire_encode(writer);
    const std::size_t size = wire_scratch.size();
    wire_size_ = static_cast<std::uint32_t>(size);
    if (size <= kWireInlineCapacity) {
      std::copy(wire_scratch.begin(), wire_scratch.end(),
                wire_inline_.begin());
    } else {
      wire_overflow_.assign(wire_scratch.begin(), wire_scratch.end());
    }
    size_cache_.store(wire_size_, std::memory_order_relaxed);
    wire_state_.store(kWireReady, std::memory_order_release);
    return true;
  }
  // Another thread won the race (a cross-shard resend of a shared message
  // object); wait out its few-hundred-nanosecond encode.
  while (wire_state_.load(std::memory_order_acquire) != kWireReady) {
    std::this_thread::yield();
  }
  return false;
}

Message::SendSize Message::send_size_slow() const {
  if (wire_type() == kWireTypeNone) {
    // Satellite memoization for codec-less types (bench/test messages):
    // one virtual byte_size() per message object, relaxed loads per send.
    const std::size_t estimate = byte_size();
    size_cache_.store(static_cast<std::uint32_t>(estimate),
                      std::memory_order_relaxed);
    return {estimate, false, false};
  }
  const bool encoded_now = encode_frame_once();
  return {size_cache_.load(std::memory_order_relaxed), encoded_now, true};
}

std::pair<const std::uint8_t*, std::size_t> Message::wire_frame() const {
  if (wire_type() == kWireTypeNone) return {nullptr, 0};
  encode_frame_once();
  const std::size_t size = wire_size_;
  const std::uint8_t* data = size <= kWireInlineCapacity
                                 ? wire_inline_.data()
                                 : wire_overflow_.data();
  return {data, size};
}

}  // namespace scup::sim
