#include "graph/disjoint_paths.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace scup::graph {
namespace {

TEST(DisjointPathsTest, DirectEdgeIsOnePath) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 1), 1u);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 1, 0), 0u);
}

TEST(DisjointPathsTest, NoPath) {
  Digraph g(3);
  g.add_edge(1, 0);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 2), 0u);
}

TEST(DisjointPathsTest, SameEndpointThrows) {
  Digraph g(2);
  EXPECT_THROW((void)max_vertex_disjoint_paths(g, 0, 0),
               std::invalid_argument);
}

TEST(DisjointPathsTest, ParallelRoutes) {
  // 0 -> {1,2,3} -> 4 : three internally-disjoint paths.
  Digraph g(5);
  for (ProcessId mid : {1u, 2u, 3u}) {
    g.add_edge(0, mid);
    g.add_edge(mid, 4);
  }
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 4), 3u);
  EXPECT_TRUE(has_k_vertex_disjoint_paths(g, 0, 4, 3, NodeSet::full(5)));
  EXPECT_FALSE(has_k_vertex_disjoint_paths(g, 0, 4, 4, NodeSet::full(5)));
}

TEST(DisjointPathsTest, SharedIntermediateLimits) {
  // Two routes that both must pass through node 1: only 1 disjoint path.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 4), 1u);
}

TEST(DisjointPathsTest, DirectEdgePlusIndirect) {
  Digraph g(3);
  g.add_edge(0, 2);        // direct
  g.add_edge(0, 1);
  g.add_edge(1, 2);        // via 1
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 2), 2u);
}

TEST(DisjointPathsTest, ActiveMaskRemovesPaths) {
  Digraph g(5);
  for (ProcessId mid : {1u, 2u, 3u}) {
    g.add_edge(0, mid);
    g.add_edge(mid, 4);
  }
  NodeSet active = NodeSet::full(5);
  active.remove(2);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 4, active), 2u);
  // Inactive endpoint -> zero.
  active.remove(0);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 4, active), 0u);
}

TEST(KConnectivityTest, CompleteGraph) {
  const std::size_t n = 5;
  Digraph g(n);
  for (ProcessId u = 0; u < n; ++u) {
    for (ProcessId v = 0; v < n; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  // K5 is 4-strongly-connected but not 5.
  EXPECT_TRUE(is_k_strongly_connected(g, 4));
  EXPECT_FALSE(is_k_strongly_connected(g, 5));
}

TEST(KConnectivityTest, DirectedCycleIsExactlyOneConnected) {
  Digraph g(6);
  for (ProcessId i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6);
  EXPECT_TRUE(is_k_strongly_connected(g, 1));
  EXPECT_FALSE(is_k_strongly_connected(g, 2));
}

TEST(KConnectivityTest, CirculantConstruction) {
  // The generator's sink construction: C_s(1..k) must be k-strongly
  // connected. Verify for several (s, k).
  for (std::size_t s : {5u, 7u, 9u}) {
    for (std::size_t k : {2u, 3u}) {
      Digraph g(s);
      for (ProcessId i = 0; i < s; ++i) {
        for (std::size_t j = 1; j <= k; ++j) {
          g.add_edge(i, static_cast<ProcessId>((i + j) % s));
        }
      }
      EXPECT_TRUE(is_k_strongly_connected(g, k)) << "s=" << s << " k=" << k;
    }
  }
}

TEST(KConnectivityTest, TrivialCases) {
  Digraph g(1);
  EXPECT_TRUE(is_k_strongly_connected(g, 3));  // single node, vacuous
  Digraph h(4);
  EXPECT_TRUE(is_k_strongly_connected(h, 2, NodeSet(4, {2})));
  EXPECT_TRUE(is_k_strongly_connected(h, 0));
}

TEST(FReachabilityTest, Definition9) {
  // 0 -> {1,2} -> 3, with f = 1: need 2 disjoint correct paths.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const NodeSet all_correct = NodeSet::full(4);
  EXPECT_TRUE(is_f_reachable(g, 0, 3, 1, all_correct));
  // If node 2 is faulty, only one correct path remains.
  NodeSet correct = all_correct;
  correct.remove(2);
  EXPECT_FALSE(is_f_reachable(g, 0, 3, 1, correct));
  EXPECT_TRUE(is_f_reachable(g, 0, 3, 0, correct));
  // Trivially self-reachable.
  EXPECT_TRUE(is_f_reachable(g, 2, 2, 5, all_correct));
}

// Property: Menger's theorem cross-check on small random graphs — the
// max-flow answer equals a brute-force greedy upper/lower sandwich:
// we verify monotonicity (k paths => k-1 paths) and consistency with
// reachability.
class DisjointPathsPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointPathsPropertyTest, MonotoneAndConsistent) {
  const Digraph g = random_digraph(14, 0.2, GetParam());
  const NodeSet all = NodeSet::full(14);
  Rng rng(GetParam() * 77 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const ProcessId u = static_cast<ProcessId>(rng.uniform(14));
    ProcessId v = static_cast<ProcessId>(rng.uniform(14));
    if (u == v) v = (v + 1) % 14;
    const std::size_t paths = max_vertex_disjoint_paths(g, u, v, all);
    // Consistency with plain reachability.
    EXPECT_EQ(paths > 0, g.reachable_from(u).contains(v));
    // has_k agrees with the exact count on both sides of the threshold.
    if (paths > 0) {
      EXPECT_TRUE(has_k_vertex_disjoint_paths(g, u, v, paths, all));
    }
    EXPECT_FALSE(has_k_vertex_disjoint_paths(g, u, v, paths + 1, all));
    // Paths bounded by degrees.
    EXPECT_LE(paths, g.out_degree(u));
    EXPECT_LE(paths, g.in_degree(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointPathsPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace scup::graph
