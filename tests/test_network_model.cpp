// The pluggable link layer (sim::NetworkModel) and the staged-participation
// runtime: link overrides, partition schedules, pre-GST loss/duplication,
// crash(id) vs isolate(id), and activate(id, t) mailbox semantics.
#include "sim/network_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulation.hpp"

namespace scup::sim {
namespace {

struct NoteMsg final : Message {
  explicit NoteMsg(int p) : payload(p) {}
  int payload;
  std::string type_name() const override { return "test.note"; }
  std::size_t byte_size() const override { return 16; }
};

/// Records every delivery with its simulated arrival time.
struct Recorder : Process {
  void on_message(ProcessId from, const MessagePtr& msg) override {
    const auto& note = dynamic_cast<const NoteMsg&>(*msg);
    deliveries.push_back({from, note.payload, now()});
  }
  struct Delivery {
    ProcessId from;
    int payload;
    SimTime at;
  };
  std::vector<Delivery> deliveries;
};

/// Sends one NoteMsg per entry of `plan` (target, payload, send time).
struct Sender : Process {
  struct Planned {
    ProcessId to;
    int payload;
    SimTime at;
  };
  explicit Sender(std::vector<Planned> plan) : plan_(std::move(plan)) {}
  void start() override {
    for (std::size_t i = 0; i < plan_.size(); ++i) {
      set_timer(static_cast<int>(i) + 1, plan_[i].at);
    }
  }
  void on_timer(int timer_id) override {
    const Planned& p = plan_[static_cast<std::size_t>(timer_id) - 1];
    send(p.to, make_message<NoteMsg>(p.payload));
  }
  void on_message(ProcessId, const MessagePtr&) override {}
  std::vector<Planned> plan_;
};

NetworkConfig sync_net() {
  NetworkConfig net;
  net.gst = 0;
  net.min_delay = 1;
  net.max_delay = 5;
  net.seed = 42;
  return net;
}

TEST(NetworkModelTest, ExplicitUniformModelMatchesDefault) {
  const NetworkConfig net = sync_net();
  auto run = [&](std::unique_ptr<NetworkModel> model) {
    auto sim = model ? std::make_unique<Simulation>(2, net, std::move(model))
                     : std::make_unique<Simulation>(2, net);
    sim->emplace_process<Sender>(
        0, std::vector<Sender::Planned>{{1, 1, 1}, {1, 2, 3}, {1, 3, 9}});
    auto& r = sim->emplace_process<Recorder>(1);
    sim->start();
    sim->run_for(1'000);
    std::vector<SimTime> times;
    for (const auto& d : r.deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run(nullptr), run(std::make_unique<UniformModel>(net)));
}

TEST(NetworkModelTest, LinkOverrideIsPerDirection) {
  NetworkConfig net = sync_net();
  net.link_overrides.push_back({0, 1, 50, 50});  // only the 0 -> 1 direction
  Simulation sim(2, net);
  sim.emplace_process<Sender>(0,
                              std::vector<Sender::Planned>{{1, 7, 0}});
  auto& r1 = sim.emplace_process<Recorder>(1);
  sim.start();
  sim.run_for(1'000);
  ASSERT_EQ(r1.deliveries.size(), 1u);
  EXPECT_EQ(r1.deliveries[0].at, 50);  // overridden: exactly min=max=50

  // Reverse direction keeps the global [1, 5] bounds.
  Simulation rev(2, net);
  auto& r0 = rev.emplace_process<Recorder>(0);
  rev.emplace_process<Sender>(1, std::vector<Sender::Planned>{{0, 7, 0}});
  rev.start();
  rev.run_for(1'000);
  ASSERT_EQ(r0.deliveries.size(), 1u);
  EXPECT_GE(r0.deliveries[0].at, 1);
  EXPECT_LE(r0.deliveries[0].at, 5);
}

TEST(NetworkModelTest, PartitionDefersCrossingMessagesUntilHeal) {
  NetworkConfig net = sync_net();
  NodeSet side(3, {0});
  net.partitions.push_back({side, 0, 1'000});
  Simulation sim(3, net);
  // 0 -> 1 crosses the cut at t=2; 2 -> 1 stays inside the majority side;
  // 0 -> 1 again at t=1500, after the heal.
  sim.emplace_process<Sender>(
      0, std::vector<Sender::Planned>{{1, 1, 2}, {1, 3, 1'500}});
  auto& r = sim.emplace_process<Recorder>(1);
  sim.emplace_process<Sender>(2, std::vector<Sender::Planned>{{1, 2, 2}});
  sim.start();
  sim.run_for(10'000);
  ASSERT_EQ(r.deliveries.size(), 3u);
  // Uncut link: normal delay.
  EXPECT_EQ(r.deliveries[0].payload, 2);
  EXPECT_LE(r.deliveries[0].at, 2 + 5);
  // Crossing message: deferred to heal + sampled delay.
  EXPECT_EQ(r.deliveries[1].payload, 1);
  EXPECT_GE(r.deliveries[1].at, 1'000 + 1);
  EXPECT_LE(r.deliveries[1].at, 1'000 + 5);
  // After the heal the link is normal again.
  EXPECT_EQ(r.deliveries[2].payload, 3);
  EXPECT_LE(r.deliveries[2].at, 1'500 + 5);
}

TEST(NetworkModelTest, PreGstDropIsLossBeforeGstOnly) {
  NetworkConfig net = sync_net();
  net.gst = 100;
  net.pre_gst_max_delay = 20;
  net.pre_gst_drop = 1.0;  // every pre-GST message is lost
  Simulation sim(2, net);
  sim.emplace_process<Sender>(
      0, std::vector<Sender::Planned>{{1, 1, 0}, {1, 2, 50}, {1, 3, 200}});
  auto& r = sim.emplace_process<Recorder>(1);
  sim.start();
  sim.run_for(10'000);
  ASSERT_EQ(r.deliveries.size(), 1u);  // only the post-GST send arrives
  EXPECT_EQ(r.deliveries[0].payload, 3);
  EXPECT_EQ(sim.metrics().messages_sent, 3u);  // sends are still counted
  EXPECT_EQ(sim.metrics().messages_dropped, 2u);
}

TEST(NetworkModelTest, PreGstDuplicateDeliversTwoCopies) {
  NetworkConfig net = sync_net();
  net.gst = 100;
  net.pre_gst_max_delay = 20;
  net.pre_gst_duplicate = 1.0;
  Simulation sim(2, net);
  sim.emplace_process<Sender>(0, std::vector<Sender::Planned>{{1, 9, 0}});
  auto& r = sim.emplace_process<Recorder>(1);
  sim.start();
  sim.run_for(10'000);
  ASSERT_EQ(r.deliveries.size(), 2u);
  EXPECT_EQ(r.deliveries[0].payload, 9);
  EXPECT_EQ(r.deliveries[1].payload, 9);
  EXPECT_EQ(sim.metrics().messages_sent, 1u);
  EXPECT_EQ(sim.metrics().messages_duplicated, 1u);
}

TEST(NetworkModelTest, ConfigValidation) {
  NetworkConfig bad_prob = sync_net();
  bad_prob.pre_gst_drop = 1.5;
  EXPECT_THROW(Simulation(2, bad_prob), std::invalid_argument);

  NetworkConfig bad_window = sync_net();
  bad_window.partitions.push_back({NodeSet(2, {0}), 100, 50});
  EXPECT_THROW(Simulation(2, bad_window), std::invalid_argument);

  NetworkConfig bad_override = sync_net();
  bad_override.link_overrides.push_back({0, 1, 10, 5});
  EXPECT_THROW(Simulation(2, bad_override), std::invalid_argument);
}

/// Custom model: fixed 7-tick delay on every link — pins the NetworkModel
/// seam itself, not just UniformModel.
struct FixedDelayModel final : NetworkModel {
  Verdict on_send(ProcessId, ProcessId, SimTime now, StreamRng&) override {
    return {.deliver_at = now + 7};  // no draws: draws_per_send() == 0
  }
};

TEST(NetworkModelTest, CustomModelPluggedIn) {
  Simulation sim(2, sync_net(), std::make_unique<FixedDelayModel>());
  sim.emplace_process<Sender>(
      0, std::vector<Sender::Planned>{{1, 1, 0}, {1, 2, 10}});
  auto& r = sim.emplace_process<Recorder>(1);
  sim.start();
  sim.run_for(1'000);
  ASSERT_EQ(r.deliveries.size(), 2u);
  EXPECT_EQ(r.deliveries[0].at, 7);
  EXPECT_EQ(r.deliveries[1].at, 17);
}

// ---- crash(id): the full-stop fault primitive ----

/// Sends a note to `peer` on every recurring timer tick.
struct Ticker : Process {
  explicit Ticker(ProcessId peer) : peer_(peer) {}
  void start() override { set_timer(1, 10); }
  void on_timer(int) override {
    ++ticks;
    send(peer_, make_message<NoteMsg>(ticks));
    set_timer(1, 10);
  }
  void on_message(ProcessId, const MessagePtr&) override {}
  ProcessId peer_;
  int ticks = 0;
};

TEST(CrashTest, CrashStopsTimersSendsAndDeliveries) {
  Simulation sim(2, sync_net());
  auto& t = sim.emplace_process<Ticker>(0, 1);
  auto& r = sim.emplace_process<Recorder>(1);
  sim.start();
  sim.run_for(100);
  const int ticks_before = t.ticks;
  EXPECT_GT(ticks_before, 0);
  sim.crash(0);
  EXPECT_TRUE(sim.crashed(0));
  sim.run_for(10'000);
  // No timer fired after the crash, so no further sends either.
  EXPECT_EQ(t.ticks, ticks_before);
  for (const auto& d : r.deliveries) EXPECT_LE(d.at, 100 + 5);

  // And a crashed receiver gets nothing, even messages already in flight.
  Simulation sim2(2, sync_net());
  sim2.emplace_process<Ticker>(0, 1);
  auto& r2 = sim2.emplace_process<Recorder>(1);
  sim2.start();
  sim2.crash(1);
  sim2.run_for(1'000);
  EXPECT_TRUE(r2.deliveries.empty());
}

TEST(CrashTest, CrashAtSchedulesTheStop) {
  Simulation sim(2, sync_net());
  auto& t = sim.emplace_process<Ticker>(0, 1);
  sim.emplace_process<Recorder>(1);
  sim.crash_at(0, 55);  // before start(): queued for the run
  sim.start();
  sim.run_for(10'000);
  EXPECT_EQ(t.ticks, 5);  // fires at 10,20,30,40,50 and then never again
  EXPECT_TRUE(sim.crashed(0));
}

TEST(CrashTest, CrashAtBetweenRunCallsBelowTheNextEvent) {
  // run_for(100) peeks past the deadline at the next event (t=110); a
  // crash then scheduled at t=105 — between `now` and that peeked event —
  // must still order correctly (regression: the event queue's peek must
  // not commit its cursor past pushable times).
  Simulation sim(2, sync_net());
  auto& t = sim.emplace_process<Ticker>(0, 1);
  sim.emplace_process<Recorder>(1);
  sim.start();
  sim.run_for(100);  // ticks at 10..100; next timer event waits at 110
  EXPECT_EQ(t.ticks, 10);
  sim.crash_at(0, 105);
  sim.run_for(10'000);
  EXPECT_EQ(t.ticks, 10);  // the 110 firing was preempted by the crash
  EXPECT_TRUE(sim.crashed(0));
}

TEST(CrashTest, CrashAtGenesisSuppressesStart) {
  // crash_at(id, 0) means the process never ran: start() must not fire
  // (regression: it used to run synchronously before the t=0 crash event
  // popped, leaking the crashed node's bootstrap messages).
  Simulation sim(2, sync_net());
  auto& t = sim.emplace_process<Ticker>(0, 1);
  auto& r = sim.emplace_process<Recorder>(1);
  sim.crash_at(0, 0);
  sim.start();
  sim.run_for(1'000);
  EXPECT_EQ(t.ticks, 0);
  EXPECT_TRUE(r.deliveries.empty());
  EXPECT_EQ(sim.metrics().messages_sent, 0u);
}

TEST(CrashTest, IsolateKeepsTheProcessRunningUnlikeCrash) {
  // isolate() is the partition-style legacy fault: deliveries stop but the
  // process keeps ticking and sending.
  Simulation sim(2, sync_net());
  auto& t = sim.emplace_process<Ticker>(0, 1);
  sim.emplace_process<Recorder>(1);
  sim.isolate(0);
  sim.start();
  sim.run_for(500);
  EXPECT_GT(t.ticks, 10);  // still running (and still sending)
  EXPECT_GT(sim.metrics().messages_sent, 10u);
}

// ---- activate(id, t): staged participant arrival ----

struct StartRecorder : Process {
  void start() override { started_at = now(); }
  void on_message(ProcessId from, const MessagePtr& msg) override {
    const auto& note = dynamic_cast<const NoteMsg&>(*msg);
    deliveries.push_back({from, note.payload, now()});
  }
  SimTime started_at = -1;
  std::vector<Recorder::Delivery> deliveries;
};

TEST(ActivationTest, DeferredStartAndMailboxFlush) {
  Simulation sim(2, sync_net());
  sim.emplace_process<Sender>(
      0, std::vector<Sender::Planned>{{1, 1, 0}, {1, 2, 100}, {1, 3, 600}});
  auto& late = sim.emplace_process<StartRecorder>(1);
  sim.activate(1, 500);
  sim.start();
  EXPECT_FALSE(sim.active(1));
  sim.run_for(10'000);
  EXPECT_TRUE(sim.active(1));
  EXPECT_EQ(late.started_at, 500);
  ASSERT_EQ(late.deliveries.size(), 3u);
  // The two early messages waited in the mailbox and arrived, in order,
  // right at activation; the post-activation message flowed normally.
  EXPECT_EQ(late.deliveries[0].payload, 1);
  EXPECT_EQ(late.deliveries[0].at, 500);
  EXPECT_EQ(late.deliveries[1].payload, 2);
  EXPECT_EQ(late.deliveries[1].at, 500);
  EXPECT_EQ(late.deliveries[2].payload, 3);
  EXPECT_GE(late.deliveries[2].at, 600 + 1);
}

TEST(ActivationTest, ActivationErrors) {
  Simulation sim(1, sync_net());
  sim.emplace_process<StartRecorder>(0);
  EXPECT_THROW(sim.activate(5, 100), std::out_of_range);
  EXPECT_THROW(sim.activate(0, -1), std::invalid_argument);
  sim.activate(0, 100);
  sim.start();
  EXPECT_THROW(sim.activate(0, 100), std::logic_error);
}

TEST(ActivationTest, RunUntilStrideOnlyCoarsensTheCheck) {
  // Same workload, stride 1 vs 64: both find the predicate, the strided
  // run may only overshoot by < stride events.
  auto run = [](std::size_t stride) {
    Simulation sim(2, sync_net());
    auto& t = sim.emplace_process<Ticker>(0, 1);
    sim.emplace_process<Recorder>(1);
    sim.start();
    const bool ok =
        sim.run_until([&] { return t.ticks >= 20; }, 1'000'000, stride);
    EXPECT_TRUE(ok);
    return t.ticks;
  };
  const int exact = run(1);
  const int strided = run(64);
  EXPECT_EQ(exact, 20);
  EXPECT_GE(strided, 20);
  EXPECT_LT(strided, 20 + 64);
}

}  // namespace
}  // namespace scup::sim
