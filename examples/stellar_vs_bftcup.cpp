// Head-to-head: Stellar+SD (the paper's construction, Corollary 2) vs
// BFT-CUP (the baseline, Theorem 1) on identical knowledge graphs and
// failure placements — the paper's equivalence, measured.
//
// Prints one row per system size: decision latency (simulated ticks) and
// message/byte totals for both protocols. The expected shape: both always
// decide; BFT-CUP spends fewer messages (PBFT runs only inside the sink),
// Stellar's federated voting floods envelopes to every learned peer.
//
// Build & run:  cmake --build build && ./build/examples/stellar_vs_bftcup
#include <cstdio>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"

int main() {
  using namespace scup;

  std::printf(
      "%-6s %-4s | %-28s | %-28s\n"
      "%-6s %-4s | %-13s %-14s | %-13s %-14s\n",
      "n", "f", "Stellar + sink detector", "BFT-CUP (SINK + PBFT)", "", "",
      "t_decide", "messages", "t_decide", "messages");
  std::printf("%s\n", std::string(84, '-').c_str());

  bool all_ok = true;
  for (const auto& [n, f] : std::vector<std::pair<std::size_t, std::size_t>>{
           {8, 1}, {12, 1}, {16, 1}, {16, 2}, {24, 1}, {24, 2}}) {
    graph::KosrGenParams params;
    params.sink_size = n / 2;
    params.non_sink_size = n - n / 2;
    params.k = 2 * f + 1;
    params.seed = 31 * n + f;
    const auto g = graph::random_kosr_graph(params);
    const NodeSet sink = graph::unique_sink_component(g);
    Rng rng(n * 1000 + f);
    const NodeSet faulty =
        graph::pick_safe_faulty_set(g, sink, f, /*allow_in_sink=*/true, rng);

    core::ScenarioReport reports[2];
    for (int which = 0; which < 2; ++which) {
      core::ScenarioConfig cfg;
      cfg.graph = g;
      cfg.f = f;
      cfg.faulty = faulty;
      cfg.protocol = which == 0 ? core::ProtocolKind::kStellarSd
                                : core::ProtocolKind::kBftCup;
      cfg.net.seed = 555 + n;
      reports[which] = core::run_scenario(cfg);
      all_ok = all_ok && reports[which].all_decided &&
               reports[which].agreement && reports[which].validity;
    }
    std::printf("%-6zu %-4zu | t=%-11lld m=%-12zu | t=%-11lld m=%-12zu\n", n,
                f, static_cast<long long>(reports[0].last_decision),
                reports[0].metrics.messages_sent,
                static_cast<long long>(reports[1].last_decision),
                reports[1].metrics.messages_sent);
  }

  std::printf("\n%s\n",
              all_ok ? "SUCCESS: both protocols solved consensus on every "
                       "configuration (same minimal knowledge)."
                     : "FAILURE: some configuration did not reach consensus!");
  return all_ok ? 0 : 1;
}
