#include "core/wire_codecs.hpp"

#include "bftcup/bftcup_node.hpp"
#include "bftcup/pbft.hpp"
#include "cup/messages.hpp"
#include "scp/envelope.hpp"
#include "scp/ledger.hpp"
#include "sim/wire.hpp"

namespace scup::core {

void register_wire_codecs() {
  using sim::WireCodecRegistry;
  WireCodecRegistry::register_type(cup::kWireTypeDiscover, "cup.discover",
                                   &cup::DiscoverMsg::wire_decode);
  WireCodecRegistry::register_type(cup::kWireTypeCertGossip, "cup.certs",
                                   &cup::CertGossipMsg::wire_decode);
  WireCodecRegistry::register_type(cup::kWireTypeKnown, "cup.known",
                                   &cup::KnownMsg::wire_decode);
  WireCodecRegistry::register_type(cup::kWireTypeGetSink, "cup.get_sink",
                                   &cup::GetSinkMsg::wire_decode);
  WireCodecRegistry::register_type(cup::kWireTypeSinkValue, "cup.sink_value",
                                   &cup::SinkValueMsg::wire_decode);
  WireCodecRegistry::register_type(scp::kWireTypeEnvelope, "scp.envelope",
                                   &scp::Envelope::wire_decode);
  WireCodecRegistry::register_type(scp::kWireTypeSlotEnvelope,
                                   "scp.slot_envelope",
                                   &scp::SlotEnvelope::wire_decode);
  WireCodecRegistry::register_type(bftcup::kWireTypePrePrepare,
                                   "pbft.preprepare",
                                   &bftcup::PrePrepareMsg::wire_decode);
  WireCodecRegistry::register_type(bftcup::kWireTypePrepare, "pbft.prepare",
                                   &bftcup::PrepareMsg::wire_decode);
  WireCodecRegistry::register_type(bftcup::kWireTypeCommit, "pbft.commit",
                                   &bftcup::CommitMsg::wire_decode);
  WireCodecRegistry::register_type(bftcup::kWireTypeViewChange,
                                   "pbft.viewchange",
                                   &bftcup::ViewChangeMsg::wire_decode);
  WireCodecRegistry::register_type(bftcup::kWireTypeNewView, "pbft.newview",
                                   &bftcup::NewViewMsg::wire_decode);
  WireCodecRegistry::register_type(bftcup::kWireTypeDecisionRequest,
                                   "bftcup.decision_req",
                                   &bftcup::DecisionRequestMsg::wire_decode);
  WireCodecRegistry::register_type(bftcup::kWireTypeDecision,
                                   "bftcup.decision",
                                   &bftcup::DecisionMsg::wire_decode);
}

}  // namespace scup::core
