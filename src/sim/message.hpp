// Polymorphic message base for the simulator.
//
// Each protocol layer (certificate gossip, SINK discovery, sink detector,
// SCP, PBFT) defines its own Message subclasses and dispatches on them in
// Process::on_message. Messages are immutable once sent and shared between
// the sender's log and all recipients.
//
// The per-send hot path reads two lazily-filled per-object caches instead of
// making virtual calls: metrics_type_id() (interned type name) and
// send_size() (exact encoded frame size for types with a wire codec, the
// memoized byte_size() estimate otherwise). Construction goes through
// make_message(), which draws storage from the owning Simulation's
// MessagePool when one is bound to the calling thread (DESIGN.md §4.9).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/message_pool.hpp"

namespace scup::sim {

class WireWriter;

/// Process-wide interner mapping stable message type names to dense small
/// integer ids. Metrics accounting on the per-send hot path is then a
/// vector index instead of a std::string construction plus two map
/// lookups; names are materialized again only at report time. Ids are
/// assigned on first use and stable for the process lifetime (they are
/// shared across Simulation instances).
class MessageTypeRegistry {
 public:
  static std::uint32_t intern(const std::string& name);
  static const std::string& name_of(std::uint32_t id);
  /// Number of ids handed out so far.
  static std::size_t count();
};

/// Wire type id reserved for "no codec": such types fall back to the
/// virtual byte_size() estimate for traffic accounting and cannot be
/// decoded from bytes.
inline constexpr std::uint16_t kWireTypeNone = 0;

class Message {
 public:
  Message() = default;
  // std::atomic is not copyable; copy the cached value so copied messages
  // keep the interned id (ids are process-wide, so the value transfers).
  // The wire caches are NOT copied: a copy is a distinct object that may be
  // mutated before it is ever sent, so it re-encodes on its own first send.
  Message(const Message& other)
      : metrics_type_id_(
            other.metrics_type_id_.load(std::memory_order_relaxed)) {}
  Message& operator=(const Message& other) {
    metrics_type_id_.store(
        other.metrics_type_id_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    size_cache_.store(kNoCachedSize, std::memory_order_relaxed);
    wire_state_.store(kWireEmpty, std::memory_order_relaxed);
    wire_overflow_.clear();
    return *this;
  }
  virtual ~Message() = default;

  /// Stable name used for metrics aggregation (e.g. "scp.prepare").
  virtual std::string type_name() const = 0;

  /// Approximate wire size in bytes, for traffic accounting of types
  /// without a codec. Types with a codec (wire_type() != kWireTypeNone) are
  /// accounted by their exact encoded frame size instead; their byte_size()
  /// override is a legacy estimate kept for comparison benches.
  virtual std::size_t byte_size() const { return 64; }

  /// Dense process-wide id of this type's wire frame, or kWireTypeNone.
  virtual std::uint16_t wire_type() const { return kWireTypeNone; }

  /// Appends the frame payload (everything after the u16 type header).
  /// Only called when wire_type() != kWireTypeNone; must not throw.
  virtual void wire_encode(WireWriter& /*writer*/) const {}

  /// Interned id of type_name(), computed lazily once per message object —
  /// a broadcast fanning one message out to n destinations interns once
  /// and reads the cached id n-1 times.
  std::uint32_t metrics_type_id() const {
    std::uint32_t id = metrics_type_id_.load(std::memory_order_relaxed);
    if (id == kUninternedTypeId) {
      id = MessageTypeRegistry::intern(type_name());
      metrics_type_id_.store(id, std::memory_order_relaxed);
    }
    return id;
  }

  struct SendSize {
    /// Bytes charged to SimMetrics for one send of this message.
    std::size_t bytes = 0;
    /// True iff this call performed the once-per-message frame encode.
    bool encoded_now = false;
    /// True iff `bytes` is an exact encoded frame size (vs. estimate).
    bool from_codec = false;
  };

  /// Size charged per send: the exact cached frame size when this type has
  /// a codec, else the memoized byte_size() estimate. At most one virtual
  /// call per *message*; every later send is a relaxed atomic load.
  SendSize send_size() const {
    const std::uint32_t cached = size_cache_.load(std::memory_order_relaxed);
    if (cached != kNoCachedSize) {
      return {cached, false,
              wire_state_.load(std::memory_order_relaxed) == kWireReady};
    }
    return send_size_slow();
  }

  /// The cached encoded frame (u16 type header ++ payload), encoding it on
  /// first call. Returns {nullptr, 0} when this type has no codec.
  std::pair<const std::uint8_t*, std::size_t> wire_frame() const;

 private:
  SendSize send_size_slow() const;
  /// Returns true iff this call won the encode race and built the frame.
  bool encode_frame_once() const;

  static constexpr std::uint32_t kUninternedTypeId = 0xffffffffu;
  static constexpr std::uint32_t kNoCachedSize = 0xffffffffu;
  // Encode states: a single winner CASes kWireEmpty -> kWireBuilding,
  // fills the frame storage, then release-stores kWireReady; concurrent
  // senders of a shared message spin on the acquire load (the window is a
  // few hundred nanoseconds and cross-shard resends of one message object
  // are rare).
  static constexpr std::uint32_t kWireEmpty = 0;
  static constexpr std::uint32_t kWireBuilding = 1;
  static constexpr std::uint32_t kWireReady = 2;
  /// Frames at most this large live inline in the message (which itself
  /// lives in the pool slab); larger frames overflow to one heap buffer.
  static constexpr std::size_t kWireInlineCapacity = 104;

  // The caches are per-object state invisible to message semantics. A
  // broadcast message is shared across shard threads in the sharded
  // engine, so the lazy fills are atomics: racing metrics_type_id fills
  // intern the same name and store the same id (the registry is
  // idempotent); racing frame encodes are serialized by wire_state_.
  mutable std::atomic<std::uint32_t> metrics_type_id_{kUninternedTypeId};
  mutable std::atomic<std::uint32_t> size_cache_{kNoCachedSize};
  mutable std::atomic<std::uint32_t> wire_state_{kWireEmpty};
  mutable std::uint32_t wire_size_ = 0;
  mutable std::array<std::uint8_t, kWireInlineCapacity> wire_inline_;
  mutable std::vector<std::uint8_t> wire_overflow_;
};

using MessagePtr = std::shared_ptr<const Message>;

/// The construction chokepoint for every message in the system. When the
/// calling thread is inside a Simulation run loop with pooling enabled
/// (MessagePool::Scope bound), storage comes from the per-Simulation slab
/// pool and steady-state broadcast costs zero allocator round-trips;
/// otherwise this is a plain make_shared. The returned pointer is always a
/// vanilla std::shared_ptr either way — call sites cannot tell the
/// difference, and pooled storage outlives the Simulation if callers keep
/// messages alive past it (the allocator holds the pool state).
template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  if (MessagePool* pool = MessagePool::current()) {
    return std::allocate_shared<const T>(PoolAllocator<T>(*pool),
                                         std::forward<Args>(args)...);
  }
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace scup::sim
