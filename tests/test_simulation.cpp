#include "sim/simulation.hpp"

#include <gtest/gtest.h>

namespace scup::sim {
namespace {

struct PingMsg final : Message {
  explicit PingMsg(int h) : hops(h) {}
  int hops;
  std::string type_name() const override { return "test.ping"; }
  std::size_t byte_size() const override { return 32; }
};

/// Bounces a ping back and forth `max_hops` times.
class PingPong : public Process {
 public:
  PingPong(ProcessId peer, bool initiator, int max_hops)
      : peer_(peer), initiator_(initiator), max_hops_(max_hops) {}

  void start() override {
    if (initiator_) send(peer_, make_message<PingMsg>(1));
  }
  void on_message(ProcessId from, const MessagePtr& msg) override {
    last_sender_ = from;
    const auto& ping = dynamic_cast<const PingMsg&>(*msg);
    received_ = ping.hops;
    if (ping.hops < max_hops_) {
      send(peer_, make_message<PingMsg>(ping.hops + 1));
    }
  }

  int received_ = 0;
  ProcessId last_sender_ = kInvalidProcess;

 private:
  ProcessId peer_;
  bool initiator_;
  int max_hops_;
};

class TimerProcess : public Process {
 public:
  void start() override {
    set_timer(1, 50);
    set_timer(2, 100);
    set_timer(3, 10);
    cancel_timer(3);
  }
  void on_timer(int timer_id) override {
    fired_.push_back({timer_id, now()});
    if (timer_id == 1 && reps_ < 3) {
      ++reps_;
      set_timer(1, 50);
    }
  }
  void on_message(ProcessId, const MessagePtr&) override {}

  std::vector<std::pair<int, SimTime>> fired_;
  int reps_ = 0;
};

NetworkConfig sync_net() {
  NetworkConfig net;
  net.gst = 0;
  net.min_delay = 1;
  net.max_delay = 5;
  net.seed = 42;
  return net;
}

TEST(SimulationTest, PingPongDelivery) {
  Simulation sim(2, sync_net());
  auto& a = sim.emplace_process<PingPong>(0, 1, true, 10);
  auto& b = sim.emplace_process<PingPong>(1, 0, false, 10);
  sim.start();
  sim.run_for(10'000);
  EXPECT_EQ(b.received_, 9);   // b receives odd hops 1..9
  EXPECT_EQ(a.received_, 10);  // a receives even hops 2..10
  EXPECT_EQ(a.last_sender_, 1u);
  EXPECT_EQ(b.last_sender_, 0u);
  EXPECT_EQ(sim.metrics().messages_sent, 10u);
  EXPECT_EQ(sim.metrics().bytes_sent, 320u);
  EXPECT_EQ(sim.metrics().messages_by_type().at("test.ping"), 10u);
}

TEST(SimulationTest, RunUntilPredicate) {
  Simulation sim(2, sync_net());
  auto& a = sim.emplace_process<PingPong>(0, 1, true, 100);
  sim.emplace_process<PingPong>(1, 0, false, 100);
  sim.start();
  const bool ok = sim.run_until([&] { return a.received_ >= 6; }, 100'000);
  EXPECT_TRUE(ok);
  EXPECT_GE(a.received_, 6);
  EXPECT_LT(a.received_, 100);  // stopped early
}

TEST(SimulationTest, RunUntilDeadlineRespected) {
  Simulation sim(2, sync_net());
  sim.emplace_process<PingPong>(0, 1, true, 1'000'000);
  sim.emplace_process<PingPong>(1, 0, false, 1'000'000);
  sim.start();
  const bool ok = sim.run_until([] { return false; }, 500);
  EXPECT_FALSE(ok);
  EXPECT_LE(sim.now(), 500);
}

TEST(SimulationTest, TimersFireAndCancel) {
  Simulation sim(1, sync_net());
  auto& p = sim.emplace_process<TimerProcess>(0);
  sim.start();
  sim.run_for(10'000);
  // Timer 3 was cancelled; timer 1 fires 4 times (initial + 3 reps);
  // timer 2 once.
  int t1 = 0, t2 = 0, t3 = 0;
  for (auto& [tid, when] : p.fired_) {
    if (tid == 1) ++t1;
    if (tid == 2) ++t2;
    if (tid == 3) ++t3;
  }
  EXPECT_EQ(t1, 4);
  EXPECT_EQ(t2, 1);
  EXPECT_EQ(t3, 0);
  // Firing times are exact (timers are not subject to network delay).
  EXPECT_EQ(p.fired_[0].first, 1);
  EXPECT_EQ(p.fired_[0].second, 50);
}

TEST(SimulationTest, RearmingTimerReplacesPending) {
  class Rearm : public Process {
   public:
    void start() override {
      set_timer(7, 100);
      set_timer(7, 300);  // replaces the 100-tick firing
    }
    void on_timer(int) override { fires_.push_back(now()); }
    void on_message(ProcessId, const MessagePtr&) override {}
    std::vector<SimTime> fires_;
  };
  Simulation sim(1, sync_net());
  auto& p = sim.emplace_process<Rearm>(0);
  sim.start();
  sim.run_for(1'000);
  ASSERT_EQ(p.fires_.size(), 1u);
  EXPECT_EQ(p.fires_[0], 300);
}

TEST(SimulationTest, PartialSynchronyDelaysShrinkAfterGst) {
  NetworkConfig net;
  net.gst = 10'000;
  net.min_delay = 1;
  net.max_delay = 5;
  net.pre_gst_max_delay = 2'000;
  net.seed = 7;

  // Measure delivery delays before and after GST with one-shot sends.
  struct Recorder : Process {
    void on_message(ProcessId, const MessagePtr&) override {
      deliveries_.push_back(now());
    }
    std::vector<SimTime> deliveries_;
  };
  struct Sender : Process {
    explicit Sender(SimTime gst) : gst_(gst) {}
    void start() override {
      for (int i = 0; i < 20; ++i) send(1, make_message<PingMsg>(i));
      set_timer(1, gst_ + 1);
    }
    void on_timer(int) override {
      send_time_post_ = now();
      for (int i = 0; i < 20; ++i) send(1, make_message<PingMsg>(i));
    }
    void on_message(ProcessId, const MessagePtr&) override {}
    SimTime gst_;
    SimTime send_time_post_ = 0;
  };

  Simulation sim(2, net);
  auto& sender = sim.emplace_process<Sender>(0, net.gst);
  auto& recorder = sim.emplace_process<Recorder>(1);
  sim.start();
  sim.run_for(100'000);
  ASSERT_EQ(recorder.deliveries_.size(), 40u);
  SimTime max_pre = 0, max_post = 0;
  for (SimTime t : recorder.deliveries_) {
    if (t <= sender.send_time_post_) {
      max_pre = std::max(max_pre, t);
    } else {
      max_post = std::max(max_post, t - sender.send_time_post_);
    }
  }
  EXPECT_GT(max_pre, net.max_delay);  // some pre-GST message was slow
  EXPECT_LE(max_post, net.max_delay);
}

TEST(SimulationTest, IsolatedProcessReceivesNothing) {
  Simulation sim(2, sync_net());
  sim.emplace_process<PingPong>(0, 1, true, 100);
  auto& b = sim.emplace_process<PingPong>(1, 0, false, 100);
  sim.isolate(1);
  sim.start();
  sim.run_for(10'000);
  EXPECT_EQ(b.received_, 0);
}

TEST(SimulationTest, InstallationErrors) {
  Simulation sim(2, sync_net());
  sim.emplace_process<PingPong>(0, 1, true, 1);
  EXPECT_THROW(sim.start(), std::logic_error);  // process 1 missing
  sim.emplace_process<PingPong>(1, 0, false, 1);
  sim.start();
  EXPECT_THROW(sim.start(), std::logic_error);  // double start
  EXPECT_THROW(sim.emplace_process<PingPong>(1, 0, false, 1),
               std::logic_error);  // install after start
}

TEST(SimulationTest, DeterministicGivenSeed) {
  auto run = [] {
    Simulation sim(2, sync_net());
    sim.emplace_process<PingPong>(0, 1, true, 50);
    sim.emplace_process<PingPong>(1, 0, false, 50);
    sim.start();
    sim.run_for(1'000'000);
    return sim.now();
  };
  EXPECT_EQ(run(), run());
}

TEST(CalendarQueueTest, PopsInTimeThenSeqOrderAcrossTiers) {
  // An overflow-tier event and a later direct push can land on the same
  // tick; pop order must still be (time, seq) — the overflow event
  // migrates as soon as the cursor advance brings it inside the horizon,
  // before any same-tick direct push can get ahead of it.
  constexpr SimTime kFar = static_cast<SimTime>(CalendarQueue::kRingSize) + 76;
  auto ev = [](SimTime t, std::uint64_t seq) {
    Event e;
    e.time = t;
    e.seq = seq;
    e.kind = EventKind::kTimer;
    return e;
  };
  CalendarQueue q;
  q.push(ev(10, 0));
  q.push(ev(kFar, 1));  // beyond the horizon: overflow tier
  EXPECT_EQ(q.next_time(), 10);
  EXPECT_EQ(q.pop().seq, 0u);
  q.push(ev(600, 2));
  EXPECT_EQ(q.pop().seq, 2u);  // cursor at 600: kFar is inside the horizon
  q.push(ev(kFar, 3));         // same tick as the overflow event
  EXPECT_EQ(q.pop().seq, 1u);  // smaller seq pops first
  EXPECT_EQ(q.pop().seq, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(NotaryTest, SignVerifyRoundtrip) {
  Notary notary(4, 99);
  const auto t = notary.sign(2, 0xDEADBEEF);
  EXPECT_TRUE(notary.verify(2, 0xDEADBEEF, t));
  EXPECT_FALSE(notary.verify(1, 0xDEADBEEF, t));   // wrong signer
  EXPECT_FALSE(notary.verify(2, 0xDEADBEEE, t));   // wrong statement
  EXPECT_FALSE(notary.verify(2, 0xDEADBEEF, t ^ 1));  // tampered token
  EXPECT_FALSE(notary.verify(9, 0xDEADBEEF, t));   // unknown signer
}

TEST(NotaryTest, DistinctSignersDistinctTokens) {
  Notary notary(4, 99);
  EXPECT_NE(notary.sign(0, 1), notary.sign(1, 1));
  EXPECT_NE(notary.sign(0, 1), notary.sign(0, 2));
}

}  // namespace
}  // namespace scup::sim
