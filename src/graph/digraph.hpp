// Directed graph over process ids, used to model knowledge connectivity
// graphs (Definition 5 of the paper): vertex set = Π, edge (i, j) iff
// j ∈ PD_i ("i knows j").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/node_set.hpp"
#include "common/types.hpp"

namespace scup::graph {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t n);

  std::size_t node_count() const { return n_; }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds edge u -> v. Self-loops are ignored; duplicate edges are ignored.
  void add_edge(ProcessId u, ProcessId v);
  bool has_edge(ProcessId u, ProcessId v) const;

  const std::vector<ProcessId>& successors(ProcessId u) const;
  const std::vector<ProcessId>& predecessors(ProcessId u) const;

  NodeSet successor_set(ProcessId u) const;
  NodeSet predecessor_set(ProcessId u) const;

  std::size_t out_degree(ProcessId u) const { return successors(u).size(); }
  std::size_t in_degree(ProcessId u) const { return predecessors(u).size(); }

  /// Graph with all edges reversed.
  Digraph reversed() const;

  /// Symmetric closure: for every edge u->v adds v->u. This is the
  /// undirected graph G obtained from G_di in the paper.
  Digraph undirected_closure() const;

  /// Subgraph induced by `keep`: same vertex ids, but only edges with both
  /// endpoints in `keep`. Vertices outside `keep` become isolated. This
  /// implements "G_di \ F" from Definition 7 (with keep = Π \ F).
  Digraph induced_subgraph(const NodeSet& keep) const;

  /// Set of nodes reachable from `start` following directed edges,
  /// restricted to `active` nodes (start must be active; otherwise empty).
  NodeSet reachable_from(ProcessId start, const NodeSet& active) const;
  NodeSet reachable_from(ProcessId start) const;

  /// Multi-source variant: nodes reachable from any member of `starts`
  /// (sources outside `active` are ignored). One BFS over the union, so the
  /// cost is O(V + E) regardless of |starts| — used by incremental
  /// discovery to bound the set of nodes a batch of new edges can affect.
  NodeSet reachable_from_any(const NodeSet& starts, const NodeSet& active) const;

  /// The participant-detector view: PD_i = successors of i as a NodeSet.
  NodeSet pd_of(ProcessId i) const { return successor_set(i); }

  std::string to_string() const;

 private:
  void check_node(ProcessId u) const;

  std::size_t n_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<std::vector<ProcessId>> succ_;
  std::vector<std::vector<ProcessId>> pred_;
  std::vector<NodeSet> succ_set_;  // for O(1) has_edge
};

}  // namespace scup::graph
