// PBFT tests: the sink-internal consensus of the BFT-CUP baseline.
#include "bftcup/pbft.hpp"

#include <gtest/gtest.h>

#include "core/adversaries.hpp"
#include "sim/composed.hpp"
#include "sim/simulation.hpp"

namespace scup::bftcup {
namespace {

class PbftOnlyNode : public sim::ComposedNode {
 public:
  PbftOnlyNode(NodeSet members, std::size_t f, Value value)
      : ComposedNode(f), members_(std::move(members)), value_(value) {}

  void start() override {
    pbft_ = std::make_unique<PbftConsensus>(*this, members_);
    pbft_->start(value_);
  }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    pbft_->handle(from, *msg);
  }
  void on_timer(int timer_id) override {
    if (timer_id == kPbftTimerId) pbft_->on_view_timer();
  }

  std::unique_ptr<PbftConsensus> pbft_;

 private:
  NodeSet members_;
  Value value_;
};

struct PbftHarness {
  PbftHarness(std::size_t n, std::size_t f, const NodeSet& faulty,
              std::uint64_t seed = 1, SimTime gst = 0) {
    sim::NetworkConfig net;
    net.gst = gst;
    net.min_delay = 1;
    net.max_delay = 10;
    net.pre_gst_max_delay = 500;
    net.seed = seed;
    sim = std::make_unique<sim::Simulation>(n, net);
    nodes.assign(n, nullptr);
    const NodeSet members = NodeSet::full(n);
    for (ProcessId i = 0; i < n; ++i) {
      if (faulty.contains(i)) {
        sim->emplace_process<core::SilentNode>(i);
        continue;
      }
      nodes[i] = &sim->emplace_process<PbftOnlyNode>(i, members, f, 100 + i);
    }
    correct = faulty.complement();
  }

  bool run(SimTime deadline = 1'000'000) {
    sim->start();
    return sim->run_until(
        [&] {
          for (ProcessId i : correct) {
            if (!nodes[i]->pbft_->decided()) return false;
          }
          return true;
        },
        deadline);
  }

  void check_agreement(std::size_t n) {
    std::optional<Value> agreed;
    for (ProcessId i : correct) {
      ASSERT_TRUE(nodes[i]->pbft_->decided()) << "i=" << i;
      if (!agreed) agreed = nodes[i]->pbft_->decision();
      EXPECT_EQ(*agreed, nodes[i]->pbft_->decision());
    }
    // Validity (here all proposers are correct or silent): the decided
    // value is some process's proposal.
    EXPECT_GE(*agreed, 100u);
    EXPECT_LT(*agreed, 100 + n);
  }

  std::unique_ptr<sim::Simulation> sim;
  std::vector<PbftOnlyNode*> nodes;
  NodeSet correct;
};

TEST(PbftTest, QuorumSizeMatchesPaperFormula) {
  sim::Simulation sim(5, {});
  auto& node =
      sim.emplace_process<PbftOnlyNode>(0, NodeSet::full(5), 1, 7);
  for (ProcessId i = 1; i < 5; ++i) {
    sim.emplace_process<core::SilentNode>(i);
  }
  sim.start();
  // |S| = 5, f = 1: q = ceil((5+1+1)/2) = 4.
  EXPECT_EQ(node.pbft_->quorum_size(), 4u);
  EXPECT_EQ(node.pbft_->leader_of(0), 0u);
  EXPECT_EQ(node.pbft_->leader_of(7), 2u);
}

TEST(PbftTest, MemberValidation) {
  sim::Simulation sim(4, {});
  // self not a member
  EXPECT_THROW(sim.emplace_process<PbftOnlyNode>(0, NodeSet(4, {1, 2, 3}), 1,
                                                 7)
                   .start(),
               std::invalid_argument);
  // too few members for f
  EXPECT_THROW(
      sim.emplace_process<PbftOnlyNode>(1, NodeSet(4, {1, 2}), 1, 7).start(),
      std::invalid_argument);
}

TEST(PbftTest, AllCorrectFastPath) {
  PbftHarness h(4, 1, NodeSet(4));
  ASSERT_TRUE(h.run());
  h.check_agreement(4);
  // With a correct leader nobody should have moved past view 0.
  for (ProcessId i = 0; i < 4; ++i) {
    EXPECT_EQ(h.nodes[i]->pbft_->view(), 0u);
  }
  // Leader's value wins in view 0.
  EXPECT_EQ(h.nodes[0]->pbft_->decision(), 100u);
}

TEST(PbftTest, SilentReplicaTolerated) {
  PbftHarness h(4, 1, NodeSet(4, {2}));
  ASSERT_TRUE(h.run());
  h.check_agreement(4);
}

TEST(PbftTest, SilentLeaderForcesViewChange) {
  // Process 0 (view-0 leader) is silent; the protocol must rotate.
  PbftHarness h(4, 1, NodeSet(4, {0}));
  ASSERT_TRUE(h.run());
  h.check_agreement(4);
  for (ProcessId i : h.correct) {
    EXPECT_GE(h.nodes[i]->pbft_->view(), 1u);
  }
}

TEST(PbftTest, SevenNodesTwoSilentIncludingLeader) {
  PbftHarness h(7, 2, NodeSet(7, {0, 1}));
  ASSERT_TRUE(h.run());
  h.check_agreement(7);
  for (ProcessId i : h.correct) {
    EXPECT_GE(h.nodes[i]->pbft_->view(), 2u);
  }
}

TEST(PbftTest, DecidesUnderPreGstAsynchrony) {
  PbftHarness h(4, 1, NodeSet(4, {3}), /*seed=*/5, /*gst=*/4'000);
  ASSERT_TRUE(h.run());
  h.check_agreement(4);
}

// Property sweep: sizes 4..9, random silent failure sets (possibly
// including several leaders), random seeds.
class PbftPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftPropertyTest, AgreementAndTermination) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 101 + 3);
  const std::size_t n = 4 + rng.uniform(6);
  const std::size_t f = (n - 1) / 3;
  NodeSet faulty(n);
  for (ProcessId p : rng.sample_ids(n, rng.uniform(f + 1))) faulty.add(p);
  PbftHarness h(n, f, faulty, seed, /*gst=*/seed % 3 == 0 ? 2'000 : 0);
  ASSERT_TRUE(h.run()) << "n=" << n << " faulty=" << faulty.to_string();
  h.check_agreement(n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace scup::bftcup
