// Signature simulation.
//
// The paper's model assumes authenticated channels and (implicitly, via the
// BFT-CUP substrate) the ability to present unforgeable evidence of what
// other processes said (e.g. PBFT view-change certificates). Instead of real
// cryptography we keep a per-process secret inside the simulator: a token is
// a keyed hash of (secret, statement). Correct processes sign only their own
// statements through Process-level helpers; Byzantine implementations can
// replay tokens they have observed but cannot mint tokens for other
// processes (they never see the secrets).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace scup::sim {

class Notary {
 public:
  using Token = std::uint64_t;

  Notary(std::size_t n, std::uint64_t seed);

  /// Token binding `signer` to `statement`.
  Token sign(ProcessId signer, std::uint64_t statement) const;

  bool verify(ProcessId signer, std::uint64_t statement, Token token) const;

 private:
  std::vector<std::uint64_t> secrets_;
};

}  // namespace scup::sim
