// E4 — Theorem 4: quorum availability. With Algorithm-2 slices, every
// correct process has a quorum made entirely of correct processes, for any
// failure placement with |F| <= f, provided the sink keeps >= 2f+1 correct
// members.
//
// The bench sweeps |V_sink| and f, enumerates every failure placement
// inside the sink (the hard case: non-sink failures never affect quorum
// availability of others), and reports the fraction of (placement, process)
// pairs with an all-correct quorum — expected 1.0. Placements are
// independent cells, so the sweep runs on core::parallel_cells (the
// ScenarioMatrix thread pool); the `threads` arg picks the pool size and
// the counters are thread-count-invariant. It also measures the
// quorum-closure search cost.
#include "bench_common.hpp"

#include "core/scenario_matrix.hpp"

namespace scup {
namespace {

/// All faulty subsets of `sink` of size exactly f.
std::vector<NodeSet> sink_placements(const NodeSet& sink, std::size_t f,
                                     std::size_t n) {
  std::vector<NodeSet> placements;
  const std::vector<ProcessId> members = sink.to_vector();
  if (f == 0 || f > members.size()) {
    placements.emplace_back(n);
    return placements;
  }
  std::vector<std::size_t> index(f);
  for (std::size_t i = 0; i < f; ++i) index[i] = i;
  while (true) {
    NodeSet faulty(n);
    for (std::size_t i : index) faulty.add(members[i]);
    placements.push_back(std::move(faulty));
    std::size_t pos = f;
    bool advanced = false;
    while (pos > 0) {
      --pos;
      if (index[pos] + (f - pos) < members.size()) {
        ++index[pos];
        for (std::size_t j = pos + 1; j < f; ++j) index[j] = index[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return placements;
}

void BM_Availability_AllSinkPlacements(benchmark::State& state) {
  const std::size_t sink_size = static_cast<std::size_t>(state.range(0));
  const std::size_t f = static_cast<std::size_t>(state.range(1));
  const std::size_t threads = static_cast<std::size_t>(state.range(2));
  const std::size_t n = sink_size + 2;
  NodeSet sink(n);
  for (ProcessId i = 0; i < sink_size; ++i) sink.add(i);
  const auto sys = bench::algorithm2_system(n, sink, f);
  const std::vector<NodeSet> placements = sink_placements(sink, f, n);

  std::size_t checked = 0, available = 0;
  for (auto _ : state) {
    // One cell per failure placement; cells only write their own slot.
    std::vector<std::pair<std::size_t, std::size_t>> per_cell(
        placements.size());
    core::parallel_cells(placements.size(), threads, [&](std::size_t c) {
      const NodeSet& faulty = placements[c];
      auto& [cell_checked, cell_available] = per_cell[c];
      cell_checked = cell_available = 0;
      if (sink.count() - faulty.count() < 2 * f + 1) return;
      const NodeSet w = faulty.complement();
      for (ProcessId i : w) {
        ++cell_checked;
        if (sys.find_quorum_for(i, w).has_value()) ++cell_available;
      }
    });
    checked = available = 0;
    for (const auto& [cell_checked, cell_available] : per_cell) {
      checked += cell_checked;
      available += cell_available;
    }
    benchmark::DoNotOptimize(available);
  }
  state.counters["pairs_checked"] = static_cast<double>(checked);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["availability_rate"] =
      checked == 0 ? 1.0
                   : static_cast<double>(available) / static_cast<double>(checked);
}
BENCHMARK(BM_Availability_AllSinkPlacements)
    ->ArgNames({"sink", "f", "threads"})
    ->ArgsProduct({{4, 5, 6, 7}, {1}, {1}})
    ->Args({7, 2, 1})
    ->Args({8, 2, 1})
    ->Args({8, 2, 8});

void BM_Availability_InsufficientSinkViolates(benchmark::State& state) {
  // Control experiment: when the sink has only 2f correct members, Theorem
  // 4's precondition fails and availability is indeed lost for sink
  // members (the theorem is tight).
  const std::size_t f = 1;
  const std::size_t sink_size = 2 * f + 1;  // 3 members...
  const std::size_t n = sink_size + 1;
  NodeSet sink(n);
  for (ProcessId i = 0; i < sink_size; ++i) sink.add(i);
  const auto sys = bench::algorithm2_system(n, sink, f);
  // ...but f of them fail: only 2f = 2 correct remain, below 2f+1.
  NodeSet faulty(n, {0});
  const NodeSet w = faulty.complement();
  bool any_unavailable = false;
  for (auto _ : state) {
    any_unavailable = false;
    for (ProcessId i : w) {
      if (!sys.find_quorum_for(i, w).has_value()) any_unavailable = true;
    }
    benchmark::DoNotOptimize(any_unavailable);
  }
  state.counters["tightness_shown"] = any_unavailable ? 1 : 0;
}
BENCHMARK(BM_Availability_InsufficientSinkViolates);

void BM_Availability_ClosureCostLargeScale(benchmark::State& state) {
  // Pure cost of the greatest-fixpoint quorum search at larger n (threshold
  // slices are closed-form, so this scales well beyond enumeration).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = 3;
  NodeSet sink(n);
  for (ProcessId i = 0; i < n / 2; ++i) sink.add(i);
  const auto sys = bench::algorithm2_system(n, sink, f);
  NodeSet faulty(n);
  for (ProcessId i = 0; i < f; ++i) faulty.add(i);
  const NodeSet w = faulty.complement();
  for (auto _ : state) {
    for (ProcessId i : w) {
      benchmark::DoNotOptimize(sys.find_quorum_for(i, w));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.count()));
}
BENCHMARK(BM_Availability_ClosureCostLargeScale)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E4");
