// E13 — multi-slot ledger throughput on the memoizing QuorumEngine.
//
// A LedgerNode chain runs one SCP instance per slot; before the
// QuorumEngine, every federated_accept/federated_ratify re-gathered support
// from both envelope maps and re-ran the Algorithm-1 closure from scratch —
// per candidate ballot, per envelope, per slot. This bench closes 50-slot
// chains at n ∈ {16, 64, 128} (k-OSR graphs, sink fraction 1/2, f = 1,
// silent Byzantine placement) and reports, alongside wall time:
//  - slots_per_sec       chain throughput (slots × cells per wall second),
//  - qset_evals          flattened QSet evaluations actually run,
//  - qset_evals_baseline what the rescan baseline would have run for the
//                        same query stream (counted by the same code path;
//                        cache hits charge the baseline the stored cost of
//                        the original closure run),
//  - rescan_savings      their ratio (the E13 acceptance bar is ≥ 10×),
//  - closure_runs / closure_cache_hits / interned_qsets / support_updates,
//  - chains_agree        every correct replica closed the identical chain
//                        (byte-equal chain_digest),
// plus message/byte traffic. The MatrixIdentity rows run the seed sweep
// through the scenario-matrix thread pool and prove serial == parallel
// cell-by-cell (digests, decisions, engine counters), so the numbers are
// thread-count-invariant.
#include "bench_common.hpp"

#include <algorithm>

#include "core/adversaries.hpp"
#include "core/ledger_node.hpp"
#include "core/scenario_matrix.hpp"
#include "sim/simulation.hpp"

namespace scup {
namespace {

struct ChainRun {
  bool all_decided = true;
  bool chains_agree = true;
  std::uint64_t digest = 0;
  fbqs::QuorumEngineStats stats;  // summed over correct replicas
  std::size_t interned = 0;       // summed over correct replicas
  std::size_t messages = 0;
  std::size_t bytes = 0;
  SimTime last_tick = 0;
  sim::SimMetrics metrics;

  bool operator==(const ChainRun&) const = default;
};

ChainRun run_chain(std::size_t n, std::size_t f, std::size_t slots,
                   std::uint64_t seed) {
  core::LargeScaleParams params;
  params.n = n;
  params.f = f;
  params.seed = seed;
  const core::ScenarioConfig cfg = core::large_scale_scenario(params);
  const NodeSet correct = cfg.faulty.complement();

  sim::Simulation sim(n, cfg.net);
  std::vector<core::LedgerNode*> nodes(n, nullptr);
  for (ProcessId i = 0; i < n; ++i) {
    if (cfg.faulty.contains(i)) {
      sim.emplace_process<core::SilentNode>(i);
    } else {
      nodes[i] = &sim.emplace_process<core::LedgerNode>(i, cfg.graph.pd_of(i),
                                                        f, slots);
      // Contended but bounded proposal space: 16 distinct proposals per
      // slot. The default per-node provider makes echo-all nomination
      // traffic grow ~n³ per slot (every replica keeps discovering new
      // values to re-announce), which measures nomination chatter, not the
      // federated-voting path this experiment targets; 16 contending
      // proposals keep nomination adversarial while the per-slot value
      // space stays fixed as n grows.
      nodes[i]->set_value_provider([i, seed](std::uint64_t slot) {
        return hash_mix(0xE13, seed ^ slot, i % 16) | 1;
      });
    }
  }
  sim.start();
  sim.run_until(
      [&] {
        for (ProcessId i : correct) {
          if (nodes[i]->decided_slots() < slots) return false;
        }
        return true;
      },
      cfg.deadline * 4, /*stride=*/64);

  ChainRun r;
  const ProcessId first = correct.min_member();
  r.digest = nodes[first]->chain_digest();
  for (ProcessId i : correct) {
    if (nodes[i]->decided_slots() < slots) r.all_decided = false;
    if (nodes[i]->chain_digest() != r.digest) r.chains_agree = false;
    const auto& s = nodes[i]->quorum_stats();
    r.stats.qset_evals += s.qset_evals;
    r.stats.qset_evals_baseline += s.qset_evals_baseline;
    r.stats.closure_runs += s.closure_runs;
    r.stats.closure_cache_hits += s.closure_cache_hits;
    r.stats.intern_hits += s.intern_hits;
    r.stats.support_updates += s.support_updates;
    r.stats.support_rebuilds += s.support_rebuilds;
    r.interned += nodes[i]->ledger().engine().interned_count();
  }
  r.messages = sim.metrics().messages_sent;
  r.bytes = sim.metrics().bytes_sent;
  r.last_tick = sim.now();
  r.metrics = sim.metrics();
  return r;
}

void report_chain(benchmark::State& state, const ChainRun& r,
                  std::size_t slots, std::size_t cells) {
  state.counters["slots_per_sec"] = benchmark::Counter(
      static_cast<double>(slots * cells),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["qset_evals"] = static_cast<double>(r.stats.qset_evals);
  state.counters["qset_evals_baseline"] =
      static_cast<double>(r.stats.qset_evals_baseline);
  state.counters["rescan_savings"] =
      r.stats.qset_evals == 0
          ? 0.0
          : static_cast<double>(r.stats.qset_evals_baseline) /
                static_cast<double>(r.stats.qset_evals);
  state.counters["closure_runs"] = static_cast<double>(r.stats.closure_runs);
  state.counters["closure_cache_hits"] =
      static_cast<double>(r.stats.closure_cache_hits);
  state.counters["support_updates"] =
      static_cast<double>(r.stats.support_updates);
  state.counters["interned_qsets"] = static_cast<double>(r.interned);
  state.counters["all_decided"] = r.all_decided ? 1 : 0;
  state.counters["chains_agree"] = r.chains_agree ? 1 : 0;
  state.counters["messages"] = static_cast<double>(r.messages);
  state.counters["kilobytes"] = static_cast<double>(r.bytes) / 1024.0;
  state.counters["sim_ticks"] = static_cast<double>(r.last_tick);
}

void BM_LedgerThroughput_Sweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto slots = static_cast<std::size_t>(state.range(1));
  ChainRun r;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    r = run_chain(n, /*f=*/1, slots, seed++);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["slots"] = static_cast<double>(slots);
  report_chain(state, r, slots, /*cells=*/1);
}
BENCHMARK(BM_LedgerThroughput_Sweep)
    ->ArgNames({"n", "slots"})
    ->Args({16, 50})
    ->Args({64, 50})
    ->Args({128, 50})
    ->Unit(benchmark::kMillisecond);

void BM_LedgerThroughput_MatrixIdentity(benchmark::State& state) {
  // The seed sweep through the scenario-matrix thread pool. Cells are
  // self-contained deterministic simulations, so the pooled run must be
  // bit-identical to the serial one — digests, decisions, engine counters
  // and SimMetrics compare equal cell-by-cell.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto slots = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};

  std::vector<ChainRun> serial(seeds.size());
  core::parallel_cells(seeds.size(), 1, [&](std::size_t i) {
    serial[i] = run_chain(n, 1, slots, seeds[i]);
  });

  std::vector<ChainRun> pooled(seeds.size());
  for (auto _ : state) {
    core::parallel_cells(seeds.size(), threads, [&](std::size_t i) {
      pooled[i] = run_chain(n, 1, slots, seeds[i]);
    });
    benchmark::DoNotOptimize(pooled);
  }

  std::size_t identical = 0;
  ChainRun total;
  total.metrics = {};
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (serial[i] == pooled[i]) ++identical;
    total.all_decided = total.all_decided && pooled[i].all_decided;
    total.chains_agree = total.chains_agree && pooled[i].chains_agree;
    total.stats.qset_evals += pooled[i].stats.qset_evals;
    total.stats.qset_evals_baseline += pooled[i].stats.qset_evals_baseline;
    total.stats.closure_runs += pooled[i].stats.closure_runs;
    total.stats.closure_cache_hits += pooled[i].stats.closure_cache_hits;
    total.stats.support_updates += pooled[i].stats.support_updates;
    total.interned += pooled[i].interned;
    total.messages += pooled[i].messages;
    total.bytes += pooled[i].bytes;
    total.last_tick = std::max(total.last_tick, pooled[i].last_tick);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["slots"] = static_cast<double>(slots);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cells"] = static_cast<double>(seeds.size());
  state.counters["identical_cells"] = static_cast<double>(identical);
  report_chain(state, total, slots, seeds.size());
}
BENCHMARK(BM_LedgerThroughput_MatrixIdentity)
    ->ArgNames({"n", "slots", "threads"})
    ->Args({16, 50, 8})
    ->Args({64, 20, 8})
    ->UseRealTime()  // cells run on pool threads; rate by wall clock
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E13");
