// Multi-slot SCP: a ledger of consecutive consensus instances.
//
// The paper analyzes a single consensus instance ("Our analysis is for a
// single instance of consensus", Section III-A); a blockchain closes one
// instance per ledger slot. LedgerMultiplexer runs a chain of independent
// ScpNode instances, one per slot:
//  - outgoing envelopes are wrapped in SlotEnvelope{slot, envelope};
//  - each slot gets its own timer id (kLedgerTimerBase + slot);
//  - slot k starts when slot k-1 externalizes (value from a caller-supplied
//    provider, e.g. the next transaction batch);
//  - envelopes for not-yet-started slots are buffered by the slot's ScpNode
//    (lazily created), so fast peers cannot outrun slow ones.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "scp/scp_node.hpp"

namespace scup::scp {

inline constexpr int kLedgerTimerBase = 10'000;

struct SlotEnvelope final : sim::Message {
  SlotEnvelope(std::uint64_t s, Envelope e) : slot(s), envelope(std::move(e)) {}
  std::uint64_t slot;
  Envelope envelope;
  std::string type_name() const override {
    return "scp.slot." + envelope.type_name().substr(4);
  }
  std::size_t byte_size() const override { return 8 + envelope.byte_size(); }
};

class LedgerMultiplexer {
 public:
  /// `target_slots` — stop opening new slots after this many decisions
  /// (0 = unbounded).
  LedgerMultiplexer(sim::ProtocolHost& host, std::size_t universe,
                    fbqs::QSet qset, std::size_t target_slots,
                    ScpConfig scp_config = {});

  /// Supplies the proposal for each slot (must be non-zero). Required
  /// before start().
  std::function<Value(std::uint64_t slot)> value_provider;

  /// Fired once per decided slot, in slot order.
  std::function<void(std::uint64_t slot, Value value)> on_slot_decided;

  void set_qset(fbqs::QSet qset);
  void add_peer(ProcessId peer);

  /// Starts slot 1.
  void start();
  bool started() const { return started_; }

  bool handle(ProcessId from, const sim::Message& msg);

  /// Routes ledger timer ids; returns true if the id belonged to a slot.
  bool on_timer(int timer_id);

  /// Number of consecutively decided slots (1..k all externalized).
  std::uint64_t decided_slots() const;
  bool slot_decided(std::uint64_t slot) const;
  Value slot_decision(std::uint64_t slot) const;

  /// Running hash of decisions 1..decided_slots(), for chain-equality
  /// checks across replicas.
  std::uint64_t chain_digest() const;

  /// Introspection for tests: the ScpNode of a slot, or nullptr.
  const ScpNode* slot_node(std::uint64_t slot) const;

 private:
  /// Per-slot host shim: namespaces messages and timers by slot.
  class SlotHost final : public sim::ProtocolHost {
   public:
    SlotHost(LedgerMultiplexer& mux, std::uint64_t slot)
        : mux_(mux), slot_(slot) {}
    ProcessId self() const override { return mux_.host_.self(); }
    std::size_t universe() const override { return mux_.host_.universe(); }
    std::size_t fault_threshold() const override {
      return mux_.host_.fault_threshold();
    }
    void host_send(ProcessId to, sim::MessagePtr msg) override;
    void host_set_timer(int timer_id, SimTime delay) override;
    SimTime host_now() const override { return mux_.host_.host_now(); }
    std::uint64_t host_sign(std::uint64_t statement) const override {
      return mux_.host_.host_sign(statement);
    }
    bool host_verify(ProcessId signer, std::uint64_t statement,
                     std::uint64_t token) const override {
      return mux_.host_.host_verify(signer, statement, token);
    }

   private:
    LedgerMultiplexer& mux_;
    std::uint64_t slot_;
  };

  struct Slot {
    std::unique_ptr<SlotHost> shim;
    std::unique_ptr<ScpNode> node;
  };

  Slot& ensure_slot(std::uint64_t slot);
  void start_slot(std::uint64_t slot);
  void on_decided(std::uint64_t slot, Value value);

  sim::ProtocolHost& host_;
  std::size_t universe_;
  fbqs::QSet qset_;
  std::size_t target_slots_;
  ScpConfig scp_config_;
  NodeSet peers_;
  bool started_ = false;
  std::uint64_t next_to_start_ = 1;
  std::map<std::uint64_t, Slot> slots_;
  std::map<std::uint64_t, Value> decisions_;
};

}  // namespace scup::scp
