// QuorumEngine — the shared evaluation layer for federated voting.
//
// Production SCP implementations do not re-walk quorum-set trees on every
// federated-voting check; they intern quorum sets once (replicas
// overwhelmingly share identical configurations) and memoize the expensive
// transitive checks. This engine provides the same three services to every
// SCP slot of a process:
//
//  1. Hash-consed QSet interning: structurally identical QSets get one
//     QSetId; "did this sender's qset change?" becomes an id compare, and a
//     LedgerMultiplexer running hundreds of slots stores each distinct qset
//     once instead of once per (slot, sender).
//  2. A flattened, non-recursive evaluation form: each interned QSet is
//     compiled into a post-order array of threshold nodes (children before
//     parents), so satisfied_by / blocked_by are two tight loops over
//     contiguous memory — no pointer chasing, no recursion, no risk from
//     adversarially deep nesting at evaluation time.
//  3. Algorithm-1 closure with memoization: quorum_contains() runs the
//     greatest-fixpoint member-removal loop and caches the verdict keyed on
//     the support-set fingerprint. Different predicates that gather the same
//     support set (the common case inside one ScpNode::advance() fixpoint —
//     many candidate ballots, one set of believers) share a single closure
//     run. The cache is owned by the caller (one per slot) because the
//     verdict also depends on the caller's per-sender qset assignment; the
//     caller clears it whenever any tracked qset id changes.
//
// All work is counted in QuorumEngineStats, E11-style: `qset_evals` is what
// we actually paid, `qset_evals_baseline` is what the rescan-everything
// baseline would have paid for the same query stream (on a cache hit the
// stored cost of the original run is charged to the baseline only).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/node_set.hpp"
#include "fbqs/qset.hpp"

namespace scup::fbqs {

/// Dense id of an interned QSet within one QuorumEngine.
using QSetId = std::uint32_t;
inline constexpr QSetId kNoQSetId = 0xffff'ffffu;

struct QuorumEngineStats {
  /// Flattened QSet evaluations actually run (satisfied_by + blocked_by).
  std::uint64_t qset_evals = 0;
  /// Evaluations the recompute-every-check baseline would have run.
  std::uint64_t qset_evals_baseline = 0;
  /// Algorithm-1 closures executed (cache misses).
  std::uint64_t closure_runs = 0;
  /// Closure verdicts served from a support-fingerprint cache.
  std::uint64_t closure_cache_hits = 0;
  /// intern() calls resolved to an already-interned id.
  std::uint64_t intern_hits = 0;
  /// Incremental support-view maintenance (bumped by ScpNode; kept here so
  /// a shared engine aggregates them across slots).
  std::uint64_t support_updates = 0;
  std::uint64_t support_rebuilds = 0;

  bool operator==(const QuorumEngineStats&) const = default;
};

class QuorumEngine {
 public:
  QuorumEngine() = default;

  /// Hash-conses `q`: returns the existing id when a structurally equal
  /// QSet was interned before, otherwise compiles the flattened form.
  QSetId intern(const QSet& q);

  const QSet& qset(QSetId id) const { return interned_[id].qset; }
  std::size_t interned_count() const { return interned_.size(); }

  /// Flattened equivalents of QSet::satisfied_by / QSet::blocked_by.
  /// Each call counts one qset_eval (and one baseline eval: the rescan
  /// baseline ran exactly one such evaluation per check too). These are
  /// the raw entry points; blocked_for / quorum_contains are the memoized
  /// ones the SCP hot path uses.
  bool satisfied_by(QSetId id, const NodeSet& nodes);
  bool blocked_by(QSetId id, const NodeSet& nodes);

  /// blocked_by with a per-qset monotone memo (blocked_by is monotone in
  /// `nodes`: supersets of a blocking set block, subsets of a non-blocking
  /// set don't). Keyed by the immutable QSetId, so the memo is shared by
  /// every slot evaluating against the same interned qset and never needs
  /// invalidation. A hit costs zero evaluations while the rescan baseline
  /// still pays its one evaluation per check.
  bool blocked_for(QSetId id, const NodeSet& nodes);

  /// Algorithm-1 closure membership: starting from `support`, repeatedly
  /// removes members whose qset (qset_ids[member]; kNoQSetId members are
  /// removed) is not satisfied by the surviving set, and reports whether
  /// `member` survives the greatest fixpoint.
  ///
  /// Memoized engine-wide with SELF-VALIDATING entries: a verdict for
  /// support S depends only on (member, S, qset id of each member of S),
  /// so every cached entry carries a fingerprint of exactly that — lookups
  /// recompute the fingerprint under the caller's current assignment and
  /// only accept a match. No epoch, no clears: a sender re-announcing with
  /// a different qset simply stops matching old entries, and all slots of
  /// one replica share every still-valid verdict. Three tiers:
  ///  - known quorums: closure fixpoints that kept `member`. satisfied_by
  ///    is monotone in the node set, so a fixpoint (whose members' qsets
  ///    are unchanged) survives inside every superset — TRUE with zero
  ///    evaluations;
  ///  - failed supports: sets whose closure dropped `member`
  ///    (closure(S') ⊆ closure(S) for S' ⊆ S — FALSE for subsets);
  ///  - exact fingerprints: verdict + measured cost per support set.
  bool quorum_contains(const NodeSet& support, ProcessId member,
                       const std::vector<QSetId>& qset_ids);

  const QuorumEngineStats& stats() const { return stats_; }
  void count_support_update() { ++stats_.support_updates; }
  void count_support_rebuild() { ++stats_.support_rebuilds; }

  /// Test hook for the determinism regression suite: force every unordered
  /// table to rehash, scrambling bucket order. All observable behaviour
  /// (verdicts, stats, emissions) must be identical afterwards — nothing
  /// here may depend on hash-table iteration order. Enforced by
  /// scup-lint's det-unordered-iter rule and tests/test_determinism_rehash.
  void debug_rehash(std::size_t bucket_count) {
    by_hash_.rehash(bucket_count);
    closure_memo_.rehash(bucket_count);
    block_tiers_.rehash(bucket_count);
  }

 private:
  /// One threshold node of the flattened form. Children precede parents in
  /// `nodes_`, and a QSet's nodes are contiguous with the root last.
  struct FlatNode {
    std::uint32_t threshold = 0;
    std::uint32_t validators_begin = 0;  // into validators_
    std::uint32_t validators_end = 0;
    std::uint32_t children_begin = 0;  // into children_ (absolute node ids)
    std::uint32_t children_end = 0;
  };
  struct Interned {
    QSet qset;
    std::uint32_t nodes_begin = 0;  // into nodes_; root at nodes_end - 1
    std::uint32_t nodes_end = 0;
  };

  std::uint32_t flatten(const QSet& q);  // returns root node index
  // Raw flattened evaluations: count one qset_eval, no baseline.
  bool eval_satisfied(QSetId id, const NodeSet& nodes);
  bool eval_blocked(QSetId id, const NodeSet& nodes);

  /// Order-independent fingerprint of (member, qset id of every id in
  /// `set`) — everything a closure verdict for `set` depends on besides
  /// the set itself.
  static std::uint64_t assignment_fp(const NodeSet& set, ProcessId member,
                                     const std::vector<QSetId>& qset_ids);
  struct ClosureEntry;
  void memoize(const NodeSet& support, ClosureEntry entry);

  std::vector<Interned> interned_;
  std::unordered_map<std::size_t, std::vector<QSetId>> by_hash_;

  // Flattened-form pools, shared by all interned qsets.
  std::vector<FlatNode> nodes_;
  std::vector<ProcessId> validators_;
  std::vector<std::uint32_t> children_;

  std::vector<std::uint8_t> scratch_;  // per-node verdicts, reused
  std::vector<QSetId> qid_scratch_;    // distinct ids per closure pass

  // ---- closure memo (engine-wide, self-validating entries) ----
  struct ClosureEntry {
    std::uint64_t fp = 0;  // assignment_fp the verdict was computed under
    bool contains = false;
    /// Lower bound of what the historical member-at-a-time closure cost
    /// for this support — charged to the baseline on every memo hit.
    std::uint32_t evals = 0;
  };
  /// Bounded: cleared wholesale when it outgrows kMaxClosureMemo (keeps
  /// Byzantine-driven support churn from accumulating unbounded state).
  static constexpr std::size_t kMaxClosureMemo = 1 << 16;
  std::unordered_map<NodeSet, std::vector<ClosureEntry>> closure_memo_;
  struct MonotoneEntry {
    NodeSet set;
    std::uint64_t fp = 0;  // assignment_fp of `set`'s members
    ProcessId member = kInvalidProcess;
  };
  static constexpr std::size_t kMaxMonotone = 16;
  std::vector<MonotoneEntry> known_quorums_;    // keep smallest
  std::vector<MonotoneEntry> failed_supports_;  // keep largest
  std::size_t quorum_rr_ = 0;
  std::size_t failed_rr_ = 0;
  /// Shared bounded-insert policy for both MonotoneEntry tiers (replace a
  /// dominated comparable entry, append under the bound, else round-robin).
  static void insert_tier(std::vector<MonotoneEntry>& pool, std::size_t& rr,
                          MonotoneEntry entry, bool keep_smaller);

  // ---- v-blocking memo, per interned qset (ids are immutable) ----
  struct BlockTiers {
    std::vector<NodeSet> blocking_;     // keep smallest
    std::vector<NodeSet> nonblocking_;  // keep largest
    std::size_t blocking_rr_ = 0;
    std::size_t nonblocking_rr_ = 0;
  };
  std::unordered_map<QSetId, BlockTiers> block_tiers_;

  QuorumEngineStats stats_;
};

/// Structural hash of a QSet (iterative; used by interning and tests).
std::size_t qset_hash(const QSet& q);

}  // namespace scup::fbqs
