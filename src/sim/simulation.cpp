#include "sim/simulation.hpp"

#include <stdexcept>

namespace scup::sim {

namespace {
std::map<std::string, std::size_t> stringify_by_type(
    const std::vector<std::size_t>& by_id) {
  std::map<std::string, std::size_t> result;
  for (std::uint32_t id = 0; id < by_id.size(); ++id) {
    if (by_id[id] != 0) result[MessageTypeRegistry::name_of(id)] = by_id[id];
  }
  return result;
}
}  // namespace

std::map<std::string, std::size_t> SimMetrics::messages_by_type() const {
  return stringify_by_type(messages_by_type_id);
}

std::map<std::string, std::size_t> SimMetrics::bytes_by_type() const {
  return stringify_by_type(bytes_by_type_id);
}

Simulation::Simulation(std::size_t n, NetworkConfig config)
    : n_(n),
      config_(config),
      net_rng_(config.seed),
      notary_(n, config.seed),
      processes_(n),
      isolated_(n, false),
      timer_generations_(n) {
  if (config_.min_delay < 0 || config_.max_delay < config_.min_delay ||
      config_.pre_gst_max_delay < config_.min_delay) {
    throw std::invalid_argument("Simulation: inconsistent delay bounds");
  }
  process_rngs_.reserve(n);
  Rng seeder(config.seed ^ 0x5eedULL);
  for (std::size_t i = 0; i < n; ++i) process_rngs_.push_back(seeder.split());
}

Simulation::~Simulation() = default;

void Simulation::install(ProcessId id, std::unique_ptr<Process> process) {
  if (id >= n_) throw std::out_of_range("Simulation::install: bad id");
  if (started_) throw std::logic_error("Simulation::install after start");
  process->sim_ = this;
  process->id_ = id;
  processes_[id] = std::move(process);
}

Process& Simulation::process(ProcessId id) {
  if (id >= n_ || !processes_[id]) {
    throw std::out_of_range("Simulation::process: bad id");
  }
  return *processes_[id];
}

const Process& Simulation::process(ProcessId id) const {
  if (id >= n_ || !processes_[id]) {
    throw std::out_of_range("Simulation::process: bad id");
  }
  return *processes_[id];
}

void Simulation::start() {
  if (started_) throw std::logic_error("Simulation::start called twice");
  for (ProcessId id = 0; id < n_; ++id) {
    if (!processes_[id]) {
      throw std::logic_error("Simulation::start: process " +
                             std::to_string(id) + " not installed");
    }
  }
  started_ = true;
  for (ProcessId id = 0; id < n_; ++id) processes_[id]->start();
}

SimTime Simulation::sample_delay() {
  const SimTime hi =
      now_ < config_.gst ? config_.pre_gst_max_delay : config_.max_delay;
  return net_rng_.uniform_range(config_.min_delay, hi);
}

void Simulation::enqueue_send(ProcessId from, ProcessId to, MessagePtr msg) {
  if (to >= n_) throw std::out_of_range("send: bad destination");
  if (!msg) throw std::invalid_argument("send: null message");
  metrics_.messages_sent += 1;
  const std::size_t bytes = msg->byte_size();
  metrics_.bytes_sent += bytes;
  const std::uint32_t type = msg->metrics_type_id();
  if (type >= metrics_.messages_by_type_id.size()) {
    metrics_.messages_by_type_id.resize(type + 1, 0);
    metrics_.bytes_by_type_id.resize(type + 1, 0);
  }
  metrics_.messages_by_type_id[type] += 1;
  metrics_.bytes_by_type_id[type] += bytes;

  Event e;
  e.time = now_ + sample_delay();
  e.seq = next_seq_++;
  e.kind = EventKind::kDeliver;
  e.target = to;
  e.from = from;
  e.msg = std::move(msg);
  queue_.push(std::move(e));
}

void Simulation::enqueue_timer(ProcessId target, int timer_id, SimTime delay) {
  if (delay < 0) throw std::invalid_argument("set_timer: negative delay");
  const std::uint64_t generation = ++timer_generations_[target][timer_id];
  Event e;
  e.time = now_ + delay;
  e.seq = next_seq_++;
  e.kind = EventKind::kTimer;
  e.target = target;
  e.timer_id = timer_id;
  e.timer_generation = generation;
  queue_.push(std::move(e));
}

void Simulation::cancel_timer(ProcessId target, int timer_id) {
  // Bumping the generation invalidates any queued firing.
  ++timer_generations_[target][timer_id];
}

void Simulation::isolate(ProcessId id) {
  if (id >= n_) throw std::out_of_range("isolate: bad id");
  isolated_[id] = true;
}

void Simulation::dispatch(const Event& event) {
  Process& p = *processes_[event.target];
  if (event.kind == EventKind::kDeliver) {
    if (isolated_[event.target]) return;
    p.on_message(event.from, event.msg);
    return;
  }
  // Timer: drop if re-armed/cancelled since scheduling.
  const auto it = timer_generations_[event.target].find(event.timer_id);
  if (it == timer_generations_[event.target].end() ||
      it->second != event.timer_generation) {
    return;
  }
  metrics_.timer_fires += 1;
  p.on_timer(event.timer_id);
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // Move the event out instead of copying it: an Event holds a shared_ptr
  // whose copy is a refcount round-trip per delivery. pop() only needs the
  // top slot to be move-assignable, which a moved-from Event is.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  metrics_.events_processed += 1;
  dispatch(event);
  return true;
}

bool Simulation::run_until(const std::function<bool()>& predicate,
                           SimTime deadline) {
  if (!started_) throw std::logic_error("run_until before start");
  if (predicate()) return true;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    step();
    if (predicate()) return true;
  }
  return predicate();
}

std::size_t Simulation::run_for(SimTime deadline) {
  if (!started_) throw std::logic_error("run_for before start");
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    step();
    ++processed;
  }
  return processed;
}

// ---- Process member functions that need the Simulation definition ----

void Process::send(ProcessId to, MessagePtr msg) {
  sim_->enqueue_send(id_, to, std::move(msg));
}

void Process::send_all(const NodeSet& to, const MessagePtr& msg) {
  for (ProcessId p : to) {
    if (p != id_) send(p, msg);
  }
}

void Process::set_timer(int timer_id, SimTime delay) {
  sim_->enqueue_timer(id_, timer_id, delay);
}

void Process::cancel_timer(int timer_id) { sim_->cancel_timer(id_, timer_id); }

SimTime Process::now() const { return sim_->now(); }

Rng& Process::rng() { return sim_->process_rngs_[id_]; }

std::size_t Process::universe_size() const { return sim_->size(); }

std::uint64_t Process::sign(std::uint64_t statement) const {
  return sim_->notary().sign(id_, statement);
}

bool Process::verify(ProcessId signer, std::uint64_t statement,
                     std::uint64_t token) const {
  return sim_->notary().verify(signer, statement, token);
}

}  // namespace scup::sim
