// Vertex-disjoint path counting via max-flow (Menger's theorem).
//
// k-OSR (Definition 6) and f-reachability (Definition 9) are both stated in
// terms of node-disjoint paths. We count internally-vertex-disjoint paths
// from u to v with the standard vertex-splitting reduction (each vertex w
// becomes w_in -> w_out with capacity 1, except the endpoints) and Dinic's
// algorithm on unit-capacity networks.
#pragma once

#include <cstddef>

#include "common/node_set.hpp"
#include "graph/digraph.hpp"

namespace scup::graph {

/// Maximum number of internally-vertex-disjoint directed paths from u to v
/// in g restricted to `active` nodes. Returns 0 if u or v is inactive or
/// u == v has no meaning (returns a large value for u == v by convention? no:
/// throws). If edge u->v exists it counts as one path.
std::size_t max_vertex_disjoint_paths(const Digraph& g, ProcessId u,
                                      ProcessId v, const NodeSet& active);
std::size_t max_vertex_disjoint_paths(const Digraph& g, ProcessId u,
                                      ProcessId v);

/// True iff there are at least k internally-vertex-disjoint paths from u to
/// v. Early-exits once k augmenting paths are found, so it is cheaper than
/// computing the exact maximum when only the threshold matters.
bool has_k_vertex_disjoint_paths(const Digraph& g, ProcessId u, ProcessId v,
                                 std::size_t k, const NodeSet& active);

/// True iff g restricted to `active` is k-strongly connected: every ordered
/// pair of distinct active nodes is joined by >= k vertex-disjoint paths
/// (footnote 1 of the paper).
bool is_k_strongly_connected(const Digraph& g, std::size_t k,
                             const NodeSet& active);
bool is_k_strongly_connected(const Digraph& g, std::size_t k);

/// f-reachability (Definition 9): j is f-reachable from i if there are at
/// least f+1 vertex-disjoint paths from i to j consisting only of correct
/// processes (i.e. in the subgraph induced by `correct`).
bool is_f_reachable(const Digraph& g, ProcessId i, ProcessId j, std::size_t f,
                    const NodeSet& correct);

}  // namespace scup::graph
