// Strongly connected components (Tarjan, iterative) and the condensation
// DAG. These are the building blocks of the k-OSR property (Definition 6):
// the condensation of the knowledge connectivity graph must have exactly one
// sink component.
#pragma once

#include <vector>

#include "common/node_set.hpp"
#include "graph/digraph.hpp"

namespace scup::graph {

struct SccResult {
  /// comp_of[v] = index of v's component, or -1 for inactive nodes.
  std::vector<int> comp_of;
  /// Member sets, indexed by component id.
  std::vector<NodeSet> components;

  int component_count() const { return static_cast<int>(components.size()); }
};

/// Tarjan's algorithm restricted to `active` nodes.
SccResult strongly_connected_components(const Digraph& g, const NodeSet& active);
SccResult strongly_connected_components(const Digraph& g);

struct Condensation {
  SccResult scc;
  /// DAG on component ids: edge (a, b) iff some u in component a has an edge
  /// to some v in component b (a != b).
  std::vector<std::vector<int>> dag_successors;
  /// Component ids with no outgoing DAG edges.
  std::vector<int> sink_components;

  /// Union of member sets of all sink components.
  NodeSet sink_members(std::size_t universe) const;
};

Condensation condense(const Digraph& g, const NodeSet& active);
Condensation condense(const Digraph& g);

/// True iff the undirected graph obtained from g (restricted to `active`) is
/// connected (property 1 of Definition 6).
bool is_weakly_connected(const Digraph& g, const NodeSet& active);

/// The unique sink component of g restricted to `active`, if there is
/// exactly one; otherwise an empty set. (Definition: a component with no
/// path to any node outside itself.)
NodeSet unique_sink_component(const Digraph& g, const NodeSet& active);
NodeSet unique_sink_component(const Digraph& g);

}  // namespace scup::graph
