// Wire: the byte-buffer codec under the wire-once broadcast plane.
//
// Every protocol message family (cup discovery/gossip, sink detector, SCP
// envelopes, PBFT, ledger SlotEnvelope) encodes itself through a WireWriter
// into a flat little-endian frame:
//
//   frame     := u16 wire_type ++ payload
//   integers  := fixed-width little-endian (u8/u16/u32/u64)
//   NodeSet   := u32 universe ++ u32 count ++ count * u32 id   (ascending)
//   sequences := u32 count ++ elements (canonical order: ascending where the
//                in-memory container is ordered)
//
// Encoding is canonical: for every registered type, decode(encode(m))
// re-encodes to the same bytes, which is what the differential tests pin.
// Decoding is Byzantine input handling: WireReader is bounds-checked, count
// fields are validated against the remaining byte budget *before* any
// allocation, non-canonical element order is rejected, and a frame must be
// consumed exactly — truncated or oversized buffers decode to nullptr, never
// to UB. See DESIGN.md §4.9.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/node_set.hpp"
#include "common/types.hpp"

namespace scup::sim {

class Message;
using MessagePtr = std::shared_ptr<const Message>;

/// Largest NodeSet universe a decoder accepts (see WireReader::node_set).
inline constexpr std::uint32_t kWireMaxUniverse = 1u << 20;

/// Appends fixed-width little-endian fields to a byte buffer. The buffer is
/// caller-owned so the per-message encode path can reuse a thread-local
/// scratch vector (zero steady-state allocation).
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// u32 universe ++ u32 count ++ ascending member ids.
  void node_set(const NodeSet& set) {
    u32(static_cast<std::uint32_t>(set.universe_size()));
    u32(static_cast<std::uint32_t>(set.count()));
    for (ProcessId id : set) u32(id);
  }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked reader over an untrusted frame. All accessors return a
/// value and latch `ok() == false` on underrun or validation failure;
/// once failed, subsequent reads return zeros and never touch the buffer.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// Latches the failure state (decoders call this on semantic rejects).
  void fail() { ok_ = false; }

  /// True iff `count` elements of `elem_size` bytes each can still fit in
  /// the remaining buffer. Decoders must check this before reserving
  /// containers sized from an attacker-controlled count field.
  bool fits(std::uint64_t count, std::size_t elem_size) const {
    return ok_ && elem_size > 0 && count <= remaining() / elem_size;
  }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(data_[pos_ - 2] |
                                      (data_[pos_ - 1] << 8));
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ - 4 + i]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ - 8 + i]) << (8 * i);
    }
    return v;
  }

  /// Rejects universes past kWireMaxUniverse, ids >= universe,
  /// descending/duplicate ids, and count fields larger than the remaining
  /// byte budget.
  NodeSet node_set() {
    const std::uint32_t universe = u32();
    const std::uint32_t count = u32();
    // NodeSet is a dense bitset (universe/8 bytes), so the universe field
    // itself is an allocation bomb vector: a forged 2^32 universe in an
    // 8-byte frame would reserve 512 MiB. 2^20 processes is far past any
    // simulated scale and caps the bitset at 128 KiB.
    if (universe > kWireMaxUniverse || !fits(count, 4) || count > universe) {
      fail();
      return NodeSet{};
    }
    NodeSet set{universe};
    ProcessId prev = kInvalidProcess;
    for (std::uint32_t i = 0; i < count; ++i) {
      const ProcessId id = u32();
      if (!ok_ || id >= universe || (i > 0 && id <= prev)) {
        fail();
        return NodeSet{};
      }
      set.add(id);
      prev = id;
    }
    return set;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Process-wide table mapping wire type ids to decoders. Encoding never
/// consults it (wire_encode is a virtual on the message); it exists for the
/// decode side — differential tests today, a real network backend tomorrow.
/// Registration is explicit (core::register_wire_codecs) because decoders
/// live above sim/ in the layer graph; it is idempotent and thread-safe.
class WireCodecRegistry {
 public:
  using DecodeFn = MessagePtr (*)(WireReader&);

  static void register_type(std::uint16_t type, const char* name, DecodeFn fn);
  static DecodeFn find(std::uint16_t type);
  static const char* name_of(std::uint16_t type);
  static std::vector<std::uint16_t> registered_types();
};

/// Decodes one full frame (u16 type header ++ payload). Returns nullptr on
/// unknown type, any reader failure, or trailing bytes left unconsumed.
MessagePtr decode_frame(const std::uint8_t* data, std::size_t size);
MessagePtr decode_frame(const std::vector<std::uint8_t>& frame);

}  // namespace scup::sim
