// The accessor pattern from src/sim/message.cpp: a function-local static
// guarded by a module mutex, reached only through requires-lock accessors
// whose callers take the lock.
#include <mutex>
#include <vector>

namespace {

std::mutex& reg_mutex() {
  static std::mutex m;
  return m;
}

// scup-analyze: requires-lock(reg_mutex)
std::vector<int>& reg_rows() {
  // scup-guarded-by: reg_mutex
  static std::vector<int> rows;
  return rows;
}

}  // namespace

int reg_count() {
  const std::lock_guard<std::mutex> lock(reg_mutex());
  return static_cast<int>(reg_rows().size());
}
