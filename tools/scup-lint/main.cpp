// scup-lint CLI: walks src/, tests/ and bench/ under the given repo root,
// applies the project rule families (see lint.hpp), and prints
// `file:line: [rule-id] message` diagnostics. Files are read and linted in
// parallel (lint_file is pure); findings are concatenated in path-sorted
// order, so the output is bit-identical for every --threads value.
//
// Exit codes (the contract CI and CTest rely on):
//   0  clean — zero unsuppressed findings, zero stale suppressions
//   1  findings reported
//   2  usage or I/O error (bad root, unreadable suppression file), or the
//      --budget-ms wall-clock budget was exceeded (a slow gate is a build
//      failure someone should look at, not a silent slowdown)
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario_matrix.hpp"  // scup::core::parallel_cells
#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kUsage =
    "usage: scup-lint <repo-root> [--suppressions <file>] [--threads N]\n"
    "                 [--budget-ms N]\n"
    "       lints src/, tests/ and bench/ under <repo-root>\n";

bool parse_count(const std::string& s, std::size_t& out) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) return false;
    out = static_cast<std::size_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string root_arg;
  std::string supp_arg;
  std::size_t threads = 0;    // 0 = hardware concurrency
  std::size_t budget_ms = 0;  // 0 = no budget
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--suppressions") {
      if (i + 1 >= args.size()) {
        std::cerr << kUsage;
        return 2;
      }
      supp_arg = args[++i];
    } else if (args[i] == "--threads" || args[i] == "--budget-ms") {
      if (i + 1 >= args.size() ||
          !parse_count(args[i + 1],
                       args[i] == "--threads" ? threads : budget_ms)) {
        std::cerr << kUsage;
        return 2;
      }
      ++i;
    } else if (root_arg.empty()) {
      root_arg = args[i];
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  const fs::path root(root_arg);
  if (!fs::is_directory(root)) {
    std::cerr << "scup-lint: not a directory: " << root_arg << "\n";
    return 2;
  }

  // Deterministic file order: collect, then sort by relative path.
  std::vector<std::pair<std::string, fs::path>> files;  // rel -> abs
  for (const char* top : {"src", "tests", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      files.emplace_back(
          fs::relative(entry.path(), root).generic_string(), entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  // Read every file once, in parallel; each slot is written by exactly one
  // worker, and failures are reported in path order.
  std::vector<std::string> contents(files.size());
  std::vector<char> read_ok(files.size(), 0);
  scup::core::parallel_cells(files.size(), threads, [&](std::size_t i) {
    read_ok[i] = read_file(files[i].second, contents[i]) ? 1 : 0;
  });
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (read_ok[i] == 0) {
      std::cerr << "scup-lint: cannot read " << files[i].first << "\n";
      return 2;
    }
  }

  // Pass 1: project-wide unordered-container identifiers (src/ only — the
  // det-unordered-iter rule is scoped to src/ and collecting test-local
  // names like `set` would poison the ident list). Per-file collection is
  // parallel; the merge walks slots in path order so the ident list (and
  // with it rule behaviour) is independent of thread scheduling.
  std::vector<std::vector<std::string>> per_file_idents(files.size());
  scup::core::parallel_cells(files.size(), threads, [&](std::size_t i) {
    if (files[i].first.rfind("src/", 0) != 0) return;
    per_file_idents[i] = scup::lint::collect_unordered_idents(contents[i]);
  });
  scup::lint::LintOptions opts;
  for (std::vector<std::string>& idents : per_file_idents) {
    for (std::string& ident : idents) {
      if (std::find(opts.unordered_idents.begin(), opts.unordered_idents.end(),
                    ident) == opts.unordered_idents.end()) {
        opts.unordered_idents.push_back(std::move(ident));
      }
    }
  }

  // Pass 2: rules, one slot per file; concatenated in path order.
  std::vector<std::vector<scup::lint::Finding>> per_file(files.size());
  scup::core::parallel_cells(files.size(), threads, [&](std::size_t i) {
    per_file[i] = scup::lint::lint_file(files[i].first, contents[i], opts);
  });
  std::vector<scup::lint::Finding> findings;
  for (std::vector<scup::lint::Finding>& fs_slot : per_file) {
    for (scup::lint::Finding& f : fs_slot) {
      findings.push_back(std::move(f));
    }
  }

  // Suppressions: an explicitly named file must exist; the default location
  // is used only when present.
  fs::path supp_path;
  if (!supp_arg.empty()) {
    supp_path = supp_arg;
    if (!fs::is_regular_file(supp_path)) {
      std::cerr << "scup-lint: suppression file not found: " << supp_arg
                << "\n";
      return 2;
    }
  } else {
    const fs::path candidate = root / "tools" / "scup-lint" /
                               "suppressions.txt";
    if (fs::is_regular_file(candidate)) supp_path = candidate;
  }
  if (!supp_path.empty()) {
    std::string content;
    if (!read_file(supp_path, content)) {
      std::cerr << "scup-lint: cannot read " << supp_path << "\n";
      return 2;
    }
    std::error_code ec;
    const fs::path rel = fs::relative(supp_path, root, ec);
    const std::string supp_rel =
        ec || rel.empty() ? supp_path.generic_string() : rel.generic_string();
    std::vector<scup::lint::Finding> supp_errors;
    auto supps =
        scup::lint::parse_suppressions(content, supp_rel, supp_errors);
    findings = scup::lint::apply_suppressions(std::move(findings), supps,
                                              supp_rel);
    for (scup::lint::Finding& f : supp_errors) {
      findings.push_back(std::move(f));
    }
  }

  scup::lint::sort_findings(findings);
  for (const scup::lint::Finding& f : findings) {
    std::cout << scup::lint::format_finding(f) << "\n";
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (budget_ms != 0 && static_cast<std::size_t>(elapsed) > budget_ms) {
    std::cerr << "scup-lint: exceeded --budget-ms " << budget_ms << " ("
              << elapsed << "ms over " << files.size() << " files)\n";
    return 2;
  }
  if (findings.empty()) {
    std::cout << "scup-lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cout << "scup-lint: " << findings.size() << " finding(s)\n";
  return 1;
}
