// Fixture: byz-unbounded-map must fire on operator[] insertion keyed by
// message content inside a handle() path.
#include <cstdint>
#include <map>

using ProcessId = std::uint32_t;

struct Message {
  std::uint64_t view = 0;
  std::uint64_t token = 0;
};

struct Protocol {
  std::map<std::uint64_t, std::uint64_t> votes_;
  bool handle(ProcessId from, const Message& msg) {
    votes_[msg.view] = msg.token + from;
    return true;
  }
};

// Subscripts outside handle() paths are not this rule's business.
struct Recorder {
  std::map<std::uint64_t, std::uint64_t> log_;
  void note(std::uint64_t k) { log_[k] = k; }
};
