// Single-shot PBFT-style Byzantine consensus among a known member set.
//
// This is the consensus protocol the BFT-CUP construction runs among the
// discovered sink members (the paper's baseline, Theorem 1): three phases
// (pre-prepare / prepare / commit) with quorums of q = ⌈(|S|+f+1)/2⌉ and a
// certified view change. Signature simulation (sim::Notary) makes prepare
// certificates and view-change certificates unforgeable, which is what
// carries safety across views exactly as in PBFT.
//
// Quorum arithmetic: with |S| >= 2f+1 correct members plus at most f faulty
// ones, any two quorums intersect in > f processes (hence in a correct one)
// and a fully correct quorum always exists — the same inequalities as the
// paper's Theorem 4.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/node_set.hpp"
#include "sim/host.hpp"
#include "sim/message.hpp"
#include "sim/wire.hpp"

namespace scup::bftcup {

/// Frame ids 32..36 (see the allocation table in sim/wire.hpp callers).
inline constexpr std::uint16_t kWireTypePrePrepare = 32;
inline constexpr std::uint16_t kWireTypePrepare = 33;
inline constexpr std::uint16_t kWireTypeCommit = 34;
inline constexpr std::uint16_t kWireTypeViewChange = 35;
inline constexpr std::uint16_t kWireTypeNewView = 36;

inline constexpr int kPbftTimerId = 200;

struct PbftConfig {
  SimTime view_timeout_base = 400;
  std::uint32_t timeout_growth_cap = 32;
  /// Admission bound on per-message view numbers: anything naming a view
  /// more than this far ahead of the local view is dropped before it can
  /// allocate bookkeeping. Correct members advance one view per timeout,
  /// so a generous window never drops their traffic; a Byzantine member
  /// naming view 2^31 no longer allocates state for it.
  std::uint32_t view_window = 64;
};

// ---- messages ----

struct SignedToken {
  ProcessId signer = kInvalidProcess;
  std::uint64_t token = 0;
};

struct PrePrepareMsg final : sim::Message {
  PrePrepareMsg(std::uint32_t v, Value val) : view(v), value(val) {}
  std::uint32_t view;
  Value value;
  std::string type_name() const override { return "pbft.preprepare"; }
  std::uint16_t wire_type() const override { return kWireTypePrePrepare; }
  void wire_encode(sim::WireWriter& w) const override {
    w.u32(view);
    w.u64(value);
  }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const std::uint32_t view = r.u32();
    const Value value = r.u64();
    if (!r.ok()) return nullptr;
    return sim::make_message<PrePrepareMsg>(view, value);
  }
};

struct PrepareMsg final : sim::Message {
  PrepareMsg(std::uint32_t v, Value val, std::uint64_t t)
      : view(v), value(val), token(t) {}
  std::uint32_t view;
  Value value;
  std::uint64_t token;  // sign(sender, prepare_hash(view, value))
  std::string type_name() const override { return "pbft.prepare"; }
  std::uint16_t wire_type() const override { return kWireTypePrepare; }
  void wire_encode(sim::WireWriter& w) const override {
    w.u32(view);
    w.u64(value);
    w.u64(token);
  }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const std::uint32_t view = r.u32();
    const Value value = r.u64();
    const std::uint64_t token = r.u64();
    if (!r.ok()) return nullptr;
    return sim::make_message<PrepareMsg>(view, value, token);
  }
};

struct CommitMsg final : sim::Message {
  CommitMsg(std::uint32_t v, Value val, std::uint64_t t)
      : view(v), value(val), token(t) {}
  std::uint32_t view;
  Value value;
  std::uint64_t token;  // sign(sender, commit_hash(view, value))
  std::string type_name() const override { return "pbft.commit"; }
  std::uint16_t wire_type() const override { return kWireTypeCommit; }
  void wire_encode(sim::WireWriter& w) const override {
    w.u32(view);
    w.u64(value);
    w.u64(token);
  }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const std::uint32_t view = r.u32();
    const Value value = r.u64();
    const std::uint64_t token = r.u64();
    if (!r.ok()) return nullptr;
    return sim::make_message<CommitMsg>(view, value, token);
  }
};

/// A view-change vote: "I move to view `new_view`; the highest value I
/// prepared was `prepared_value` in view `prepared_view` (0 = none), and
/// here is the prepare certificate proving it."
struct ViewChangeRecord {
  ProcessId sender = kInvalidProcess;
  std::uint32_t new_view = 0;
  std::uint32_t prepared_view = 0;
  Value prepared_value = kNoValue;
  std::vector<SignedToken> prepare_cert;  // q tokens when prepared_view > 0
  std::uint64_t token = 0;  // sign(sender, viewchange_hash(...))
};

/// ViewChangeRecord payload codec, shared by ViewChangeMsg and the
/// NewViewMsg justification list.
void wire_put_viewchange_record(sim::WireWriter& w, const ViewChangeRecord& r);
std::optional<ViewChangeRecord> wire_get_viewchange_record(sim::WireReader& r);

struct ViewChangeMsg final : sim::Message {
  explicit ViewChangeMsg(ViewChangeRecord r) : record(std::move(r)) {}
  ViewChangeRecord record;
  std::string type_name() const override { return "pbft.viewchange"; }
  std::size_t byte_size() const override {
    return 64 + record.prepare_cert.size() * 12;
  }
  std::uint16_t wire_type() const override { return kWireTypeViewChange; }
  void wire_encode(sim::WireWriter& w) const override {
    wire_put_viewchange_record(w, record);
  }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    std::optional<ViewChangeRecord> record = wire_get_viewchange_record(r);
    if (!record.has_value()) return nullptr;
    return sim::make_message<ViewChangeMsg>(std::move(*record));
  }
};

/// New leader's view installation: q view-change records justifying the
/// chosen value.
struct NewViewMsg final : sim::Message {
  NewViewMsg(std::uint32_t v, Value val, std::vector<ViewChangeRecord> j)
      : view(v), value(val), justification(std::move(j)) {}
  std::uint32_t view;
  Value value;
  std::vector<ViewChangeRecord> justification;
  std::string type_name() const override { return "pbft.newview"; }
  std::size_t byte_size() const override {
    return 64 + justification.size() * 80;
  }
  std::uint16_t wire_type() const override { return kWireTypeNewView; }
  void wire_encode(sim::WireWriter& w) const override {
    w.u32(view);
    w.u64(value);
    w.u32(static_cast<std::uint32_t>(justification.size()));
    for (const ViewChangeRecord& record : justification) {
      wire_put_viewchange_record(w, record);
    }
  }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const std::uint32_t view = r.u32();
    const Value value = r.u64();
    const std::uint32_t count = r.u32();
    // A record is at least 32 bytes, so a forged count cannot reserve an
    // oversized justification vector.
    if (!r.fits(count, 32)) {
      r.fail();
      return nullptr;
    }
    std::vector<ViewChangeRecord> justification;
    justification.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::optional<ViewChangeRecord> record = wire_get_viewchange_record(r);
      if (!record.has_value()) return nullptr;
      justification.push_back(std::move(*record));
    }
    if (!r.ok()) return nullptr;
    return sim::make_message<NewViewMsg>(view, value, std::move(justification));
  }
};

// ---- statement hashes (domain-separated) ----

std::uint64_t prepare_hash(std::uint32_t view, Value value);
std::uint64_t commit_hash(std::uint32_t view, Value value);
std::uint64_t viewchange_hash(std::uint32_t new_view,
                              std::uint32_t prepared_view,
                              Value prepared_value);

// ---- the consensus state machine ----

class PbftConsensus {
 public:
  /// `members` is the (globally agreed) participant set — for BFT-CUP this
  /// is the discovered sink. self must be a member.
  PbftConsensus(sim::ProtocolHost& host, NodeSet members,
                PbftConfig config = {});

  void start(Value proposal);
  bool handle(ProcessId from, const sim::Message& msg);
  void on_view_timer();  // host must route kPbftTimerId here

  bool decided() const { return decided_.has_value(); }
  Value decision() const;
  std::uint32_t view() const { return view_; }
  std::size_t quorum_size() const { return q_; }
  ProcessId leader_of(std::uint32_t view) const;

  /// Test hook: total live bookkeeping map nodes (vote slots and their
  /// token entries, first-vote records, view-change books). The Byzantine
  /// memory-bomb regression test asserts this stays within the documented
  /// bound no matter what a faulty member signs and sends.
  std::size_t bookkeeping_size() const;

  std::function<void(Value)> on_decide;

 private:
  struct Slot {  // per (view, value) vote bookkeeping
    std::map<ProcessId, std::uint64_t> prepares;
    std::map<ProcessId, std::uint64_t> commits;
  };

  void broadcast(const sim::MessagePtr& msg);
  void enter_view(std::uint32_t view);
  void accept_proposal(std::uint32_t view, Value value);
  void check_prepared(std::uint32_t view, Value value);
  void check_committed(std::uint32_t view, Value value);
  void send_view_change(std::uint32_t new_view);
  void try_lead_new_view(std::uint32_t view);
  bool validate_record(const ViewChangeRecord& r) const;
  void arm_timer();
  bool view_admissible(std::uint32_t view) const;
  Slot* admit_vote(std::uint32_t view, Value value, ProcessId voter);

  sim::ProtocolHost& host_;
  NodeSet members_;
  std::vector<ProcessId> sorted_members_;
  std::size_t f_;
  std::size_t q_;
  PbftConfig config_;

  Value proposal_ = kNoValue;
  bool started_ = false;
  std::uint32_t view_ = 0;
  std::optional<Value> accepted_value_;          // pre-prepared in view_
  std::uint32_t prepared_view_ = 0;              // highest prepared
  Value prepared_value_ = kNoValue;
  std::vector<SignedToken> prepared_cert_;
  std::optional<Value> decided_;

  // Byzantine-memory bounds on the vote bookkeeping below (this was an
  // unbounded-allocation hole: every signed prepare/commit/view-change for
  // an arbitrary (view, value) used to allocate a fresh map node):
  //   * views are admitted only within [0, view_ + config_.view_window]
  //     (view_admissible), and view_ itself only advances through f+1
  //     genuine member timeouts — Byzantine members alone (≤ f) cannot
  //     push it;
  //   * each member's first signed vote per view fixes its value — a later
  //     vote for a different value in the same view is equivocation and is
  //     dropped (admit_vote/first_vote_), so a view holds at most |S|+1
  //     slots and each slot at most |S| entries per phase;
  //   * view-change records below view_ are useless and GC'd (enter_view).
  //     Vote slots for older views are kept — a late commit quorum for a
  //     view we already left is still a legitimate, safe decision.
  // Net: O((view_ + view_window) × |S|²) tokens, bounded by elapsed
  // protocol time instead of by attacker message volume.
  std::map<std::pair<std::uint32_t, Value>, Slot> slots_;
  std::map<std::uint32_t, std::map<ProcessId, Value>> first_vote_;
  std::map<std::uint32_t, std::map<ProcessId, ViewChangeRecord>> view_changes_;
  std::map<std::uint32_t, bool> new_view_sent_;
  std::map<std::uint32_t, bool> view_change_sent_;
};

}  // namespace scup::bftcup
