#include "scp/envelope.hpp"

#include <utility>

namespace scup::scp {

namespace {
template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;
}  // namespace

bool votes_prepare(const Statement& s, const Ballot& beta) {
  if (!beta.valid()) return false;
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return false; },
          [&](const PrepareStmt& p) {
            // Votes prepare(b); that covers lower compatible ballots.
            return le_compatible(beta, p.b);
          },
          [&](const ConfirmStmt& c) {
            // Past preparing: votes prepare((∞, b.x)).
            return compatible(beta, c.b);
          },
          [&](const ExternalizeStmt& e) { return compatible(beta, e.commit); },
      },
      s);
}

bool accepts_prepared(const Statement& s, const Ballot& beta) {
  if (!beta.valid()) return false;
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return false; },
          [&](const PrepareStmt& p) {
            return le_compatible(beta, p.p) || le_compatible(beta, p.p_prime);
          },
          [&](const ConfirmStmt& c) {
            // Accepted prepared up to (max(p_n, h_n), b.x).
            const std::uint32_t top = c.p_n > c.h_n ? c.p_n : c.h_n;
            return compatible(beta, c.b) && beta.n <= top;
          },
          [&](const ExternalizeStmt& e) {
            // Confirmed commit implies prepared((∞, x)).
            return compatible(beta, e.commit);
          },
      },
      s);
}

bool votes_commit(const Statement& s, std::uint32_t n, Value x) {
  if (n == 0) return false;
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return false; },
          [&](const PrepareStmt& p) {
            return p.b.x == x && p.c_n != 0 && p.c_n <= n && n <= p.h_n;
          },
          [&](const ConfirmStmt& c) {
            // Votes commit(n, x) for every n >= c_n.
            return c.b.x == x && c.c_n != 0 && c.c_n <= n;
          },
          [&](const ExternalizeStmt& e) {
            return e.commit.x == x && e.commit.n <= n;
          },
      },
      s);
}

bool accepts_commit(const Statement& s, std::uint32_t n, Value x) {
  if (n == 0) return false;
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return false; },
          [](const PrepareStmt&) { return false; },
          [&](const ConfirmStmt& c) {
            return c.b.x == x && c.c_n != 0 && c.c_n <= n && n <= c.h_n;
          },
          [&](const ExternalizeStmt& e) {
            return e.commit.x == x && e.commit.n <= n;
          },
      },
      s);
}

bool votes_nominate(const Statement& s, Value v) {
  if (const auto* nom = std::get_if<NominateStmt>(&s)) {
    return nom->voted.count(v) > 0 || nom->accepted.count(v) > 0;
  }
  return false;
}

bool accepts_nominate(const Statement& s, Value v) {
  if (const auto* nom = std::get_if<NominateStmt>(&s)) {
    return nom->accepted.count(v) > 0;
  }
  return false;
}

bool is_ballot_statement(const Statement& s) {
  return !std::holds_alternative<NominateStmt>(s);
}

Ballot working_ballot(const Statement& s) {
  return std::visit(
      Overloaded{
          [](const NominateStmt&) { return Ballot{}; },
          [](const PrepareStmt& p) { return p.b; },
          [](const ConfirmStmt& c) { return c.b; },
          [](const ExternalizeStmt& e) { return e.commit; },
      },
      s);
}

// ---- wire codec ----

namespace {

void put_qset(sim::WireWriter& w, const fbqs::QSet& qset) {
  w.u32(static_cast<std::uint32_t>(qset.threshold()));
  w.u32(static_cast<std::uint32_t>(qset.validators().size()));
  for (ProcessId id : qset.validators()) w.u32(id);
  w.u32(static_cast<std::uint32_t>(qset.inner_sets().size()));
  for (const fbqs::QSet& inner : qset.inner_sets()) put_qset(w, inner);
}

fbqs::QSet get_qset(sim::WireReader& r, std::size_t depth) {
  if (depth > kWireMaxQsetDepth) {
    r.fail();
    return {};
  }
  const std::uint32_t threshold = r.u32();
  const std::uint32_t nvalidators = r.u32();
  if (!r.fits(nvalidators, 4)) {
    r.fail();
    return {};
  }
  std::vector<ProcessId> validators;
  validators.reserve(nvalidators);
  for (std::uint32_t i = 0; i < nvalidators; ++i) validators.push_back(r.u32());
  const std::uint32_t ninner = r.u32();
  // Each inner set costs at least 12 bytes (three count fields).
  if (!r.fits(ninner, 12)) {
    r.fail();
    return {};
  }
  std::vector<fbqs::QSet> inner;
  inner.reserve(ninner);
  for (std::uint32_t i = 0; i < ninner && r.ok(); ++i) {
    inner.push_back(get_qset(r, depth + 1));
  }
  if (!r.ok()) return {};
  // The QSet constructor throws on threshold > elements; an adversarial
  // frame must reject cleanly instead.
  if (threshold > validators.size() + inner.size()) {
    r.fail();
    return {};
  }
  return fbqs::QSet(threshold, std::move(validators), std::move(inner));
}

void put_ballot(sim::WireWriter& w, const Ballot& b) {
  w.u32(b.n);
  w.u64(b.x);
}

Ballot get_ballot(sim::WireReader& r) {
  Ballot b;
  b.n = r.u32();
  b.x = r.u64();
  return b;
}

void put_value_set(sim::WireWriter& w, const std::set<Value>& values) {
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (Value v : values) w.u64(v);
}

std::set<Value> get_value_set(sim::WireReader& r) {
  const std::uint32_t count = r.u32();
  if (!r.fits(count, 8)) {
    r.fail();
    return {};
  }
  std::set<Value> values;
  Value prev = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const Value v = r.u64();
    // Canonical frames list values in ascending std::set order; enforcing
    // it makes decode(encode(m)) re-encode byte-identically.
    if (!r.ok() || (i > 0 && v <= prev)) {
      r.fail();
      return {};
    }
    values.insert(values.end(), v);
    prev = v;
  }
  return values;
}

}  // namespace

void wire_put_envelope(sim::WireWriter& w, const Envelope& env) {
  w.u32(env.sender);
  w.u64(env.seq);
  put_qset(w, env.qset);
  w.u8(static_cast<std::uint8_t>(env.statement.index()));
  std::visit(Overloaded{
                 [&](const NominateStmt& nom) {
                   put_value_set(w, nom.voted);
                   put_value_set(w, nom.accepted);
                 },
                 [&](const PrepareStmt& p) {
                   put_ballot(w, p.b);
                   put_ballot(w, p.p);
                   put_ballot(w, p.p_prime);
                   w.u32(p.c_n);
                   w.u32(p.h_n);
                 },
                 [&](const ConfirmStmt& c) {
                   put_ballot(w, c.b);
                   w.u32(c.p_n);
                   w.u32(c.c_n);
                   w.u32(c.h_n);
                 },
                 [&](const ExternalizeStmt& e) {
                   put_ballot(w, e.commit);
                   w.u32(e.h_n);
                 },
             },
             env.statement);
}

std::optional<Envelope> wire_get_envelope(sim::WireReader& r) {
  const ProcessId sender = r.u32();
  const std::uint64_t seq = r.u64();
  fbqs::QSet qset = get_qset(r, 0);
  const std::uint8_t tag = r.u8();
  if (!r.ok()) return std::nullopt;
  Statement statement;
  switch (tag) {
    case 0: {
      NominateStmt nom;
      nom.voted = get_value_set(r);
      nom.accepted = get_value_set(r);
      statement = std::move(nom);
      break;
    }
    case 1: {
      PrepareStmt p;
      p.b = get_ballot(r);
      p.p = get_ballot(r);
      p.p_prime = get_ballot(r);
      p.c_n = r.u32();
      p.h_n = r.u32();
      statement = p;
      break;
    }
    case 2: {
      ConfirmStmt c;
      c.b = get_ballot(r);
      c.p_n = r.u32();
      c.c_n = r.u32();
      c.h_n = r.u32();
      statement = c;
      break;
    }
    case 3: {
      ExternalizeStmt e;
      e.commit = get_ballot(r);
      e.h_n = r.u32();
      statement = e;
      break;
    }
    default:
      r.fail();
      return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return Envelope(sender, seq, std::move(qset), std::move(statement));
}

void Envelope::wire_encode(sim::WireWriter& w) const {
  wire_put_envelope(w, *this);
}

sim::MessagePtr Envelope::wire_decode(sim::WireReader& r) {
  std::optional<Envelope> env = wire_get_envelope(r);
  if (!env.has_value()) return nullptr;
  return sim::make_message<Envelope>(std::move(*env));
}

}  // namespace scup::scp
