// Tests for the SINK discovery algorithm and the sink detector oracle
// (Algorithm 3 / Theorem 6 / Lemma 6).
#include "sinkdetector/sink_detector.hpp"

#include <gtest/gtest.h>

#include "core/adversaries.hpp"
#include "core/experiment.hpp"
#include "graph/kosr.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "sim/composed.hpp"
#include "sim/simulation.hpp"

namespace scup::sinkdetector {
namespace {

/// A node that only runs the sink detector.
class DetectorOnlyNode : public sim::ComposedNode {
 public:
  DetectorOnlyNode(NodeSet pd, std::size_t f)
      : ComposedNode(f), detector_(*this, std::move(pd)) {}

  void start() override { detector_.start(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    detector_.handle(from, *msg);
  }

  SinkDetector detector_;
};

struct Harness {
  explicit Harness(const graph::Digraph& g, std::size_t f,
                   const NodeSet& faulty, std::uint64_t seed = 1,
                   core::AdversaryKind adversary =
                       core::AdversaryKind::kSilent) {
    sim::NetworkConfig net;
    net.gst = 0;
    net.min_delay = 1;
    net.max_delay = 10;
    net.seed = seed;
    sim = std::make_unique<sim::Simulation>(g.node_count(), net);
    nodes.assign(g.node_count(), nullptr);
    for (ProcessId i = 0; i < g.node_count(); ++i) {
      if (faulty.contains(i)) {
        if (adversary == core::AdversaryKind::kSilent) {
          sim->emplace_process<core::SilentNode>(i);
        } else {
          const NodeSet sink = graph::unique_sink_component(g);
          NodeSet fake(g.node_count());
          for (ProcessId v = 0; v < g.node_count() && fake.count() < 2; ++v) {
            if (!sink.contains(v) && v != i) fake.add(v);
          }
          if (fake.empty()) fake = g.pd_of(i);
          sim->emplace_process<core::DiscoveryLiarNode>(i, g.pd_of(i), fake,
                                                        f);
        }
        continue;
      }
      nodes[i] = &sim->emplace_process<DetectorOnlyNode>(i, g.pd_of(i), f);
    }
    correct = faulty.complement();
  }

  bool run(SimTime deadline = 500'000) {
    sim->start();
    return sim->run_until(
        [&] {
          for (ProcessId i : correct) {
            if (!nodes[i]->detector_.has_result()) return false;
          }
          return true;
        },
        deadline);
  }

  std::unique_ptr<sim::Simulation> sim;
  std::vector<DetectorOnlyNode*> nodes;
  NodeSet correct;
};

TEST(SinkDetectorTest, Fig1AllCorrectProcessesGetExactSink) {
  const auto g = graph::fig1_graph();
  const NodeSet faulty = graph::fig1_faulty();  // paper process 8
  Harness h(g, 1, faulty);
  ASSERT_TRUE(h.run());
  const NodeSet sink = graph::fig1_sink();
  for (ProcessId i : h.correct) {
    const auto& r = h.nodes[i]->detector_.result();
    EXPECT_EQ(r.sink, sink) << "i=" << i;
    EXPECT_EQ(r.is_sink_member, sink.contains(i)) << "i=" << i;
  }
}

TEST(SinkDetectorTest, Fig1NoFailures) {
  const auto g = graph::fig1_graph();
  Harness h(g, 1, NodeSet(8));
  ASSERT_TRUE(h.run());
  for (ProcessId i = 0; i < 8; ++i) {
    EXPECT_EQ(h.nodes[i]->detector_.result().sink, graph::fig1_sink());
  }
}

TEST(SinkDetectorTest, Fig2EverySingleFailurePlacement) {
  const auto g = graph::fig2_graph();
  for (ProcessId victim = 0; victim < 7; ++victim) {
    Harness h(g, 1, NodeSet(7, {victim}), /*seed=*/100 + victim);
    ASSERT_TRUE(h.run()) << "victim=" << victim;
    for (ProcessId i : h.correct) {
      const auto& r = h.nodes[i]->detector_.result();
      EXPECT_EQ(r.sink, graph::fig2_sink()) << "victim=" << victim
                                            << " i=" << i;
      EXPECT_EQ(r.is_sink_member, graph::fig2_sink().contains(i));
    }
  }
}

TEST(SinkDetectorTest, SinkMembersDiscoverDirectly) {
  // Sink members must terminate SINK themselves (Lemma 6), not just learn
  // the sink from others.
  const auto g = graph::fig2_graph();
  Harness h(g, 1, NodeSet(7, {5}));
  ASSERT_TRUE(h.run());
  for (ProcessId i : graph::fig2_sink()) {
    EXPECT_TRUE(h.nodes[i]->detector_.discovery().finished()) << "i=" << i;
    EXPECT_EQ(h.nodes[i]->detector_.discovery().sink(), graph::fig2_sink());
  }
}

TEST(SinkDetectorTest, NonSinkMembersLearnIndirectly) {
  const auto g = graph::fig2_graph();
  Harness h(g, 1, NodeSet(7));
  ASSERT_TRUE(h.run());
  for (ProcessId i = 4; i < 7; ++i) {
    // Non-sink members cannot complete SINK directly on this graph.
    EXPECT_FALSE(h.nodes[i]->detector_.discovery().finished()) << "i=" << i;
    EXPECT_FALSE(h.nodes[i]->detector_.result().is_sink_member);
    EXPECT_EQ(h.nodes[i]->detector_.result().sink, graph::fig2_sink());
  }
}

TEST(SinkDetectorTest, WithPreGstAsynchrony) {
  // The oracle must still return under arbitrary pre-GST delays (partial
  // synchrony, Section III-A).
  const auto g = graph::fig2_graph();
  sim::NetworkConfig net;
  net.gst = 5'000;
  net.pre_gst_max_delay = 3'000;
  net.min_delay = 1;
  net.max_delay = 10;
  net.seed = 5;

  sim::Simulation sim(7, net);
  std::vector<DetectorOnlyNode*> nodes(7, nullptr);
  for (ProcessId i = 0; i < 7; ++i) {
    nodes[i] = &sim.emplace_process<DetectorOnlyNode>(i, g.pd_of(i), 1);
  }
  sim.start();
  const bool done = sim.run_until(
      [&] {
        for (auto* n : nodes) {
          if (!n->detector_.has_result()) return false;
        }
        return true;
      },
      1'000'000);
  ASSERT_TRUE(done);
  for (auto* n : nodes) {
    EXPECT_EQ(n->detector_.result().sink, graph::fig2_sink());
  }
}

TEST(SinkDetectorTest, DiscoveryLiarCannotPolluteTheSink) {
  // A Byzantine sink member fabricates PD edges toward non-sink processes.
  // The f+1-claims filter (DESIGN.md §4.1) keeps the estimate exact.
  graph::KosrGenParams params;
  params.sink_size = 5;
  params.non_sink_size = 3;
  params.k = 3;  // 2f+1 for f=1
  params.seed = 17;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet sink = graph::unique_sink_component(g);
  // Faulty: one sink member (id 0 is in the sink by construction).
  const NodeSet faulty(g.node_count(), {0});
  ASSERT_TRUE(graph::satisfies_bft_cup_preconditions(g, faulty, 1));

  Harness h(g, 1, faulty, /*seed=*/3, core::AdversaryKind::kDiscoveryLiar);
  ASSERT_TRUE(h.run());
  for (ProcessId i : h.correct) {
    const auto& r = h.nodes[i]->detector_.result();
    EXPECT_EQ(r.sink, sink) << "i=" << i;
    EXPECT_EQ(r.is_sink_member, sink.contains(i)) << "i=" << i;
  }
}

// Property sweep: random k-OSR graphs, random safe failure placements,
// silent adversaries — Theorem 6 must hold on every run.
class SinkDetectorPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SinkDetectorPropertyTest, Theorem6OnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  const std::size_t f = 1 + seed % 2;
  graph::KosrGenParams params;
  params.sink_size = 3 * f + 2;
  params.non_sink_size = 2 + seed % 4;
  params.k = 2 * f + 1;
  params.seed = seed;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet sink = graph::unique_sink_component(g);
  const NodeSet faulty =
      graph::pick_safe_faulty_set(g, sink, f, /*allow_in_sink=*/true, rng);

  Harness h(g, f, faulty, seed);
  ASSERT_TRUE(h.run()) << "seed=" << seed;
  for (ProcessId i : h.correct) {
    const auto& r = h.nodes[i]->detector_.result();
    EXPECT_EQ(r.sink, sink) << "seed=" << seed << " i=" << i;
    EXPECT_EQ(r.is_sink_member, sink.contains(i))
        << "seed=" << seed << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinkDetectorPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace scup::sinkdetector
