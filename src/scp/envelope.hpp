// SCP statements and envelopes.
//
// Every envelope carries the sender's quorum set (the paper: "each process i
// attaches S_i to all of the messages it sends"), so receivers can evaluate
// Algorithm-1 quorum checks over any set of received statements.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <variant>

#include "fbqs/qset.hpp"
#include "scp/ballot.hpp"
#include "sim/message.hpp"
#include "sim/wire.hpp"

namespace scup::scp {

/// Frame ids 16/17: one frame type per message class; the statement kind is
/// a payload tag (u8 variant index), mirroring the in-memory variant.
inline constexpr std::uint16_t kWireTypeEnvelope = 16;
inline constexpr std::uint16_t kWireTypeSlotEnvelope = 17;

/// Nesting bound on decoded quorum sets: canonical encodes never exceed it
/// (in-tree qsets are at most two levels), and it stops an adversarial
/// frame from driving the recursive decoder arbitrarily deep.
inline constexpr std::size_t kWireMaxQsetDepth = 8;

/// Nomination: x ∈ voted means "I vote to nominate x"; x ∈ accepted means
/// "I accept that x is nominated".
struct NominateStmt {
  std::set<Value> voted;
  std::set<Value> accepted;
};

/// PREPARE(b, p, p', c.n, h.n): votes prepare(b); has accepted prepare(p)
/// and prepare(p'); votes commit(n, b.x) for c_n <= n <= h_n (when c_n > 0).
struct PrepareStmt {
  Ballot b;
  Ballot p;
  Ballot p_prime;
  std::uint32_t c_n = 0;
  std::uint32_t h_n = 0;
};

/// CONFIRM(b, p.n, c.n, h.n): has accepted commit(n, b.x) for
/// c_n <= n <= h_n; has accepted prepare((p_n, b.x)); votes commit(n, b.x)
/// for all n >= c_n; votes prepare((∞, b.x)).
struct ConfirmStmt {
  Ballot b;
  std::uint32_t p_n = 0;
  std::uint32_t c_n = 0;
  std::uint32_t h_n = 0;
};

/// EXTERNALIZE(commit, h.n): has confirmed commit(n, commit.x) for
/// commit.n <= n <= h_n; accepts everything implied.
struct ExternalizeStmt {
  Ballot commit;
  std::uint32_t h_n = 0;
};

using Statement =
    std::variant<NominateStmt, PrepareStmt, ConfirmStmt, ExternalizeStmt>;

struct Envelope final : sim::Message {
  Envelope(ProcessId sender_, std::uint64_t seq_, fbqs::QSet qset_,
           Statement statement_)
      : sender(sender_),
        seq(seq_),
        qset(std::move(qset_)),
        statement(std::move(statement_)) {}

  ProcessId sender;
  /// Monotonic per-sender sequence number; receivers keep the highest.
  std::uint64_t seq;
  fbqs::QSet qset;
  Statement statement;

  std::string type_name() const override {
    switch (statement.index()) {
      case 0: return "scp.nominate";
      case 1: return "scp.prepare";
      case 2: return "scp.confirm";
      default: return "scp.externalize";
    }
  }
  std::size_t byte_size() const override {
    std::size_t base = 48 + qset.validators().size() * 4;
    if (const auto* nom = std::get_if<NominateStmt>(&statement)) {
      base += (nom->voted.size() + nom->accepted.size()) * 8;
    }
    return base;
  }
  std::uint16_t wire_type() const override { return kWireTypeEnvelope; }
  void wire_encode(sim::WireWriter& w) const override;
  static sim::MessagePtr wire_decode(sim::WireReader& r);
};

// ---- Envelope payload codec, shared with SlotEnvelope (ledger.hpp) ----

/// Appends the envelope payload (sender, seq, qset, statement).
void wire_put_envelope(sim::WireWriter& w, const Envelope& env);

/// Reads an envelope payload; latches r.fail() and returns nullopt on any
/// malformed field (bad counts, unknown statement tag, over-deep qset).
std::optional<Envelope> wire_get_envelope(sim::WireReader& r);

// ---- Statement semantics (what a statement implies its sender votes for /
// has accepted), following the SCP whitepaper's message meanings. ----

/// Sender votes prepare(β) (or something stronger).
bool votes_prepare(const Statement& s, const Ballot& beta);

/// Sender has accepted prepare(β).
bool accepts_prepared(const Statement& s, const Ballot& beta);

/// Sender votes commit(n, x) (or something stronger).
bool votes_commit(const Statement& s, std::uint32_t n, Value x);

/// Sender has accepted commit(n, x).
bool accepts_commit(const Statement& s, std::uint32_t n, Value x);

/// Nomination: sender votes-or-accepts nominate(v) / has accepted it.
bool votes_nominate(const Statement& s, Value v);
bool accepts_nominate(const Statement& s, Value v);

/// True if the statement belongs to the ballot protocol (not nomination).
bool is_ballot_statement(const Statement& s);

/// The working ballot of a ballot-protocol statement (b for PREPARE/CONFIRM,
/// commit for EXTERNALIZE); invalid ballot for nomination.
Ballot working_ballot(const Statement& s);

}  // namespace scup::scp
