// Fixture: perf-hot-alloc stays quiet when the handler-body allocation
// carries an alloc-ok justification.
#include <cstdint>
#include <memory>

using ProcessId = std::uint32_t;

struct Message {
  std::uint64_t payload = 0;
};
using MessagePtr = std::shared_ptr<const Message>;

struct Node {
  void on_message(ProcessId from, const MessagePtr& msg) {
    if (msg->payload == 0) {
      // scup-lint: alloc-ok(first-contact path, runs once per peer)
      greeting_ = std::make_shared<const Message>(Message{from});
    }
  }

  MessagePtr greeting_;
};
