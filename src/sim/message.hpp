// Polymorphic message base for the simulator.
//
// Each protocol layer (certificate gossip, SINK discovery, sink detector,
// SCP, PBFT) defines its own Message subclasses and dispatches on them in
// Process::on_message. Messages are immutable once sent and shared between
// the sender's log and all recipients.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace scup::sim {

/// Process-wide interner mapping stable message type names to dense small
/// integer ids. Metrics accounting on the per-send hot path is then a
/// vector index instead of a std::string construction plus two map
/// lookups; names are materialized again only at report time. Ids are
/// assigned on first use and stable for the process lifetime (they are
/// shared across Simulation instances).
class MessageTypeRegistry {
 public:
  static std::uint32_t intern(const std::string& name);
  static const std::string& name_of(std::uint32_t id);
  /// Number of ids handed out so far.
  static std::size_t count();
};

class Message {
 public:
  virtual ~Message() = default;

  /// Stable name used for metrics aggregation (e.g. "scp.prepare").
  virtual std::string type_name() const = 0;

  /// Approximate wire size in bytes, for traffic accounting. Subclasses
  /// should override with a size reflecting their payload.
  virtual std::size_t byte_size() const { return 64; }

  /// Interned id of type_name(), computed lazily once per message object —
  /// a broadcast fanning one message out to n destinations interns once
  /// and reads the cached id n-1 times.
  std::uint32_t metrics_type_id() const {
    if (metrics_type_id_ == kUninternedTypeId) {
      metrics_type_id_ = MessageTypeRegistry::intern(type_name());
    }
    return metrics_type_id_;
  }

 private:
  static constexpr std::uint32_t kUninternedTypeId = 0xffffffffu;
  // The cache is per-object state invisible to message semantics. Each
  // Simulation runs on one thread and messages never cross simulations
  // (parallel ScenarioMatrix cells are share-nothing), so plain mutation
  // is safe on messages shared within one simulation.
  mutable std::uint32_t metrics_type_id_ = kUninternedTypeId;
};

using MessagePtr = std::shared_ptr<const Message>;

template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace scup::sim
