// E5 — Algorithm 3 / Theorem 6: the sink detector in simulation.
//
// Sweeps system size (sink fraction 1/2), f, and adversary presence, and
// reports: time until the last correct process's get_sink returns
// (simulated ticks), total messages and bytes spent by the discovery layer,
// and whether the estimate was exact — regenerating the oracle-cost story
// of Section VI. Message complexity is expected to grow ~quadratically.
#include "bench_common.hpp"

#include "sim/simulation.hpp"
#include "sinkdetector/sink_detector.hpp"
#include "core/adversaries.hpp"

namespace scup {
namespace {

class DetectorOnlyNode : public sim::ComposedNode {
 public:
  DetectorOnlyNode(NodeSet pd, std::size_t f)
      : ComposedNode(f), detector_(*this, std::move(pd)) {}
  void start() override { detector_.start(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    detector_.handle(from, *msg);
  }
  sinkdetector::SinkDetector detector_;
};

struct SdRun {
  SimTime last_return = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
  bool exact = true;
  bool returned = true;
};

SdRun run_sd(std::size_t sink_size, std::size_t non_sink, std::size_t f,
             std::uint64_t seed, bool with_faults) {
  graph::KosrGenParams params;
  params.sink_size = sink_size;
  params.non_sink_size = non_sink;
  params.k = 2 * f + 1;
  params.seed = seed;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet sink = graph::unique_sink_component(g);
  NodeSet faulty(g.node_count());
  if (with_faults) {
    Rng rng(seed + 99);
    faulty = graph::pick_safe_faulty_set(g, sink, f, true, rng);
  }

  sim::NetworkConfig net;
  net.seed = seed;
  net.min_delay = 1;
  net.max_delay = 10;
  sim::Simulation sim(g.node_count(), net);
  std::vector<DetectorOnlyNode*> nodes(g.node_count(), nullptr);
  for (ProcessId i = 0; i < g.node_count(); ++i) {
    if (faulty.contains(i)) {
      sim.emplace_process<core::SilentNode>(i);
    } else {
      nodes[i] = &sim.emplace_process<DetectorOnlyNode>(i, g.pd_of(i), f);
    }
  }
  sim.start();
  const NodeSet correct = faulty.complement();
  const bool done = sim.run_until(
      [&] {
        for (ProcessId i : correct) {
          if (!nodes[i]->detector_.has_result()) return false;
        }
        return true;
      },
      5'000'000);

  SdRun r;
  r.returned = done;
  r.last_return = sim.now();
  r.messages = sim.metrics().messages_sent;
  r.bytes = sim.metrics().bytes_sent;
  for (ProcessId i : correct) {
    if (!nodes[i]->detector_.has_result() ||
        !(nodes[i]->detector_.result().sink == sink)) {
      r.exact = false;
    }
  }
  return r;
}

void BM_SinkDetector_Sweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = static_cast<std::size_t>(state.range(1));
  const std::size_t sink_size = n / 2;
  const std::size_t non_sink = n - sink_size;
  SdRun r;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    r = run_sd(sink_size, non_sink, f, seed++, /*with_faults=*/true);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["f"] = static_cast<double>(f);
  state.counters["sim_ticks_to_return"] = static_cast<double>(r.last_return);
  state.counters["messages"] = static_cast<double>(r.messages);
  state.counters["kilobytes"] = static_cast<double>(r.bytes) / 1024.0;
  state.counters["all_returned"] = r.returned ? 1 : 0;
  state.counters["estimate_exact"] = r.exact ? 1 : 0;
}
BENCHMARK(BM_SinkDetector_Sweep)
    ->ArgsProduct({{8, 12, 16, 24, 32, 48}, {1}})
    ->Args({16, 2})
    ->Args({24, 2})
    ->Args({32, 2})
    ->Unit(benchmark::kMillisecond);

void BM_SinkDetector_FaultFreeBaseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SdRun r;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    r = run_sd(n / 2, n - n / 2, 1, seed++, /*with_faults=*/false);
    benchmark::DoNotOptimize(r);
  }
  state.counters["sim_ticks_to_return"] = static_cast<double>(r.last_return);
  state.counters["messages"] = static_cast<double>(r.messages);
  state.counters["estimate_exact"] = r.exact ? 1 : 0;
}
BENCHMARK(BM_SinkDetector_FaultFreeBaseline)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E5");
