// Discrete-event simulation of a partially synchronous message-passing
// system (Dwork-Lynch-Stockmeyer style, Section III-A of the paper):
// messages sent before GST suffer arbitrary (bounded only by the
// configuration) delays; messages sent after GST are delivered within
// [min_delay, max_delay]. Channels are reliable and authenticated;
// processing is instantaneous (computation bounds are absorbed into message
// delays, which is standard for protocol simulation).
//
// The link layer is pluggable (sim::NetworkModel): per-link overrides,
// partition schedules and pre-GST loss/duplication live there. The runtime
// adds staged participation — activate(id, t) defers a process's start()
// to simulated time t, with earlier deliveries buffered in its mailbox —
// and a crash(id) fault primitive that silences a process in both
// directions (no sends, no deliveries, no timer fires after the crash).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/counters.hpp"
#include "sim/event_queue.hpp"
#include "sim/message.hpp"
#include "sim/network_model.hpp"
#include "sim/notary.hpp"
#include "sim/process.hpp"

namespace scup::sim {

struct SimMetrics {
  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
  /// Per-type counters indexed by interned MessageTypeRegistry id (the
  /// per-send hot path is one vector index; names are resolved only at
  /// report time). Entries are 0 for types this simulation never sent.
  std::vector<std::size_t> messages_by_type_id;
  std::vector<std::size_t> bytes_by_type_id;
  std::size_t timer_fires = 0;
  std::size_t events_processed = 0;
  /// Sends the NetworkModel lost (pre-GST loss) / duplicated.
  std::size_t messages_dropped = 0;
  std::size_t messages_duplicated = 0;
  /// Protocol instrumentation (sim/counters.hpp), reported by protocol
  /// components via ProtocolHost::host_counter_add — e.g. the SCP
  /// QuorumEngine's closure/eval/cache counters (E13). Indexed by
  /// ProtoCounter; deterministic per scenario, so the E12 serial==parallel
  /// identity compare covers it.
  std::array<std::uint64_t, kProtoCounterCount> protocol_counters{};

  bool operator==(const SimMetrics&) const = default;

  /// Report-time views: type name -> count/bytes for every type this
  /// simulation actually sent.
  std::map<std::string, std::size_t> messages_by_type() const;
  std::map<std::string, std::size_t> bytes_by_type() const;
  /// Report-time view of protocol_counters: counter name -> value.
  std::map<std::string, std::uint64_t> protocol_counters_by_name() const;
  std::uint64_t protocol_counter(ProtoCounter c) const {
    return protocol_counters[static_cast<std::size_t>(c)];
  }
};

class Simulation {
 public:
  /// Runs the default UniformModel over `config` (including its override /
  /// partition / loss feature set).
  Simulation(std::size_t n, NetworkConfig config);
  /// Runs a custom link-layer model. `config` still provides the seed for
  /// the network RNG stream and the notary.
  Simulation(std::size_t n, NetworkConfig config,
             std::unique_ptr<NetworkModel> model);
  ~Simulation();

  std::size_t size() const { return n_; }

  /// Installs the process implementation for slot `id`. Must be called for
  /// every id before start(). Returns a reference for configuration.
  template <typename T, typename... Args>
  T& emplace_process(ProcessId id, Args&&... args) {
    auto proc = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *proc;
    install(id, std::move(proc));
    return ref;
  }
  void install(ProcessId id, std::unique_ptr<Process> process);

  Process& process(ProcessId id);
  const Process& process(ProcessId id) const;

  /// Defers process `id`'s start() to simulated time `t` (staged
  /// participant arrival). Deliveries before the activation wait in the
  /// process's mailbox and are handed over, in arrival order, right after
  /// its deferred start() runs. Must be called before start(); t = 0 means
  /// the process starts with everyone else.
  void activate(ProcessId id, SimTime t);
  bool active(ProcessId id) const { return active_[id]; }

  /// Calls start() on every process not scheduled by activate() (in id
  /// order). Must be called once.
  void start();

  SimTime now() const { return now_; }

  /// Processes events until `predicate` holds, the event queue empties, or
  /// simulated time would exceed `deadline`. Returns true iff the predicate
  /// held. The predicate is checked after every `stride`-th event (default:
  /// every event); a larger stride trades up to stride-1 extra processed
  /// events for not paying an expensive predicate per event.
  template <typename Pred>
  bool run_until(Pred&& predicate, SimTime deadline, std::size_t stride = 1) {
    if (!started_) throw std::logic_error("run_until before start");
    if (predicate()) return true;
    if (stride == 0) stride = 1;
    std::size_t since_check = 0;
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      step();
      if (++since_check >= stride) {
        since_check = 0;
        if (predicate()) return true;
      }
    }
    return predicate();
  }

  /// Processes all events with time <= deadline (or until the queue runs
  /// dry). Returns the number of events processed.
  std::size_t run_for(SimTime deadline);

  const SimMetrics& metrics() const { return metrics_; }

  const Notary& notary() const { return notary_; }

  /// Cuts all future message deliveries *to* `id` (a partition-style fault:
  /// the process keeps running and sending). Messages already in flight are
  /// still counted but dropped at delivery. See crash() for a full stop.
  void isolate(ProcessId id);

  /// Crash-stops `id` now: no sends, no deliveries, no timer fires from
  /// this point on. Crashed processes count against the fault threshold
  /// like any other failure.
  void crash(ProcessId id);
  /// Schedules crash(id) at simulated time `t` (>= now). Usable before or
  /// after start().
  void crash_at(ProcessId id, SimTime t);
  bool crashed(ProcessId id) const { return crashed_[id]; }

 private:
  friend class Process;

  void enqueue_send(ProcessId from, ProcessId to, MessagePtr msg);
  void enqueue_timer(ProcessId target, int timer_id, SimTime delay);
  void cancel_timer(ProcessId target, int timer_id);
  std::uint64_t& timer_generation(ProcessId target, int timer_id);
  const std::uint64_t* find_timer_generation(ProcessId target,
                                             int timer_id) const;
  void dispatch(Event& event);
  bool step();  // processes one event; false if queue empty

  std::size_t n_;
  NetworkConfig config_;
  std::unique_ptr<NetworkModel> model_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  Rng net_rng_;
  Notary notary_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> process_rngs_;
  std::vector<bool> isolated_;
  std::vector<bool> crashed_;
  std::vector<bool> active_;
  std::vector<SimTime> activation_time_;  // 0 = start with everyone else
  std::vector<std::pair<ProcessId, SimTime>> pending_crashes_;
  /// Pre-activation deliveries, in arrival order.
  std::vector<std::vector<std::pair<ProcessId, MessagePtr>>> mailboxes_;
  /// Generation counters for timer cancellation/re-arming. A process uses
  /// a handful of distinct timer ids, so a flat (id, generation) vector
  /// with linear scan beats the old per-process std::map.
  std::vector<std::vector<std::pair<int, std::uint64_t>>> timer_generations_;
  CalendarQueue queue_;
  SimMetrics metrics_;
  bool started_ = false;
};

}  // namespace scup::sim
