// scup-analyze CLI: parses every src/ translation unit under the given
// repo root into the semantic model (in parallel — parse_tu is pure), runs
// the interprocedural rule families, and prints
// `file:line: [rule-id] message` diagnostics.
//
// Exit codes (the contract CI and CTest rely on):
//   0  clean
//   1  findings reported
//   2  usage/I/O error, or the --budget-ms wall-clock budget was exceeded
//      (the gate must stay fast as src/ grows; a budget breach is a build
//      failure someone should look at, not a silent slowdown)
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "core/scenario_matrix.hpp"  // scup::core::parallel_cells

namespace fs = std::filesystem;

namespace {

constexpr const char* kUsage =
    "usage: scup-analyze <repo-root> [--threads N] [--budget-ms N] [--dump]\n"
    "       analyzes src/ under <repo-root>\n";

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool analyzable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool parse_count(const std::string& s, std::size_t& out) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) return false;
    out = static_cast<std::size_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string root_arg;
  std::size_t threads = 0;    // 0 = hardware concurrency
  std::size_t budget_ms = 0;  // 0 = no budget
  bool want_dump = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threads" || args[i] == "--budget-ms") {
      if (i + 1 >= args.size() ||
          !parse_count(args[i + 1],
                       args[i] == "--threads" ? threads : budget_ms)) {
        std::cerr << kUsage;
        return 2;
      }
      ++i;
    } else if (args[i] == "--dump") {
      want_dump = true;
    } else if (root_arg.empty()) {
      root_arg = args[i];
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  const fs::path root(root_arg);
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "scup-analyze: no src/ under " << root_arg << "\n";
    return 2;
  }

  // Deterministic model and output: path-sorted file list; the parallel
  // parse writes only its own slot.
  std::vector<std::pair<std::string, fs::path>> files;  // rel -> abs
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file() || !analyzable(entry.path())) continue;
    files.emplace_back(fs::relative(entry.path(), root).generic_string(),
                       entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<scup::analyze::TU> tus(files.size());
  std::vector<std::string> read_errors(files.size());
  scup::core::parallel_cells(files.size(), threads, [&](std::size_t i) {
    std::string content;
    if (!read_file(files[i].second, content)) {
      read_errors[i] = files[i].first;
      return;
    }
    tus[i] = scup::analyze::parse_tu(files[i].first, content);
  });
  for (const std::string& err : read_errors) {
    if (!err.empty()) {
      std::cerr << "scup-analyze: cannot read " << err << "\n";
      return 2;
    }
  }

  const std::vector<scup::analyze::Finding> findings =
      scup::analyze::analyze(tus);
  if (want_dump) std::cout << scup::analyze::dump(tus);
  for (const scup::analyze::Finding& f : findings) {
    std::cout << scup::lint::format_finding(f) << "\n";
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (budget_ms != 0 && static_cast<std::size_t>(elapsed) > budget_ms) {
    std::cerr << "scup-analyze: exceeded --budget-ms " << budget_ms << " ("
              << elapsed << "ms over " << files.size() << " files)\n";
    return 2;
  }
  if (findings.empty()) {
    std::cout << "scup-analyze: clean (" << files.size() << " files, "
              << elapsed << "ms)\n";
    return 0;
  }
  std::cout << "scup-analyze: " << findings.size() << " finding(s)\n";
  return 1;
}
