// scup-lint: project-specific static analysis for the scup tree.
//
// The repo's headline guarantees are determinism proofs — bit-identical
// serial==parallel scenario-matrix cells (E12), Notary sign-log
// fingerprints, and chain-digest identity (E13). Nothing in the compiler
// stops a future change from silently breaking them: iterating an unordered
// container into a fingerprint, reaching for std::random_device outside
// common/rng, or spawning a raw std::thread outside the scenario-matrix
// runner. scup-lint is the in-repo gate for those project rules. It is
// deliberately token/line-level (no libclang dependency): every rule is a
// pattern over comment-stripped source lines plus a small amount of
// project-wide context (which identifiers are declared as unordered
// containers, which functions are message handlers).
//
// Rule families (ids are stable; suppressions and annotations refer to them):
//
//   determinism
//     det-unordered-iter    range-for over a std::unordered_{map,set}
//                           identifier in src/ without an
//                           `order-insensitive(<why>)` annotation.
//     det-raw-random        std::rand / srand / random_device / mt19937 /
//                           wall-clock time outside src/common/rng.
//     det-shard-escape      in src/sim/: a raw thread primitive outside
//                           sim/shard_pool (the sharded engine's one
//                           sanctioned thread owner), or — in sim/shard*
//                           files — engine-global simulation state
//                           (next_seq_, net_streams_, notary_, metrics_,
//                           now_, queue_, started_) touched outside a
//                           `// shard-barrier begin(<why>)` ...
//                           `// shard-barrier end` region. Shard code may
//                           only touch global state at the window barrier,
//                           where every shard thread is parked.
//     det-drawplan-escape   in src/sim/: the per-sender network verdict
//                           streams (net_streams_) touched outside a
//                           `// drawplan begin(<why>)` ...
//                           `// drawplan end` region. The draw-plan RNG
//                           replay contract (DESIGN.md §4.7) holds only if
//                           every stream draw goes through the audited
//                           verdict site, where position accounting
//                           brackets each on_send; a stray draw desyncs
//                           the sender's stream position from the prefix
//                           sum of its draw plan and breaks shard-count
//                           identity.
//
//   concurrency
//     conc-raw-thread       std::thread / std::jthread / std::async /
//                           .detach() in src/ outside core/scenario_matrix
//                           and outside src/sim/ (where det-shard-escape
//                           owns the thread discipline).
//     conc-unguarded-static mutable static without a `guarded-by(<mutex>)`
//                           or `thread-safe(<why>)` annotation.
//
//   byzantine-input
//     byz-narrowing-cast    narrowing static_cast on a slot/view/id-like
//                           expression without a `bounded(<why>)` annotation
//                           (the ledger_timer_id overflow class).
//     byz-unbounded-map     operator[] on a member container inside a
//                           handle() message path without a `bounded(<why>)`
//                           annotation (Byzantine memory-bomb class).
//
//   performance
//     perf-hot-alloc        std::make_shared or a `new` expression inside a
//                           message-handler body (on_message / on_messages /
//                           handle) in src/ without an `alloc-ok(<why>)`
//                           annotation. Handler bodies run once per delivery
//                           — the broadcast-plane hot path (E16); messages
//                           must come from the pooled sim::make_message and
//                           scratch space from reused buffers.
//
//   meta (the gate keeps itself honest)
//     lint-unknown-annotation  a `// scup-lint: ...` comment naming no known
//                              annotation.
//     lint-stale-annotation    an annotation no rule consumed — the code it
//                              excused no longer triggers, so it must go.
//     lint-bad-suppression     a suppression entry naming an unknown rule.
//     lint-stale-suppression   a suppression entry matching no finding.
//
// Annotation grammar (same line as the code, or the directly preceding
// comment-only line):
//
//     // scup-lint: <name>(<reason>)
//
// where <name> is one of order-insensitive, guarded-by, thread-safe,
// bounded, alloc-ok, and <reason> is free text (parens must balance).
// Reasons are mandatory: an annotation is an argument, not an opt-out.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace scup::lint {

// ---- rule ids ----
inline constexpr std::string_view kRuleUnorderedIter = "det-unordered-iter";
inline constexpr std::string_view kRuleRawRandom = "det-raw-random";
inline constexpr std::string_view kRuleShardEscape = "det-shard-escape";
inline constexpr std::string_view kRuleDrawplanEscape = "det-drawplan-escape";
inline constexpr std::string_view kRuleRawThread = "conc-raw-thread";
inline constexpr std::string_view kRuleUnguardedStatic =
    "conc-unguarded-static";
inline constexpr std::string_view kRuleNarrowingCast = "byz-narrowing-cast";
inline constexpr std::string_view kRuleUnboundedMap = "byz-unbounded-map";
inline constexpr std::string_view kRulePerfHotAlloc = "perf-hot-alloc";
inline constexpr std::string_view kRuleUnknownAnnotation =
    "lint-unknown-annotation";
inline constexpr std::string_view kRuleStaleAnnotation =
    "lint-stale-annotation";
inline constexpr std::string_view kRuleBadSuppression = "lint-bad-suppression";
inline constexpr std::string_view kRuleStaleSuppression =
    "lint-stale-suppression";

/// True iff `rule` is a rule id suppressible via the suppression file (the
/// meta rules are not: suppressing the suppression checker is nonsense).
bool rule_suppressible(std::string_view rule);

struct Finding {
  std::string file;  ///< repo-relative path, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Source line split into executable text and comment text; string and
/// character literal bodies are blanked out of `code` so rule patterns never
/// match inside them.
struct ScannedLine {
  std::string code;
  std::string comment;
};

/// Comment/string-aware scan. Tracks /* */ across lines; handles // and
/// ordinary "..." / '...' literals (raw strings degrade to ordinary-string
/// handling, which is fine for this tree).
std::vector<ScannedLine> scan_source(const std::string& content);

/// Pass 1: identifiers declared as std::unordered_map / std::unordered_set
/// anywhere in the given content (members, locals, parameters). Collected
/// project-wide over src/ so a .cpp iterating a member declared in its .hpp
/// is still caught.
std::vector<std::string> collect_unordered_idents(const std::string& content);

struct LintOptions {
  /// Union of collect_unordered_idents over all src/ files.
  std::vector<std::string> unordered_idents;
};

/// Pass 2: all findings for one file. `rel_path` decides rule scope
/// (src/ vs tests/ vs bench/, plus the per-rule path exemptions).
std::vector<Finding> lint_file(const std::string& rel_path,
                               const std::string& content,
                               const LintOptions& opts);

// ---- suppression file ----
//
// Line format (one entry per line, '#' comments, blank lines ignored):
//
//     <repo-relative-path> <rule-id>
//
// An entry silences every finding of <rule-id> in that file. The file is
// checked both ways: an entry naming an unknown rule is a
// lint-bad-suppression finding, and an entry that silenced nothing is a
// lint-stale-suppression finding — suppressions cannot rot.

struct Suppression {
  std::string path;
  std::string rule;
  std::size_t line = 0;  ///< line in the suppression file (for diagnostics)
  bool used = false;
};

/// Parses the suppression file; malformed or unknown-rule entries are
/// reported as findings against `supp_rel_path`.
std::vector<Suppression> parse_suppressions(const std::string& content,
                                            const std::string& supp_rel_path,
                                            std::vector<Finding>& errors);

/// Removes suppressed findings and appends a lint-stale-suppression finding
/// for every entry that matched nothing.
std::vector<Finding> apply_suppressions(std::vector<Finding> findings,
                                        std::vector<Suppression>& supps,
                                        const std::string& supp_rel_path);

/// Stable output order: (file, line, rule).
void sort_findings(std::vector<Finding>& findings);

/// `file:line: [rule] message` — one line per finding.
std::string format_finding(const Finding& f);

}  // namespace scup::lint
