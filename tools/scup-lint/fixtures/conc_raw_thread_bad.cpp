// Fixture: conc-raw-thread must fire on raw std::thread spawn/detach and
// std::async outside core/scenario_matrix.
#include <future>
#include <thread>

void fire_and_forget() {
  std::thread t([] {});
  t.detach();
  auto f = std::async([] { return 1; });
  (void)f;
}
