#include "graph/dominators.hpp"

#include <algorithm>
#include <utility>

namespace scup::graph {

std::vector<ProcessId> immediate_dominators(const Digraph& g, ProcessId root,
                                            const NodeSet& active) {
  const std::size_t n = g.node_count();
  std::vector<ProcessId> idom(n, kInvalidProcess);
  if (root >= n || !active.contains(root)) return idom;

  // Reverse postorder over the subgraph reachable from root.
  std::vector<ProcessId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  std::vector<std::pair<ProcessId, std::size_t>> stack;
  stack.emplace_back(root, 0);
  seen[root] = true;
  while (!stack.empty()) {
    const ProcessId u = stack.back().first;
    std::size_t& next = stack.back().second;
    const auto& succ = g.successors(u);
    bool descended = false;
    while (next < succ.size()) {
      const ProcessId v = succ[next++];
      if (active.contains(v) && !seen[v]) {
        seen[v] = true;
        stack.emplace_back(v, 0);
        descended = true;
        break;
      }
    }
    if (descended) continue;
    order.push_back(u);
    stack.pop_back();
  }
  std::reverse(order.begin(), order.end());

  std::vector<std::size_t> rpo_index(n, 0);
  for (std::size_t i = 0; i < order.size(); ++i) rpo_index[order[i]] = i;

  const auto intersect = [&](ProcessId a, ProcessId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  idom[root] = root;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < order.size(); ++i) {
      const ProcessId u = order[i];
      ProcessId new_idom = kInvalidProcess;
      for (ProcessId p : g.predecessors(u)) {
        if (!active.contains(p) || idom[p] == kInvalidProcess) continue;
        new_idom = new_idom == kInvalidProcess ? p : intersect(p, new_idom);
      }
      if (new_idom != idom[u]) {
        idom[u] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

NodeSet dominated_by(const std::vector<ProcessId>& idom, ProcessId root,
                     ProcessId v, std::size_t universe) {
  NodeSet result(universe);
  for (ProcessId u = 0; u < idom.size(); ++u) {
    if (idom[u] == kInvalidProcess) continue;
    // Walk the dominator chain from u up to the root.
    ProcessId w = u;
    while (true) {
      if (w == v) {
        result.add(u);
        break;
      }
      if (w == root) break;
      w = idom[w];
    }
  }
  return result;
}

}  // namespace scup::graph
