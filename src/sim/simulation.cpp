#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace scup::sim {

namespace {
std::map<std::string, std::size_t> stringify_by_type(
    const std::vector<std::size_t>& by_id) {
  std::map<std::string, std::size_t> result;
  for (std::uint32_t id = 0; id < by_id.size(); ++id) {
    if (by_id[id] != 0) result[MessageTypeRegistry::name_of(id)] = by_id[id];
  }
  return result;
}
}  // namespace

std::map<std::string, std::size_t> SimMetrics::messages_by_type() const {
  return stringify_by_type(messages_by_type_id);
}

std::map<std::string, std::size_t> SimMetrics::bytes_by_type() const {
  return stringify_by_type(bytes_by_type_id);
}

const char* proto_counter_name(ProtoCounter c) {
  switch (c) {
    case ProtoCounter::kQuorumClosureRuns: return "scp.closure_runs";
    case ProtoCounter::kQuorumClosureCacheHits: return "scp.closure_cache_hits";
    case ProtoCounter::kQsetEvals: return "scp.qset_evals";
    case ProtoCounter::kQsetEvalsBaseline: return "scp.qset_evals_baseline";
    case ProtoCounter::kSupportUpdates: return "scp.support_updates";
    case ProtoCounter::kSupportRebuilds: return "scp.support_rebuilds";
    case ProtoCounter::kSlotWraps: return "scp.slot_wraps";
    case ProtoCounter::kSlotWrapsShared: return "scp.slot_wraps_shared";
    case ProtoCounter::kDiscoveryPayloadBuilds: return "cup.payload_builds";
    case ProtoCounter::kDiscoveryPayloadShared: return "cup.payload_shared";
    case ProtoCounter::kWireEncodes: return "sim.wire_encodes";
    case ProtoCounter::kWireCachedSends: return "sim.wire_cached_sends";
    case ProtoCounter::kCount: break;
  }
  return "scp.unknown";
}

std::map<std::string, std::uint64_t> SimMetrics::protocol_counters_by_name()
    const {
  std::map<std::string, std::uint64_t> result;
  for (std::size_t i = 0; i < kProtoCounterCount; ++i) {
    result[proto_counter_name(static_cast<ProtoCounter>(i))] =
        protocol_counters[i];
  }
  return result;
}

Simulation::Simulation(std::size_t n, NetworkConfig config)
    : Simulation(n, config, std::make_unique<UniformModel>(config)) {}

// scup-analyze: owner-ok(construction: shard threads do not exist yet)
Simulation::Simulation(std::size_t n, NetworkConfig config,
                       std::unique_ptr<NetworkModel> model)
    : n_(n),
      config_(config),
      model_(std::move(model)),
      notary_(n, config.seed),
      processes_(n),
      isolated_(n, 0),
      crashed_(n, 0),
      active_(n, 0),
      activation_time_(n, 0),
      mailboxes_(n),
      timer_generations_(n),
      pool_(config.message_pool ? std::make_unique<MessagePool>() : nullptr) {
  if (!model_) throw std::invalid_argument("Simulation: null NetworkModel");
  process_rngs_.reserve(n);
  Rng seeder(config.seed ^ 0x5eedULL);
  for (std::size_t i = 0; i < n; ++i) process_rngs_.push_back(seeder.split());
  // drawplan begin(stream construction: one substream per sender, seeded
  // independently of every other stream so send interleavings across
  // senders cannot perturb any sender's draw sequence)
  net_streams_.reserve(n);
  for (ProcessId i = 0; i < n; ++i) {
    net_streams_.emplace_back(net_stream_seed(config.seed, i));
  }
  // drawplan end
}

Simulation::~Simulation() = default;

void Simulation::install(ProcessId id, std::unique_ptr<Process> process) {
  if (id >= n_) throw std::out_of_range("Simulation::install: bad id");
  if (started_) throw std::logic_error("Simulation::install after start");
  process->sim_ = this;
  process->id_ = id;
  processes_[id] = std::move(process);
}

Process& Simulation::process(ProcessId id) {
  if (id >= n_ || !processes_[id]) {
    throw std::out_of_range("Simulation::process: bad id");
  }
  return *processes_[id];
}

const Process& Simulation::process(ProcessId id) const {
  if (id >= n_ || !processes_[id]) {
    throw std::out_of_range("Simulation::process: bad id");
  }
  return *processes_[id];
}

void Simulation::activate(ProcessId id, SimTime t) {
  if (id >= n_) throw std::out_of_range("activate: bad id");
  if (started_) throw std::logic_error("activate after start");
  if (t < 0) throw std::invalid_argument("activate: negative time");
  activation_time_[id] = t;
}

void Simulation::set_shards(std::size_t shards) {
  if (started_) throw std::logic_error("set_shards after start");
  if (shards > 0) {
    // Validates the lookahead up front (and with it the model): throws,
    // naming the offending link, when any cross-shard pair under the
    // p % shards partition has a latency floor below one tick.
    shard_window_widths(*model_, n_, shards, config_.lookahead_global_min);
  }
  shards_requested_ = shards;
}

// scup-analyze: owner-ok(pre-run serial phase; in-shard `start` calls resolve to SinkDiscovery::start, a name collision)
void Simulation::start() {
  if (started_) throw std::logic_error("Simulation::start called twice");
  for (ProcessId id = 0; id < n_; ++id) {
    if (!processes_[id]) {
      throw std::logic_error("Simulation::start: process " +
                             std::to_string(id) + " not installed");
    }
  }
  started_ = true;
  for (const auto& [id, t] : pending_crashes_) {
    if (t == 0) {
      // Crashed at genesis: the process never runs — not even start().
      crashed_[id] = 1;
      continue;
    }
    Event e;
    e.time = t;
    e.seq = next_seq_++;
    e.kind = EventKind::kCrash;
    e.target = id;
    queue_.push(std::move(e));
  }
  pending_crashes_.clear();
  for (ProcessId id = 0; id < n_; ++id) {
    if (activation_time_[id] == 0) continue;
    Event e;
    e.time = activation_time_[id];
    e.seq = next_seq_++;
    e.kind = EventKind::kActivate;
    e.target = id;
    queue_.push(std::move(e));
  }
  {
    // Process start() upcalls construct the first broadcast wave.
    const MessagePool::Scope pool_scope(pool_.get());
    for (ProcessId id = 0; id < n_; ++id) {
      if (activation_time_[id] != 0 || crashed_[id]) continue;
      active_[id] = 1;
      processes_[id]->start();
    }
  }
  if (shards_requested_ > 0) {
    // The pre-start phase above ran serially (no shard context), so its
    // sends drew network verdicts and seqs exactly as the legacy loop
    // would; the engine takes over from the seeded queue.
    engine_ = std::make_unique<ShardEngine>(*this, shards_requested_);
    engine_->seed_from(queue_);
  }
}

// scup-analyze: owner-ok(engine state is touched on the serial path only; the sharded path stages into the caller's ShardContext)
void Simulation::enqueue_send(ProcessId from, ProcessId to, MessagePtr msg) {
  if (to >= n_) throw std::out_of_range("send: bad destination");
  if (from >= n_) throw std::out_of_range("send: bad sender");
  if (!msg) throw std::invalid_argument("send: null message");
  if (crashed_[from]) return;  // a crashed process sends nothing
  ShardContext* ctx = engine_ ? ShardEngine::current() : nullptr;
  SimMetrics& m = ctx ? ctx->metrics : metrics_;
  m.messages_sent += 1;
  // Wire-once accounting: codec-bearing messages are charged their exact
  // encoded frame size, built once per message object and read from the
  // cache on every further send; codec-less types use the memoized
  // byte_size() estimate. The encode/cached split is deterministic (it
  // depends only on which sends a message object fans out to), so the
  // counters survive the cross-mode SimMetrics identity check.
  const Message::SendSize sized = msg->send_size();
  const std::size_t bytes = sized.bytes;
  m.bytes_sent += bytes;
  if (sized.encoded_now) {
    m.protocol_counters[static_cast<std::size_t>(
        ProtoCounter::kWireEncodes)] += 1;
  } else if (sized.from_codec) {
    m.protocol_counters[static_cast<std::size_t>(
        ProtoCounter::kWireCachedSends)] += 1;
  }
  const std::uint32_t type = msg->metrics_type_id();
  if (type >= m.messages_by_type_id.size()) {
    m.messages_by_type_id.resize(type + 1, 0);
    m.bytes_by_type_id.resize(type + 1, 0);
  }
  m.messages_by_type_id[type] += 1;
  m.bytes_by_type_id[type] += bytes;

  // The verdict is drawn at send time in every execution mode, from the
  // sender's private substream. Inside a window this runs on the sending
  // shard's thread with no synchronization: sender `from`'s events all
  // live on shard from % S and are drained in (time, seq) order, so its
  // send sequence — and with it the substream position — is identical in
  // the legacy loop and under every shard count.
  const SimTime send_time = ctx ? ctx->now : now_;
  // drawplan begin(the audited verdict site: the draw-plan check below is
  // what licenses every other access)
  StreamRng& stream = net_streams_[from];
  const std::uint64_t pos_before = stream.position();
  const NetworkModel::Verdict verdict =
      model_->on_send(from, to, send_time, stream);
  const std::uint64_t consumed = stream.position() - pos_before;
  // drawplan end
  if (consumed != model_->draws_per_send(send_time)) {
    throw std::logic_error(
        "NetworkModel broke the draw-plan contract: on_send consumed " +
        std::to_string(consumed) + " draw(s) where draws_per_send(now) "
        "promises " + std::to_string(model_->draws_per_send(send_time)));
  }
  if (ctx) ctx->stats.inline_verdicts += 1;
  if (verdict.dropped) {
    m.messages_dropped += 1;
    return;
  }
  if (verdict.deliver_at < send_time ||
      (verdict.duplicated && verdict.duplicate_at < send_time)) {
    throw std::logic_error("NetworkModel: delivery scheduled in the past");
  }
  // The original is routed before the duplicate and holds the smaller seq
  // (dense or temporary), preserving the queue's seq-sorted-bucket
  // invariant when both copies sample the same delay.
  MessagePtr dup_msg = verdict.duplicated ? msg : nullptr;
  route_delivery(ctx, from, to, verdict.deliver_at, std::move(msg));
  if (verdict.duplicated) {
    m.messages_duplicated += 1;
    // Both copies share the immutable message.
    route_delivery(ctx, from, to, verdict.duplicate_at, std::move(dup_msg));
  }
}

// scup-analyze: owner-ok(engine state is touched on the serial path only; the sharded path stages into the caller's ShardContext)
void Simulation::route_delivery(ShardContext* ctx, ProcessId from,
                                ProcessId to, SimTime at, MessagePtr msg) {
  Event e;
  e.time = at;
  e.kind = EventKind::kDeliver;
  e.target = to;
  e.from = from;
  e.msg = std::move(msg);
  if (ctx == nullptr) {
    e.seq = next_seq_++;
    queue_.push(std::move(e));
    return;
  }
  if (at < engine_->window_end()) {
    if (to % engine_->shards() != ctx->index) {
      // Unreachable for honest models: a cross-shard verdict satisfies
      // deliver_at >= send_time + min_latency(from, to) >= window_end by
      // the window construction. Landing here means min_latency lied.
      throw std::logic_error(
          "NetworkModel delivered a cross-shard message inside the "
          "conservative window; min_latency(from, to) must lower-bound "
          "every verdict");
    }
    // Intra-shard and inside the window: run it provisionally on this
    // shard under a temporary seq that sorts exactly where the serial
    // run's window-assigned seq would (see sharded_engine.hpp header).
    e.seq = kTempSeqBase + ctx->next_temp_seq++;
    ctx->provisional_keys.emplace(e.seq, ctx->make_qkey());
    ctx->stats.provisional_sends += 1;
    ctx->queue.push(std::move(e));
    return;
  }
  // At or past the window end: stage for the barrier, which assigns the
  // dense seq in merged pedigree order and routes to the owning shard.
  ctx->stage(std::move(e));
}

std::uint64_t& Simulation::timer_generation(ProcessId target, int timer_id) {
  auto& table = timer_generations_[target];
  for (auto& [id, generation] : table) {
    if (id == timer_id) return generation;
  }
  table.emplace_back(timer_id, 0);
  return table.back().second;
}

const std::uint64_t* Simulation::find_timer_generation(ProcessId target,
                                                       int timer_id) const {
  for (const auto& [id, generation] : timer_generations_[target]) {
    if (id == timer_id) return &generation;
  }
  return nullptr;
}

// scup-analyze: owner-ok(engine state is touched on the serial path only; the sharded path stages into the caller's ShardContext)
void Simulation::enqueue_timer(ProcessId target, int timer_id, SimTime delay) {
  if (delay < 0) throw std::invalid_argument("set_timer: negative delay");
  const std::uint64_t generation = ++timer_generation(target, timer_id);
  Event e;
  e.kind = EventKind::kTimer;
  e.target = target;
  e.timer_id = timer_id;
  e.timer_generation = generation;
  ShardContext* ctx = engine_ ? ShardEngine::current() : nullptr;
  if (ctx) {
    e.time = ctx->now + delay;
    if (e.time < engine_->window_end()) {
      // Fires inside the current window: run it provisionally on this
      // shard (timers are always self-targeted, so the firing is
      // shard-local) under a temporary seq that sorts exactly where the
      // serial run's window-assigned seq would.
      e.seq = kTempSeqBase + ctx->next_temp_seq++;
      ctx->provisional_keys.emplace(e.seq, ctx->make_qkey());
      ctx->queue.push(std::move(e));
    } else {
      ctx->stage(std::move(e));
    }
    return;
  }
  e.time = now_ + delay;
  e.seq = next_seq_++;
  queue_.push(std::move(e));
}

void Simulation::cancel_timer(ProcessId target, int timer_id) {
  // Bumping the generation invalidates any queued firing (including a
  // provisional one sitting in the caller's own shard queue).
  ++timer_generation(target, timer_id);
}

// scup-analyze: owner-ok(the token math is pure; when sharded, the log append is staged for the barrier replay)
Notary::Token Simulation::sign_as(ProcessId signer, std::uint64_t statement) {
  ShardContext* ctx = engine_ ? ShardEngine::current() : nullptr;
  if (ctx == nullptr) return notary_.sign(signer, statement);
  const Notary::Token token = notary_.compute(signer, statement);
  const auto [off, len] = ctx->make_qkey();
  StagedSign sg;
  sg.key_off = off;
  sg.key_len = len;
  sg.signer = signer;
  sg.statement = statement;
  ctx->signs.push_back(sg);
  return token;
}

void Simulation::note_delivery(const Delivery& d) {
  if (engine_ == nullptr) return;
  ShardContext* ctx = ShardEngine::current();
  if (ctx == nullptr) return;
  // The cookie carries the delivery event's seq through the batched
  // upcall; D(delivery i of the batch) = [tick, 0, seq], except that a
  // provisional (same-window intra-shard) delivery has only a temporary
  // per-shard seq — not globally comparable — so its pedigree is its
  // scheduling key, D = [tick, 1] ++ Q, exactly like a provisional timer.
  ctx->current_key.clear();
  ctx->current_key.push_back(static_cast<std::uint64_t>(ctx->now));
  if (d.cookie >= kTempSeqBase) {
    ctx->current_key.push_back(1);
    const auto it = ctx->provisional_keys.find(d.cookie);
    const auto [off, len] = it->second;
    // Copy out of the arena now — later staging may reallocate it.
    ctx->current_key.insert(ctx->current_key.end(),
                            ctx->key_arena.begin() + off,
                            ctx->key_arena.begin() + off + len);
    ctx->provisional_keys.erase(it);
    ctx->stats.provisional_events += 1;
  } else {
    ctx->current_key.push_back(0);
    ctx->current_key.push_back(d.cookie);
  }
  ctx->intra = 0;
}

// scup-analyze: owner-ok(serial path adds to metrics_ directly; the sharded path adds to the shard's window delta)
void Simulation::counter_add(ProtoCounter counter, std::uint64_t delta) {
  ShardContext* ctx = engine_ ? ShardEngine::current() : nullptr;
  SimMetrics& m = ctx ? ctx->metrics : metrics_;
  m.protocol_counters[static_cast<std::size_t>(counter)] += delta;
}

void Simulation::isolate(ProcessId id) {
  if (id >= n_) throw std::out_of_range("isolate: bad id");
  isolated_[id] = 1;
}

void Simulation::crash(ProcessId id) {
  if (id >= n_) throw std::out_of_range("crash: bad id");
  crashed_[id] = 1;
}

void Simulation::crash_at(ProcessId id, SimTime t) {
  if (id >= n_) throw std::out_of_range("crash_at: bad id");
  if (t < now_) throw std::invalid_argument("crash_at: time in the past");
  if (!started_) {
    pending_crashes_.emplace_back(id, t);
    return;
  }
  Event e;
  e.time = t;
  e.seq = next_seq_++;
  e.kind = EventKind::kCrash;
  e.target = id;
  if (engine_) {
    engine_->push_external(std::move(e));
  } else {
    queue_.push(std::move(e));
  }
}

void Simulation::dispatch(Event& event, SimMetrics& metrics) {
  if (crashed_[event.target]) return;  // crashed: nothing fires, ever
  Process& p = *processes_[event.target];
  switch (event.kind) {
    case EventKind::kDeliver:
      if (isolated_[event.target]) return;
      if (!active_[event.target]) {
        // Not yet activated: the message waits in the mailbox and is
        // handed over right after the deferred start().
        mailboxes_[event.target].emplace_back(event.from,
                                              std::move(event.msg));
        return;
      }
      {
        // Route through the batched upcall (count 1) so on_messages
        // overrides observe every delivery in both execution modes; the
        // sharded engine batches whole-tick runs upstream and never
        // reaches this line for deliverable targets.
        Delivery d{event.from, std::move(event.msg), event.seq};
        p.on_messages(&d, 1);
      }
      return;
    case EventKind::kTimer: {
      // Drop if re-armed/cancelled since scheduling.
      const std::uint64_t* generation =
          find_timer_generation(event.target, event.timer_id);
      if (generation == nullptr || *generation != event.timer_generation) {
        return;
      }
      metrics.timer_fires += 1;
      p.on_timer(event.timer_id);
      return;
    }
    case EventKind::kActivate: {
      active_[event.target] = 1;
      p.start();
      auto mailbox = std::move(mailboxes_[event.target]);
      mailboxes_[event.target].clear();
      for (auto& [from, msg] : mailbox) {
        if (crashed_[event.target] || isolated_[event.target]) break;
        p.on_message(from, msg);
      }
      return;
    }
    case EventKind::kCrash:
      crashed_[event.target] = 1;
      return;
  }
}

void Simulation::absorb_metrics(SimMetrics& delta) {
  metrics_.messages_sent += delta.messages_sent;
  metrics_.bytes_sent += delta.bytes_sent;
  if (delta.messages_by_type_id.size() > metrics_.messages_by_type_id.size()) {
    metrics_.messages_by_type_id.resize(delta.messages_by_type_id.size(), 0);
    metrics_.bytes_by_type_id.resize(delta.bytes_by_type_id.size(), 0);
  }
  for (std::size_t i = 0; i < delta.messages_by_type_id.size(); ++i) {
    metrics_.messages_by_type_id[i] += delta.messages_by_type_id[i];
    metrics_.bytes_by_type_id[i] += delta.bytes_by_type_id[i];
  }
  metrics_.timer_fires += delta.timer_fires;
  metrics_.events_processed += delta.events_processed;
  metrics_.messages_dropped += delta.messages_dropped;
  metrics_.messages_duplicated += delta.messages_duplicated;
  for (std::size_t i = 0; i < kProtoCounterCount; ++i) {
    metrics_.protocol_counters[i] += delta.protocol_counters[i];
  }
  // Zero in place: the per-type vectors keep their size (their length only
  // encodes the max interned id seen, which merging preserves) and their
  // capacity, so steady-state windows allocate nothing here.
  delta.messages_sent = 0;
  delta.bytes_sent = 0;
  std::fill(delta.messages_by_type_id.begin(),
            delta.messages_by_type_id.end(), 0);
  std::fill(delta.bytes_by_type_id.begin(), delta.bytes_by_type_id.end(), 0);
  delta.timer_fires = 0;
  delta.events_processed = 0;
  delta.messages_dropped = 0;
  delta.messages_duplicated = 0;
  delta.protocol_counters.fill(0);
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  Event event = queue_.pop();
  now_ = event.time;
  metrics_.events_processed += 1;
  dispatch(event, metrics_);
  return true;
}

std::size_t Simulation::run_for(SimTime deadline) {
  if (!started_) throw std::logic_error("run_for before start");
  const MessagePool::Scope pool_scope(pool_.get());
  if (engine_) {
    const std::size_t before = metrics_.events_processed;
    while (engine_->run_window(deadline)) {
    }
    return metrics_.events_processed - before;
  }
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++processed;
  }
  return processed;
}

// ---- Process member functions that need the Simulation definition ----

void Process::send(ProcessId to, MessagePtr msg) {
  sim_->enqueue_send(id_, to, std::move(msg));
}

void Process::send_all(const NodeSet& to, const MessagePtr& msg) {
  for (ProcessId p : to) {
    if (p != id_) send(p, msg);
  }
}

void Process::set_timer(int timer_id, SimTime delay) {
  sim_->enqueue_timer(id_, timer_id, delay);
}

void Process::cancel_timer(int timer_id) { sim_->cancel_timer(id_, timer_id); }

SimTime Process::now() const { return sim_->now(); }

Rng& Process::rng() { return sim_->process_rngs_[id_]; }

std::size_t Process::universe_size() const { return sim_->size(); }

std::uint64_t Process::sign(std::uint64_t statement) const {
  return sim_->sign_as(id_, statement);
}

bool Process::verify(ProcessId signer, std::uint64_t statement,
                     std::uint64_t token) const {
  return sim_->notary().verify(signer, statement, token);
}

void Process::counter_add(ProtoCounter counter, std::uint64_t delta) {
  sim_->counter_add(counter, delta);
}

void Process::on_messages(Delivery* batch, std::size_t count) {
  // scup-sanitize: batch/count come from the deterministic event plane
  for (std::size_t i = 0; i < count; ++i) {
    begin_delivery(batch[i]);
    // scup-sanitize: delivery slots were bounds-checked by the scheduler
    on_message(batch[i].from, batch[i].msg);
  }
}

void Process::begin_delivery(const Delivery& d) { sim_->note_delivery(d); }

}  // namespace scup::sim
