// E2 — Theorem 2 / Fig. 2: quorum-intersection violation with locally
// defined slices, and its disappearance under Algorithm 2.
//
// Rows:
//  - Fig2/Local: the paper's counterexample — Q1={5,6,7}, Q2={1,2,3,4}
//    disjoint (violation=1, min_intersection=0).
//  - Fig2/Algorithm2: same graph with SD-built slices — no violation.
//  - RandomFamily/<camp>: the generalized two-camp family; local slices
//    violate at every size, Algorithm-2 slices never do.
#include "bench_common.hpp"

#include "fbqs/fig_examples.hpp"

namespace scup {
namespace {

void BM_Fig2_LocalSlices(benchmark::State& state) {
  const auto g = graph::fig2_graph();
  fbqs::FbqsSystem::IntertwinedReport report;
  bool q1_quorum = false, q2_quorum = false;
  for (auto _ : state) {
    const fbqs::FbqsSystem sys = fbqs::fig2_local_system();
    q1_quorum = sys.is_quorum(NodeSet(7, {4, 5, 6}));     // paper {5,6,7}
    q2_quorum = sys.is_quorum(NodeSet(7, {0, 1, 2, 3}));  // paper {1,2,3,4}
    report = sys.check_intertwined(NodeSet::full(7), 1);
    benchmark::DoNotOptimize(report);
  }
  state.counters["q1_is_quorum"] = q1_quorum ? 1 : 0;
  state.counters["q2_is_quorum"] = q2_quorum ? 1 : 0;
  state.counters["violation"] = report.ok ? 0 : 1;
  state.counters["min_intersection"] =
      static_cast<double>(report.min_intersection);
}
BENCHMARK(BM_Fig2_LocalSlices);

void BM_Fig2_Algorithm2Slices(benchmark::State& state) {
  fbqs::FbqsSystem::IntertwinedReport report;
  for (auto _ : state) {
    const auto sys = bench::algorithm2_system(7, graph::fig2_sink(), 1);
    report = sys.check_intertwined(NodeSet::full(7), 1);
    benchmark::DoNotOptimize(report);
  }
  state.counters["violation"] = report.ok ? 0 : 1;
  state.counters["min_intersection"] =
      static_cast<double>(report.min_intersection);
}
BENCHMARK(BM_Fig2_Algorithm2Slices);

/// Two-camp family (generalized Fig. 2): sink clique of `camp` nodes plus a
/// mutually-known non-sink clique of the same size.
graph::Digraph two_camp_graph(std::size_t camp) {
  const std::size_t n = 2 * camp;
  graph::Digraph g(n);
  for (ProcessId u = 0; u < camp; ++u) {
    for (ProcessId v = 0; v < camp; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  for (ProcessId u = static_cast<ProcessId>(camp); u < n; ++u) {
    for (ProcessId v = static_cast<ProcessId>(camp); v < n; ++v) {
      if (u != v) g.add_edge(u, v);
    }
    g.add_edge(u, u % camp);
  }
  return g;
}

void BM_TwoCampFamily_LocalVsAlgorithm2(benchmark::State& state) {
  const std::size_t camp = static_cast<std::size_t>(state.range(0));
  const auto g = two_camp_graph(camp);
  const std::size_t n = g.node_count();
  bool local_violates = false;
  bool algo2_violates = true;
  for (auto _ : state) {
    const auto local = bench::local_system(g, 1);
    NodeSet camp_a(n), camp_b(n);
    for (ProcessId i = 0; i < camp; ++i) camp_a.add(i);
    for (ProcessId i = static_cast<ProcessId>(camp); i < n; ++i) {
      camp_b.add(i);
    }
    local_violates = local.is_quorum(camp_a) && local.is_quorum(camp_b) &&
                     !camp_a.intersects(camp_b);

    NodeSet sink(n);
    for (ProcessId i = 0; i < camp; ++i) sink.add(i);
    const auto fixed = bench::algorithm2_system(n, sink, 1);
    // With Algorithm 2, the non-sink camp alone is never a quorum.
    algo2_violates = fixed.is_quorum(camp_b);
    benchmark::DoNotOptimize(local_violates);
  }
  state.counters["local_violation"] = local_violates ? 1 : 0;
  state.counters["algo2_violation"] = algo2_violates ? 1 : 0;
}
BENCHMARK(BM_TwoCampFamily_LocalVsAlgorithm2)->DenseRange(3, 8);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E2");
