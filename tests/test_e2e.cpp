// End-to-end integration tests: the full pipelines of the paper —
// Stellar+SD (Theorem 5 / Corollary 2) and the BFT-CUP baseline (Theorem 1)
// — on the paper's figures and on random k-OSR families, under several
// Byzantine behaviours and pre-GST asynchrony.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/kosr.hpp"
#include "graph/scc.hpp"

namespace scup::core {
namespace {

ScenarioConfig base_config(graph::Digraph g, std::size_t f, NodeSet faulty,
                           std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.graph = std::move(g);
  cfg.f = f;
  cfg.faulty = std::move(faulty);
  cfg.net.seed = seed;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = 10;
  return cfg;
}

void expect_consensus(const ScenarioReport& r, const char* what) {
  EXPECT_TRUE(r.all_decided) << what << ": " << r.summary();
  EXPECT_TRUE(r.agreement) << what << ": " << r.summary();
  EXPECT_TRUE(r.validity) << what << ": " << r.summary();
}

TEST(EndToEndTest, StellarSdOnFig1) {
  auto cfg = base_config(graph::fig1_graph(), 1, graph::fig1_faulty());
  const auto report = run_scenario(cfg);
  expect_consensus(report, "fig1 stellar");
  EXPECT_TRUE(report.sd_all_returned);
  EXPECT_TRUE(report.sd_sink_exact);
  EXPECT_TRUE(report.sd_flags_correct);
  EXPECT_EQ(report.true_sink, graph::fig1_sink());
}

TEST(EndToEndTest, BftCupOnFig1) {
  auto cfg = base_config(graph::fig1_graph(), 1, graph::fig1_faulty());
  cfg.protocol = ProtocolKind::kBftCup;
  const auto report = run_scenario(cfg);
  expect_consensus(report, "fig1 bftcup");
  EXPECT_TRUE(report.sd_sink_exact);
}

TEST(EndToEndTest, StellarSdOnFig2AllFailurePlacements) {
  // Corollary 2 on the very graph used for the negative result: with the
  // sink detector, Stellar solves consensus on Fig. 2 for any single fault.
  for (ProcessId victim = 0; victim < 7; ++victim) {
    auto cfg = base_config(graph::fig2_graph(), 1, NodeSet(7, {victim}),
                           /*seed=*/40 + victim);
    const auto report = run_scenario(cfg);
    expect_consensus(report, "fig2 stellar");
    EXPECT_TRUE(report.sd_sink_exact) << "victim=" << victim;
  }
}

TEST(EndToEndTest, BftCupOnFig2) {
  auto cfg = base_config(graph::fig2_graph(), 1, NodeSet(7, {5}));
  cfg.protocol = ProtocolKind::kBftCup;
  const auto report = run_scenario(cfg);
  expect_consensus(report, "fig2 bftcup");
}

TEST(EndToEndTest, StellarSdUnderPreGstAsynchrony) {
  auto cfg = base_config(graph::fig2_graph(), 1, NodeSet(7, {3}), 77);
  cfg.net.gst = 8'000;
  cfg.net.pre_gst_max_delay = 2'000;
  const auto report = run_scenario(cfg);
  expect_consensus(report, "fig2 stellar pre-GST");
}

TEST(EndToEndTest, ScpEquivocatorCannotBreakAgreement) {
  auto cfg = base_config(graph::fig2_graph(), 1, NodeSet(7, {1}), 13);
  cfg.adversary = AdversaryKind::kScpEquivocator;
  const auto report = run_scenario(cfg);
  EXPECT_TRUE(report.all_decided) << report.summary();
  EXPECT_TRUE(report.agreement) << report.summary();
}

TEST(EndToEndTest, DiscoveryLiarHandled) {
  graph::KosrGenParams params;
  params.sink_size = 5;
  params.non_sink_size = 3;
  params.k = 3;
  params.seed = 6;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet faulty(g.node_count(), {1});  // sink member by construction
  ASSERT_TRUE(graph::satisfies_bft_cup_preconditions(g, faulty, 1));
  auto cfg = base_config(g, 1, faulty, 21);
  cfg.adversary = AdversaryKind::kDiscoveryLiar;
  const auto report = run_scenario(cfg);
  expect_consensus(report, "liar");
  EXPECT_TRUE(report.sd_sink_exact);
}

TEST(EndToEndTest, DiscoveryEquivocatorHandled) {
  graph::KosrGenParams params;
  params.sink_size = 5;
  params.non_sink_size = 3;
  params.k = 3;
  params.seed = 8;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet faulty(g.node_count(), {2});
  ASSERT_TRUE(graph::satisfies_bft_cup_preconditions(g, faulty, 1));
  auto cfg = base_config(g, 1, faulty, 22);
  cfg.adversary = AdversaryKind::kDiscoveryEquivocator;
  const auto report = run_scenario(cfg);
  expect_consensus(report, "equivocating liar");
}

TEST(EndToEndTest, ReportRejectsTooManyFaults) {
  auto cfg = base_config(graph::fig2_graph(), 1, NodeSet(7, {0, 1}));
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

TEST(EndToEndTest, DecisionTimesAreOrderedAndRecorded) {
  auto cfg = base_config(graph::fig1_graph(), 1, graph::fig1_faulty(), 3);
  const auto report = run_scenario(cfg);
  ASSERT_TRUE(report.all_decided);
  EXPECT_LE(report.first_decision, report.last_decision);
  for (ProcessId i = 0; i < 8; ++i) {
    if (cfg.faulty.contains(i)) {
      EXPECT_EQ(report.decision_times[i], kTimeInfinity);
    } else {
      EXPECT_LT(report.decision_times[i], kTimeInfinity);
    }
  }
  EXPECT_GT(report.metrics.messages_sent, 0u);
}

// The paper's headline comparison (E6 vs E7): on identical graphs and
// failure sets, BOTH protocols solve consensus with the same minimal
// knowledge — Stellar needs the SD oracle, BFT-CUP its discovery + PBFT.
class ProtocolComparisonTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolComparisonTest, BothProtocolsDecideOnRandomKosrGraphs) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7 + 11);
  const std::size_t f = 1 + seed % 2;
  graph::KosrGenParams params;
  params.sink_size = 3 * f + 2;
  params.non_sink_size = 2 + seed % 3;
  params.k = 2 * f + 1;
  params.seed = seed;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet sink = graph::unique_sink_component(g);
  const NodeSet faulty =
      graph::pick_safe_faulty_set(g, sink, f, /*allow_in_sink=*/true, rng);

  for (ProtocolKind protocol :
       {ProtocolKind::kStellarSd, ProtocolKind::kBftCup}) {
    auto cfg = base_config(g, f, faulty, seed);
    cfg.protocol = protocol;
    const auto report = run_scenario(cfg);
    expect_consensus(report, protocol == ProtocolKind::kStellarSd
                                 ? "stellar"
                                 : "bftcup");
    EXPECT_TRUE(report.sd_sink_exact) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolComparisonTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace scup::core
