#include "graph/disjoint_paths.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace scup::graph {

// Flow-network layout: graph node w becomes w_in = 2w and w_out = 2w + 1.
// The split arc w_in -> w_out carries capacity 1 (raised to `big_` for the
// query endpoints); original edge (u, v) becomes u_out -> v_in with
// capacity 1. Arcs are stored with their reverse arc at index ^1.

void DisjointPathEngine::prepare(const Digraph& g, const NodeSet& active) {
  n_ = g.node_count();
  big_ = static_cast<int>(n_) + 1;
  active_ = active;
  arcs_.clear();
  base_cap_.clear();
  head_.assign(2 * n_, -1);
  split_arc_.assign(n_, -1);

  const auto add_arc = [this](int u, int v, int cap) {
    const int index = static_cast<int>(arcs_.size());
    arcs_.push_back({v, head_[u]});
    base_cap_.push_back(cap);
    head_[u] = index;
    arcs_.push_back({u, head_[v]});
    base_cap_.push_back(0);
    head_[v] = index + 1;
    return index;
  };

  for (ProcessId w : active) {
    split_arc_[w] = add_arc(static_cast<int>(2 * w),
                            static_cast<int>(2 * w + 1), 1);
    for (ProcessId x : g.successors(w)) {
      if (active.contains(x)) {
        add_arc(static_cast<int>(2 * w + 1), static_cast<int>(2 * x), 1);
      }
    }
  }
  level_.assign(2 * n_, -1);
  prepared_ = true;
}

std::size_t DisjointPathEngine::max_disjoint_paths(ProcessId u, ProcessId v,
                                                   std::size_t limit) {
  if (!prepared_) {
    throw std::logic_error("DisjointPathEngine: query before prepare()");
  }
  if (u == v) {
    throw std::invalid_argument("disjoint paths: endpoints must differ");
  }
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("disjoint paths: node out of range");
  }
  if (!active_.contains(u) || !active_.contains(v)) return 0;

  ++query_count_;
  cap_ = base_cap_;
  cap_[split_arc_[u]] = big_;
  cap_[split_arc_[v]] = big_;

  const int s = static_cast<int>(2 * u + 1);
  const int t = static_cast<int>(2 * v);
  std::size_t flow = 0;
  while (flow < limit && bfs(s, t)) {
    iter_ = head_;
    while (flow < limit) {
      const int pushed = dfs(s, t, std::numeric_limits<int>::max());
      if (pushed == 0) break;
      flow += static_cast<std::size_t>(pushed);
    }
  }
  return flow;
}

bool DisjointPathEngine::has_k_paths(ProcessId u, ProcessId v, std::size_t k) {
  if (k == 0) return true;
  return max_disjoint_paths(u, v, k) >= k;
}

DisjointPathEngine::VertexCut DisjointPathEngine::extract_cut(ProcessId u,
                                                              ProcessId v) {
  if (!prepared_) {
    throw std::logic_error("DisjointPathEngine::extract_cut before prepare()");
  }
  // Residual-reachable flow nodes from the source of the last query.
  level_.assign(head_.size(), -1);
  queue_.clear();
  const int s = static_cast<int>(2 * u + 1);
  level_[s] = 0;
  queue_.push_back(s);
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const int x = queue_[qi];
    for (int e = head_[x]; e != -1; e = arcs_[e].next) {
      if (cap_[e] > 0 && level_[arcs_[e].to] == -1) {
        level_[arcs_[e].to] = 0;
        queue_.push_back(arcs_[e].to);
      }
    }
  }

  VertexCut result{NodeSet(n_), NodeSet(n_)};
  // Source side: nodes whose out-half is residual-reachable (their outgoing
  // edges can still feed flow).
  for (ProcessId w : active_) {
    if (level_[2 * w + 1] != -1) result.source_side.add(w);
  }
  // Cover every saturated arc crossing the frontier with one vertex on it:
  //  - a split arc w_in -> w_out is covered by w,
  //  - an edge arc a_out -> b_in by b (or by a when b is the target v,
  //    which must not join the cut; a == u means the direct edge u -> v,
  //    which no internal vertex covers and which contributes exactly one
  //    path on its own).
  for (ProcessId w : active_) {
    if (level_[2 * w] != -1 && level_[2 * w + 1] == -1) result.cut.add(w);
    if (level_[2 * w + 1] == -1) continue;
    for (int e = head_[2 * w + 1]; e != -1; e = arcs_[e].next) {
      if (e % 2 != 0 || cap_[e] > 0) continue;  // reverse arc or unsaturated
      const int to = arcs_[e].to;
      if (level_[to] != -1) continue;  // not crossing
      const auto b = static_cast<ProcessId>(to / 2);
      if (b != v) {
        result.cut.add(b);
      } else if (w != u) {
        result.cut.add(w);
      }
    }
  }
  return result;
}

bool DisjointPathEngine::bfs(int s, int t) {
  level_.assign(head_.size(), -1);
  queue_.clear();
  level_[s] = 0;
  queue_.push_back(s);
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const int u = queue_[qi];
    for (int e = head_[u]; e != -1; e = arcs_[e].next) {
      if (cap_[e] > 0 && level_[arcs_[e].to] == -1) {
        level_[arcs_[e].to] = level_[u] + 1;
        queue_.push_back(arcs_[e].to);
      }
    }
  }
  return level_[t] != -1;
}

int DisjointPathEngine::dfs(int u, int t, int pushed) {
  if (u == t) return pushed;
  for (int& e = iter_[u]; e != -1; e = arcs_[e].next) {
    if (cap_[e] > 0 && level_[arcs_[e].to] == level_[u] + 1) {
      const int got = dfs(arcs_[e].to, t, std::min(pushed, cap_[e]));
      if (got > 0) {
        cap_[e] -= got;
        cap_[e ^ 1] += got;
        return got;
      }
    }
  }
  return 0;
}

std::size_t max_vertex_disjoint_paths(const Digraph& g, ProcessId u,
                                      ProcessId v, const NodeSet& active) {
  if (u >= g.node_count() || v >= g.node_count()) {
    throw std::out_of_range("disjoint paths: node out of range");
  }
  DisjointPathEngine engine;
  engine.prepare(g, active);
  return engine.max_disjoint_paths(u, v, g.node_count() + 1);
}

std::size_t max_vertex_disjoint_paths(const Digraph& g, ProcessId u,
                                      ProcessId v) {
  return max_vertex_disjoint_paths(g, u, v, NodeSet::full(g.node_count()));
}

bool has_k_vertex_disjoint_paths(const Digraph& g, ProcessId u, ProcessId v,
                                 std::size_t k, const NodeSet& active) {
  if (k == 0) return true;
  if (u >= g.node_count() || v >= g.node_count()) {
    throw std::out_of_range("disjoint paths: node out of range");
  }
  DisjointPathEngine engine;
  engine.prepare(g, active);
  return engine.has_k_paths(u, v, k);
}

bool is_k_strongly_connected(const Digraph& g, std::size_t k,
                             const NodeSet& active) {
  const auto nodes = active.to_vector();
  if (nodes.size() <= 1) return true;
  // One prepared network serves every ordered pair.
  DisjointPathEngine engine;
  engine.prepare(g, active);
  for (ProcessId u : nodes) {
    for (ProcessId v : nodes) {
      if (u == v) continue;
      if (!engine.has_k_paths(u, v, k)) return false;
    }
  }
  return true;
}

bool is_k_strongly_connected(const Digraph& g, std::size_t k) {
  return is_k_strongly_connected(g, k, NodeSet::full(g.node_count()));
}

bool is_f_reachable(const Digraph& g, ProcessId i, ProcessId j, std::size_t f,
                    const NodeSet& correct) {
  if (i == j) return true;
  return has_k_vertex_disjoint_paths(g, i, j, f + 1, correct);
}

}  // namespace scup::graph
