#include "common/node_set.hpp"

#include <bit>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace scup {

namespace {
constexpr std::size_t kBits = 64;

std::size_t word_count(std::size_t universe) {
  return (universe + kBits - 1) / kBits;
}
}  // namespace

NodeSet::NodeSet(std::size_t universe)
    : universe_(universe), words_(word_count(universe), 0) {}

NodeSet::NodeSet(std::size_t universe, std::initializer_list<ProcessId> members)
    : NodeSet(universe) {
  for (ProcessId m : members) add(m);
}

NodeSet::NodeSet(std::size_t universe, const std::vector<ProcessId>& members)
    : NodeSet(universe) {
  for (ProcessId m : members) add(m);
}

NodeSet NodeSet::full(std::size_t universe) {
  NodeSet s(universe);
  for (std::size_t w = 0; w < s.words_.size(); ++w) s.words_[w] = ~0ULL;
  // Clear the bits beyond the universe in the last word.
  const std::size_t used = universe % kBits;
  if (used != 0 && !s.words_.empty()) {
    s.words_.back() &= (1ULL << used) - 1;
  }
  return s;
}

bool NodeSet::empty() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::size_t NodeSet::count() const {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool NodeSet::contains(ProcessId id) const {
  if (id >= universe_) return false;
  return (words_[id / kBits] >> (id % kBits)) & 1ULL;
}

void NodeSet::add(ProcessId id) {
  if (id >= universe_) {
    throw std::out_of_range("NodeSet::add: id " + std::to_string(id) +
                            " outside universe of size " +
                            std::to_string(universe_));
  }
  words_[id / kBits] |= 1ULL << (id % kBits);
}

void NodeSet::remove(ProcessId id) {
  if (id >= universe_) return;
  words_[id / kBits] &= ~(1ULL << (id % kBits));
}

void NodeSet::clear() {
  for (auto& w : words_) w = 0;
}

void NodeSet::check_same_universe(const NodeSet& other) const {
  if (universe_ != other.universe_) {
    throw std::invalid_argument(
        "NodeSet operation on mismatched universes: " +
        std::to_string(universe_) + " vs " + std::to_string(other.universe_));
  }
}

NodeSet& NodeSet::operator|=(const NodeSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

NodeSet& NodeSet::operator&=(const NodeSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

NodeSet& NodeSet::operator-=(const NodeSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

NodeSet NodeSet::complement() const {
  NodeSet result = NodeSet::full(universe_);
  result -= *this;
  return result;
}

bool NodeSet::subset_of(const NodeSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool NodeSet::intersects(const NodeSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::size_t NodeSet::intersection_count(const NodeSet& other) const {
  check_same_universe(other);
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return c;
}

bool NodeSet::operator==(const NodeSet& other) const {
  return universe_ == other.universe_ && words_ == other.words_;
}

std::strong_ordering NodeSet::operator<=>(const NodeSet& other) const {
  if (auto c = universe_ <=> other.universe_; c != 0) return c;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (auto c = words_[i] <=> other.words_[i]; c != 0) return c;
  }
  return std::strong_ordering::equal;
}

std::vector<ProcessId> NodeSet::to_vector() const {
  std::vector<ProcessId> v;
  v.reserve(count());
  for (ProcessId p : *this) v.push_back(p);
  return v;
}

ProcessId NodeSet::min_member() const {
  ProcessId first = next_member(0);
  return first == universe_ ? kInvalidProcess : first;
}

ProcessId NodeSet::next_member(ProcessId from) const {
  if (from >= universe_) return static_cast<ProcessId>(universe_);
  std::size_t word = from / kBits;
  std::uint64_t current = words_[word] & (~0ULL << (from % kBits));
  while (true) {
    if (current != 0) {
      const ProcessId id = static_cast<ProcessId>(
          word * kBits + static_cast<std::size_t>(std::countr_zero(current)));
      return id < universe_ ? id : static_cast<ProcessId>(universe_);
    }
    ++word;
    if (word >= words_.size()) return static_cast<ProcessId>(universe_);
    current = words_[word];
  }
}

std::size_t NodeSet::hash() const {
  // FNV-1a over the words plus the universe size.
  std::size_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(universe_);
  for (std::uint64_t w : words_) mix(w);
  return h;
}

std::string NodeSet::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const NodeSet& set) {
  os << '{';
  bool first = true;
  for (ProcessId p : set) {
    if (!first) os << ", ";
    first = false;
    os << p;
  }
  os << '}';
  return os;
}

}  // namespace scup
