// Lookahead-window suite: per-pair window widths, the draw-plan RNG
// replay contract, and the identity guarantees both must preserve.
//
//  - shard_window_widths unit tests: the per-shard W_out derived from the
//    cross-shard latency matrix, the lookahead_global_min baseline, the
//    unbounded single-shard case, and the configure-time errors that name
//    the offending link (or the base floor) when a topology makes sharding
//    illegal.
//  - Identity grid: heterogeneous link overrides x partition windows x
//    pre-GST loss/duplication, run at shards {0, 1, 2, 3, 8} — metrics,
//    Notary fingerprints, receipt logs and end times must be bit-identical
//    (run_for drains the same event set in every mode). The scenario-level
//    grid repeats the check through run_until's checkpoint grid for both
//    protocols.
//  - Draw-plan differential test: a recording wrapper captures every
//    (from, to, now, stream position, verdict) a live run produced; each
//    record is then replayed from a fresh StreamRng jumped to the recorded
//    position with discard() — the verdict must reproduce exactly and the
//    stream must land at position + draws_per_send(now). This pins the
//    property the parallel send-time verdict path rests on: a sender's
//    stream position is the prefix sum of its own draw plan.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/simulation.hpp"

namespace scup::sim {
namespace {

struct HetMsg final : Message {
  HetMsg(int t, std::uint64_t g) : ttl(t), tag(g) {}
  int ttl;
  std::uint64_t tag;
  std::string type_name() const override { return "test.het"; }
  std::size_t byte_size() const override { return 24; }
};

/// Workload tuned for heterogeneous topologies: the (id -> id+2) lane is
/// the one the fast link overrides cover, so under an even/odd shard split
/// most traffic is fast intra-shard (provisional deliveries) while the
/// (id -> id+1) and tag-directed sends cross shards on slow links.
class HetNode : public Process {
 public:
  HetNode(std::size_t n, int ttl) : n_(n), ttl0_(ttl) {}

  void start() override {
    sign(0xbea70000 + id());
    send((id() + 1) % n_, make_message<HetMsg>(ttl0_, id() * 11 + 1));
    send((id() + 2) % n_, make_message<HetMsg>(ttl0_, id() * 17 + 2));
    set_timer(1, 1 + id() % 4);
  }

  void on_message(ProcessId from, const MessagePtr& msg) override {
    const auto& m = dynamic_cast<const HetMsg&>(*msg);
    log_.push_back(hash_mix(hash_mix(from, m.tag), now(),
                            static_cast<std::uint64_t>(m.ttl)));
    sign(m.tag * 29 + static_cast<std::uint64_t>(m.ttl));
    if (m.ttl > 0) {
      send((id() + 2) % n_, make_message<HetMsg>(m.ttl - 1, m.tag + 3));
      if (m.tag % 3 == 0) {
        send((id() + m.tag) % n_, make_message<HetMsg>(m.ttl - 1, m.tag + 1));
      }
      if (m.ttl % 2 == 0) set_timer(2, m.tag % 3);
    }
  }

  void on_timer(int timer_id) override {
    log_.push_back(
        hash_mix(0x7133, static_cast<std::uint64_t>(timer_id), now()));
    if (timer_id == 1 && ++reps_ < 3) set_timer(1, 3);
  }

  std::vector<std::uint64_t> log_;

 private:
  std::size_t n_;
  int ttl0_;
  int reps_ = 0;
};

constexpr std::size_t kHetN = 24;

/// Slow base (min 6) with fast (id -> id+2) lanes (min 1): under an
/// even/odd split every override is intra-shard, so per-pair lookahead
/// keeps the 6-tick cross-shard floor while the global min collapses to 1.
NetworkConfig het_net(std::uint64_t seed) {
  NetworkConfig net;
  net.gst = 0;
  net.min_delay = 6;
  net.max_delay = 12;
  net.seed = seed;
  for (ProcessId i = 0; i < kHetN; ++i) {
    net.link_overrides.push_back(
        {i, static_cast<ProcessId>((i + 2) % kHetN), 1, 3});
  }
  return net;
}

struct HetRun {
  SimMetrics metrics;
  std::uint64_t fingerprint = 0;
  std::vector<std::vector<std::uint64_t>> logs;
  ShardStats stats;
  SimTime end = 0;
};

HetRun run_het(std::size_t shards, const NetworkConfig& net,
               SimTime horizon = 100'000) {
  Simulation sim(kHetN, net);
  std::vector<HetNode*> nodes;
  for (ProcessId i = 0; i < kHetN; ++i) {
    nodes.push_back(&sim.emplace_process<HetNode>(i, kHetN, 6));
  }
  sim.set_shards(shards);
  sim.start();
  sim.run_for(horizon);
  HetRun out;
  out.metrics = sim.metrics();
  out.fingerprint = sim.notary().fingerprint();
  for (auto* node : nodes) out.logs.push_back(node->log_);
  out.stats = sim.shard_stats();
  out.end = sim.now();
  return out;
}

// ---------------------------------------------------------------------------
// shard_window_widths: the per-pair lookahead matrix.

TEST(LookaheadWindowTest, PerPairWidthsReflectTheCrossShardMatrix) {
  // n = 4, shards = 2 -> shard 0 = {0, 2}, shard 1 = {1, 3}. The single
  // override 0 -> 1 crosses the partition and constrains shard 0's
  // outbound floor; shard 1 has no overrides and keeps the base floor.
  NetworkConfig net;
  net.min_delay = 6;
  net.max_delay = 12;
  net.link_overrides.push_back({0, 1, 2, 9});
  const UniformModel model(net);
  const std::vector<SimTime> w = shard_window_widths(model, 4, 2, false);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 2);
  EXPECT_EQ(w[1], 6);
}

TEST(LookaheadWindowTest, IntraShardOverridesNeverConstrainTheWindow) {
  // Every fast lane in het_net is even->even or odd->odd: intra-shard
  // under an even/odd split, so both shards keep the full 6-tick base
  // floor — the fix for the global-min pessimization.
  const UniformModel model(het_net(1));
  const std::vector<SimTime> w =
      shard_window_widths(model, kHetN, 2, false);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 6);
  EXPECT_EQ(w[1], 6);
  // Under 3 shards the same lanes cross the partition (i and i+2 differ
  // mod 3) and drag the floor down to the override minimum.
  for (SimTime width : shard_window_widths(model, kHetN, 3, false)) {
    EXPECT_EQ(width, 1);
  }
}

TEST(LookaheadWindowTest, GlobalMinModeUsesThePessimizedFloor) {
  const UniformModel model(het_net(1));
  ASSERT_EQ(model.min_latency(), 1);  // one fast link drags the global min
  for (SimTime width : shard_window_widths(model, kHetN, 2, true)) {
    EXPECT_EQ(width, 1);
  }
}

TEST(LookaheadWindowTest, SingleShardHasUnboundedLookahead) {
  // One shard means no cross-shard pairs: any model is legal, even one
  // with a zero latency floor, and the width is unbounded.
  NetworkConfig net;
  net.min_delay = 0;
  net.max_delay = 4;
  const UniformModel model(net);
  const std::vector<SimTime> w = shard_window_widths(model, 8, 1, false);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], kTimeInfinity);
}

TEST(LookaheadWindowTest, NamesTheOffendingCrossShardLink) {
  NetworkConfig net;
  net.min_delay = 6;
  net.max_delay = 12;
  net.link_overrides.push_back({0, 1, 0, 4});  // zero-latency cross link
  const UniformModel model(net);
  try {
    shard_window_widths(model, 4, 2, false);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0 -> 1"), std::string::npos) << what;
  }
  // The same topology is fine when the link stays inside one shard: with
  // one shard there is no partition to cross.
  EXPECT_NO_THROW(shard_window_widths(model, 4, 1, false));
}

TEST(LookaheadWindowTest, NamesTheBaseFloorWhenUnoverriddenPairsAreTooFast) {
  NetworkConfig net;
  net.min_delay = 0;  // base floor too fast; no overrides to save it
  net.max_delay = 4;
  const UniformModel model(net);
  try {
    shard_window_widths(model, 4, 2, false);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("base_min_latency"), std::string::npos) << what;
  }
}

TEST(LookaheadWindowTest, ZeroLatencyModelIsLegalWithOneShard) {
  // set_shards(2) rejects a zero floor, but set_shards(1) must accept it
  // (unbounded lookahead needs no latency promise) and still match the
  // legacy loop bit for bit — including same-tick deliveries.
  NetworkConfig net;
  net.gst = 0;
  net.min_delay = 0;
  net.max_delay = 4;
  net.seed = 5;
  const HetRun legacy = run_het(0, net, 2'000);
  const HetRun windowed = run_het(1, net, 2'000);
  EXPECT_EQ(legacy.metrics, windowed.metrics);
  EXPECT_EQ(legacy.fingerprint, windowed.fingerprint);
  EXPECT_EQ(legacy.logs, windowed.logs);
  EXPECT_EQ(legacy.end, windowed.end);
}

// ---------------------------------------------------------------------------
// Identity: lookahead must change window schedules, never results.

TEST(LookaheadIdentityTest, HetLinksPartitionsAndLossAcrossShardCounts) {
  // The full feature set at once: heterogeneous links, a partition window,
  // pre-GST loss and duplication (the four-draw plan). run_for drains the
  // same event set in every mode, so legacy participates too.
  NetworkConfig net = het_net(23);
  net.gst = 400;
  net.pre_gst_max_delay = 60;
  net.pre_gst_drop = 0.2;
  net.pre_gst_duplicate = 0.2;
  PartitionWindow cut;
  cut.side = NodeSet(kHetN);
  for (ProcessId i = 0; i < kHetN / 3; ++i) cut.side.add(i);
  cut.start = 50;
  cut.heal = 400;
  net.partitions.push_back(cut);

  const HetRun base = run_het(1, net);
  ASSERT_NE(base.fingerprint, 0u);
  ASSERT_GT(base.metrics.messages_dropped, 0u);
  ASSERT_GT(base.metrics.messages_duplicated, 0u);
  for (std::size_t shards : {0u, 2u, 3u, 8u}) {
    const HetRun run = run_het(shards, net);
    EXPECT_EQ(run.metrics, base.metrics) << "shards=" << shards;
    EXPECT_EQ(run.fingerprint, base.fingerprint) << "shards=" << shards;
    EXPECT_EQ(run.logs, base.logs) << "shards=" << shards;
    EXPECT_EQ(run.end, base.end) << "shards=" << shards;
  }
}

TEST(LookaheadIdentityTest, GlobalMinBaselineIsBitIdenticalButSlower) {
  // The E15 A/B in test form: per-pair lookahead vs the pre-lookahead
  // global floor. Identical observables; on this topology the per-pair
  // windows must be at least twice as wide (and at most half as many),
  // and the fast intra-shard lanes must take the provisional path.
  NetworkConfig perpair = het_net(9);
  NetworkConfig global = perpair;
  global.lookahead_global_min = true;

  const HetRun wide = run_het(2, perpair);
  const HetRun narrow = run_het(2, global);
  EXPECT_EQ(wide.metrics, narrow.metrics);
  EXPECT_EQ(wide.fingerprint, narrow.fingerprint);
  EXPECT_EQ(wide.logs, narrow.logs);
  EXPECT_EQ(wide.end, narrow.end);

  ASSERT_GT(wide.stats.windows, 0u);
  ASSERT_GT(narrow.stats.windows, 0u);
  EXPECT_GE(narrow.stats.windows, 2 * wide.stats.windows)
      << "per-pair lookahead should at least halve the window count";
  const double wide_avg = static_cast<double>(wide.stats.window_width_sum) /
                          static_cast<double>(wide.stats.windows);
  const double narrow_avg =
      static_cast<double>(narrow.stats.window_width_sum) /
      static_cast<double>(narrow.stats.windows);
  EXPECT_GE(wide_avg, 2.0 * narrow_avg);
  EXPECT_GT(wide.stats.provisional_sends, 0u);
  EXPECT_GT(wide.stats.inline_verdicts, 0u);
}

TEST(LookaheadIdentityTest, ScenarioGridBothProtocolsThroughRunUntil) {
  // run_until's checkpoint grid: scenario runs stop on a predicate, so the
  // stop point itself must be shard-count-invariant. Heterogeneous links
  // are injected on top of the churn+partition scenario to give per-pair
  // lookahead something to differ on.
  for (core::ProtocolKind protocol :
       {core::ProtocolKind::kStellarSd, core::ProtocolKind::kBftCup}) {
    core::ChurnPartitionParams p;
    p.protocol = protocol;
    p.seed = 11;
    p.with_partition = true;
    p.pre_gst_drop = 0.1;
    core::ScenarioConfig cfg = core::churn_partition_scenario(p);
    cfg.net.link_overrides.push_back({2, 7, 2, 9});
    cfg.net.link_overrides.push_back({7, 2, 2, 9});
    cfg.net.link_overrides.push_back({0, 3, 3, 9});
    cfg.shards = 1;
    const core::ScenarioReport base = core::run_scenario(cfg);
    ASSERT_TRUE(base.all_decided) << "protocol=" << static_cast<int>(protocol);
    for (std::size_t shards : {2u, 3u, 8u}) {
      cfg.shards = shards;
      const core::ScenarioReport run = core::run_scenario(cfg);
      EXPECT_EQ(run.notary_fingerprint, base.notary_fingerprint)
          << "protocol=" << static_cast<int>(protocol)
          << " shards=" << shards;
      EXPECT_EQ(run.metrics, base.metrics)
          << "protocol=" << static_cast<int>(protocol)
          << " shards=" << shards;
      EXPECT_EQ(run.decision_times, base.decision_times)
          << "protocol=" << static_cast<int>(protocol)
          << " shards=" << shards;
      EXPECT_EQ(run.end_time, base.end_time)
          << "protocol=" << static_cast<int>(protocol)
          << " shards=" << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// Draw-plan replay: the contract the parallel verdict path rests on.

struct SendRecord {
  ProcessId from = 0;
  ProcessId to = 0;
  SimTime now = 0;
  std::uint64_t pos_before = 0;
  NetworkModel::Verdict verdict;
};

/// Wraps a UniformModel and records every verdict together with the stream
/// position it was drawn at. Only safe at shards {0, 1} (single-threaded).
class RecordingModel final : public NetworkModel {
 public:
  RecordingModel(const NetworkConfig& config, std::vector<SendRecord>* out)
      : inner_(config), out_(out) {}

  Verdict on_send(ProcessId from, ProcessId to, SimTime now,
                  StreamRng& rng) override {
    const std::uint64_t pos = rng.position();
    const Verdict v = inner_.on_send(from, to, now, rng);
    out_->push_back({from, to, now, pos, v});
    return v;
  }

  std::uint64_t draws_per_send(SimTime now) const override {
    return inner_.draws_per_send(now);
  }
  SimTime min_latency() const override { return inner_.min_latency(); }
  SimTime min_latency(ProcessId from, ProcessId to) const override {
    return inner_.min_latency(from, to);
  }
  SimTime base_min_latency() const override {
    return inner_.base_min_latency();
  }
  std::vector<LatencyOverride> latency_overrides() const override {
    return inner_.latency_overrides();
  }

 private:
  UniformModel inner_;
  std::vector<SendRecord>* out_;
};

std::vector<SendRecord> record_run(std::size_t shards,
                                   const NetworkConfig& net) {
  std::vector<SendRecord> records;
  Simulation sim(kHetN, net,
                 std::make_unique<RecordingModel>(net, &records));
  for (ProcessId i = 0; i < kHetN; ++i) {
    sim.emplace_process<HetNode>(i, kHetN, 5);
  }
  sim.set_shards(shards);
  sim.start();
  sim.run_for(1'500);
  return records;
}

TEST(DrawPlanTest, ReplayReproducesEveryVerdictDrawForDraw) {
  NetworkConfig net = het_net(77);
  net.gst = 300;
  net.pre_gst_max_delay = 40;
  net.pre_gst_drop = 0.3;
  net.pre_gst_duplicate = 0.3;

  const std::vector<SendRecord> live = record_run(1, net);
  ASSERT_FALSE(live.empty());

  // Per-sender histories are identical between the legacy loop and the
  // windowed engine (global interleave may differ, each sender's own send
  // order may not).
  const std::vector<SendRecord> legacy = record_run(0, net);
  auto by_sender = [](const std::vector<SendRecord>& all) {
    std::vector<std::vector<SendRecord>> out(kHetN);
    for (const SendRecord& r : all) out[r.from].push_back(r);
    return out;
  };
  const auto live_by = by_sender(live);
  const auto legacy_by = by_sender(legacy);
  for (ProcessId sender = 0; sender < kHetN; ++sender) {
    ASSERT_EQ(live_by[sender].size(), legacy_by[sender].size())
        << "sender " << sender;
    for (std::size_t i = 0; i < live_by[sender].size(); ++i) {
      const SendRecord& a = live_by[sender][i];
      const SendRecord& b = legacy_by[sender][i];
      EXPECT_EQ(a.to, b.to);
      EXPECT_EQ(a.now, b.now);
      EXPECT_EQ(a.pos_before, b.pos_before);
      EXPECT_EQ(a.verdict.deliver_at, b.verdict.deliver_at);
      EXPECT_EQ(a.verdict.dropped, b.verdict.dropped);
      EXPECT_EQ(a.verdict.duplicated, b.verdict.duplicated);
      EXPECT_EQ(a.verdict.duplicate_at, b.verdict.duplicate_at);
    }
  }

  // Every record replays from a cold stream: seed the sender's substream,
  // jump to the recorded position with discard, and the verdict must come
  // out identical — with the stream landing exactly draws_per_send later.
  UniformModel replay_model(net);
  bool saw_drop = false;
  bool saw_dup = false;
  for (const SendRecord& r : live) {
    StreamRng stream(Simulation::net_stream_seed(net.seed, r.from));
    stream.discard(r.pos_before);
    const NetworkModel::Verdict v =
        replay_model.on_send(r.from, r.to, r.now, stream);
    EXPECT_EQ(v.deliver_at, r.verdict.deliver_at);
    EXPECT_EQ(v.dropped, r.verdict.dropped);
    EXPECT_EQ(v.duplicated, r.verdict.duplicated);
    EXPECT_EQ(v.duplicate_at, r.verdict.duplicate_at);
    EXPECT_EQ(stream.position(),
              r.pos_before + replay_model.draws_per_send(r.now));
    saw_drop = saw_drop || v.dropped;
    saw_dup = saw_dup || v.duplicated;
  }
  // The run must actually exercise the full four-draw pre-GST plan.
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_dup);
}

/// Declares a one-draw plan but consumes two: the per-send enforcement in
/// enqueue_send must catch it (in every execution mode).
class LyingModel final : public NetworkModel {
 public:
  Verdict on_send(ProcessId, ProcessId, SimTime now,
                  StreamRng& rng) override {
    Verdict v;
    v.deliver_at = now + 1 + static_cast<SimTime>(rng.uniform(4));
    rng.next_u64();  // the undeclared second draw
    return v;
  }
  std::uint64_t draws_per_send(SimTime) const override { return 1; }
  SimTime min_latency() const override { return 1; }
};

class OneShotSender : public Process {
 public:
  void start() override { send(1, make_message<HetMsg>(0, 1)); }
  void on_message(ProcessId, const MessagePtr&) override {}
};

TEST(DrawPlanTest, ContractViolationIsDetectedAtTheSend) {
  for (std::size_t shards : {0u, 1u}) {
    NetworkConfig net;
    net.min_delay = 1;
    net.max_delay = 5;
    Simulation sim(2, net, std::make_unique<LyingModel>());
    sim.emplace_process<OneShotSender>(0);
    sim.emplace_process<OneShotSender>(1);
    sim.set_shards(shards);
    EXPECT_THROW(sim.start(), std::logic_error) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace scup::sim
