// A dynamic_cast in a branch condition is a type test, not a value check:
// it must not launder the casted message.
#include <map>

struct Base {
  virtual ~Base() = default;
};

struct Slotted : Base {
  unsigned slot = 0;
};

class Book {
 public:
  void handle(const Base& msg);

 private:
  std::map<unsigned, int> slots_;
};

void Book::handle(const Base& msg) {
  if (const auto* s = dynamic_cast<const Slotted*>(&msg)) {
    slots_[s->slot] = 1;
  }
}
