// StellarCupNode — the paper's positive construction, end to end:
//
//   PD_i + f  --(Algorithm 3: sink detector)-->  ⟨flag, V⟩
//             --(Algorithm 2: build_slices)--->  S_i (threshold family)
//             --(SCP over the resulting FBQS)->  decided value
//
// This is the public entry point of the library: install one StellarCupNode
// per correct process in a sim::Simulation (with PD from the knowledge
// connectivity graph) and run; Theorem 5 says all correct nodes decide the
// same value whenever the graph is Byzantine-safe for the failure set and
// the sink has >= 2f+1 correct members.
#pragma once

#include <optional>

#include "common/node_set.hpp"
#include "scp/scp_node.hpp"
#include "sim/composed.hpp"
#include "sinkdetector/sink_detector.hpp"

namespace scup::core {

struct StellarCupConfig {
  scp::ScpConfig scp;
  cup::DiscoveryConfig discovery;
};

class StellarCupNode : public sim::ComposedNode {
 public:
  /// `pd` — this process's participant detector output (PD_i);
  /// `f` — the known fault threshold; `value` — the proposal (must be != 0).
  StellarCupNode(NodeSet pd, std::size_t f, Value value,
                 StellarCupConfig config = {});

  void start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;
  void on_timer(int timer_id) override;

  // ---- observable results ----
  bool sink_detected() const { return detector_.has_result(); }
  const sinkdetector::GetSinkResult& sink_result() const {
    return detector_.result();
  }
  SimTime sink_detect_time() const { return sd_time_; }

  bool decided() const { return scp_.decided(); }
  Value decision() const { return scp_.decision(); }
  SimTime decision_time() const { return decision_time_; }

  const scp::ScpNode& scp() const { return scp_; }
  const sinkdetector::SinkDetector& detector() const { return detector_; }

 private:
  void on_sink(const sinkdetector::GetSinkResult& result);
  void learn_peer(ProcessId p);
  /// Records the decision time (once) and retires the discovery requery
  /// timer — a decided node has nothing left to retransmit for.
  void note_decided();

  NodeSet pd_;
  Value value_;
  sinkdetector::SinkDetector detector_;
  scp::ScpNode scp_;
  SimTime sd_time_ = kTimeInfinity;
  SimTime decision_time_ = kTimeInfinity;
};

}  // namespace scup::core
