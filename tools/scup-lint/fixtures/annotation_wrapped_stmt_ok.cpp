// Statement-range annotation binding: the single `bounded` annotation
// below must cover the whole wrapped statement, including the flagged
// narrowing casts sitting on both continuation lines, and count as
// consumed (no stale-annotation finding).
#include <cstdint>

namespace scup {

std::uint32_t pack(std::uint64_t view, std::uint64_t slot) {
  // scup-lint: bounded(view and slot are range-checked by the caller)
  const std::uint64_t packed =
      (static_cast<std::uint32_t>(view) << 16U) +
      static_cast<std::uint32_t>(slot);
  return static_cast<std::uint32_t>(packed & 0xffffULL);
}

}  // namespace scup
