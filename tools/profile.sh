#!/usr/bin/env bash
# perf-record wrapper for the bench binaries.
#
# Usage: tools/profile.sh <bench-binary> [bench args...]
#
#   tools/profile.sh build-profile/bench_lookahead_sim \
#       --benchmark_filter=BM_Het
#
# Builds nothing itself — point it at a binary from the
# relwithdebinfo-profile preset (optimized + debug info + frame
# pointers), which is what makes the recorded call graphs legible:
#
#   cmake --preset relwithdebinfo-profile
#   cmake --build --preset relwithdebinfo-profile -j
#
# Output goes to perf-<binary>.data next to the CWD; the script prints
# the matching `perf report` invocation when recording succeeds.
# SCUP_PERF_EVENTS overrides the sampled event list (default:
# cycles:u — user cycles only, so simulator code dominates the profile
# instead of kernel time from thread parking).
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <bench-binary> [bench args...]" >&2
  exit 2
fi

if ! command -v perf > /dev/null 2>&1; then
  echo "error: perf not found on PATH (install linux-tools / perf)" >&2
  exit 1
fi

binary=$1
shift
if [[ ! -x "${binary}" ]]; then
  echo "error: ${binary} is not an executable" >&2
  exit 1
fi

events=${SCUP_PERF_EVENTS:-cycles:u}
out="perf-$(basename "${binary}").data"

# --call-graph dwarf resolves inlined frames in the optimized build;
# the frame-pointer fallback (fp) still works when dwarf unwinding is
# unavailable on the host.
graph=${SCUP_PERF_CALLGRAPH:-dwarf}

perf record \
  --call-graph "${graph}" \
  --event "${events}" \
  --output "${out}" \
  -- "${binary}" "$@"

echo
echo "recorded ${out}; inspect with:"
echo "  perf report --input ${out}"
