#include "fbqs/slices.hpp"

#include <gtest/gtest.h>

namespace scup::fbqs {
namespace {

TEST(SliceSetTest, ExplicitSatisfaction) {
  const SliceSet s = SliceSet::explicit_slices(
      {NodeSet(6, {1, 2}), NodeSet(6, {3, 4, 5})});
  EXPECT_TRUE(s.satisfied_within(NodeSet(6, {0, 1, 2})));
  EXPECT_TRUE(s.satisfied_within(NodeSet(6, {3, 4, 5})));
  EXPECT_FALSE(s.satisfied_within(NodeSet(6, {1, 3, 4})));
  EXPECT_FALSE(s.satisfied_within(NodeSet(6)));
  EXPECT_FALSE(s.is_threshold());
  EXPECT_EQ(s.slice_count(), 2u);
}

TEST(SliceSetTest, EmptySliceRejected) {
  EXPECT_THROW(SliceSet::explicit_slices({NodeSet(4)}), std::invalid_argument);
}

TEST(SliceSetTest, ThresholdSatisfaction) {
  // All 2-subsets of {0,1,2,3}.
  const SliceSet s = SliceSet::threshold(2, NodeSet(6, {0, 1, 2, 3}));
  EXPECT_TRUE(s.is_threshold());
  EXPECT_EQ(s.threshold_m(), 2u);
  EXPECT_TRUE(s.satisfied_within(NodeSet(6, {0, 3})));
  EXPECT_TRUE(s.satisfied_within(NodeSet(6, {1, 2, 5})));
  EXPECT_FALSE(s.satisfied_within(NodeSet(6, {0, 4, 5})));
  EXPECT_EQ(s.slice_count(), 6u);  // C(4,2)
}

TEST(SliceSetTest, ThresholdValidation) {
  EXPECT_THROW(SliceSet::threshold(0, NodeSet(4, {1})), std::invalid_argument);
  EXPECT_THROW(SliceSet::threshold(3, NodeSet(4, {1, 2})),
               std::invalid_argument);
  // m == |members| is fine (single slice).
  const SliceSet s = SliceSet::threshold(2, NodeSet(4, {1, 2}));
  EXPECT_EQ(s.slice_count(), 1u);
}

TEST(SliceSetTest, BlockedBy) {
  const SliceSet threshold = SliceSet::threshold(3, NodeSet(8, {0, 1, 2, 3}));
  // A slice avoiding B exists iff >= 3 members survive.
  EXPECT_FALSE(threshold.blocked_by(NodeSet(8, {0})));
  EXPECT_TRUE(threshold.blocked_by(NodeSet(8, {0, 1})));
  EXPECT_TRUE(threshold.has_slice_avoiding(NodeSet(8, {3})));

  const SliceSet expl = SliceSet::explicit_slices(
      {NodeSet(8, {1, 2}), NodeSet(8, {2, 3})});
  EXPECT_TRUE(expl.blocked_by(NodeSet(8, {2})));       // 2 is in every slice
  EXPECT_FALSE(expl.blocked_by(NodeSet(8, {1})));      // {2,3} avoids
}

TEST(SliceSetTest, Lemma2Check) {
  // Lemma 2: process must have a slice avoiding every candidate faulty set
  // of size <= f. Threshold family m-of-V survives any f faults iff
  // |V| - f >= m.
  const NodeSet v(10, {0, 1, 2, 3, 4});
  const SliceSet s = SliceSet::threshold(3, v);
  // f = 2: |V| - 2 = 3 >= 3 ok for any B of size 2.
  EXPECT_TRUE(s.has_slice_avoiding(NodeSet(10, {0, 1})));
  EXPECT_TRUE(s.has_slice_avoiding(NodeSet(10, {3, 4})));
  // f = 3 violates.
  EXPECT_FALSE(s.has_slice_avoiding(NodeSet(10, {0, 1, 2})));
}

TEST(SliceSetTest, UnionOfMembers) {
  const SliceSet expl = SliceSet::explicit_slices(
      {NodeSet(6, {1, 2}), NodeSet(6, {2, 5})});
  EXPECT_EQ(expl.union_of_members(6), NodeSet(6, {1, 2, 5}));
  const SliceSet thr = SliceSet::threshold(1, NodeSet(6, {0, 4}));
  EXPECT_EQ(thr.union_of_members(6), NodeSet(6, {0, 4}));
}

TEST(SliceSetTest, SliceCountBinomialSaturation) {
  NodeSet big(128);
  for (ProcessId i = 0; i < 128; ++i) big.add(i);
  const SliceSet s = SliceSet::threshold(64, big);
  EXPECT_EQ(s.slice_count(), std::numeric_limits<std::size_t>::max());
}

TEST(SliceSetTest, AccessorsThrowOnWrongKind) {
  const SliceSet thr = SliceSet::threshold(1, NodeSet(4, {0}));
  EXPECT_THROW((void)thr.explicit_list(), std::logic_error);
  const SliceSet expl = SliceSet::explicit_slices({NodeSet(4, {0})});
  EXPECT_THROW((void)expl.threshold_m(), std::logic_error);
  EXPECT_THROW((void)expl.threshold_members(), std::logic_error);
}

TEST(SliceSetTest, ToQSetEquivalence) {
  // The QSet conversion must satisfy exactly the same sets.
  const SliceSet thr = SliceSet::threshold(2, NodeSet(5, {0, 1, 2, 3}));
  const QSet q_thr = thr.to_qset();
  const SliceSet expl = SliceSet::explicit_slices(
      {NodeSet(5, {0, 1}), NodeSet(5, {2, 3, 4})});
  const QSet q_expl = expl.to_qset();
  for (std::uint32_t mask = 0; mask < 32; ++mask) {
    NodeSet test(5);
    for (ProcessId b = 0; b < 5; ++b) {
      if ((mask >> b) & 1u) test.add(b);
    }
    EXPECT_EQ(thr.satisfied_within(test), q_thr.satisfied_by(test))
        << test.to_string();
    EXPECT_EQ(expl.satisfied_within(test), q_expl.satisfied_by(test))
        << test.to_string();
  }
}

}  // namespace
}  // namespace scup::fbqs
