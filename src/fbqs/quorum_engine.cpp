#include "fbqs/quorum_engine.hpp"

#include "common/rng.hpp"

namespace scup::fbqs {

std::size_t qset_hash(const QSet& q) {
  // Iterative pre-order walk; mixes thresholds, validators and tree shape.
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  std::vector<const QSet*> stack{&q};
  while (!stack.empty()) {
    const QSet* cur = stack.back();
    stack.pop_back();
    h = hash_mix(h, cur->threshold(), cur->validators().size());
    h = hash_mix(h, cur->inner_sets().size());
    for (ProcessId v : cur->validators()) h = hash_mix(h, v);
    for (const QSet& inner : cur->inner_sets()) stack.push_back(&inner);
  }
  return static_cast<std::size_t>(h);
}

QSetId QuorumEngine::intern(const QSet& q) {
  const std::size_t h = qset_hash(q);
  auto& bucket = by_hash_[h];
  for (QSetId id : bucket) {
    if (interned_[id].qset == q) {
      ++stats_.intern_hits;
      return id;
    }
  }
  Interned entry;
  entry.qset = q;
  entry.nodes_begin = static_cast<std::uint32_t>(nodes_.size());
  flatten(entry.qset);
  entry.nodes_end = static_cast<std::uint32_t>(nodes_.size());
  const auto id = static_cast<QSetId>(interned_.size());
  interned_.push_back(std::move(entry));
  bucket.push_back(id);
  return id;
}

std::uint32_t QuorumEngine::flatten(const QSet& q) {
  // Explicit-stack post-order: a frame emits its node only after all inner
  // sets have been emitted, so children always precede parents in nodes_.
  struct Frame {
    const QSet* qset;
    std::size_t next_inner = 0;
    std::vector<std::uint32_t> child_ids;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{&q, 0, {}});
  std::uint32_t root = 0;
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_inner < top.qset->inner_sets().size()) {
      const QSet* inner = &top.qset->inner_sets()[top.next_inner++];
      stack.push_back(Frame{inner, 0, {}});
      continue;
    }
    FlatNode node;
    node.threshold = static_cast<std::uint32_t>(top.qset->threshold());
    node.validators_begin = static_cast<std::uint32_t>(validators_.size());
    validators_.insert(validators_.end(), top.qset->validators().begin(),
                       top.qset->validators().end());
    node.validators_end = static_cast<std::uint32_t>(validators_.size());
    node.children_begin = static_cast<std::uint32_t>(children_.size());
    children_.insert(children_.end(), top.child_ids.begin(),
                     top.child_ids.end());
    node.children_end = static_cast<std::uint32_t>(children_.size());
    const auto node_id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(node);
    stack.pop_back();
    if (stack.empty()) {
      root = node_id;
    } else {
      stack.back().child_ids.push_back(node_id);
    }
  }
  return root;
}

bool QuorumEngine::eval_satisfied(QSetId id, const NodeSet& nodes) {
  ++stats_.qset_evals;
  const Interned& q = interned_[id];
  if (scratch_.size() < nodes_.size()) scratch_.resize(nodes_.size());
  for (std::uint32_t i = q.nodes_begin; i < q.nodes_end; ++i) {
    const FlatNode& fn = nodes_[i];
    std::uint32_t count = 0;
    for (std::uint32_t v = fn.validators_begin;
         count < fn.threshold && v < fn.validators_end; ++v) {
      if (nodes.contains(validators_[v])) ++count;
    }
    for (std::uint32_t c = fn.children_begin;
         count < fn.threshold && c < fn.children_end; ++c) {
      if (scratch_[children_[c]]) ++count;
    }
    scratch_[i] = count >= fn.threshold ? 1 : 0;
  }
  return scratch_[q.nodes_end - 1] != 0;
}

bool QuorumEngine::satisfied_by(QSetId id, const NodeSet& nodes) {
  // One evaluation either way: the baseline also evaluated once per check.
  ++stats_.qset_evals_baseline;
  return eval_satisfied(id, nodes);
}

bool QuorumEngine::eval_blocked(QSetId id, const NodeSet& nodes) {
  ++stats_.qset_evals;
  const Interned& q = interned_[id];
  if (scratch_.size() < nodes_.size()) scratch_.resize(nodes_.size());
  for (std::uint32_t i = q.nodes_begin; i < q.nodes_end; ++i) {
    const FlatNode& fn = nodes_[i];
    // Count elements that could still appear in a slice avoiding `nodes`;
    // blocked iff fewer than `threshold` stay alive. threshold == 0 (the
    // empty qset) is never blocked: alive >= 0 == threshold.
    std::uint32_t alive = 0;
    for (std::uint32_t v = fn.validators_begin;
         alive < fn.threshold && v < fn.validators_end; ++v) {
      if (!nodes.contains(validators_[v])) ++alive;
    }
    for (std::uint32_t c = fn.children_begin;
         alive < fn.threshold && c < fn.children_end; ++c) {
      if (scratch_[children_[c]]) ++alive;  // scratch = "not blocked"
    }
    scratch_[i] = alive >= fn.threshold ? 1 : 0;
  }
  return scratch_[q.nodes_end - 1] == 0;
}

bool QuorumEngine::blocked_by(QSetId id, const NodeSet& nodes) {
  ++stats_.qset_evals_baseline;
  return eval_blocked(id, nodes);
}

namespace {
/// Bounded insert for a monotone tier: replace a dominated entry when one
/// exists (keep_smaller: the new set subsumes by being ⊆; otherwise by
/// being ⊇), append below the bound, round-robin overwrite past it.
/// Entries from a different universe are never comparable.
template <std::size_t kBound>
void insert_monotone(std::vector<NodeSet>& pool, std::size_t& rr,
                     const NodeSet& candidate, bool keep_smaller) {
  for (NodeSet& existing : pool) {
    const bool dominated =
        existing.universe_size() == candidate.universe_size() &&
        (keep_smaller ? candidate.subset_of(existing)
                      : existing.subset_of(candidate));
    if (dominated) {
      existing = candidate;
      return;
    }
  }
  if (pool.size() < kBound) {
    pool.push_back(candidate);
  } else {
    pool[rr] = candidate;
    rr = (rr + 1) % pool.size();
  }
}
}  // namespace

bool QuorumEngine::blocked_for(QSetId id, const NodeSet& nodes) {
  // The rescan baseline evaluates once per check regardless.
  ++stats_.qset_evals_baseline;
  BlockTiers& tiers = block_tiers_[id];
  for (const NodeSet& blocking : tiers.blocking_) {
    if (blocking.universe_size() == nodes.universe_size() &&
        blocking.subset_of(nodes)) {
      return true;
    }
  }
  for (const NodeSet& nonblocking : tiers.nonblocking_) {
    if (nonblocking.universe_size() == nodes.universe_size() &&
        nodes.subset_of(nonblocking)) {
      return false;
    }
  }
  const bool blocked = eval_blocked(id, nodes);
  if (blocked) {
    insert_monotone<kMaxMonotone>(tiers.blocking_, tiers.blocking_rr_, nodes,
                                  /*keep_smaller=*/true);
  } else {
    insert_monotone<kMaxMonotone>(tiers.nonblocking_, tiers.nonblocking_rr_,
                                  nodes, /*keep_smaller=*/false);
  }
  return blocked;
}

void QuorumEngine::insert_tier(std::vector<MonotoneEntry>& pool,
                               std::size_t& rr, MonotoneEntry entry,
                               bool keep_smaller) {
  for (MonotoneEntry& existing : pool) {
    const bool comparable =
        existing.member == entry.member &&
        existing.set.universe_size() == entry.set.universe_size();
    const bool dominated =
        comparable && (keep_smaller ? entry.set.subset_of(existing.set)
                                    : existing.set.subset_of(entry.set));
    if (dominated) {
      existing = std::move(entry);
      return;
    }
  }
  if (pool.size() < kMaxMonotone) {
    pool.push_back(std::move(entry));
  } else {
    pool[rr] = std::move(entry);
    rr = (rr + 1) % pool.size();
  }
}

void QuorumEngine::memoize(const NodeSet& support, ClosureEntry entry) {
  // Both bounds guard Byzantine-driven churn: the map against unbounded
  // distinct supports, the per-support vector against a sender re-binding
  // its qset over and over (each rebind mints a fresh fingerprint).
  if (closure_memo_.size() >= kMaxClosureMemo) closure_memo_.clear();
  auto& entries = closure_memo_[support];
  if (entries.size() >= 8) entries.clear();
  entries.push_back(entry);
}

std::uint64_t QuorumEngine::assignment_fp(const NodeSet& set,
                                          ProcessId member,
                                          const std::vector<QSetId>& qset_ids) {
  std::uint64_t h = hash_mix(0x9d2c5680u, member);
  for (ProcessId id : set) {
    h = hash_mix(h, id, id < qset_ids.size() ? qset_ids[id] : kNoQSetId);
  }
  return h;
}

bool QuorumEngine::quorum_contains(const NodeSet& support, ProcessId member,
                                   const std::vector<QSetId>& qset_ids) {
  if (!support.contains(member)) return false;
  // Monotone tiers first; every entry re-validates by recomputing the
  // fingerprint of ITS OWN set under the caller's current assignment —
  // stale entries (a member re-announced a different qset) just stop
  // matching. The baseline (closure from scratch on `support`) costs at
  // least one full pass — |support| evaluations — so that is what a
  // subsumption hit conservatively charges it (realized savings are
  // under-reported, never inflated).
  for (const MonotoneEntry& quorum : known_quorums_) {
    if (quorum.member == member &&
        quorum.set.universe_size() == support.universe_size() &&
        quorum.set.subset_of(support) &&
        quorum.fp == assignment_fp(quorum.set, member, qset_ids)) {
      ++stats_.closure_cache_hits;
      stats_.qset_evals_baseline += support.count();
      return true;
    }
  }
  for (const MonotoneEntry& failed : failed_supports_) {
    if (failed.member == member &&
        failed.set.universe_size() == support.universe_size() &&
        support.subset_of(failed.set) &&
        failed.fp == assignment_fp(failed.set, member, qset_ids)) {
      ++stats_.closure_cache_hits;
      stats_.qset_evals_baseline += support.count();
      return false;
    }
  }
  const std::uint64_t fp = assignment_fp(support, member, qset_ids);
  const auto memo_it = closure_memo_.find(support);
  if (memo_it != closure_memo_.end()) {
    for (const ClosureEntry& entry : memo_it->second) {
      if (entry.fp == fp) {
        ++stats_.closure_cache_hits;
        // The baseline would have re-run the whole closure; charge it the
        // cost the original run actually measured.
        stats_.qset_evals_baseline += entry.evals;
        return entry.contains;
      }
    }
  }

  // First-pass reject: if `member`'s own qset is not satisfied by the full
  // support, the first closure pass removes it — FALSE at one evaluation,
  // where the baseline's first pass alone costs |support|. Memoized like a
  // full run (repeats are free; the baseline keeps paying per check), and
  // fed to the failed tier so subsets are rejected without any lookup.
  const QSetId member_qid =
      member < qset_ids.size() ? qset_ids[member] : kNoQSetId;
  if (member_qid == kNoQSetId) return false;
  const auto support_size = static_cast<std::uint32_t>(support.count());
  if (!eval_satisfied(member_qid, support)) {
    ++stats_.closure_runs;
    stats_.qset_evals_baseline += support_size;
    memoize(support, ClosureEntry{fp, false, support_size});
    insert_tier(failed_supports_, failed_rr_, MonotoneEntry{support, fp, member},
                /*keep_smaller=*/false);
    return false;
  }

  ++stats_.closure_runs;
  // Algorithm-1 greatest fixpoint at QSET-GROUP granularity — the payoff
  // of hash-consing. satisfied_by depends on the evaluated set, not on
  // which member asks, so members sharing an interned qset are
  // interchangeable: each pass evaluates each DISTINCT qset id once
  // (typically a handful) instead of every member, and an unsatisfied
  // group's members are removed as a batch. Every batched removal is
  // individually justified at removal time, so this is a chaotic
  // iteration of the same monotone operator as the historical
  // member-at-a-time loop — identical greatest fixpoint, identical
  // verdict.
  //
  // Baseline accounting is a provable LOWER bound of the historical
  // loop's cost: its first pass evaluated exactly |support| members, and
  // every later pass at least the members still alive when the pass
  // ended. Savings are under-reported, never inflated.
  NodeSet live = support;
  std::uint32_t baseline_cost = support_size;  // historical pass 1
  bool changed = true;
  std::size_t pass = 0;
  while (changed && live.contains(member)) {
    changed = false;
    ++pass;
    qid_scratch_.clear();
    for (ProcessId id : live) {
      const QSetId qid = id < qset_ids.size() ? qset_ids[id] : kNoQSetId;
      bool seen = false;
      for (QSetId s : qid_scratch_) {
        if (s == qid) {
          seen = true;
          break;
        }
      }
      if (!seen) qid_scratch_.push_back(qid);
    }
    for (QSetId qid : qid_scratch_) {
      if (qid != kNoQSetId && eval_satisfied(qid, live)) continue;
      for (ProcessId id : live) {
        const QSetId mqid = id < qset_ids.size() ? qset_ids[id] : kNoQSetId;
        if (mqid == qid) live.remove(id);
      }
      changed = true;
      if (!live.contains(member)) break;  // verdict settled: FALSE
    }
    if (pass > 1) baseline_cost += static_cast<std::uint32_t>(live.count());
  }
  const bool contains = live.contains(member);
  stats_.qset_evals_baseline += baseline_cost;
  memoize(support, ClosureEntry{fp, contains, baseline_cost});

  // Feed the monotone tiers: `live` is a fixpoint (a quorum) when it kept
  // `member`; `support` is a proven-failed set otherwise. Entries carry
  // the fingerprint of their own members' assignment for re-validation.
  if (contains) {
    insert_tier(known_quorums_, quorum_rr_,
                MonotoneEntry{live, assignment_fp(live, member, qset_ids),
                              member},
                /*keep_smaller=*/true);
  } else {
    insert_tier(failed_supports_, failed_rr_, MonotoneEntry{support, fp, member},
                /*keep_smaller=*/false);
  }
  return contains;
}

}  // namespace scup::fbqs
