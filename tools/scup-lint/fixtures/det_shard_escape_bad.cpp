// Fixture: det-shard-escape must fire on raw thread primitives in src/sim/
// outside sim/shard_pool, and on engine-global simulation state touched
// outside a shard-barrier region in sim/shard* files.
#include <thread>

void escape_thread() {
  std::thread t([] {});
  t.detach();
}

void escape_globals(Sim& sim_) {
  sim_.next_seq_ += 1;
  sim_.metrics_.messages_sent += 1;
}
