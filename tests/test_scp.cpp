// SCP protocol tests: federated voting semantics, nomination + ballot
// convergence, Byzantine tolerance within a consensus cluster.
#include "scp/scp_node.hpp"

#include <gtest/gtest.h>

#include "core/adversaries.hpp"
#include "sim/composed.hpp"
#include "sim/simulation.hpp"

namespace scup::scp {
namespace {

class ScpOnlyNode : public sim::ComposedNode {
 public:
  ScpOnlyNode(std::size_t universe, std::size_t f, fbqs::QSet qset,
              Value value)
      : ComposedNode(f), scp_(*this, universe, std::move(qset), value) {}

  void start() override {
    for (ProcessId p = 0; p < universe(); ++p) scp_.add_peer(p);
    scp_.start();
  }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    scp_.handle(from, *msg);
  }
  void on_timer(int timer_id) override {
    if (timer_id == kScpBallotTimerId) scp_.on_ballot_timer();
  }

  ScpNode scp_;
};

/// Sends conflicting nominations and then goes silent.
class NominationEquivocator : public sim::ComposedNode {
 public:
  NominationEquivocator(std::size_t universe, std::size_t f, fbqs::QSet qset)
      : ComposedNode(f), universe_n_(universe), qset_(std::move(qset)) {}

  void start() override {
    for (ProcessId p = 0; p < universe_n_; ++p) {
      if (p == id()) continue;
      NominateStmt stmt;
      stmt.voted.insert(p % 2 == 0 ? 71 : 72);
      send(p, std::make_shared<const Envelope>(id(), 1, qset_,
                                               Statement{stmt}));
    }
  }
  void on_message(ProcessId, const sim::MessagePtr&) override {}

 private:
  std::size_t universe_n_;
  fbqs::QSet qset_;
};

fbqs::QSet majority_qset(std::size_t n, std::size_t f) {
  std::vector<ProcessId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<ProcessId>(i);
  return fbqs::QSet::threshold_of((n + f + 1 + 1) / 2, std::move(all));
}

struct ScpHarness {
  ScpHarness(std::size_t n, std::size_t f, const NodeSet& faulty,
             std::uint64_t seed = 1, bool equivocator = false,
             SimTime gst = 0) {
    sim::NetworkConfig net;
    net.gst = gst;
    net.min_delay = 1;
    net.max_delay = 10;
    net.pre_gst_max_delay = 300;
    net.seed = seed;
    sim = std::make_unique<sim::Simulation>(n, net);
    nodes.assign(n, nullptr);
    const fbqs::QSet qset = majority_qset(n, f);
    for (ProcessId i = 0; i < n; ++i) {
      if (faulty.contains(i)) {
        if (equivocator) {
          sim->emplace_process<NominationEquivocator>(i, n, f, qset);
        } else {
          sim->emplace_process<core::SilentNode>(i);
        }
        continue;
      }
      nodes[i] = &sim->emplace_process<ScpOnlyNode>(i, n, f, qset,
                                                    /*value=*/100 + i);
    }
    correct = faulty.complement();
  }

  bool run(SimTime deadline = 1'000'000) {
    sim->start();
    return sim->run_until(
        [&] {
          for (ProcessId i : correct) {
            if (!nodes[i]->scp_.decided()) return false;
          }
          return true;
        },
        deadline);
  }

  void check_agreement_validity(std::size_t n) {
    std::optional<Value> agreed;
    for (ProcessId i : correct) {
      ASSERT_TRUE(nodes[i]->scp_.decided()) << "i=" << i;
      const Value v = nodes[i]->scp_.decision();
      if (!agreed) agreed = v;
      EXPECT_EQ(*agreed, v) << "agreement violated at " << i;
    }
    // Validity: value proposed by someone (correct: 100+i; equivocator: 71
    // or 72).
    ASSERT_TRUE(agreed.has_value());
    const bool from_correct = *agreed >= 100 && *agreed < 100 + n;
    const bool from_equivocator = *agreed == 71 || *agreed == 72;
    EXPECT_TRUE(from_correct || from_equivocator) << "value " << *agreed;
  }

  std::unique_ptr<sim::Simulation> sim;
  std::vector<ScpOnlyNode*> nodes;
  NodeSet correct;
};

TEST(ScpTest, FourNodesAllCorrectDecide) {
  ScpHarness h(4, 1, NodeSet(4));
  ASSERT_TRUE(h.run());
  h.check_agreement_validity(4);
  for (ProcessId i = 0; i < 4; ++i) {
    EXPECT_EQ(h.nodes[i]->scp_.phase(), ScpNode::Phase::kExternalize);
  }
}

TEST(ScpTest, SilentMinorityTolerated) {
  ScpHarness h(4, 1, NodeSet(4, {3}));
  ASSERT_TRUE(h.run());
  h.check_agreement_validity(4);
}

TEST(ScpTest, SevenNodesTwoSilent) {
  ScpHarness h(7, 2, NodeSet(7, {2, 5}));
  ASSERT_TRUE(h.run());
  h.check_agreement_validity(7);
}

TEST(ScpTest, NominationEquivocatorCannotSplit) {
  ScpHarness h(4, 1, NodeSet(4, {0}), /*seed=*/9, /*equivocator=*/true);
  ASSERT_TRUE(h.run());
  h.check_agreement_validity(4);
}

TEST(ScpTest, RotatingQsetsAreBoundedByTheRebindBudget) {
  // A Byzantine sender announcing a structurally fresh qset on every
  // envelope must not grow the quorum engine's intern table without bound —
  // every intern() of an unseen qset is permanent engine memory, and the
  // sender chooses the qset. Past the per-sender rebind budget the node
  // keeps the sender's current binding.
  ScpOnlyNode node(/*universe=*/32, /*f=*/1, majority_qset(32, 1),
                   /*value=*/7);
  const std::size_t before = node.scp_.engine().interned_count();
  for (std::uint64_t i = 0; i < 32; ++i) {
    NominateStmt stmt;
    stmt.voted.insert(42);
    const std::vector<ProcessId> members{static_cast<ProcessId>(i)};
    const Envelope env(/*sender=*/2, /*seq=*/i + 1,
                       fbqs::QSet::threshold_of(1, members), Statement{stmt});
    EXPECT_TRUE(node.scp_.handle(2, env));
  }
  const std::size_t grown = node.scp_.engine().interned_count() - before;
  EXPECT_GE(grown, 1u);  // the first binding is always accepted
  EXPECT_LE(grown, ScpNode::kMaxQsetRebinds + 1);
}

TEST(ScpTest, DecidesUnderPreGstAsynchrony) {
  ScpHarness h(4, 1, NodeSet(4, {1}), /*seed=*/11, /*equivocator=*/false,
               /*gst=*/5'000);
  ASSERT_TRUE(h.run());
  h.check_agreement_validity(4);
}

TEST(ScpTest, IntegrityDecidesOnce) {
  ScpHarness h(4, 1, NodeSet(4));
  int decisions = 0;
  h.sim->start();
  h.nodes[0]->scp_.on_decide = [&](Value) { ++decisions; };
  h.sim->run_until([&] { return false; }, 50'000);
  EXPECT_EQ(decisions, 1);
  EXPECT_TRUE(h.nodes[0]->scp_.decided());
}

TEST(ScpTest, AsymmetricQsetsSinkAndNonSink) {
  // Mimics the paper's Algorithm-2 structure: 4 "sink" nodes with
  // ⌈(4+1+1)/2⌉ = 3-of-sink qsets, 2 "non-sink" nodes with 2-of-sink
  // qsets (f = 1). All six must decide the same value.
  const std::size_t n = 6;
  std::vector<ProcessId> sink{0, 1, 2, 3};
  const fbqs::QSet sink_qset = fbqs::QSet::threshold_of(3, sink);
  const fbqs::QSet nonsink_qset = fbqs::QSet::threshold_of(2, sink);

  sim::NetworkConfig net;
  net.seed = 4;
  sim::Simulation sim(n, net);
  std::vector<ScpOnlyNode*> nodes(n);
  for (ProcessId i = 0; i < n; ++i) {
    nodes[i] = &sim.emplace_process<ScpOnlyNode>(
        i, n, 1, i < 4 ? sink_qset : nonsink_qset, 100 + i);
  }
  sim.start();
  const bool done = sim.run_until(
      [&] {
        for (auto* node : nodes) {
          if (!node->scp_.decided()) return false;
        }
        return true;
      },
      1'000'000);
  ASSERT_TRUE(done);
  for (ProcessId i = 1; i < n; ++i) {
    EXPECT_EQ(nodes[i]->scp_.decision(), nodes[0]->scp_.decision());
  }
}

TEST(ScpTest, SetQsetAfterStartThrows) {
  sim::NetworkConfig net;
  sim::Simulation sim(1, net);
  auto& node = sim.emplace_process<ScpOnlyNode>(0, 1, 0,
                                                majority_qset(1, 0), 5);
  sim.start();
  EXPECT_THROW(node.scp_.set_qset(majority_qset(1, 0)), std::logic_error);
}

TEST(ScpTest, DecisionBeforeDecidedThrows) {
  sim::NetworkConfig net;
  sim::Simulation sim(2, net);
  auto& a = sim.emplace_process<ScpOnlyNode>(0, 2, 0, majority_qset(2, 0), 5);
  sim.emplace_process<core::SilentNode>(1);
  EXPECT_THROW((void)a.scp_.decision(), std::logic_error);
}

// Property sweep: across seeds and system sizes, SCP with majority qsets
// and up to f silent nodes satisfies Agreement, Validity, Termination.
class ScpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScpPropertyTest, ConsensusOnRandomConfigurations) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 13 + 5);
  const std::size_t n = 4 + rng.uniform(5);           // 4..8
  const std::size_t f = (n - 1) / 3;
  NodeSet faulty(n);
  const std::size_t actual_faults = rng.uniform(f + 1);
  for (ProcessId p : rng.sample_ids(n, actual_faults)) faulty.add(p);

  ScpHarness h(n, f, faulty, seed, /*equivocator=*/seed % 2 == 0);
  ASSERT_TRUE(h.run()) << "n=" << n << " f=" << f
                       << " faulty=" << faulty.to_string();
  h.check_agreement_validity(n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScpPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace scup::scp
