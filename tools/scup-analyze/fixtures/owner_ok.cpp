// The audited dual-context form: owner-ok excuses a function that touches
// engine state from shard context, and barrier-entry code may touch
// barrier-owned state.
class Plane {
 public:
  void drain();
  void commit();

 private:
  void stamp();
  // scup-owner: engine
  long seq_counter_ = 0;
  // scup-owner: barrier
  long merge_count_ = 0;
};

// scup-analyze: shard-entry(window drain)
void Plane::drain() { stamp(); }

// scup-analyze: owner-ok(audited: only bumps the counter, order-free)
void Plane::stamp() { seq_counter_ += 1; }

// scup-analyze: barrier-entry(window commit)
void Plane::commit() { merge_count_ += 1; }
