// The SINK algorithm (direct sink discovery, Section VI step 1-3),
// reconstructed from the paper's three-step description of the BFT-CUP
// primitive of Alchieri et al.:
//
//  1. Knowledge expansion: starting from PD_i, process i queries every
//     process it can reach in its *certified knowledge graph* (the union of
//     PD certificates received so far) and merges the returned
//     certificates. A process j is admitted into the candidate set iff
//     j ∈ {i} ∪ PD_i (i's own oracle) or j is f-reachable from i in the
//     certified graph (Definition 9: f+1 internally-vertex-disjoint paths).
//     f-reachability is what makes expansion Byzantine-resilient: a
//     fabricated node needs f+1 disjoint certified paths, and with at most
//     f liars one of those paths is made of correct certificates only — so
//     everything admitted is genuinely reachable through correct knowledge,
//     while the safe Byzantine failure pattern ((f+1)-OSR residual)
//     guarantees every real sink member is admitted.
//  2. Once at most f candidates are unresponsive, i publishes
//     KNOWN(candidate set) to the candidates (republished on change).
//  3. If >= |V| - f members of V itself (self included) report KNOWN = V,
//     where V is i's candidate set and |V| >= 2f+1, then i concludes it is
//     a sink member and V is the sink (Lemma 6). Non-sink members' matching
//     never succeeds (their candidate strictly contains the sink, whose
//     members report differently); they rely on Algorithm 3's indirect
//     path.
//
// Incremental admission (the discovery→consensus hot path): the certified
// graph and the f-reachability property are both monotone, so an admission
// verdict only needs re-evaluation when the certificate batch since the
// last update() could have created a new path to the node. update() keeps a
// dirty set of new-edge heads and re-checks only nodes downstream of them
// (everything else keeps its memoized verdict from the epoch it was last
// evaluated at), applies Menger's degree bounds before paying for a real
// evaluation, caches a vertex-separator certificate for every negative
// verdict (re-evaluated only when an edge crosses its frontier), and for
// f = 1 decides whole batches with one dominator-tree pass (idom(j) == self
// ⟺ two disjoint paths, graph/dominators.hpp) instead of per-node
// max-flows. The remaining max-flow runs share one prepared flow network
// per update (graph::DisjointPathEngine). DiscoveryStats counts both the
// evaluations actually run and what a recompute-everything baseline would
// have run; bench_scale_discovery (E11) reports the ratio.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/node_set.hpp"
#include "cup/messages.hpp"
#include "graph/digraph.hpp"
#include "graph/disjoint_paths.hpp"
#include "sim/host.hpp"

namespace scup::cup {

/// Admission-work counters for one SinkDiscovery instance (E11).
struct DiscoveryStats {
  /// Max-flow disjoint-path evaluations actually run.
  std::uint64_t flow_evals = 0;
  /// Evaluations the pre-incremental algorithm would have run: one per
  /// reachable, not-yet-admitted node per dirty update. Directly comparable
  /// with flow_evals because both algorithms admit identical sets (the
  /// property is monotone and the dirty set over-approximates the nodes a
  /// batch can affect).
  std::uint64_t flow_evals_baseline = 0;
  /// Evaluations skipped because the node was not downstream of any new
  /// edge (its memoized verdict from an earlier epoch is still valid).
  std::uint64_t memoized_skips = 0;
  /// Evaluations skipped by Menger's bound (fewer than f+1 active
  /// in-neighbours means f+1 disjoint paths cannot exist).
  std::uint64_t degree_prunes = 0;
  /// Evaluations skipped because a cached vertex-cut certificate from an
  /// earlier failed evaluation still separates the node (no new edge
  /// crossed its frontier).
  std::uint64_t cut_skips = 0;
  /// Dominator-tree passes run for f = 1 batch admission. One pass decides
  /// every pending node at once (idom(j) == self ⟺ two disjoint paths for
  /// non-adjacent j), so it replaces up to |reachable| max-flow runs.
  std::uint64_t domtree_passes = 0;
  std::uint64_t updates = 0;        // update() invocations
  std::uint64_t dirty_updates = 0;  // updates with new certified edges
  std::uint64_t cert_epoch = 0;     // number of new-edge batches merged
};

/// Timer id used by the discovery retransmission path (see
/// DiscoveryConfig::requery_interval).
inline constexpr int kDiscoveryRequeryTimerId = 300;

struct DiscoveryConfig {
  /// When > 0, re-send DISCOVER to queried-but-silent nodes (and re-publish
  /// the last KNOWN set) every `requery_interval` ticks until finished.
  /// The paper's reliable channels never need this; it exists for network
  /// models that drop messages before GST (NetworkConfig::pre_gst_drop),
  /// where a single lost query would otherwise stall discovery forever.
  /// Off by default: no timer, no extra messages, existing runs unchanged.
  SimTime requery_interval = 0;
};

class SinkDiscovery {
 public:
  /// `pd` is the output of this process's participant detector.
  SinkDiscovery(sim::ProtocolHost& host, NodeSet pd,
                DiscoveryConfig config = {});

  /// Begins knowledge expansion (queries PD members).
  void start();

  /// Feeds a received message; returns true if it was a discovery-layer
  /// message (consumed).
  bool handle(ProcessId from, const sim::Message& msg);

  /// Feeds a timer firing; returns true if it was the discovery requery
  /// timer (consumed). Hosts must route on_timer here when a nonzero
  /// requery_interval is configured.
  bool on_timer(int timer_id);

  /// Lets the requery timer lapse for good (no more retransmissions).
  /// Hosts call this once the protocol above no longer needs recovery —
  /// typically when the node has decided; finishing discovery stops it
  /// automatically.
  void stop_requery() { requery_stopped_ = true; }

  /// True once step 3 succeeded (only sink members get here).
  bool finished() const { return finished_; }
  const NodeSet& sink() const { return candidate_; }

  /// True once >= f+1 *candidate members* published KNOWN sets different
  /// from ours — strong evidence of being a non-sink member (informational;
  /// the indirect path provides the actual sink). Non-members' reports are
  /// ignored: the claim under test is that the candidate set is a
  /// self-contained sink, so only its members' views bear on it.
  bool probably_non_sink() const { return probably_non_sink_; }

  const NodeSet& candidate_set() const { return candidate_; }
  const std::map<ProcessId, NodeSet>& certificates() const { return certs_; }
  const graph::Digraph& certified_graph() const { return cert_graph_; }
  const DiscoveryStats& stats() const { return stats_; }

  /// Invoked exactly once when step 3 succeeds.
  std::function<void()> on_complete;

 private:
  void merge_certificate(const PdCertificate& cert);
  void merge_certificates(const std::map<ProcessId, NodeSet>& certs);
  /// Queries newly reachable nodes, re-evaluates admission for nodes the
  /// new-edge batch can affect, and re-evaluates steps 2-3.
  void update();
  void recheck_admissions();
  void maybe_publish_known();
  void check_match();
  sim::MessagePtr gossip_reply();
  PdCertificate own_cert() const { return {host_.self(), pd_}; }

  /// Shared-payload access with sharing accounting: returns `cache`,
  /// building it with `build()` on a miss. Every call counts — a miss into
  /// kDiscoveryPayloadBuilds, a hit into kDiscoveryPayloadShared — so
  /// shared / (builds + shared) is the broadcast sharing ratio the E15
  /// bench reports. Call once per send.
  template <typename Build>
  const sim::MessagePtr& shared_payload(sim::MessagePtr& cache,
                                        Build&& build) {
    if (!cache) {
      cache = build();
      host_.host_counter_add(sim::ProtoCounter::kDiscoveryPayloadBuilds, 1);
    } else {
      host_.host_counter_add(sim::ProtoCounter::kDiscoveryPayloadShared, 1);
    }
    return cache;
  }

  sim::ProtocolHost& host_;
  NodeSet pd_;
  std::size_t f_;
  DiscoveryConfig config_;

  std::map<ProcessId, NodeSet> certs_;  // owner -> claimed PD (union-merged)
  graph::Digraph cert_graph_;           // the certified knowledge graph
  /// Heads (targets) of edges added since the last admission recheck; the
  /// nodes they can reach are exactly the nodes whose verdict may change.
  NodeSet new_edge_heads_;
  /// The same batch as (tail, head) pairs, for the per-edge cut-crossing
  /// test against cached negative verdicts.
  std::vector<std::pair<ProcessId, ProcessId>> new_edges_;

  NodeSet admitted_;  // f-reachability is monotone; cache positives
  NodeSet candidate_;
  NodeSet queried_;
  NodeSet responded_;
  std::map<ProcessId, NodeSet> latest_known_;  // sender -> last KNOWN set
  NodeSet last_published_;
  bool published_once_ = false;
  bool finished_ = false;
  bool probably_non_sink_ = false;
  bool requery_stopped_ = false;

  graph::DisjointPathEngine path_engine_;  // scratch reused across updates
  /// Per-node cut certificate from the last failed evaluation (empty
  /// optional: never evaluated, or admitted). Invalidated only by an edge
  /// crossing its frontier, so permanently-unreachable nodes stop costing
  /// max-flow runs after their first failure.
  std::vector<std::optional<graph::DisjointPathEngine::VertexCut>> neg_cuts_;
  /// Reachability as of the last recheck; nodes that became reachable since
  /// act like new edges for cut invalidation (their previously-inactive
  /// in-edges just joined the network).
  NodeSet prev_reachable_;
  // ---- shared broadcast payloads: every discovery broadcast constructs
  // ---- (and size-accounts) one immutable message per *state change*, not
  // ---- per destination; sends reuse the cache until the state moves.

  /// Gossip replies carry the whole certificate map; the map only changes
  /// when a certificate merge does (which resets this), so one immutable
  /// message per certificate state is shared by every reply instead of
  /// re-copying the map per DISCOVER.
  sim::MessagePtr cached_gossip_;
  /// DISCOVER carries own_cert(), which is frozen at construction (pd_
  /// never changes), so one message serves every query and retransmission
  /// for the lifetime of the instance.
  sim::MessagePtr cached_discover_;
  /// KNOWN carries last_published_; rebuilt only when a publication
  /// changes it, shared across the publish fan-out and every timer
  /// republish in between.
  sim::MessagePtr cached_known_;
  DiscoveryStats stats_;
};

}  // namespace scup::cup
