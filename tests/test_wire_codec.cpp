// Wire codec differential suite (DESIGN.md §4.9).
//
// The broadcast plane's contract has three legs, each pinned here:
//  1. Canonical roundtrip: for every registered frame type,
//     decode(encode(m)) re-encodes to byte-identical bytes.
//  2. Byzantine rejection: truncated prefixes, trailing bytes, forged
//     counts, non-canonical element order and over-deep qsets decode to
//     nullptr — never to UB (the fuzz loop runs the decoder over mutated
//     frames under the sanitizer jobs).
//  3. Pool + cache invariants: make_message inside a MessagePool::Scope
//     draws from the slab arena with wholesale reuse, the frame cache
//     encodes exactly once per message object, and pooling is invisible to
//     the determinism contract (fingerprint/metrics identity, pool on/off
//     x shard counts).
#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "bftcup/bftcup_node.hpp"
#include "bftcup/pbft.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/wire_codecs.hpp"
#include "cup/messages.hpp"
#include "scp/envelope.hpp"
#include "scp/ledger.hpp"
#include "sim/message.hpp"
#include "sim/message_pool.hpp"
#include "sim/wire.hpp"

namespace scup {
namespace {

using sim::MessagePtr;
using sim::WireReader;
using sim::WireWriter;

class WireCodecTest : public ::testing::Test {
 protected:
  void SetUp() override { core::register_wire_codecs(); }
};

/// The frame of a message via the public cache path.
std::vector<std::uint8_t> frame_of(const sim::Message& m) {
  const auto [data, size] = m.wire_frame();
  EXPECT_NE(data, nullptr);
  return std::vector<std::uint8_t>(data, data + size);
}

fbqs::QSet sample_qset() {
  return fbqs::QSet(2, {1, 5, 9},
                    {fbqs::QSet::threshold_of(1, std::vector<ProcessId>{2, 3}),
                     fbqs::QSet::threshold_of(2, std::vector<ProcessId>{4, 6, 7})});
}

/// One representative instance of every registered wire type (several for
/// Envelope: one per statement kind).
std::vector<MessagePtr> sample_messages() {
  std::vector<MessagePtr> out;
  const NodeSet pd(12, {0, 3, 4, 7, 11});

  out.push_back(sim::make_message<cup::DiscoverMsg>(
      cup::PdCertificate{2, pd}));
  out.push_back(sim::make_message<cup::CertGossipMsg>(
      std::map<ProcessId, NodeSet>{{0, pd}, {3, NodeSet(12)}, {7, pd}}));
  out.push_back(sim::make_message<cup::KnownMsg>(pd));
  out.push_back(sim::make_message<cup::GetSinkMsg>(ProcessId{9}));
  out.push_back(sim::make_message<cup::SinkValueMsg>(NodeSet(12, {1, 2})));

  const fbqs::QSet qset = sample_qset();
  scp::NominateStmt nom;
  nom.voted = {1001, 1005};
  nom.accepted = {1001};
  out.push_back(sim::make_message<scp::Envelope>(1, 4, qset,
                                                 scp::Statement{nom}));
  scp::PrepareStmt prep;
  prep.b = {3, 1001};
  prep.p = {2, 1001};
  prep.p_prime = {1, 1003};
  prep.c_n = 1;
  prep.h_n = 3;
  out.push_back(sim::make_message<scp::Envelope>(5, 7, qset,
                                                 scp::Statement{prep}));
  scp::ConfirmStmt conf;
  conf.b = {4, 1001};
  conf.p_n = 4;
  conf.c_n = 2;
  conf.h_n = 4;
  out.push_back(sim::make_message<scp::Envelope>(9, 11, qset,
                                                 scp::Statement{conf}));
  scp::ExternalizeStmt ext;
  ext.commit = {4, 1001};
  ext.h_n = 6;
  out.push_back(sim::make_message<scp::Envelope>(2, 13, qset,
                                                 scp::Statement{ext}));
  out.push_back(sim::make_message<scp::SlotEnvelope>(
      3, scp::Envelope(1, 4, qset, scp::Statement{nom})));

  out.push_back(sim::make_message<bftcup::PrePrepareMsg>(2, Value{1004}));
  out.push_back(sim::make_message<bftcup::PrepareMsg>(2, Value{1004},
                                                      std::uint64_t{77}));
  out.push_back(sim::make_message<bftcup::CommitMsg>(2, Value{1004},
                                                     std::uint64_t{78}));
  bftcup::ViewChangeRecord rec;
  rec.sender = 4;
  rec.new_view = 3;
  rec.prepared_view = 2;
  rec.prepared_value = 1004;
  rec.prepare_cert = {{1, 11}, {2, 22}, {4, 44}};
  rec.token = 99;
  out.push_back(sim::make_message<bftcup::ViewChangeMsg>(rec));
  bftcup::ViewChangeRecord empty_rec;
  empty_rec.sender = 6;
  empty_rec.new_view = 3;
  empty_rec.token = 5;
  out.push_back(sim::make_message<bftcup::NewViewMsg>(
      3, Value{1004}, std::vector<bftcup::ViewChangeRecord>{rec, empty_rec}));
  out.push_back(sim::make_message<bftcup::DecisionRequestMsg>(ProcessId{8}));
  out.push_back(sim::make_message<bftcup::DecisionMsg>(Value{1004}));
  return out;
}

TEST_F(WireCodecTest, RegistryCoversEveryFamily) {
  const auto types = sim::WireCodecRegistry::registered_types();
  EXPECT_EQ(types.size(), 14u);
  for (const std::uint16_t t : types) {
    EXPECT_NE(sim::WireCodecRegistry::find(t), nullptr);
    EXPECT_NE(sim::WireCodecRegistry::name_of(t), nullptr);
  }
  EXPECT_EQ(sim::WireCodecRegistry::find(0xfffe), nullptr);
}

TEST_F(WireCodecTest, RoundtripReencodesByteIdentically) {
  for (const MessagePtr& msg : sample_messages()) {
    SCOPED_TRACE(msg->type_name());
    const std::vector<std::uint8_t> frame = frame_of(*msg);
    ASSERT_GE(frame.size(), 2u);
    const MessagePtr decoded = sim::decode_frame(frame);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->wire_type(), msg->wire_type());
    EXPECT_EQ(decoded->type_name(), msg->type_name());
    // Canonical encoding: the decoded copy re-encodes to the same bytes.
    EXPECT_EQ(frame_of(*decoded), frame);
    // The exact frame size is what traffic accounting now charges.
    EXPECT_EQ(msg->send_size().bytes, frame.size());
  }
}

TEST_F(WireCodecTest, TruncatedPrefixesAreRejected) {
  for (const MessagePtr& msg : sample_messages()) {
    SCOPED_TRACE(msg->type_name());
    const std::vector<std::uint8_t> frame = frame_of(*msg);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      EXPECT_EQ(sim::decode_frame(frame.data(), len), nullptr)
          << "prefix of length " << len << " decoded";
    }
  }
}

TEST_F(WireCodecTest, TrailingBytesAreRejected) {
  for (const MessagePtr& msg : sample_messages()) {
    SCOPED_TRACE(msg->type_name());
    std::vector<std::uint8_t> frame = frame_of(*msg);
    frame.push_back(0);
    EXPECT_EQ(sim::decode_frame(frame), nullptr);
  }
}

TEST_F(WireCodecTest, UnknownTypeIsRejected) {
  std::vector<std::uint8_t> frame;
  WireWriter w(frame);
  w.u16(0xfffe);
  w.u32(1);
  EXPECT_EQ(sim::decode_frame(frame), nullptr);
}

TEST_F(WireCodecTest, NonCanonicalNodeSetOrderIsRejected) {
  // KnownMsg frame with descending ids: u16 type ++ u32 universe ++
  // u32 count ++ ids.
  std::vector<std::uint8_t> frame;
  WireWriter w(frame);
  w.u16(cup::kWireTypeKnown);
  w.u32(8);  // universe
  w.u32(2);  // count
  w.u32(5);
  w.u32(3);  // descending: must be rejected
  EXPECT_EQ(sim::decode_frame(frame), nullptr);
}

TEST_F(WireCodecTest, ForgedCountCannotForceAllocation) {
  // A CertGossip frame claiming 2^31 entries in a 10-byte buffer: fits()
  // must reject it before any container reservation.
  std::vector<std::uint8_t> frame;
  WireWriter w(frame);
  w.u16(cup::kWireTypeCertGossip);
  w.u32(0x8000'0000u);
  w.u32(0);
  EXPECT_EQ(sim::decode_frame(frame), nullptr);

  // Same for a NodeSet count exceeding the byte budget.
  std::vector<std::uint8_t> frame2;
  WireWriter w2(frame2);
  w2.u16(cup::kWireTypeKnown);
  w2.u32(0xffff'ffffu);  // universe
  w2.u32(0x4000'0000u);  // count: way past the remaining bytes
  EXPECT_EQ(sim::decode_frame(frame2), nullptr);
}

TEST_F(WireCodecTest, OverDeepQsetIsRejected) {
  // Hand-encode an Envelope whose qset nests past kWireMaxQsetDepth:
  // each level is threshold=1, no validators, one inner set.
  std::vector<std::uint8_t> frame;
  WireWriter w(frame);
  w.u16(scp::kWireTypeEnvelope);
  w.u32(1);   // sender
  w.u64(1);   // seq
  for (std::size_t d = 0; d <= scp::kWireMaxQsetDepth + 1; ++d) {
    w.u32(1);  // threshold
    w.u32(0);  // no validators
    w.u32(1);  // one inner set
  }
  w.u32(0);  // innermost: threshold 0, then truncation does the rest
  EXPECT_EQ(sim::decode_frame(frame), nullptr);
}

TEST_F(WireCodecTest, MutationFuzzNeverCrashesAndStaysCanonical) {
  // Byte-level mutations of valid frames: every outcome must be either a
  // clean nullptr or a message that re-encodes canonically. Deterministic
  // stream so failures replay.
  StreamRng rng(0x5c0dec16u);
  const auto samples = sample_messages();
  for (const MessagePtr& msg : samples) {
    const std::vector<std::uint8_t> base = frame_of(*msg);
    for (int round = 0; round < 200; ++round) {
      std::vector<std::uint8_t> frame = base;
      const int mutations = 1 + static_cast<int>(rng.next_u64() % 4);
      for (int m = 0; m < mutations; ++m) {
        const std::size_t pos = rng.next_u64() % frame.size();
        frame[pos] = static_cast<std::uint8_t>(rng.next_u64());
      }
      const MessagePtr decoded = sim::decode_frame(frame);
      if (decoded != nullptr) {
        // Accepted mutants must still be canonical fixed points.
        EXPECT_EQ(frame_of(*decoded), frame) << msg->type_name();
      }
    }
  }
}

TEST_F(WireCodecTest, FrameCacheEncodesOncePerMessage) {
  const MessagePtr msg = sim::make_message<cup::GetSinkMsg>(ProcessId{3});
  const auto first = msg->send_size();
  EXPECT_TRUE(first.from_codec);
  EXPECT_TRUE(first.encoded_now);
  const auto second = msg->send_size();
  EXPECT_TRUE(second.from_codec);
  EXPECT_FALSE(second.encoded_now);  // served from the cache
  EXPECT_EQ(second.bytes, first.bytes);
  // The cached frame is stable storage: same pointer on every call.
  const auto [p1, s1] = msg->wire_frame();
  const auto [p2, s2] = msg->wire_frame();
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(s1, s2);
}

TEST_F(WireCodecTest, CodeclessMessagesKeepByteSizeEstimates) {
  struct LegacyMsg final : sim::Message {
    std::string type_name() const override { return "test.legacy"; }
    std::size_t byte_size() const override { return 57; }
  };
  const auto msg = std::make_shared<const LegacyMsg>();
  const auto sized = msg->send_size();
  EXPECT_FALSE(sized.from_codec);
  EXPECT_EQ(sized.bytes, 57u);
  EXPECT_EQ(msg->wire_frame().first, nullptr);
}

// ---- MessagePool ----

TEST(MessagePoolTest, SteadyStateReusesSlabsWholesale) {
  sim::MessagePool pool;
  const sim::MessagePool::Scope scope(&pool);
  // Churn far more messages than one slab holds, with a bounded live set:
  // after warm-up every allocation must come from pooled storage, and the
  // reserved footprint must stay at the in-flight watermark, not the total.
  std::vector<MessagePtr> live;
  for (int round = 0; round < 5000; ++round) {
    live.push_back(sim::make_message<cup::GetSinkMsg>(
        static_cast<ProcessId>(round)));
    if (live.size() > 64) live.erase(live.begin());
  }
  live.clear();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.pool_allocs, 5000u);
  EXPECT_EQ(stats.pool_frees, 5000u);
  EXPECT_EQ(stats.fallback_allocs, 0u);
  // 64 live GetSink messages fit in a couple of slabs; 5000 allocations
  // must not have grown the footprint past the watermark.
  EXPECT_LE(stats.slabs_created, 4u);
  EXPECT_LE(stats.bytes_reserved, 4u * 64u * 1024u);
}

TEST(MessagePoolTest, BlocksOutliveThePoolHandle) {
  MessagePtr survivor;
  {
    sim::MessagePool pool;
    const sim::MessagePool::Scope scope(&pool);
    survivor = sim::make_message<cup::KnownMsg>(NodeSet(8, {1, 2, 3}));
  }
  // The allocator's shared State keeps the slab alive; releasing the last
  // reference after the pool died must be safe (ASan would flag a stale
  // slab here).
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->type_name(), "cup.known");
  survivor.reset();
}

TEST(MessagePoolTest, OversizedRequestsFallBackToHeap) {
  struct JumboMsg final : sim::Message {
    std::array<std::uint8_t, 8192> payload{};
    std::string type_name() const override { return "test.jumbo"; }
    std::size_t byte_size() const override { return payload.size(); }
  };
  sim::MessagePool pool;
  const sim::MessagePool::Scope scope(&pool);
  const MessagePtr msg = sim::make_message<JumboMsg>();
  EXPECT_EQ(pool.stats().fallback_allocs, 1u);
  EXPECT_EQ(pool.stats().pool_allocs, 0u);
}

TEST(MessagePoolTest, UnboundThreadsUsePlainMakeShared) {
  EXPECT_EQ(sim::MessagePool::current(), nullptr);
  const MessagePtr msg = sim::make_message<cup::GetSinkMsg>(ProcessId{1});
  EXPECT_NE(msg, nullptr);
}

// ---- pool on/off x shard-count identity ----

TEST(MessagePoolTest, PoolingIsInvisibleToTheDeterminismContract) {
  core::ChurnPartitionParams params;
  params.n = 16;
  params.f = 1;
  params.seed = 11;
  // For every execution mode (legacy serial, windowed, 2-way sharded):
  // pool on vs. pool off must be bit-identical in every observable —
  // fingerprint, full SimMetrics, decisions. Fingerprints and decisions
  // are additionally invariant across the modes themselves (the full
  // SimMetrics cross-mode identity lives in the E12 shard suites).
  core::ScenarioReport first;
  bool have_first = false;
  for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}}) {
    core::ScenarioReport pooled_run;
    for (const bool pooled : {true, false}) {
      core::ScenarioConfig config = core::churn_partition_scenario(params);
      config.net.message_pool = pooled;
      config.shards = shards;
      const core::ScenarioReport run = core::run_scenario(config);
      EXPECT_TRUE(run.all_decided);
      if (pooled) {
        pooled_run = run;
        continue;
      }
      EXPECT_EQ(run.notary_fingerprint, pooled_run.notary_fingerprint)
          << "shards=" << shards;
      EXPECT_EQ(run.metrics, pooled_run.metrics) << "shards=" << shards;
      EXPECT_EQ(run.decision_times, pooled_run.decision_times);
      EXPECT_EQ(run.end_time, pooled_run.end_time);
      if (!have_first) {
        first = run;
        have_first = true;
      } else {
        EXPECT_EQ(run.notary_fingerprint, first.notary_fingerprint);
        EXPECT_EQ(run.decision_times, first.decision_times);
        EXPECT_EQ(run.end_time, first.end_time);
      }
    }
  }
}

}  // namespace
}  // namespace scup
