// Determinism under forced rehash: the E12/E13 identity guarantees
// (bit-identical chains, sign logs and quorum-engine counters for a given
// seed) must not depend on hash-table iteration order. scup-lint's
// det-unordered-iter rule enforces that statically; this suite enforces it
// dynamically by rehashing every unordered table (ScpNode support indexes,
// QuorumEngine memo tables) between simulation events — scrambling bucket
// orders mid-run — and requiring byte-identical outcomes versus an
// undisturbed run with the same seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/adversaries.hpp"
#include "core/ledger_node.hpp"
#include "graph/generators.hpp"
#include "sim/simulation.hpp"

namespace scup::core {
namespace {

struct RunResult {
  std::vector<std::uint64_t> chain_digests;        // per correct node
  std::vector<std::uint64_t> quorum_evals;         // per correct node
  std::vector<std::pair<ProcessId, std::uint64_t>> sign_log;
  std::vector<Value> decisions;                    // slot-major, first node
  bool completed = false;
};

/// Runs `slots` ledger slots on `g` with the given seed. When `rehash` is
/// true, every predicate poll (between event batches) forces a rehash with
/// a growing bucket count, so iteration orders keep changing all run long.
RunResult run_ledger(const graph::Digraph& g, const NodeSet& faulty,
                     std::size_t f, std::size_t slots, std::uint64_t seed,
                     bool rehash) {
  sim::NetworkConfig net;
  net.seed = seed;
  net.min_delay = 1;
  net.max_delay = 10;
  sim::Simulation sim(g.node_count(), net);
  std::vector<LedgerNode*> nodes(g.node_count(), nullptr);
  for (ProcessId i = 0; i < g.node_count(); ++i) {
    if (faulty.contains(i)) {
      sim.emplace_process<SilentNode>(i);
      continue;
    }
    nodes[i] = &sim.emplace_process<LedgerNode>(i, g.pd_of(i), f, slots);
  }
  const NodeSet correct = faulty.complement();

  std::size_t polls = 0;
  sim.start();
  RunResult r;
  // Polled every 256 events; a strictly growing bucket floor means every
  // poll really rehashes (libstdc++ never shrinks below the prior floor),
  // so iteration orders are scrambled a few hundred times per run without
  // the rehash work itself going quadratic.
  r.completed = sim.run_until(
      [&] {
        if (rehash) {
          const std::size_t buckets = 8 + 7 * ++polls;
          for (ProcessId i : correct) {
            nodes[i]->ledger().debug_rehash(buckets);
          }
        }
        for (ProcessId i : correct) {
          if (nodes[i]->decided_slots() < slots) return false;
        }
        return true;
      },
      3'000'000, /*stride=*/256);

  for (ProcessId i : correct) {
    r.chain_digests.push_back(nodes[i]->chain_digest());
    r.quorum_evals.push_back(nodes[i]->quorum_stats().qset_evals);
  }
  const ProcessId first = correct.min_member();
  for (std::uint64_t s = 1; s <= slots; ++s) {
    r.decisions.push_back(nodes[first]->slot_decision(s));
  }
  r.sign_log = sim.notary().log();
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.chain_digests, b.chain_digests);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.quorum_evals, b.quorum_evals);
  ASSERT_EQ(a.sign_log.size(), b.sign_log.size());
  EXPECT_EQ(a.sign_log, b.sign_log);
}

TEST(DeterminismRehashTest, Fig1ChainIdenticalUnderForcedRehash) {
  const auto g = graph::fig1_graph();
  const auto base = run_ledger(g, graph::fig1_faulty(), 1, 4, /*seed=*/11,
                               /*rehash=*/false);
  const auto scrambled = run_ledger(g, graph::fig1_faulty(), 1, 4,
                                    /*seed=*/11, /*rehash=*/true);
  expect_identical(base, scrambled);
}

TEST(DeterminismRehashTest, Fig2ChainIdenticalUnderForcedRehash) {
  const auto g = graph::fig2_graph();
  const NodeSet faulty(7, {6});
  const auto base =
      run_ledger(g, faulty, 1, 3, /*seed=*/23, /*rehash=*/false);
  const auto scrambled =
      run_ledger(g, faulty, 1, 3, /*seed=*/23, /*rehash=*/true);
  expect_identical(base, scrambled);
}

TEST(DeterminismRehashTest, RehashRunsAreSelfConsistentAcrossRepeats) {
  // Two scrambled runs with the same seed also agree with each other (the
  // rehash schedule is itself deterministic).
  const auto g = graph::fig1_graph();
  const auto a = run_ledger(g, graph::fig1_faulty(), 1, 3, /*seed=*/5,
                            /*rehash=*/true);
  const auto b = run_ledger(g, graph::fig1_faulty(), 1, 3, /*seed=*/5,
                            /*rehash=*/true);
  expect_identical(a, b);
}

}  // namespace
}  // namespace scup::core
