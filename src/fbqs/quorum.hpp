// Federated Byzantine Quorum System analysis.
//
// FbqsSystem holds one SliceSet per process and implements:
//  - Algorithm 1 (is_quorum),
//  - greatest-fixpoint quorum closure,
//  - exhaustive quorum / minimal-quorum enumeration (small universes),
//  - the threshold-form intertwined test (|Q ∩ Q′| > f, Section III-F),
//  - consensus clusters (Definitions 2-4).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/node_set.hpp"
#include "fbqs/slices.hpp"

namespace scup::fbqs {

class FbqsSystem {
 public:
  explicit FbqsSystem(std::size_t n);

  std::size_t size() const { return n_; }

  void set_slices(ProcessId i, SliceSet slices);
  const SliceSet& slices_of(ProcessId i) const;
  bool has_slices(ProcessId i) const;

  /// Algorithm 1: Q is a quorum iff every member has a slice inside Q.
  /// Processes without slices defined count as unsatisfied (they cannot
  /// justify membership). The empty set is vacuously a quorum; callers that
  /// need non-triviality should test emptiness.
  bool is_quorum(const NodeSet& q) const;

  /// Q is a quorum *for i*: i ∈ Q, Q is a quorum (Definition 1 and the text
  /// after it).
  bool is_quorum_for(ProcessId i, const NodeSet& q) const;

  /// Greatest quorum contained in `candidate`: repeatedly removes members
  /// whose slices are not satisfied. Returns the (possibly empty) fixpoint.
  NodeSet quorum_closure(NodeSet candidate) const;

  /// Smallest-effort search for a quorum for i inside `within`: the closure
  /// of `within`, provided it still contains i. nullopt otherwise.
  std::optional<NodeSet> find_quorum_for(ProcessId i, const NodeSet& within) const;

  /// Exhaustive enumeration of all non-empty quorums. Guarded: throws if
  /// n > max_universe (default 20) to prevent accidental 2^n blowups.
  std::vector<NodeSet> all_quorums(std::size_t max_universe = 20) const;

  /// Inclusion-minimal quorums for process i (minimal among quorums
  /// containing i). Same guard as all_quorums.
  std::vector<NodeSet> minimal_quorums_for(ProcessId i,
                                           std::size_t max_universe = 20) const;

  /// Threshold-form intertwined test for two processes (Section III-F):
  /// every quorum of i and every quorum of j intersect in more than f
  /// processes. Exhaustive over minimal quorums (intersection size is
  /// monotone under quorum inclusion, so minimal quorums suffice).
  bool intertwined(ProcessId i, ProcessId j, std::size_t f,
                   std::size_t max_universe = 20) const;

  /// Checks that every pair of processes in `group` is intertwined
  /// (including each member with itself — two quorums of one process must
  /// also intersect in more than f), and returns the smallest pairwise
  /// quorum intersection observed so callers can report the margin.
  /// Returns false via .ok when some pair violates, or when some member has
  /// no quorum at all (then min_intersection is 0 and worst_i == worst_j
  /// names that member). An empty group examines no pairs and is vacuously
  /// ok with min_intersection == 0 and worst_i/worst_j == kInvalidProcess;
  /// a singleton group examines exactly its self-pairs. min_intersection is
  /// always either 0 (no pairs) or a realized intersection size — never an
  /// out-of-band sentinel.
  struct IntertwinedReport {
    bool ok = false;
    std::size_t min_intersection = 0;  // over all quorum pairs examined
    ProcessId worst_i = kInvalidProcess;
    ProcessId worst_j = kInvalidProcess;
    std::size_t pairs_examined = 0;  // quorum pairs compared (0 for an empty
                                     // group or a quorum-less-member return)
  };
  IntertwinedReport check_intertwined(const NodeSet& group, std::size_t f,
                                      std::size_t max_universe = 20) const;

  /// Definition 3 (threshold form): I is a consensus cluster for correct set
  /// W and threshold f iff I ⊆ W, every two members are intertwined, and
  /// every member has a quorum inside I.
  bool is_consensus_cluster(const NodeSet& I, const NodeSet& W,
                            std::size_t f) const;

  /// Searches for the unique maximal consensus cluster by checking whether W
  /// itself is a cluster first (the paper's success condition C = W), then
  /// greedily shrinking. Exhaustive for small n via all_quorums; returns
  /// nullopt if no non-empty cluster exists.
  std::optional<NodeSet> maximal_consensus_cluster(const NodeSet& W,
                                                   std::size_t f) const;

 private:
  std::size_t n_;
  std::vector<SliceSet> slices_;
  std::vector<bool> has_slices_;
};

}  // namespace scup::fbqs
