// Internals shared between the parser (model.cpp), the linker/driver
// (project.cpp) and the rule families (taint.cpp, ownership.cpp,
// locks.cpp). Not installed; tests go through analyze.hpp.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze.hpp"

namespace scup::analyze {

// model.cpp exports its token classifiers for the rule passes.
bool is_analyzable_ident_token(const Tok& t);
bool is_cpp_keyword(const std::string& s);

struct FnRef {
  std::size_t tu = 0;
  std::size_t fn = 0;
  bool operator==(const FnRef&) const = default;
};

struct FieldRef {
  std::size_t tu = 0;
  std::size_t idx = 0;
};

/// Project-wide linking of the per-TU models: name indices for call
/// resolution and the field universe the sinks/ownership/lock rules match
/// identifiers against.
struct ProjectIndex {
  std::vector<TU>* tus = nullptr;

  /// Function name -> every definition with that name.
  std::unordered_multimap<std::string, FnRef> by_name;
  /// Names of every recovered class/namespace field ("member-shaped"
  /// identifiers, the sink receivers).
  std::unordered_set<std::string> field_names;
  /// Owner-annotated fields by name (the annotation discipline requires
  /// distinctive names, enforced at link time).
  std::unordered_map<std::string, FieldRef> owner_fields;
  /// Guarded (scup-guarded-by) symbols, in declaration order.
  std::vector<FieldRef> guarded_fields;
  /// Functions carrying requires-lock annotations.
  std::vector<FnRef> requires_lock_fns;

  FunctionSym& fn(FnRef r) { return (*tus)[r.tu].functions[r.fn]; }
  const FunctionSym& fn(FnRef r) const {
    return (*tus)[r.tu].functions[r.fn];
  }
  FieldSym& field(FieldRef r) { return (*tus)[r.tu].fields[r.idx]; }
  Annotation& ann(std::size_t tu, int idx) {
    return (*tus)[tu].annotations[static_cast<std::size_t>(idx)];
  }

  /// Name-based call resolution (see "known unsoundness" in analyze.hpp):
  /// `Cls::f` resolves exactly; `x.f` / `x->f` to every method named f;
  /// a plain `f` to same-class methods first, else every function named f.
  std::vector<FnRef> resolve(const FunctionSym& caller,
                             const CallSite& c) const;
};

ProjectIndex build_index(std::vector<TU>& tus);

// Rule families (each appends findings; the driver sorts).
void run_taint(ProjectIndex& ix, std::vector<Finding>& out);
void run_ownership(ProjectIndex& ix, std::vector<Finding>& out);
void run_locks(ProjectIndex& ix, std::vector<Finding>& out);

}  // namespace scup::analyze
