#include "graph/generators.hpp"

#include <stdexcept>
#include <vector>

#include "graph/kosr.hpp"
#include "graph/scc.hpp"

namespace scup::graph {

namespace {
/// Adds edges from the paper's 1-based PD lists.
void add_pd(Digraph& g, ProcessId paper_id,
            std::initializer_list<ProcessId> paper_pd) {
  for (ProcessId target : paper_pd) g.add_edge(paper_id - 1, target - 1);
}
}  // namespace

Digraph fig1_graph() {
  Digraph g(8);
  add_pd(g, 1, {2, 5});
  add_pd(g, 2, {4});
  add_pd(g, 3, {5, 7});
  add_pd(g, 4, {5, 6, 8});
  add_pd(g, 5, {6, 7});
  add_pd(g, 6, {5, 7, 8});
  add_pd(g, 7, {5, 6, 8});
  add_pd(g, 8, {6, 7});
  return g;
}

NodeSet fig1_sink() { return NodeSet(8, {4, 5, 6, 7}); }

NodeSet fig1_faulty() { return NodeSet(8, {7}); }

Digraph fig2_graph() {
  Digraph g(7);
  add_pd(g, 1, {2, 3, 4});
  add_pd(g, 2, {1, 3, 4});
  add_pd(g, 3, {1, 2, 4});
  add_pd(g, 4, {1, 2, 3});
  add_pd(g, 5, {1, 6, 7});
  add_pd(g, 6, {4, 5, 7});
  add_pd(g, 7, {3, 5, 6});
  return g;
}

NodeSet fig2_sink() { return NodeSet(7, {0, 1, 2, 3}); }

Digraph random_kosr_graph(const KosrGenParams& params) {
  const std::size_t s = params.sink_size;
  const std::size_t n = s + params.non_sink_size;
  if (s == 0) throw std::invalid_argument("random_kosr_graph: empty sink");
  if (params.k >= s) {
    throw std::invalid_argument(
        "random_kosr_graph: need k < sink_size (circulant construction)");
  }
  Rng rng(params.seed);
  Digraph g(n);

  // Sink: circulant C_s(1..k).
  for (ProcessId i = 0; i < s; ++i) {
    for (std::size_t jump = 1; jump <= params.k; ++jump) {
      g.add_edge(i, static_cast<ProcessId>((i + jump) % s));
    }
  }
  // Extra random intra-sink edges.
  for (ProcessId i = 0; i < s; ++i) {
    for (ProcessId j = 0; j < s; ++j) {
      if (i != j && rng.chance(params.extra_edge_prob)) g.add_edge(i, j);
    }
  }

  // Non-sink nodes: k distinct edges into the sink each.
  for (ProcessId u = static_cast<ProcessId>(s); u < n; ++u) {
    for (ProcessId t : rng.sample_ids(s, params.k)) g.add_edge(u, t);
    // Random extra edges to any node except edges from sink to non-sink
    // (which would destroy the sink property).
    for (ProcessId v = 0; v < n; ++v) {
      if (v != u && rng.chance(params.extra_edge_prob)) g.add_edge(u, v);
    }
  }
  return g;
}

NodeSet pick_safe_faulty_set(const Digraph& g, const NodeSet& sink,
                             std::size_t f, bool allow_in_sink, Rng& rng) {
  const std::size_t n = g.node_count();
  NodeSet faulty(n);
  if (f == 0) return faulty;

  // Try random placements until one satisfies the safety conditions. The
  // generator's structure makes success overwhelmingly likely for
  // k >= 2f+1, so a bounded number of attempts suffices.
  constexpr int kAttempts = 256;
  std::vector<ProcessId> pool;
  for (ProcessId p = 0; p < n; ++p) {
    if (allow_in_sink || !sink.contains(p)) pool.push_back(p);
  }
  if (pool.size() < f) {
    throw std::invalid_argument("pick_safe_faulty_set: not enough candidates");
  }
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    rng.shuffle(pool);
    NodeSet candidate(n);
    for (std::size_t i = 0; i < f; ++i) candidate.add(pool[i]);
    if (satisfies_bft_cup_preconditions(g, candidate, f)) return candidate;
  }
  throw std::runtime_error(
      "pick_safe_faulty_set: no safe failure placement found; graph "
      "parameters too tight for f=" +
      std::to_string(f));
}

Digraph random_digraph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  for (ProcessId u = 0; u < n; ++u) {
    for (ProcessId v = 0; v < n; ++v) {
      if (u != v && rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace scup::graph
