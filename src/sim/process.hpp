// Actor base class for simulated processes.
#pragma once

#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/counters.hpp"
#include "sim/message.hpp"

namespace scup::sim {

class Simulation;

/// One message delivery inside a batched upcall (see Process::on_messages).
struct Delivery {
  ProcessId from = kInvalidProcess;
  MessagePtr msg;
  /// Engine bookkeeping handle identifying the underlying delivery event;
  /// opaque to processes, forwarded through begin_delivery().
  std::uint64_t cookie = 0;
};

/// A simulated process (participant). Subclasses implement protocol logic in
/// start() / on_message() / on_timer(); the base class provides the actions
/// a process may take (send, timers). Correct processes follow their
/// protocol; Byzantine behaviours are expressed as subclasses that deviate
/// arbitrarily — the simulator itself treats all processes identically and
/// enforces only the model's guarantees (authenticated channels: the `from`
/// id passed to on_message is always truthful).
class Process {
 public:
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }

  /// Invoked once when the simulation starts.
  virtual void start() {}

  /// Invoked on message delivery. `from` is the authenticated sender id.
  virtual void on_message(ProcessId from, const MessagePtr& msg) = 0;

  /// Invoked with every message the process receives in one simulated tick
  /// (the sharded engine amortizes one upcall across the whole tick; the
  /// legacy serial loop delivers one message at a time through
  /// on_message). The default unpacks the batch in order through
  /// on_message. Overrides MUST call begin_delivery(batch[i]) before
  /// consuming delivery i, and MUST consume deliveries in index order —
  /// the engine uses the call to attribute the handler's sends, timers and
  /// signatures to the right event in the deterministic barrier merge.
  virtual void on_messages(Delivery* batch, std::size_t count);

  /// Invoked when a timer armed with set_timer fires.
  virtual void on_timer(int timer_id) { (void)timer_id; }

 protected:
  Process() = default;

  /// Sends msg to `to` over the reliable authenticated channel. In the
  /// paper's model a process may message any process whose id it knows;
  /// knowing an id is a protocol-level concern, so subclasses must only
  /// call send() for processes they have learned about.
  void send(ProcessId to, MessagePtr msg);

  /// Sends msg to every member of `to` (excluding self).
  void send_all(const NodeSet& to, const MessagePtr& msg);

  /// Arms (or re-arms, replacing any pending firing of the same id) a timer
  /// to fire after `delay` ticks.
  void set_timer(int timer_id, SimTime delay);

  /// Cancels a pending timer; no-op if not armed.
  void cancel_timer(int timer_id);

  SimTime now() const;

  /// Per-process deterministic randomness.
  Rng& rng();

  std::size_t universe_size() const;

  /// Signature simulation: signs `statement` as this process. A correct
  /// process signs only statements it actually asserts; see sim::Notary.
  std::uint64_t sign(std::uint64_t statement) const;
  bool verify(ProcessId signer, std::uint64_t statement,
              std::uint64_t token) const;

  /// Adds to one of the simulation's protocol instrumentation counters
  /// (SimMetrics::protocol_counters).
  void counter_add(ProtoCounter counter, std::uint64_t delta);

  /// Marks `d` as the delivery whose effects the caller is about to
  /// produce (see on_messages). No-op outside sharded execution.
  void begin_delivery(const Delivery& d);

 private:
  friend class Simulation;
  Simulation* sim_ = nullptr;
  ProcessId id_ = kInvalidProcess;
};

}  // namespace scup::sim
