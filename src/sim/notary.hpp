// Signature simulation.
//
// The paper's model assumes authenticated channels and (implicitly, via the
// BFT-CUP substrate) the ability to present unforgeable evidence of what
// other processes said (e.g. PBFT view-change certificates). Instead of real
// cryptography we keep a per-process secret inside the simulator: a token is
// a keyed hash of (secret, statement). Correct processes sign only their own
// statements through Process-level helpers; Byzantine implementations can
// replay tokens they have observed but cannot mint tokens for other
// processes (they never see the secrets).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace scup::sim {

class Notary {
 public:
  using Token = std::uint64_t;

  Notary(std::size_t n, std::uint64_t seed);

  /// Token binding `signer` to `statement`. Every call is appended to
  /// log(), so the signing trace doubles as a protocol-behaviour
  /// fingerprint for determinism checks.
  Token sign(ProcessId signer, std::uint64_t statement) const;

  /// Pure token computation — no log append. The sharded engine computes
  /// tokens inside a window and replays the log entries at the barrier (in
  /// the deterministic merge order) via append(), so the combined effect is
  /// exactly a serial sign() stream.
  Token compute(ProcessId signer, std::uint64_t statement) const {
    return token_for(signer, statement);
  }

  /// Barrier-side half of compute(): appends one entry to the sign log.
  void append(ProcessId signer, std::uint64_t statement) const {
    log_.emplace_back(signer, statement);
  }

  /// Signature check; does not log (verification is a read).
  bool verify(ProcessId signer, std::uint64_t statement, Token token) const;

  /// Order-sensitive hash of the sign log — the determinism fingerprint
  /// the shard-invariance suites compare (cheaper to pin than the log).
  std::uint64_t fingerprint() const;

  /// Every (signer, statement) pair signed so far, in order. Two runs of
  /// the same seeded simulation must produce identical logs.
  const std::vector<std::pair<ProcessId, std::uint64_t>>& log() const {
    return log_;
  }

 private:
  Token token_for(ProcessId signer, std::uint64_t statement) const;

  std::vector<std::uint64_t> secrets_;
  /// The log is observational state, not signature semantics; sign() stays
  /// const for callers holding the simulation's const notary reference.
  mutable std::vector<std::pair<ProcessId, std::uint64_t>> log_;
};

}  // namespace scup::sim
