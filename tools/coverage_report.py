#!/usr/bin/env python3
"""Aggregate gcov line coverage over src/ and enforce a floor.

Walks a --coverage build tree (SCUP_COVERAGE=ON, the `coverage` CMake
preset) for .gcda counter files, runs `gcov --json-format` on each, and
merges the per-TU reports into one per-source-file line map: a line is
covered when any TU executed it, and the instrumented-line universe is the
union across TUs (headers are compiled into many TUs; the max count per
line is what a human would call "covered").

Only files under src/ of the repo root count toward the floor — tests,
benches, tools and system headers are reported separately but never gate.

Usage:
  coverage_report.py <build-dir> [--root <repo-root>] [--floor <percent>]
                     [--out <report-file>]

Exit codes: 0 floor met (or no floor), 1 floor missed, 2 usage/tool error
(no .gcda files, gcov missing, or gcov JSON unreadable).

No gcovr/lcov dependency: plain gcov's JSON output is enough, and the
merge is ~100 lines of stdlib Python.
"""

import argparse
import gzip
import json
import os
import shutil
import subprocess
import sys
import tempfile


def find_gcda(build_dir):
    out = []
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcda"):
                # Absolute: gcov runs in a scratch cwd (its .gcov.json.gz
                # outputs land there, away from the build tree).
                out.append(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(out)


def run_gcov(gcov, gcda_paths, scratch):
    """Runs gcov --json-format over the .gcda files, returns parsed docs.

    gcov writes one <object>.gcov.json.gz per input into the cwd; batching
    many .gcda per invocation keeps process count down.
    """
    docs = []
    batch = 64
    for i in range(0, len(gcda_paths), batch):
        chunk = gcda_paths[i : i + batch]
        proc = subprocess.run(
            [gcov, "--json-format"] + chunk,
            cwd=scratch,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        if proc.returncode != 0:
            sys.stderr.write(
                "coverage_report: gcov failed: %s\n"
                % proc.stderr.decode(errors="replace")
            )
            sys.exit(2)
    for name in os.listdir(scratch):
        if not name.endswith(".gcov.json.gz"):
            continue
        with gzip.open(os.path.join(scratch, name), "rb") as fh:
            try:
                docs.append(json.load(fh))
            except ValueError:
                sys.stderr.write("coverage_report: bad JSON in %s\n" % name)
                sys.exit(2)
    return docs


def merge(docs, root):
    """{rel_or_abs_path: {line_number: max_count}} across every TU."""
    lines_by_file = {}
    for doc in docs:
        cwd = doc.get("current_working_directory", "")
        for f in doc.get("files", []):
            path = f.get("file", "")
            if not os.path.isabs(path):
                path = os.path.normpath(os.path.join(cwd, path))
            try:
                rel = os.path.relpath(path, root)
            except ValueError:
                rel = path
            per_line = lines_by_file.setdefault(rel, {})
            for line in f.get("lines", []):
                no = line.get("line_number")
                count = line.get("count", 0)
                if no is None:
                    continue
                per_line[no] = max(per_line.get(no, 0), count)
    return lines_by_file


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--root", default=".")
    ap.add_argument("--floor", type=float, default=None)
    ap.add_argument("--out", default=None)
    args = ap.parse_args()

    gcov = shutil.which("gcov")
    if gcov is None:
        sys.stderr.write("coverage_report: gcov not found on PATH\n")
        return 2
    if not os.path.isdir(args.build_dir):
        sys.stderr.write(
            "coverage_report: not a directory: %s\n" % args.build_dir
        )
        return 2
    gcda = find_gcda(args.build_dir)
    if not gcda:
        sys.stderr.write(
            "coverage_report: no .gcda under %s (configure with the "
            "`coverage` preset and run the tests first)\n" % args.build_dir
        )
        return 2

    root = os.path.abspath(args.root)
    with tempfile.TemporaryDirectory() as scratch:
        lines_by_file = merge(run_gcov(gcov, gcda, scratch), root)

    rows = []
    src_covered = 0
    src_total = 0
    for rel in sorted(lines_by_file):
        if rel.startswith(".." + os.sep) or os.path.isabs(rel):
            continue  # system/toolchain headers: outside the repo
        per_line = lines_by_file[rel]
        total = len(per_line)
        covered = sum(1 for c in per_line.values() if c > 0)
        if total == 0:
            continue
        rows.append((rel, covered, total))
        if rel.startswith("src" + os.sep) or rel.startswith("src/"):
            src_covered += covered
            src_total += total

    report = []
    for rel, covered, total in rows:
        report.append(
            "%6.1f%%  %5d/%-5d  %s" % (100.0 * covered / total, covered, total, rel)
        )
    pct = 100.0 * src_covered / src_total if src_total else 0.0
    report.append(
        "coverage_report: src/ line coverage %.2f%% (%d/%d lines)"
        % (pct, src_covered, src_total)
    )
    text = "\n".join(report) + "\n"
    sys.stdout.write(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)

    if args.floor is not None and pct < args.floor:
        sys.stderr.write(
            "coverage_report: src/ line coverage %.2f%% is below the "
            "--floor %.2f%%\n" % (pct, args.floor)
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
