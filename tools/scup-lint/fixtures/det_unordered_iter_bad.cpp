// Fixture: det-unordered-iter must fire on a bare range-for over an
// unordered container. (Never compiled; consumed by test_scup_lint.)
#include <unordered_map>

struct Fingerprinter {
  std::unordered_map<int, int> support_;
  unsigned long long digest() const {
    unsigned long long h = 0;
    for (const auto& [k, v] : support_) {
      h = h * 31 + static_cast<unsigned long long>(k + v);
    }
    return h;
  }
};
