// The paper's negative result, made concrete (Theorem 2 / Fig. 2).
//
// Part 1 — local slices: every process builds its slices from PD_i and f
// alone (all (|PD_i|-f)-subsets of PD_i, satisfying Lemmas 1 and 2). The
// sets {5,6,7} and {1,2,3,4} (paper ids) are then both quorums and are
// DISJOINT: quorum intersection is violated, so Stellar cannot solve
// consensus — even though the graph is 3-OSR and BFT-CUP could.
//
// Part 2 — sink detector: the same graph with Algorithm-2 slices forms a
// single maximal consensus cluster, and a full simulated run decides.
//
// Build & run:  cmake --build build && ./build/examples/counterexample_fig2
#include <cstdio>

#include "core/experiment.hpp"
#include "fbqs/fig_examples.hpp"
#include "graph/generators.hpp"
#include "graph/kosr.hpp"
#include "sinkdetector/slice_builder.hpp"

int main() {
  using namespace scup;

  const auto g = graph::fig2_graph();
  std::printf("Fig. 2 graph (0-based ids; paper id = ours + 1):\n");
  for (ProcessId i = 0; i < g.node_count(); ++i) {
    std::printf("  PD_%u = %s\n", i, g.pd_of(i).to_string().c_str());
  }

  const auto kosr = graph::check_kosr(g, 3);
  std::printf("\n3-OSR check: %s (sink = %s)\n",
              kosr.ok() ? "holds" : "FAILS", kosr.sink.to_string().c_str());
  std::printf("Byzantine-safe for any single fault: %s\n",
              graph::is_byzantine_safe(g, NodeSet(7, {0}), 1) ? "yes" : "no");

  // ---- Part 1: the violation ----
  std::printf("\n--- Part 1: slices from PD_i and f alone (Theorem 2) ---\n");
  const fbqs::FbqsSystem local = fbqs::fig2_local_system();
  const NodeSet q1(7, {4, 5, 6});     // paper {5,6,7}
  const NodeSet q2(7, {0, 1, 2, 3});  // paper {1,2,3,4}
  std::printf("is_quorum(%s) = %s\n", q1.to_string().c_str(),
              local.is_quorum(q1) ? "true" : "false");
  std::printf("is_quorum(%s) = %s\n", q2.to_string().c_str(),
              local.is_quorum(q2) ? "true" : "false");
  std::printf("|Q1 ∩ Q2| = %zu  ->  quorum intersection VIOLATED (need > f=1)\n",
              q1.intersection_count(q2));
  const auto bad = local.check_intertwined(NodeSet::full(7), 1);
  std::printf("system-wide min quorum intersection: %zu (intertwined: %s)\n",
              bad.min_intersection, bad.ok ? "yes" : "NO");

  // ---- Part 2: the fix ----
  std::printf("\n--- Part 2: slices via the sink detector (Algorithm 2) ---\n");
  fbqs::FbqsSystem fixed(7);
  for (ProcessId i = 0; i < 7; ++i) {
    sinkdetector::GetSinkResult r;
    r.is_sink_member = graph::fig2_sink().contains(i);
    r.sink = graph::fig2_sink();
    fixed.set_slices(i, sinkdetector::build_slices(r, 1));
  }
  const auto good = fixed.check_intertwined(NodeSet::full(7), 1);
  std::printf("system-wide min quorum intersection: %zu (intertwined: %s)\n",
              good.min_intersection, good.ok ? "yes" : "NO");

  std::printf("\nFull simulated run (f=1, process 3 silent):\n");
  core::ScenarioConfig cfg;
  cfg.graph = g;
  cfg.f = 1;
  cfg.faulty = NodeSet(7, {3});
  cfg.net.seed = 17;
  const auto report = core::run_scenario(cfg);
  std::printf("  %s\n", report.summary().c_str());

  const bool ok = !bad.ok && good.ok && report.all_decided &&
                  report.agreement && report.validity;
  std::printf("\n%s\n",
              ok ? "SUCCESS: violation reproduced and fixed by the sink "
                   "detector (Corollary 1 + Corollary 2)."
                 : "FAILURE: unexpected outcome!");
  return ok ? 0 : 1;
}
