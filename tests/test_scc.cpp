#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace scup::graph {
namespace {

TEST(SccTest, SingleNode) {
  Digraph g(1);
  const auto r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count(), 1);
  EXPECT_EQ(r.components[0], NodeSet(1, {0}));
}

TEST(SccTest, Cycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const auto r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count(), 1);
  EXPECT_EQ(r.components[0].count(), 3u);
}

TEST(SccTest, Chain) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count(), 3);
  // Each node its own component.
  for (ProcessId i = 0; i < 3; ++i) {
    EXPECT_EQ(r.components[r.comp_of[i]], NodeSet(3, {i}));
  }
}

TEST(SccTest, TwoCyclesBridged) {
  Digraph g(6);
  // cycle A: 0-1-2, cycle B: 3-4-5, bridge 2->3
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);
  const auto r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count(), 2);
  EXPECT_EQ(r.comp_of[0], r.comp_of[1]);
  EXPECT_EQ(r.comp_of[1], r.comp_of[2]);
  EXPECT_EQ(r.comp_of[3], r.comp_of[4]);
  EXPECT_NE(r.comp_of[0], r.comp_of[3]);
}

TEST(SccTest, RespectsActiveMask) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto r = strongly_connected_components(g, NodeSet(3, {0, 2}));
  // Node 1 inactive: 0 and 2 are separate singletons; 1 unassigned.
  EXPECT_EQ(r.component_count(), 2);
  EXPECT_EQ(r.comp_of[1], -1);
}

TEST(CondensationTest, SinkDetection) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);  // A -> B, so B is the sink
  const auto c = condense(g);
  ASSERT_EQ(c.sink_components.size(), 1u);
  EXPECT_EQ(c.scc.components[c.sink_components[0]], NodeSet(6, {3, 4, 5}));
  EXPECT_EQ(unique_sink_component(g), NodeSet(6, {3, 4, 5}));
}

TEST(CondensationTest, MultipleSinks) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);  // 3 is one sink, 2 is another
  const auto c = condense(g);
  EXPECT_EQ(c.sink_components.size(), 2u);
  // unique_sink_component returns empty when ambiguous.
  EXPECT_TRUE(unique_sink_component(g).empty());
  EXPECT_EQ(c.sink_members(4), NodeSet(4, {2, 3}));
}

TEST(CondensationTest, Fig1SinkIsPaperSink) {
  EXPECT_EQ(unique_sink_component(fig1_graph()), fig1_sink());
}

TEST(CondensationTest, Fig2SinkIsPaperSink) {
  EXPECT_EQ(unique_sink_component(fig2_graph()), fig2_sink());
}

TEST(WeakConnectivityTest, ConnectedAndDisconnected) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(3, 2);
  EXPECT_TRUE(is_weakly_connected(g, NodeSet::full(4)));
  Digraph h(4);
  h.add_edge(0, 1);
  h.add_edge(2, 3);
  EXPECT_FALSE(is_weakly_connected(h, NodeSet::full(4)));
  // Restricting to one side makes it connected again.
  EXPECT_TRUE(is_weakly_connected(h, NodeSet(4, {0, 1})));
  // Empty active set is vacuously connected.
  EXPECT_TRUE(is_weakly_connected(h, NodeSet(4)));
}

// Property: on random graphs, mutual reachability defines the same
// equivalence classes as Tarjan.
class SccPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SccPropertyTest, MatchesMutualReachability) {
  const Digraph g = random_digraph(24, 0.08, GetParam());
  const auto r = strongly_connected_components(g);
  const std::size_t n = g.node_count();
  std::vector<NodeSet> reach;
  reach.reserve(n);
  for (ProcessId i = 0; i < n; ++i) reach.push_back(g.reachable_from(i));
  for (ProcessId i = 0; i < n; ++i) {
    for (ProcessId j = 0; j < n; ++j) {
      const bool mutual = reach[i].contains(j) && reach[j].contains(i);
      EXPECT_EQ(mutual, r.comp_of[i] == r.comp_of[j])
          << "i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace scup::graph
