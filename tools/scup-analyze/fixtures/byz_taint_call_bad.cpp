// Interprocedural byz-taint: handle() passes a message field through a
// helper whose summary says that parameter reaches a map subscript.
#include <map>

struct VoteMsg {
  unsigned view;
  unsigned value;
};

class Tally {
 public:
  bool handle(unsigned from, const VoteMsg& msg);

 private:
  void admit(unsigned view, unsigned voter);
  std::map<unsigned, unsigned> votes_;
};

void Tally::admit(unsigned view, unsigned voter) { votes_[view] = voter; }

bool Tally::handle(unsigned from, const VoteMsg& msg) {
  admit(msg.view, from);
  return true;
}
