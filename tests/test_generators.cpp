// Graph generator properties beyond what test_kosr covers: parameter
// sweeps, failure-placement error paths, and statistical sanity of the
// Erdos-Renyi generator (all inputs to the experiment suite).
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/kosr.hpp"
#include "graph/scc.hpp"

namespace scup::graph {
namespace {

TEST(GeneratorsTest, KosrSweepAllParamsProduceValidGraphs) {
  for (std::size_t sink : {4u, 6u, 9u}) {
    for (std::size_t non_sink : {0u, 2u, 5u}) {
      for (std::size_t k : {2u, 3u}) {
        if (k >= sink) continue;
        KosrGenParams params;
        params.sink_size = sink;
        params.non_sink_size = non_sink;
        params.k = k;
        params.seed = 11;
        const Digraph g = random_kosr_graph(params);
        EXPECT_EQ(g.node_count(), sink + non_sink);
        const KosrReport r = check_kosr(g, k);
        EXPECT_TRUE(r.ok()) << "sink=" << sink << " ns=" << non_sink
                            << " k=" << k << " " << r.to_string();
        EXPECT_EQ(r.sink.count(), sink);
      }
    }
  }
}

TEST(GeneratorsTest, KosrExtraEdgesIncreaseDensity) {
  KosrGenParams sparse;
  sparse.sink_size = 6;
  sparse.non_sink_size = 6;
  sparse.k = 2;
  sparse.extra_edge_prob = 0.0;
  sparse.seed = 5;
  KosrGenParams dense = sparse;
  dense.extra_edge_prob = 0.5;
  EXPECT_LT(random_kosr_graph(sparse).edge_count(),
            random_kosr_graph(dense).edge_count());
  // Density must not destroy the sink property.
  EXPECT_TRUE(check_kosr(random_kosr_graph(dense), 2).ok());
}

TEST(GeneratorsTest, KosrNoExtraEdgesExactCount) {
  KosrGenParams params;
  params.sink_size = 7;
  params.non_sink_size = 3;
  params.k = 2;
  params.extra_edge_prob = 0.0;
  params.seed = 1;
  const Digraph g = random_kosr_graph(params);
  // Circulant: 7*2 edges; non-sink: 3*2 edges into the sink.
  EXPECT_EQ(g.edge_count(), 7u * 2 + 3u * 2);
}

TEST(GeneratorsTest, PickSafeFaultySetRespectsAllowInSink) {
  KosrGenParams params;
  params.sink_size = 5;
  params.non_sink_size = 4;
  params.k = 3;
  params.seed = 3;
  const Digraph g = random_kosr_graph(params);
  const NodeSet sink = unique_sink_component(g);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeSet faulty =
        pick_safe_faulty_set(g, sink, 1, /*allow_in_sink=*/false, rng);
    EXPECT_EQ(faulty.count(), 1u);
    EXPECT_FALSE(faulty.intersects(sink)) << faulty.to_string();
  }
}

TEST(GeneratorsTest, PickSafeFaultySetZeroFaults) {
  const Digraph g = fig2_graph();
  Rng rng(1);
  EXPECT_TRUE(pick_safe_faulty_set(g, fig2_sink(), 0, true, rng).empty());
}

TEST(GeneratorsTest, PickSafeFaultySetErrorsWhenImpossible) {
  // f=2 on Fig. 2 (7 nodes, 3-OSR) has no safe placement: removing two
  // nodes cannot leave a 3-OSR residual with a 5-member correct sink.
  const Digraph g = fig2_graph();
  Rng rng(2);
  EXPECT_THROW(pick_safe_faulty_set(g, fig2_sink(), 2, true, rng),
               std::runtime_error);
  // Not enough candidates outside the sink.
  Digraph tiny(2);
  tiny.add_edge(0, 1);
  Rng rng2(3);
  EXPECT_THROW(
      pick_safe_faulty_set(tiny, NodeSet(2, {0, 1}), 1, false, rng2),
      std::invalid_argument);
}

TEST(GeneratorsTest, RandomDigraphEdgeProbability) {
  const std::size_t n = 60;
  const Digraph g = random_digraph(n, 0.25, 7);
  const double max_edges = static_cast<double>(n * (n - 1));
  const double density = static_cast<double>(g.edge_count()) / max_edges;
  EXPECT_NEAR(density, 0.25, 0.05);
  EXPECT_TRUE(random_digraph(10, 0.0, 1).edge_count() == 0);
  EXPECT_EQ(random_digraph(10, 1.0, 1).edge_count(), 90u);
}

TEST(GeneratorsTest, RandomDigraphDeterministicPerSeed) {
  const Digraph a = random_digraph(20, 0.3, 42);
  const Digraph b = random_digraph(20, 0.3, 42);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (ProcessId u = 0; u < 20; ++u) {
    EXPECT_EQ(a.successor_set(u), b.successor_set(u));
  }
  const Digraph c = random_digraph(20, 0.3, 43);
  bool differs = a.edge_count() != c.edge_count();
  for (ProcessId u = 0; u < 20 && !differs; ++u) {
    differs = !(a.successor_set(u) == c.successor_set(u));
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace scup::graph
