// The hand-built slice systems from the paper's worked examples.
#pragma once

#include "fbqs/quorum.hpp"

namespace scup::fbqs {

/// The Fig. 1 walkthrough (Section III-D): slices for correct processes
/// 1..7 (our 0..6) with process 8 (our 7) faulty:
///   S1={{2,5}} S2={{4}} S3={{5,7}} S4={{5,6},{6,8}}
///   S5={{6,7}} S6={{5,7},{7,8}} S7={{5,6},{6,8}}
/// The faulty process's slices are irrelevant; we give it an arbitrary one
/// so that Algorithm 1 can evaluate sets containing it.
FbqsSystem fig1_system();

/// Theorem 2's counterexample slices on the Fig. 2 graph: every process i
/// takes all subsets of PD_i of size |PD_i| - 1 (locally defined from PD_i
/// and f alone). Yields the disjoint quorums {5,6,7} and {1,2,3,4}
/// (paper ids).
FbqsSystem fig2_local_system();

}  // namespace scup::fbqs
