#include "sim/network_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace scup::sim {

UniformModel::UniformModel(const NetworkConfig& config) : config_(config) {
  if (config_.min_delay < 0 || config_.max_delay < config_.min_delay ||
      config_.pre_gst_max_delay < config_.min_delay) {
    throw std::invalid_argument("UniformModel: inconsistent delay bounds");
  }
  if (config_.pre_gst_drop < 0.0 || config_.pre_gst_drop > 1.0 ||
      config_.pre_gst_duplicate < 0.0 || config_.pre_gst_duplicate > 1.0) {
    throw std::invalid_argument("UniformModel: probability outside [0, 1]");
  }
  for (const LinkOverride& o : config_.link_overrides) {
    if (o.min_delay < 0 || o.max_delay < o.min_delay) {
      throw std::invalid_argument("UniformModel: bad link override bounds");
    }
    overrides_.emplace(std::make_pair(o.from, o.to),
                       std::make_pair(o.min_delay, o.max_delay));
  }
  for (const PartitionWindow& w : config_.partitions) {
    if (w.heal < w.start) {
      throw std::invalid_argument("UniformModel: partition heals before it "
                                  "starts");
    }
  }
  min_latency_ = config_.min_delay;
  for (const LinkOverride& o : config_.link_overrides) {
    min_latency_ = std::min(min_latency_, o.min_delay);
  }
}

std::pair<SimTime, SimTime> UniformModel::bounds(ProcessId from, ProcessId to,
                                                 SimTime now) const {
  if (!overrides_.empty()) {
    const auto it = overrides_.find({from, to});
    if (it != overrides_.end()) return it->second;
  }
  const SimTime hi =
      now < config_.gst ? config_.pre_gst_max_delay : config_.max_delay;
  return {config_.min_delay, hi};
}

SimTime UniformModel::crossing_heal(ProcessId from, ProcessId to,
                                    SimTime now) const {
  SimTime heal = -1;
  for (const PartitionWindow& w : config_.partitions) {
    if (now < w.start || now >= w.heal) continue;
    if (w.side.contains(from) != w.side.contains(to)) {
      heal = std::max(heal, w.heal);
    }
  }
  return heal;
}

NetworkModel::Verdict UniformModel::on_send(ProcessId from, ProcessId to,
                                            SimTime now, Rng& rng) {
  const auto [lo, hi] = bounds(from, to, now);
  const SimTime delay = rng.uniform_range(lo, hi);

  Verdict v;
  v.deliver_at = now + delay;
  // A cut link defers the message to the heal: it waits at the partition
  // edge and then travels with the delay it already sampled.
  SimTime heal = -1;
  if (!config_.partitions.empty()) {
    heal = crossing_heal(from, to, now);
    if (heal >= 0) v.deliver_at = heal + delay;
  }
  if (now < config_.gst && config_.pre_gst_drop > 0.0 &&
      rng.chance(config_.pre_gst_drop)) {
    v.dropped = true;
    return v;
  }
  if (now < config_.gst && config_.pre_gst_duplicate > 0.0 &&
      rng.chance(config_.pre_gst_duplicate)) {
    v.duplicated = true;
    const SimTime dup_delay = rng.uniform_range(lo, hi);
    v.duplicate_at = (heal >= 0 ? heal : now) + dup_delay;
  }
  return v;
}

}  // namespace scup::sim
