// NodeSet: a dynamic bitset over process ids with full set algebra.
//
// This is the workhorse representation for quorums, slices, sink components
// and failure sets. All set operations are O(universe/64) and the type is
// cheap to copy for the universe sizes used in simulation (tens to a few
// thousand processes).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace scup {

class NodeSet {
 public:
  NodeSet() = default;

  /// Creates an empty set over a universe of `universe` process ids.
  explicit NodeSet(std::size_t universe);

  /// Creates a set over `universe` containing exactly `members`.
  NodeSet(std::size_t universe, std::initializer_list<ProcessId> members);
  NodeSet(std::size_t universe, const std::vector<ProcessId>& members);

  /// The full set {0, ..., universe-1}.
  static NodeSet full(std::size_t universe);

  std::size_t universe_size() const { return universe_; }
  bool empty() const;
  std::size_t count() const;

  bool contains(ProcessId id) const;
  void add(ProcessId id);
  void remove(ProcessId id);
  void clear();

  /// Set algebra. Operands must share the same universe size.
  NodeSet& operator|=(const NodeSet& other);
  NodeSet& operator&=(const NodeSet& other);
  NodeSet& operator-=(const NodeSet& other);
  friend NodeSet operator|(NodeSet a, const NodeSet& b) { return a |= b; }
  friend NodeSet operator&(NodeSet a, const NodeSet& b) { return a &= b; }
  friend NodeSet operator-(NodeSet a, const NodeSet& b) { return a -= b; }

  /// Complement within the universe.
  NodeSet complement() const;

  bool subset_of(const NodeSet& other) const;
  bool superset_of(const NodeSet& other) const { return other.subset_of(*this); }
  bool intersects(const NodeSet& other) const;
  std::size_t intersection_count(const NodeSet& other) const;

  bool operator==(const NodeSet& other) const;
  /// Lexicographic order on the bit pattern; useful for canonical sorting.
  std::strong_ordering operator<=>(const NodeSet& other) const;

  std::vector<ProcessId> to_vector() const;
  std::string to_string() const;

  /// Smallest member, or kInvalidProcess when empty.
  ProcessId min_member() const;

  std::size_t hash() const;

  /// Iteration over members in increasing id order.
  class const_iterator {
   public:
    using value_type = ProcessId;
    using difference_type = std::ptrdiff_t;

    const_iterator(const NodeSet* set, ProcessId pos) : set_(set), pos_(pos) {}
    ProcessId operator*() const { return pos_; }
    const_iterator& operator++() {
      pos_ = set_->next_member(pos_ + 1);
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }

   private:
    const NodeSet* set_;
    ProcessId pos_;
  };

  const_iterator begin() const { return {this, next_member(0)}; }
  const_iterator end() const {
    return {this, static_cast<ProcessId>(universe_)};
  }

 private:
  /// First member with id >= from, or universe_ if none.
  ProcessId next_member(ProcessId from) const;
  void check_same_universe(const NodeSet& other) const;

  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

std::ostream& operator<<(std::ostream& os, const NodeSet& set);

}  // namespace scup

template <>
struct std::hash<scup::NodeSet> {
  std::size_t operator()(const scup::NodeSet& s) const { return s.hash(); }
};
