#include "cup/sink_discovery.hpp"

#include "graph/disjoint_paths.hpp"

namespace scup::cup {

SinkDiscovery::SinkDiscovery(sim::ProtocolHost& host, NodeSet pd)
    : host_(host),
      pd_(std::move(pd)),
      f_(host.fault_threshold()),
      cert_graph_(pd_.universe_size()),
      admitted_(pd_.universe_size()),
      candidate_(pd_.universe_size()),
      queried_(pd_.universe_size()),
      responded_(pd_.universe_size()),
      last_published_(pd_.universe_size()) {}

void SinkDiscovery::start() {
  merge_certificate(own_cert());
  update();
}

bool SinkDiscovery::handle(ProcessId from, const sim::Message& msg) {
  if (const auto* discover = dynamic_cast<const DiscoverMsg*>(&msg)) {
    merge_certificate(discover->cert);
    responded_.add(from);
    // Reply with everything we hold (knowledge flows backward along the
    // query; certificates are forwardable because they are signed).
    host_.host_send(from, sim::make_message<CertGossipMsg>(certs_));
    update();
    return true;
  }
  if (const auto* gossip = dynamic_cast<const CertGossipMsg*>(&msg)) {
    merge_certificates(gossip->certs);
    responded_.add(from);
    update();
    return true;
  }
  if (const auto* known = dynamic_cast<const KnownMsg*>(&msg)) {
    if (known->known.universe_size() == host_.universe()) {
      latest_known_[from] = known->known;
      responded_.add(from);
      update();
    }
    return true;
  }
  return false;
}

void SinkDiscovery::merge_certificate(const PdCertificate& cert) {
  if (cert.owner == kInvalidProcess || cert.owner >= host_.universe() ||
      cert.pd.universe_size() != host_.universe()) {
    return;  // malformed; ignore
  }
  auto [it, inserted] = certs_.emplace(cert.owner, cert.pd);
  if (!inserted) {
    // Union-merge: a Byzantine owner issuing conflicting certificates
    // converges to the union at every correct receiver (deterministic).
    const NodeSet merged = it->second | cert.pd;
    if (merged == it->second) return;  // nothing new
    it->second = merged;
  }
  for (ProcessId target : it->second) {
    if (!cert_graph_.has_edge(cert.owner, target)) {
      cert_graph_.add_edge(cert.owner, target);
      graph_dirty_ = true;
    }
  }
}

void SinkDiscovery::merge_certificates(
    const std::map<ProcessId, NodeSet>& certs) {
  for (const auto& [owner, pd] : certs) {
    merge_certificate({owner, pd});
  }
}

void SinkDiscovery::update() {
  if (finished_) return;
  const ProcessId self = host_.self();

  if (graph_dirty_ || candidate_.empty()) {
    graph_dirty_ = false;

    // Plain reachability bounds both the query set and the f-reachability
    // candidates (f-reachable implies reachable).
    const NodeSet reachable = cert_graph_.reachable_from(self);

    // Query everything reachable — their certificates may be needed to
    // certify disjoint paths — even nodes not (yet) admitted.
    for (ProcessId j : reachable) {
      if (j == self || queried_.contains(j)) continue;
      queried_.add(j);
      host_.host_send(j, sim::make_message<DiscoverMsg>(own_cert()));
    }

    // Candidate set: self, own PD (trusted oracle output), and every node
    // f-reachable in the certified graph (Definition 9). Both the graph and
    // the property are monotone, so previously admitted nodes stay.
    for (ProcessId j : reachable) {
      if (admitted_.contains(j) || j == self || pd_.contains(j)) continue;
      if (graph::has_k_vertex_disjoint_paths(cert_graph_, self, j, f_ + 1,
                                             reachable)) {
        admitted_.add(j);
      }
    }
    candidate_ = admitted_ | pd_;
    candidate_.add(self);
  }

  maybe_publish_known();
  check_match();
}

void SinkDiscovery::maybe_publish_known() {
  // Step 2 stability: at most f candidates unresponsive.
  NodeSet pending = candidate_;
  pending.remove(host_.self());
  pending -= responded_;
  if (pending.count() > f_) return;

  if (published_once_ && last_published_ == candidate_) return;
  published_once_ = true;
  last_published_ = candidate_;
  const auto msg = sim::make_message<KnownMsg>(candidate_);
  for (ProcessId j : candidate_) {
    if (j != host_.self()) host_.host_send(j, msg);
  }
}

void SinkDiscovery::check_match() {
  if (finished_ || !published_once_) return;

  // Step 3: count members of our candidate set whose latest KNOWN equals
  // it (ourselves included) and processes that disagree. Outsider echoes
  // are meaningless: the claim is that the candidate set is a
  // self-contained sink, so only its members' views matter.
  std::size_t matching = 1;  // self
  std::size_t different = 0;
  for (const auto& [sender, known] : latest_known_) {
    if (known == candidate_) {
      if (candidate_.contains(sender)) ++matching;
    } else {
      ++different;
    }
  }
  if (different >= f_ + 1) probably_non_sink_ = true;

  // The sink is guaranteed to hold >= 2f+1 correct members (Theorem 1's
  // precondition), so smaller candidates can never be the sink; requiring
  // it also rules out degenerate matches on tiny intermediate candidates.
  if (candidate_.count() >= 2 * f_ + 1 &&
      matching >= candidate_.count() - f_) {
    finished_ = true;
    if (on_complete) on_complete();
  }
}

}  // namespace scup::cup
