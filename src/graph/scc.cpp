#include "graph/scc.hpp"

#include <algorithm>

namespace scup::graph {

SccResult strongly_connected_components(const Digraph& g,
                                        const NodeSet& active) {
  const std::size_t n = g.node_count();
  SccResult result;
  result.comp_of.assign(n, -1);

  // Iterative Tarjan.
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<ProcessId> stack;
  int next_index = 0;

  struct Frame {
    ProcessId v;
    std::size_t child;
  };
  std::vector<Frame> call_stack;

  for (ProcessId root = 0; root < n; ++root) {
    if (!active.contains(root) || index[root] != -1) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const ProcessId v = frame.v;
      const auto& succ = g.successors(v);
      bool descended = false;
      while (frame.child < succ.size()) {
        const ProcessId w = succ[frame.child++];
        if (!active.contains(w)) continue;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;

      if (lowlink[v] == index[v]) {
        NodeSet comp(n);
        const int comp_id = static_cast<int>(result.components.size());
        while (true) {
          const ProcessId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp.add(w);
          result.comp_of[w] = comp_id;
          if (w == v) break;
        }
        result.components.push_back(std::move(comp));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        Frame& parent = call_stack.back();
        lowlink[parent.v] = std::min(lowlink[parent.v], lowlink[v]);
      }
    }
  }
  return result;
}

SccResult strongly_connected_components(const Digraph& g) {
  return strongly_connected_components(g, NodeSet::full(g.node_count()));
}

Condensation condense(const Digraph& g, const NodeSet& active) {
  Condensation c;
  c.scc = strongly_connected_components(g, active);
  const int k = c.scc.component_count();
  c.dag_successors.assign(k, {});
  std::vector<bool> has_out(k, false);

  for (ProcessId u = 0; u < g.node_count(); ++u) {
    if (!active.contains(u)) continue;
    const int cu = c.scc.comp_of[u];
    for (ProcessId v : g.successors(u)) {
      if (!active.contains(v)) continue;
      const int cv = c.scc.comp_of[v];
      if (cu == cv) continue;
      auto& succ = c.dag_successors[cu];
      if (std::find(succ.begin(), succ.end(), cv) == succ.end()) {
        succ.push_back(cv);
      }
      has_out[cu] = true;
    }
  }
  for (int i = 0; i < k; ++i) {
    if (!has_out[i]) c.sink_components.push_back(i);
  }
  return c;
}

Condensation condense(const Digraph& g) {
  return condense(g, NodeSet::full(g.node_count()));
}

NodeSet Condensation::sink_members(std::size_t universe) const {
  NodeSet s(universe);
  for (int comp : sink_components) s |= scc.components[comp];
  return s;
}

bool is_weakly_connected(const Digraph& g, const NodeSet& active) {
  const ProcessId start = active.min_member();
  if (start == kInvalidProcess) return true;  // vacuously connected
  const Digraph u = g.undirected_closure();
  const NodeSet reach = u.reachable_from(start, active);
  return reach == active;
}

NodeSet unique_sink_component(const Digraph& g, const NodeSet& active) {
  const Condensation c = condense(g, active);
  if (c.sink_components.size() != 1) return NodeSet(g.node_count());
  return c.scc.components[c.sink_components[0]];
}

NodeSet unique_sink_component(const Digraph& g) {
  return unique_sink_component(g, NodeSet::full(g.node_count()));
}

}  // namespace scup::graph
