// E11 — the discovery→consensus pipeline at scale.
//
// The SINK algorithm's admission step is the CPU hot spot of bootstrapping:
// every certificate batch used to re-run the Menger max-flow check for every
// reachable node. This bench sweeps k-OSR graphs up to 512 nodes (sink
// fraction 1/2, the E5 shape) with discovery-only processes and reports,
// alongside wall time:
//  - nodes_per_sec        processed system size per second of wall time,
//  - flow_evals           disjoint-path evaluations the incremental
//                         algorithm actually ran,
//  - flow_evals_baseline  evaluations the recompute-everything baseline
//                         would have run (counted by the same code path),
//  - recheck_savings      their ratio (the E11 acceptance bar is >= 10x),
//  - messages/kilobytes   discovery traffic (~quadratic, DESIGN.md E5),
// plus memoized/degree-pruned skip counts. The FullStack rows run the same
// large_scale_scenario family end to end (BFT-CUP: discovery -> PBFT ->
// decide) to show the pipeline, not just the oracle, at large n.
#include "bench_common.hpp"

#include "core/adversaries.hpp"
#include "core/scenario_matrix.hpp"
#include "cup/sink_discovery.hpp"
#include "sim/composed.hpp"
#include "sim/simulation.hpp"

namespace scup {
namespace {

class DiscoveryOnlyNode : public sim::ComposedNode {
 public:
  DiscoveryOnlyNode(NodeSet pd, std::size_t f)
      : ComposedNode(f), discovery_(*this, std::move(pd)) {}
  void start() override { discovery_.start(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    discovery_.handle(from, *msg);
  }
  cup::SinkDiscovery discovery_;
};

struct ScaleRun {
  cup::DiscoveryStats stats;  // summed over correct processes
  std::size_t messages = 0;
  std::size_t bytes = 0;
  SimTime last_tick = 0;
  bool sink_members_finished = true;
  bool sink_exact = true;
};

ScaleRun run_discovery(std::size_t n, std::size_t f, std::uint64_t seed) {
  core::LargeScaleParams params;
  params.n = n;
  params.f = f;
  params.seed = seed;
  const core::ScenarioConfig cfg = core::large_scale_scenario(params);
  const NodeSet sink = graph::unique_sink_component(cfg.graph);
  const NodeSet correct = cfg.faulty.complement();

  sim::Simulation sim(n, cfg.net);
  std::vector<DiscoveryOnlyNode*> nodes(n, nullptr);
  for (ProcessId i = 0; i < n; ++i) {
    if (cfg.faulty.contains(i)) {
      sim.emplace_process<core::SilentNode>(i);
    } else {
      nodes[i] = &sim.emplace_process<DiscoveryOnlyNode>(i, cfg.graph.pd_of(i),
                                                         f);
    }
  }
  sim.start();
  // Only sink members can complete the direct match (Lemma 6); non-sink
  // processes rely on Algorithm 3's indirect path, out of scope here.
  const NodeSet correct_sink = sink & correct;
  sim.run_until(
      [&] {
        for (ProcessId i : correct_sink) {
          if (!nodes[i]->discovery_.finished()) return false;
        }
        return true;
      },
      cfg.deadline);

  ScaleRun r;
  r.messages = sim.metrics().messages_sent;
  r.bytes = sim.metrics().bytes_sent;
  r.last_tick = sim.now();
  for (ProcessId i : correct) {
    const auto& d = nodes[i]->discovery_;
    r.stats.flow_evals += d.stats().flow_evals;
    r.stats.flow_evals_baseline += d.stats().flow_evals_baseline;
    r.stats.memoized_skips += d.stats().memoized_skips;
    r.stats.degree_prunes += d.stats().degree_prunes;
    r.stats.cut_skips += d.stats().cut_skips;
    r.stats.domtree_passes += d.stats().domtree_passes;
    r.stats.updates += d.stats().updates;
    r.stats.dirty_updates += d.stats().dirty_updates;
  }
  for (ProcessId i : correct_sink) {
    if (!nodes[i]->discovery_.finished()) {
      r.sink_members_finished = false;
    } else if (!(nodes[i]->discovery_.sink() == sink)) {
      r.sink_exact = false;
    }
  }
  return r;
}

void BM_ScaleDiscovery_Sweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = static_cast<std::size_t>(state.range(1));
  ScaleRun r;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    r = run_discovery(n, f, seed++);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["f"] = static_cast<double>(f);
  state.counters["nodes_per_sec"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["flow_evals"] = static_cast<double>(r.stats.flow_evals);
  state.counters["domtree_passes"] =
      static_cast<double>(r.stats.domtree_passes);
  state.counters["flow_evals_baseline"] =
      static_cast<double>(r.stats.flow_evals_baseline);
  // Admission work actually paid: max-flow runs plus dominator passes
  // (each pass is one linear-time batch evaluation covering every pending
  // node). The baseline is one max-flow run per pending node per dirty
  // update — what the pre-incremental algorithm executed.
  const double admission_evals =
      static_cast<double>(r.stats.flow_evals + r.stats.domtree_passes);
  state.counters["recheck_savings"] =
      admission_evals == 0.0
          ? 0.0
          : static_cast<double>(r.stats.flow_evals_baseline) /
                admission_evals;
  state.counters["memoized_skips"] =
      static_cast<double>(r.stats.memoized_skips);
  state.counters["degree_prunes"] = static_cast<double>(r.stats.degree_prunes);
  state.counters["cut_skips"] = static_cast<double>(r.stats.cut_skips);
  state.counters["messages"] = static_cast<double>(r.messages);
  state.counters["kilobytes"] = static_cast<double>(r.bytes) / 1024.0;
  state.counters["sim_ticks"] = static_cast<double>(r.last_tick);
  state.counters["all_sink_finished"] = r.sink_members_finished ? 1 : 0;
  state.counters["sink_exact"] = r.sink_exact ? 1 : 0;
}
BENCHMARK(BM_ScaleDiscovery_Sweep)
    ->ArgsProduct({{64, 128, 256, 512}, {1}})
    ->Args({256, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ScaleDiscovery_FullStack(benchmark::State& state) {
  // The end-to-end rows run as a ScenarioMatrix: one variant (the
  // large_scale_scenario family at this n), a two-seed sweep, `threads`
  // pool workers. Counters aggregate over the matrix and are
  // thread-count-invariant (cells are bit-deterministic).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  core::ScenarioMatrix matrix;
  matrix
      .add_variant("bftcup/large_scale",
                   [n](std::uint64_t seed) {
                     core::LargeScaleParams params;
                     params.n = n;
                     params.f = 1;
                     params.protocol = core::ProtocolKind::kBftCup;
                     params.seed = seed;
                     return core::large_scale_scenario(params);
                   })
      .seeds({3, 4});
  std::vector<core::CellResult> results;
  for (auto _ : state) {
    results = matrix.run(threads);
    benchmark::DoNotOptimize(results);
  }
  const core::MatrixSummary s = core::ScenarioMatrix::summarize(results);
  state.counters["n"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cells"] = static_cast<double>(s.cells);
  state.counters["nodes_per_sec"] = benchmark::Counter(
      static_cast<double>(n * s.cells),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["termination"] = s.decided_cells == s.cells ? 1 : 0;
  state.counters["agreement"] = s.agreement_cells == s.cells ? 1 : 0;
  state.counters["validity"] = s.validity_cells == s.cells ? 1 : 0;
  state.counters["sd_exact"] = s.sd_exact_cells == s.cells ? 1 : 0;
  state.counters["messages"] = static_cast<double>(s.messages);
  state.counters["kilobytes"] = static_cast<double>(s.bytes) / 1024.0;
  state.counters["p99_decide"] = static_cast<double>(s.p99_decision);
}
BENCHMARK(BM_ScaleDiscovery_FullStack)
    ->ArgNames({"n", "threads"})
    ->Args({64, 1})
    ->Args({64, 8})
    ->Args({96, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E11");
