// ComposedNode: a simulated process that hosts protocol components.
//
// Protocol layers (sink detector, SCP, PBFT) are written against
// ProtocolHost; a ComposedNode is a sim::Process that implements the host
// interface by delegating to the protected Process actions, so one simulated
// participant can run several layers at once.
#pragma once

#include "sim/host.hpp"
#include "sim/process.hpp"

namespace scup::sim {

class ComposedNode : public Process, public ProtocolHost {
 public:
  explicit ComposedNode(std::size_t fault_threshold)
      : fault_threshold_(fault_threshold) {}

  // ProtocolHost:
  ProcessId self() const final { return id(); }
  std::size_t universe() const final { return universe_size(); }
  std::size_t fault_threshold() const final { return fault_threshold_; }
  void host_send(ProcessId to, MessagePtr msg) final {
    send(to, std::move(msg));
  }
  void host_set_timer(int timer_id, SimTime delay) final {
    set_timer(timer_id, delay);
  }
  SimTime host_now() const final { return now(); }
  std::uint64_t host_sign(std::uint64_t statement) const final {
    return sign(statement);
  }
  bool host_verify(ProcessId signer, std::uint64_t statement,
                   std::uint64_t token) const final {
    return verify(signer, statement, token);
  }
  void host_counter_add(ProtoCounter counter, std::uint64_t delta) final {
    counter_add(counter, delta);
  }

 private:
  std::size_t fault_threshold_;
};

}  // namespace scup::sim
