#include "common/node_set.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"

namespace scup {
namespace {

TEST(NodeSetTest, EmptyByDefault) {
  NodeSet s(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.universe_size(), 10u);
  EXPECT_EQ(s.min_member(), kInvalidProcess);
}

TEST(NodeSetTest, AddRemoveContains) {
  NodeSet s(100);
  s.add(0);
  s.add(63);
  s.add(64);
  s.add(99);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(99));
  EXPECT_FALSE(s.contains(50));
  s.remove(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.count(), 3u);
  // Removing a non-member or out-of-range id is a no-op.
  s.remove(63);
  s.remove(1000);
  EXPECT_EQ(s.count(), 3u);
}

TEST(NodeSetTest, AddOutOfRangeThrows) {
  NodeSet s(8);
  EXPECT_THROW(s.add(8), std::out_of_range);
  EXPECT_THROW(s.add(1000), std::out_of_range);
}

TEST(NodeSetTest, InitializerListAndVectorConstruction) {
  NodeSet a(8, {1, 3, 5});
  NodeSet b(8, std::vector<ProcessId>{1, 3, 5});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(NodeSetTest, FullSet) {
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 130u}) {
    NodeSet s = NodeSet::full(n);
    EXPECT_EQ(s.count(), n) << "n=" << n;
    if (n > 0) {
      EXPECT_TRUE(s.contains(0));
      EXPECT_TRUE(s.contains(static_cast<ProcessId>(n - 1)));
    }
  }
}

TEST(NodeSetTest, SetAlgebra) {
  NodeSet a(10, {1, 2, 3});
  NodeSet b(10, {3, 4, 5});
  EXPECT_EQ((a | b), NodeSet(10, {1, 2, 3, 4, 5}));
  EXPECT_EQ((a & b), NodeSet(10, {3}));
  EXPECT_EQ((a - b), NodeSet(10, {1, 2}));
  EXPECT_EQ((b - a), NodeSet(10, {4, 5}));
}

TEST(NodeSetTest, MismatchedUniverseThrows) {
  NodeSet a(10);
  NodeSet b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW((void)a.subset_of(b), std::invalid_argument);
}

TEST(NodeSetTest, Complement) {
  NodeSet a(5, {0, 2, 4});
  EXPECT_EQ(a.complement(), NodeSet(5, {1, 3}));
  EXPECT_EQ(a.complement().complement(), a);
}

TEST(NodeSetTest, SubsetAndIntersection) {
  NodeSet a(10, {1, 2});
  NodeSet b(10, {1, 2, 3});
  NodeSet c(10, {4, 5});
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(b.superset_of(a));
  EXPECT_TRUE(a.subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_EQ(a.intersection_count(b), 2u);
  EXPECT_EQ(b.intersection_count(c), 0u);
}

TEST(NodeSetTest, IterationInOrder) {
  NodeSet s(200, {0, 7, 63, 64, 128, 199});
  std::vector<ProcessId> got;
  for (ProcessId p : s) got.push_back(p);
  EXPECT_EQ(got, (std::vector<ProcessId>{0, 7, 63, 64, 128, 199}));
  EXPECT_EQ(s.to_vector(), got);
}

TEST(NodeSetTest, MinMember) {
  NodeSet s(100);
  s.add(77);
  EXPECT_EQ(s.min_member(), 77u);
  s.add(12);
  EXPECT_EQ(s.min_member(), 12u);
}

TEST(NodeSetTest, OrderingAndHash) {
  NodeSet a(10, {1});
  NodeSet b(10, {2});
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  std::unordered_set<NodeSet> set;
  set.insert(a);
  set.insert(b);
  set.insert(a);
  EXPECT_EQ(set.size(), 2u);
}

TEST(NodeSetTest, ToString) {
  NodeSet s(10, {1, 5});
  EXPECT_EQ(s.to_string(), "{1, 5}");
  EXPECT_EQ(NodeSet(4).to_string(), "{}");
}

// Property test: random sets obey basic identities.
class NodeSetPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NodeSetPropertyTest, AlgebraIdentities) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.uniform(300);
  NodeSet a(n), b(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (rng.chance(0.4)) a.add(p);
    if (rng.chance(0.4)) b.add(p);
  }
  // De Morgan.
  EXPECT_EQ((a | b).complement(), (a.complement() & b.complement()));
  EXPECT_EQ((a & b).complement(), (a.complement() | b.complement()));
  // Difference via complement.
  EXPECT_EQ(a - b, a & b.complement());
  // Inclusion-exclusion on counts.
  EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
  // Intersection count consistency.
  EXPECT_EQ(a.intersection_count(b), (a & b).count());
  // Subset characterization.
  EXPECT_EQ(a.subset_of(b), (a - b).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeSetPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---- Word-boundary and degenerate-universe edge cases ----

TEST(NodeSetEdgeCaseTest, FullWithMultipleOf64Universe) {
  // universe % 64 == 0 means "no partial last word": the clear-tail-bits
  // step must be a no-op, not a 1ULL << 64 shift.
  for (const std::size_t universe : {64u, 128u, 192u}) {
    const NodeSet s = NodeSet::full(universe);
    EXPECT_EQ(s.count(), universe) << universe;
    EXPECT_TRUE(s.contains(0)) << universe;
    EXPECT_TRUE(s.contains(static_cast<ProcessId>(universe - 1))) << universe;
    EXPECT_FALSE(s.contains(static_cast<ProcessId>(universe))) << universe;
    EXPECT_TRUE(s.complement().empty()) << universe;
  }
}

TEST(NodeSetEdgeCaseTest, NextMemberAcrossWordBoundaries) {
  NodeSet s(200, {0, 63, 64, 127, 128, 191});
  // Iteration enumerates exactly the members, in order, across all three
  // word boundaries.
  const std::vector<ProcessId> expected{0, 63, 64, 127, 128, 191};
  EXPECT_EQ(s.to_vector(), expected);
  // min_member after removing the first member of a word must find the
  // next word's first member.
  s.remove(0);
  EXPECT_EQ(s.min_member(), 63u);
  s.remove(63);
  EXPECT_EQ(s.min_member(), 64u);
  s.remove(64);
  EXPECT_EQ(s.min_member(), 127u);
}

TEST(NodeSetEdgeCaseTest, IterationOverExactlyWordSizedUniverse) {
  NodeSet s(64, {63});
  std::size_t visits = 0;
  for (ProcessId p : s) {
    EXPECT_EQ(p, 63u);
    ++visits;
  }
  EXPECT_EQ(visits, 1u);
}

TEST(NodeSetEdgeCaseTest, UniverseZero) {
  NodeSet s(0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min_member(), kInvalidProcess);
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.begin() == s.end());
  EXPECT_TRUE(s.to_vector().empty());
  EXPECT_EQ(NodeSet::full(0).count(), 0u);
  EXPECT_TRUE(s.complement().empty());
  EXPECT_EQ(s, NodeSet::full(0));
  EXPECT_THROW(s.add(0), std::out_of_range);
}

TEST(NodeSetEdgeCaseTest, ComplementNeverSetsBitsPastTheUniverse) {
  for (const std::size_t universe : {1u, 63u, 64u, 65u, 100u, 128u}) {
    const NodeSet none(universe);
    const NodeSet all = none.complement();
    EXPECT_EQ(all.count(), universe) << universe;
    EXPECT_EQ(all, NodeSet::full(universe)) << universe;
    // Every member enumerated by iteration must be a legal id; a stray
    // tail bit would surface here as id >= universe.
    for (ProcessId p : all) {
      EXPECT_LT(p, universe);
    }
    // Complement of complement round-trips (tail bits would survive the
    // subtraction and break this).
    EXPECT_EQ(all.complement(), none) << universe;
    EXPECT_EQ(all.complement().count(), 0u) << universe;
  }
}

}  // namespace
}  // namespace scup
