#include "sinkdetector/sink_detector.hpp"

#include <stdexcept>

namespace scup::sinkdetector {

using cup::GetSinkMsg;
using cup::SinkValueMsg;

SinkDetector::SinkDetector(sim::ProtocolHost& host, NodeSet pd,
                           cup::DiscoveryConfig discovery_config)
    : host_(host),
      pd_(std::move(pd)),
      f_(host.fault_threshold()),
      discovery_(host, pd_, discovery_config),
      asked_(pd_.universe_size()),
      forwarded_for_(pd_.universe_size()) {
  discovery_.on_complete = [this] {
    // Direct path (Algorithm 3 lines 7-9): SINK returned ⟨true, V_sink⟩.
    if (!sink_) complete(discovery_.sink());
  };
}

void SinkDetector::start() {
  // Line 5: reachable_bcast(GET_SINK, i) — flood along knowledge edges.
  forwarded_for_.add(host_.self());
  const auto msg = sim::make_message<GetSinkMsg>(host_.self());
  for (ProcessId j : pd_) host_.host_send(j, msg);
  // Line 7: run SINK.
  discovery_.start();
}

bool SinkDetector::on_timer(int timer_id) {
  if (!discovery_.on_timer(timer_id)) return false;
  // Piggyback on the requery tick: without a result yet, our GET_SINK (or
  // a sink member's answer) may have been lost — re-flood it. Receivers
  // re-add the origin to `asked` and, once they hold the sink, re-answer.
  if (!result_) {
    const auto msg = sim::make_message<cup::GetSinkMsg>(host_.self());
    for (ProcessId j : pd_) host_.host_send(j, msg);
  }
  return true;
}

bool SinkDetector::handle(ProcessId from, const sim::Message& msg) {
  if (discovery_.handle(from, msg)) return true;

  if (const auto* get_sink = dynamic_cast<const GetSinkMsg*>(&msg)) {
    const ProcessId origin = get_sink->origin;
    if (origin >= host_.universe()) return true;  // malformed
    // Record the requester (upon reachable_deliver, line 17).
    if (origin != host_.self()) asked_.add(origin);
    // Flood forward once per origin (reachable-reliable broadcast).
    if (!forwarded_for_.contains(origin)) {
      forwarded_for_.add(origin);
      const auto fwd = sim::make_message<GetSinkMsg>(origin);
      for (ProcessId j : pd_) {
        if (j != from) host_.host_send(j, fwd);
      }
    }
    answer_pending_requests();
    return true;
  }

  if (const auto* value = dynamic_cast<const SinkValueMsg*>(&msg)) {
    if (value->sink.universe_size() != host_.universe()) return true;
    // Line 22: values ← values ∪ {V}, keyed by sender so a Byzantine
    // process cannot vote twice for the same value.
    auto [it, _] =
        value_senders_.emplace(value->sink, NodeSet(host_.universe()));
    it->second.add(from);
    // Line 15-16: adopt a value repeated more than f times.
    if (!sink_ && it->second.count() > f_) complete(it->first);
    return true;
  }
  return false;
}

void SinkDetector::complete(NodeSet sink) {
  sink_ = std::move(sink);
  GetSinkResult r;
  r.is_sink_member = sink_->contains(host_.self());
  r.sink = *sink_;
  result_ = r;
  answer_pending_requests();
  if (on_result) on_result(*result_);
}

void SinkDetector::answer_pending_requests() {
  // Lines 18-21: send ⟨SINK, sink⟩ to every process that asked. Only sink
  // members answer — the oracle's guarantee for non-sink members rests on
  // the >f matching rule, and answers from non-sink members (which learned
  // the sink indirectly themselves) would be redundant.
  if (!sink_ || !sink_->contains(host_.self())) return;
  const auto msg = sim::make_message<SinkValueMsg>(*sink_);
  for (ProcessId j : asked_) {
    host_.host_send(j, msg);
    asked_.remove(j);
  }
}

const GetSinkResult& SinkDetector::result() const {
  if (!result_) throw std::logic_error("SinkDetector::result: not ready");
  return *result_;
}

}  // namespace scup::sinkdetector
