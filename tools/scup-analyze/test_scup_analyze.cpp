// Fixture suite for scup-analyze: the parser must recover the model
// (classes, fields, functions, params, statements, call sites), each rule
// family must fire on its known-bad fixture and stay quiet on the
// guarded/annotated variant, annotations must be consumed or flagged
// stale, and the CLI must keep its exit-code contract. The self-audit
// test runs the real gate over this checkout.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace fs = std::filesystem;
using namespace scup::analyze;

namespace {

std::string read_fixture(const std::string& name) {
  const fs::path path = fs::path(SCUP_ANALYZE_FIXTURES) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Parses a fixture as if it lived at `rel_path` and runs the full
/// analysis over that one-TU project.
std::vector<Finding> analyze_fixture(const std::string& name,
                                     const std::string& rel_path) {
  std::vector<TU> tus;
  tus.push_back(parse_tu(rel_path, read_fixture(name)));
  return analyze(tus);
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

bool has_finding(const std::vector<Finding>& findings, std::string_view rule,
                 std::size_t line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line) return true;
  }
  return false;
}

std::string render(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << scup::lint::format_finding(f) << "\n";
  }
  return os.str();
}

const FunctionSym* find_fn(const TU& tu, const std::string& name) {
  for (const FunctionSym& f : tu.functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------- parser

TEST(Parser, RecoversClassesFieldsAndMethods) {
  const TU tu = parse_tu("src/x.cpp", read_fixture("byz_taint_call_bad.cpp"));
  ASSERT_EQ(tu.functions.size(), 2u);
  const FunctionSym* admit = find_fn(tu, "admit");
  ASSERT_NE(admit, nullptr);
  EXPECT_EQ(admit->cls, "Tally");
  ASSERT_EQ(admit->params.size(), 2u);
  EXPECT_EQ(admit->params[0], "view");
  EXPECT_EQ(admit->params[1], "voter");
  // Fields: VoteMsg::view/value and Tally::votes_; method declarations
  // must not be recovered as fields.
  bool votes = false;
  for (const FieldSym& d : tu.fields) {
    EXPECT_NE(d.name, "handle");
    EXPECT_NE(d.name, "admit");
    if (d.name == "votes_") {
      votes = true;
      EXPECT_EQ(d.cls, "Tally");
    }
  }
  EXPECT_TRUE(votes);
}

TEST(Parser, BraceAndEqInitFieldsAreRecovered) {
  const TU tu = parse_tu(
      "src/x.cpp",
      "class C {\n"
      "  long plain_;\n"
      "  long eq_init_ = 0;\n"
      "  long brace_init_{0};\n"
      "  virtual void pure() = 0;\n"
      "  void inline_method() {}\n"
      "};\n");
  std::vector<std::string> names;
  for (const FieldSym& d : tu.fields) names.push_back(d.name);
  EXPECT_EQ(names, (std::vector<std::string>{"plain_", "eq_init_",
                                             "brace_init_"}));
}

TEST(Parser, RecoversCallSitesWithArguments) {
  const TU tu = parse_tu("src/x.cpp", read_fixture("byz_taint_call_bad.cpp"));
  const FunctionSym* handle = find_fn(tu, "handle");
  ASSERT_NE(handle, nullptr);
  ASSERT_EQ(handle->calls.size(), 1u);
  const CallSite& c = handle->calls[0];
  EXPECT_EQ(c.name, "admit");
  ASSERT_EQ(c.args.size(), 2u);
  EXPECT_EQ(c.args[0], (std::vector<std::string>{"msg", "view"}));
  EXPECT_EQ(c.args[1], (std::vector<std::string>{"from"}));
}

TEST(Parser, ConditionHeadersAreOwnStatements) {
  const TU tu = parse_tu("src/x.cpp",
                         "void f(int n) {\n"
                         "  for (int i = 0; i < n; ++i) {\n"
                         "    g(i);\n"
                         "  }\n"
                         "  for (const auto& x : xs) {\n"
                         "    g(x);\n"
                         "  }\n"
                         "}\n");
  const FunctionSym* f = find_fn(tu, "f");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->stmts.size(), 4u);
  EXPECT_TRUE(f->stmts[0].is_loop);
  EXPECT_FALSE(f->stmts[0].is_range_for);
  EXPECT_TRUE(f->stmts[2].is_loop);
  EXPECT_TRUE(f->stmts[2].is_range_for);
}

TEST(Parser, LexicalRegionsAreCollected) {
  const TU tu = parse_tu("src/sim/x.cpp",
                         "// shard-barrier begin\n"
                         "int a;\n"
                         "// shard-barrier end\n"
                         "// drawplan begin\n"
                         "int b;\n"
                         "// drawplan end\n");
  ASSERT_EQ(tu.shard_barrier_regions.size(), 1u);
  EXPECT_EQ(tu.shard_barrier_regions[0].begin, 1u);
  EXPECT_EQ(tu.shard_barrier_regions[0].end, 3u);
  ASSERT_EQ(tu.drawplan_regions.size(), 1u);
}

// ---------------------------------------------------------------- byz-taint

TEST(ByzTaint, FiresThroughHelperSummary) {
  const auto findings =
      analyze_fixture("byz_taint_call_bad.cpp", "src/scp/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleByzTaint), 1u) << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleByzTaint, 22)) << render(findings);
}

TEST(ByzTaint, QuietUnderGuardAndSanitize) {
  const auto findings =
      analyze_fixture("byz_taint_guard_ok.cpp", "src/scp/fix.cpp");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(ByzTaint, DynamicCastDoesNotLaunder) {
  const auto findings =
      analyze_fixture("byz_taint_cast_bad.cpp", "src/scp/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleByzTaint), 1u) << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleByzTaint, 23)) << render(findings);
}

TEST(ByzTaint, CrossTuSummaryPropagates) {
  // The helper lives in another TU; the summary must still flow.
  std::vector<TU> tus;
  tus.push_back(parse_tu("src/a.cpp",
                         "void grow(std::size_t n) {\n"
                         "  table_.resize(n);\n"
                         "}\n"
                         "std::vector<int> table_;\n"));
  tus.push_back(parse_tu("src/b.cpp",
                         "void handle(std::size_t len) {\n"
                         "  grow(len);\n"
                         "}\n"));
  const auto findings = analyze(tus);
  EXPECT_EQ(count_rule(findings, kRuleByzTaint), 1u) << render(findings);
}

TEST(ByzTaint, ModuloSubscriptIsAStructuralBound) {
  // `a[x % n]` cannot index out of range whatever x is — the modulo is a
  // guard, so the tainted subscript must stay quiet while the unguarded
  // one still fires. (Regression test for the pbft view-rotation audit.)
  std::vector<TU> tus;
  tus.push_back(parse_tu("src/p.cpp",
                         "struct R {\n"
                         "  void handle(std::size_t view) {\n"
                         "    leaders_[view % leaders_.size()] += 1;\n"
                         "    leaders_[view] += 1;\n"
                         "  }\n"
                         "  std::vector<int> leaders_;\n"
                         "};\n"));
  const auto findings = analyze(tus);
  EXPECT_EQ(count_rule(findings, kRuleByzTaint), 1u) << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleByzTaint, 4)) << render(findings);
}

// ------------------------------------------------------------- ownership

TEST(Ownership, EngineStateInShardClosureFires) {
  const auto findings = analyze_fixture("owner_bad.cpp", "src/sim/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleOwnEngine), 1u) << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleOwnEngine, 24)) << render(findings);
  EXPECT_EQ(count_rule(findings, kRuleOwnShard), 1u) << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleOwnShard, 27)) << render(findings);
  EXPECT_EQ(count_rule(findings, kRuleOwnLexical), 1u) << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleOwnLexical, 26)) << render(findings);
}

TEST(Ownership, AuditedAndBarrierAccessesAreQuiet) {
  const auto findings = analyze_fixture("owner_ok.cpp", "src/sim/fix.cpp");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(Ownership, ScopedToSimTree) {
  const auto findings = analyze_fixture("owner_bad.cpp", "src/scp/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleOwnEngine), 0u) << render(findings);
  EXPECT_EQ(count_rule(findings, kRuleOwnShard), 0u) << render(findings);
  EXPECT_EQ(count_rule(findings, kRuleOwnLexical), 0u) << render(findings);
}

// ----------------------------------------------------------------- locks

TEST(Locks, UnguardedTouchAndUnlockedCallerFire) {
  const auto findings = analyze_fixture("lock_bad.cpp", "src/sim/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleLockUnguarded), 1u) << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleLockUnguarded, 26))
      << render(findings);
  EXPECT_EQ(count_rule(findings, kRuleLockCaller), 1u) << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleLockCaller, 29)) << render(findings);
}

TEST(Locks, AccessorPatternWithLocalStaticIsQuiet) {
  const auto findings = analyze_fixture("lock_ok.cpp", "src/sim/fix.cpp");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

// ------------------------------------------------------------------ meta

TEST(Meta, StaleAndMalformedAnnotationsAreFlagged) {
  const auto findings = analyze_fixture("stale_bad.cpp", "src/scp/fix.cpp");
  EXPECT_EQ(count_rule(findings, kRuleStaleAnnotation), 1u)
      << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleStaleAnnotation, 17))
      << render(findings);
  EXPECT_EQ(count_rule(findings, kRuleUnknownAnnotation), 2u)
      << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleUnknownAnnotation, 22))
      << render(findings);
  EXPECT_TRUE(has_finding(findings, kRuleUnknownAnnotation, 23))
      << render(findings);
}

TEST(Meta, CleanFileStaysClean) {
  const auto findings = analyze_fixture("clean.cpp", "src/scp/fix.cpp");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(Meta, DumpShowsSummariesAndCallGraph) {
  std::vector<TU> tus;
  tus.push_back(
      parse_tu("src/scp/fix.cpp", read_fixture("byz_taint_call_bad.cpp")));
  analyze(tus);
  const std::string report = dump(tus);
  EXPECT_NE(report.find("fn Tally::admit"), std::string::npos) << report;
  EXPECT_NE(report.find("sink-params{view}"), std::string::npos) << report;
  EXPECT_NE(report.find("calls: admit"), std::string::npos) << report;
}

// ------------------------------------------------- self-audit + exit codes

#if defined(__unix__) || defined(__APPLE__)

namespace {

int run_binary(const std::string& args) {
  const std::string cmd =
      std::string(SCUP_ANALYZE_BINARY) + " " + args + " > /dev/null 2>&1";
  const int raw = std::system(cmd.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

void write_file(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << content;
}

}  // namespace

/// The real tree must audit clean: every finding fixed or annotated, no
/// stale annotations. This is the same invocation as the CI gate.
TEST(SelfAudit, RealTreeIsClean) {
  EXPECT_EQ(run_binary(std::string(SCUP_ANALYZE_REPO_ROOT)), 0);
}

TEST(ExitCode, CleanTreeReturnsZero) {
  const fs::path root = fs::temp_directory_path() / "scup_analyze_exit0";
  fs::remove_all(root);
  write_file(root / "src" / "ok.cpp", "int main() { return 0; }\n");
  EXPECT_EQ(run_binary(root.string()), 0);
  fs::remove_all(root);
}

TEST(ExitCode, FindingsReturnOne) {
  const fs::path root = fs::temp_directory_path() / "scup_analyze_exit1";
  fs::remove_all(root);
  write_file(root / "src" / "bad.cpp",
             "void handle(unsigned n) { table_[n] = 1; }\n"
             "std::map<unsigned, int> table_;\n");
  EXPECT_EQ(run_binary(root.string()), 1);
  fs::remove_all(root);
}

TEST(ExitCode, UsageErrorsReturnTwo) {
  EXPECT_EQ(run_binary(""), 2);                          // no root
  EXPECT_EQ(run_binary("/nonexistent-scup-root"), 2);    // bad root
  EXPECT_EQ(run_binary(std::string(SCUP_ANALYZE_REPO_ROOT) +
                       " --budget-ms bogus"),
            2);  // malformed flag value
}

#endif  // unix

