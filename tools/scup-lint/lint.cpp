#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace scup::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True iff `hay[pos..pos+needle)` equals `needle` and neither neighbour is
/// an identifier character (word-boundary match).
bool word_at(const std::string& hay, std::size_t pos, std::string_view needle) {
  if (pos + needle.size() > hay.size()) return false;
  if (hay.compare(pos, needle.size(), needle) != 0) return false;
  if (pos > 0 && ident_char(hay[pos - 1])) return false;
  const std::size_t end = pos + needle.size();
  if (end < hay.size() && ident_char(hay[end])) return false;
  return true;
}

std::size_t find_word(const std::string& hay, std::string_view needle,
                      std::size_t from = 0) {
  for (std::size_t pos = hay.find(needle, from); pos != std::string::npos;
       pos = hay.find(needle, pos + 1)) {
    if (word_at(hay, pos, needle)) return pos;
  }
  return std::string::npos;
}

bool contains_word(const std::string& hay, std::string_view needle) {
  return find_word(hay, needle) != std::string::npos;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_idents(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (ident_char(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      std::size_t j = i;
      while (j < text.size() && ident_char(text[j])) ++j;
      out.push_back(text.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

// ---- annotations ----

enum class AnnotationKind {
  kOrderInsensitive,
  kGuardedBy,
  kThreadSafe,
  kBounded,
  kAllocOk,
};

struct Annotation {
  AnnotationKind kind = AnnotationKind::kBounded;
  std::size_t comment_line = 0;  ///< 1-based line the comment sits on
  /// 1-based inclusive line range of the *statement* the annotation
  /// excuses: from the first code line at or after the comment through the
  /// first line containing a statement terminator (`;`, `{`, or `}`), so a
  /// wrapped for-header or call keeps its annotation even after
  /// clang-format rewraps it. Both 0 when no code follows.
  std::size_t applies_begin = 0;
  std::size_t applies_end = 0;
  bool consumed = false;
};

struct ParsedFile {
  std::vector<ScannedLine> lines;
  std::vector<Annotation> annotations;
  std::vector<Finding> annotation_errors;  ///< unknown-name findings
};

constexpr std::string_view kAnnotationMarker = "scup-lint:";

bool parse_annotation_name(const std::string& name, AnnotationKind& kind) {
  if (name == "order-insensitive") {
    kind = AnnotationKind::kOrderInsensitive;
    return true;
  }
  if (name == "guarded-by") {
    kind = AnnotationKind::kGuardedBy;
    return true;
  }
  if (name == "thread-safe") {
    kind = AnnotationKind::kThreadSafe;
    return true;
  }
  if (name == "bounded") {
    kind = AnnotationKind::kBounded;
    return true;
  }
  if (name == "alloc-ok") {
    kind = AnnotationKind::kAllocOk;
    return true;
  }
  return false;
}

/// Extracts `name(reason)` annotations after every `scup-lint:` marker in
/// the comment text of line `line_no`. A missing or unbalanced reason, or an
/// unknown name, is an error finding.
void parse_annotations(const std::string& rel_path, std::size_t line_no,
                       const std::string& comment, ParsedFile& out) {
  std::size_t pos = comment.find(kAnnotationMarker);
  while (pos != std::string::npos) {
    std::size_t i = pos + kAnnotationMarker.size();
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])) != 0) {
      ++i;
    }
    std::size_t j = i;
    while (j < comment.size() && (ident_char(comment[j]) || comment[j] == '-')) {
      ++j;
    }
    const std::string name = comment.substr(i, j - i);
    AnnotationKind kind;
    bool ok = parse_annotation_name(name, kind);
    if (ok) {
      // Require a non-empty, paren-balanced reason.
      if (j >= comment.size() || comment[j] != '(') {
        ok = false;
      } else {
        int depth = 0;
        std::size_t k = j;
        for (; k < comment.size(); ++k) {
          if (comment[k] == '(') ++depth;
          if (comment[k] == ')' && --depth == 0) break;
        }
        ok = depth == 0 && k > j + 1;
      }
    }
    if (ok) {
      out.annotations.push_back(Annotation{kind, line_no, 0, false});
    } else {
      out.annotation_errors.push_back(Finding{
          rel_path, line_no, std::string(kRuleUnknownAnnotation),
          "malformed scup-lint annotation '" + name +
              "' (expected one of order-insensitive, guarded-by, "
              "thread-safe, bounded, alloc-ok, each with a (reason))"});
    }
    pos = comment.find(kAnnotationMarker, pos + kAnnotationMarker.size());
  }
}

ParsedFile parse_file(const std::string& rel_path,
                      const std::string& content) {
  ParsedFile out;
  out.lines = scan_source(content);
  for (std::size_t i = 0; i < out.lines.size(); ++i) {
    if (out.lines[i].comment.find(kAnnotationMarker) != std::string::npos) {
      parse_annotations(rel_path, i + 1, out.lines[i].comment, out);
    }
  }
  // Bind each annotation to the statement it excuses: starting at its own
  // line when that line has code (else the next line that does), extending
  // through the first line that carries a statement terminator. A wrapped
  // construct (for-header, cast argument list) is covered whole.
  for (Annotation& a : out.annotations) {
    std::size_t line = a.comment_line;  // 1-based
    while (line <= out.lines.size() &&
           trim(out.lines[line - 1].code).empty()) {
      ++line;
    }
    if (line > out.lines.size()) continue;  // trailing comment: binds nothing
    std::size_t end = line;
    while (end < out.lines.size() &&
           out.lines[end - 1].code.find_first_of(";{}") == std::string::npos) {
      ++end;
    }
    a.applies_begin = line;
    a.applies_end = end;
  }
  return out;
}

/// Consumes (and returns true for) an annotation of `kind` whose statement
/// range covers `code_line`.
bool consume_annotation(ParsedFile& file, std::size_t code_line,
                        AnnotationKind kind) {
  // One annotation covers every match inside its statement (a wrapped call
  // with two flagged subscripts needs one `bounded`, not two).
  bool found = false;
  for (Annotation& a : file.annotations) {
    if (a.kind == kind && a.applies_begin != 0 &&
        code_line >= a.applies_begin && code_line <= a.applies_end) {
      a.consumed = true;
      found = true;
    }
  }
  return found;
}

// ---- path scoping ----

struct PathScope {
  bool in_src = false;
  bool in_tests = false;
  bool in_bench = false;
  bool is_rng = false;           ///< src/common/rng.*
  bool is_matrix_runner = false; ///< src/core/scenario_matrix.*
  bool in_sim = false;           ///< src/sim/
  bool is_shard_file = false;    ///< src/sim/shard* (the sharded engine)
  bool is_shard_pool = false;    ///< src/sim/shard_pool.*
};

PathScope classify(const std::string& rel_path) {
  PathScope s;
  s.in_src = starts_with(rel_path, "src/");
  s.in_tests = starts_with(rel_path, "tests/");
  s.in_bench = starts_with(rel_path, "bench/");
  s.is_rng = starts_with(rel_path, "src/common/rng.");
  s.is_matrix_runner = starts_with(rel_path, "src/core/scenario_matrix.");
  s.in_sim = starts_with(rel_path, "src/sim/");
  s.is_shard_file = starts_with(rel_path, "src/sim/shard");
  s.is_shard_pool = starts_with(rel_path, "src/sim/shard_pool.");
  return s;
}

/// Joined window of up to `n` code lines starting at `i` (0-based), used for
/// constructs that may wrap (for-headers, cast arguments).
std::string code_window(const std::vector<ScannedLine>& lines, std::size_t i,
                        std::size_t n) {
  std::string out;
  for (std::size_t k = i; k < lines.size() && k < i + n; ++k) {
    out += lines[k].code;
    out += ' ';
  }
  return out;
}

// ---- rule: det-unordered-iter ----

/// Finds the range expression of a range-for whose header starts in
/// `window` at position `for_pos`; empty when the construct is not a
/// range-for (or the header is truncated).
std::string range_for_expr(const std::string& window, std::size_t for_pos) {
  std::size_t open = window.find('(', for_pos);
  if (open == std::string::npos) return {};
  int depth = 0;
  std::size_t colon = std::string::npos;
  std::size_t close = std::string::npos;
  for (std::size_t i = open; i < window.size(); ++i) {
    const char c = window[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0 && c == ')') {
        close = i;
        break;
      }
    }
    if (c == ':' && depth == 1 && colon == std::string::npos) {
      // Skip '::' scope operators.
      const bool dbl = (i + 1 < window.size() && window[i + 1] == ':') ||
                       (i > 0 && window[i - 1] == ':');
      if (!dbl) colon = i;
    }
  }
  if (colon == std::string::npos || close == std::string::npos) return {};
  return window.substr(colon + 1, close - colon - 1);
}

void rule_unordered_iter(const std::string& rel_path, ParsedFile& file,
                         const LintOptions& opts,
                         std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  if (!scope.in_src) return;
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    for (std::size_t pos = 0;
         (pos = find_word(code, "for", pos)) != std::string::npos; ++pos) {
      const std::string window = code_window(file.lines, i, 4);
      // Re-anchor `for` inside the window (the window starts at this line).
      const std::size_t wpos = find_word(window, "for", pos);
      if (wpos == std::string::npos) continue;
      const std::string range = range_for_expr(window, wpos);
      if (range.empty()) continue;
      for (const std::string& ident : split_idents(range)) {
        if (std::find(opts.unordered_idents.begin(),
                      opts.unordered_idents.end(),
                      ident) == opts.unordered_idents.end()) {
          continue;
        }
        if (consume_annotation(file, i + 1, AnnotationKind::kOrderInsensitive)) {
          break;
        }
        findings.push_back(Finding{
            rel_path, i + 1, std::string(kRuleUnorderedIter),
            "range-for over unordered container '" + ident +
                "'; iteration order is not deterministic across "
                "implementations — rewrite over a sorted snapshot or "
                "annotate `// scup-lint: order-insensitive(<why the loop "
                "body commutes>)`"});
        break;
      }
    }
  }
}

// ---- rule: det-raw-random ----

void rule_raw_random(const std::string& rel_path, ParsedFile& file,
                     std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  if (scope.is_rng) return;  // the one sanctioned home of raw randomness
  static constexpr std::string_view kBanned[] = {
      "rand",           "srand",        "random_device",
      "mt19937",        "mt19937_64",   "default_random_engine",
      "system_clock",   "steady_clock", "high_resolution_clock",
  };
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    for (std::string_view token : kBanned) {
      if (!contains_word(code, token)) continue;
      findings.push_back(Finding{
          rel_path, i + 1, std::string(kRuleRawRandom),
          "'" + std::string(token) +
              "' breaks seeded reproducibility; all randomness and time "
              "must flow through common/rng (scup::Rng) or sim time"});
      break;  // one finding per line is enough
    }
    // `time(nullptr)` / `time(NULL)`: `time` alone is too common a word.
    const std::size_t t = find_word(code, "time");
    if (t != std::string::npos) {
      const std::size_t open = code.find_first_not_of(' ', t + 4);
      if (open != std::string::npos && code[open] == '(') {
        const std::string arg =
            trim(code.substr(open + 1, code.find(')', open) - open - 1));
        if (arg == "nullptr" || arg == "NULL" || arg == "0" || arg.empty()) {
          findings.push_back(Finding{
              rel_path, i + 1, std::string(kRuleRawRandom),
              "wall-clock time() breaks seeded reproducibility; use sim "
              "time (host_now) or a seed parameter"});
        }
      }
    }
  }
}

// ---- rule: conc-raw-thread ----

void rule_raw_thread(const std::string& rel_path, ParsedFile& file,
                     std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  // src/sim/ is det-shard-escape's territory (the sharded engine has its
  // own sanctioned thread owner there); keeping the scopes disjoint means
  // one finding, with the right message, per violation.
  if (!scope.in_src || scope.is_matrix_runner || scope.in_sim) return;
  static constexpr std::string_view kBanned[] = {"thread", "jthread",
                                                 "async"};
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    bool hit = false;
    for (std::string_view token : kBanned) {
      // Only the std:: forms: a member named `thread` is not a spawn.
      const std::string qualified = "std::" + std::string(token);
      if (code.find(qualified) != std::string::npos) {
        hit = true;
        break;
      }
    }
    if (!hit && code.find(".detach(") != std::string::npos) hit = true;
    if (!hit) continue;
    findings.push_back(Finding{
        rel_path, i + 1, std::string(kRuleRawThread),
        "raw threading primitive outside core/scenario_matrix; all "
        "parallelism must go through parallel_cells so the "
        "serial==parallel identity proof (E12) stays meaningful"});
  }
}

// ---- rule: det-shard-escape ----

/// 1-based inclusive line ranges marked `// shard-barrier begin(<why>)` ...
/// `// shard-barrier end` — the regions where shard-engine code may touch
/// engine-global state (every shard thread is parked at the barrier). An
/// unterminated begin extends to end of file.
std::vector<std::pair<std::size_t, std::size_t>> marker_regions(
    const std::vector<ScannedLine>& lines, std::string_view begin_marker,
    std::string_view end_marker) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::size_t open = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    if (comment.find(begin_marker) != std::string::npos) {
      if (open == 0) open = i + 1;
    } else if (comment.find(end_marker) != std::string::npos) {
      if (open != 0) {
        out.emplace_back(open, i + 1);
        open = 0;
      }
    }
  }
  if (open != 0) out.emplace_back(open, lines.size());
  return out;
}

bool in_barrier_region(
    const std::vector<std::pair<std::size_t, std::size_t>>& regions,
    std::size_t line) {
  for (const auto& [begin, end] : regions) {
    if (line >= begin && line <= end) return true;
  }
  return false;
}

void rule_shard_escape(const std::string& rel_path, ParsedFile& file,
                       std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  if (!scope.in_sim) return;
  // (a) Raw threading inside the simulator belongs to sim/shard_pool alone:
  // the pool's fork/join is what gives the engine its happens-before edges,
  // so a stray thread or async task is a determinism hole by construction.
  if (!scope.is_shard_pool) {
    static constexpr std::string_view kSpawns[] = {"std::thread",
                                                   "std::jthread",
                                                   "std::async"};
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      const std::string& code = file.lines[i].code;
      bool hit = false;
      for (std::string_view token : kSpawns) {
        if (code.find(token) != std::string::npos) {
          hit = true;
          break;
        }
      }
      if (!hit && code.find(".detach(") != std::string::npos) hit = true;
      if (!hit) continue;
      findings.push_back(Finding{
          rel_path, i + 1, std::string(kRuleShardEscape),
          "raw threading primitive in src/sim/ outside sim/shard_pool; all "
          "shard parallelism must go through ShardPool so the window-"
          "barrier discipline (DESIGN.md §4.6) keeps sharded runs "
          "bit-identical to serial"});
    }
  }
  // (b) In shard-engine files, engine-global simulation state may only be
  // touched between barrier markers. Any mention counts: shard-side code
  // has no business even reading these while windows are in flight.
  if (scope.is_shard_file) {
    const auto regions =
        marker_regions(file.lines, "shard-barrier begin", "shard-barrier end");
    static constexpr std::string_view kGlobals[] = {
        "next_seq_", "net_streams_", "notary_", "metrics_",
        "now_",      "queue_",       "started_",
    };
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      const std::string& code = file.lines[i].code;
      for (std::string_view global : kGlobals) {
        if (!contains_word(code, global)) continue;
        if (in_barrier_region(regions, i + 1)) break;
        findings.push_back(Finding{
            rel_path, i + 1, std::string(kRuleShardEscape),
            "engine-global state '" + std::string(global) +
                "' touched outside a `// shard-barrier begin(<why>)` "
                "region; shard code may only touch non-shard-local state "
                "at the window barrier, where every shard thread is "
                "parked"});
        break;  // one finding per line is enough
      }
    }
  }
}

// ---- rule: det-drawplan-escape ----

void rule_drawplan_escape(const std::string& rel_path, ParsedFile& file,
                          std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  if (!scope.in_sim) return;
  // The per-sender verdict streams may only be touched inside a marked
  // drawplan region. The region brackets are where the position accounting
  // lives (position before, on_send, draws_per_send check); a stream draw
  // anywhere else desyncs a sender's position from the prefix sum of its
  // draw plan, and with it the send-time parallel verdict path's identity
  // with the serial stream. Any mention counts — reading a stream is as
  // suspect as drawing from it.
  const auto regions =
      marker_regions(file.lines, "drawplan begin", "drawplan end");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    if (!contains_word(file.lines[i].code, "net_streams_")) continue;
    if (in_barrier_region(regions, i + 1)) continue;
    findings.push_back(Finding{
        rel_path, i + 1, std::string(kRuleDrawplanEscape),
        "network verdict stream 'net_streams_' touched outside a "
        "`// drawplan begin(<why>)` region; every draw must go through "
        "the audited verdict site so sender stream positions stay the "
        "prefix sum of the draw plan (DESIGN.md §4.7)"});
  }
}

// ---- rule: conc-unguarded-static ----

void rule_unguarded_static(const std::string& rel_path, ParsedFile& file,
                           std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  if (!scope.in_src) return;
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string code = trim(file.lines[i].code);
    if (!starts_with(code, "static ")) continue;
    const std::string rest = code.substr(7);
    if (starts_with(rest, "const ") || starts_with(rest, "constexpr ") ||
        starts_with(rest, "consteval ") || starts_with(rest, "assert(")) {
      continue;
    }
    // Function declarations/definitions carry a parameter list before the
    // terminator; data declarations do not (heuristic: a '(' before any
    // '=' or ';' means function). `static Foo x(args);` direct-init is not
    // used in this tree — brace- or =-init it if the lint complains.
    const std::size_t paren = rest.find('(');
    const std::size_t eq = rest.find('=');
    const std::size_t semi = rest.find(';');
    const std::size_t terminator = std::min(eq, semi);
    if (paren != std::string::npos && paren < terminator) continue;
    if (consume_annotation(file, i + 1, AnnotationKind::kGuardedBy) ||
        consume_annotation(file, i + 1, AnnotationKind::kThreadSafe)) {
      continue;
    }
    findings.push_back(Finding{
        rel_path, i + 1, std::string(kRuleUnguardedStatic),
        "mutable static state is shared across scenario-matrix threads; "
        "guard it and annotate `// scup-lint: guarded-by(<mutex>)`, or "
        "justify with `// scup-lint: thread-safe(<why>)`"});
  }
}

// ---- rule: byz-narrowing-cast ----

bool idish_identifier(const std::string& tok) {
  if (tok == "slot" || tok == "view" || tok == "seq" || tok == "id" ||
      tok == "peer" || tok == "from" || tok == "node" || tok == "sender" ||
      tok == "signer") {
    return true;
  }
  const auto ends_with = [&tok](std::string_view suffix) {
    return tok.size() >= suffix.size() &&
           std::string_view(tok).substr(tok.size() - suffix.size()) == suffix;
  };
  if (ends_with("_id") || ends_with("Id") || ends_with("_view") ||
      ends_with("_slot") || ends_with("_seq")) {
    return true;
  }
  return starts_with(tok, "slot") || starts_with(tok, "view");
}

void rule_narrowing_cast(const std::string& rel_path, ParsedFile& file,
                         std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  if (!scope.in_src) return;
  static constexpr std::string_view kNarrow[] = {
      "int",           "short",         "unsigned",      "char",
      "std::int8_t",   "std::int16_t",  "std::int32_t",  "std::uint8_t",
      "std::uint16_t", "std::uint32_t", "int8_t",        "int16_t",
      "int32_t",       "uint8_t",       "uint16_t",      "uint32_t",
  };
  static constexpr std::string_view kCast = "static_cast<";
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string window = code_window(file.lines, i, 3);
    // Anchor on casts that *start* on this line.
    const std::size_t line_len = file.lines[i].code.size();
    for (std::size_t pos = window.find(kCast);
         pos != std::string::npos && pos < line_len;
         pos = window.find(kCast, pos + 1)) {
      const std::size_t type_begin = pos + kCast.size();
      const std::size_t type_end = window.find('>', type_begin);
      if (type_end == std::string::npos) continue;
      const std::string type = trim(window.substr(type_begin,
                                                  type_end - type_begin));
      const bool narrow = std::find(std::begin(kNarrow), std::end(kNarrow),
                                    type) != std::end(kNarrow);
      if (!narrow) continue;
      // Argument text: balanced parens after the '>'.
      const std::size_t open = window.find('(', type_end);
      if (open == std::string::npos) continue;
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t k = open; k < window.size(); ++k) {
        if (window[k] == '(') ++depth;
        if (window[k] == ')' && --depth == 0) {
          close = k;
          break;
        }
      }
      if (close == std::string::npos) continue;
      const std::string arg = window.substr(open + 1, close - open - 1);
      bool idish = false;
      for (const std::string& tok : split_idents(arg)) {
        if (idish_identifier(tok)) {
          idish = true;
          break;
        }
      }
      if (!idish) continue;
      if (consume_annotation(file, i + 1, AnnotationKind::kBounded)) continue;
      findings.push_back(Finding{
          rel_path, i + 1, std::string(kRuleNarrowingCast),
          "narrowing static_cast<" + type + "> on an id-like value (" +
              trim(arg) +
              "); Byzantine peers choose these — range-check first and "
              "annotate `// scup-lint: bounded(<the check>)`"});
    }
  }
}

// ---- message-handler body detection (byz-unbounded-map, perf-hot-alloc) --

/// One message-handler shape: the method name, the in-class definition
/// prefix that distinguishes a definition from a call site, and whether the
/// header must name a ProcessId sender (the batch upcall takes Delivery*).
struct HandlerSpec {
  std::string_view name;
  std::string_view inclass_prefix;
  bool needs_process_id;
};

/// 0-based line ranges of message-handler bodies matching `spec`.
std::vector<std::pair<std::size_t, std::size_t>> handler_bodies(
    const std::vector<ScannedLine>& lines, const HandlerSpec& spec) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const std::size_t pos = find_word(code, spec.name);
    if (pos == std::string::npos) continue;
    if (code.find('(', pos) == std::string::npos) continue;
    // Definitions only, not call sites: the header is either an
    // out-of-class `X::name(` or an in-class `<ret> name(`. (A declaration
    // is filtered below by the ';' check.)
    const bool qualified = pos >= 2 && code.compare(pos - 2, 2, "::") == 0;
    const bool inclass = starts_with(trim(code), spec.inclass_prefix);
    if (!qualified && !inclass) continue;
    const std::string window = code_window(lines, i, 3);
    if (spec.needs_process_id &&
        window.find("ProcessId") == std::string::npos) {
      continue;
    }
    // Find the opening brace, then the matching close.
    int depth = 0;
    bool open_seen = false;
    std::size_t end = lines.size();
    bool is_definition = true;
    for (std::size_t k = i; k < lines.size(); ++k) {
      for (const char c : lines[k].code) {
        if (!open_seen && c == ';') {
          is_definition = false;
          break;
        }
        if (c == '{') {
          ++depth;
          open_seen = true;
        }
        if (c == '}' && open_seen && --depth == 0) {
          end = k;
          break;
        }
      }
      if (!is_definition || end != lines.size()) break;
    }
    if (is_definition && open_seen) out.emplace_back(i, end);
  }
  return out;
}

// ---- rule: byz-unbounded-map ----

void rule_unbounded_map(const std::string& rel_path, ParsedFile& file,
                        std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  if (!scope.in_src) return;
  const HandlerSpec handle{"handle", "bool handle", true};
  for (const auto& [begin, end] : handler_bodies(file.lines, handle)) {
    for (std::size_t i = begin; i <= end && i < file.lines.size(); ++i) {
      const std::string& code = file.lines[i].code;
      for (std::size_t k = 0; k + 1 < code.size(); ++k) {
        if (code[k + 1] != '[' || !ident_char(code[k])) continue;
        std::size_t b = k;
        while (b > 0 && ident_char(code[b - 1])) --b;
        const std::string ident = code.substr(b, k - b + 1);
        // Member containers only (trailing-underscore convention).
        if (ident.size() < 2 || ident.back() != '_') continue;
        if (consume_annotation(file, i + 1, AnnotationKind::kBounded)) {
          continue;
        }
        findings.push_back(Finding{
            rel_path, i + 1, std::string(kRuleUnboundedMap),
            "operator[] on member container '" + ident +
                "' inside a handle() path inserts on lookup; a Byzantine "
                "sender controls the key space — bound it and annotate "
                "`// scup-lint: bounded(<the bound>)`"});
      }
    }
  }
}

// ---- rule: perf-hot-alloc ----

void rule_perf_hot_alloc(const std::string& rel_path, ParsedFile& file,
                         std::vector<Finding>& findings) {
  const PathScope scope = classify(rel_path);
  if (!scope.in_src) return;
  // The per-delivery hot paths: the single-message upcall, the batch
  // upcall, and the protocol-level handle() dispatchees.
  static constexpr HandlerSpec kHotPaths[] = {
      {"on_message", "void on_message", true},
      {"on_messages", "void on_messages", false},
      {"handle", "bool handle", true},
  };
  for (const HandlerSpec& spec : kHotPaths) {
    for (const auto& [begin, end] : handler_bodies(file.lines, spec)) {
      for (std::size_t i = begin; i <= end && i < file.lines.size(); ++i) {
        const std::string& code = file.lines[i].code;
        std::string_view token;
        if (contains_word(code, "make_shared")) {
          token = "make_shared";
        } else if (contains_word(code, "new")) {
          token = "new";
        } else {
          continue;
        }
        if (consume_annotation(file, i + 1, AnnotationKind::kAllocOk)) {
          continue;
        }
        findings.push_back(Finding{
            rel_path, i + 1, std::string(kRulePerfHotAlloc),
            "'" + std::string(token) +
                "' allocates inside a message-handler body — the "
                "per-delivery hot path (E16); construct messages with the "
                "pooled sim::make_message, hoist the allocation out of the "
                "handler, or annotate `// scup-lint: alloc-ok(<why this "
                "allocation is cold or amortized>)`"});
      }
    }
  }
}

}  // namespace

// ---- scanner ----

std::vector<ScannedLine> scan_source(const std::string& content) {
  std::vector<ScannedLine> out;
  ScannedLine cur;
  enum class State { kCode, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    const char c = i < content.size() ? content[i] : '\n';
    if (c == '\n') {
      if (i == content.size() && cur.code.empty() && cur.comment.empty() &&
          !out.empty()) {
        break;  // no trailing phantom line
      }
      out.push_back(std::move(cur));
      cur = {};
      // Strings do not span lines (unterminated literal: fail open to code).
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      if (i == content.size()) break;
      continue;
    }
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          cur.comment.append(content, i, content.find('\n', i) == std::string::npos
                                             ? content.size() - i
                                             : content.find('\n', i) - i);
          i = content.find('\n', i);
          if (i == std::string::npos) i = content.size();
          --i;  // loop ++ lands on the newline
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
          break;
        }
        if (c == '"') {
          state = State::kString;
          cur.code += '"';
          break;
        }
        if (c == '\'') {
          state = State::kChar;
          cur.code += '\'';
          break;
        }
        cur.code += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char
        } else if (c == '"') {
          state = State::kCode;
          cur.code += '"';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          cur.code += '\'';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> collect_unordered_idents(const std::string& content) {
  std::vector<std::string> out;
  const std::vector<ScannedLine> lines = scan_source(content);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string window = code_window(lines, i, 3);
    const std::size_t line_len = lines[i].code.size();
    for (std::string_view kw : {std::string_view("unordered_map<"),
                                std::string_view("unordered_set<")}) {
      for (std::size_t pos = window.find(kw);
           pos != std::string::npos && pos < line_len;
           pos = window.find(kw, pos + 1)) {
        // Balance the template angle brackets.
        std::size_t k = pos + kw.size() - 1;  // at '<'
        int depth = 0;
        for (; k < window.size(); ++k) {
          if (window[k] == '<') ++depth;
          if (window[k] == '>' && --depth == 0) break;
        }
        if (k >= window.size()) continue;
        // Next identifier after the closing '>' (skipping refs/pointers) is
        // the declared name — when the declaration ends in ; = { or ,
        // (member/local/param), not ( (a function returning the container).
        ++k;
        while (k < window.size() &&
               (std::isspace(static_cast<unsigned char>(window[k])) != 0 ||
                window[k] == '&' || window[k] == '*')) {
          ++k;
        }
        std::size_t e = k;
        while (e < window.size() && ident_char(window[e])) ++e;
        if (e == k) continue;
        std::size_t after = e;
        while (after < window.size() &&
               std::isspace(static_cast<unsigned char>(window[after])) != 0) {
          ++after;
        }
        if (after < window.size() && window[after] == '(') continue;
        const std::string ident = window.substr(k, e - k);
        if (std::find(out.begin(), out.end(), ident) == out.end()) {
          out.push_back(ident);
        }
      }
    }
  }
  return out;
}

bool rule_suppressible(std::string_view rule) {
  return rule == kRuleUnorderedIter || rule == kRuleRawRandom ||
         rule == kRuleShardEscape || rule == kRuleDrawplanEscape ||
         rule == kRuleRawThread || rule == kRuleUnguardedStatic ||
         rule == kRuleNarrowingCast || rule == kRuleUnboundedMap ||
         rule == kRulePerfHotAlloc;
}

std::vector<Finding> lint_file(const std::string& rel_path,
                               const std::string& content,
                               const LintOptions& opts) {
  ParsedFile file = parse_file(rel_path, content);
  std::vector<Finding> findings = file.annotation_errors;
  rule_unordered_iter(rel_path, file, opts, findings);
  rule_raw_random(rel_path, file, findings);
  rule_shard_escape(rel_path, file, findings);
  rule_drawplan_escape(rel_path, file, findings);
  rule_raw_thread(rel_path, file, findings);
  rule_unguarded_static(rel_path, file, findings);
  rule_narrowing_cast(rel_path, file, findings);
  rule_unbounded_map(rel_path, file, findings);
  rule_perf_hot_alloc(rel_path, file, findings);
  for (const Annotation& a : file.annotations) {
    if (a.consumed) continue;
    findings.push_back(Finding{
        rel_path, a.comment_line, std::string(kRuleStaleAnnotation),
        "annotation excuses nothing (the code it was written for no longer "
        "triggers the rule here); delete it"});
  }
  return findings;
}

std::vector<Suppression> parse_suppressions(const std::string& content,
                                            const std::string& supp_rel_path,
                                            std::vector<Finding>& errors) {
  std::vector<Suppression> out;
  std::istringstream in(content);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string text = trim(line.substr(0, line.find('#')));
    if (text.empty()) continue;
    std::istringstream fields(text);
    std::string path;
    std::string rule;
    std::string extra;
    fields >> path >> rule;
    if (rule.empty() || (fields >> extra && !extra.empty())) {
      errors.push_back(Finding{
          supp_rel_path, line_no, std::string(kRuleBadSuppression),
          "malformed suppression (expected `<path> <rule-id>`): " + text});
      continue;
    }
    if (!rule_suppressible(rule)) {
      errors.push_back(Finding{
          supp_rel_path, line_no, std::string(kRuleBadSuppression),
          "unknown or unsuppressible rule id '" + rule + "'"});
      continue;
    }
    out.push_back(Suppression{path, rule, line_no, false});
  }
  return out;
}

std::vector<Finding> apply_suppressions(std::vector<Finding> findings,
                                        std::vector<Suppression>& supps,
                                        const std::string& supp_rel_path) {
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    bool suppressed = false;
    for (Suppression& s : supps) {
      if (s.path == f.file && s.rule == f.rule) {
        s.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  for (const Suppression& s : supps) {
    if (s.used) continue;
    kept.push_back(Finding{
        supp_rel_path, s.line, std::string(kRuleStaleSuppression),
        "suppression `" + s.path + " " + s.rule +
            "` matches no finding; delete it"});
  }
  return kept;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace scup::lint
