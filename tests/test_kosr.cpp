#include "graph/kosr.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"

namespace scup::graph {
namespace {

TEST(KosrTest, Fig2Is3Osr) {
  // The paper states Fig. 2 is a 3-OSR PD with sink {1,2,3,4}.
  const Digraph g = fig2_graph();
  const KosrReport report = check_kosr(g, 3);
  EXPECT_TRUE(report.weakly_connected);
  EXPECT_TRUE(report.single_sink);
  EXPECT_TRUE(report.sink_k_connected);
  EXPECT_TRUE(report.paths_to_sink);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.sink, fig2_sink());
}

TEST(KosrTest, Fig1IsOsrWithSmallK) {
  // Fig. 1's sink {5,6,7,8} is 2-strongly connected; the graph is 1-OSR at
  // least (it is the paper's running example for f = 1 with the failure
  // outside critical paths).
  const Digraph g = fig1_graph();
  const KosrReport r1 = check_kosr(g, 1);
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  EXPECT_EQ(r1.sink, fig1_sink());
}

TEST(KosrTest, DisconnectedFails) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const KosrReport r = check_kosr(g, 1);
  EXPECT_FALSE(r.weakly_connected);
  EXPECT_FALSE(r.ok());
}

TEST(KosrTest, TwoSinksFail) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(0, 2);  // connect weakly: component A reaches B... B is sink
  // Now only one sink: {2,3}. Break it with an isolated extra sink:
  const KosrReport r = check_kosr(g, 1);
  EXPECT_TRUE(r.single_sink);
  // Add a second sink: node isolated except incoming edge.
  Digraph h(5);
  h.add_edge(0, 1);
  h.add_edge(1, 0);
  h.add_edge(0, 2);
  h.add_edge(0, 3);
  h.add_edge(3, 4);
  // sinks: {2} and {4}
  const KosrReport rh = check_kosr(h, 1);
  EXPECT_TRUE(rh.weakly_connected);
  EXPECT_FALSE(rh.single_sink);
  EXPECT_FALSE(rh.ok());
}

TEST(KosrTest, InsufficientSinkConnectivity) {
  // Sink is a directed cycle (1-connected); demand k = 2.
  Digraph g(5);
  for (ProcessId i = 0; i < 4; ++i) g.add_edge(i, (i + 1) % 4);
  g.add_edge(4, 0);  // non-sink node 4 points in
  const KosrReport r = check_kosr(g, 2);
  EXPECT_TRUE(r.single_sink);
  EXPECT_FALSE(r.sink_k_connected);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(check_kosr(g, 1).ok());
}

TEST(KosrTest, InsufficientPathsFromNonSink) {
  // Sink = K4-ish circulant (2-connected); non-sink node has only 1 edge in.
  Digraph g(5);
  for (ProcessId i = 0; i < 4; ++i) {
    g.add_edge(i, (i + 1) % 4);
    g.add_edge(i, (i + 2) % 4);
  }
  g.add_edge(4, 0);
  const KosrReport r = check_kosr(g, 2);
  EXPECT_TRUE(r.sink_k_connected);
  EXPECT_FALSE(r.paths_to_sink);
  EXPECT_TRUE(check_kosr(g, 1).ok());
}

TEST(KosrGeneratorTest, GeneratedGraphsPassChecker) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    KosrGenParams params;
    params.sink_size = 5;
    params.non_sink_size = 4;
    params.k = 2;
    params.seed = seed;
    const Digraph g = random_kosr_graph(params);
    const KosrReport r = check_kosr(g, params.k);
    EXPECT_TRUE(r.ok()) << "seed=" << seed << " " << r.to_string();
    EXPECT_EQ(r.sink.count(), params.sink_size);
    // Sink members are exactly ids [0, sink_size).
    for (ProcessId i = 0; i < params.sink_size; ++i) {
      EXPECT_TRUE(r.sink.contains(i));
    }
  }
}

TEST(KosrGeneratorTest, RejectsBadParameters) {
  KosrGenParams params;
  params.sink_size = 0;
  EXPECT_THROW(random_kosr_graph(params), std::invalid_argument);
  params.sink_size = 3;
  params.k = 3;
  EXPECT_THROW(random_kosr_graph(params), std::invalid_argument);
}

TEST(ByzantineSafetyTest, Fig2SafeForF1) {
  // Fig. 2 provides enough knowledge for f = 1 per the paper: whether the
  // faulty process is in the sink or not, the residual graph is 2-OSR.
  const Digraph g = fig2_graph();
  for (ProcessId victim = 0; victim < 7; ++victim) {
    NodeSet faulty(7, {victim});
    EXPECT_TRUE(is_byzantine_safe(g, faulty, 1)) << "victim=" << victim;
    EXPECT_TRUE(satisfies_bft_cup_preconditions(g, faulty, 1))
        << "victim=" << victim;
  }
}

TEST(ByzantineSafetyTest, TooManyFaultsRejected) {
  const Digraph g = fig2_graph();
  EXPECT_FALSE(is_byzantine_safe(g, NodeSet(7, {0, 1}), 1));
}

TEST(ByzantineSafetyTest, SinkNeeds2fPlus1Correct) {
  // A graph whose sink has only 2 correct members cannot satisfy the
  // BFT-CUP precondition for f = 1 even if k-OSR holds.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  NodeSet faulty(3, {1});
  EXPECT_FALSE(satisfies_bft_cup_preconditions(g, faulty, 1));
}

TEST(ByzantineSafetyTest, GeneratedFamiliesWithSafeFaultPlacement) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t f = 1;
    KosrGenParams params;
    params.sink_size = 3 * f + 2;  // tolerate in-sink faults
    params.non_sink_size = 3;
    params.k = 2 * f + 1;
    params.seed = seed;
    const Digraph g = random_kosr_graph(params);
    Rng rng(seed + 1000);
    const NodeSet sink = unique_sink_component(g);
    const NodeSet faulty =
        pick_safe_faulty_set(g, sink, f, /*allow_in_sink=*/true, rng);
    EXPECT_EQ(faulty.count(), f);
    EXPECT_TRUE(satisfies_bft_cup_preconditions(g, faulty, f));
  }
}

}  // namespace
}  // namespace scup::graph
