// MessageTypeRegistry is the one piece of process-wide shared state the
// parallel ScenarioMatrix runner touches from several threads at once.
// These tests hammer intern/name_of/count concurrently; run them under the
// tsan preset (cmake --preset tsan) to have ThreadSanitizer check the
// locking, and note that name_of hands out references that must stay valid
// across later interning (the registry stores names in a deque for that).
#include "sim/message.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace scup::sim {
namespace {

TEST(MessageRegistryTest, InternIsIdempotent) {
  const auto a = MessageTypeRegistry::intern("registry.idem");
  const auto b = MessageTypeRegistry::intern("registry.idem");
  EXPECT_EQ(a, b);
  EXPECT_EQ(MessageTypeRegistry::name_of(a), "registry.idem");
}

TEST(MessageRegistryTest, NameOfUnknownIdThrows) {
  EXPECT_THROW(MessageTypeRegistry::name_of(0xfffffff0u), std::out_of_range);
}

TEST(MessageRegistryTest, ConcurrentInternAndNameOf) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 400;

  // References taken before the hammer must survive every later intern.
  const auto shared_id = MessageTypeRegistry::intern("registry.shared");
  const std::string& shared_name = MessageTypeRegistry::name_of(shared_id);

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failed, shared_id] {
      for (int r = 0; r < kRounds; ++r) {
        // Every thread interns the same contended name...
        if (MessageTypeRegistry::intern("registry.contended") !=
            MessageTypeRegistry::intern("registry.contended")) {
          failed = true;
        }
        // ...plus a name unique to (thread, round), forcing real growth.
        const std::string unique =
            "registry.t" + std::to_string(t) + "." + std::to_string(r);
        const auto id = MessageTypeRegistry::intern(unique);
        if (MessageTypeRegistry::name_of(id) != unique) failed = true;
        if (MessageTypeRegistry::name_of(shared_id) != "registry.shared") {
          failed = true;
        }
        if (MessageTypeRegistry::count() <= id) failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(failed.load());
  // The early reference is still intact after kThreads*kRounds interns.
  EXPECT_EQ(shared_name, "registry.shared");
  EXPECT_EQ(MessageTypeRegistry::intern("registry.shared"), shared_id);
}

}  // namespace
}  // namespace scup::sim
