// lock-discipline: `// scup-guarded-by: M` symbols must only be touched by
// functions that lock M (a lock_guard/unique_lock/scoped_lock/shared_lock
// statement naming M anywhere in the body — lock coverage is deliberately
// function-granular, see analyze.hpp) or that declare
// `// scup-analyze: requires-lock(M)`; and every caller of a
// requires-lock(M) function must itself lock or require M.
//
// Scope of a guarded symbol: methods of the declaring class for fields,
// the declaring function for function-locals/statics, the declaring TU for
// namespace-scope variables.
#include <set>
#include <string>
#include <vector>

#include "analyze_internal.hpp"

namespace scup::analyze {

namespace {

bool locks_or_requires(const FunctionSym& f, const std::string& mutex,
                       std::size_t* requires_idx = nullptr) {
  for (const std::string& t : f.locked_tokens) {
    if (t == mutex) return true;
  }
  for (std::size_t i = 0; i < f.requires_locks.size(); ++i) {
    if (f.requires_locks[i] == mutex) {
      if (requires_idx != nullptr) *requires_idx = i;
      return true;
    }
  }
  return false;
}

bool mentions(const FunctionSym& f, const std::string& name) {
  for (const Stmt& s : f.stmts) {
    for (const Tok& t : s.toks) {
      if (t.ident && t.text == name) return true;
    }
  }
  return false;
}

std::string fn_label(const FunctionSym& f) {
  return f.cls.empty() ? f.name : f.cls + "::" + f.name;
}

}  // namespace

void run_locks(ProjectIndex& ix, std::vector<Finding>& out) {
  std::vector<TU>& tus = *ix.tus;

  // Guarded-symbol access checks.
  for (const FieldRef& gr : ix.guarded_fields) {
    FieldSym& d = ix.field(gr);
    bool any_access = false;
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      for (FunctionSym& f : tus[ti].functions) {
        // Scope: declaring function for locals, declaring class's methods
        // for fields, declaring TU for namespace-scope symbols.
        if (!d.func.empty()) {
          if (ti != gr.tu || f.name != d.func) continue;
        } else if (!d.cls.empty()) {
          if (f.cls != d.cls) continue;
        } else if (ti != gr.tu) {
          continue;
        }
        if (!mentions(f, d.name)) continue;
        any_access = true;
        std::size_t req = 0;
        if (locks_or_requires(f, d.guarded_by, &req)) {
          // An access excused by requires-lock keeps that annotation live.
          if (req < f.requires_lock_anns.size() &&
              !f.requires_locks.empty() &&
              f.requires_locks[req] == d.guarded_by) {
            ix.ann(ti, f.requires_lock_anns[req]).consumed = true;
          }
          continue;
        }
        out.push_back(Finding{
            f.file, f.line, std::string(kRuleLockUnguarded),
            fn_label(f) + " touches '" + d.name + "' (guarded by " +
                d.guarded_by + ") without locking it — take the lock, or "
                "annotate the function `// scup-analyze: requires-lock(" +
                d.guarded_by + ")`"});
      }
    }
    if (any_access && d.guarded_ann >= 0) {
      ix.ann(gr.tu, d.guarded_ann).consumed = true;
    }
  }

  // requires-lock call-site checks: a caller must hold (or require) the
  // mutex its callee's contract names.
  for (const FnRef& rf : ix.requires_lock_fns) {
    FunctionSym& callee = ix.fn(rf);
    std::set<std::string> seen_callers;
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      for (FunctionSym& g : tus[ti].functions) {
        for (const CallSite& c : g.calls) {
          if (c.name != callee.name) continue;
          bool resolves = false;
          for (const FnRef& r : ix.resolve(g, c)) {
            if (r == rf) {
              resolves = true;
              break;
            }
          }
          if (!resolves) continue;
          for (std::size_t mi = 0; mi < callee.requires_locks.size(); ++mi) {
            const std::string& mutex = callee.requires_locks[mi];
            if (mi < callee.requires_lock_anns.size()) {
              ix.ann(rf.tu, callee.requires_lock_anns[mi]).consumed = true;
            }
            if (locks_or_requires(g, mutex)) continue;
            if (!seen_callers.insert(fn_label(g) + "/" + mutex).second) {
              continue;
            }
            out.push_back(Finding{
                g.file, c.line, std::string(kRuleLockCaller),
                fn_label(g) + " calls " + fn_label(callee) +
                    ", which requires-lock(" + mutex +
                    "), without holding it"});
          }
        }
      }
    }
  }
}

}  // namespace scup::analyze
