#include "graph/disjoint_paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

namespace scup::graph {

namespace {

/// Dinic max-flow on a unit-capacity network built with vertex splitting.
/// Node 2w = w_in, 2w+1 = w_out. Edge w_in->w_out has capacity 1 (or "inf"
/// for the endpoints), original edge (u, v) becomes u_out -> v_in with
/// capacity 1.
class UnitFlow {
 public:
  explicit UnitFlow(std::size_t node_count) : head_(node_count, -1) {}

  void add_edge(int u, int v, int cap) {
    edges_.push_back({v, head_[u], cap});
    head_[u] = static_cast<int>(edges_.size()) - 1;
    edges_.push_back({u, head_[v], 0});
    head_[v] = static_cast<int>(edges_.size()) - 1;
  }

  /// Computes max-flow from s to t, stopping early once flow >= limit.
  std::size_t max_flow(int s, int t, std::size_t limit) {
    std::size_t flow = 0;
    while (flow < limit && bfs(s, t)) {
      iter_ = head_;
      while (flow < limit) {
        const int pushed = dfs(s, t, std::numeric_limits<int>::max());
        if (pushed == 0) break;
        flow += static_cast<std::size_t>(pushed);
      }
    }
    return flow;
  }

 private:
  struct Edge {
    int to;
    int next;
    int cap;
  };

  bool bfs(int s, int t) {
    level_.assign(head_.size(), -1);
    std::queue<int> q;
    level_[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int e = head_[u]; e != -1; e = edges_[e].next) {
        if (edges_[e].cap > 0 && level_[edges_[e].to] == -1) {
          level_[edges_[e].to] = level_[u] + 1;
          q.push(edges_[e].to);
        }
      }
    }
    return level_[t] != -1;
  }

  int dfs(int u, int t, int pushed) {
    if (u == t) return pushed;
    for (int& e = iter_[u]; e != -1; e = edges_[e].next) {
      Edge& edge = edges_[e];
      if (edge.cap > 0 && level_[edge.to] == level_[u] + 1) {
        const int got = dfs(edge.to, t, std::min(pushed, edge.cap));
        if (got > 0) {
          edge.cap -= got;
          edges_[e ^ 1].cap += got;
          return got;
        }
      }
    }
    return 0;
  }

  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

std::size_t disjoint_paths_impl(const Digraph& g, ProcessId u, ProcessId v,
                                std::size_t limit, const NodeSet& active) {
  if (u == v) {
    throw std::invalid_argument("disjoint paths: endpoints must differ");
  }
  if (u >= g.node_count() || v >= g.node_count()) {
    throw std::out_of_range("disjoint paths: node out of range");
  }
  if (!active.contains(u) || !active.contains(v)) return 0;

  const std::size_t n = g.node_count();
  const int big = static_cast<int>(n) + 1;
  UnitFlow flow(2 * n);
  for (ProcessId w : active) {
    const int cap = (w == u || w == v) ? big : 1;
    flow.add_edge(static_cast<int>(2 * w), static_cast<int>(2 * w + 1), cap);
    for (ProcessId x : g.successors(w)) {
      if (active.contains(x)) {
        flow.add_edge(static_cast<int>(2 * w + 1), static_cast<int>(2 * x), 1);
      }
    }
  }
  return flow.max_flow(static_cast<int>(2 * u + 1), static_cast<int>(2 * v),
                       limit);
}

}  // namespace

std::size_t max_vertex_disjoint_paths(const Digraph& g, ProcessId u,
                                      ProcessId v, const NodeSet& active) {
  return disjoint_paths_impl(g, u, v, g.node_count() + 1, active);
}

std::size_t max_vertex_disjoint_paths(const Digraph& g, ProcessId u,
                                      ProcessId v) {
  return max_vertex_disjoint_paths(g, u, v, NodeSet::full(g.node_count()));
}

bool has_k_vertex_disjoint_paths(const Digraph& g, ProcessId u, ProcessId v,
                                 std::size_t k, const NodeSet& active) {
  if (k == 0) return true;
  return disjoint_paths_impl(g, u, v, k, active) >= k;
}

bool is_k_strongly_connected(const Digraph& g, std::size_t k,
                             const NodeSet& active) {
  const auto nodes = active.to_vector();
  if (nodes.size() <= 1) return true;
  for (ProcessId u : nodes) {
    for (ProcessId v : nodes) {
      if (u == v) continue;
      if (!has_k_vertex_disjoint_paths(g, u, v, k, active)) return false;
    }
  }
  return true;
}

bool is_k_strongly_connected(const Digraph& g, std::size_t k) {
  return is_k_strongly_connected(g, k, NodeSet::full(g.node_count()));
}

bool is_f_reachable(const Digraph& g, ProcessId i, ProcessId j, std::size_t f,
                    const NodeSet& correct) {
  if (i == j) return true;
  return has_k_vertex_disjoint_paths(g, i, j, f + 1, correct);
}

}  // namespace scup::graph
