#include "fbqs/fig_examples.hpp"

#include "graph/generators.hpp"

namespace scup::fbqs {

namespace {
/// Builds a NodeSet from paper (1-based) ids.
NodeSet paper_set(std::size_t universe, std::initializer_list<ProcessId> ids) {
  NodeSet s(universe);
  for (ProcessId id : ids) s.add(id - 1);
  return s;
}
}  // namespace

FbqsSystem fig1_system() {
  constexpr std::size_t n = 8;
  FbqsSystem sys(n);
  sys.set_slices(0, SliceSet::explicit_slices({paper_set(n, {2, 5})}));
  sys.set_slices(1, SliceSet::explicit_slices({paper_set(n, {4})}));
  sys.set_slices(2, SliceSet::explicit_slices({paper_set(n, {5, 7})}));
  sys.set_slices(
      3, SliceSet::explicit_slices({paper_set(n, {5, 6}), paper_set(n, {6, 8})}));
  sys.set_slices(4, SliceSet::explicit_slices({paper_set(n, {6, 7})}));
  sys.set_slices(
      5, SliceSet::explicit_slices({paper_set(n, {5, 7}), paper_set(n, {7, 8})}));
  sys.set_slices(
      6, SliceSet::explicit_slices({paper_set(n, {5, 6}), paper_set(n, {6, 8})}));
  // Faulty process 8 (our 7): arbitrary slices (it may define anything).
  sys.set_slices(7, SliceSet::explicit_slices({paper_set(n, {6, 7})}));
  return sys;
}

FbqsSystem fig2_local_system() {
  const graph::Digraph g = graph::fig2_graph();
  const std::size_t n = g.node_count();
  FbqsSystem sys(n);
  for (ProcessId i = 0; i < n; ++i) {
    const NodeSet pd = g.pd_of(i);
    // All subsets of PD_i of size |PD_i| - 1 (Theorem 2's construction,
    // which satisfies Lemmas 1 and 2 for f = 1).
    sys.set_slices(i, SliceSet::threshold(pd.count() - 1, pd));
  }
  return sys;
}

}  // namespace scup::fbqs
