// Slice families (S_i in the paper): either an explicit list of slices or a
// threshold family "all m-subsets of V" (which Algorithm 2 produces).
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "common/node_set.hpp"
#include "fbqs/qset.hpp"

namespace scup::fbqs {

class SliceSet {
 public:
  SliceSet() = default;

  /// Explicit family. Empty slices are rejected; an empty family means the
  /// process can never be part of any quorum.
  static SliceSet explicit_slices(std::vector<NodeSet> slices);

  /// Threshold family: all subsets of `members` with size exactly `m`.
  /// Requires 0 < m <= |members|.
  static SliceSet threshold(std::size_t m, NodeSet members);

  bool is_threshold() const;

  /// "∃ S ∈ S_i : S ⊆ q" — the per-process test inside Algorithm 1.
  bool satisfied_within(const NodeSet& q) const;

  /// True iff every slice intersects `b` (v-blocking set).
  bool blocked_by(const NodeSet& b) const;

  /// True iff some slice avoids `b` entirely (Lemma 2's requirement with b =
  /// a candidate faulty set). Equivalent to !blocked_by(b).
  bool has_slice_avoiding(const NodeSet& b) const { return !blocked_by(b); }

  /// Union of all processes appearing in any slice (Π_i in the paper).
  NodeSet union_of_members(std::size_t universe) const;

  /// Number of slices in the family (binomial for threshold families;
  /// saturates at SIZE_MAX on overflow).
  std::size_t slice_count() const;

  /// Explicit slices; only valid for explicit families.
  const std::vector<NodeSet>& explicit_list() const;

  /// Threshold parameters; only valid for threshold families.
  std::size_t threshold_m() const;
  const NodeSet& threshold_members() const;

  /// Equivalent QSet representation (threshold families map directly; an
  /// explicit family becomes a 1-of-[inner...] QSet with one inner
  /// |S|-of-S set per slice).
  QSet to_qset() const;

  std::string to_string() const;

 private:
  struct Threshold {
    std::size_t m = 0;
    NodeSet members;
  };
  std::variant<std::vector<NodeSet>, Threshold> rep_;
};

}  // namespace scup::fbqs
