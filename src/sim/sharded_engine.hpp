// ShardEngine — deterministic time-window parallelism inside one run.
//
// The simulator's event plane is sharded by process id: shard s owns every
// process p with p % shards == s, that process's calendar queue entries,
// mailbox, timers and RNG. Shards drain their own queues concurrently
// inside a conservative window [T, T + W) where T is the global minimum
// next-event time and W = NetworkModel::min_latency(). Because no message
// can be delivered earlier than min_latency ticks after it is sent, nothing
// a shard does inside the window can schedule work for another shard inside
// the same window — cross-shard effects (sends) always land at or beyond
// the window end, so they are staged in per-shard outboxes and exchanged at
// a global barrier. DESIGN.md §4.6 gives the full order-preservation
// argument.
//
// Determinism contract: a sharded run is bit-identical (Notary sign log,
// SimMetrics, ledger contents) to the shards == 1 run of the same scenario,
// for every shard count. Three mechanisms make that true:
//
//  1. Pedigree keys. Every staged effect (send, cross-window timer, sign)
//     carries a key encoding the chain of events that produced it:
//       D(final event)        = [time, 0, seq]
//       D(provisional event)  = [time, 1] ++ Q(its scheduling key)
//       Q(k-th effect of a dispatch) = D(dispatching event) ++ [k]
//     Keys are compared lexicographically; the encoding is prefix-free
//     (every frame position carries a 0/1 discriminator), so lexicographic
//     order on the raw words is exactly the order a serial run would have
//     produced the effects in. Keys live in a per-shard flat arena
//     (key_arena) that is bump-allocated during the window and freed
//     wholesale at the barrier.
//
//  2. Deferred network verdicts. NetworkModel::on_send consumes the single
//     global network RNG, so shards never call it. Sends are staged with
//     their send time; the barrier replays them against the model in merged
//     key order, reproducing the serial draw sequence (and the serial
//     drop/duplicate bookkeeping) exactly. Final sequence numbers are dense
//     and assigned in the same merged order.
//
//  3. Provisional events. The only effect that can land inside the current
//     window is a process's own timer with delay < W. Those are pushed
//     straight into the owning shard's queue with a temporary sequence
//     number >= kTempSeqBase — past every final seq at the same tick, which
//     is exactly where a serial run's (larger, window-assigned) seq would
//     have sorted them — and their pedigree key is remembered so effects
//     they produce stay globally ordered.
//
// The window loop also batches deliveries: consecutive queue entries with
// the same (tick, target) become one Process::on_messages upcall, with
// per-delivery pedigree handled through Process::begin_delivery cookies.
#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/process.hpp"
#include "sim/shard_pool.hpp"

namespace scup::sim {

class Simulation;

/// Sharded-engine instrumentation, kept outside SimMetrics on purpose: the
/// shard-invariance suites compare SimMetrics bit-for-bit across shard
/// counts, and these counters legitimately differ (a serial run has no
/// barriers to count).
struct ShardStats {
  std::size_t shards = 0;
  /// Conservative windows executed (== global barriers).
  std::size_t windows = 0;
  /// Effects staged in outboxes (sends + cross-window timers).
  std::size_t staged_ops = 0;
  /// Staged ops that reused arena capacity vs. ones that grew it. After
  /// warm-up reused should dominate: the outbox arenas are freed
  /// wholesale at each barrier but keep their capacity.
  std::size_t arena_reused = 0;
  std::size_t arena_grown = 0;
  /// Batched-delivery upcalls and the messages they carried.
  std::size_t batch_upcalls = 0;
  std::size_t batched_messages = 0;
  /// Same-window self timers executed with temporary sequence numbers.
  std::size_t provisional_events = 0;
};

/// Provisional (same-window) events carry temporary sequence numbers from
/// this base. 2^63 is past every final seq, so they sort after all final
/// events at the same tick — matching the serial run, where a timer armed
/// inside the window receives a larger seq than anything scheduled before
/// the window started.
inline constexpr std::uint64_t kTempSeqBase = std::uint64_t{1} << 63;

/// One staged effect: a send awaiting its network verdict, or a timer
/// landing at or beyond the window end. `key_off/key_len` index the owning
/// shard's key_arena.
struct StagedOp {
  std::uint32_t key_off = 0;
  std::uint32_t key_len = 0;
  bool is_send = false;
  SimTime send_time = 0;  // the `now` on_send would have seen (sends only)
  Event event;            // sends: time/seq filled at the barrier
};

/// One staged Notary log entry (the token was computed in-window;
/// the log append replays at the barrier in merged key order).
struct StagedSign {
  std::uint32_t key_off = 0;
  std::uint32_t key_len = 0;
  ProcessId signer = kInvalidProcess;
  std::uint64_t statement = 0;
};

/// Everything one shard owns. Touched only by the shard's thread inside
/// ShardPool::run and only by the coordinating thread outside it (the
/// pool's fork/join provides the happens-before edges).
struct ShardContext {
  std::size_t index = 0;
  CalendarQueue queue;
  /// Simulated time of the event being dispatched (Process::now()).
  SimTime now = 0;
  /// Time of the last event this shard processed in the current window.
  SimTime last_time = 0;
  bool processed_any = false;
  /// Window-local metrics delta, merged into Simulation::metrics_ at the
  /// barrier and zeroed in place.
  SimMetrics metrics;

  // ---- staging arenas: bump-allocated per window, freed wholesale ----
  std::vector<StagedOp> outbox;
  std::vector<StagedSign> signs;
  std::vector<std::uint64_t> key_arena;

  /// Pedigree of the event currently being dispatched (D in the header
  /// comment) and the per-dispatch effect counter (the k in Q).
  std::vector<std::uint64_t> current_key;
  std::uint64_t intra = 0;

  /// Temporary seq allocation + key bookkeeping for provisional events.
  std::uint64_t next_temp_seq = 0;
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      provisional_keys;

  /// Reused buffer for batched same-tick deliveries.
  std::vector<Delivery> batch;

  ShardStats stats;
  std::exception_ptr error;

  /// Appends Q = current_key ++ [intra++] to the key arena; returns its
  /// (offset, length).
  std::pair<std::uint32_t, std::uint32_t> make_qkey() {
    const std::uint32_t off = static_cast<std::uint32_t>(key_arena.size());
    key_arena.insert(key_arena.end(), current_key.begin(), current_key.end());
    key_arena.push_back(intra++);
    return {off, static_cast<std::uint32_t>(key_arena.size() - off)};
  }

  /// Stages one outbox effect, counting arena reuse vs. growth.
  void stage(Event e, bool is_send, SimTime send_time) {
    if (outbox.size() < outbox.capacity()) {
      ++stats.arena_reused;
    } else {
      ++stats.arena_grown;
    }
    const auto [off, len] = make_qkey();
    StagedOp op;
    op.key_off = off;
    op.key_len = len;
    op.is_send = is_send;
    op.send_time = send_time;
    op.event = std::move(e);
    outbox.push_back(std::move(op));
    ++stats.staged_ops;
  }
};

class ShardEngine {
 public:
  /// `shards` >= 1. Spawns shards - 1 pool workers (shard 0 runs on the
  /// coordinating thread), so shards == 1 is the windowed engine with no
  /// threads at all — the determinism baseline.
  ShardEngine(Simulation& sim, std::size_t shards);

  /// The shard context of the calling thread while it is draining a window,
  /// nullptr otherwise (in particular: nullptr on the coordinating thread
  /// between windows, and always nullptr in the legacy serial loop).
  static ShardContext* current();

  /// Moves every queued event into the owning shard's queue, in (time, seq)
  /// order. Called once by Simulation::start after the pre-start serial
  /// phase has populated the global queue.
  void seed_from(CalendarQueue& queue);

  /// Runs one conservative window: picks T = min next-event time across
  /// shards, drains [T, min(T + W, deadline + 1)) in parallel, then commits
  /// staged effects at the barrier. Returns false (without running
  /// anything) when no shard has an event at time <= deadline.
  bool run_window(SimTime deadline);

  /// Routes an externally pushed event (crash_at between runs) to its
  /// owning shard. The caller has already assigned the final seq.
  void push_external(Event e);

  std::size_t shards() const { return shards_.size(); }

  /// Exclusive end of the window currently being drained. Valid only inside
  /// run_window (used by Simulation::enqueue_timer to classify a firing as
  /// provisional vs. staged).
  SimTime window_end() const { return window_end_; }

  /// Aggregated instrumentation across shards.
  ShardStats stats() const;

 private:
  void drain(std::size_t shard_index);
  /// Installs D(event) as the context's current pedigree key.
  void set_dispatch_key(ShardContext& ctx, const Event& e);
  /// Barrier half: merges outboxes in key order (drawing network verdicts
  /// and assigning dense seqs), replays staged signs into the Notary,
  /// merges metrics deltas, advances Simulation::now_, frees arenas.
  void commit_staged();
  bool key_less(const ShardContext& a, std::uint32_t a_off,
                std::uint32_t a_len, const ShardContext& b,
                std::uint32_t b_off, std::uint32_t b_len) const;

  Simulation& sim_;
  std::vector<std::unique_ptr<ShardContext>> shards_;
  ShardPool pool_;
  SimTime width_;  // W = model min latency; >= 1, enforced by set_shards
  SimTime window_end_ = 0;
  std::size_t windows_ = 0;
};

}  // namespace scup::sim
