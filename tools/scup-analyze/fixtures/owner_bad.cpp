// Ownership violations: engine-owned state touched from the shard-window
// closure (via a call edge), shard-owned state touched from serial code,
// and a lexical shard-barrier region on a function the call-graph model
// does not place at the barrier.
class Engine {
 public:
  void drain(int i);
  void commit();

 private:
  void bump();
  // scup-owner: engine
  long clock_sum_ = 0;
  // scup-owner: shard
  long outbox_bytes_ = 0;
};

// scup-analyze: shard-entry(runs on shard threads inside the window)
void Engine::drain(int i) {
  outbox_bytes_ += i;
  bump();
}

void Engine::bump() { clock_sum_ += 1; }

// shard-barrier begin
void Engine::commit() { outbox_bytes_ = 0; }
// shard-barrier end
