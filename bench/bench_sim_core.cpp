// Event-loop microbenchmarks: the cost of the simulator hot path itself,
// independent of any protocol.
//
//  - RunUntil rows measure the per-event predicate overhead of run_until:
//    the historical std::function signature vs. the templated overload vs.
//    a check-every-k stride, over an identical message storm. The
//    predicate scans all processes, which is exactly what run_scenario's
//    all-decided check does — the stride knob is what large-n sweeps use.
//  - EventQueue rows compare the indexed calendar queue against the
//    std::priority_queue it replaced on the simulator's actual workload
//    shape (bounded delays, FIFO within a tick).
#include "bench_common.hpp"

#include <functional>
#include <queue>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace scup {
namespace {

struct StormMsg final : sim::Message {
  std::string type_name() const override { return "bench.storm"; }
  std::size_t byte_size() const override { return 24; }
};

/// Each process forwards every message to a random peer, seeding the storm
/// with one initial send; the storm sustains itself forever.
class StormNode : public sim::Process {
 public:
  explicit StormNode(std::size_t n, bool seed_storm)
      : n_(n), seed_storm_(seed_storm) {}
  void start() override {
    if (seed_storm_) {
      send(static_cast<ProcessId>(rng().uniform(n_)),
           sim::make_message<StormMsg>());
    }
  }
  void on_message(ProcessId, const sim::MessagePtr&) override {
    ++received;
    send(static_cast<ProcessId>(rng().uniform(n_)),
         sim::make_message<StormMsg>());
  }
  std::size_t received = 0;

 private:
  std::size_t n_;
  bool seed_storm_;
};

constexpr std::size_t kStormNodes = 32;
constexpr std::size_t kStormTarget = 20'000;

std::unique_ptr<sim::Simulation> make_storm(std::vector<StormNode*>& nodes) {
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 10;
  net.seed = 99;
  auto sim = std::make_unique<sim::Simulation>(kStormNodes, net);
  nodes.assign(kStormNodes, nullptr);
  for (ProcessId i = 0; i < kStormNodes; ++i) {
    nodes[i] = &sim->emplace_process<StormNode>(i, kStormNodes, i < 4);
  }
  return sim;
}

/// The all-processes scan predicate run_scenario uses, parameterized over
/// how run_until consumes it.
template <typename RunPolicy>
void run_until_bench(benchmark::State& state, RunPolicy&& run) {
  std::size_t events = 0;
  for (auto _ : state) {
    std::vector<StormNode*> nodes;
    const auto sim = make_storm(nodes);
    sim->start();
    auto total_received = [&nodes] {
      std::size_t total = 0;
      for (const StormNode* node : nodes) total += node->received;
      return total;
    };
    const bool ok =
        run(*sim, [&] { return total_received() >= kStormTarget; });
    benchmark::DoNotOptimize(ok);
    events += sim->metrics().events_processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_run"] =
      static_cast<double>(events) /
      static_cast<double>(state.iterations());
}

void BM_RunUntil_StdFunction(benchmark::State& state) {
  // The historical signature: the predicate crosses a std::function
  // boundary on every check (type erasure beats inlining).
  run_until_bench(state, [](sim::Simulation& sim, auto&& pred) {
    const std::function<bool()> erased = pred;
    return sim.run_until(erased, 100'000'000);
  });
}
BENCHMARK(BM_RunUntil_StdFunction)->Unit(benchmark::kMillisecond);

void BM_RunUntil_Template(benchmark::State& state) {
  // Same predicate, passed as-is: the templated run_until inlines it.
  run_until_bench(state, [](sim::Simulation& sim, auto&& pred) {
    return sim.run_until(pred, 100'000'000);
  });
}
BENCHMARK(BM_RunUntil_Template)->Unit(benchmark::kMillisecond);

void BM_RunUntil_Stride(benchmark::State& state) {
  // Check every k events: the O(n) scan stops dominating the event loop.
  const auto stride = static_cast<std::size_t>(state.range(0));
  run_until_bench(state, [stride](sim::Simulation& sim, auto&& pred) {
    return sim.run_until(pred, 100'000'000, stride);
  });
  state.counters["stride"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RunUntil_Stride)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// ---- raw queue comparison on the simulator's workload shape ----

struct EventLater {
  bool operator()(const sim::Event& a, const sim::Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

template <typename PushPop>
void queue_bench(benchmark::State& state, PushPop&& ops) {
  // Steady-state churn: keep ~4k events in flight, pop one, push one with
  // a bounded random delay — the delivery pattern of a running simulation.
  const std::size_t kInFlight = 4'096;
  const std::size_t kOps = 100'000;
  Rng rng(7);
  std::size_t processed = 0;
  for (auto _ : state) {
    processed += ops(rng, kInFlight, kOps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}

void BM_EventQueue_Calendar(benchmark::State& state) {
  queue_bench(state, [](Rng& rng, std::size_t in_flight, std::size_t ops) {
    sim::CalendarQueue queue;
    std::uint64_t seq = 0;
    SimTime now = 0;
    for (std::size_t i = 0; i < in_flight; ++i) {
      sim::Event e;
      e.time = now + 1 + static_cast<SimTime>(rng.uniform(200));
      e.seq = seq++;
      queue.push(std::move(e));
    }
    for (std::size_t i = 0; i < ops; ++i) {
      sim::Event e = queue.pop();
      now = e.time;
      e.time = now + 1 + static_cast<SimTime>(rng.uniform(200));
      e.seq = seq++;
      queue.push(std::move(e));
    }
    benchmark::DoNotOptimize(now);
    return ops;
  });
}
BENCHMARK(BM_EventQueue_Calendar);

void BM_EventQueue_PriorityQueue(benchmark::State& state) {
  queue_bench(state, [](Rng& rng, std::size_t in_flight, std::size_t ops) {
    std::priority_queue<sim::Event, std::vector<sim::Event>, EventLater>
        queue;
    std::uint64_t seq = 0;
    SimTime now = 0;
    for (std::size_t i = 0; i < in_flight; ++i) {
      sim::Event e;
      e.time = now + 1 + static_cast<SimTime>(rng.uniform(200));
      e.seq = seq++;
      queue.push(std::move(e));
    }
    for (std::size_t i = 0; i < ops; ++i) {
      sim::Event e = std::move(const_cast<sim::Event&>(queue.top()));
      queue.pop();
      now = e.time;
      e.time = now + 1 + static_cast<SimTime>(rng.uniform(200));
      e.seq = seq++;
      queue.push(std::move(e));
    }
    benchmark::DoNotOptimize(now);
    return ops;
  });
}
BENCHMARK(BM_EventQueue_PriorityQueue);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E0");
