// Fixture: byz-unbounded-map stays quiet when the insertion carries a
// documented bound.
#include <cstdint>
#include <map>

using ProcessId = std::uint32_t;

struct Message {
  std::uint64_t payload = 0;
};

struct Protocol {
  std::map<ProcessId, std::uint64_t> latest_;
  bool handle(ProcessId from, const Message& msg) {
    // scup-lint: bounded(keyed by sender id, at most one entry per process)
    latest_[from] = msg.payload;
    return true;
  }
};
