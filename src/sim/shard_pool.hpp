// ShardPool — the sharded engine's persistent worker pool.
//
// One pool per sharded Simulation: `workers` long-lived threads handle
// shard indices 1..workers while the calling thread (the simulation's
// owner) drains shard 0 inline, so a run with S shards uses exactly S
// cores and S == 1 spawns no threads at all. run() is a fork-join epoch:
// workers sleep on a condition variable between windows, and the
// mutex/condvar pair establishes the happens-before edges the engine's
// barrier discipline relies on (shard state is touched only by its owning
// thread inside run(), and only by the caller outside it).
//
// This file is the only sanctioned home for raw std::thread inside
// src/sim/ — scup-lint's det-shard-escape rule flags thread primitives
// anywhere else in the simulator.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scup::sim {

class ShardPool {
 public:
  /// Spawns `workers` threads (0 is valid and spawns none).
  explicit ShardPool(std::size_t workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Runs fn(0) on the calling thread and fn(i) for i in 1..workers on the
  /// pool, returning when every invocation has finished. Exceptions must
  /// be captured by fn itself (a throw out of fn terminates).
  void run(const std::function<void(std::size_t)>& fn);

  std::size_t workers() const { return threads_.size(); }

 private:
  void worker_loop(std::size_t index);

  std::mutex mutex_;
  std::condition_variable go_;
  std::condition_variable done_;
  // scup-guarded-by: mutex_
  const std::function<void(std::size_t)>* job_ = nullptr;
  // scup-guarded-by: mutex_
  std::uint64_t epoch_ = 0;
  // scup-guarded-by: mutex_
  std::size_t running_ = 0;
  // scup-guarded-by: mutex_
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace scup::sim
