// E15: lookahead windows. Three claims, one bench binary:
//
//  1. Window schedule (BM_Het / BM_WindowRatio): on a heterogeneous
//     topology — slow 6-tick base links with fast 1-tick intra-shard
//     lanes — per-pair lookahead must run at least 2x fewer (and 2x
//     wider) conservative windows than the pre-lookahead global-min
//     floor, at bit-identical results. Rows report windows, average
//     window width, and the send-time verdict counters (inline_verdicts,
//     provisional_sends) that prove the RNG work moved off the barrier.
//  2. Identity (BM_LookaheadIdentity): the full feature set (het links,
//     a partition window, pre-GST loss + duplication) at shard counts
//     {0, 1, 2, 3, 8} must produce bit-identical metrics and Notary
//     fingerprints; a mismatch fails the bench run.
//  3. Discovery sharing (BM_DiscoveryPayloadSharing): E12 scenario
//     shapes report the shared-payload counters of the discovery
//     broadcast plane — payload_shared / (payload_builds +
//     payload_shared) is the fraction of sends served by a cached
//     message instead of a fresh construction + size walk.
#include "bench_common.hpp"

#include "sim/simulation.hpp"

namespace scup {
namespace {

struct HetMsg final : sim::Message {
  HetMsg(int t, std::uint64_t g) : ttl(t), tag(g) {}
  int ttl;
  std::uint64_t tag;
  std::string type_name() const override { return "bench.het"; }
  std::size_t byte_size() const override { return 24; }
};

/// The heterogeneous-plane workload: the (id -> id+2) lane rides the fast
/// link overrides (intra-shard under an even/odd split), everything else
/// crosses shards on slow base links. Per-delivery hash work gives the
/// shards something to run in parallel.
class HetNode : public sim::Process {
 public:
  HetNode(std::size_t n, int ttl) : n_(n), ttl0_(ttl) {}

  void start() override {
    send((id() + 1) % n_, sim::make_message<HetMsg>(ttl0_, id() * 11 + 1));
    send((id() + 2) % n_, sim::make_message<HetMsg>(ttl0_, id() * 17 + 2));
    set_timer(1, 1 + id() % 4);
  }

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    const auto& m = dynamic_cast<const HetMsg&>(*msg);
    std::uint64_t h = m.tag;
    for (int round = 0; round < 32; ++round) h = hash_mix(h, from, id());
    digest_ ^= h;
    if (m.ttl > 0) {
      send((id() + 2) % n_, sim::make_message<HetMsg>(m.ttl - 1, h | 1));
      if (m.tag % 3 == 0) {
        send((id() + m.tag) % n_, sim::make_message<HetMsg>(m.ttl - 1, h));
      }
    }
  }

  void on_timer(int timer_id) override {
    digest_ ^= hash_mix(0x7133, static_cast<std::uint64_t>(timer_id), now());
    if (timer_id == 1 && ++reps_ < 6) set_timer(1, 3);
  }

  std::uint64_t digest_ = 0;

 private:
  std::size_t n_;
  int ttl0_;
  int reps_ = 0;
};

/// Slow base links (min 6) with fast (id -> id+2) lanes (min 1). Under an
/// even/odd shard split the fast lanes never cross shards, so the per-pair
/// window floor stays at 6 while the global min collapses to 1.
sim::NetworkConfig het_net(std::size_t n, std::uint64_t seed,
                           bool global_min) {
  sim::NetworkConfig net;
  net.gst = 0;
  net.min_delay = 6;
  net.max_delay = 12;
  net.seed = seed;
  net.lookahead_global_min = global_min;
  for (ProcessId i = 0; i < n; ++i) {
    net.link_overrides.push_back(
        {i, static_cast<ProcessId>((i + 2) % n), 1, 3});
  }
  return net;
}

struct HetResult {
  sim::SimMetrics metrics;
  std::uint64_t fingerprint = 0;
  std::uint64_t digest = 0;  // xor over nodes: order-insensitive checksum
  sim::ShardStats stats;
};

HetResult run_het(std::size_t n, std::size_t shards,
                  const sim::NetworkConfig& net, SimTime horizon) {
  sim::Simulation sim(n, net);
  std::vector<HetNode*> nodes;
  nodes.reserve(n);
  for (ProcessId i = 0; i < n; ++i) {
    nodes.push_back(&sim.emplace_process<HetNode>(i, n, 8));
  }
  sim.set_shards(shards);
  sim.start();
  sim.run_for(horizon);
  HetResult out;
  out.metrics = sim.metrics();
  out.fingerprint = sim.notary().fingerprint();
  for (const auto* node : nodes) out.digest ^= node->digest_;
  out.stats = sim.shard_stats();
  return out;
}

void report_stats(benchmark::State& state, const sim::ShardStats& stats) {
  state.counters["windows"] = static_cast<double>(stats.windows);
  state.counters["avg_window_width"] =
      stats.windows == 0 ? 0.0
                         : static_cast<double>(stats.window_width_sum) /
                               static_cast<double>(stats.windows);
  state.counters["inline_verdicts"] =
      static_cast<double>(stats.inline_verdicts);
  state.counters["provisional_sends"] =
      static_cast<double>(stats.provisional_sends);
  state.counters["staged_ops"] = static_cast<double>(stats.staged_ops);
}

void BM_Het(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const bool global_min = state.range(2) != 0;
  const SimTime horizon = 4'000;
  const sim::NetworkConfig net = het_net(n, 99, global_min);
  std::size_t events = 0;
  sim::ShardStats stats;
  for (auto _ : state) {
    const HetResult r = run_het(n, shards, net, horizon);
    benchmark::DoNotOptimize(r.digest);
    events += r.metrics.events_processed;
    stats = r.stats;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  report_stats(state, stats);
}
BENCHMARK(BM_Het)
    ->ArgNames({"n", "shards", "globalmin"})
    ->Args({256, 2, 0})
    ->Args({256, 2, 1})
    ->Args({256, 8, 0})
    ->Args({256, 8, 1})
    ->Args({1'024, 8, 0})
    ->Args({1'024, 8, 1})
    // Wall-clock rates: with pool threads doing the work, a CPU-time rate
    // would only meter the coordinating thread and overstate throughput.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_WindowRatio(benchmark::State& state) {
  // The headline A/B, self-checking: per-pair lookahead vs the global-min
  // floor must agree bit for bit AND run at least 2x fewer windows (2x
  // wider on average) on the heterogeneous plane.
  const std::size_t n = 256;
  const SimTime horizon = 4'000;
  double window_ratio = 0;
  double width_ratio = 0;
  sim::ShardStats wide_stats;
  for (auto _ : state) {
    const HetResult wide = run_het(n, 2, het_net(n, 7, false), horizon);
    const HetResult narrow = run_het(n, 2, het_net(n, 7, true), horizon);
    if (!(wide.metrics == narrow.metrics) ||
        wide.fingerprint != narrow.fingerprint ||
        wide.digest != narrow.digest) {
      state.SkipWithError("global-min vs per-pair identity violated");
      return;
    }
    if (wide.stats.windows == 0 ||
        narrow.stats.windows < 2 * wide.stats.windows) {
      state.SkipWithError("per-pair lookahead did not halve the windows");
      return;
    }
    window_ratio = static_cast<double>(narrow.stats.windows) /
                   static_cast<double>(wide.stats.windows);
    width_ratio = (static_cast<double>(wide.stats.window_width_sum) /
                   static_cast<double>(wide.stats.windows)) /
                  (static_cast<double>(narrow.stats.window_width_sum) /
                   static_cast<double>(narrow.stats.windows));
    wide_stats = wide.stats;
  }
  state.counters["window_ratio"] = window_ratio;
  state.counters["width_ratio"] = width_ratio;
  report_stats(state, wide_stats);
}
BENCHMARK(BM_WindowRatio)->Unit(benchmark::kMillisecond);

void BM_LookaheadIdentity(benchmark::State& state) {
  // Full feature set — het links, a partition window, pre-GST loss and
  // duplication (the four-draw plan) — at every shard count. run_for
  // drains the same event set in all modes, so legacy participates.
  const std::size_t n = 128;
  const SimTime horizon = 2'500;
  sim::NetworkConfig net = het_net(n, 23, false);
  net.gst = 400;
  net.pre_gst_max_delay = 60;
  net.pre_gst_drop = 0.2;
  net.pre_gst_duplicate = 0.2;
  sim::PartitionWindow cut;
  cut.side = NodeSet(n);
  for (ProcessId i = 0; i < n / 3; ++i) cut.side.add(i);
  cut.start = 50;
  cut.heal = 400;
  net.partitions.push_back(cut);
  std::size_t checks = 0;
  for (auto _ : state) {
    const HetResult base = run_het(n, 1, net, horizon);
    for (std::size_t shards : {0u, 2u, 3u, 8u}) {
      const HetResult r = run_het(n, shards, net, horizon);
      if (!(r.metrics == base.metrics) ||
          r.fingerprint != base.fingerprint || r.digest != base.digest) {
        state.SkipWithError("lookahead shard-count identity violated");
        return;
      }
      ++checks;
    }
  }
  state.counters["identity_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_LookaheadIdentity)->Unit(benchmark::kMillisecond);

void BM_DiscoveryPayloadSharing(benchmark::State& state) {
  // E12 scenario shapes through the shared-payload discovery plane. The
  // requery shape retransmits DISCOVER/KNOWN on a timer, which is where
  // payload sharing pays: every retransmission hits the cache.
  const auto protocol = static_cast<core::ProtocolKind>(state.range(0));
  const bool with_loss = state.range(1) != 0;
  double builds = 0;
  double shared = 0;
  std::size_t decided = 0;
  for (auto _ : state) {
    core::ChurnPartitionParams p;
    p.protocol = protocol;
    p.seed = 3;
    p.with_partition = true;
    if (with_loss) p.pre_gst_drop = 0.2;
    core::ScenarioConfig cfg = core::churn_partition_scenario(p);
    cfg.shards = 2;
    const core::ScenarioReport r = core::run_scenario(cfg);
    if (!r.all_decided) {
      state.SkipWithError("scenario failed to decide");
      return;
    }
    builds = static_cast<double>(
        r.metrics.protocol_counter(sim::ProtoCounter::kDiscoveryPayloadBuilds));
    shared = static_cast<double>(
        r.metrics.protocol_counter(sim::ProtoCounter::kDiscoveryPayloadShared));
    ++decided;
  }
  state.counters["payload_builds"] = builds;
  state.counters["payload_shared"] = shared;
  state.counters["sharing_ratio"] =
      builds + shared == 0 ? 0.0 : shared / (builds + shared);
  state.counters["decided_runs"] = static_cast<double>(decided);
}
BENCHMARK(BM_DiscoveryPayloadSharing)
    ->ArgNames({"proto", "loss"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E15");
