#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace scup {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    const auto v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_range(3, 2), std::invalid_argument);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, SampleIdsDistinctAndInRange) {
  Rng rng(5);
  auto ids = rng.sample_ids(20, 7);
  EXPECT_EQ(ids.size(), 7u);
  std::set<ProcessId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 7u);
  for (ProcessId id : ids) EXPECT_LT(id, 20u);
  EXPECT_THROW(rng.sample_ids(3, 4), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitIndependence) {
  Rng a(13);
  Rng b = a.split();
  // The split stream should not replay the parent stream.
  int same = 0;
  Rng a2(13);
  (void)a2.next_u64();  // advance past the split draw
  for (int i = 0; i < 64; ++i) {
    if (b.next_u64() == a2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, HashMixDeterministicAndSpread) {
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(1, 2, 4));
  EXPECT_NE(hash_mix(0), hash_mix(1));
}

}  // namespace
}  // namespace scup
