// Unit tests for the SINK algorithm (cup::SinkDiscovery) driven through a
// fake ProtocolHost, without a simulation: the step-3 matching rules, the
// incremental admission machinery (memoized verdicts + dirty-set recheck)
// against a recompute-from-scratch reference, and the shared gossip-reply
// cache. The simulation-level behaviour is covered by test_sink_detector
// and test_sink_convergence.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "cup/sink_discovery.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/generators.hpp"
#include "sim/host.hpp"

namespace scup::cup {
namespace {

class FakeHost : public sim::ProtocolHost {
 public:
  FakeHost(ProcessId self, std::size_t n, std::size_t f)
      : self_(self), n_(n), f_(f) {}

  ProcessId self() const override { return self_; }
  std::size_t universe() const override { return n_; }
  std::size_t fault_threshold() const override { return f_; }
  void host_send(ProcessId to, sim::MessagePtr msg) override {
    sent.emplace_back(to, std::move(msg));
  }
  void host_set_timer(int, SimTime) override {}
  SimTime host_now() const override { return 0; }
  std::uint64_t host_sign(std::uint64_t) const override { return 0; }
  bool host_verify(ProcessId, std::uint64_t, std::uint64_t) const override {
    return true;
  }

  std::vector<std::pair<ProcessId, sim::MessagePtr>> sent;

 private:
  ProcessId self_;
  std::size_t n_;
  std::size_t f_;
};

/// Builds a discovery at process 0 over a triangle {0,1,2} (f = 1) and
/// brings it to the published-KNOWN state.
struct TriangleFixture {
  static constexpr std::size_t kN = 8;
  FakeHost host{0, kN, 1};
  SinkDiscovery discovery{host, NodeSet(kN, {1, 2})};

  TriangleFixture() {
    discovery.start();
    discovery.handle(1, DiscoverMsg({1, NodeSet(kN, {0, 2})}));
    discovery.handle(2, DiscoverMsg({2, NodeSet(kN, {0, 1})}));
    // Candidate is the triangle and both members responded, so KNOWN is out.
    EXPECT_EQ(discovery.candidate_set(), NodeSet(kN, {0, 1, 2}));
  }
};

TEST(SinkDiscoveryMatch, OutsiderDisagreementDoesNotFlipProbablyNonSink) {
  TriangleFixture fx;
  // f+1 = 2 chatty outsiders report KNOWN sets different from our
  // candidate. Only candidate members' views bear on whether the candidate
  // is a self-contained sink; outsiders must be ignored.
  fx.discovery.handle(5, KnownMsg(NodeSet(TriangleFixture::kN, {5, 6})));
  fx.discovery.handle(6, KnownMsg(NodeSet(TriangleFixture::kN, {5, 6, 7})));
  EXPECT_FALSE(fx.discovery.probably_non_sink());

  // The direct match must still complete from the members' reports.
  fx.discovery.handle(1, KnownMsg(NodeSet(TriangleFixture::kN, {0, 1, 2})));
  fx.discovery.handle(2, KnownMsg(NodeSet(TriangleFixture::kN, {0, 1, 2})));
  EXPECT_TRUE(fx.discovery.finished());
  EXPECT_EQ(fx.discovery.sink(), NodeSet(TriangleFixture::kN, {0, 1, 2}));
}

TEST(SinkDiscoveryMatch, MemberDisagreementStillFlipsProbablyNonSink) {
  TriangleFixture fx;
  // Both *members* report supersets: strong evidence we are not in a sink.
  fx.discovery.handle(1, KnownMsg(NodeSet(TriangleFixture::kN, {0, 1, 2, 3})));
  fx.discovery.handle(2, KnownMsg(NodeSet(TriangleFixture::kN, {0, 1, 2, 3})));
  EXPECT_TRUE(fx.discovery.probably_non_sink());
  EXPECT_FALSE(fx.discovery.finished());
}

TEST(SinkDiscoveryMatch, OutsiderAgreementDoesNotCountTowardMatching) {
  TriangleFixture fx;
  // One member matches; two outsiders echo the candidate. 1 (self) + 1
  // member = 2 >= |V| - f = 2 only after the member's report — outsider
  // echoes alone must not complete the match.
  fx.discovery.handle(5, KnownMsg(NodeSet(TriangleFixture::kN, {0, 1, 2})));
  fx.discovery.handle(6, KnownMsg(NodeSet(TriangleFixture::kN, {0, 1, 2})));
  EXPECT_FALSE(fx.discovery.finished());
  fx.discovery.handle(2, KnownMsg(NodeSet(TriangleFixture::kN, {0, 1, 2})));
  EXPECT_TRUE(fx.discovery.finished());
}

TEST(SinkDiscoveryGossip, ReplyIsSharedUntilCertificatesChange) {
  const std::size_t n = 8;
  FakeHost host(0, n, 1);
  SinkDiscovery discovery(host, NodeSet(n, {1, 2}));
  discovery.start();

  const auto gossip_replies = [&] {
    std::vector<const CertGossipMsg*> replies;
    for (const auto& [to, msg] : host.sent) {
      if (const auto* g = dynamic_cast<const CertGossipMsg*>(msg.get())) {
        replies.push_back(g);
      }
    }
    return replies;
  };

  // Two DISCOVERs carrying already-known certificates: the replies must be
  // the same shared immutable object, not two map copies.
  discovery.handle(1, DiscoverMsg({0, NodeSet(n, {1, 2})}));
  discovery.handle(2, DiscoverMsg({0, NodeSet(n, {1, 2})}));
  auto replies = gossip_replies();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], replies[1]);

  // A certificate that adds knowledge invalidates the cached reply.
  discovery.handle(3, DiscoverMsg({3, NodeSet(n, {0})}));
  replies = gossip_replies();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_NE(replies[1], replies[2]);
  EXPECT_EQ(replies[2]->certs.count(3), 1u);
}

/// Recompute-from-scratch reference for the candidate set: self, own PD,
/// plus every reachable node with f+1 vertex-disjoint certified paths.
NodeSet reference_candidate(const SinkDiscovery& d, ProcessId self,
                            const NodeSet& pd, std::size_t f) {
  const auto& g = d.certified_graph();
  const NodeSet reachable = g.reachable_from(self);
  NodeSet expected = pd;
  expected.add(self);
  for (ProcessId j : reachable) {
    if (j == self || pd.contains(j)) continue;
    if (graph::has_k_vertex_disjoint_paths(g, self, j, f + 1, reachable)) {
      expected.add(j);
    }
  }
  return expected;
}

class SinkDiscoveryEquivalenceTest
    : public ::testing::TestWithParam<std::size_t> {};

// f = 1 exercises the dominator-tree batch path, f = 2 the max-flow path
// with cut-certificate caching; both must agree with the from-scratch
// reference after every single certificate merge.
INSTANTIATE_TEST_SUITE_P(FaultThresholds, SinkDiscoveryEquivalenceTest,
                         ::testing::Values(1, 2));

TEST_P(SinkDiscoveryEquivalenceTest, MatchesFromScratchRecomputeOnRandomFeeds) {
  const std::size_t f = GetParam();
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    graph::KosrGenParams params;
    params.sink_size = 8;
    params.non_sink_size = 8;
    params.k = 2 * f + 1;
    params.seed = 100 + static_cast<std::uint64_t>(trial);
    const auto g = graph::random_kosr_graph(params);
    const std::size_t n = g.node_count();

    // Observe from a non-sink process (it reaches both sink and non-sink
    // nodes, so negative verdicts matter) and from a sink member.
    for (const ProcessId self : {static_cast<ProcessId>(n - 1), ProcessId{0}}) {
      FakeHost host(self, n, f);
      SinkDiscovery discovery(host, g.pd_of(self));
      discovery.start();

      // Feed single-owner certificates in random order, interleaved with
      // updates, and compare against the reference after every step.
      std::vector<ProcessId> order;
      for (ProcessId v = 0; v < n; ++v) {
        if (v != self) order.push_back(v);
      }
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.uniform_range(0, i - 1)]);
      }
      for (ProcessId owner : order) {
        std::map<ProcessId, NodeSet> certs;
        certs.emplace(owner, g.pd_of(owner));
        discovery.handle(owner, CertGossipMsg(std::move(certs)));
        ASSERT_EQ(discovery.candidate_set(),
                  reference_candidate(discovery, self, g.pd_of(self), f))
            << "trial=" << trial << " self=" << self << " owner=" << owner;
      }
      // The incremental run must not have paid more flow evaluations than
      // the recompute-everything baseline, and redundant deliveries must
      // hit the memoized verdicts.
      const auto& stats = discovery.stats();
      EXPECT_LE(stats.flow_evals, stats.flow_evals_baseline);

      // Replaying every certificate is pure noise: no new edges, no new
      // evaluations.
      const auto evals_before = stats.flow_evals;
      const auto dirty_before = stats.dirty_updates;
      for (ProcessId owner : order) {
        std::map<ProcessId, NodeSet> certs;
        certs.emplace(owner, g.pd_of(owner));
        discovery.handle(owner, CertGossipMsg(std::move(certs)));
      }
      EXPECT_EQ(discovery.stats().flow_evals, evals_before);
      EXPECT_EQ(discovery.stats().dirty_updates, dirty_before);
    }
  }
}

TEST(SinkDiscoveryIncremental, CutCertificateInvalidatedByEdgeFromEarlierEpoch) {
  // Regression: a frontier-crossing edge must void a cached negative
  // verdict even when it arrives in an epoch where the rejected node is
  // outside the `affected` set (the crossing and the path completion can
  // land in different batches). Here node 3 is first rejected with
  // separator {2} (only path 0→1→2→3); the bypass is then built in two
  // steps — 5→6 first (crosses the frontier, but nothing reaches 3 through
  // it yet), 6→3 second. A cut checked only against the current batch
  // would keep 3 rejected forever.
  const std::size_t n = 8;
  FakeHost host(0, n, 1);
  SinkDiscovery discovery(host, NodeSet(n, {1, 5}));
  discovery.start();
  discovery.handle(1, DiscoverMsg({1, NodeSet(n, {2})}));
  discovery.handle(2, DiscoverMsg({2, NodeSet(n, {3, 4})}));
  discovery.handle(4, DiscoverMsg({4, NodeSet(n, {3})}));
  EXPECT_EQ(discovery.candidate_set(), NodeSet(n, {0, 1, 5}))
      << "3 must be rejected while 2 separates it";
  discovery.handle(5, DiscoverMsg({5, NodeSet(n, {6})}));
  discovery.handle(6, DiscoverMsg({6, NodeSet(n, {3})}));
  // Ground truth now has 0→1→2→3 and 0→5→6→3.
  EXPECT_TRUE(discovery.candidate_set().contains(3));
  EXPECT_EQ(discovery.candidate_set(),
            reference_candidate(discovery, 0, NodeSet(n, {1, 5}), 1));
}

TEST(SinkDiscoveryIncremental, MemoizedVerdictsSkipUnaffectedNodes) {
  // Line graph into a far island: 0 -> 1 -> 2 -> 3 with f = 1, so nothing
  // beyond PD is ever admitted (a single path is not 2 disjoint paths).
  // Certificates about the far end must not re-evaluate near nodes that no
  // new path can reach.
  const std::size_t n = 6;
  FakeHost host(0, n, 1);
  SinkDiscovery discovery(host, NodeSet(n, {1}));
  discovery.start();
  discovery.handle(1, DiscoverMsg({1, NodeSet(n, {2})}));
  discovery.handle(2, DiscoverMsg({2, NodeSet(n, {3})}));
  const auto baseline = discovery.stats().flow_evals_baseline;
  EXPECT_GT(baseline, 0u);
  // Node 3's certificate about 4 only affects {4}: nodes 2 and 3 keep
  // their memoized negative verdicts.
  discovery.handle(3, DiscoverMsg({3, NodeSet(n, {4})}));
  const auto& stats = discovery.stats();
  EXPECT_GT(stats.memoized_skips, 0u);
  EXPECT_EQ(stats.flow_evals, 0u);  // degree bound prunes every check here
  EXPECT_GT(stats.degree_prunes, 0u);
  EXPECT_EQ(discovery.candidate_set(), NodeSet(n, {0, 1}));
}

}  // namespace
}  // namespace scup::cup
