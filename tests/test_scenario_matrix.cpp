// ScenarioMatrix: deterministic parallel scenario execution, the churn +
// partition scenario family, and crash-fault injection through
// ScenarioConfig. The key contracts:
//  - same seed => byte-identical behaviour (SimMetrics, notary log,
//    decision times) across independent runs;
//  - the parallel matrix equals the serial matrix cell by cell;
//  - consensus properties survive churn, partitions, pre-GST loss and
//    crash faults (they are theorems; any failure here is a correctness
//    regression).
#include "core/scenario_matrix.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "bftcup/bftcup_node.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "sim/simulation.hpp"

namespace scup::core {
namespace {

ChurnPartitionParams small_params(ProtocolKind protocol, std::uint64_t seed) {
  ChurnPartitionParams p;
  p.n = 12;
  p.f = 1;
  p.protocol = protocol;
  p.late_fraction = 0.5;
  p.late_window = 1'000;
  p.with_partition = true;
  p.gst = 1'500;
  p.seed = seed;
  return p;
}

bool reports_identical(const ScenarioReport& a, const ScenarioReport& b) {
  return a.all_decided == b.all_decided && a.agreement == b.agreement &&
         a.validity == b.validity && a.decided_value == b.decided_value &&
         a.first_decision == b.first_decision &&
         a.last_decision == b.last_decision &&
         a.decision_times == b.decision_times &&
         a.sd_all_returned == b.sd_all_returned &&
         a.sd_sink_exact == b.sd_sink_exact &&
         a.sd_flags_correct == b.sd_flags_correct &&
         a.true_sink == b.true_sink && a.metrics == b.metrics &&
         a.notary_fingerprint == b.notary_fingerprint &&
         a.end_time == b.end_time;
}

TEST(ParallelCellsTest, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_cells(hits.size(), 4,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelCellsTest, PropagatesTheFirstException) {
  EXPECT_THROW(parallel_cells(64, 4,
                              [](std::size_t i) {
                                if (i == 13) throw std::runtime_error("boom");
                              }),
               std::runtime_error);
}

TEST(DeterminismTest, SameSeedSameMetricsAndNotaryLog) {
  // Two independent runs of the same seeded simulation must agree on every
  // observable: the metrics block and the notary's signing trace (which
  // fingerprints the full protocol behaviour, not just traffic totals).
  auto run = [](std::uint64_t seed) {
    graph::KosrGenParams gen;
    gen.sink_size = 5;
    gen.non_sink_size = 3;
    gen.k = 3;
    gen.seed = 11;
    const auto g = graph::random_kosr_graph(gen);
    sim::NetworkConfig net;
    net.seed = seed;
    sim::Simulation sim(g.node_count(), net);
    // BFT-CUP exercises the notary (PBFT prepares/commits are signed), so
    // the log fingerprints real protocol behaviour.
    std::vector<bftcup::BftCupNode*> nodes(g.node_count());
    for (ProcessId i = 0; i < g.node_count(); ++i) {
      nodes[i] = &sim.emplace_process<bftcup::BftCupNode>(i, g.pd_of(i), 1,
                                                          default_value(i));
    }
    sim.start();
    sim.run_until(
        [&] {
          for (auto* node : nodes) {
            if (!node->decided()) return false;
          }
          return true;
        },
        2'000'000);
    return std::make_pair(sim.metrics(), sim.notary().log());
  };
  const auto [metrics_a, log_a] = run(7);
  const auto [metrics_b, log_b] = run(7);
  EXPECT_EQ(metrics_a, metrics_b);
  ASSERT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);

  const auto [metrics_c, log_c] = run(8);  // different seed, different run
  EXPECT_NE(log_a, log_c);
}

TEST(DeterminismTest, RunScenarioIsAPureFunctionOfItsConfig) {
  const ScenarioConfig cfg =
      churn_partition_scenario(small_params(ProtocolKind::kStellarSd, 5));
  const ScenarioReport a = run_scenario(cfg);
  const ScenarioReport b = run_scenario(cfg);
  EXPECT_TRUE(reports_identical(a, b));
}

TEST(ScenarioMatrixTest, ParallelEqualsSerialCellByCell) {
  ScenarioMatrix matrix;
  matrix
      .add_variant("stellar/churn",
                   [](std::uint64_t seed) {
                     return churn_partition_scenario(
                         small_params(ProtocolKind::kStellarSd, seed));
                   })
      .add_variant("bftcup/churn",
                   [](std::uint64_t seed) {
                     return churn_partition_scenario(
                         small_params(ProtocolKind::kBftCup, seed));
                   })
      .seeds({1, 2, 3});
  const auto serial = matrix.run(1);
  const auto parallel = matrix.run(4);
  ASSERT_EQ(serial.size(), matrix.cell_count());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].variant, parallel[i].variant);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_TRUE(reports_identical(serial[i].report, parallel[i].report))
        << "cell " << i << " (" << serial[i].variant << ", seed "
        << serial[i].seed << ") diverged between serial and parallel runs";
  }
}

TEST(ScenarioMatrixTest, SummaryAggregates) {
  ScenarioMatrix matrix;
  matrix
      .add_variant("stellar/churn",
                   [](std::uint64_t seed) {
                     return churn_partition_scenario(
                         small_params(ProtocolKind::kStellarSd, seed));
                   })
      .seeds({1, 2});
  const auto results = matrix.run(2);
  const MatrixSummary s = ScenarioMatrix::summarize(results);
  EXPECT_EQ(s.cells, 2u);
  EXPECT_EQ(s.decided_cells, 2u);
  EXPECT_EQ(s.agreement_cells, 2u);
  EXPECT_EQ(s.validity_cells, 2u);
  EXPECT_DOUBLE_EQ(s.decision_rate, 1.0);
  EXPECT_LE(s.p50_decision, s.p99_decision);
  EXPECT_LE(s.p99_decision, s.max_decision);
  EXPECT_GT(s.messages, 0u);
  EXPECT_FALSE(s.summary().empty());
}

class ChurnPartitionTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ChurnPartitionTest, ConsensusSurvivesChurnAndPartition) {
  const ScenarioConfig cfg =
      churn_partition_scenario(small_params(GetParam(), 3));
  // The family must actually exercise churn: some activation is late.
  SimTime latest_activation = 0;
  for (SimTime t : cfg.activations) {
    latest_activation = std::max(latest_activation, t);
  }
  EXPECT_GT(latest_activation, 0);
  ASSERT_FALSE(cfg.net.partitions.empty());

  const ScenarioReport r = run_scenario(cfg);
  EXPECT_TRUE(r.all_decided);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  // Half the sink was unreachable until GST, so no full decision round can
  // complete before the heal.
  EXPECT_GE(r.last_decision, cfg.net.gst);
}

TEST_P(ChurnPartitionTest, ConsensusSurvivesPreGstLoss) {
  ChurnPartitionParams p = small_params(GetParam(), 4);
  p.pre_gst_drop = 0.3;
  const ScenarioConfig cfg = churn_partition_scenario(p);
  EXPECT_GT(cfg.discovery_requery, 0);  // loss enables retransmission
  const ScenarioReport r = run_scenario(cfg);
  EXPECT_TRUE(r.all_decided);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_GT(r.metrics.messages_dropped, 0u);
}

TEST_P(ChurnPartitionTest, CrashFaultInjectionConsumesTheBudget) {
  ChurnPartitionParams p = small_params(GetParam(), 6);
  p.with_crash = true;  // one sink member crash-stops at gst/2 ...
  const ScenarioConfig cfg = churn_partition_scenario(p);
  EXPECT_TRUE(cfg.faulty.empty());  // ... instead of a Byzantine placement
  ASSERT_EQ(cfg.crashes.size(), 1u);
  const ScenarioReport r = run_scenario(cfg);
  EXPECT_TRUE(r.all_decided);  // every surviving process still decides
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, ChurnPartitionTest,
                         ::testing::Values(ProtocolKind::kStellarSd,
                                           ProtocolKind::kBftCup));

TEST(ScenarioConfigTest, CrashBudgetIsEnforced) {
  ChurnPartitionParams p = small_params(ProtocolKind::kBftCup, 1);
  ScenarioConfig cfg = churn_partition_scenario(p);
  // faulty already holds f = 1 processes; crashing another correct process
  // would exceed the budget.
  ProcessId extra = 0;
  while (cfg.faulty.contains(extra)) ++extra;
  cfg.crashes.emplace_back(extra, 100);
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace scup::core
