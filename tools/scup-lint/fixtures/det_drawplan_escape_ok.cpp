// Fixture: the same stream touches are sanctioned inside a marked drawplan
// region, where the position accounting brackets every on_send draw.

void verdict(Sim& sim_) {
  // drawplan begin(the audited verdict site: position delta is checked
  // against draws_per_send after every on_send)
  StreamRng& stream = sim_.net_streams_[0];
  stream.next_u64();
  // drawplan end
}
