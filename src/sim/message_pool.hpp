// MessagePool: the per-Simulation slab arena under make_message().
//
// A broadcast plane at 10k-node scale performs millions of message
// constructions per run; with plain make_shared each one is an allocator
// round-trip. The pool carves fixed-size blocks out of 64 KiB slabs, keyed
// by size class, with a per-slab freelist and *wholesale* reclamation: when
// every block of a slab has been released, the slab's freelist is discarded
// in one step and the slab parks on an empty list any size class can
// reformat and reuse. Steady state (messages born and dying at a bounded
// in-flight population) touches the system allocator zero times.
//
// Ownership: MessagePtr stays a vanilla std::shared_ptr — make_message uses
// std::allocate_shared with a PoolAllocator, so message object and control
// block share one pool block and call sites are oblivious. The allocator
// copy stored in every control block holds a shared_ptr to the pool's
// internal State, so blocks can be released safely on any thread even after
// the owning Simulation (and MessagePool handle) is destroyed.
// See DESIGN.md §4.9.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace scup::sim {

class MessagePool {
 public:
  struct Stats {
    /// Blocks handed out from slabs / released back to them.
    std::uint64_t pool_allocs = 0;
    std::uint64_t pool_frees = 0;
    /// Requests larger than the biggest size class, served by operator new.
    std::uint64_t fallback_allocs = 0;
    /// Slabs created from the system allocator vs. reformatted empties.
    std::uint64_t slabs_created = 0;
    std::uint64_t slabs_recycled = 0;
    /// Slab storage currently held (never shrinks while the pool lives).
    std::uint64_t bytes_reserved = 0;
  };

  MessagePool();
  ~MessagePool();
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  Stats stats() const;

  /// The pool bound to the calling thread, or nullptr. make_message reads
  /// this; Simulation run loops and shard drains bind their pool via Scope.
  static MessagePool* current();

  /// RAII thread-local binding. Scopes nest; each restores the previous
  /// binding on destruction. Binding nullptr disables pooling inside.
  class Scope {
   public:
    explicit Scope(MessagePool* pool);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    MessagePool* prev_;
  };

  struct State;

 private:
  template <typename T>
  friend class PoolAllocator;

  std::shared_ptr<State> state_;
};

/// Allocate/deallocate raw blocks against a pool State kept alive by the
/// handle. Thread-safe; deallocate accepts blocks from any thread.
void* pool_allocate(const std::shared_ptr<MessagePool::State>& state,
                    std::size_t bytes);
void pool_deallocate(const std::shared_ptr<MessagePool::State>& state,
                     void* ptr, std::size_t bytes);

/// Minimal std allocator over a MessagePool, for std::allocate_shared. The
/// shared State handle makes every copy (including the one hidden in each
/// shared_ptr control block) a keep-alive for the slabs it points into.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(MessagePool& pool) : state_(pool.state_) {}
  template <typename U>
  explicit(false) PoolAllocator(const PoolAllocator<U>& other)
      : state_(other.state_) {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "pool blocks are max_align_t-aligned");
    return static_cast<T*>(pool_allocate(state_, n * sizeof(T)));
  }
  void deallocate(T* ptr, std::size_t n) {
    pool_deallocate(state_, ptr, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return state_ == other.state_;
  }

 private:
  template <typename U>
  friend class PoolAllocator;

  std::shared_ptr<MessagePool::State> state_;
};

}  // namespace scup::sim
