// Tokenizer + per-TU parser: recovers the model in analyze.hpp from one
// source file. Built on scup-lint's comment/string-aware scanner, so rule
// logic never sees comment or literal text.
//
// The parser is a single pass over the token stream with an explicit scope
// stack (namespace / class / function / block / other). It is a *recoverer*,
// not a grammar: constructs it cannot classify degrade to inert tokens
// rather than errors (see "known unsoundness" in analyze.hpp). Everything
// here is TU-local; linking happens in project.cpp.
#include <array>
#include <cctype>
#include <string>
#include <unordered_set>
#include <vector>

#include "analyze_internal.hpp"

namespace scup::analyze {

namespace {

using scup::lint::ScannedLine;

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Two-character operators merged into one token. << and >> are left as
/// single characters so template angle brackets stay countable.
bool merge2(char a, char b) {
  static const std::unordered_set<std::string> kOps = {
      "::", "->", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
      "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
  };
  return kOps.count(std::string{a, b}) != 0;
}

std::vector<Tok> tokenize(const std::vector<ScannedLine>& lines) {
  std::vector<Tok> toks;
  bool in_preproc = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    const std::size_t first = code.find_first_not_of(" \t");
    const bool continues = !code.empty() && code.back() == '\\';
    if (in_preproc) {
      in_preproc = continues;
      continue;
    }
    if (first != std::string::npos && code[first] == '#') {
      in_preproc = continues;
      continue;
    }
    std::size_t p = 0;
    while (p < code.size()) {
      const char c = code[p];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++p;
        continue;
      }
      if (ident_start(c)) {
        std::size_t q = p + 1;
        while (q < code.size() && ident_char(code[q])) ++q;
        toks.push_back(Tok{code.substr(p, q - p), li + 1, true});
        p = q;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t q = p + 1;
        while (q < code.size() &&
               (ident_char(code[q]) || code[q] == '.' || code[q] == '\'')) {
          ++q;
        }
        toks.push_back(Tok{code.substr(p, q - p), li + 1, false});
        p = q;
        continue;
      }
      if (p + 1 < code.size() && merge2(c, code[p + 1])) {
        toks.push_back(Tok{code.substr(p, 2), li + 1, false});
        p += 2;
        continue;
      }
      toks.push_back(Tok{std::string(1, c), li + 1, false});
      ++p;
    }
  }
  return toks;
}

// ---- annotations ----

constexpr std::string_view kOwnerMarker = "scup-owner:";
constexpr std::string_view kGuardedMarker = "scup-guarded-by:";
constexpr std::string_view kSanitizeMarker = "scup-sanitize:";
constexpr std::string_view kAnalyzeMarker = "scup-analyze:";

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

/// First identifier-shaped word at/after `pos` (hyphens allowed, for the
/// scup-analyze form names).
std::string word_after(const std::string& s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  std::size_t e = pos;
  while (e < s.size() && (ident_char(s[e]) || s[e] == '-')) ++e;
  return s.substr(pos, e - pos);
}

void bad_annotation(TU& out, std::size_t line, const std::string& what) {
  out.parse_findings.push_back(Finding{
      out.path, line, std::string(kRuleUnknownAnnotation),
      "malformed scup-analyze annotation: " + what});
}

void parse_comment_annotations(const std::string& comment, std::size_t line,
                               TU& out) {
  std::size_t pos;
  if ((pos = comment.find(kOwnerMarker)) != std::string::npos) {
    const std::string kind = word_after(comment, pos + kOwnerMarker.size());
    if (kind == "shard" || kind == "barrier" || kind == "engine") {
      out.annotations.push_back(Annotation{AnnKind::kOwner, kind, line});
    } else {
      bad_annotation(out, line,
                     "scup-owner expects shard|barrier|engine, got '" + kind +
                         "'");
    }
  }
  if ((pos = comment.find(kGuardedMarker)) != std::string::npos) {
    const std::string mtx = word_after(comment, pos + kGuardedMarker.size());
    if (!mtx.empty() && mtx.find('-') == std::string::npos) {
      out.annotations.push_back(Annotation{AnnKind::kGuardedBy, mtx, line});
    } else {
      bad_annotation(out, line, "scup-guarded-by expects a mutex identifier");
    }
  }
  if ((pos = comment.find(kSanitizeMarker)) != std::string::npos) {
    const std::string reason =
        trim(std::string_view(comment).substr(pos + kSanitizeMarker.size()));
    if (!reason.empty()) {
      out.annotations.push_back(Annotation{AnnKind::kSanitize, reason, line});
    } else {
      bad_annotation(out, line, "scup-sanitize requires a reason");
    }
  }
  pos = comment.find(kAnalyzeMarker);
  while (pos != std::string::npos) {
    const std::string name = word_after(comment, pos + kAnalyzeMarker.size());
    AnnKind kind = AnnKind::kOwnerOk;
    bool known = true;
    if (name == "shard-entry") {
      kind = AnnKind::kShardEntry;
    } else if (name == "barrier-entry") {
      kind = AnnKind::kBarrierEntry;
    } else if (name == "owner-ok") {
      kind = AnnKind::kOwnerOk;
    } else if (name == "requires-lock") {
      kind = AnnKind::kRequiresLock;
    } else {
      known = false;
    }
    // Require a non-empty, paren-balanced argument (the why / the mutex).
    std::string value;
    bool ok = known;
    if (ok) {
      std::size_t i = comment.find(name, pos) + name.size();
      while (i < comment.size() &&
             std::isspace(static_cast<unsigned char>(comment[i])) != 0) {
        ++i;
      }
      if (i >= comment.size() || comment[i] != '(') {
        ok = false;
      } else {
        int depth = 0;
        std::size_t k = i;
        for (; k < comment.size(); ++k) {
          if (comment[k] == '(') ++depth;
          if (comment[k] == ')' && --depth == 0) break;
        }
        ok = depth == 0 && k > i + 1;
        if (ok) value = trim(comment.substr(i + 1, k - i - 1));
      }
    }
    if (ok && kind == AnnKind::kRequiresLock) {
      // The argument names a mutex; it must be identifier-shaped.
      for (char c : value) ok = ok && ident_char(c);
      ok = ok && !value.empty();
    }
    if (ok) {
      out.annotations.push_back(Annotation{kind, value, line});
    } else {
      bad_annotation(
          out, line,
          "'" + name +
              "' (expected shard-entry|barrier-entry|owner-ok|requires-lock, "
              "each with a non-empty parenthesized argument)");
    }
    pos = comment.find(kAnalyzeMarker, pos + kAnalyzeMarker.size());
  }
}

/// Lexical begin/end regions kept from the scup-lint contract so the
/// ownership model can be cross-checked against them.
void collect_regions(const std::vector<ScannedLine>& lines,
                     std::string_view marker, std::vector<Region>& out) {
  std::size_t open = 0;
  bool in_region = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& c = lines[i].comment;
    const std::size_t pos = c.find(marker);
    if (pos == std::string::npos) continue;
    const std::string word = word_after(c, pos + marker.size());
    if (word == "begin" && !in_region) {
      in_region = true;
      open = i + 1;
    } else if (word == "end" && in_region) {
      in_region = false;
      out.push_back(Region{open, i + 1});
    }
  }
}

// ---- parser ----

bool is_keyword(const std::string& s) {
  static const std::unordered_set<std::string> kKw = {
      "alignas",   "alignof",  "auto",      "bool",         "break",
      "case",      "catch",    "char",      "class",        "const",
      "constexpr", "consteval","constinit", "continue",     "decltype",
      "default",   "delete",   "do",        "double",       "else",
      "enum",      "explicit", "extern",    "false",        "final",
      "float",     "for",      "friend",    "goto",         "if",
      "inline",    "int",      "long",      "mutable",      "namespace",
      "new",       "noexcept", "nullptr",   "operator",     "override",
      "private",   "protected","public",    "register",     "return",
      "short",     "signed",   "sizeof",    "static",       "struct",
      "switch",    "template", "this",      "thread_local", "throw",
      "true",      "try",      "typedef",   "typeid",       "typename",
      "union",     "unsigned", "using",     "virtual",      "void",
      "volatile",  "while",
  };
  return kKw.count(s) != 0;
}

bool analyzable_ident(const Tok& t) { return t.ident && !is_keyword(t.text); }

enum class ScopeKind { kNamespace, kClass, kFunction, kBlock, kOther };

struct Scope {
  ScopeKind kind;
  std::string name;
};

struct Parser {
  TU& out;
  std::vector<Scope> stack;
  std::vector<Tok> decl;
  int dparen = 0;
  FunctionSym* fn = nullptr;  ///< innermost open function, if any

  explicit Parser(TU& tu) : out(tu) {
    stack.push_back(Scope{ScopeKind::kNamespace, ""});
  }

  bool in_function() const { return fn != nullptr; }

  std::string enclosing_class() const {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == ScopeKind::kClass) return it->name;
    }
    return "";
  }

  /// Leading `else` / `do` are control glue, not statement content.
  static std::size_t stmt_start(const std::vector<Tok>& toks) {
    std::size_t b = 0;
    while (b < toks.size() &&
           (toks[b].text == "else" || toks[b].text == "do")) {
      ++b;
    }
    return b;
  }

  static bool contains(const std::vector<Tok>& toks, std::string_view w) {
    for (const Tok& t : toks) {
      if (t.text == w) return true;
    }
    return false;
  }

  /// Index of the first '(' at declaration paren-depth 0, or npos.
  static std::size_t top_level_paren(const std::vector<Tok>& toks) {
    int depth = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "(") {
        if (depth == 0) return i;
        ++depth;
      } else if (toks[i].text == ")") {
        --depth;
      }
    }
    return std::string::npos;
  }

  static bool has_top_level_eq(const std::vector<Tok>& toks) {
    int depth = 0;
    for (const Tok& t : toks) {
      if (t.text == "(" || t.text == "[") ++depth;
      if (t.text == ")" || t.text == "]") --depth;
      if (depth == 0 && t.text == "=") return true;
    }
    return false;
  }

  bool is_cond_header() const {
    const std::size_t b = stmt_start(decl);
    if (b >= decl.size()) return false;
    const std::string& t = decl[b].text;
    return t == "if" || t == "for" || t == "while" || t == "switch";
  }

  // -- statements --

  void flush_stmt(bool condition) {
    if (!in_function()) {
      decl.clear();
      return;
    }
    const std::size_t b = stmt_start(decl);
    if (b >= decl.size()) {
      decl.clear();
      return;
    }
    Stmt s;
    s.toks.assign(decl.begin() + static_cast<std::ptrdiff_t>(b), decl.end());
    s.first_line = s.toks.front().line;
    s.last_line = s.toks.back().line;
    s.is_condition = condition;
    const std::string& head = s.toks.front().text;
    s.is_loop = condition && (head == "for" || head == "while");
    if (s.is_loop && head == "for") {
      // A for header with a top-level ':' (not '::') is a range-for.
      for (const Tok& t : s.toks) {
        if (t.text == ":") {
          s.is_range_for = true;
          break;
        }
      }
    }
    // Mutex-name candidates: a statement that constructs a scoped lock
    // names the mutex it covers somewhere in the same statement.
    if (contains(s.toks, "lock_guard") || contains(s.toks, "unique_lock") ||
        contains(s.toks, "scoped_lock") || contains(s.toks, "shared_lock")) {
      for (const Tok& t : s.toks) {
        if (analyzable_ident(t)) fn->locked_tokens.push_back(t.text);
      }
    }
    collect_calls(s, fn->stmts.size());
    fn->stmts.push_back(std::move(s));
    decl.clear();
  }

  /// Call sites in one statement: `f(`, `x.f(`, `x->f(`, `Cls::f(`.
  void collect_calls(const Stmt& s, std::size_t stmt_idx) {
    const std::vector<Tok>& t = s.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!analyzable_ident(t[i]) || t[i + 1].text != "(") continue;
      CallSite c;
      c.name = t[i].text;
      c.line = t[i].line;
      c.stmt = stmt_idx;
      if (i >= 2 && t[i - 1].text == "::" && t[i - 2].ident) {
        c.qual_class = t[i - 2].text;
      } else if (i >= 2 &&
                 (t[i - 1].text == "." || t[i - 1].text == "->") &&
                 t[i - 2].ident) {
        c.receiver = t[i - 2].text;
      }
      // Argument identifiers, split at top-level commas.
      int depth = 0;
      std::vector<std::string> arg;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") {
          ++depth;
          continue;
        }
        if (t[j].text == ")") {
          if (--depth == 0) {
            c.args.push_back(std::move(arg));
            break;
          }
          continue;
        }
        if (depth == 1 && t[j].text == ",") {
          c.args.push_back(std::move(arg));
          arg.clear();
          continue;
        }
        if (depth >= 1 && analyzable_ident(t[j])) arg.push_back(t[j].text);
      }
      if (c.args.size() == 1 && c.args.front().empty()) c.args.clear();
      fn->calls.push_back(std::move(c));
    }
  }

  // -- declarations --

  /// Field/variable recovery from a declaration ending in ';' (or cut at a
  /// brace initializer). Method declarations and type aliases are skipped.
  void record_field(const std::string& cls) {
    const std::vector<Tok>& d = decl;
    if (d.empty()) return;
    for (const Tok& t : d) {
      const std::string& x = t.text;
      if (x == "using" || x == "typedef" || x == "friend" || x == "operator" ||
          x == "static_assert" || x == "enum" || x == "class" ||
          x == "struct" || x == "union" || x == "namespace" || x == "~") {
        return;
      }
    }
    std::string name;
    if (has_top_level_eq(d)) {
      // `T x = init;` — but skip `= default/delete/0` method forms.
      int depth = 0;
      std::size_t eq = d.size();
      for (std::size_t i = 0; i < d.size(); ++i) {
        if (d[i].text == "(" || d[i].text == "[") ++depth;
        if (d[i].text == ")" || d[i].text == "]") --depth;
        if (depth == 0 && d[i].text == "=") {
          eq = i;
          break;
        }
      }
      // `= default/delete/0` method forms all carry a parameter list;
      // `int x_ = 0;` does not and is a real field.
      if (eq + 1 < d.size() && contains(d, "(") &&
          (d[eq + 1].text == "default" || d[eq + 1].text == "delete" ||
           d[eq + 1].text == "0")) {
        return;
      }
      for (std::size_t i = eq; i-- > 0;) {
        if (analyzable_ident(d[i])) {
          name = d[i].text;
          break;
        }
      }
    } else if (top_level_paren(d) == std::string::npos &&
               !contains(d, "(")) {
      // `T x;` — plain declaration, no parens anywhere.
      for (std::size_t i = d.size(); i-- > 0;) {
        if (analyzable_ident(d[i])) {
          name = d[i].text;
          break;
        }
      }
    } else {
      // Parens present: a method declaration ends in ')' or a qualifier;
      // a field of callable/template type still ends in its own name
      // (`std::function<void()> cb_;`).
      const Tok& last = d.back();
      if (!analyzable_ident(last)) return;
      name = last.text;
    }
    if (name.empty() || is_keyword(name)) return;
    FieldSym f;
    f.cls = cls;
    f.name = name;
    f.file = out.path;
    f.line = d.front().line;
    out.fields.push_back(std::move(f));
  }

  // -- scope transitions --

  void classify_open_brace(std::size_t line) {
    if (in_function()) {
      flush_stmt(false);
      stack.push_back(Scope{ScopeKind::kBlock, ""});
      return;
    }
    if (contains(decl, "namespace")) {
      std::string name;
      for (std::size_t i = decl.size(); i-- > 0;) {
        if (analyzable_ident(decl[i])) {
          name = decl[i].text;
          break;
        }
      }
      stack.push_back(Scope{ScopeKind::kNamespace, name});
      decl.clear();
      return;
    }
    if (contains(decl, "enum")) {
      stack.push_back(Scope{ScopeKind::kOther, ""});
      decl.clear();
      return;
    }
    // class/struct keyword before any paren opens a class scope.
    std::size_t kw = decl.size();
    for (std::size_t i = 0; i < decl.size(); ++i) {
      if (decl[i].text == "(") break;
      if (decl[i].text == "class" || decl[i].text == "struct" ||
          decl[i].text == "union") {
        kw = i;
        break;
      }
    }
    if (kw < decl.size()) {
      std::string name;
      for (std::size_t i = kw + 1; i < decl.size(); ++i) {
        if (decl[i].text == ":") break;
        if (analyzable_ident(decl[i]) && decl[i].text != "final" &&
            decl[i].text != "alignas") {
          name = decl[i].text;
          break;
        }
      }
      stack.push_back(Scope{ScopeKind::kClass, name});
      decl.clear();
      return;
    }
    const std::size_t paren = top_level_paren(decl);
    if (paren != std::string::npos && !has_top_level_eq_before(paren)) {
      open_function(paren, line);
      decl.clear();
      return;
    }
    // Brace initializer or other unclassified brace: record the variable
    // (class fields with brace init would otherwise vanish), then swallow.
    const Scope& top = stack.back();
    if (top.kind == ScopeKind::kClass) {
      record_field(top.name);
    } else if (top.kind == ScopeKind::kNamespace) {
      record_field("");
    }
    stack.push_back(Scope{ScopeKind::kOther, ""});
    decl.clear();
  }

  bool has_top_level_eq_before(std::size_t end) const {
    for (std::size_t i = 0; i < end && i < decl.size(); ++i) {
      if (decl[i].text == "=") return true;
    }
    return false;
  }

  void open_function(std::size_t paren, std::size_t line) {
    FunctionSym f;
    f.file = out.path;
    f.line = decl.front().line;
    f.body_begin = line;
    // Name: the identifier immediately before the top-level '('
    // (destructors keep their '~'; operators collapse to "operator").
    if (contains(decl, "operator")) {
      f.name = "operator";
    } else if (paren >= 1 && decl[paren - 1].ident) {
      f.name = decl[paren - 1].text;
      if (paren >= 2 && decl[paren - 2].text == "~") f.name = "~" + f.name;
      if (paren >= 3 && decl[paren - 2].text == "::" &&
          decl[paren - 3].ident) {
        f.cls = decl[paren - 3].text;
        if (paren >= 4 && decl[paren - 4].text == "~") {
          // `~Cls::f` cannot happen; `Cls::~Cls(` has '~' after '::'.
          f.cls = decl[paren - 4].text;
        }
      }
      if (paren >= 2 && decl[paren - 2].text == "~" && paren >= 4 &&
          decl[paren - 3].text == "::" && decl[paren - 4].ident) {
        f.cls = decl[paren - 4].text;
      }
    }
    if (f.cls.empty()) f.cls = enclosing_class();
    if (f.name.empty() || is_keyword(f.name)) f.name = "<anon>";
    // Parameter names: last identifier of each top-level comma chunk
    // (cut at default arguments).
    int depth = 0;
    std::vector<Tok> chunk;
    auto flush_param = [&] {
      std::size_t stop = chunk.size();
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (chunk[i].text == "=") {
          stop = i;
          break;
        }
      }
      for (std::size_t i = stop; i-- > 0;) {
        if (analyzable_ident(chunk[i])) {
          f.params.push_back(chunk[i].text);
          return;
        }
      }
    };
    for (std::size_t i = paren; i < decl.size(); ++i) {
      if (decl[i].text == "(") {
        if (++depth == 1) continue;
      } else if (decl[i].text == ")") {
        if (--depth == 0) {
          if (!chunk.empty()) flush_param();
          break;
        }
      } else if (depth == 1 && decl[i].text == ",") {
        flush_param();
        chunk.clear();
        continue;
      }
      if (depth >= 1) chunk.push_back(decl[i]);
    }
    out.functions.push_back(std::move(f));
    stack.push_back(Scope{ScopeKind::kFunction, out.functions.back().name});
    fn = &out.functions.back();
  }

  void close_scope(std::size_t line) {
    flush_stmt(false);
    if (stack.size() <= 1) return;  // stray brace; keep the global frame
    const ScopeKind k = stack.back().kind;
    stack.pop_back();
    if (k == ScopeKind::kFunction) {
      fn->body_end = line;
      fn = nullptr;
      // Re-open the lexically-enclosing function if we were nested (local
      // classes inside functions never define further functions here, so
      // find the innermost Function frame's symbol by body range).
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->kind == ScopeKind::kFunction) {
          for (FunctionSym& g : out.functions) {
            if (g.body_end == 0 && g.name == it->name) fn = &g;
          }
          break;
        }
      }
    }
  }

  void run(const std::vector<Tok>& toks) {
    int angle_skip = 0;       // template<...> header depth
    bool await_angle = false;
    for (const Tok& t : toks) {
      if (await_angle) {
        if (t.text == "<") {
          angle_skip = 1;
          await_angle = false;
        } else {
          await_angle = false;  // `template` not followed by '<'
        }
        continue;
      }
      if (angle_skip > 0) {
        if (t.text == "<") ++angle_skip;
        if (t.text == ">") --angle_skip;
        continue;
      }
      if (t.text == "template" && decl.empty()) {
        await_angle = true;
        continue;
      }
      if (t.text == "(") {
        decl.push_back(t);
        ++dparen;
        continue;
      }
      if (t.text == ")") {
        decl.push_back(t);
        --dparen;
        if (dparen == 0 && in_function() && is_cond_header()) {
          flush_stmt(true);
        }
        continue;
      }
      if (dparen == 0 && t.text == "{") {
        classify_open_brace(t.line);
        dparen = 0;
        continue;
      }
      if (dparen == 0 && t.text == "}") {
        close_scope(t.line);
        decl.clear();
        dparen = 0;
        continue;
      }
      if (dparen == 0 && t.text == ";") {
        if (in_function()) {
          flush_stmt(false);
        } else {
          const Scope& top = stack.back();
          if (top.kind == ScopeKind::kClass) {
            record_field(top.name);
          } else if (top.kind == ScopeKind::kNamespace) {
            record_field("");
          }
          decl.clear();
        }
        continue;
      }
      if (dparen == 0 && t.text == ":" && decl.size() == 1 &&
          (decl[0].text == "public" || decl[0].text == "private" ||
           decl[0].text == "protected")) {
        decl.clear();
        continue;
      }
      decl.push_back(t);
    }
  }
};

/// Extend an annotation's binding range from its first code line through
/// the end of that statement (first line containing one of ; { }).
void bind_annotation_ranges(const std::vector<ScannedLine>& lines, TU& out) {
  auto has_code = [&](std::size_t line) {
    const std::string& c = lines[line - 1].code;
    return c.find_first_not_of(" \t") != std::string::npos;
  };
  auto ends_stmt = [&](std::size_t line) {
    const std::string& c = lines[line - 1].code;
    return c.find_first_of(";{}") != std::string::npos;
  };
  for (Annotation& a : out.annotations) {
    std::size_t line = a.comment_line;
    while (line <= lines.size() && !has_code(line)) ++line;
    if (line > lines.size()) {
      a.applies_begin = a.applies_end = 0;
      continue;
    }
    a.applies_begin = line;
    while (line < lines.size() && !ends_stmt(line)) ++line;
    a.applies_end = line;
  }
}

/// Attach parsed annotations to the functions, fields and statements they
/// cover. Unbound annotations keep consumed=false and surface as stale.
void bind_annotations(TU& out) {
  for (std::size_t ai = 0; ai < out.annotations.size(); ++ai) {
    Annotation& a = out.annotations[ai];
    if (a.applies_begin == 0) continue;
    switch (a.kind) {
      case AnnKind::kOwner:
      case AnnKind::kGuardedBy: {
        bool bound = false;
        for (FieldSym& f : out.fields) {
          if (f.line >= a.applies_begin && f.line <= a.applies_end) {
            if (a.kind == AnnKind::kOwner) {
              f.owner = a.value == "shard"     ? Owner::kShard
                        : a.value == "barrier" ? Owner::kBarrier
                                               : Owner::kEngine;
              f.owner_ann = static_cast<int>(ai);
            } else {
              f.guarded_by = a.value;
              f.guarded_ann = static_cast<int>(ai);
            }
            bound = true;
            break;
          }
        }
        if (bound || a.kind == AnnKind::kOwner) break;
        // guarded-by may also cover a function-local declaration
        // (statics in accessors; parallel_cells' error slot).
        for (FunctionSym& f : out.functions) {
          for (const Stmt& s : f.stmts) {
            if (s.first_line > a.applies_end || s.last_line < a.applies_begin) {
              continue;
            }
            std::string name;
            std::size_t stop = s.toks.size();
            for (std::size_t i = 0; i < s.toks.size(); ++i) {
              if (s.toks[i].text == "=" || s.toks[i].text == "(") {
                stop = i;
                break;
              }
            }
            for (std::size_t i = stop; i-- > 0;) {
              if (analyzable_ident(s.toks[i])) {
                name = s.toks[i].text;
                break;
              }
            }
            if (name.empty()) continue;
            FieldSym local;
            local.func = f.name;
            local.name = name;
            local.file = out.path;
            local.line = s.first_line;
            local.guarded_by = a.value;
            local.guarded_ann = static_cast<int>(ai);
            out.fields.push_back(std::move(local));
            bound = true;
            break;
          }
          if (bound) break;
        }
        break;
      }
      case AnnKind::kSanitize: {
        for (FunctionSym& f : out.functions) {
          for (Stmt& s : f.stmts) {
            if (s.first_line <= a.applies_end &&
                s.last_line >= a.applies_begin && s.sanitize_ann < 0) {
              s.sanitize_ann = static_cast<int>(ai);
              goto bound_sanitize;
            }
          }
        }
      bound_sanitize:
        break;
      }
      case AnnKind::kShardEntry:
      case AnnKind::kBarrierEntry:
      case AnnKind::kOwnerOk:
      case AnnKind::kRequiresLock: {
        FunctionSym* best = nullptr;
        for (FunctionSym& f : out.functions) {
          if (f.line >= a.applies_begin && f.line <= a.applies_end &&
              (best == nullptr || f.line < best->line)) {
            best = &f;
          }
        }
        if (best == nullptr) break;
        switch (a.kind) {
          case AnnKind::kShardEntry:
            best->shard_entry = true;
            a.consumed = true;  // entry points anchor the model
            break;
          case AnnKind::kBarrierEntry:
            best->barrier_entry = true;
            a.consumed = true;
            break;
          case AnnKind::kOwnerOk:
            best->owner_ok = true;
            best->owner_ok_ann = static_cast<int>(ai);
            break;
          case AnnKind::kRequiresLock:
            best->requires_locks.push_back(a.value);
            best->requires_lock_anns.push_back(static_cast<int>(ai));
            break;
          default:
            break;
        }
        break;
      }
    }
  }
}

}  // namespace

TU parse_tu(const std::string& rel_path, const std::string& content) {
  TU out;
  out.path = rel_path;
  const std::vector<ScannedLine> lines = scup::lint::scan_source(content);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].comment.empty()) {
      parse_comment_annotations(lines[i].comment, i + 1, out);
    }
  }
  collect_regions(lines, "shard-barrier", out.shard_barrier_regions);
  collect_regions(lines, "drawplan", out.drawplan_regions);
  Parser p(out);
  p.run(tokenize(lines));
  bind_annotation_ranges(lines, out);
  bind_annotations(out);
  return out;
}

bool is_analyzable_ident_token(const Tok& t) { return analyzable_ident(t); }

bool is_cpp_keyword(const std::string& s) { return is_keyword(s); }

}  // namespace scup::analyze
