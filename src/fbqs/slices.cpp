#include "fbqs/slices.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace scup::fbqs {

namespace {
std::size_t binomial_saturating(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::size_t num = n - k + i;
    if (result > std::numeric_limits<std::size_t>::max() / num) {
      return std::numeric_limits<std::size_t>::max();
    }
    result = result * num / i;
  }
  return result;
}
}  // namespace

SliceSet SliceSet::explicit_slices(std::vector<NodeSet> slices) {
  for (const NodeSet& s : slices) {
    if (s.empty()) {
      throw std::invalid_argument("SliceSet: empty slice not allowed");
    }
  }
  SliceSet set;
  set.rep_ = std::move(slices);
  return set;
}

SliceSet SliceSet::threshold(std::size_t m, NodeSet members) {
  if (m == 0 || m > members.count()) {
    throw std::invalid_argument(
        "SliceSet::threshold: need 0 < m <= |members| (m=" +
        std::to_string(m) + ", |members|=" + std::to_string(members.count()) +
        ")");
  }
  SliceSet set;
  set.rep_ = Threshold{m, std::move(members)};
  return set;
}

bool SliceSet::is_threshold() const {
  return std::holds_alternative<Threshold>(rep_);
}

bool SliceSet::satisfied_within(const NodeSet& q) const {
  if (const auto* t = std::get_if<Threshold>(&rep_)) {
    return q.intersection_count(t->members) >= t->m;
  }
  for (const NodeSet& s : std::get<std::vector<NodeSet>>(rep_)) {
    if (s.subset_of(q)) return true;
  }
  return false;
}

bool SliceSet::blocked_by(const NodeSet& b) const {
  if (const auto* t = std::get_if<Threshold>(&rep_)) {
    // A slice avoiding b exists iff >= m members survive outside b.
    return t->members.count() - t->members.intersection_count(b) < t->m;
  }
  const auto& slices = std::get<std::vector<NodeSet>>(rep_);
  if (slices.empty()) return true;  // no slice avoids b, vacuously blocked
  for (const NodeSet& s : slices) {
    if (!s.intersects(b)) return false;
  }
  return true;
}

NodeSet SliceSet::union_of_members(std::size_t universe) const {
  NodeSet u(universe);
  if (const auto* t = std::get_if<Threshold>(&rep_)) {
    u |= t->members;
    return u;
  }
  for (const NodeSet& s : std::get<std::vector<NodeSet>>(rep_)) u |= s;
  return u;
}

std::size_t SliceSet::slice_count() const {
  if (const auto* t = std::get_if<Threshold>(&rep_)) {
    return binomial_saturating(t->members.count(), t->m);
  }
  return std::get<std::vector<NodeSet>>(rep_).size();
}

const std::vector<NodeSet>& SliceSet::explicit_list() const {
  if (is_threshold()) {
    throw std::logic_error("SliceSet::explicit_list on threshold family");
  }
  return std::get<std::vector<NodeSet>>(rep_);
}

std::size_t SliceSet::threshold_m() const {
  if (!is_threshold()) {
    throw std::logic_error("SliceSet::threshold_m on explicit family");
  }
  return std::get<Threshold>(rep_).m;
}

const NodeSet& SliceSet::threshold_members() const {
  if (!is_threshold()) {
    throw std::logic_error("SliceSet::threshold_members on explicit family");
  }
  return std::get<Threshold>(rep_).members;
}

QSet SliceSet::to_qset() const {
  if (const auto* t = std::get_if<Threshold>(&rep_)) {
    return QSet::threshold_of(t->m, t->members);
  }
  const auto& slices = std::get<std::vector<NodeSet>>(rep_);
  std::vector<QSet> inner;
  inner.reserve(slices.size());
  for (const NodeSet& s : slices) {
    inner.push_back(QSet::threshold_of(s.count(), s));
  }
  const std::size_t threshold = inner.empty() ? 0 : 1;
  return QSet(threshold, {}, std::move(inner));
}

std::string SliceSet::to_string() const {
  std::ostringstream os;
  if (const auto* t = std::get_if<Threshold>(&rep_)) {
    os << "all " << t->m << "-subsets of " << t->members;
    return os.str();
  }
  os << '[';
  bool first = true;
  for (const NodeSet& s : std::get<std::vector<NodeSet>>(rep_)) {
    if (!first) os << ", ";
    first = false;
    os << s;
  }
  os << ']';
  return os.str();
}

}  // namespace scup::fbqs
