#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "sim/message_pool.hpp"
#include "sim/network_model.hpp"
#include "sim/simulation.hpp"

namespace scup::sim {

namespace {
/// Set for the duration of ShardEngine::drain on each participating thread;
/// how Simulation knows a call is happening inside a window.
thread_local ShardContext* tls_shard = nullptr;

/// Monotonic wall-clock read for the barrier-replay profile. Called only
/// when NetworkConfig::shard_timing is set, and the readings feed
/// ShardStats (never SimMetrics), so determinism is untouched — the
/// det-raw-random suppression for this file covers exactly this helper.
std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::vector<SimTime> shard_window_widths(const NetworkModel& model,
                                         std::size_t n, std::size_t shards,
                                         bool global_min) {
  if (shards == 0) {
    throw std::invalid_argument("shard_window_widths: shards must be >= 1");
  }
  if (global_min) {
    const SimTime w = model.min_latency();
    if (w < 1) {
      throw std::invalid_argument(
          "sharded execution with lookahead_global_min requires "
          "NetworkModel::min_latency() >= 1 (the conservative window "
          "width); this model reports " + std::to_string(w));
    }
    return std::vector<SimTime>(shards, w);
  }
  std::vector<SimTime> widths(shards, kTimeInfinity);
  std::vector<std::size_t> size(shards, 0);
  for (std::size_t p = 0; p < n; ++p) ++size[p % shards];
  // The matrix is base_min_latency() everywhere except the (at most one
  // per directed pair) listed overrides, so the per-shard minimum over
  // cross-shard pairs needs only the overrides plus one counting pass —
  // the base floor participates for shard s iff s has a cross-shard pair
  // no override covers.
  std::vector<std::size_t> overridden_cross(shards, 0);
  for (const auto& o : model.latency_overrides()) {
    if (o.from >= n || o.to >= n) continue;  // not a live pair
    const std::size_t s = o.from % shards;
    if (s == o.to % shards) continue;  // intra-shard: never constrains W
    if (o.min_delay < 1) {
      throw std::invalid_argument(
          "sharded execution is illegal for this topology: the link " +
          std::to_string(o.from) + " -> " + std::to_string(o.to) +
          " has latency floor " + std::to_string(o.min_delay) +
          " and crosses the shard partition (shard " + std::to_string(s) +
          " -> shard " + std::to_string(o.to % shards) +
          " of " + std::to_string(shards) +
          "); every cross-shard link needs min_latency >= 1 (intra-shard "
          "links may be arbitrarily fast, and shards == 1 accepts any "
          "model)");
    }
    ++overridden_cross[s];
    widths[s] = std::min(widths[s], o.min_delay);
  }
  const SimTime base = model.base_min_latency();
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t cross_pairs = size[s] * (n - size[s]);
    if (overridden_cross[s] >= cross_pairs) continue;  // all pairs overridden
    if (cross_pairs == 0) continue;  // no cross-shard pairs (shards == 1)
    if (base < 1) {
      throw std::invalid_argument(
          "sharded execution is illegal for this topology: the model's "
          "base latency floor (base_min_latency) is " +
          std::to_string(base) +
          " and shard " + std::to_string(s) + " of " +
          std::to_string(shards) +
          " has non-overridden cross-shard links; every cross-shard link "
          "needs min_latency >= 1 (intra-shard links may be arbitrarily "
          "fast, and shards == 1 accepts any model)");
    }
    widths[s] = std::min(widths[s], base);
  }
  return widths;
}

ShardEngine::ShardEngine(Simulation& sim, std::size_t shards)
    : sim_(sim),
      pool_(shards - 1),
      w_out_(shard_window_widths(*sim.model_, sim.n_, shards,
                                 sim.config_.lookahead_global_min)) {
  // Auto quantum: the base latency floor, not the global min_latency() —
  // the latter is dragged down by the fastest (possibly intra-shard) link,
  // which is exactly the pessimization the per-pair lookahead removes.
  quantum_ = sim.config_.lookahead_quantum > 0
                 ? sim.config_.lookahead_quantum
                 : std::max<SimTime>(1, sim.model_->base_min_latency());
  timing_ = sim.config_.shard_timing;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto ctx = std::make_unique<ShardContext>();
    ctx->index = i;
    shards_.push_back(std::move(ctx));
  }
}

ShardContext* ShardEngine::current() { return tls_shard; }

void ShardEngine::seed_from(CalendarQueue& queue) {
  // Popping yields (time, seq) order, which is exactly the push order each
  // shard queue requires.
  while (!queue.empty()) {
    Event e = queue.pop();
    shards_[e.target % shards_.size()]->queue.push(std::move(e));
  }
}

void ShardEngine::push_external(Event e) {
  // Only legal between windows (the caller is the coordinating thread) and
  // at e.time >= now_ >= every shard queue's cursor.
  shards_[e.target % shards_.size()]->queue.push(std::move(e));
}

SimTime ShardEngine::next_event_time() const {
  SimTime t_min = kTimeInfinity;
  for (const auto& shard : shards_) {
    if (shard->queue.empty()) continue;
    t_min = std::min(t_min, shard->queue.next_time());
  }
  return t_min;
}

bool ShardEngine::run_window(SimTime deadline, SimTime cap) {
  deadline = std::min(deadline, kTimeInfinity - 1);
  const SimTime t_min = next_event_time();
  if (t_min > deadline || t_min >= cap) return false;
  // Window end: no shard can produce a cross-shard effect before its own
  // next event plus its lookahead, so everything in
  // [t_min, min_s(next_s + W_out(s))) is safe to drain in parallel.
  // Clamped to the caller's cap (run_until's checkpoint grid) and the
  // deadline. A shard with unbounded lookahead (no cross-shard pairs)
  // never constrains the end; with shards == 1 that leaves only the
  // clamps, i.e. the whole horizon is one window.
  SimTime end = kTimeInfinity;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->queue.empty()) continue;
    if (w_out_[s] >= kTimeInfinity) continue;
    end = std::min(end, shards_[s]->queue.next_time() + w_out_[s]);
  }
  end = std::min(end, std::min(cap, deadline + 1));
  window_end_ = end;
  width_sum_ += static_cast<std::uint64_t>(end - t_min);
  for (auto& shard : shards_) shard->processed_any = false;
  const std::uint64_t t0 = timing_ ? mono_ns() : 0;
  pool_.run([this, end](std::size_t i) { drain(i, end); });
  if (timing_) window_ns_ += mono_ns() - t0;
  ++windows_;
  commit_staged();
  return true;
}

// scup-analyze: shard-entry(runs on every pool thread inside the window)
void ShardEngine::drain(std::size_t shard_index, SimTime window_end) {
  ShardContext& ctx = *shards_[shard_index];
  tls_shard = &ctx;
  // Shard threads allocate messages too (handler sends inside the window),
  // so each drain binds the owning Simulation's pool to its thread. The
  // pool is internally synchronized; binding is just TLS routing.
  const MessagePool::Scope pool_scope(sim_.pool_.get());
  const std::uint64_t t0 = timing_ ? mono_ns() : 0;
  try {
    while (!ctx.queue.empty()) {
      const Event* head = ctx.queue.peek();
      if (head->time >= window_end) break;
      if (head->kind == EventKind::kDeliver && sim_.deliverable(head->target)) {
        // Pop the maximal run of consecutive deliveries to this target at
        // this tick and hand them over as one upcall. A crash/activate (or
        // a delivery for another process) interleaved in seq order breaks
        // the run, so batching never reorders against serial execution.
        const SimTime tick = head->time;
        const ProcessId target = head->target;
        ctx.batch.clear();
        for (;;) {
          Event e = ctx.queue.pop();
          ctx.now = e.time;
          ctx.last_time = e.time;
          ctx.processed_any = true;
          ctx.metrics.events_processed += 1;
          Delivery d;
          d.from = e.from;
          d.msg = std::move(e.msg);
          d.cookie = e.seq;
          ctx.batch.push_back(std::move(d));
          if (ctx.queue.empty()) break;
          const Event* next = ctx.queue.peek();
          if (next->time != tick || next->kind != EventKind::kDeliver ||
              next->target != target) {
            break;
          }
        }
        ctx.stats.batch_upcalls += 1;
        ctx.stats.batched_messages += ctx.batch.size();
        sim_.processes_[target]->on_messages(ctx.batch.data(),
                                             ctx.batch.size());
      } else {
        Event e = ctx.queue.pop();
        ctx.now = e.time;
        ctx.last_time = e.time;
        ctx.processed_any = true;
        ctx.metrics.events_processed += 1;
        set_dispatch_key(ctx, e);
        sim_.dispatch(e, ctx.metrics);
      }
    }
  } catch (...) {
    ctx.error = std::current_exception();
  }
  if (timing_) ctx.stats.drain_ns += mono_ns() - t0;
  tls_shard = nullptr;
}

void ShardEngine::set_dispatch_key(ShardContext& ctx, const Event& e) {
  ctx.current_key.clear();
  ctx.current_key.push_back(static_cast<std::uint64_t>(e.time));
  if (e.seq >= kTempSeqBase) {
    // Provisional: D = [time, 1] ++ Q(scheduling key). Copy out of the
    // arena now — later staging may reallocate it.
    ctx.current_key.push_back(1);
    const auto it = ctx.provisional_keys.find(e.seq);
    const auto [off, len] = it->second;
    ctx.current_key.insert(ctx.current_key.end(),
                           ctx.key_arena.begin() + off,
                           ctx.key_arena.begin() + off + len);
    ctx.provisional_keys.erase(it);
    ctx.stats.provisional_events += 1;
  } else {
    ctx.current_key.push_back(0);
    ctx.current_key.push_back(e.seq);
  }
  ctx.intra = 0;
}

bool ShardEngine::key_less(const ShardContext& a, std::uint32_t a_off,
                           std::uint32_t a_len, const ShardContext& b,
                           std::uint32_t b_off, std::uint32_t b_len) const {
  const std::uint64_t* ka = a.key_arena.data() + a_off;
  const std::uint64_t* kb = b.key_arena.data() + b_off;
  return std::lexicographical_compare(ka, ka + a_len, kb, kb + b_len);
}

// shard-barrier begin(commit of one window: staged effects merge into the
// global engine state in pedigree-key order; every shard thread is parked)
// scup-analyze: barrier-entry(single-threaded: every shard thread is parked)
void ShardEngine::commit_staged() {
  for (const auto& shard : shards_) {
    if (shard->error) {
      const std::exception_ptr err = shard->error;
      for (auto& s : shards_) s->error = nullptr;
      std::rethrow_exception(err);
    }
  }
  const std::size_t S = shards_.size();
  std::vector<std::size_t> pos(S, 0);

  // ---- outboxes: k-way merge by pedigree key. Each shard's outbox is
  // already key-sorted (staging order within a shard is dispatch order),
  // so picking the minimum head reproduces the serial effect order — and
  // with it the serial seq numbering. Verdicts (delivery times, drops,
  // duplicates) were drawn at send time on the shard threads; the barrier
  // only assigns dense seqs and routes. Note the dense seq *values* can
  // differ from a legacy run's (provisional effects never consume
  // next_seq_); only their relative order is observable, and that matches.
  const std::uint64_t t_merge = timing_ ? mono_ns() : 0;
  for (;;) {
    std::size_t best = S;
    for (std::size_t s = 0; s < S; ++s) {
      if (pos[s] >= shards_[s]->outbox.size()) continue;
      if (best == S) {
        best = s;
        continue;
      }
      const StagedOp& a = shards_[s]->outbox[pos[s]];
      const StagedOp& b = shards_[best]->outbox[pos[best]];
      if (key_less(*shards_[s], a.key_off, a.key_len, *shards_[best],
                   b.key_off, b.key_len)) {
        best = s;
      }
    }
    if (best == S) break;
    StagedOp& op = shards_[best]->outbox[pos[best]++];
    Event& e = op.event;
    e.seq = sim_.next_seq_++;
    shards_[e.target % S]->queue.push(std::move(e));
  }

  if (timing_) merge_ns_ += mono_ns() - t_merge;

  // ---- signs: same merge, replayed into the Notary log so the combined
  // compute()+append() stream equals a serial sign() stream.
  const std::uint64_t t_replay = timing_ ? mono_ns() : 0;
  std::fill(pos.begin(), pos.end(), 0);
  for (;;) {
    std::size_t best = S;
    for (std::size_t s = 0; s < S; ++s) {
      if (pos[s] >= shards_[s]->signs.size()) continue;
      if (best == S) {
        best = s;
        continue;
      }
      const StagedSign& a = shards_[s]->signs[pos[s]];
      const StagedSign& b = shards_[best]->signs[pos[best]];
      if (key_less(*shards_[s], a.key_off, a.key_len, *shards_[best],
                   b.key_off, b.key_len)) {
        best = s;
      }
    }
    if (best == S) break;
    const StagedSign& sg = shards_[best]->signs[pos[best]++];
    sim_.notary_.append(sg.signer, sg.statement);
  }

  if (timing_) replay_ns_ += mono_ns() - t_replay;

  // ---- metrics, time, arenas.
  const std::uint64_t t_reset = timing_ ? mono_ns() : 0;
  for (auto& shard : shards_) {
    sim_.absorb_metrics(shard->metrics);
    if (shard->processed_any) {
      sim_.now_ = std::max(sim_.now_, shard->last_time);
    }
    // Wholesale free: clear() keeps capacity, so after warm-up the arenas
    // stop allocating (tracked by arena_reused / arena_grown).
    shard->outbox.clear();
    shard->signs.clear();
    shard->key_arena.clear();
    shard->provisional_keys.clear();  // drained at dispatch; belt-and-braces
  }
  if (timing_) reset_ns_ += mono_ns() - t_reset;
}
// shard-barrier end

// scup-analyze: owner-ok(between-windows aggregation; pulled into the shard closure only by the `stats` name collision with QuorumEngine::stats)
ShardStats ShardEngine::stats() const {
  ShardStats total;
  total.shards = shards_.size();
  total.windows = windows_;
  total.window_width_sum = width_sum_;
  total.timing_enabled = timing_;
  total.window_ns = window_ns_;
  total.merge_ns = merge_ns_;
  total.replay_ns = replay_ns_;
  total.reset_ns = reset_ns_;
  if (timing_) total.shard_drain_ns.reserve(shards_.size());
  for (const auto& shard : shards_) {
    total.staged_ops += shard->stats.staged_ops;
    total.arena_reused += shard->stats.arena_reused;
    total.arena_grown += shard->stats.arena_grown;
    total.batch_upcalls += shard->stats.batch_upcalls;
    total.batched_messages += shard->stats.batched_messages;
    total.provisional_events += shard->stats.provisional_events;
    total.inline_verdicts += shard->stats.inline_verdicts;
    total.provisional_sends += shard->stats.provisional_sends;
    total.drain_ns += shard->stats.drain_ns;
    if (timing_) total.shard_drain_ns.push_back(shard->stats.drain_ns);
  }
  return total;
}

}  // namespace scup::sim
