// Shard-count invariance suite for the windowed sharded engine: for every
// workload here, running with shards in {1, 2, 3, 8} must produce
// bit-identical observables — SimMetrics, the Notary sign log fingerprint,
// per-process receipt logs, ledger chain digests — because the engine's
// contract is that sharding changes wall-clock time and nothing else.
// run_for() drains the same event set as the legacy serial loop, so those
// tests additionally pin sharded == legacy; run_until() scenarios compare
// shards >= 2 against the shards == 1 windowed baseline (barrier-granular
// stops are identical across shard counts but not vs the per-event legacy
// stop).
#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/ledger_node.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"

namespace scup::sim {
namespace {

NetworkConfig gossip_net(SimTime min_delay, SimTime max_delay,
                         std::uint64_t seed) {
  NetworkConfig net;
  net.gst = 0;
  net.min_delay = min_delay;
  net.max_delay = max_delay;
  net.seed = seed;
  return net;
}

struct GossipMsg final : Message {
  GossipMsg(int t, std::uint64_t g) : ttl(t), tag(g) {}
  int ttl;
  std::uint64_t tag;
  std::string type_name() const override { return "test.gossip"; }
  std::size_t byte_size() const override { return 24; }
};

/// Fans gossip across the ring, signing every receipt, re-arming short
/// timers (delays below the window width, so the sharded engine must take
/// its provisional-event path) and spawning follow-up sends — a workload
/// that exercises every staged-effect kind at once.
class GossipNode : public Process {
 public:
  GossipNode(std::size_t n, int ttl) : n_(n), ttl0_(ttl) {}

  void start() override {
    sign(0x5eed0000 + id());
    send((id() + 1) % n_, make_message<GossipMsg>(ttl0_, id() * 7 + 1));
    send((id() + 5) % n_, make_message<GossipMsg>(ttl0_ - 1, id() * 13 + 2));
    set_timer(1, 1 + id() % 3);
  }

  void on_message(ProcessId from, const MessagePtr& msg) override {
    const auto& g = dynamic_cast<const GossipMsg&>(*msg);
    log_.push_back(hash_mix(hash_mix(from, g.tag), now(),
                            static_cast<std::uint64_t>(g.ttl)));
    sign(g.tag * 31 + static_cast<std::uint64_t>(g.ttl));
    if (g.ttl > 0) {
      send((id() + g.tag) % n_, make_message<GossipMsg>(g.ttl - 1, g.tag + 1));
      if (g.ttl % 2 == 1) set_timer(2, g.tag % 4);
    }
  }

  void on_timer(int timer_id) override {
    log_.push_back(
        hash_mix(0x717e5, static_cast<std::uint64_t>(timer_id), now()));
    if (timer_id == 1 && ++reps_ < 4) set_timer(1, 2);
  }

  std::vector<std::uint64_t> log_;

 private:
  std::size_t n_;
  int ttl0_;
  int reps_ = 0;
};

struct GossipRun {
  SimMetrics metrics;
  std::uint64_t fingerprint = 0;
  std::vector<std::vector<std::uint64_t>> logs;
  ShardStats stats;
  SimTime end = 0;
};

constexpr std::size_t kGossipN = 24;

GossipRun run_gossip(std::size_t shards, const NetworkConfig& net) {
  Simulation sim(kGossipN, net);
  std::vector<GossipNode*> nodes;
  for (ProcessId i = 0; i < kGossipN; ++i) {
    nodes.push_back(&sim.emplace_process<GossipNode>(i, kGossipN, 6));
  }
  sim.set_shards(shards);
  sim.start();
  sim.run_for(100'000);
  GossipRun out;
  out.metrics = sim.metrics();
  out.fingerprint = sim.notary().fingerprint();
  for (auto* node : nodes) out.logs.push_back(node->log_);
  out.stats = sim.shard_stats();
  out.end = sim.now();
  return out;
}

TEST(ShardedSimulationTest, SetShardsAfterStartThrows) {
  Simulation sim(2, gossip_net(1, 5, 1));
  sim.emplace_process<GossipNode>(0, 2, 1);
  sim.emplace_process<GossipNode>(1, 2, 1);
  sim.start();
  EXPECT_THROW(sim.set_shards(2), std::logic_error);
}

TEST(ShardedSimulationTest, RejectsModelsWithoutMinimumLatency) {
  // min_delay = 0 means the UniformModel cannot promise the >= 1 tick
  // cross-shard lookahead the engine needs for shards >= 2.
  Simulation sim(2, gossip_net(0, 5, 1));
  EXPECT_THROW(sim.set_shards(2), std::invalid_argument);
  sim.set_shards(0);  // legacy loop needs no latency floor
}

TEST(ShardedSimulationTest, WindowedMatchesLegacyOnFullDrain) {
  const NetworkConfig net = gossip_net(1, 7, 42);
  const GossipRun legacy = run_gossip(0, net);
  const GossipRun windowed = run_gossip(1, net);
  EXPECT_EQ(legacy.metrics, windowed.metrics);
  EXPECT_EQ(legacy.fingerprint, windowed.fingerprint);
  EXPECT_EQ(legacy.logs, windowed.logs);
  EXPECT_EQ(legacy.end, windowed.end);
  // Legacy runs report zeroed shard stats; the windowed run worked.
  EXPECT_EQ(legacy.stats.windows, 0u);
  EXPECT_EQ(legacy.stats.shards, 0u);
  EXPECT_GT(windowed.stats.windows, 0u);
  EXPECT_EQ(windowed.stats.shards, 1u);
}

TEST(ShardedSimulationTest, ShardCountInvarianceAcrossSeeds) {
  for (std::uint64_t seed : {3u, 19u}) {
    const NetworkConfig net = gossip_net(2, 9, seed);
    const GossipRun base = run_gossip(1, net);
    ASSERT_NE(base.fingerprint, 0u);
    for (std::size_t shards : {2u, 3u, 8u}) {
      const GossipRun run = run_gossip(shards, net);
      EXPECT_EQ(run.metrics, base.metrics)
          << "metrics diverged at shards=" << shards << " seed=" << seed;
      EXPECT_EQ(run.fingerprint, base.fingerprint)
          << "sign log diverged at shards=" << shards << " seed=" << seed;
      EXPECT_EQ(run.logs, base.logs)
          << "receipts diverged at shards=" << shards << " seed=" << seed;
      EXPECT_EQ(run.end, base.end);
      EXPECT_EQ(run.stats.shards, shards);
      // The window *schedule* legitimately depends on the shard count (the
      // per-shard lookahead does) — only the observables above may not.
      EXPECT_GT(run.stats.windows, 0u);
      // Every send inside a window is an inline (send-time) verdict; only
      // the pre-start serial sends are not. The barrier does no RNG work.
      EXPECT_GT(run.stats.inline_verdicts, 0u);
      EXPECT_LE(run.stats.inline_verdicts, run.metrics.messages_sent);
    }
  }
}

TEST(ShardedSimulationTest, ProvisionalTimersStayInWindow) {
  // min_delay = 3 makes the window 3 ticks wide; gossip timers use delays
  // 0..3, so sub-window timers must run provisionally inside the window
  // rather than waiting for a barrier — and the result must not change.
  const NetworkConfig net = gossip_net(3, 11, 7);
  const GossipRun base = run_gossip(1, net);
  const GossipRun sharded = run_gossip(4, net);
  EXPECT_EQ(sharded.metrics, base.metrics);
  EXPECT_EQ(sharded.fingerprint, base.fingerprint);
  EXPECT_EQ(sharded.logs, base.logs);
  EXPECT_GT(base.stats.provisional_events, 0u);
  EXPECT_GT(sharded.stats.provisional_events, 0u);
  // Legacy full drain agrees as well.
  const GossipRun legacy = run_gossip(0, net);
  EXPECT_EQ(legacy.metrics, base.metrics);
  EXPECT_EQ(legacy.fingerprint, base.fingerprint);
  EXPECT_EQ(legacy.logs, base.logs);
}

/// Overrides the batched upcall to count how the engine groups same-tick
/// deliveries, forwarding each delivery through the documented
/// begin_delivery + on_message protocol.
class FanInNode : public Process {
 public:
  void on_messages(Delivery* batch, std::size_t count) override {
    ++upcalls_;
    largest_batch_ = std::max(largest_batch_, count);
    for (std::size_t i = 0; i < count; ++i) {
      begin_delivery(batch[i]);
      on_message(batch[i].from, batch[i].msg);
    }
  }
  void on_message(ProcessId from, const MessagePtr& msg) override {
    const auto& g = dynamic_cast<const GossipMsg&>(*msg);
    order_.push_back(hash_mix(from, g.tag, now()));
  }

  std::size_t upcalls_ = 0;
  std::size_t largest_batch_ = 0;
  std::vector<std::uint64_t> order_;
};

class BlastNode : public Process {
 public:
  BlastNode(ProcessId target, int count) : target_(target), count_(count) {}
  void start() override {
    for (int i = 0; i < count_; ++i) {
      send(target_, make_message<GossipMsg>(0, id() * 100 + i));
    }
  }
  void on_message(ProcessId, const MessagePtr&) override {}

 private:
  ProcessId target_;
  int count_;
};

TEST(ShardedSimulationTest, SameTickDeliveriesBatchIntoOneUpcall) {
  // A fixed-delay net lands every blast in the same tick: the sharded
  // engine must hand process 0 one upcall covering all of them, in the
  // exact order the legacy loop would deliver them.
  NetworkConfig net = gossip_net(5, 5, 11);
  constexpr int kSenders = 6;
  constexpr int kEach = 4;
  auto run = [&](std::size_t shards) {
    Simulation sim(kSenders + 1, net);
    auto& sink = sim.emplace_process<FanInNode>(0);
    for (ProcessId i = 1; i <= kSenders; ++i) {
      sim.emplace_process<BlastNode>(i, 0, kEach);
    }
    sim.set_shards(shards);
    sim.start();
    sim.run_for(1'000);
    return std::make_tuple(sink.upcalls_, sink.largest_batch_, sink.order_,
                           sim.shard_stats(), sim.metrics());
  };
  const auto [legacy_up, legacy_max, legacy_order, legacy_stats,
              legacy_metrics] = run(0);
  const auto [up, max_batch, order, stats, metrics] = run(2);
  // Legacy delivers one message per upcall; sharded groups the whole tick.
  EXPECT_EQ(legacy_up, std::size_t{kSenders * kEach});
  EXPECT_EQ(legacy_max, 1u);
  EXPECT_EQ(up, 1u);
  EXPECT_EQ(max_batch, std::size_t{kSenders * kEach});
  EXPECT_EQ(order, legacy_order);
  EXPECT_EQ(metrics, legacy_metrics);
  EXPECT_EQ(stats.batch_upcalls, 1u);
  EXPECT_EQ(stats.batched_messages, std::size_t{kSenders * kEach});
}

TEST(ShardedSimulationTest, ScheduledCrashRoutesThroughTheEngine) {
  const NetworkConfig net = gossip_net(1, 6, 23);
  auto run = [&](std::size_t shards) {
    Simulation sim(kGossipN, net);
    std::vector<GossipNode*> nodes;
    for (ProcessId i = 0; i < kGossipN; ++i) {
      nodes.push_back(&sim.emplace_process<GossipNode>(i, kGossipN, 6));
    }
    sim.crash_at(3, 10);
    sim.crash_at(7, 25);
    sim.set_shards(shards);
    sim.start();
    sim.run_for(100'000);
    GossipRun out;
    out.metrics = sim.metrics();
    out.fingerprint = sim.notary().fingerprint();
    for (auto* node : nodes) out.logs.push_back(node->log_);
    return out;
  };
  const GossipRun legacy = run(0);
  const GossipRun base = run(1);
  const GossipRun sharded = run(3);
  EXPECT_EQ(base.metrics, legacy.metrics);
  EXPECT_EQ(base.fingerprint, legacy.fingerprint);
  EXPECT_EQ(base.logs, legacy.logs);
  EXPECT_EQ(sharded.metrics, base.metrics);
  EXPECT_EQ(sharded.fingerprint, base.fingerprint);
  EXPECT_EQ(sharded.logs, base.logs);
}

}  // namespace
}  // namespace scup::sim

namespace scup::core {
namespace {

bool reports_identical(const ScenarioReport& a, const ScenarioReport& b) {
  return a.all_decided == b.all_decided && a.agreement == b.agreement &&
         a.validity == b.validity && a.decided_value == b.decided_value &&
         a.first_decision == b.first_decision &&
         a.last_decision == b.last_decision &&
         a.decision_times == b.decision_times &&
         a.sd_all_returned == b.sd_all_returned &&
         a.sd_sink_exact == b.sd_sink_exact &&
         a.sd_flags_correct == b.sd_flags_correct &&
         a.true_sink == b.true_sink && a.metrics == b.metrics &&
         a.notary_fingerprint == b.notary_fingerprint &&
         a.end_time == b.end_time;
}

TEST(ShardedScenarioTest, EveryShardCountMatchesTheWindowedBaseline) {
  // Satellite: fuzz shard counts across both protocols and several seeds on
  // the E12 churn + partition family. Every cell must decide and every
  // shards >= 2 report must be bit-identical (fingerprint included) to the
  // shards == 1 windowed run of the same config.
  for (ProtocolKind protocol :
       {ProtocolKind::kStellarSd, ProtocolKind::kBftCup}) {
    for (std::uint64_t seed : {1u, 2u}) {
      ChurnPartitionParams p;
      p.n = 12;
      p.f = 1;
      p.protocol = protocol;
      p.late_fraction = 0.5;
      p.late_window = 1'000;
      p.with_partition = true;
      p.gst = 1'500;
      p.seed = seed;
      ScenarioConfig cfg = churn_partition_scenario(p);
      cfg.shards = 1;
      const ScenarioReport base = run_scenario(cfg);
      EXPECT_TRUE(base.all_decided);
      EXPECT_TRUE(base.agreement);
      EXPECT_NE(base.notary_fingerprint, 0u);
      for (std::size_t shards : {2u, 3u, 8u}) {
        cfg.shards = shards;
        const ScenarioReport r = run_scenario(cfg);
        EXPECT_TRUE(reports_identical(r, base))
            << "shards=" << shards << " seed=" << seed << " protocol="
            << static_cast<int>(protocol)
            << " diverged from the windowed baseline";
      }
    }
  }
}

TEST(ShardedScenarioTest, AllMatrixShapesAreShardInvariant) {
  // The four E12 shapes (churn / +partition / +loss / +crash) each stress a
  // different engine path: mailbox activation, partition heal verdicts,
  // drop replay through the deferred RNG, and external crash events.
  for (int shape = 0; shape < 4; ++shape) {
    ChurnPartitionParams p;
    p.n = 12;
    p.f = 1;
    p.gst = 1'500;
    p.late_window = 1'000;
    p.seed = 5;
    p.with_partition = shape >= 1;
    if (shape == 2) p.pre_gst_drop = 0.2;
    p.with_crash = shape == 3;
    ScenarioConfig cfg = churn_partition_scenario(p);
    cfg.shards = 1;
    const ScenarioReport base = run_scenario(cfg);
    EXPECT_TRUE(base.all_decided) << "shape=" << shape;
    cfg.shards = 2;
    const ScenarioReport sharded = run_scenario(cfg);
    EXPECT_TRUE(reports_identical(sharded, base))
        << "shape=" << shape << " diverged between shards=1 and shards=2";
  }
}

TEST(ShardedScenarioTest, LedgerChainsAndZeroCopyWrapsAreShardInvariant) {
  // Multi-slot SCP through the sharded engine: chains must match across
  // replicas and across shard counts, and the SlotHost shared-wrap cache
  // must be serving broadcasts (the zero-copy envelope path).
  const auto g = graph::fig2_graph();
  constexpr std::uint64_t kSlots = 3;
  struct LedgerRun {
    std::uint64_t digest = 0;
    std::uint64_t fingerprint = 0;
    sim::SimMetrics metrics;
  };
  auto run = [&](std::size_t shards) {
    sim::NetworkConfig net;
    net.seed = 17;
    net.min_delay = 1;
    net.max_delay = 10;
    sim::Simulation sim(g.node_count(), net);
    std::vector<LedgerNode*> nodes;
    for (ProcessId i = 0; i < g.node_count(); ++i) {
      nodes.push_back(
          &sim.emplace_process<LedgerNode>(i, g.pd_of(i), 1, kSlots));
    }
    sim.set_shards(shards);
    sim.start();
    const bool done = sim.run_until(
        [&] {
          for (auto* node : nodes) {
            if (node->decided_slots() < kSlots) return false;
          }
          return true;
        },
        3'000'000);
    EXPECT_TRUE(done) << "shards=" << shards;
    LedgerRun out;
    out.digest = nodes[0]->chain_digest();
    for (auto* node : nodes) EXPECT_EQ(node->chain_digest(), out.digest);
    out.fingerprint = sim.notary().fingerprint();
    out.metrics = sim.metrics();
    return out;
  };
  const LedgerRun base = run(1);
  const LedgerRun sharded = run(2);
  EXPECT_NE(base.digest, 0u);
  EXPECT_EQ(sharded.digest, base.digest);
  EXPECT_EQ(sharded.fingerprint, base.fingerprint);
  EXPECT_EQ(sharded.metrics, base.metrics);
  const auto shared =
      base.metrics.protocol_counter(sim::ProtoCounter::kSlotWrapsShared);
  const auto wraps =
      base.metrics.protocol_counter(sim::ProtoCounter::kSlotWraps);
  EXPECT_GT(wraps, 0u);
  // Broadcasts go to several peers: most sends must hit the cache.
  EXPECT_GT(shared, wraps);
}

}  // namespace
}  // namespace scup::core
