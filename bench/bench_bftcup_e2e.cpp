// E7 — Theorem 1 baseline: BFT-CUP (SINK discovery + PBFT among the sink +
// decision dissemination) on the same graph family and failure placements
// as E6, plus a head-to-head comparison row. The headline shape (Corollary
// 2): both protocols decide with the same minimal knowledge; BFT-CUP pays
// PBFT + dissemination, Stellar+SD pays SCP's federated voting.
#include "bench_common.hpp"

namespace scup {
namespace {

core::ScenarioReport run_once(std::size_t n, std::size_t f,
                              std::uint64_t seed,
                              core::ProtocolKind protocol) {
  graph::KosrGenParams params;
  params.sink_size = n / 2;
  params.non_sink_size = n - n / 2;
  params.k = 2 * f + 1;
  params.seed = seed;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet sink = graph::unique_sink_component(g);
  Rng rng(seed + 5);
  const NodeSet faulty = graph::pick_safe_faulty_set(g, sink, f, true, rng);
  return core::run_scenario(bench::sim_scenario(g, f, faulty, seed, protocol));
}

void BM_BftCup_Sweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = static_cast<std::size_t>(state.range(1));
  core::ScenarioReport r;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    r = run_once(n, f, seed++, core::ProtocolKind::kBftCup);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["f"] = static_cast<double>(f);
  state.counters["t_first_decide"] = static_cast<double>(r.first_decision);
  state.counters["t_last_decide"] = static_cast<double>(r.last_decision);
  state.counters["messages"] = static_cast<double>(r.metrics.messages_sent);
  state.counters["kilobytes"] =
      static_cast<double>(r.metrics.bytes_sent) / 1024.0;
  state.counters["termination"] = r.all_decided ? 1 : 0;
  state.counters["agreement"] = r.agreement ? 1 : 0;
  state.counters["validity"] = r.validity ? 1 : 0;
}
BENCHMARK(BM_BftCup_Sweep)
    ->ArgsProduct({{8, 12, 16, 24, 32}, {1}})
    ->Args({16, 2})
    ->Args({24, 2})
    ->Unit(benchmark::kMillisecond);

void BM_HeadToHead(benchmark::State& state) {
  // Identical graph + faults, both protocols; reports the latency and
  // message ratios (Stellar / BFT-CUP).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::ScenarioReport stellar, bftcup;
  std::uint64_t seed = 42;
  for (auto _ : state) {
    stellar = run_once(n, 1, seed, core::ProtocolKind::kStellarSd);
    bftcup = run_once(n, 1, seed, core::ProtocolKind::kBftCup);
    ++seed;
    benchmark::DoNotOptimize(bftcup);
  }
  state.counters["stellar_t_last"] =
      static_cast<double>(stellar.last_decision);
  state.counters["bftcup_t_last"] = static_cast<double>(bftcup.last_decision);
  state.counters["stellar_msgs"] =
      static_cast<double>(stellar.metrics.messages_sent);
  state.counters["bftcup_msgs"] =
      static_cast<double>(bftcup.metrics.messages_sent);
  state.counters["latency_ratio"] =
      static_cast<double>(stellar.last_decision) /
      static_cast<double>(std::max<SimTime>(1, bftcup.last_decision));
  state.counters["msg_ratio"] =
      static_cast<double>(stellar.metrics.messages_sent) /
      static_cast<double>(std::max<std::size_t>(1,
                                                bftcup.metrics.messages_sent));
  state.counters["both_decide"] =
      (stellar.all_decided && bftcup.all_decided) ? 1 : 0;
}
BENCHMARK(BM_HeadToHead)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E7");
