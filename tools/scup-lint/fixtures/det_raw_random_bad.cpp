// Fixture: det-raw-random must fire on every raw randomness / wall-clock
// source outside common/rng.
#include <cstdlib>
#include <ctime>
#include <random>

int roll() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::srand(static_cast<unsigned>(time(nullptr)));
  return std::rand() + static_cast<int>(gen());
}
