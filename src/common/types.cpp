#include "common/types.hpp"

namespace scup {

std::string process_name(ProcessId id) {
  if (id == kInvalidProcess) return "p<invalid>";
  return "p" + std::to_string(id);
}

}  // namespace scup
