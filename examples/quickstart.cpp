// Quickstart: the paper's Fig. 1 network, end to end.
//
// Eight processes start knowing only their participant detector output
// (PD_i) and the fault threshold f = 1; process 8 (paper numbering) is
// Byzantine and stays silent. Each correct process runs the full
// Stellar-on-CUP pipeline:
//
//   get_sink (Algorithm 3)  ->  build_slices (Algorithm 2)  ->  SCP
//
// and all of them decide the same value (Theorem 5).
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace scup;

  core::ScenarioConfig cfg;
  cfg.graph = graph::fig1_graph();
  cfg.f = 1;
  cfg.faulty = graph::fig1_faulty();  // paper process 8 = our id 7
  cfg.protocol = core::ProtocolKind::kStellarSd;
  cfg.adversary = core::AdversaryKind::kSilent;
  cfg.net.seed = 2023;

  std::printf("Fig. 1 knowledge connectivity graph (0-based ids):\n");
  for (ProcessId i = 0; i < cfg.graph.node_count(); ++i) {
    std::printf("  PD_%u = %s%s\n", i, cfg.graph.pd_of(i).to_string().c_str(),
                cfg.faulty.contains(i) ? "   <- Byzantine (silent)" : "");
  }

  const core::ScenarioReport report = core::run_scenario(cfg);

  std::printf("\nTrue sink component: %s\n",
              report.true_sink.to_string().c_str());
  std::printf("Sink detector: all returned=%s, estimate exact=%s, "
              "membership flags correct=%s\n",
              report.sd_all_returned ? "yes" : "no",
              report.sd_sink_exact ? "yes" : "no",
              report.sd_flags_correct ? "yes" : "no");

  std::printf("\nConsensus outcome: %s\n", report.summary().c_str());
  std::printf("Per-process decision times (simulated ticks):\n");
  for (ProcessId i = 0; i < cfg.graph.node_count(); ++i) {
    if (cfg.faulty.contains(i)) {
      std::printf("  p%u: (Byzantine)\n", i);
    } else {
      std::printf("  p%u: decided value %llu at t=%lld\n", i,
                  static_cast<unsigned long long>(report.decided_value),
                  static_cast<long long>(report.decision_times[i]));
    }
  }
  std::printf("\nNetwork totals: %zu messages, %.1f KiB\n",
              report.metrics.messages_sent,
              static_cast<double>(report.metrics.bytes_sent) / 1024.0);

  const bool ok = report.all_decided && report.agreement && report.validity;
  std::printf("\n%s\n", ok ? "SUCCESS: consensus reached (Theorem 5)."
                           : "FAILURE: consensus not reached!");
  return ok ? 0 : 1;
}
