// The SINK algorithm (direct sink discovery, Section VI step 1-3),
// reconstructed from the paper's three-step description of the BFT-CUP
// primitive of Alchieri et al.:
//
//  1. Knowledge expansion: starting from PD_i, process i queries every
//     process it can reach in its *certified knowledge graph* (the union of
//     PD certificates received so far) and merges the returned
//     certificates. A process j is admitted into the candidate set iff
//     j ∈ {i} ∪ PD_i (i's own oracle) or j is f-reachable from i in the
//     certified graph (Definition 9: f+1 internally-vertex-disjoint paths).
//     f-reachability is what makes expansion Byzantine-resilient: a
//     fabricated node needs f+1 disjoint certified paths, and with at most
//     f liars one of those paths is made of correct certificates only — so
//     everything admitted is genuinely reachable through correct knowledge,
//     while the safe Byzantine failure pattern ((f+1)-OSR residual)
//     guarantees every real sink member is admitted.
//  2. Once at most f candidates are unresponsive, i publishes
//     KNOWN(candidate set) to the candidates (republished on change).
//  3. If >= |V| - f members of V itself (self included) report KNOWN = V,
//     where V is i's candidate set and |V| >= 2f+1, then i concludes it is
//     a sink member and V is the sink (Lemma 6). Non-sink members' matching
//     never succeeds (their candidate strictly contains the sink, whose
//     members report differently); they rely on Algorithm 3's indirect
//     path.
#pragma once

#include <functional>
#include <map>

#include "common/node_set.hpp"
#include "cup/messages.hpp"
#include "graph/digraph.hpp"
#include "sim/host.hpp"

namespace scup::cup {

class SinkDiscovery {
 public:
  /// `pd` is the output of this process's participant detector.
  SinkDiscovery(sim::ProtocolHost& host, NodeSet pd);

  /// Begins knowledge expansion (queries PD members).
  void start();

  /// Feeds a received message; returns true if it was a discovery-layer
  /// message (consumed).
  bool handle(ProcessId from, const sim::Message& msg);

  /// True once step 3 succeeded (only sink members get here).
  bool finished() const { return finished_; }
  const NodeSet& sink() const { return candidate_; }

  /// True once >= f+1 processes published KNOWN sets different from ours —
  /// strong evidence of being a non-sink member (informational; the
  /// indirect path provides the actual sink).
  bool probably_non_sink() const { return probably_non_sink_; }

  const NodeSet& candidate_set() const { return candidate_; }
  const std::map<ProcessId, NodeSet>& certificates() const { return certs_; }
  const graph::Digraph& certified_graph() const { return cert_graph_; }

  /// Invoked exactly once when step 3 succeeds.
  std::function<void()> on_complete;

 private:
  void merge_certificate(const PdCertificate& cert);
  void merge_certificates(const std::map<ProcessId, NodeSet>& certs);
  /// Recomputes the candidate set (f-reachability), queries newly reachable
  /// nodes, and re-evaluates steps 2-3.
  void update();
  void maybe_publish_known();
  void check_match();
  PdCertificate own_cert() const { return {host_.self(), pd_}; }

  sim::ProtocolHost& host_;
  NodeSet pd_;
  std::size_t f_;

  std::map<ProcessId, NodeSet> certs_;  // owner -> claimed PD (union-merged)
  graph::Digraph cert_graph_;           // the certified knowledge graph
  bool graph_dirty_ = false;            // new edges since last update()

  NodeSet admitted_;  // f-reachability is monotone; cache positives
  NodeSet candidate_;
  NodeSet queried_;
  NodeSet responded_;
  std::map<ProcessId, NodeSet> latest_known_;  // sender -> last KNOWN set
  NodeSet last_published_;
  bool published_once_ = false;
  bool finished_ = false;
  bool probably_non_sink_ = false;
};

}  // namespace scup::cup
