// Multi-slot SCP: a ledger of consecutive consensus instances.
//
// The paper analyzes a single consensus instance ("Our analysis is for a
// single instance of consensus", Section III-A); a blockchain closes one
// instance per ledger slot. LedgerMultiplexer runs a chain of independent
// ScpNode instances, one per slot:
//  - outgoing envelopes are wrapped in SlotEnvelope{slot, envelope};
//  - each slot gets its own timer id (kLedgerTimerBase + slot);
//  - slot k starts when slot k-1 externalizes (value from a caller-supplied
//    provider, e.g. the next transaction batch);
//  - envelopes for not-yet-started slots are buffered by the slot's ScpNode
//    (lazily created) — but ONLY within a bounded window past the next slot
//    to start. Without the bound, one forged SlotEnvelope{slot = 10^18}
//    stream makes a Byzantine peer allocate an ScpNode (and buffer
//    envelopes) for any slot number it cares to name — a memory bomb in the
//    unbounded-slots configuration. Correct peers can never run more than a
//    couple of slots ahead (closing a slot needs a quorum that has reached
//    it), so a small window loses nothing.
//
// All slots share one fbqs::QuorumEngine: quorum sets are interned once per
// replica (not once per slot × sender) and the engine's evaluation counters
// aggregate chain-wide, reported into SimMetrics by the multiplexer.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "scp/scp_node.hpp"

namespace scup::scp {

inline constexpr int kLedgerTimerBase = 10'000;

/// Default bound on how far past `next_to_start_` a SlotEnvelope may name a
/// slot before it is dropped unprocessed.
inline constexpr std::size_t kDefaultSlotWindow = 16;

/// Timer id for a slot's ballot timer. Throws std::overflow_error instead
/// of silently wrapping when the slot number cannot be represented (the
/// historical `static_cast<int>(slot)` overflowed for slots past INT_MAX).
inline int ledger_timer_id(std::uint64_t slot) {
  constexpr auto kMax = static_cast<std::uint64_t>(
      std::numeric_limits<int>::max() - kLedgerTimerBase);
  if (slot > kMax) {
    throw std::overflow_error("ledger_timer_id: slot " +
                              std::to_string(slot) +
                              " exceeds the timer id space");
  }
  // scup-lint: bounded(slot <= INT_MAX - kLedgerTimerBase checked above; overflow throws)
  return kLedgerTimerBase + static_cast<int>(slot);
}

struct SlotEnvelope final : sim::Message {
  SlotEnvelope(std::uint64_t s, Envelope e) : slot(s), envelope(std::move(e)) {}
  std::uint64_t slot;
  Envelope envelope;
  std::string type_name() const override {
    return "scp.slot." + envelope.type_name().substr(4);
  }
  std::size_t byte_size() const override { return 8 + envelope.byte_size(); }
  std::uint16_t wire_type() const override { return kWireTypeSlotEnvelope; }
  void wire_encode(sim::WireWriter& w) const override {
    w.u64(slot);
    wire_put_envelope(w, envelope);
  }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const std::uint64_t slot = r.u64();
    std::optional<Envelope> env = wire_get_envelope(r);
    if (!r.ok() || !env.has_value()) return nullptr;
    return sim::make_message<SlotEnvelope>(slot, std::move(*env));
  }
};

class LedgerMultiplexer {
 public:
  /// `target_slots` — stop opening new slots after this many decisions
  /// (0 = unbounded). `slot_window` — accept SlotEnvelopes only for slots
  /// below next_to_start_ + slot_window; envelopes naming farther slots are
  /// dropped without allocating anything (Byzantine memory-bomb bound).
  LedgerMultiplexer(sim::ProtocolHost& host, std::size_t universe,
                    fbqs::QSet qset, std::size_t target_slots,
                    ScpConfig scp_config = {},
                    std::size_t slot_window = kDefaultSlotWindow);

  /// Supplies the proposal for each slot (must be non-zero). Required
  /// before start().
  std::function<Value(std::uint64_t slot)> value_provider;

  /// Fired once per decided slot, in slot order.
  std::function<void(std::uint64_t slot, Value value)> on_slot_decided;

  void set_qset(fbqs::QSet qset);
  void add_peer(ProcessId peer);

  /// Starts slot 1.
  void start();
  bool started() const { return started_; }

  bool handle(ProcessId from, const sim::Message& msg);

  /// Routes ledger timer ids; returns true iff the id mapped to an existing
  /// slot (ids in the ledger range with no matching slot are NOT claimed,
  /// so composed protocols may use high timer ids).
  bool on_timer(int timer_id);

  /// Number of consecutively decided slots (1..k all externalized).
  /// O(1): maintained incrementally as decisions land.
  std::uint64_t decided_slots() const { return decided_prefix_; }
  bool slot_decided(std::uint64_t slot) const;
  Value slot_decision(std::uint64_t slot) const;

  /// Running hash of decisions 1..decided_slots(), for chain-equality
  /// checks across replicas. O(1): folded incrementally as the decided
  /// prefix advances (identical to rehashing the prefix from scratch).
  std::uint64_t chain_digest() const { return digest_; }

  /// Introspection for tests: the ScpNode of a slot, or nullptr.
  const ScpNode* slot_node(std::uint64_t slot) const;
  /// Number of slot instances currently allocated (tests: memory bound).
  std::size_t allocated_slots() const { return slots_.size(); }
  /// SlotEnvelopes dropped by the far-future window bound.
  std::uint64_t envelopes_dropped() const { return envelopes_dropped_; }
  /// The shared quorum-evaluation layer (stats aggregate across slots).
  const fbqs::QuorumEngine& engine() const { return engine_; }

  /// Test hook: rehash every unordered table under this replica (the
  /// shared engine plus each live slot's support index), scrambling
  /// iteration orders mid-run. The determinism regression suite calls this
  /// between events and requires bit-identical chains and sign logs.
  void debug_rehash(std::size_t bucket_count) {
    engine_.debug_rehash(bucket_count);
    for (auto& [slot, entry] : slots_) {
      if (entry.node) entry.node->debug_rehash(bucket_count);
    }
  }

 private:
  /// Per-slot host shim: namespaces messages and timers by slot.
  ///
  /// Broadcasts are zero-copy: ScpNode sends one shared Envelope to every
  /// peer, and the shim wraps it in a SlotEnvelope once, handing the same
  /// immutable wrapper to every destination (cache keyed on the inner
  /// message's identity, held by MessagePtr so the address cannot be
  /// recycled under the cache). kSlotWraps / kSlotWrapsShared count
  /// constructions vs cache hits.
  class SlotHost final : public sim::ProtocolHost {
   public:
    SlotHost(LedgerMultiplexer& mux, std::uint64_t slot)
        : mux_(mux), slot_(slot) {}
    ProcessId self() const override { return mux_.host_.self(); }
    std::size_t universe() const override { return mux_.host_.universe(); }
    std::size_t fault_threshold() const override {
      return mux_.host_.fault_threshold();
    }
    void host_send(ProcessId to, sim::MessagePtr msg) override;
    void host_set_timer(int timer_id, SimTime delay) override;
    SimTime host_now() const override { return mux_.host_.host_now(); }
    std::uint64_t host_sign(std::uint64_t statement) const override {
      return mux_.host_.host_sign(statement);
    }
    bool host_verify(ProcessId signer, std::uint64_t statement,
                     std::uint64_t token) const override {
      return mux_.host_.host_verify(signer, statement, token);
    }

   private:
    LedgerMultiplexer& mux_;
    std::uint64_t slot_;
    sim::MessagePtr last_inner_;    // pins the cached payload's identity
    sim::MessagePtr last_wrapped_;  // its SlotEnvelope, shared by all sends
  };

  struct Slot {
    std::unique_ptr<SlotHost> shim;
    std::unique_ptr<ScpNode> node;
  };

  Slot& ensure_slot(std::uint64_t slot);
  void start_slot(std::uint64_t slot);
  void on_decided(std::uint64_t slot, Value value);
  void flush_counters();

  sim::ProtocolHost& host_;
  std::size_t universe_;
  fbqs::QSet qset_;
  std::size_t target_slots_;
  ScpConfig scp_config_;
  std::size_t slot_window_;
  NodeSet peers_;
  bool started_ = false;
  std::uint64_t next_to_start_ = 1;
  std::map<std::uint64_t, Slot> slots_;
  std::map<std::uint64_t, Value> decisions_;
  /// Contiguously decided prefix (1..decided_prefix_ all externalized) and
  /// the running digest over exactly that prefix.
  std::uint64_t decided_prefix_ = 0;
  std::uint64_t digest_ = 0;
  std::uint64_t envelopes_dropped_ = 0;
  /// Shared across all slots; interning + closure memoization chain-wide.
  fbqs::QuorumEngine engine_;
  fbqs::QuorumEngineStats flushed_;
};

}  // namespace scup::scp
