// Protocol instrumentation counters.
//
// Protocol components (SCP's QuorumEngine today; any layer tomorrow) report
// work counters into the simulation's SimMetrics through
// ProtocolHost::host_counter_add. The counter set is a fixed enum — not a
// runtime registry — so ids are stable across processes and threads and
// SimMetrics equality (the E12 serial==parallel identity check) stays a
// plain memberwise compare.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scup::sim {

enum class ProtoCounter : std::uint8_t {
  /// Algorithm-1 closures actually executed (cache misses).
  kQuorumClosureRuns = 0,
  /// Closure answers served from the support-fingerprint cache.
  kQuorumClosureCacheHits,
  /// Flattened QSet evaluations (satisfied_by / blocked_by) actually run.
  kQsetEvals,
  /// Evaluations the rescan-every-check baseline would have run (counted by
  /// the same code path; the E13 savings denominator).
  kQsetEvalsBaseline,
  /// Incremental support-view refreshes (one per tracked envelope change).
  kSupportUpdates,
  /// Support views built from scratch (first query of a predicate, or
  /// rebuild after a cap eviction).
  kSupportRebuilds,
  /// SlotEnvelope wrappers constructed by the ledger's per-slot host shim
  /// (one per distinct broadcast payload after the shared-wrap cache).
  kSlotWraps,
  /// host_send calls served by the shim's cached wrapper instead of a
  /// fresh deep copy (the zero-copy broadcast path).
  kSlotWrapsShared,
  /// Discovery broadcast payloads (DISCOVER / KNOWN / gossip replies)
  /// actually constructed — one per state change, by the shared-payload
  /// caches in cup::SinkDiscovery.
  kDiscoveryPayloadBuilds,
  /// Discovery sends served by a cached shared payload instead of a fresh
  /// construction + per-destination size walk.
  kDiscoveryPayloadShared,
  /// Wire frames encoded — exactly one per codec-bearing message object,
  /// however many destinations its broadcast fans out to (the E16
  /// encode-once proof: kWireEncodes == distinct messages, not sends).
  kWireEncodes,
  /// Sends whose traffic accounting was served from a message's cached
  /// frame size (every send of a codec-bearing message after its first).
  kWireCachedSends,
  kCount,
};

inline constexpr std::size_t kProtoCounterCount =
    static_cast<std::size_t>(ProtoCounter::kCount);

/// Stable report-time name ("scp.closure_runs", ...).
const char* proto_counter_name(ProtoCounter c);

}  // namespace scup::sim
