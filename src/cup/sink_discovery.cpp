#include "cup/sink_discovery.hpp"

#include <map>

#include "graph/dominators.hpp"

namespace scup::cup {

SinkDiscovery::SinkDiscovery(sim::ProtocolHost& host, NodeSet pd,
                             DiscoveryConfig config)
    : host_(host),
      pd_(std::move(pd)),
      f_(host.fault_threshold()),
      config_(config),
      cert_graph_(pd_.universe_size()),
      new_edge_heads_(pd_.universe_size()),
      admitted_(pd_.universe_size()),
      candidate_(pd_.universe_size()),
      queried_(pd_.universe_size()),
      responded_(pd_.universe_size()),
      last_published_(pd_.universe_size()),
      neg_cuts_(pd_.universe_size()),
      prev_reachable_(pd_.universe_size()) {}

void SinkDiscovery::start() {
  merge_certificate(own_cert());
  update();
  if (config_.requery_interval > 0) {
    host_.host_set_timer(kDiscoveryRequeryTimerId, config_.requery_interval);
  }
}

bool SinkDiscovery::on_timer(int timer_id) {
  if (timer_id != kDiscoveryRequeryTimerId) return false;
  if (finished_ || requery_stopped_) return true;  // done; let it lapse
  // Retransmit to queried nodes we never heard back from — their DISCOVER
  // (or its reply) may have been lost pre-GST. Receivers are idempotent:
  // a duplicate DISCOVER merges an already-known certificate and re-sends
  // the (shared, cached) gossip reply.
  for (ProcessId j : queried_) {
    if (j == host_.self() || responded_.contains(j)) continue;
    host_.host_send(j, shared_payload(cached_discover_, [this] {
      return sim::make_message<DiscoverMsg>(own_cert());
    }));
  }
  // Re-publish the last KNOWN set: a lost KNOWN would otherwise keep a
  // peer's step-3 match one report short forever (publication is normally
  // change-triggered only).
  if (published_once_) {
    for (ProcessId j : last_published_) {
      if (j == host_.self()) continue;
      host_.host_send(j, shared_payload(cached_known_, [this] {
        return sim::make_message<KnownMsg>(last_published_);
      }));
    }
  }
  host_.host_set_timer(kDiscoveryRequeryTimerId, config_.requery_interval);
  return true;
}

bool SinkDiscovery::handle(ProcessId from, const sim::Message& msg) {
  if (const auto* discover = dynamic_cast<const DiscoverMsg*>(&msg)) {
    merge_certificate(discover->cert);
    responded_.add(from);
    // Reply with everything we hold (knowledge flows backward along the
    // query; certificates are forwardable because they are signed).
    host_.host_send(from, gossip_reply());
    update();
    return true;
  }
  if (const auto* gossip = dynamic_cast<const CertGossipMsg*>(&msg)) {
    merge_certificates(gossip->certs);
    responded_.add(from);
    update();
    return true;
  }
  if (const auto* known = dynamic_cast<const KnownMsg*>(&msg)) {
    if (known->known.universe_size() == host_.universe()) {
      // scup-lint: bounded(keyed by sender id, at most one entry per process in the universe)
      // scup-sanitize: `from` is the transport-authenticated sender id, not payload
      latest_known_[from] = known->known;
      responded_.add(from);
      update();
    }
    return true;
  }
  return false;
}

sim::MessagePtr SinkDiscovery::gossip_reply() {
  // The reply is immutable and identical for every requester until the next
  // certificate change (merge_certificate resets the cache), so one shared
  // message serves all of them — one construction *and one byte_size walk*
  // per certificate state; the per-DISCOVER map copy used to dominate
  // large-n discovery cost.
  return shared_payload(cached_gossip_, [this] {
    return sim::make_message<CertGossipMsg>(certs_);
  });
}

void SinkDiscovery::merge_certificate(const PdCertificate& cert) {
  if (cert.owner == kInvalidProcess || cert.owner >= host_.universe() ||
      cert.pd.universe_size() != host_.universe()) {
    return;  // malformed; ignore
  }
  auto [it, inserted] = certs_.emplace(cert.owner, cert.pd);
  if (!inserted) {
    // Union-merge: a Byzantine owner issuing conflicting certificates
    // converges to the union at every correct receiver (deterministic).
    const NodeSet merged = it->second | cert.pd;
    if (merged == it->second) return;  // nothing new
    it->second = merged;
  }
  cached_gossip_.reset();
  for (ProcessId target : it->second) {
    if (!cert_graph_.has_edge(cert.owner, target)) {
      cert_graph_.add_edge(cert.owner, target);
      new_edge_heads_.add(target);
      new_edges_.emplace_back(cert.owner, target);
    }
  }
}

void SinkDiscovery::merge_certificates(
    const std::map<ProcessId, NodeSet>& certs) {
  for (const auto& [owner, pd] : certs) {
    merge_certificate({owner, pd});
  }
}

void SinkDiscovery::update() {
  if (finished_) return;
  ++stats_.updates;
  if (!new_edge_heads_.empty() || candidate_.empty()) {
    recheck_admissions();
  }
  maybe_publish_known();
  check_match();
}

void SinkDiscovery::recheck_admissions() {
  const ProcessId self = host_.self();
  ++stats_.dirty_updates;
  if (!new_edges_.empty()) ++stats_.cert_epoch;

  // Plain reachability bounds both the query set and the f-reachability
  // candidates (f-reachable implies reachable).
  const NodeSet reachable = cert_graph_.reachable_from(self);

  // Query everything reachable — their certificates may be needed to
  // certify disjoint paths — even nodes not (yet) admitted. One immutable
  // query message serves every target, across every update *and* every
  // retransmission (own_cert() is frozen at construction).
  for (ProcessId j : reachable) {
    if (j == self || queried_.contains(j)) continue;
    queried_.add(j);
    host_.host_send(j, shared_payload(cached_discover_, [this] {
      return sim::make_message<DiscoverMsg>(own_cert());
    }));
  }

  // Candidate set: self, own PD (trusted oracle output), and every node
  // f-reachable in the certified graph (Definition 9). Both the graph and
  // the property are monotone, so previously admitted nodes stay — and a
  // cached *negative* verdict stays valid until new knowledge can reach the
  // node: only nodes downstream of this batch's new edge heads are
  // re-evaluated. (A path created by a new edge (u, v) ends with a v→…→j
  // suffix, so j is reachable from v; the same argument covers nodes that
  // became reachable or gained active interior nodes since the last check.)
  const NodeSet affected =
      cert_graph_.reachable_from_any(new_edge_heads_, reachable);
  new_edge_heads_.clear();

  // Nodes that became reachable bring their previously-inactive in-edges
  // into the network; treat those as part of this batch for the
  // cut-crossing test below.
  for (ProcessId w : reachable) {
    if (prev_reachable_.contains(w)) continue;
    for (ProcessId p : cert_graph_.predecessors(w)) {
      new_edges_.emplace_back(p, w);
    }
  }
  prev_reachable_ = reachable;

  // A cached failure certificate stays conclusive unless some new edge
  // jumps from its source side past its separator (then a path avoiding
  // the old cut may exist and the node must be re-evaluated). Every cached
  // cut must be tested against every batch — a node can sit outside this
  // batch's `affected` set (sound: no new path reaches it yet) while a
  // crossing edge already voids its certificate for a later batch.
  const auto cut_still_separates =
      [this](const graph::DisjointPathEngine::VertexCut& cut) {
        for (const auto& [tail, head] : new_edges_) {
          if (cut.source_side.contains(tail) &&
              !cut.source_side.contains(head) && !cut.cut.contains(head)) {
            return false;
          }
        }
        return true;
      };
  if (!new_edges_.empty()) {
    for (auto& cut : neg_cuts_) {
      if (cut && !cut_still_separates(*cut)) cut.reset();
    }
  }

  // Menger bound at the source: f+1 disjoint paths leave self through f+1
  // distinct certified out-edges.
  std::size_t self_out_degree = 0;
  for (ProcessId x : cert_graph_.successors(self)) {
    if (reachable.contains(x)) ++self_out_degree;
  }
  const bool source_can_admit = self_out_degree >= f_ + 1;

  bool engine_ready = false;
  bool domtree_ready = false;
  std::vector<ProcessId> idom;
  std::map<ProcessId, NodeSet> dom_subtrees;  // separator -> dominated set
  for (ProcessId j : reachable) {
    if (admitted_.contains(j) || j == self || pd_.contains(j)) continue;
    // The pre-incremental algorithm re-ran the max-flow check here
    // unconditionally; count what it would have cost (E11's baseline).
    ++stats_.flow_evals_baseline;
    if (!affected.contains(j)) {
      ++stats_.memoized_skips;
      continue;
    }
    // Menger bound at the target: f+1 disjoint paths arrive over f+1
    // distinct certified in-edges from active nodes.
    std::size_t in_degree = 0;
    if (source_can_admit) {
      for (ProcessId p : cert_graph_.predecessors(j)) {
        if (reachable.contains(p) && ++in_degree > f_) break;
      }
    }
    if (in_degree < f_ + 1) {
      ++stats_.degree_prunes;
      continue;
    }
    if (neg_cuts_[j]) {  // surviving certificate: verdict still negative
      ++stats_.cut_skips;
      continue;
    }
    if (f_ == 0) {
      // One path suffices and j is reachable by construction of the loop.
      admitted_.add(j);
      neg_cuts_[j].reset();
      continue;
    }
    if (f_ == 1 && !cert_graph_.has_edge(self, j)) {
      // Menger for k = 2, single source: a non-adjacent j has two
      // internally-disjoint paths from self iff its only proper dominator
      // is self. One dominator pass decides every pending node this
      // update; a certified direct edge self → j (only forged self
      // certificates create one, since honest self edges are exactly
      // pd_) falls through to the exact max-flow path.
      if (!domtree_ready) {
        idom = graph::immediate_dominators(cert_graph_, self, reachable);
        ++stats_.domtree_passes;
        domtree_ready = true;
      }
      if (idom[j] == self) {
        admitted_.add(j);
        neg_cuts_[j].reset();
      } else {
        // idom(j) is a one-vertex separator: cache it like a flow-derived
        // cut so j is not reconsidered until an edge bypasses it.
        const ProcessId c = idom[j];
        auto it = dom_subtrees.find(c);
        if (it == dom_subtrees.end()) {
          it = dom_subtrees
                   .emplace(c, graph::dominated_by(idom, self, c,
                                                   pd_.universe_size()))
                   .first;
        }
        neg_cuts_[j] = graph::DisjointPathEngine::VertexCut{
            reachable - it->second, NodeSet(pd_.universe_size(), {c})};
      }
      continue;
    }
    if (!engine_ready) {
      path_engine_.prepare(cert_graph_, reachable);
      engine_ready = true;
    }
    ++stats_.flow_evals;
    if (path_engine_.has_k_paths(self, j, f_ + 1)) {
      admitted_.add(j);
      neg_cuts_[j].reset();
    } else {
      neg_cuts_[j] = path_engine_.extract_cut(self, j);
    }
  }
  new_edges_.clear();
  candidate_ = admitted_ | pd_;
  candidate_.add(self);
}

void SinkDiscovery::maybe_publish_known() {
  // Step 2 stability: at most f candidates unresponsive.
  NodeSet pending = candidate_;
  pending.remove(host_.self());
  pending -= responded_;
  if (pending.count() > f_) return;

  if (published_once_ && last_published_ == candidate_) return;
  published_once_ = true;
  last_published_ = candidate_;
  cached_known_.reset();  // the payload tracks last_published_
  for (ProcessId j : candidate_) {
    if (j == host_.self()) continue;
    host_.host_send(j, shared_payload(cached_known_, [this] {
      return sim::make_message<KnownMsg>(last_published_);
    }));
  }
}

void SinkDiscovery::check_match() {
  if (finished_ || !published_once_) return;

  // Step 3: count members of our candidate set whose latest KNOWN equals
  // it (ourselves included) and members that disagree. Outsider echoes
  // are meaningless either way: the claim is that the candidate set is a
  // self-contained sink, so only its members' views matter — in particular
  // f+1 chatty non-members must not be able to raise probably_non_sink_.
  std::size_t matching = 1;  // self
  std::size_t different = 0;
  for (const auto& [sender, known] : latest_known_) {
    if (!candidate_.contains(sender)) continue;
    if (known == candidate_) {
      ++matching;
    } else {
      ++different;
    }
  }
  if (different >= f_ + 1) probably_non_sink_ = true;

  // The sink is guaranteed to hold >= 2f+1 correct members (Theorem 1's
  // precondition), so smaller candidates can never be the sink; requiring
  // it also rules out degenerate matches on tiny intermediate candidates.
  if (candidate_.count() >= 2 * f_ + 1 &&
      matching >= candidate_.count() - f_) {
    finished_ = true;
    if (on_complete) on_complete();
  }
}

}  // namespace scup::cup
