#include "core/experiment.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "bftcup/bftcup_node.hpp"
#include "core/adversaries.hpp"
#include "core/stellar_cup_node.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"

namespace scup::core {

Value default_value(ProcessId i) { return 1000 + i; }

namespace {

/// Installs the adversary implementation for faulty process `i`.
void install_adversary(sim::Simulation& sim, const ScenarioConfig& config,
                       ProcessId i) {
  const NodeSet pd = config.graph.pd_of(i);
  const std::size_t n = config.graph.node_count();
  switch (config.adversary) {
    case AdversaryKind::kSilent:
      sim.emplace_process<SilentNode>(i);
      return;
    case AdversaryKind::kDiscoveryLiar: {
      // Fabricate edges to the two lowest non-sink ids (dragging outsiders
      // toward the sink estimate) — the attack Theorem-6's filter defeats.
      const NodeSet sink = graph::unique_sink_component(config.graph);
      NodeSet fake(n);
      for (ProcessId v = 0; v < n && fake.count() < 2; ++v) {
        if (!sink.contains(v) && v != i) fake.add(v);
      }
      if (fake.empty()) fake = pd;
      sim.emplace_process<DiscoveryLiarNode>(i, pd, fake, config.f);
      return;
    }
    case AdversaryKind::kDiscoveryEquivocator: {
      const NodeSet sink = graph::unique_sink_component(config.graph);
      NodeSet fake_a(n), fake_b(n);
      for (ProcessId v = 0; v < n; ++v) {
        if (sink.contains(v) || v == i) continue;
        if (fake_a.count() < 1) {
          fake_a.add(v);
        } else if (fake_b.count() < 1) {
          fake_b.add(v);
        }
      }
      if (fake_a.empty()) fake_a = pd;
      if (fake_b.empty()) fake_b = pd;
      sim.emplace_process<DiscoveryLiarNode>(i, pd, fake_a, config.f, fake_b);
      return;
    }
    case AdversaryKind::kScpEquivocator:
      sim.emplace_process<ScpEquivocatorNode>(i, pd, config.f,
                                              /*value_a=*/1, /*value_b=*/2);
      return;
  }
  throw std::logic_error("unknown adversary kind");
}

}  // namespace

ScenarioReport run_scenario(const ScenarioConfig& config) {
  const std::size_t n = config.graph.node_count();
  // Crash faults and Byzantine placements share the failure budget.
  NodeSet failure_budget = config.faulty;
  for (const auto& [who, when] : config.crashes) {
    if (who >= n) throw std::invalid_argument("run_scenario: bad crash id");
    if (when < 0) throw std::invalid_argument("run_scenario: bad crash time");
    failure_budget.add(who);
  }
  if (failure_budget.count() > config.f) {
    throw std::invalid_argument("run_scenario: |faulty ∪ crashed| > f");
  }

  sim::Simulation sim(n, config.net);
  std::vector<StellarCupNode*> stellar(n, nullptr);
  std::vector<bftcup::BftCupNode*> bft(n, nullptr);

  cup::DiscoveryConfig discovery;
  discovery.requery_interval = config.discovery_requery;
  for (ProcessId i = 0; i < n; ++i) {
    if (config.faulty.contains(i)) {
      install_adversary(sim, config, i);
      continue;
    }
    const Value value =
        i < config.values.size() ? config.values[i] : default_value(i);
    const NodeSet pd = config.graph.pd_of(i);
    if (config.protocol == ProtocolKind::kStellarSd) {
      StellarCupConfig node_config;
      node_config.discovery = discovery;
      stellar[i] = &sim.emplace_process<StellarCupNode>(i, pd, config.f, value,
                                                        node_config);
    } else {
      bft[i] = &sim.emplace_process<bftcup::BftCupNode>(
          i, pd, config.f, value, bftcup::PbftConfig{}, discovery);
    }
  }
  for (ProcessId i = 0; i < n && i < config.activations.size(); ++i) {
    if (config.activations[i] > 0) sim.activate(i, config.activations[i]);
  }
  for (const auto& [who, when] : config.crashes) sim.crash_at(who, when);

  const NodeSet correct = config.faulty.complement();
  // Termination is owed by correct processes that have not crash-stopped;
  // a crashed process may still have decided before its crash.
  auto all_decided = [&] {
    for (ProcessId i : correct) {
      if (sim.crashed(i)) continue;
      const bool decided = stellar[i] != nullptr ? stellar[i]->decided()
                                                 : bft[i]->decided();
      if (!decided) return false;
    }
    return true;
  };

  sim.set_shards(config.shards);
  sim.start();
  sim.run_until(all_decided, config.deadline);

  ScenarioReport report;
  report.true_sink = graph::unique_sink_component(config.graph);
  report.decision_times.assign(n, kTimeInfinity);
  report.all_decided = true;
  report.agreement = true;
  report.sd_all_returned = true;
  report.sd_sink_exact = true;
  report.sd_flags_correct = true;
  report.sd_last_return = 0;

  std::optional<Value> agreed;
  for (ProcessId i : correct) {
    const bool decided =
        stellar[i] != nullptr ? stellar[i]->decided() : bft[i]->decided();
    if (!decided) {
      // Crash-stopped processes owe nothing further; everyone else does.
      if (!sim.crashed(i)) report.all_decided = false;
      continue;
    }
    const Value v =
        stellar[i] != nullptr ? stellar[i]->decision() : bft[i]->decision();
    const SimTime t = stellar[i] != nullptr ? stellar[i]->decision_time()
                                            : bft[i]->decision_time();
    report.decision_times[i] = t;
    report.first_decision = std::min(report.first_decision, t);
    if (report.last_decision == kTimeInfinity) report.last_decision = t;
    report.last_decision = std::max(report.last_decision, t);
    if (!agreed) {
      agreed = v;
    } else if (*agreed != v) {
      report.agreement = false;
    }

    const bool sd_done = stellar[i] != nullptr ? stellar[i]->sink_detected()
                                               : bft[i]->sink_detected();
    if (!sd_done) {
      report.sd_all_returned = false;
    } else {
      const auto& r = stellar[i] != nullptr ? stellar[i]->sink_result()
                                            : bft[i]->sink_result();
      if (!(r.sink == report.true_sink)) report.sd_sink_exact = false;
      if (r.is_sink_member != report.true_sink.contains(i)) {
        report.sd_flags_correct = false;
      }
      if (stellar[i] != nullptr) {
        report.sd_last_return =
            std::max(report.sd_last_return, stellar[i]->sink_detect_time());
      }
    }
  }
  if (agreed) {
    report.decided_value = *agreed;
    // Validity: the decided value was proposed by some process. Correct
    // proposals are known; the ScpEquivocator proposes {1, 2}; any process
    // may propose default_value(i).
    for (ProcessId i = 0; i < n; ++i) {
      const Value proposal =
          i < config.values.size() ? config.values[i] : default_value(i);
      if (*agreed == proposal) report.validity = true;
    }
    if (config.adversary == AdversaryKind::kScpEquivocator &&
        (*agreed == 1 || *agreed == 2)) {
      report.validity = true;
    }
  }

  report.metrics = sim.metrics();
  report.notary_fingerprint = sim.notary().fingerprint();
  report.end_time = sim.now();
  return report;
}

ScenarioConfig large_scale_scenario(const LargeScaleParams& params) {
  if (params.n < 4 * params.f + 2) {
    throw std::invalid_argument(
        "large_scale_scenario: need n >= 4f+2 (sink of 3f+1 plus at least "
        "f+1 non-sink processes)");
  }
  const auto fraction_size =
      static_cast<std::size_t>(static_cast<double>(params.n) *
                               params.sink_fraction);
  const std::size_t sink_size =
      std::clamp(fraction_size, 3 * params.f + 1, params.n - 1);

  graph::KosrGenParams gen;
  gen.sink_size = sink_size;
  gen.non_sink_size = params.n - sink_size;
  gen.k = 2 * params.f + 1;
  gen.seed = params.seed;

  ScenarioConfig cfg;
  cfg.graph = graph::random_kosr_graph(gen);
  cfg.f = params.f;
  cfg.faulty = NodeSet(params.n);
  if (params.with_faults && params.f > 0) {
    Rng rng(params.seed ^ 0xfa17ULL);
    cfg.faulty = graph::pick_safe_faulty_set(
        cfg.graph, graph::unique_sink_component(cfg.graph), params.f,
        /*allow_in_sink=*/true, rng);
  }
  cfg.protocol = params.protocol;
  cfg.net.seed = params.seed * 31 + 7;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = 10;
  // Discovery alone costs O(n) message rounds; scale the deadline with n so
  // large instances are bounded by correctness, not by an arbitrary cap.
  cfg.deadline = 1'000'000 + static_cast<SimTime>(params.n) * 50'000;
  return cfg;
}

ScenarioConfig churn_partition_scenario(const ChurnPartitionParams& params) {
  if (params.n < 4 * params.f + 2) {
    throw std::invalid_argument("churn_partition_scenario: need n >= 4f+2");
  }
  if (params.late_fraction < 0.0 || params.late_fraction > 1.0) {
    throw std::invalid_argument(
        "churn_partition_scenario: late_fraction outside [0, 1]");
  }
  const auto fraction_size = static_cast<std::size_t>(
      static_cast<double>(params.n) * params.sink_fraction);
  const std::size_t sink_size =
      std::clamp(fraction_size, 3 * params.f + 1, params.n - 1);

  graph::KosrGenParams gen;
  gen.sink_size = sink_size;
  gen.non_sink_size = params.n - sink_size;
  gen.k = 2 * params.f + 1;
  gen.seed = params.seed;

  ScenarioConfig cfg;
  cfg.graph = graph::random_kosr_graph(gen);
  cfg.f = params.f;
  cfg.faulty = NodeSet(params.n);
  cfg.protocol = params.protocol;
  const NodeSet sink = graph::unique_sink_component(cfg.graph);

  // The failure budget goes either to a worst-case Byzantine placement or
  // to crash faults of the same placement at gst/2 — never both (|F| <= f).
  if (params.f > 0) {
    Rng placement_rng(params.seed ^ 0xfa17ULL);
    const NodeSet failures = graph::pick_safe_faulty_set(
        cfg.graph, sink, params.f, /*allow_in_sink=*/true, placement_rng);
    if (params.with_crash) {
      for (ProcessId p : failures) {
        cfg.crashes.emplace_back(p, params.gst / 2);
      }
    } else {
      cfg.faulty = failures;
    }
  }

  // Churn: a fraction of the correct non-sink processes activates late,
  // spread over (0, late_window]. Sink members all start at 0 — the sink
  // must exist for late joiners to discover.
  Rng churn_rng(params.seed ^ 0xc4c4ULL);
  std::vector<ProcessId> joiners;
  for (ProcessId i = 0; i < params.n; ++i) {
    if (!sink.contains(i) && !cfg.faulty.contains(i)) joiners.push_back(i);
  }
  churn_rng.shuffle(joiners);
  const auto late_count = static_cast<std::size_t>(
      static_cast<double>(joiners.size()) * params.late_fraction);
  if (late_count > 0 && params.late_window > 0) {
    cfg.activations.assign(params.n, 0);
    for (std::size_t k = 0; k < late_count; ++k) {
      cfg.activations[joiners[k]] =
          churn_rng.uniform_range(1, params.late_window);
    }
  }

  // Partition: half the sink is cut off from everyone else until GST (the
  // reliable-channel model requires the heal; crossing messages defer).
  cfg.net.gst = params.gst;
  if (params.with_partition && params.gst > 0) {
    NodeSet side(params.n);
    const std::size_t side_size = sink.count() / 2;
    for (ProcessId p : sink) {
      if (side.count() >= side_size) break;
      side.add(p);
    }
    if (!side.empty()) {
      cfg.net.partitions.push_back({std::move(side), 0, params.gst});
    }
  }
  cfg.net.pre_gst_drop = params.pre_gst_drop;
  // Loss breaks the one-shot query pattern of discovery; retransmission
  // restores liveness (see cup::DiscoveryConfig).
  if (params.pre_gst_drop > 0.0) cfg.discovery_requery = 250;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = 10;
  cfg.net.pre_gst_max_delay = 200;
  cfg.net.seed = params.seed * 31 + 7;
  cfg.deadline = params.gst + 1'000'000 +
                 static_cast<SimTime>(params.n) * 50'000;
  return cfg;
}

std::string ScenarioReport::summary() const {
  std::ostringstream os;
  os << "decided=" << (all_decided ? "all" : "NOT-ALL")
     << " agreement=" << (agreement ? "yes" : "VIOLATED")
     << " validity=" << (validity ? "yes" : "NO") << " value=" << decided_value
     << " t_first=" << first_decision << " t_last=" << last_decision
     << " msgs=" << metrics.messages_sent << " bytes=" << metrics.bytes_sent;
  return os.str();
}

}  // namespace scup::core
