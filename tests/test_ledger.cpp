// Multi-slot ledger tests: chains of SCP instances (LedgerMultiplexer /
// LedgerNode) must agree slot by slot — the blockchain deployment of
// Corollary 2.
#include "core/ledger_node.hpp"

#include <gtest/gtest.h>

#include "core/adversaries.hpp"
#include "graph/generators.hpp"
#include "graph/kosr.hpp"
#include "graph/scc.hpp"
#include "sim/simulation.hpp"

namespace scup::core {
namespace {

struct LedgerHarness {
  LedgerHarness(const graph::Digraph& g, std::size_t f, const NodeSet& faulty,
                std::size_t slots, std::uint64_t seed = 1) {
    sim::NetworkConfig net;
    net.seed = seed;
    net.min_delay = 1;
    net.max_delay = 10;
    sim = std::make_unique<sim::Simulation>(g.node_count(), net);
    nodes.assign(g.node_count(), nullptr);
    for (ProcessId i = 0; i < g.node_count(); ++i) {
      if (faulty.contains(i)) {
        sim->emplace_process<SilentNode>(i);
        continue;
      }
      nodes[i] =
          &sim->emplace_process<LedgerNode>(i, g.pd_of(i), f, slots);
    }
    correct = faulty.complement();
    target = slots;
  }

  bool run(SimTime deadline = 3'000'000) {
    sim->start();
    return sim->run_until(
        [&] {
          for (ProcessId i : correct) {
            if (nodes[i]->decided_slots() < target) return false;
          }
          return true;
        },
        deadline);
  }

  std::unique_ptr<sim::Simulation> sim;
  std::vector<LedgerNode*> nodes;
  NodeSet correct;
  std::uint64_t target = 0;
};

TEST(LedgerTest, FiveSlotsOnFig1AllChainsIdentical) {
  LedgerHarness h(graph::fig1_graph(), 1, graph::fig1_faulty(), 5);
  ASSERT_TRUE(h.run());
  const ProcessId first = h.correct.min_member();
  const std::uint64_t digest = h.nodes[first]->chain_digest();
  EXPECT_NE(digest, 0u);
  for (ProcessId i : h.correct) {
    EXPECT_EQ(h.nodes[i]->decided_slots(), 5u) << "i=" << i;
    EXPECT_EQ(h.nodes[i]->chain_digest(), digest) << "i=" << i;
    for (std::uint64_t slot = 1; slot <= 5; ++slot) {
      EXPECT_EQ(h.nodes[i]->slot_decision(slot),
                h.nodes[first]->slot_decision(slot))
          << "i=" << i << " slot=" << slot;
    }
  }
}

TEST(LedgerTest, SlotsDecideDistinctProposals) {
  // Default value provider makes proposals slot-dependent; consecutive
  // slots should (overwhelmingly) decide different values — i.e. the
  // multiplexer really runs separate instances.
  LedgerHarness h(graph::fig2_graph(), 1, NodeSet(7, {6}), 4, /*seed=*/9);
  ASSERT_TRUE(h.run());
  const ProcessId first = h.correct.min_member();
  std::set<Value> decided;
  for (std::uint64_t slot = 1; slot <= 4; ++slot) {
    decided.insert(h.nodes[first]->slot_decision(slot));
  }
  EXPECT_GE(decided.size(), 3u);
}

TEST(LedgerTest, CustomValueProviderIsUsed) {
  const auto g = graph::fig2_graph();
  LedgerHarness h(g, 1, NodeSet(7), 3, /*seed=*/4);
  for (ProcessId i = 0; i < 7; ++i) {
    h.nodes[i]->set_value_provider(
        [](std::uint64_t slot) { return 7'000 + slot; });
  }
  ASSERT_TRUE(h.run());
  for (std::uint64_t slot = 1; slot <= 3; ++slot) {
    EXPECT_EQ(h.nodes[0]->slot_decision(slot), 7'000 + slot);
  }
}

TEST(LedgerTest, WithSinkByzantine) {
  // A silent Byzantine *sink* member on Fig. 2 must not block the chain.
  LedgerHarness h(graph::fig2_graph(), 1, NodeSet(7, {2}), 4, /*seed=*/12);
  ASSERT_TRUE(h.run());
  const ProcessId first = h.correct.min_member();
  for (ProcessId i : h.correct) {
    EXPECT_EQ(h.nodes[i]->chain_digest(), h.nodes[first]->chain_digest());
  }
}

TEST(LedgerTest, ChainDigestPrefixConsistency) {
  // The chain digest covers exactly slots 1..decided_slots() — two nodes at
  // the same height have the same digest even mid-run.
  LedgerHarness h(graph::fig1_graph(), 1, NodeSet(8), 3, /*seed=*/21);
  h.sim->start();
  h.sim->run_until(
      [&] {
        for (ProcessId i : h.correct) {
          if (h.nodes[i]->decided_slots() < 1) return false;
        }
        return true;
      },
      2'000'000);
  std::map<std::uint64_t, std::uint64_t> digest_at_height;
  for (ProcessId i : h.correct) {
    const auto height = h.nodes[i]->decided_slots();
    if (height == 0) continue;
    // Recompute prefix digest at height via slot decisions.
    std::uint64_t d = 0;
    for (std::uint64_t s = 1; s <= height; ++s) {
      d = hash_mix(d, s, h.nodes[i]->slot_decision(s));
    }
    auto [it, inserted] = digest_at_height.emplace(height, d);
    EXPECT_EQ(it->second, d) << "fork at height " << height;
  }
}

TEST(LedgerMultiplexerTest, RequiresValueProvider) {
  // Direct unit check of the precondition.
  sim::Simulation sim(2, {});
  class Bare : public sim::ComposedNode {
   public:
    Bare() : ComposedNode(0), mux_(*this, 2, fbqs::QSet(), 1) {}
    void start() override { mux_.start(); }
    void on_message(ProcessId, const sim::MessagePtr&) override {}
    scp::LedgerMultiplexer mux_;
  };
  sim.emplace_process<Bare>(0);
  sim.emplace_process<SilentNode>(1);
  EXPECT_THROW(sim.start(), std::logic_error);
}

TEST(LedgerMultiplexerTest, SlotEnvelopeNaming) {
  const fbqs::QSet q = fbqs::QSet::threshold_of(1, std::vector<ProcessId>{0});
  const scp::SlotEnvelope e(
      3, scp::Envelope(0, 1, q, scp::Statement{scp::NominateStmt{}}));
  EXPECT_EQ(e.type_name(), "scp.slot.nominate");
  EXPECT_GT(e.byte_size(), 8u);
}

// Property sweep: random k-OSR graphs, 3-slot chains, random safe faults.
class LedgerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerPropertyTest, ChainsAgreeOnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 3 + 1);
  const std::size_t f = 1;
  graph::KosrGenParams params;
  params.sink_size = 5;
  params.non_sink_size = 2 + seed % 3;
  params.k = 2 * f + 1;
  params.seed = seed;
  const auto g = graph::random_kosr_graph(params);
  const NodeSet sink = graph::unique_sink_component(g);
  const NodeSet faulty =
      graph::pick_safe_faulty_set(g, sink, f, /*allow_in_sink=*/true, rng);

  LedgerHarness h(g, f, faulty, 3, seed);
  ASSERT_TRUE(h.run()) << "seed=" << seed;
  const ProcessId first = h.correct.min_member();
  for (ProcessId i : h.correct) {
    EXPECT_EQ(h.nodes[i]->chain_digest(), h.nodes[first]->chain_digest())
        << "seed=" << seed << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace scup::core
