// Wire messages of the knowledge-discovery layer (Section VI).
//
// Each message implements the wire codec (DESIGN.md §4.9): wire_type()
// names its frame id, wire_encode() appends the canonical little-endian
// payload, and wire_decode() rebuilds a message from an untrusted reader
// (returning nullptr on any malformed input). The sink-detector layer
// reuses KnownMsg/GetSinkMsg/SinkValueMsg, so these five codecs cover both
// discovery families.
#pragma once

#include <map>

#include "common/node_set.hpp"
#include "sim/message.hpp"
#include "sim/wire.hpp"

namespace scup::cup {

/// Frame ids 1..5 (see the allocation table in sim/wire.hpp callers).
inline constexpr std::uint16_t kWireTypeDiscover = 1;
inline constexpr std::uint16_t kWireTypeCertGossip = 2;
inline constexpr std::uint16_t kWireTypeKnown = 3;
inline constexpr std::uint16_t kWireTypeGetSink = 4;
inline constexpr std::uint16_t kWireTypeSinkValue = 5;

/// A participant-detector certificate: process `owner` asserts that its PD
/// equals `pd`. In the real system this would be signed by `owner`; here the
/// convention is that only `owner` (or an adversarial `owner`) creates
/// certificates for itself, and everyone may forward them. A Byzantine owner
/// may issue conflicting certificates; receivers merge them by union (see
/// DESIGN.md §4.1).
struct PdCertificate {
  ProcessId owner = kInvalidProcess;
  NodeSet pd;
};

/// DISCOVER: "send me what you know". Carries the sender's own certificate
/// so that knowledge also flows forward along the query.
struct DiscoverMsg final : sim::Message {
  explicit DiscoverMsg(PdCertificate c) : cert(std::move(c)) {}
  PdCertificate cert;
  std::string type_name() const override { return "cup.discover"; }
  std::size_t byte_size() const override {
    return 16 + cert.pd.count() * 4;
  }
  std::uint16_t wire_type() const override { return kWireTypeDiscover; }
  void wire_encode(sim::WireWriter& w) const override {
    w.u32(cert.owner);
    w.node_set(cert.pd);
  }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    PdCertificate cert;
    cert.owner = r.u32();
    cert.pd = r.node_set();
    if (!r.ok()) return nullptr;
    return sim::make_message<DiscoverMsg>(std::move(cert));
  }
};

/// Reply to DISCOVER (and general gossip): all certificates the sender
/// holds, merged per owner.
struct CertGossipMsg final : sim::Message {
  explicit CertGossipMsg(std::map<ProcessId, NodeSet> c) : certs(std::move(c)) {
    // Messages are immutable once constructed, so the wire size is fixed
    // here. Computing it lazily in byte_size() would walk the whole map
    // once per destination — the metrics accounting in enqueue_send calls
    // it on every send, and gossip replies are shared across many sends.
    byte_size_ = 16;
    for (const auto& [owner, pd] : certs) {
      (void)owner;
      byte_size_ += 8 + pd.count() * 4;
    }
  }
  std::map<ProcessId, NodeSet> certs;
  std::string type_name() const override { return "cup.certs"; }
  std::size_t byte_size() const override { return byte_size_; }
  std::uint16_t wire_type() const override { return kWireTypeCertGossip; }
  void wire_encode(sim::WireWriter& w) const override {
    w.u32(static_cast<std::uint32_t>(certs.size()));
    for (const auto& [owner, pd] : certs) {
      w.u32(owner);
      w.node_set(pd);
    }
  }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const std::uint32_t count = r.u32();
    // Smallest possible entry is 12 bytes (owner + empty NodeSet), so a
    // forged count cannot force an oversized map reservation.
    if (!r.fits(count, 12)) {
      r.fail();
      return nullptr;
    }
    std::map<ProcessId, NodeSet> certs;
    ProcessId prev = kInvalidProcess;
    for (std::uint32_t i = 0; i < count; ++i) {
      const ProcessId owner = r.u32();
      if (i > 0 && owner <= prev) {
        // Canonical frames list owners in ascending order (std::map
        // iteration); anything else is a forgery or corruption.
        r.fail();
        return nullptr;
      }
      certs.emplace(owner, r.node_set());
      prev = owner;
      if (!r.ok()) return nullptr;
    }
    return sim::make_message<CertGossipMsg>(std::move(certs));
  }

 private:
  std::size_t byte_size_ = 0;
};

/// Step 2/3 of the SINK algorithm: the sender believes the set of processes
/// it can discover is `known`.
struct KnownMsg final : sim::Message {
  explicit KnownMsg(NodeSet k) : known(std::move(k)) {}
  NodeSet known;
  std::string type_name() const override { return "cup.known"; }
  std::size_t byte_size() const override { return 16 + known.count() * 4; }
  std::uint16_t wire_type() const override { return kWireTypeKnown; }
  void wire_encode(sim::WireWriter& w) const override { w.node_set(known); }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    NodeSet known = r.node_set();
    if (!r.ok()) return nullptr;
    return sim::make_message<KnownMsg>(std::move(known));
  }
};

/// Reachable-reliable broadcast payload: `origin` asks the sink members to
/// send it the sink (tag GET_SINK in Algorithm 3). Flooded along knowledge
/// edges with per-origin deduplication.
struct GetSinkMsg final : sim::Message {
  explicit GetSinkMsg(ProcessId o) : origin(o) {}
  ProcessId origin;
  std::string type_name() const override { return "cup.get_sink"; }
  std::size_t byte_size() const override { return 20; }
  std::uint16_t wire_type() const override { return kWireTypeGetSink; }
  void wire_encode(sim::WireWriter& w) const override { w.u32(origin); }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    const ProcessId origin = r.u32();
    if (!r.ok()) return nullptr;
    return sim::make_message<GetSinkMsg>(origin);
  }
};

/// ⟨SINK, V⟩ in Algorithm 3: the sender claims the sink component is `sink`.
struct SinkValueMsg final : sim::Message {
  explicit SinkValueMsg(NodeSet s) : sink(std::move(s)) {}
  NodeSet sink;
  std::string type_name() const override { return "cup.sink_value"; }
  std::size_t byte_size() const override { return 16 + sink.count() * 4; }
  std::uint16_t wire_type() const override { return kWireTypeSinkValue; }
  void wire_encode(sim::WireWriter& w) const override { w.node_set(sink); }
  static sim::MessagePtr wire_decode(sim::WireReader& r) {
    NodeSet sink = r.node_set();
    if (!r.ok()) return nullptr;
    return sim::make_message<SinkValueMsg>(std::move(sink));
  }
};

}  // namespace scup::cup
