// Core identifiers and small helpers shared by every module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace scup {

/// Identity of a process (participant). Processes are indexed 0..n-1 inside a
/// universe of size n; the simulator enforces that ids cannot be forged
/// (authenticated channels, no Sybil attacks — Section III-A of the paper).
using ProcessId = std::uint32_t;

inline constexpr ProcessId kInvalidProcess =
    std::numeric_limits<ProcessId>::max();

/// Simulated time, in abstract "ticks" (we treat one tick as a microsecond
/// when reporting, but nothing depends on the unit).
using SimTime = std::int64_t;

inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<SimTime>::max() / 4;

/// Consensus proposal values. The theory is value-agnostic; a 64-bit payload
/// keeps simulation state compact while still supporting hash-based
/// tie-breaking and set-union composite values in SCP nomination.
using Value = std::uint64_t;

inline constexpr Value kNoValue = 0;

std::string process_name(ProcessId id);

}  // namespace scup
