// LedgerNode — a blockchain replica on CUP knowledge: the StellarCupNode
// pipeline (sink detector + Algorithm-2 slices), but closing a chain of
// ledger slots instead of a single consensus instance. This is the
// "permissionless ledger" deployment the paper's introduction motivates.
#pragma once

#include "common/node_set.hpp"
#include "scp/ledger.hpp"
#include "sim/composed.hpp"
#include "sinkdetector/sink_detector.hpp"

namespace scup::core {

class LedgerNode : public sim::ComposedNode {
 public:
  /// Proposes `value_provider(slot)` for each slot (defaults to a
  /// deterministic per-node value when not set before the sink detector
  /// returns). Closes `target_slots` ledgers then idles. `slot_window`
  /// bounds how far past the next slot a peer-named slot may allocate
  /// state (see LedgerMultiplexer).
  LedgerNode(NodeSet pd, std::size_t f, std::size_t target_slots,
             scp::ScpConfig scp_config = {},
             cup::DiscoveryConfig discovery = {},
             std::size_t slot_window = scp::kDefaultSlotWindow);

  /// Per-slot proposal source; must be set before the simulation starts.
  void set_value_provider(std::function<Value(std::uint64_t)> provider);

  void start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;
  void on_timer(int timer_id) override;

  bool sink_detected() const { return detector_.has_result(); }
  std::uint64_t decided_slots() const { return ledger_.decided_slots(); }
  Value slot_decision(std::uint64_t slot) const {
    return ledger_.slot_decision(slot);
  }
  std::uint64_t chain_digest() const { return ledger_.chain_digest(); }
  SimTime last_close_time() const { return last_close_; }
  /// Chain-wide quorum-evaluation work (shared engine across slots, E13).
  const fbqs::QuorumEngineStats& quorum_stats() const {
    return ledger_.engine().stats();
  }
  const scp::LedgerMultiplexer& ledger() const { return ledger_; }
  /// Mutable access for the determinism regression suite's rehash hook.
  scp::LedgerMultiplexer& ledger() { return ledger_; }

 private:
  void on_sink(const sinkdetector::GetSinkResult& result);

  NodeSet pd_;
  std::size_t target_slots_;
  sinkdetector::SinkDetector detector_;
  scp::LedgerMultiplexer ledger_;
  SimTime last_close_ = 0;
};

}  // namespace scup::core
