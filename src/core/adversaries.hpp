// Byzantine process implementations used for failure injection.
//
// The simulator enforces only the model guarantees (authenticated channels,
// no forged Notary tokens); everything else is fair game for an adversary.
// Three behaviours cover the paper-relevant attack surface:
//
//  - SilentNode: crashes from the start (worst case for availability
//    arguments: Lemma 2, quorum availability in Theorem 4).
//  - DiscoveryLiarNode: participates in knowledge discovery but advertises a
//    fabricated PD certificate (and may equivocate between two fabrications),
//    attacking the sink detector's accuracy; stays silent in consensus.
//  - ScpEquivocatorNode: runs discovery honestly, then sends conflicting
//    nomination envelopes to different halves of its peers and goes silent
//    in the ballot protocol, attacking SCP's agreement.
#pragma once

#include <optional>

#include "common/node_set.hpp"
#include "scp/envelope.hpp"
#include "sim/composed.hpp"
#include "sinkdetector/sink_detector.hpp"

namespace scup::core {

/// Does nothing, ever.
class SilentNode : public sim::Process {
 public:
  void on_message(ProcessId, const sim::MessagePtr&) override {}
};

/// Runs the full discovery stack but with a fabricated PD. If
/// `second_fake_pd` is set, it equivocates: DISCOVER/gossip replies carry
/// one certificate or the other depending on the recipient's parity.
class DiscoveryLiarNode : public sim::ComposedNode {
 public:
  DiscoveryLiarNode(NodeSet real_pd, NodeSet fake_pd, std::size_t f,
                    std::optional<NodeSet> second_fake_pd = std::nullopt);

  void start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  NodeSet real_pd_;
  NodeSet fake_pd_;
  std::optional<NodeSet> second_fake_pd_;
};

/// Honest during discovery; equivocates in SCP nomination, then goes silent.
class ScpEquivocatorNode : public sim::ComposedNode {
 public:
  ScpEquivocatorNode(NodeSet pd, std::size_t f, Value value_a, Value value_b);

  void start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  void on_sink(const sinkdetector::GetSinkResult& result);

  NodeSet pd_;
  Value value_a_;
  Value value_b_;
  sinkdetector::SinkDetector detector_;
};

}  // namespace scup::core
