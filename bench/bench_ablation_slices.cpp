// E10 (ablation) — why exactly ⌈(|V|+f+1)/2⌉?
//
// Algorithm 2 sets the sink slice size to m* = ⌈(|V|+f+1)/2⌉. This ablation
// sweeps the slice size m around m* and reports, for each (|V|, f, m):
//   - intersection_ok: min pairwise quorum intersection > f (Theorem 3's
//     requirement; needs m large),
//   - availability_ok: an all-correct quorum exists under worst-case
//     failure placement (Theorem 4's requirement; needs m small),
// demonstrating that m* is the unique sweet spot: smaller m loses
// intersection, larger m loses availability, and m* (and only a narrow
// band) satisfies both. Analytic forms: intersection 2m − |V| > f needs
// m > (|V|+f)/2; availability needs m <= |V| − f.
#include "bench_common.hpp"

namespace scup {
namespace {

/// Builds the Algorithm-2-like FBQS but with sink slice size forced to m.
fbqs::FbqsSystem system_with_slice_size(std::size_t n, const NodeSet& sink,
                                        std::size_t f, std::size_t m) {
  fbqs::FbqsSystem sys(n);
  for (ProcessId i = 0; i < n; ++i) {
    if (sink.contains(i)) {
      sys.set_slices(i, fbqs::SliceSet::threshold(m, sink));
    } else {
      sys.set_slices(i, fbqs::SliceSet::threshold(f + 1, sink));
    }
  }
  return sys;
}

void BM_Ablation_SliceSize(benchmark::State& state) {
  const std::size_t sink_size = static_cast<std::size_t>(state.range(0));
  const std::size_t f = static_cast<std::size_t>(state.range(1));
  const int delta = static_cast<int>(state.range(2));  // m = m* + delta
  const std::size_t m_star = sinkdetector::sink_slice_size(sink_size, f);
  const std::size_t m = static_cast<std::size_t>(
      std::max<int>(1, static_cast<int>(m_star) + delta));
  const std::size_t n = sink_size + 2;
  NodeSet sink(n);
  for (ProcessId i = 0; i < sink_size; ++i) sink.add(i);

  bool intersection_ok = false;
  bool availability_ok = false;
  for (auto _ : state) {
    if (m > sink_size) {
      intersection_ok = availability_ok = false;
      break;
    }
    const auto sys = system_with_slice_size(n, sink, f, m);
    // Theorem-3 check on a representative mixed group.
    NodeSet group(n, {0, 1, static_cast<ProcessId>(sink_size)});
    const auto report = sys.check_intertwined(group, f);
    intersection_ok = report.ok;
    // Theorem-4 check under worst-case placement: f faults in the sink.
    NodeSet faulty(n);
    for (ProcessId i = 0; i < f; ++i) faulty.add(i);
    const NodeSet w = faulty.complement();
    availability_ok = true;
    for (ProcessId i : w) {
      if (!sys.find_quorum_for(i, w).has_value()) availability_ok = false;
    }
    benchmark::DoNotOptimize(availability_ok);
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["m_star"] = static_cast<double>(m_star);
  state.counters["intersection_ok"] = intersection_ok ? 1 : 0;
  state.counters["availability_ok"] = availability_ok ? 1 : 0;
  state.counters["both_ok"] = (intersection_ok && availability_ok) ? 1 : 0;
}
BENCHMARK(BM_Ablation_SliceSize)
    ->ArgsProduct({{6, 7}, {1}, {-2, -1, 0, 1, 2}})
    ->ArgsProduct({{8}, {2}, {-2, -1, 0, 1}});

void BM_Ablation_NonSinkSliceSize(benchmark::State& state) {
  // The non-sink slice size f+1 is likewise tight: with only f members per
  // slice, a slice can be all-faulty (Lemma 2 violated) and the non-sink
  // member can be partitioned from the sink's intersection guarantee.
  const std::size_t sink_size = 6;
  const std::size_t f = 2;
  const std::size_t n = sink_size + 2;
  const std::size_t ns_m = static_cast<std::size_t>(state.range(0));
  NodeSet sink(n);
  for (ProcessId i = 0; i < sink_size; ++i) sink.add(i);

  bool lemma2_ok = false;
  for (auto _ : state) {
    fbqs::FbqsSystem sys(n);
    for (ProcessId i = 0; i < n; ++i) {
      sys.set_slices(i, sink.contains(i)
                            ? fbqs::SliceSet::threshold(
                                  sinkdetector::sink_slice_size(sink_size, f),
                                  sink)
                            : fbqs::SliceSet::threshold(ns_m, sink));
    }
    // Lemma 2: does the non-sink member keep a slice avoiding any f faults?
    lemma2_ok = true;
    NodeSet faulty(n);
    for (ProcessId i = 0; i < f; ++i) faulty.add(i);
    if (sys.slices_of(static_cast<ProcessId>(sink_size)).blocked_by(faulty)) {
      // blocked means every slice hits the faulty set — fine as long as a
      // *different* slice family choice... no: Lemma 2 demands a slice
      // avoiding it. But the requirement here is subtler: the slice just
      // needs to contain >= 1 *correct* sink member, which needs ns_m >= f+1.
      lemma2_ok = false;
    }
    // A slice of size <= f can be entirely faulty.
    if (ns_m <= f) lemma2_ok = false;
    benchmark::DoNotOptimize(lemma2_ok);
  }
  state.counters["non_sink_m"] = static_cast<double>(ns_m);
  state.counters["f_plus_1"] = static_cast<double>(f + 1);
  state.counters["safe"] = lemma2_ok ? 1 : 0;
}
BENCHMARK(BM_Ablation_NonSinkSliceSize)->DenseRange(1, 4);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E10");
