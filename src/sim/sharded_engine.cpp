#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/simulation.hpp"

namespace scup::sim {

namespace {
/// Set for the duration of ShardEngine::drain on each participating thread;
/// how Simulation knows a call is happening inside a window.
thread_local ShardContext* tls_shard = nullptr;
}  // namespace

ShardEngine::ShardEngine(Simulation& sim, std::size_t shards)
    : sim_(sim), pool_(shards - 1), width_(sim.model_->min_latency()) {
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto ctx = std::make_unique<ShardContext>();
    ctx->index = i;
    shards_.push_back(std::move(ctx));
  }
}

ShardContext* ShardEngine::current() { return tls_shard; }

void ShardEngine::seed_from(CalendarQueue& queue) {
  // Popping yields (time, seq) order, which is exactly the push order each
  // shard queue requires.
  while (!queue.empty()) {
    Event e = queue.pop();
    shards_[e.target % shards_.size()]->queue.push(std::move(e));
  }
}

void ShardEngine::push_external(Event e) {
  // Only legal between windows (the caller is the coordinating thread) and
  // at e.time >= now_ >= every shard queue's cursor.
  shards_[e.target % shards_.size()]->queue.push(std::move(e));
}

bool ShardEngine::run_window(SimTime deadline) {
  SimTime t_min = std::numeric_limits<SimTime>::max();
  bool any = false;
  for (const auto& shard : shards_) {
    if (shard->queue.empty()) continue;
    t_min = std::min(t_min, shard->queue.next_time());
    any = true;
  }
  if (!any || t_min > deadline) return false;
  // [t_min, t_min + W), clamped so nothing past the deadline runs. The
  // schedule depends only on the global event horizon — never on the shard
  // partition — so every shard count sees the same barrier points.
  window_end_ = (deadline - t_min >= width_) ? t_min + width_ : deadline + 1;
  for (auto& shard : shards_) shard->processed_any = false;
  pool_.run([this](std::size_t i) { drain(i); });
  ++windows_;
  commit_staged();
  return true;
}

void ShardEngine::drain(std::size_t shard_index) {
  ShardContext& ctx = *shards_[shard_index];
  tls_shard = &ctx;
  try {
    while (!ctx.queue.empty()) {
      const Event* head = ctx.queue.peek();
      if (head->time >= window_end_) break;
      if (head->kind == EventKind::kDeliver && sim_.deliverable(head->target)) {
        // Pop the maximal run of consecutive deliveries to this target at
        // this tick and hand them over as one upcall. A crash/activate (or
        // a delivery for another process) interleaved in seq order breaks
        // the run, so batching never reorders against serial execution.
        const SimTime tick = head->time;
        const ProcessId target = head->target;
        ctx.batch.clear();
        for (;;) {
          Event e = ctx.queue.pop();
          ctx.now = e.time;
          ctx.last_time = e.time;
          ctx.processed_any = true;
          ctx.metrics.events_processed += 1;
          Delivery d;
          d.from = e.from;
          d.msg = std::move(e.msg);
          d.cookie = e.seq;
          ctx.batch.push_back(std::move(d));
          if (ctx.queue.empty()) break;
          const Event* next = ctx.queue.peek();
          if (next->time != tick || next->kind != EventKind::kDeliver ||
              next->target != target) {
            break;
          }
        }
        ctx.stats.batch_upcalls += 1;
        ctx.stats.batched_messages += ctx.batch.size();
        sim_.processes_[target]->on_messages(ctx.batch.data(),
                                             ctx.batch.size());
      } else {
        Event e = ctx.queue.pop();
        ctx.now = e.time;
        ctx.last_time = e.time;
        ctx.processed_any = true;
        ctx.metrics.events_processed += 1;
        set_dispatch_key(ctx, e);
        sim_.dispatch(e, ctx.metrics);
      }
    }
  } catch (...) {
    ctx.error = std::current_exception();
  }
  tls_shard = nullptr;
}

void ShardEngine::set_dispatch_key(ShardContext& ctx, const Event& e) {
  ctx.current_key.clear();
  ctx.current_key.push_back(static_cast<std::uint64_t>(e.time));
  if (e.seq >= kTempSeqBase) {
    // Provisional: D = [time, 1] ++ Q(scheduling key). Copy out of the
    // arena now — later staging may reallocate it.
    ctx.current_key.push_back(1);
    const auto it = ctx.provisional_keys.find(e.seq);
    const auto [off, len] = it->second;
    ctx.current_key.insert(ctx.current_key.end(),
                           ctx.key_arena.begin() + off,
                           ctx.key_arena.begin() + off + len);
    ctx.provisional_keys.erase(it);
    ctx.stats.provisional_events += 1;
  } else {
    ctx.current_key.push_back(0);
    ctx.current_key.push_back(e.seq);
  }
  ctx.intra = 0;
}

bool ShardEngine::key_less(const ShardContext& a, std::uint32_t a_off,
                           std::uint32_t a_len, const ShardContext& b,
                           std::uint32_t b_off, std::uint32_t b_len) const {
  const std::uint64_t* ka = a.key_arena.data() + a_off;
  const std::uint64_t* kb = b.key_arena.data() + b_off;
  return std::lexicographical_compare(ka, ka + a_len, kb, kb + b_len);
}

// shard-barrier begin(commit of one window: staged effects merge into the
// global engine state in pedigree-key order; every shard thread is parked)
void ShardEngine::commit_staged() {
  for (const auto& shard : shards_) {
    if (shard->error) {
      const std::exception_ptr err = shard->error;
      for (auto& s : shards_) s->error = nullptr;
      std::rethrow_exception(err);
    }
  }
  const std::size_t S = shards_.size();
  std::vector<std::size_t> pos(S, 0);

  // ---- outboxes: k-way merge by pedigree key. Each shard's outbox is
  // already key-sorted (staging order within a shard is dispatch order),
  // so picking the minimum head reproduces the serial effect order — and
  // with it the serial network-RNG draw sequence and seq numbering.
  for (;;) {
    std::size_t best = S;
    for (std::size_t s = 0; s < S; ++s) {
      if (pos[s] >= shards_[s]->outbox.size()) continue;
      if (best == S) {
        best = s;
        continue;
      }
      const StagedOp& a = shards_[s]->outbox[pos[s]];
      const StagedOp& b = shards_[best]->outbox[pos[best]];
      if (key_less(*shards_[s], a.key_off, a.key_len, *shards_[best],
                   b.key_off, b.key_len)) {
        best = s;
      }
    }
    if (best == S) break;
    StagedOp& op = shards_[best]->outbox[pos[best]++];
    Event& e = op.event;
    if (!op.is_send) {
      e.seq = sim_.next_seq_++;
      shards_[e.target % S]->queue.push(std::move(e));
      continue;
    }
    const ProcessId to = e.target;
    const ProcessId from = e.from;
    const NetworkModel::Verdict verdict =
        sim_.model_->on_send(from, to, op.send_time, sim_.net_rng_);
    if (verdict.dropped) {
      sim_.metrics_.messages_dropped += 1;
      continue;
    }
    if (verdict.deliver_at < window_end_ ||
        (verdict.duplicated && verdict.duplicate_at < window_end_)) {
      throw std::logic_error(
          "NetworkModel delivered inside the conservative window; "
          "min_latency() must lower-bound every verdict");
    }
    MessagePtr dup_msg = verdict.duplicated ? e.msg : nullptr;
    e.time = verdict.deliver_at;
    e.seq = sim_.next_seq_++;
    shards_[to % S]->queue.push(std::move(e));
    if (verdict.duplicated) {
      sim_.metrics_.messages_duplicated += 1;
      Event dup;
      dup.time = verdict.duplicate_at;
      dup.seq = sim_.next_seq_++;
      dup.kind = EventKind::kDeliver;
      dup.target = to;
      dup.from = from;
      dup.msg = std::move(dup_msg);
      shards_[to % S]->queue.push(std::move(dup));
    }
  }

  // ---- signs: same merge, replayed into the Notary log so the combined
  // compute()+append() stream equals a serial sign() stream.
  std::fill(pos.begin(), pos.end(), 0);
  for (;;) {
    std::size_t best = S;
    for (std::size_t s = 0; s < S; ++s) {
      if (pos[s] >= shards_[s]->signs.size()) continue;
      if (best == S) {
        best = s;
        continue;
      }
      const StagedSign& a = shards_[s]->signs[pos[s]];
      const StagedSign& b = shards_[best]->signs[pos[best]];
      if (key_less(*shards_[s], a.key_off, a.key_len, *shards_[best],
                   b.key_off, b.key_len)) {
        best = s;
      }
    }
    if (best == S) break;
    const StagedSign& sg = shards_[best]->signs[pos[best]++];
    sim_.notary_.append(sg.signer, sg.statement);
  }

  // ---- metrics, time, arenas.
  for (auto& shard : shards_) {
    sim_.absorb_metrics(shard->metrics);
    if (shard->processed_any) {
      sim_.now_ = std::max(sim_.now_, shard->last_time);
    }
    // Wholesale free: clear() keeps capacity, so after warm-up the arenas
    // stop allocating (tracked by arena_reused / arena_grown).
    shard->outbox.clear();
    shard->signs.clear();
    shard->key_arena.clear();
    shard->provisional_keys.clear();  // drained at dispatch; belt-and-braces
  }
}
// shard-barrier end

ShardStats ShardEngine::stats() const {
  ShardStats total;
  total.shards = shards_.size();
  total.windows = windows_;
  for (const auto& shard : shards_) {
    total.staged_ops += shard->stats.staged_ops;
    total.arena_reused += shard->stats.arena_reused;
    total.arena_grown += shard->stats.arena_grown;
    total.batch_upcalls += shard->stats.batch_upcalls;
    total.batched_messages += shard->stats.batched_messages;
    total.provisional_events += shard->stats.provisional_events;
  }
  return total;
}

}  // namespace scup::sim
