// ShardEngine — deterministic time-window parallelism inside one run.
//
// The simulator's event plane is sharded by process id: shard s owns every
// process p with p % shards == s, that process's calendar queue entries,
// mailbox, timers and RNG. Shards drain their own queues concurrently
// inside a conservative window [T, end) where
//   end = min over nonempty shards s of (next_event(s) + W_out(s))
// and W_out(s) — the shard's *lookahead* — is the minimum
// NetworkModel::min_latency(from, to) over cross-shard pairs with `from`
// in s (DESIGN.md §4.7). Intra-shard latency never constrains the window:
// a same-shard delivery landing inside it runs provisionally on the owning
// shard. Because a shard's earliest possible cross-shard send happens no
// earlier than its next event, nothing a shard does inside the window can
// schedule work for another shard inside the same window — cross-shard
// effects always land at or beyond the window end, so they are staged in
// per-shard outboxes and exchanged at a global barrier. A shard with no
// cross-shard pairs (notably shards == 1) has unbounded lookahead and the
// window extends to the caller's cap. DESIGN.md §4.6 gives the base
// order-preservation argument, §4.7 the lookahead refinement.
//
// Determinism contract: a sharded run is bit-identical (Notary sign log,
// SimMetrics, ledger contents) to the shards == 1 run of the same scenario,
// for every shard count. Three mechanisms make that true:
//
//  1. Pedigree keys. Every staged effect (send, cross-window timer, sign)
//     carries a key encoding the chain of events that produced it:
//       D(final event)        = [time, 0, seq]
//       D(provisional event)  = [time, 1] ++ Q(its scheduling key)
//       Q(k-th effect of a dispatch) = D(dispatching event) ++ [k]
//     Keys are compared lexicographically; the encoding is prefix-free
//     (every frame position carries a 0/1 discriminator), so lexicographic
//     order on the raw words is exactly the order a serial run would have
//     produced the effects in. Keys live in a per-shard flat arena
//     (key_arena) that is bump-allocated during the window and freed
//     wholesale at the barrier.
//
//  2. Send-time network verdicts under the draw-plan contract. Every
//     sender owns a private StreamRng substream, and NetworkModel::on_send
//     consumes exactly draws_per_send(now) draws from it per send
//     (enforced), so a sender's stream position is a pure function of its
//     own send history — which is identical in every execution mode,
//     because all of a sender's events live on one shard and are drained
//     in (time, seq) order. Shards therefore evaluate verdicts in
//     parallel, inside the window, the moment a send happens; the barrier
//     merge only assigns dense sequence numbers in pedigree order and
//     routes the already-timed events. (The pre-lookahead engine deferred
//     every verdict to the barrier and replayed them single-threaded
//     through one global stream.)
//
//  3. Provisional events. Effects that land inside the current window — a
//     process's own timer with a short delay, or an intra-shard delivery
//     faster than the window — are pushed straight into the owning shard's
//     queue with a temporary sequence number >= kTempSeqBase — past every
//     final seq at the same tick, which is exactly where a serial run's
//     (larger, window-assigned) seq would have sorted them — and their
//     pedigree key is remembered so effects they produce stay globally
//     ordered. A *cross-shard* verdict inside the window is a model
//     contract violation (min_latency(from, to) lied) and throws.
//
// The window loop also batches deliveries: consecutive queue entries with
// the same (tick, target) become one Process::on_messages upcall, with
// per-delivery pedigree handled through Process::begin_delivery cookies.
#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/process.hpp"
#include "sim/shard_pool.hpp"

namespace scup::sim {

class Simulation;
class NetworkModel;

/// Sharded-engine instrumentation, kept outside SimMetrics on purpose: the
/// shard-invariance suites compare SimMetrics bit-for-bit across shard
/// counts, and these counters legitimately differ (a serial run has no
/// barriers to count).
struct ShardStats {
  std::size_t shards = 0;
  /// Conservative windows executed (== global barriers).
  std::size_t windows = 0;
  /// Effects staged in outboxes (sends + cross-window timers).
  std::size_t staged_ops = 0;
  /// Staged ops that reused arena capacity vs. ones that grew it. After
  /// warm-up reused should dominate: the outbox arenas are freed
  /// wholesale at each barrier but keep their capacity.
  std::size_t arena_reused = 0;
  std::size_t arena_grown = 0;
  /// Batched-delivery upcalls and the messages they carried.
  std::size_t batch_upcalls = 0;
  std::size_t batched_messages = 0;
  /// Same-window provisional events executed with temporary sequence
  /// numbers (short self timers and intra-shard fast-link deliveries).
  std::size_t provisional_events = 0;
  /// Network verdicts evaluated inside the parallel window (i.e. on shard
  /// threads, off the barrier). In a sharded run every send is an inline
  /// verdict — the barrier does no RNG work at all.
  std::size_t inline_verdicts = 0;
  /// Sends whose verdict landed inside the current window and were run
  /// provisionally on the sending shard instead of being staged.
  std::size_t provisional_sends = 0;
  /// Sum over windows of (window_end - window_start); divide by `windows`
  /// for the average width the lookahead achieved.
  std::uint64_t window_width_sum = 0;

  // ---- barrier-replay profile (NetworkConfig::shard_timing) ----
  //
  // Wall-clock (steady_clock) nanoseconds, collected only when the flag
  // below is set so default runs never read a real clock. Timing is
  // deliberately outside the identity contract: ShardStats is never part
  // of SimMetrics, so fingerprints stay bit-identical with or without it.
  bool timing_enabled = false;
  /// Parallel window execution: fork, per-shard drains, join.
  std::uint64_t window_ns = 0;
  /// Barrier: k-way pedigree-ordered outbox merge (dense seq assignment).
  std::uint64_t merge_ns = 0;
  /// Barrier: staged Notary sign replay.
  std::uint64_t replay_ns = 0;
  /// Barrier: metrics absorption + wholesale arena reset.
  std::uint64_t reset_ns = 0;
  /// Sum across shards of in-window drain body time (< window_ns: the gap
  /// is fork/join overhead plus the straggler imbalance).
  std::uint64_t drain_ns = 0;
  /// Per-shard drain body time (aggregate view only; empty per-shard).
  std::vector<std::uint64_t> shard_drain_ns;
};

/// Provisional (same-window) events carry temporary sequence numbers from
/// this base. 2^63 is past every final seq, so they sort after all final
/// events at the same tick — matching the serial run, where a timer armed
/// inside the window receives a larger seq than anything scheduled before
/// the window started.
inline constexpr std::uint64_t kTempSeqBase = std::uint64_t{1} << 63;

/// One staged effect landing at or beyond the window end: a delivery with
/// its verdict (and hence its final time) already drawn at send time, or a
/// cross-window timer. The barrier only assigns the dense seq, in merged
/// key order. `key_off/key_len` index the owning shard's key_arena.
struct StagedOp {
  std::uint32_t key_off = 0;
  std::uint32_t key_len = 0;
  Event event;  // time final; seq filled at the barrier
};

/// One staged Notary log entry (the token was computed in-window;
/// the log append replays at the barrier in merged key order).
struct StagedSign {
  std::uint32_t key_off = 0;
  std::uint32_t key_len = 0;
  ProcessId signer = kInvalidProcess;
  std::uint64_t statement = 0;
};

/// Everything one shard owns. Touched only by the shard's thread inside
/// ShardPool::run and only by the coordinating thread outside it (the
/// pool's fork/join provides the happens-before edges).
struct ShardContext {
  std::size_t index = 0;
  CalendarQueue queue;
  /// Simulated time of the event being dispatched (Process::now()).
  SimTime now = 0;
  /// Time of the last event this shard processed in the current window.
  SimTime last_time = 0;
  bool processed_any = false;
  /// Window-local metrics delta, merged into Simulation::metrics_ at the
  /// barrier and zeroed in place.
  SimMetrics metrics;

  // ---- staging arenas: bump-allocated per window, freed wholesale ----
  std::vector<StagedOp> outbox;
  std::vector<StagedSign> signs;
  // scup-owner: shard
  std::vector<std::uint64_t> key_arena;

  /// Pedigree of the event currently being dispatched (D in the header
  /// comment) and the per-dispatch effect counter (the k in Q).
  // scup-owner: shard
  std::vector<std::uint64_t> current_key;
  std::uint64_t intra = 0;

  /// Temporary seq allocation + key bookkeeping for provisional events.
  // scup-owner: shard
  std::uint64_t next_temp_seq = 0;
  // scup-owner: shard
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      provisional_keys;

  /// Reused buffer for batched same-tick deliveries.
  std::vector<Delivery> batch;

  ShardStats stats;
  std::exception_ptr error;

  /// Appends Q = current_key ++ [intra++] to the key arena; returns its
  /// (offset, length).
  std::pair<std::uint32_t, std::uint32_t> make_qkey() {
    const std::uint32_t off = static_cast<std::uint32_t>(key_arena.size());
    key_arena.insert(key_arena.end(), current_key.begin(), current_key.end());
    key_arena.push_back(intra++);
    return {off, static_cast<std::uint32_t>(key_arena.size() - off)};
  }

  /// Stages one outbox effect, counting arena reuse vs. growth.
  void stage(Event e) {
    if (outbox.size() < outbox.capacity()) {
      ++stats.arena_reused;
    } else {
      ++stats.arena_grown;
    }
    const auto [off, len] = make_qkey();
    StagedOp op;
    op.key_off = off;
    op.key_len = len;
    op.event = std::move(e);
    outbox.push_back(std::move(op));
    ++stats.staged_ops;
  }
};

class ShardEngine {
 public:
  /// `shards` >= 1. Spawns shards - 1 pool workers (shard 0 runs on the
  /// coordinating thread), so shards == 1 is the windowed engine with no
  /// threads at all — the determinism baseline.
  ShardEngine(Simulation& sim, std::size_t shards);

  /// The shard context of the calling thread while it is draining a window,
  /// nullptr otherwise (in particular: nullptr on the coordinating thread
  /// between windows, and always nullptr in the legacy serial loop).
  static ShardContext* current();

  /// Moves every queued event into the owning shard's queue, in (time, seq)
  /// order. Called once by Simulation::start after the pre-start serial
  /// phase has populated the global queue.
  void seed_from(CalendarQueue& queue);

  /// Runs one conservative window: picks T = min next-event time across
  /// shards, drains [T, end) in parallel with
  ///   end = min(min over nonempty shards s of (next_event(s) + W_out(s)),
  ///             deadline + 1, cap)
  /// then commits staged effects at the barrier. Returns false (without
  /// running anything) when no shard has an event at time <= deadline, or
  /// when the earliest event is at or past `cap` (run_until's
  /// predicate-checkpoint grid passes the next grid point as the cap).
  bool run_window(SimTime deadline, SimTime cap = kTimeInfinity);

  /// Earliest pending event time across shards, kTimeInfinity when idle.
  SimTime next_event_time() const;

  /// The run_until checkpoint-grid spacing (resolved from
  /// NetworkConfig::lookahead_quantum at construction; >= 1).
  SimTime quantum() const { return quantum_; }

  /// Routes an externally pushed event (crash_at between runs) to its
  /// owning shard. The caller has already assigned the final seq.
  void push_external(Event e);

  std::size_t shards() const { return shards_.size(); }

  /// Exclusive end of the window currently being drained. Valid only inside
  /// run_window (used by Simulation::enqueue_timer to classify a firing as
  /// provisional vs. staged).
  // scup-analyze: owner-ok(window_end_ is written only between windows, so in-window reads see a stable value)
  SimTime window_end() const { return window_end_; }

  /// Aggregated instrumentation across shards.
  ShardStats stats() const;

 private:
  /// Drains one shard up to `window_end` (an immutable snapshot taken by
  /// run_window before the pool forks, so shard threads never read the
  /// engine's mutable window state).
  void drain(std::size_t shard_index, SimTime window_end);
  /// Installs D(event) as the context's current pedigree key.
  void set_dispatch_key(ShardContext& ctx, const Event& e);
  /// Barrier half: merges outboxes in key order (assigning dense seqs —
  /// verdicts were already drawn at send time), replays staged signs into
  /// the Notary, merges metrics deltas, advances Simulation::now_, frees
  /// arenas.
  void commit_staged();
  bool key_less(const ShardContext& a, std::uint32_t a_off,
                std::uint32_t a_len, const ShardContext& b,
                std::uint32_t b_off, std::uint32_t b_len) const;

  Simulation& sim_;
  std::vector<std::unique_ptr<ShardContext>> shards_;
  ShardPool pool_;
  /// Per-shard lookahead W_out(s): min cross-shard min_latency(from, to)
  /// over pairs with `from` in shard s; kTimeInfinity when s has no
  /// cross-shard pairs. Every finite entry >= 1, enforced at construction.
  // scup-owner: engine
  std::vector<SimTime> w_out_;
  SimTime quantum_ = 1;
  // scup-owner: engine
  SimTime window_end_ = 0;
  // scup-owner: engine
  std::size_t windows_ = 0;
  // scup-owner: engine
  std::uint64_t width_sum_ = 0;

  // ---- barrier-replay profile accumulators (NetworkConfig::shard_timing;
  // ---- engine-level sections are timed on the coordinating thread only,
  // ---- per-shard drain time lives in ShardContext::stats) ----
  bool timing_ = false;
  // scup-owner: engine
  std::uint64_t window_ns_ = 0;
  // scup-owner: engine
  std::uint64_t merge_ns_ = 0;
  // scup-owner: engine
  std::uint64_t replay_ns_ = 0;
  // scup-owner: engine
  std::uint64_t reset_ns_ = 0;
};

/// The per-shard lookahead vector for `shards` shards over `n` processes
/// under the p % shards ownership map (see the class comment). With
/// `global_min` every entry is the model's global min_latency() —
/// the pre-lookahead window schedule. Throws std::invalid_argument, naming
/// the offending link, when any cross-shard pair has a latency floor below
/// one tick (shards == 1 has no cross-shard pairs, so a zero-latency model
/// is legal there).
std::vector<SimTime> shard_window_widths(const NetworkModel& model,
                                         std::size_t n, std::size_t shards,
                                         bool global_min);

}  // namespace scup::sim
