// Unit tests for the SCP statement semantics (envelope.hpp): what each
// statement kind implies its sender votes for / has accepted. These
// predicates are the foundation of federated voting; every ballot-safety
// argument rests on them.
#include "scp/envelope.hpp"

#include <gtest/gtest.h>

namespace scup::scp {
namespace {

constexpr Value kA = 10;
constexpr Value kB = 20;

TEST(BallotTest, OrderingAndCompatibility) {
  const Ballot b1{1, kA};
  const Ballot b2{2, kA};
  const Ballot b1b{1, kB};
  EXPECT_TRUE(b1 < b2);
  EXPECT_TRUE(b1 < b1b);  // lexicographic: same n, larger value
  EXPECT_TRUE(compatible(b1, b2));
  EXPECT_FALSE(compatible(b1, b1b));
  EXPECT_TRUE(le_compatible(b1, b2));
  EXPECT_FALSE(le_compatible(b2, b1));
  EXPECT_FALSE(le_compatible(b1, b1b));
  EXPECT_FALSE(Ballot{}.valid());
  EXPECT_TRUE(b1.valid());
  EXPECT_EQ(b1.to_string(), "<1,10>");
  EXPECT_EQ(Ballot{}.to_string(), "<0>");
}

TEST(StatementSemanticsTest, NominateImpliesNothingForBallots) {
  const Statement s{NominateStmt{{kA}, {kB}}};
  EXPECT_FALSE(votes_prepare(s, Ballot{1, kA}));
  EXPECT_FALSE(accepts_prepared(s, Ballot{1, kA}));
  EXPECT_FALSE(votes_commit(s, 1, kA));
  EXPECT_FALSE(accepts_commit(s, 1, kA));
  EXPECT_TRUE(votes_nominate(s, kA));
  EXPECT_TRUE(votes_nominate(s, kB));  // accepted implies voted-or-accepted
  EXPECT_FALSE(votes_nominate(s, 99));
  EXPECT_TRUE(accepts_nominate(s, kB));
  EXPECT_FALSE(accepts_nominate(s, kA));
  EXPECT_FALSE(is_ballot_statement(s));
  EXPECT_FALSE(working_ballot(s).valid());
}

TEST(StatementSemanticsTest, PrepareVotesAndAccepts) {
  PrepareStmt p;
  p.b = Ballot{3, kA};
  p.p = Ballot{2, kA};
  p.p_prime = Ballot{1, kB};
  p.c_n = 0;
  p.h_n = 2;
  const Statement s{p};

  // Votes prepare(β) for β <= b, compatible.
  EXPECT_TRUE(votes_prepare(s, Ballot{3, kA}));
  EXPECT_TRUE(votes_prepare(s, Ballot{1, kA}));
  EXPECT_FALSE(votes_prepare(s, Ballot{4, kA}));
  EXPECT_FALSE(votes_prepare(s, Ballot{1, kB}));

  // Accepts prepared(β) for β <= p or β <= p' (compatible).
  EXPECT_TRUE(accepts_prepared(s, Ballot{2, kA}));
  EXPECT_TRUE(accepts_prepared(s, Ballot{1, kA}));
  EXPECT_TRUE(accepts_prepared(s, Ballot{1, kB}));  // via p'
  EXPECT_FALSE(accepts_prepared(s, Ballot{3, kA}));
  EXPECT_FALSE(accepts_prepared(s, Ballot{2, kB}));

  // c_n = 0: no commit votes at all.
  EXPECT_FALSE(votes_commit(s, 1, kA));
  EXPECT_FALSE(accepts_commit(s, 1, kA));
  EXPECT_TRUE(is_ballot_statement(s));
  EXPECT_EQ(working_ballot(s), (Ballot{3, kA}));
}

TEST(StatementSemanticsTest, PrepareCommitRange) {
  PrepareStmt p;
  p.b = Ballot{5, kA};
  p.c_n = 2;
  p.h_n = 4;
  const Statement s{p};
  EXPECT_FALSE(votes_commit(s, 1, kA));
  EXPECT_TRUE(votes_commit(s, 2, kA));
  EXPECT_TRUE(votes_commit(s, 3, kA));
  EXPECT_TRUE(votes_commit(s, 4, kA));
  EXPECT_FALSE(votes_commit(s, 5, kA));
  EXPECT_FALSE(votes_commit(s, 3, kB));  // wrong value
  // PREPARE never *accepts* commits.
  EXPECT_FALSE(accepts_commit(s, 3, kA));
}

TEST(StatementSemanticsTest, ConfirmSemantics) {
  ConfirmStmt c;
  c.b = Ballot{6, kA};
  c.p_n = 6;
  c.c_n = 2;
  c.h_n = 5;
  const Statement s{c};

  // Votes prepare((∞, b.x)): any counter, same value.
  EXPECT_TRUE(votes_prepare(s, Ballot{100, kA}));
  EXPECT_FALSE(votes_prepare(s, Ballot{1, kB}));

  // Accepts prepared up to max(p_n, h_n) with the same value.
  EXPECT_TRUE(accepts_prepared(s, Ballot{6, kA}));
  EXPECT_TRUE(accepts_prepared(s, Ballot{5, kA}));
  EXPECT_FALSE(accepts_prepared(s, Ballot{7, kA}));
  EXPECT_FALSE(accepts_prepared(s, Ballot{3, kB}));

  // Accepts commit exactly on [c_n, h_n]; votes commit for all n >= c_n.
  EXPECT_FALSE(accepts_commit(s, 1, kA));
  EXPECT_TRUE(accepts_commit(s, 2, kA));
  EXPECT_TRUE(accepts_commit(s, 5, kA));
  EXPECT_FALSE(accepts_commit(s, 6, kA));
  EXPECT_TRUE(votes_commit(s, 6, kA));  // c_n..∞
  EXPECT_TRUE(votes_commit(s, 2, kA));
  EXPECT_FALSE(votes_commit(s, 1, kA));
  EXPECT_EQ(working_ballot(s), (Ballot{6, kA}));
}

TEST(StatementSemanticsTest, ExternalizeSemantics) {
  ExternalizeStmt e;
  e.commit = Ballot{3, kA};
  e.h_n = 5;
  const Statement s{e};

  // Prepared/votes-prepare for anything compatible.
  EXPECT_TRUE(votes_prepare(s, Ballot{999, kA}));
  EXPECT_TRUE(accepts_prepared(s, Ballot{999, kA}));
  EXPECT_FALSE(accepts_prepared(s, Ballot{1, kB}));

  // Commit accepted (and voted) for every n >= commit.n.
  EXPECT_FALSE(accepts_commit(s, 2, kA));
  EXPECT_TRUE(accepts_commit(s, 3, kA));
  EXPECT_TRUE(accepts_commit(s, 1000, kA));
  EXPECT_TRUE(votes_commit(s, 3, kA));
  EXPECT_FALSE(votes_commit(s, 3, kB));
  EXPECT_EQ(working_ballot(s), (Ballot{3, kA}));
}

TEST(StatementSemanticsTest, InvalidBallotNeverImplied) {
  PrepareStmt p;
  p.b = Ballot{3, kA};
  const Statement s{p};
  EXPECT_FALSE(votes_prepare(s, Ballot{}));
  EXPECT_FALSE(accepts_prepared(s, Ballot{}));
  EXPECT_FALSE(votes_commit(s, 0, kA));
  EXPECT_FALSE(accepts_commit(s, 0, kA));
}

TEST(EnvelopeTest, TypeNamesAndSizes) {
  const fbqs::QSet q = fbqs::QSet::threshold_of(1, std::vector<ProcessId>{0});
  EXPECT_EQ(Envelope(0, 1, q, Statement{NominateStmt{}}).type_name(),
            "scp.nominate");
  EXPECT_EQ(Envelope(0, 1, q, Statement{PrepareStmt{}}).type_name(),
            "scp.prepare");
  EXPECT_EQ(Envelope(0, 1, q, Statement{ConfirmStmt{}}).type_name(),
            "scp.confirm");
  EXPECT_EQ(Envelope(0, 1, q, Statement{ExternalizeStmt{}}).type_name(),
            "scp.externalize");
  // Nomination size grows with the value sets.
  const Envelope small(0, 1, q, Statement{NominateStmt{{1}, {}}});
  const Envelope large(0, 1, q, Statement{NominateStmt{{1, 2, 3, 4}, {5}}});
  EXPECT_LT(small.byte_size(), large.byte_size());
}

// The safety-critical cross-implication: a statement that accepts
// commit(n, x) must also vote commit(n, x) (acceptance strengthens votes),
// and acceptance of prepared must imply voting prepare. Checked across a
// grid of statements and ballots.
class SemanticsConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(SemanticsConsistencyTest, AcceptImpliesVote) {
  const int i = GetParam();
  std::vector<Statement> statements;
  {
    PrepareStmt p;
    p.b = Ballot{static_cast<std::uint32_t>(3 + i % 3), kA};
    p.p = Ballot{static_cast<std::uint32_t>(1 + i % 2), kA};
    p.c_n = (i % 2 == 0) ? 1 : 0;
    p.h_n = p.c_n != 0 ? p.b.n : 0;
    statements.emplace_back(p);
    ConfirmStmt c;
    c.b = Ballot{static_cast<std::uint32_t>(4 + i % 4), kA};
    c.p_n = c.b.n;
    c.c_n = 1 + i % 3;
    c.h_n = c.c_n + 2;
    statements.emplace_back(c);
    ExternalizeStmt e;
    e.commit = Ballot{static_cast<std::uint32_t>(1 + i % 5), kA};
    e.h_n = e.commit.n + 1;
    statements.emplace_back(e);
  }
  for (const Statement& s : statements) {
    for (std::uint32_t n = 1; n <= 10; ++n) {
      for (Value x : {kA, kB}) {
        if (accepts_commit(s, n, x)) {
          EXPECT_TRUE(votes_commit(s, n, x)) << "n=" << n << " x=" << x;
        }
        const Ballot beta{n, x};
        if (accepts_prepared(s, beta) &&
            !std::holds_alternative<PrepareStmt>(s)) {
          // For CONFIRM/EXTERNALIZE, accepted-prepared implies voting
          // prepare (they vote prepare(∞)). PREPARE may accept prepared
          // ballots above its current vote (p > b never happens in correct
          // nodes but the predicate is per-statement).
          EXPECT_TRUE(votes_prepare(s, beta)) << beta.to_string();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SemanticsConsistencyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace scup::scp
