// Fixture: byz-narrowing-cast stays quiet when the cast is range-checked
// and annotated.
#include <cstdint>
#include <stdexcept>

int timer_id_for(std::uint64_t slot) {
  if (slot > 1000000) throw std::overflow_error("slot too large");
  // scup-lint: bounded(slot <= 1e6 checked above; fits int)
  return 10000 + static_cast<int>(slot);
}
