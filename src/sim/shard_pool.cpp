#include "sim/shard_pool.hpp"

namespace scup::sim {

ShardPool::ShardPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  go_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::run(const std::function<void(std::size_t)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    running_ = threads_.size();
    ++epoch_;
  }
  go_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
}

void ShardPool::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      go_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    (*job)(index);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (running_ == 0) done_.notify_one();
    }
  }
}

}  // namespace scup::sim
