#include "sim/message.hpp"

#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>

namespace scup::sim {

namespace {
// The registry is process-wide shared state; the ScenarioMatrix runner
// interns from several simulation threads at once, so it is guarded by a
// mutex. Names live in a deque because name_of hands out references that
// must survive later interning (deque growth never moves elements).
// Function-local statics avoid static-initialization-order issues for
// messages interned during other globals' construction.
std::mutex& registry_mutex() {
  // scup-lint: thread-safe(a mutex is its own synchronization)
  static std::mutex mutex;
  return mutex;
}
// scup-analyze: requires-lock(registry_mutex)
std::deque<std::string>& names_by_id() {
  // scup-lint: guarded-by(registry_mutex)
  // scup-guarded-by: registry_mutex
  static std::deque<std::string> names;
  return names;
}
// scup-analyze: requires-lock(registry_mutex)
std::map<std::string, std::uint32_t>& ids_by_name() {
  // scup-lint: guarded-by(registry_mutex)
  // scup-guarded-by: registry_mutex
  static std::map<std::string, std::uint32_t> ids;
  return ids;
}
}  // namespace

std::uint32_t MessageTypeRegistry::intern(const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  auto& ids = ids_by_name();
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  auto& names = names_by_id();
  const auto id = static_cast<std::uint32_t>(names.size());
  names.push_back(name);
  ids.emplace(name, id);
  return id;
}

const std::string& MessageTypeRegistry::name_of(std::uint32_t id) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto& names = names_by_id();
  if (id >= names.size()) {
    throw std::out_of_range("MessageTypeRegistry::name_of: unknown id " +
                            std::to_string(id));
  }
  return names[id];
}

std::size_t MessageTypeRegistry::count() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  return names_by_id().size();
}

}  // namespace scup::sim
