#include "scp/ledger.hpp"

#include "common/rng.hpp"

namespace scup::scp {

void LedgerMultiplexer::SlotHost::host_send(ProcessId to,
                                            sim::MessagePtr msg) {
  const auto* env = dynamic_cast<const Envelope*>(msg.get());
  if (env == nullptr) {
    throw std::logic_error("SlotHost: only SCP envelopes expected");
  }
  if (msg == last_inner_) {
    mux_.host_.host_counter_add(sim::ProtoCounter::kSlotWrapsShared, 1);
    mux_.host_.host_send(to, last_wrapped_);
    return;
  }
  last_wrapped_ = sim::make_message<SlotEnvelope>(slot_, *env);
  last_inner_ = std::move(msg);
  mux_.host_.host_counter_add(sim::ProtoCounter::kSlotWraps, 1);
  mux_.host_.host_send(to, last_wrapped_);
}

void LedgerMultiplexer::SlotHost::host_set_timer(int timer_id,
                                                 SimTime delay) {
  if (timer_id != kScpBallotTimerId) {
    throw std::logic_error("SlotHost: unexpected timer id");
  }
  mux_.host_.host_set_timer(ledger_timer_id(slot_), delay);
}

LedgerMultiplexer::LedgerMultiplexer(sim::ProtocolHost& host,
                                     std::size_t universe, fbqs::QSet qset,
                                     std::size_t target_slots,
                                     ScpConfig scp_config,
                                     std::size_t slot_window)
    : host_(host),
      universe_(universe),
      qset_(std::move(qset)),
      target_slots_(target_slots),
      scp_config_(scp_config),
      slot_window_(slot_window),
      peers_(universe) {}

void LedgerMultiplexer::set_qset(fbqs::QSet qset) {
  if (started_) throw std::logic_error("LedgerMultiplexer::set_qset late");
  qset_ = std::move(qset);
  // Slots created by early envelope arrivals (before the sink detector
  // returned) carry the placeholder qset; rebind them.
  for (auto& [slot, s] : slots_) {
    if (!s.node->started()) s.node->set_qset(qset_);
  }
}

const ScpNode* LedgerMultiplexer::slot_node(std::uint64_t slot) const {
  const auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : it->second.node.get();
}

void LedgerMultiplexer::add_peer(ProcessId peer) {
  if (peer == host_.self() || peer >= universe_ || peers_.contains(peer)) {
    return;
  }
  peers_.add(peer);
  for (auto& [slot, s] : slots_) s.node->add_peer(peer);
}

LedgerMultiplexer::Slot& LedgerMultiplexer::ensure_slot(std::uint64_t slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) return it->second;

  Slot s;
  s.shim = std::make_unique<SlotHost>(*this, slot);
  // The proposal value is bound at start_slot(); a placeholder keeps the
  // (not yet started) node buffering incoming envelopes. All slots share
  // the multiplexer's QuorumEngine.
  s.node = std::make_unique<ScpNode>(*s.shim, universe_, qset_,
                                     /*own_value=*/1, scp_config_, &engine_);
  s.node->on_decide = [this, slot](Value v) { on_decided(slot, v); };
  for (ProcessId p : peers_) s.node->add_peer(p);
  auto [inserted, _] = slots_.emplace(slot, std::move(s));
  return inserted->second;
}

void LedgerMultiplexer::start() {
  if (started_) return;
  if (!value_provider) {
    throw std::logic_error("LedgerMultiplexer: value_provider not set");
  }
  started_ = true;
  start_slot(1);
  flush_counters();
}

void LedgerMultiplexer::start_slot(std::uint64_t slot) {
  if (target_slots_ != 0 && slot > target_slots_) return;
  next_to_start_ = slot + 1;
  Slot& s = ensure_slot(slot);
  if (s.node->started()) return;
  const Value v = value_provider(slot);
  if (v == kNoValue) {
    throw std::logic_error("LedgerMultiplexer: provider returned kNoValue");
  }
  // Bind the real proposal (the node was created with a placeholder and
  // has not started yet, so any envelopes it buffered are preserved).
  s.node->set_proposal(v);
  s.node->start();
}

void LedgerMultiplexer::on_decided(std::uint64_t slot, Value value) {
  decisions_[slot] = value;
  // Advance the contiguous prefix and fold the running digest — identical
  // to rehashing decisions 1..prefix from scratch, without the O(k) walk
  // per decision that made on_decided O(k²) per run.
  while (true) {
    const auto it = decisions_.find(decided_prefix_ + 1);
    if (it == decisions_.end()) break;
    ++decided_prefix_;
    digest_ = hash_mix(digest_, decided_prefix_, it->second);
  }
  if (on_slot_decided) on_slot_decided(slot, value);
  // Open the next slot once this one (and all before it) are closed.
  if (slot + 1 == next_to_start_ && decided_prefix_ >= slot) {
    start_slot(slot + 1);
  }
}

bool LedgerMultiplexer::handle(ProcessId from, const sim::Message& msg) {
  const auto* wrapped = dynamic_cast<const SlotEnvelope*>(&msg);
  if (wrapped == nullptr) return false;
  if (wrapped->slot == 0 ||
      (target_slots_ != 0 && wrapped->slot > target_slots_)) {
    return true;  // out of range; drop
  }
  // Byzantine memory-bomb bound: only slots within the window past the
  // next slot to start may allocate (or reach) an ScpNode. A peer cannot
  // honestly be further ahead than its quorums, so nothing is lost.
  if (wrapped->slot >= next_to_start_ + slot_window_) {
    ++envelopes_dropped_;
    return true;
  }
  Slot& s = ensure_slot(wrapped->slot);
  s.node->handle(from, wrapped->envelope);
  flush_counters();
  return true;
}

bool LedgerMultiplexer::on_timer(int timer_id) {
  if (timer_id < kLedgerTimerBase) return false;
  const std::uint64_t slot =
      static_cast<std::uint64_t>(timer_id - kLedgerTimerBase);
  const auto it = slots_.find(slot);
  // Claim only ids that map to one of our slots: a composed protocol is
  // free to use other high timer ids (the old code swallowed them all).
  if (it == slots_.end()) return false;
  it->second.node->on_ballot_timer();
  flush_counters();
  return true;
}

bool LedgerMultiplexer::slot_decided(std::uint64_t slot) const {
  return decisions_.count(slot) > 0;
}

Value LedgerMultiplexer::slot_decision(std::uint64_t slot) const {
  const auto it = decisions_.find(slot);
  if (it == decisions_.end()) {
    throw std::logic_error("LedgerMultiplexer: slot not decided");
  }
  return it->second;
}

void LedgerMultiplexer::flush_counters() {
  flush_quorum_counters(host_, engine_.stats(), flushed_);
}

}  // namespace scup::scp
