// Structural guards and scup-sanitize keep byz-taint quiet: a comparison
// in a branch condition bounds the slot, and the annotation documents the
// sender-id subscript the analyzer cannot prove safe.
#include <map>

struct KnownMsg {
  unsigned slot;
};

class Window {
 public:
  bool handle(unsigned from, const KnownMsg& msg);

 private:
  std::map<unsigned, unsigned> latest_;
  unsigned limit_ = 16;
};

bool Window::handle(unsigned from, const KnownMsg& msg) {
  if (msg.slot >= limit_) {
    return true;
  }
  latest_[msg.slot] = 1;
  // scup-sanitize: sender ids are authenticated by the transport layer
  latest_[from] = msg.slot;
  return true;
}
