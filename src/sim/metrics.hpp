// Simulation-level metrics, split out of simulation.hpp so the sharded
// engine (sim/sharded_engine.hpp) can hold per-shard SimMetrics deltas
// without a header cycle through the Simulation class itself.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/counters.hpp"

namespace scup::sim {

struct SimMetrics {
  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
  /// Per-type counters indexed by interned MessageTypeRegistry id (the
  /// per-send hot path is one vector index; names are resolved only at
  /// report time). Entries are 0 for types this simulation never sent.
  std::vector<std::size_t> messages_by_type_id;
  std::vector<std::size_t> bytes_by_type_id;
  std::size_t timer_fires = 0;
  std::size_t events_processed = 0;
  /// Sends the NetworkModel lost (pre-GST loss) / duplicated.
  std::size_t messages_dropped = 0;
  std::size_t messages_duplicated = 0;
  /// Protocol instrumentation (sim/counters.hpp), reported by protocol
  /// components via ProtocolHost::host_counter_add — e.g. the SCP
  /// QuorumEngine's closure/eval/cache counters (E13). Indexed by
  /// ProtoCounter; deterministic per scenario, so the E12 serial==parallel
  /// identity compare covers it.
  std::array<std::uint64_t, kProtoCounterCount> protocol_counters{};

  bool operator==(const SimMetrics&) const = default;

  /// Report-time views: type name -> count/bytes for every type this
  /// simulation actually sent.
  std::map<std::string, std::size_t> messages_by_type() const;
  std::map<std::string, std::size_t> bytes_by_type() const;
  /// Report-time view of protocol_counters: counter name -> value.
  std::map<std::string, std::uint64_t> protocol_counters_by_name() const;
  std::uint64_t protocol_counter(ProtoCounter c) const {
    return protocol_counters[static_cast<std::size_t>(c)];
  }
};

}  // namespace scup::sim
