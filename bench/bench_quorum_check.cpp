// E9 — Algorithm 1: is_quorum and quorum-closure cost, explicit slice
// lists vs threshold families, vs universe size. Threshold families (what
// Algorithm 2 emits) evaluate in O(|V|) per member regardless of the
// (combinatorially large) number of denoted slices — the representation
// choice DESIGN.md §4.2 calls out.
#include "bench_common.hpp"

#include "common/rng.hpp"

namespace scup {
namespace {

fbqs::FbqsSystem explicit_system(std::size_t n, std::size_t slices_per_node,
                                 std::size_t slice_size, std::uint64_t seed) {
  Rng rng(seed);
  fbqs::FbqsSystem sys(n);
  for (ProcessId i = 0; i < n; ++i) {
    std::vector<NodeSet> slices;
    for (std::size_t s = 0; s < slices_per_node; ++s) {
      NodeSet slice(n);
      for (ProcessId m : rng.sample_ids(n, slice_size)) slice.add(m);
      slices.push_back(std::move(slice));
    }
    sys.set_slices(i, fbqs::SliceSet::explicit_slices(std::move(slices)));
  }
  return sys;
}

void BM_IsQuorum_Threshold(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  NodeSet sink(n);
  for (ProcessId i = 0; i < n / 2; ++i) sink.add(i);
  const auto sys = scup::bench::algorithm2_system(n, sink, 2);
  const NodeSet q = NodeSet::full(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.is_quorum(q));
  }
  state.counters["denoted_slices"] =
      static_cast<double>(sys.slices_of(0).slice_count());
}
BENCHMARK(BM_IsQuorum_Threshold)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_IsQuorum_Explicit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t per_node = static_cast<std::size_t>(state.range(1));
  const auto sys = explicit_system(n, per_node, 3, 11);
  const NodeSet q = NodeSet::full(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.is_quorum(q));
  }
}
BENCHMARK(BM_IsQuorum_Explicit)
    ->ArgsProduct({{16, 64, 256}, {4, 16, 64}});

void BM_QuorumClosure(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  NodeSet sink(n);
  for (ProcessId i = 0; i < n / 2; ++i) sink.add(i);
  const auto sys = scup::bench::algorithm2_system(n, sink, 2);
  // Start from a set that forces several elimination rounds: everything
  // except a few sink members.
  NodeSet candidate = NodeSet::full(n);
  for (ProcessId i = 0; i < 3; ++i) candidate.remove(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.quorum_closure(candidate));
  }
}
BENCHMARK(BM_QuorumClosure)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_MinimalQuorumEnumeration(benchmark::State& state) {
  // Exhaustive analysis cost (tests-only path) vs universe size.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  NodeSet sink(n);
  for (ProcessId i = 0; i < n / 2; ++i) sink.add(i);
  const auto sys = scup::bench::algorithm2_system(n, sink, 1);
  std::size_t count = 0;
  for (auto _ : state) {
    count = sys.minimal_quorums_for(0).size();
    benchmark::DoNotOptimize(count);
  }
  state.counters["minimal_quorums"] = static_cast<double>(count);
}
BENCHMARK(BM_MinimalQuorumEnumeration)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_QSetSatisfiedBy(benchmark::State& state) {
  // The hot path inside SCP's federated voting.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  NodeSet sink(n);
  for (ProcessId i = 0; i < n / 2; ++i) sink.add(i);
  const fbqs::QSet qset =
      fbqs::QSet::threshold_of((sink.count() + 2 + 1) / 2, sink);
  NodeSet probe(n);
  for (ProcessId i = 0; i < n; i += 2) probe.add(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qset.satisfied_by(probe));
    benchmark::DoNotOptimize(qset.blocked_by(probe));
  }
}
BENCHMARK(BM_QSetSatisfiedBy)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace scup

SCUP_BENCH_MAIN("E9");
