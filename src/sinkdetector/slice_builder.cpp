#include "sinkdetector/slice_builder.hpp"

#include <stdexcept>

namespace scup::sinkdetector {

std::size_t sink_slice_size(std::size_t sink_size, std::size_t f) {
  return (sink_size + f + 1 + 1) / 2;  // ⌈(|V|+f+1)/2⌉
}

fbqs::SliceSet build_slices(const GetSinkResult& sink_result, std::size_t f) {
  const NodeSet& v = sink_result.sink;
  if (sink_result.is_sink_member) {
    const std::size_t m = sink_slice_size(v.count(), f);
    if (m > v.count()) {
      throw std::invalid_argument(
          "build_slices: sink too small for slice size ⌈(|V|+f+1)/2⌉");
    }
    return fbqs::SliceSet::threshold(m, v);  // line 3 of Algorithm 2
  }
  if (v.count() < f + 1) {
    throw std::invalid_argument("build_slices: |V| < f+1 for non-sink member");
  }
  return fbqs::SliceSet::threshold(f + 1, v);  // line 5 of Algorithm 2
}

fbqs::SliceSet local_slices(const NodeSet& pd, std::size_t f) {
  if (pd.count() <= f) {
    throw std::invalid_argument(
        "local_slices: |PD_i| <= f; no slice can avoid all faulty sets "
        "(Lemma 2)");
  }
  return fbqs::SliceSet::threshold(pd.count() - f, pd);
}

}  // namespace scup::sinkdetector
