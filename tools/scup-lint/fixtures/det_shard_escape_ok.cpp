// Fixture: the same engine-global touches are sanctioned inside a marked
// barrier region, where every shard thread is parked.

void commit(Sim& sim_) {
  // shard-barrier begin(window commit: staged effects merge while all
  // shard threads are parked on the pool's join)
  sim_.next_seq_ += 1;
  sim_.metrics_.messages_sent += 1;
  sim_.notary_.append(0, 0);
  // shard-barrier end
}
