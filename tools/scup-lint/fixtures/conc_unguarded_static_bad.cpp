// Fixture: conc-unguarded-static must fire on mutable statics without a
// guarded-by / thread-safe annotation; const and constexpr stay quiet.
#include <cstdint>

std::uint64_t next_id() {
  static std::uint64_t counter = 0;
  static const std::uint64_t base = 100;
  static constexpr std::uint64_t step = 2;
  return base + (counter += step);
}
